// Package bitmap implements the segmented bitmap of "Practical Data
// Breakpoints" (PLDI 1993), the data structure at the heart of the monitored
// region service.
//
// One bit represents each word of the debuggee's address space: set means
// the word belongs to a monitored region. The bitmap is broken into fixed
// size segments reached through a segment table indexed by the high bits of
// the address. Segments are allocated lazily when a monitored region is
// installed; until then every table entry refers to a single shared zeroed
// segment, so a lookup of an unmonitored address costs at most two memory
// reads (segment pointer, bitmap word).
//
// Each table entry also carries the paper's "unmonitored" flag (stored in
// the low bit of the entry, made possible by segment alignment): it is set
// exactly when the segment contains no monitored words. The flag is what
// makes segment caching (§3.1) and fast full lookups possible. An auxiliary
// per-segment count of monitored words keeps the flag correct across region
// creation and deletion.
//
// # Region kinds
//
// Regions carry a kind mask (store, load, or both — the access kinds that
// should trigger, in the spirit of DeTRAP's load/store/execute trigger kinds
// behind one interface). Each private segment holds three bit planes packed
// in one allocation: the "any" plane (the paper's bitmap, the union of all
// kinds — what Contains/ContainsAccess read, and what the compiled check
// sequences mirror in simulated memory), then a store plane and a load
// plane. ContainsKind/ContainsAccessKind read the kind planes with the same
// two-load lock-free lookup; the segment table, its unmonitored flag, and
// the per-segment counts all track the any plane, so kind bookkeeping adds
// no table memory and only 3x the (lazy, rare) private segment storage.
// The legacy kindless mutators default to KindStore, the paper's semantics.
//
// # Concurrency contract
//
// The lookup path — Contains, ContainsAccess, SegmentUnmonitored — is
// lock-free: it reads the segment table and bitmap words with atomic loads
// and never blocks, so any number of goroutines may look up addresses while
// regions are created and deleted. A lookup that races a mutation observes
// either the old or the new state of each word it reads, never a torn or
// out-of-range view: segment storage is published (atomically, to segsView)
// before the table entry that points at it, and segments are retained for
// the lifetime of the bitmap once allocated, so a stale table entry can
// never lead a reader into recycled memory carrying another segment's bits.
//
// All mutators — Add, Remove, AddRegion, RemoveRegion — serialize behind an
// internal mutex, as do the accounting reads (SegmentCount, MonitoredWords,
// MemoryOverheadBytes). The mutex is a leaf in any larger lock order:
// nothing is called while it is held.
package bitmap

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Kind is a region's access-kind mask: which access kinds trigger on the
// region's words.
type Kind uint8

const (
	// KindStore triggers on stores — the paper's only kind, and the default
	// for the kindless API.
	KindStore Kind = 1 << iota
	// KindLoad triggers on loads (read watchpoints).
	KindLoad
	// KindAll triggers on both.
	KindAll = KindStore | KindLoad
)

func (k Kind) String() string {
	switch k {
	case KindStore:
		return "store"
	case KindLoad:
		return "load"
	case KindAll:
		return "all"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// valid reports whether k names at least one real kind and no unknown bits.
func (k Kind) valid() bool { return k != 0 && k&^KindAll == 0 }

// Config describes bitmap geometry.
type Config struct {
	// AddrBits is the size of the covered address space in bits (<= 32).
	AddrBits uint
	// SegWords is the number of program words covered by one segment; it
	// must be a power of two. The paper settles on 128 words (512 bytes)
	// after the Figure 3 locality study.
	SegWords uint
}

// DefaultConfig covers a full 32-bit address space with the paper's
// 128-word segments.
var DefaultConfig = Config{AddrBits: 32, SegWords: 128}

// Bitmap is a segmented bitmap. The zero value is not usable; call New.
type Bitmap struct {
	segShift   uint   // log2(bytes per segment)
	segWords   uint32 // words per segment
	planeWords uint32 // uint32 words per bit plane (segWords/32)
	addrMask   uint32 // mask of valid address bits
	numSegs    uint32
	// table[n] = segIdx<<1 | unmonitoredFlag. segIdx indexes segs. Entry 0|1
	// (zero segment, unmonitored) is the initial value everywhere. Entries
	// are read with atomic loads on the lookup path and written with atomic
	// stores under mu.
	table []int32
	// segs[0] is the shared zero segment; the rest are private segments,
	// owned by mu. A segment allocated for a segment number is retained for
	// that number forever (merely flagged unmonitored when its last word
	// goes), so lock-free readers holding a stale entry never see another
	// segment's bits. segsView republishes the slice header after every
	// append for the lookup path.
	segs     [][]uint32
	segsView atomic.Pointer[[][]uint32]

	// mu serializes all mutators and the accounting fields below.
	mu sync.Mutex
	// counts[segNum] = number of monitored words in that segment; absent
	// means zero. This is the paper's auxiliary structure for maintaining
	// the unmonitored flag under creation and deletion. A word overlapped by
	// k regions contributes ONE to its segment count, not k — the refs map
	// below carries the multiplicity.
	counts map[uint32]uint32
	// refs[wordAddr] = number of regions covering that word, recorded only
	// when it exceeds one (absent + bit set means exactly one). AddRegion
	// and RemoveRegion maintain it so overlapping regions neither
	// double-count segment words nor clear bits while a region still covers
	// them.
	refs map[uint32]uint32
	// refsK is the same per-word refcount split by kind plane (0 = store,
	// 1 = load), so a word's kind bit clears only when the LAST region of
	// that kind covering it goes, independent of regions of the other kind.
	refsK [2]map[uint32]uint32

	monitoredWords uint64
}

// New builds an empty bitmap. It panics on invalid geometry (a programming
// error).
func New(cfg Config) *Bitmap {
	if cfg.AddrBits == 0 || cfg.AddrBits > 32 {
		panic("bitmap: AddrBits must be in 1..32")
	}
	if cfg.SegWords < 32 || cfg.SegWords&(cfg.SegWords-1) != 0 {
		panic("bitmap: SegWords must be a power of two >= 32")
	}
	segBytes := cfg.SegWords * 4
	segShift := uint(bits.TrailingZeros32(uint32(segBytes)))
	if cfg.AddrBits < segShift {
		panic("bitmap: address space smaller than one segment")
	}
	numSegs := uint32(1) << (cfg.AddrBits - segShift)
	b := &Bitmap{
		segShift:   segShift,
		segWords:   uint32(cfg.SegWords),
		planeWords: uint32(cfg.SegWords) / 32,
		numSegs:    numSegs,
		counts:     make(map[uint32]uint32),
		refs:       make(map[uint32]uint32),
	}
	b.refsK[0] = make(map[uint32]uint32)
	b.refsK[1] = make(map[uint32]uint32)
	if cfg.AddrBits == 32 {
		b.addrMask = ^uint32(0)
	} else {
		b.addrMask = (uint32(1) << cfg.AddrBits) - 1
	}
	b.table = make([]int32, numSegs)
	for i := range b.table {
		b.table[i] = 1 // zero segment, unmonitored flag set
	}
	b.segs = [][]uint32{make([]uint32, 3*b.planeWords)}
	b.publishSegs()
	return b
}

// publishSegs republishes the segment slice header for lock-free readers.
// Called under mu (and once from New).
func (b *Bitmap) publishSegs() {
	view := b.segs
	b.segsView.Store(&view)
}

// SegShift returns log2 of the segment size in bytes.
func (b *Bitmap) SegShift() uint { return b.segShift }

// SegWords returns the number of words covered by one segment.
func (b *Bitmap) SegWords() uint32 { return b.segWords }

// NumSegments returns the number of segment-table entries.
func (b *Bitmap) NumSegments() uint32 { return b.numSegs }

// MonitoredWords returns the total number of monitored words (each word
// counts once no matter how many regions cover it).
func (b *Bitmap) MonitoredWords() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.monitoredWords
}

// SegmentNum returns the segment number of addr.
func (b *Bitmap) SegmentNum(addr uint32) uint32 {
	return (addr & b.addrMask) >> b.segShift
}

// SegmentUnmonitored reports whether the segment containing addr has no
// monitored words (the paper's unmonitored flag). Lock-free.
func (b *Bitmap) SegmentUnmonitored(addr uint32) bool {
	return atomic.LoadInt32(&b.table[b.SegmentNum(addr)])&1 != 0
}

func (b *Bitmap) checkAligned(addr, size uint32) error {
	if addr&3 != 0 {
		return fmt.Errorf("bitmap: address %#x is not word aligned", addr)
	}
	if size == 0 || size&3 != 0 {
		return fmt.Errorf("bitmap: size %d is not a positive word multiple", size)
	}
	if uint64(addr&b.addrMask)+uint64(size) > uint64(b.addrMask)+1 {
		return fmt.Errorf("bitmap: region [%#x,+%d) exceeds the address space", addr, size)
	}
	return nil
}

// ensureSeg gives segment n private backing storage and returns it, together
// with its index. Called under mu. New storage is published to segsView
// BEFORE the caller stores a table entry referring to it — the ordering that
// keeps lock-free readers in range.
func (b *Bitmap) ensureSeg(n uint32) ([]uint32, int32) {
	e := b.table[n]
	if e>>1 != 0 {
		return b.segs[e>>1], e >> 1
	}
	b.segs = append(b.segs, make([]uint32, 3*b.planeWords))
	idx := int32(len(b.segs) - 1)
	b.publishSegs()
	return b.segs[idx], idx
}

// wordCovered reports whether the word at (masked) address a has its bit
// set. Called under mu; reads are still atomic because lock-free lookups run
// concurrently.
func (b *Bitmap) wordCovered(a uint32) bool {
	e := atomic.LoadInt32(&b.table[a>>b.segShift])
	seg := b.segs[e>>1]
	w := (a >> 2) & (b.segWords - 1)
	return atomic.LoadUint32(&seg[w>>5])&(1<<(w&31)) != 0
}

// addWord installs one covering region of kind k on the word at (masked)
// address a: the any-plane bit sets on the 0->1 transition (bumping the
// refcount otherwise), and each kind plane named by k does the same against
// its own refcount. Called under mu.
func (b *Bitmap) addWord(a uint32, k Kind) {
	n := a >> b.segShift
	seg, idx := b.ensureSeg(n)
	w := (a >> 2) & (b.segWords - 1)
	bit := uint32(1) << (w & 31)
	if seg[w>>5]&bit != 0 {
		c := b.refs[a]
		if c == 0 {
			c = 1 // bit set with no refs entry means exactly one region
		}
		b.refs[a] = c + 1
	} else {
		atomic.StoreUint32(&seg[w>>5], seg[w>>5]|bit)
		b.counts[n]++
		atomic.StoreInt32(&b.table[n], idx<<1) // flag clear: segment monitored
		b.monitoredWords++
	}
	for p := uint32(0); p < 2; p++ {
		if k&(1<<p) == 0 {
			continue
		}
		o := (p+1)*b.planeWords + w>>5
		if seg[o]&bit != 0 {
			c := b.refsK[p][a]
			if c == 0 {
				c = 1
			}
			b.refsK[p][a] = c + 1
		} else {
			atomic.StoreUint32(&seg[o], seg[o]|bit)
		}
	}
}

// removeWord drops one covering region of kind k from the word at (masked)
// address a, clearing each plane's bit only on its own 1->0 transition.
// Called under mu; the caller has verified the word is covered.
func (b *Bitmap) removeWord(a uint32, k Kind) {
	n := a >> b.segShift
	e := b.table[n]
	seg := b.segs[e>>1]
	w := (a >> 2) & (b.segWords - 1)
	bit := uint32(1) << (w & 31)
	for p := uint32(0); p < 2; p++ {
		if k&(1<<p) == 0 {
			continue
		}
		if c := b.refsK[p][a]; c > 0 {
			if c == 2 {
				delete(b.refsK[p], a)
			} else {
				b.refsK[p][a] = c - 1
			}
			continue
		}
		o := (p+1)*b.planeWords + w>>5
		atomic.StoreUint32(&seg[o], seg[o]&^bit)
	}
	if c := b.refs[a]; c > 0 {
		if c == 2 {
			delete(b.refs, a)
		} else {
			b.refs[a] = c - 1
		}
		return
	}
	atomic.StoreUint32(&seg[w>>5], seg[w>>5]&^bit)
	b.monitoredWords--
	if c := b.counts[n] - 1; c == 0 {
		delete(b.counts, n)
		// The private segment (now all zero) is retained for this segment
		// number — only the unmonitored flag flips. Recycling it for a
		// different segment number would let a racing lookup holding the
		// old table entry read another segment's bits.
		atomic.StoreInt32(&b.table[n], e|1)
	} else {
		b.counts[n] = c
	}
}

// Add marks [addr, addr+size) as monitored for stores (the paper's kind).
// The region must be word aligned and must not overlap an existing monitored
// word (the strict MRS contract; use AddRegion for refcounted overlapping
// regions).
func (b *Bitmap) Add(addr, size uint32) error { return b.AddKind(addr, size, KindStore) }

// AddKind is Add with an explicit access-kind mask.
func (b *Bitmap) AddKind(addr, size uint32, k Kind) error {
	if err := b.checkAligned(addr, size); err != nil {
		return err
	}
	if !k.valid() {
		return fmt.Errorf("bitmap: invalid region kind %v", k)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Overlap pre-check so a failed Add leaves the bitmap untouched.
	for off := uint32(0); off < size; off += 4 {
		if b.wordCovered((addr + off) & b.addrMask) {
			return fmt.Errorf("bitmap: word %#x is already monitored", addr+off)
		}
	}
	for off := uint32(0); off < size; off += 4 {
		b.addWord((addr+off)&b.addrMask, k)
	}
	return nil
}

// Remove clears the monitored bits of [addr, addr+size), previously added
// for stores. Every word in the range must currently be monitored.
func (b *Bitmap) Remove(addr, size uint32) error { return b.RemoveKind(addr, size, KindStore) }

// RemoveKind is Remove with an explicit access-kind mask; k must match the
// kind the region was added with.
func (b *Bitmap) RemoveKind(addr, size uint32, k Kind) error {
	if err := b.checkAligned(addr, size); err != nil {
		return err
	}
	if !k.valid() {
		return fmt.Errorf("bitmap: invalid region kind %v", k)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for off := uint32(0); off < size; off += 4 {
		if !b.wordCovered((addr + off) & b.addrMask) {
			return fmt.Errorf("bitmap: word %#x is not monitored", addr+off)
		}
	}
	for off := uint32(0); off < size; off += 4 {
		b.removeWord((addr+off)&b.addrMask, k)
	}
	return nil
}

// AddRegion marks [addr, addr+size) as monitored for stores, refcounting
// words already covered by other regions: a word overlapped by k regions
// still counts once in its segment's monitored-word count, so the
// unmonitored flag cannot flip early when one of the overlapping regions is
// removed.
func (b *Bitmap) AddRegion(addr, size uint32) error {
	return b.AddRegionKind(addr, size, KindStore)
}

// AddRegionKind is AddRegion with an explicit access-kind mask. Kind-plane
// bits refcount independently, so overlapping regions of different kinds
// keep each plane exact.
func (b *Bitmap) AddRegionKind(addr, size uint32, k Kind) error {
	if err := b.checkAligned(addr, size); err != nil {
		return err
	}
	if !k.valid() {
		return fmt.Errorf("bitmap: invalid region kind %v", k)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for off := uint32(0); off < size; off += 4 {
		b.addWord((addr+off)&b.addrMask, k)
	}
	return nil
}

// RemoveRegion drops one store-kind covering region from every word of
// [addr, addr+size): bits (and segment counts) change only for words whose
// last covering region this is. Every word in the range must currently be
// monitored; on error the bitmap is untouched.
func (b *Bitmap) RemoveRegion(addr, size uint32) error {
	return b.RemoveRegionKind(addr, size, KindStore)
}

// RemoveRegionKind is RemoveRegion with an explicit access-kind mask; k must
// match the kind the region was added with.
func (b *Bitmap) RemoveRegionKind(addr, size uint32, k Kind) error {
	if err := b.checkAligned(addr, size); err != nil {
		return err
	}
	if !k.valid() {
		return fmt.Errorf("bitmap: invalid region kind %v", k)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for off := uint32(0); off < size; off += 4 {
		if !b.wordCovered((addr + off) & b.addrMask) {
			return fmt.Errorf("bitmap: word %#x is not monitored", addr+off)
		}
	}
	for off := uint32(0); off < size; off += 4 {
		b.removeWord((addr+off)&b.addrMask, k)
	}
	return nil
}

// Contains reports whether the word containing addr is monitored. This is
// the paper's address lookup: one segment-table read, one bitmap-word read.
// Lock-free: safe to call concurrently with mutators.
func (b *Bitmap) Contains(addr uint32) bool {
	a := addr & b.addrMask
	e := atomic.LoadInt32(&b.table[a>>b.segShift])
	segs := *b.segsView.Load()
	seg := segs[e>>1]
	w := (a >> 2) & (b.segWords - 1)
	return atomic.LoadUint32(&seg[w>>5])&(1<<(w&31)) != 0
}

// ContainsAccess reports whether a size-byte store at addr touches a
// monitored word (size is 4 or 8 on our machine, but any size works).
// Lock-free.
func (b *Bitmap) ContainsAccess(addr, size uint32) bool {
	first := addr &^ 3
	last := (addr + size - 1) &^ 3
	for a := first; ; a += 4 {
		if b.Contains(a) {
			return true
		}
		if a == last {
			return false
		}
	}
}

// ContainsKind reports whether the word containing addr is monitored for an
// access of kind k (KindStore or KindLoad; KindAll matches either). Same
// lock-free cost shape as Contains plus one bitmap-word read per set bit in
// k. Lock-free: safe to call concurrently with mutators.
func (b *Bitmap) ContainsKind(addr uint32, k Kind) bool {
	a := addr & b.addrMask
	e := atomic.LoadInt32(&b.table[a>>b.segShift])
	segs := *b.segsView.Load()
	seg := segs[e>>1]
	w := (a >> 2) & (b.segWords - 1)
	bit := uint32(1) << (w & 31)
	for p := uint32(0); p < 2; p++ {
		if k&(1<<p) == 0 {
			continue
		}
		if atomic.LoadUint32(&seg[(p+1)*b.planeWords+w>>5])&bit != 0 {
			return true
		}
	}
	return false
}

// ContainsAccessKind reports whether a size-byte access of kind k at addr
// touches a word monitored for that kind. Lock-free. Like ContainsAccess,
// each word recomputes its own segment, so an access straddling a segment
// boundary consults both segments.
func (b *Bitmap) ContainsAccessKind(addr, size uint32, k Kind) bool {
	first := addr &^ 3
	last := (addr + size - 1) &^ 3
	for a := first; ; a += 4 {
		if b.ContainsKind(a, k) {
			return true
		}
		if a == last {
			return false
		}
	}
}

// SegmentCount returns the number of monitored words in the segment
// containing addr (the auxiliary count; overlapped words count once).
func (b *Bitmap) SegmentCount(addr uint32) uint32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counts[b.SegmentNum(addr)]
}

// MemoryOverheadBytes estimates the structure's memory use: the segment
// table plus privately allocated segments (the shared zero segment counts
// once). This is the quantity behind the paper's "roughly 3% of program
// memory" remark.
func (b *Bitmap) MemoryOverheadBytes() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := uint64(len(b.table)) * 4
	total += uint64(len(b.segs)) * uint64(3*b.planeWords) * 4
	return total
}
