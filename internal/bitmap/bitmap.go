// Package bitmap implements the segmented bitmap of "Practical Data
// Breakpoints" (PLDI 1993), the data structure at the heart of the monitored
// region service.
//
// One bit represents each word of the debuggee's address space: set means
// the word belongs to a monitored region. The bitmap is broken into fixed
// size segments reached through a segment table indexed by the high bits of
// the address. Segments are allocated lazily when a monitored region is
// installed; until then every table entry refers to a single shared zeroed
// segment, so a lookup of an unmonitored address costs at most two memory
// reads (segment pointer, bitmap word).
//
// Each table entry also carries the paper's "unmonitored" flag (stored in
// the low bit of the entry, made possible by segment alignment): it is set
// exactly when the segment contains no monitored words. The flag is what
// makes segment caching (§3.1) and fast full lookups possible. An auxiliary
// per-segment count of monitored words keeps the flag correct across region
// creation and deletion.
package bitmap

import (
	"fmt"
	"math/bits"
)

// Config describes bitmap geometry.
type Config struct {
	// AddrBits is the size of the covered address space in bits (<= 32).
	AddrBits uint
	// SegWords is the number of program words covered by one segment; it
	// must be a power of two. The paper settles on 128 words (512 bytes)
	// after the Figure 3 locality study.
	SegWords uint
}

// DefaultConfig covers a full 32-bit address space with the paper's
// 128-word segments.
var DefaultConfig = Config{AddrBits: 32, SegWords: 128}

// Bitmap is a segmented bitmap. The zero value is not usable; call New.
type Bitmap struct {
	segShift uint   // log2(bytes per segment)
	segWords uint32 // words per segment
	addrMask uint32 // mask of valid address bits
	numSegs  uint32
	// table[n] = segIdx<<1 | unmonitoredFlag. segIdx indexes segs. Entry 0|1
	// (zero segment, unmonitored) is the initial value everywhere.
	table []int32
	segs  [][]uint32 // segs[0] is the shared zero segment
	free  []int32    // recycled segment indices
	// counts[segNum] = number of monitored words in that segment; absent
	// means zero. This is the paper's auxiliary structure for maintaining
	// the unmonitored flag under creation and deletion.
	counts map[uint32]uint32

	monitoredWords uint64
}

// New builds an empty bitmap. It panics on invalid geometry (a programming
// error).
func New(cfg Config) *Bitmap {
	if cfg.AddrBits == 0 || cfg.AddrBits > 32 {
		panic("bitmap: AddrBits must be in 1..32")
	}
	if cfg.SegWords < 32 || cfg.SegWords&(cfg.SegWords-1) != 0 {
		panic("bitmap: SegWords must be a power of two >= 32")
	}
	segBytes := cfg.SegWords * 4
	segShift := uint(bits.TrailingZeros32(uint32(segBytes)))
	if cfg.AddrBits < segShift {
		panic("bitmap: address space smaller than one segment")
	}
	numSegs := uint32(1) << (cfg.AddrBits - segShift)
	b := &Bitmap{
		segShift: segShift,
		segWords: uint32(cfg.SegWords),
		numSegs:  numSegs,
		counts:   make(map[uint32]uint32),
	}
	if cfg.AddrBits == 32 {
		b.addrMask = ^uint32(0)
	} else {
		b.addrMask = (uint32(1) << cfg.AddrBits) - 1
	}
	b.table = make([]int32, numSegs)
	for i := range b.table {
		b.table[i] = 1 // zero segment, unmonitored flag set
	}
	b.segs = [][]uint32{make([]uint32, cfg.SegWords/32)}
	return b
}

// SegShift returns log2 of the segment size in bytes.
func (b *Bitmap) SegShift() uint { return b.segShift }

// SegWords returns the number of words covered by one segment.
func (b *Bitmap) SegWords() uint32 { return b.segWords }

// NumSegments returns the number of segment-table entries.
func (b *Bitmap) NumSegments() uint32 { return b.numSegs }

// MonitoredWords returns the total number of monitored words.
func (b *Bitmap) MonitoredWords() uint64 { return b.monitoredWords }

// SegmentNum returns the segment number of addr.
func (b *Bitmap) SegmentNum(addr uint32) uint32 {
	return (addr & b.addrMask) >> b.segShift
}

// SegmentUnmonitored reports whether the segment containing addr has no
// monitored words (the paper's unmonitored flag).
func (b *Bitmap) SegmentUnmonitored(addr uint32) bool {
	return b.table[b.SegmentNum(addr)]&1 != 0
}

func (b *Bitmap) checkAligned(addr, size uint32) error {
	if addr&3 != 0 {
		return fmt.Errorf("bitmap: address %#x is not word aligned", addr)
	}
	if size == 0 || size&3 != 0 {
		return fmt.Errorf("bitmap: size %d is not a positive word multiple", size)
	}
	if uint64(addr&b.addrMask)+uint64(size) > uint64(b.addrMask)+1 {
		return fmt.Errorf("bitmap: region [%#x,+%d) exceeds the address space", addr, size)
	}
	return nil
}

// ensureSeg gives segment n private backing storage and returns it.
func (b *Bitmap) ensureSeg(n uint32) []uint32 {
	e := b.table[n]
	if e>>1 != 0 {
		return b.segs[e>>1]
	}
	var idx int32
	if len(b.free) > 0 {
		idx = b.free[len(b.free)-1]
		b.free = b.free[:len(b.free)-1]
	} else {
		b.segs = append(b.segs, make([]uint32, b.segWords/32))
		idx = int32(len(b.segs) - 1)
	}
	seg := b.segs[idx]
	for i := range seg {
		seg[i] = 0
	}
	b.table[n] = idx<<1 | (e & 1)
	return seg
}

// Add marks [addr, addr+size) as monitored. The region must be word aligned
// and must not overlap an existing monitored word (regions are
// non-overlapping by the MRS contract).
func (b *Bitmap) Add(addr, size uint32) error {
	if err := b.checkAligned(addr, size); err != nil {
		return err
	}
	// Overlap pre-check so a failed Add leaves the bitmap untouched.
	for off := uint32(0); off < size; off += 4 {
		if b.Contains(addr + off) {
			return fmt.Errorf("bitmap: word %#x is already monitored", addr+off)
		}
	}
	for off := uint32(0); off < size; off += 4 {
		a := (addr + off) & b.addrMask
		n := a >> b.segShift
		seg := b.ensureSeg(n)
		w := (a >> 2) & (b.segWords - 1)
		seg[w>>5] |= 1 << (w & 31)
		b.counts[n]++
		b.table[n] &^= 1 // segment now monitored
		b.monitoredWords++
	}
	return nil
}

// Remove clears the monitored bits of [addr, addr+size). Every word in the
// range must currently be monitored.
func (b *Bitmap) Remove(addr, size uint32) error {
	if err := b.checkAligned(addr, size); err != nil {
		return err
	}
	for off := uint32(0); off < size; off += 4 {
		if !b.Contains(addr + off) {
			return fmt.Errorf("bitmap: word %#x is not monitored", addr+off)
		}
	}
	for off := uint32(0); off < size; off += 4 {
		a := (addr + off) & b.addrMask
		n := a >> b.segShift
		seg := b.segs[b.table[n]>>1]
		w := (a >> 2) & (b.segWords - 1)
		seg[w>>5] &^= 1 << (w & 31)
		b.monitoredWords--
		if c := b.counts[n] - 1; c == 0 {
			delete(b.counts, n)
			// Recycle the private segment and point back at the shared
			// zero segment with the unmonitored flag set.
			b.free = append(b.free, b.table[n]>>1)
			b.table[n] = 1
		} else {
			b.counts[n] = c
		}
	}
	return nil
}

// Contains reports whether the word containing addr is monitored. This is
// the paper's address lookup: one segment-table read, one bitmap-word read.
func (b *Bitmap) Contains(addr uint32) bool {
	a := addr & b.addrMask
	e := b.table[a>>b.segShift]
	seg := b.segs[e>>1]
	w := (a >> 2) & (b.segWords - 1)
	return seg[w>>5]&(1<<(w&31)) != 0
}

// ContainsAccess reports whether a size-byte store at addr touches a
// monitored word (size is 4 or 8 on our machine, but any size works).
func (b *Bitmap) ContainsAccess(addr, size uint32) bool {
	first := addr &^ 3
	last := (addr + size - 1) &^ 3
	for a := first; ; a += 4 {
		if b.Contains(a) {
			return true
		}
		if a == last {
			return false
		}
	}
}

// SegmentCount returns the number of monitored words in the segment
// containing addr (the auxiliary count).
func (b *Bitmap) SegmentCount(addr uint32) uint32 {
	return b.counts[b.SegmentNum(addr)]
}

// MemoryOverheadBytes estimates the structure's memory use: the segment
// table plus privately allocated segments (the shared zero segment counts
// once). This is the quantity behind the paper's "roughly 3% of program
// memory" remark.
func (b *Bitmap) MemoryOverheadBytes() uint64 {
	total := uint64(len(b.table)) * 4
	total += uint64(len(b.segs)) * uint64(b.segWords/32) * 4
	return total
}
