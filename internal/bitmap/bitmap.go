// Package bitmap implements the segmented bitmap of "Practical Data
// Breakpoints" (PLDI 1993), the data structure at the heart of the monitored
// region service.
//
// One bit represents each word of the debuggee's address space: set means
// the word belongs to a monitored region. The bitmap is broken into fixed
// size segments reached through a segment table indexed by the high bits of
// the address. Segments are allocated lazily when a monitored region is
// installed; until then every table entry refers to a single shared zeroed
// segment, so a lookup of an unmonitored address costs at most two memory
// reads (segment pointer, bitmap word).
//
// Each table entry also carries the paper's "unmonitored" flag (stored in
// the low bit of the entry, made possible by segment alignment): it is set
// exactly when the segment contains no monitored words. The flag is what
// makes segment caching (§3.1) and fast full lookups possible. An auxiliary
// per-segment count of monitored words keeps the flag correct across region
// creation and deletion.
//
// # Concurrency contract
//
// The lookup path — Contains, ContainsAccess, SegmentUnmonitored — is
// lock-free: it reads the segment table and bitmap words with atomic loads
// and never blocks, so any number of goroutines may look up addresses while
// regions are created and deleted. A lookup that races a mutation observes
// either the old or the new state of each word it reads, never a torn or
// out-of-range view: segment storage is published (atomically, to segsView)
// before the table entry that points at it, and segments are retained for
// the lifetime of the bitmap once allocated, so a stale table entry can
// never lead a reader into recycled memory carrying another segment's bits.
//
// All mutators — Add, Remove, AddRegion, RemoveRegion — serialize behind an
// internal mutex, as do the accounting reads (SegmentCount, MonitoredWords,
// MemoryOverheadBytes). The mutex is a leaf in any larger lock order:
// nothing is called while it is held.
package bitmap

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Config describes bitmap geometry.
type Config struct {
	// AddrBits is the size of the covered address space in bits (<= 32).
	AddrBits uint
	// SegWords is the number of program words covered by one segment; it
	// must be a power of two. The paper settles on 128 words (512 bytes)
	// after the Figure 3 locality study.
	SegWords uint
}

// DefaultConfig covers a full 32-bit address space with the paper's
// 128-word segments.
var DefaultConfig = Config{AddrBits: 32, SegWords: 128}

// Bitmap is a segmented bitmap. The zero value is not usable; call New.
type Bitmap struct {
	segShift uint   // log2(bytes per segment)
	segWords uint32 // words per segment
	addrMask uint32 // mask of valid address bits
	numSegs  uint32
	// table[n] = segIdx<<1 | unmonitoredFlag. segIdx indexes segs. Entry 0|1
	// (zero segment, unmonitored) is the initial value everywhere. Entries
	// are read with atomic loads on the lookup path and written with atomic
	// stores under mu.
	table []int32
	// segs[0] is the shared zero segment; the rest are private segments,
	// owned by mu. A segment allocated for a segment number is retained for
	// that number forever (merely flagged unmonitored when its last word
	// goes), so lock-free readers holding a stale entry never see another
	// segment's bits. segsView republishes the slice header after every
	// append for the lookup path.
	segs     [][]uint32
	segsView atomic.Pointer[[][]uint32]

	// mu serializes all mutators and the accounting fields below.
	mu sync.Mutex
	// counts[segNum] = number of monitored words in that segment; absent
	// means zero. This is the paper's auxiliary structure for maintaining
	// the unmonitored flag under creation and deletion. A word overlapped by
	// k regions contributes ONE to its segment count, not k — the refs map
	// below carries the multiplicity.
	counts map[uint32]uint32
	// refs[wordAddr] = number of regions covering that word, recorded only
	// when it exceeds one (absent + bit set means exactly one). AddRegion
	// and RemoveRegion maintain it so overlapping regions neither
	// double-count segment words nor clear bits while a region still covers
	// them.
	refs map[uint32]uint32

	monitoredWords uint64
}

// New builds an empty bitmap. It panics on invalid geometry (a programming
// error).
func New(cfg Config) *Bitmap {
	if cfg.AddrBits == 0 || cfg.AddrBits > 32 {
		panic("bitmap: AddrBits must be in 1..32")
	}
	if cfg.SegWords < 32 || cfg.SegWords&(cfg.SegWords-1) != 0 {
		panic("bitmap: SegWords must be a power of two >= 32")
	}
	segBytes := cfg.SegWords * 4
	segShift := uint(bits.TrailingZeros32(uint32(segBytes)))
	if cfg.AddrBits < segShift {
		panic("bitmap: address space smaller than one segment")
	}
	numSegs := uint32(1) << (cfg.AddrBits - segShift)
	b := &Bitmap{
		segShift: segShift,
		segWords: uint32(cfg.SegWords),
		numSegs:  numSegs,
		counts:   make(map[uint32]uint32),
		refs:     make(map[uint32]uint32),
	}
	if cfg.AddrBits == 32 {
		b.addrMask = ^uint32(0)
	} else {
		b.addrMask = (uint32(1) << cfg.AddrBits) - 1
	}
	b.table = make([]int32, numSegs)
	for i := range b.table {
		b.table[i] = 1 // zero segment, unmonitored flag set
	}
	b.segs = [][]uint32{make([]uint32, cfg.SegWords/32)}
	b.publishSegs()
	return b
}

// publishSegs republishes the segment slice header for lock-free readers.
// Called under mu (and once from New).
func (b *Bitmap) publishSegs() {
	view := b.segs
	b.segsView.Store(&view)
}

// SegShift returns log2 of the segment size in bytes.
func (b *Bitmap) SegShift() uint { return b.segShift }

// SegWords returns the number of words covered by one segment.
func (b *Bitmap) SegWords() uint32 { return b.segWords }

// NumSegments returns the number of segment-table entries.
func (b *Bitmap) NumSegments() uint32 { return b.numSegs }

// MonitoredWords returns the total number of monitored words (each word
// counts once no matter how many regions cover it).
func (b *Bitmap) MonitoredWords() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.monitoredWords
}

// SegmentNum returns the segment number of addr.
func (b *Bitmap) SegmentNum(addr uint32) uint32 {
	return (addr & b.addrMask) >> b.segShift
}

// SegmentUnmonitored reports whether the segment containing addr has no
// monitored words (the paper's unmonitored flag). Lock-free.
func (b *Bitmap) SegmentUnmonitored(addr uint32) bool {
	return atomic.LoadInt32(&b.table[b.SegmentNum(addr)])&1 != 0
}

func (b *Bitmap) checkAligned(addr, size uint32) error {
	if addr&3 != 0 {
		return fmt.Errorf("bitmap: address %#x is not word aligned", addr)
	}
	if size == 0 || size&3 != 0 {
		return fmt.Errorf("bitmap: size %d is not a positive word multiple", size)
	}
	if uint64(addr&b.addrMask)+uint64(size) > uint64(b.addrMask)+1 {
		return fmt.Errorf("bitmap: region [%#x,+%d) exceeds the address space", addr, size)
	}
	return nil
}

// ensureSeg gives segment n private backing storage and returns it, together
// with its index. Called under mu. New storage is published to segsView
// BEFORE the caller stores a table entry referring to it — the ordering that
// keeps lock-free readers in range.
func (b *Bitmap) ensureSeg(n uint32) ([]uint32, int32) {
	e := b.table[n]
	if e>>1 != 0 {
		return b.segs[e>>1], e >> 1
	}
	b.segs = append(b.segs, make([]uint32, b.segWords/32))
	idx := int32(len(b.segs) - 1)
	b.publishSegs()
	return b.segs[idx], idx
}

// wordCovered reports whether the word at (masked) address a has its bit
// set. Called under mu; reads are still atomic because lock-free lookups run
// concurrently.
func (b *Bitmap) wordCovered(a uint32) bool {
	e := atomic.LoadInt32(&b.table[a>>b.segShift])
	seg := b.segs[e>>1]
	w := (a >> 2) & (b.segWords - 1)
	return atomic.LoadUint32(&seg[w>>5])&(1<<(w&31)) != 0
}

// addWord installs one covering region on the word at (masked) address a,
// setting its bit on the 0->1 transition and bumping the refcount otherwise.
// Called under mu.
func (b *Bitmap) addWord(a uint32) {
	n := a >> b.segShift
	if b.wordCovered(a) {
		c := b.refs[a]
		if c == 0 {
			c = 1 // bit set with no refs entry means exactly one region
		}
		b.refs[a] = c + 1
		return
	}
	seg, idx := b.ensureSeg(n)
	w := (a >> 2) & (b.segWords - 1)
	atomic.StoreUint32(&seg[w>>5], seg[w>>5]|1<<(w&31))
	b.counts[n]++
	atomic.StoreInt32(&b.table[n], idx<<1) // flag clear: segment monitored
	b.monitoredWords++
}

// removeWord drops one covering region from the word at (masked) address a,
// clearing its bit only on the 1->0 transition. Called under mu; the caller
// has verified the word is covered.
func (b *Bitmap) removeWord(a uint32) {
	if c := b.refs[a]; c > 0 {
		if c == 2 {
			delete(b.refs, a)
		} else {
			b.refs[a] = c - 1
		}
		return
	}
	n := a >> b.segShift
	e := b.table[n]
	seg := b.segs[e>>1]
	w := (a >> 2) & (b.segWords - 1)
	atomic.StoreUint32(&seg[w>>5], seg[w>>5]&^(1<<(w&31)))
	b.monitoredWords--
	if c := b.counts[n] - 1; c == 0 {
		delete(b.counts, n)
		// The private segment (now all zero) is retained for this segment
		// number — only the unmonitored flag flips. Recycling it for a
		// different segment number would let a racing lookup holding the
		// old table entry read another segment's bits.
		atomic.StoreInt32(&b.table[n], e|1)
	} else {
		b.counts[n] = c
	}
}

// Add marks [addr, addr+size) as monitored. The region must be word aligned
// and must not overlap an existing monitored word (the strict MRS contract;
// use AddRegion for refcounted overlapping regions).
func (b *Bitmap) Add(addr, size uint32) error {
	if err := b.checkAligned(addr, size); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// Overlap pre-check so a failed Add leaves the bitmap untouched.
	for off := uint32(0); off < size; off += 4 {
		if b.wordCovered((addr + off) & b.addrMask) {
			return fmt.Errorf("bitmap: word %#x is already monitored", addr+off)
		}
	}
	for off := uint32(0); off < size; off += 4 {
		b.addWord((addr + off) & b.addrMask)
	}
	return nil
}

// Remove clears the monitored bits of [addr, addr+size). Every word in the
// range must currently be monitored.
func (b *Bitmap) Remove(addr, size uint32) error {
	if err := b.checkAligned(addr, size); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for off := uint32(0); off < size; off += 4 {
		if !b.wordCovered((addr + off) & b.addrMask) {
			return fmt.Errorf("bitmap: word %#x is not monitored", addr+off)
		}
	}
	for off := uint32(0); off < size; off += 4 {
		b.removeWord((addr + off) & b.addrMask)
	}
	return nil
}

// AddRegion marks [addr, addr+size) as monitored, refcounting words already
// covered by other regions: a word overlapped by k regions still counts once
// in its segment's monitored-word count, so the unmonitored flag cannot flip
// early when one of the overlapping regions is removed.
func (b *Bitmap) AddRegion(addr, size uint32) error {
	if err := b.checkAligned(addr, size); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for off := uint32(0); off < size; off += 4 {
		b.addWord((addr + off) & b.addrMask)
	}
	return nil
}

// RemoveRegion drops one covering region from every word of
// [addr, addr+size): bits (and segment counts) change only for words whose
// last covering region this is. Every word in the range must currently be
// monitored; on error the bitmap is untouched.
func (b *Bitmap) RemoveRegion(addr, size uint32) error {
	if err := b.checkAligned(addr, size); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for off := uint32(0); off < size; off += 4 {
		if !b.wordCovered((addr + off) & b.addrMask) {
			return fmt.Errorf("bitmap: word %#x is not monitored", addr+off)
		}
	}
	for off := uint32(0); off < size; off += 4 {
		b.removeWord((addr + off) & b.addrMask)
	}
	return nil
}

// Contains reports whether the word containing addr is monitored. This is
// the paper's address lookup: one segment-table read, one bitmap-word read.
// Lock-free: safe to call concurrently with mutators.
func (b *Bitmap) Contains(addr uint32) bool {
	a := addr & b.addrMask
	e := atomic.LoadInt32(&b.table[a>>b.segShift])
	segs := *b.segsView.Load()
	seg := segs[e>>1]
	w := (a >> 2) & (b.segWords - 1)
	return atomic.LoadUint32(&seg[w>>5])&(1<<(w&31)) != 0
}

// ContainsAccess reports whether a size-byte store at addr touches a
// monitored word (size is 4 or 8 on our machine, but any size works).
// Lock-free.
func (b *Bitmap) ContainsAccess(addr, size uint32) bool {
	first := addr &^ 3
	last := (addr + size - 1) &^ 3
	for a := first; ; a += 4 {
		if b.Contains(a) {
			return true
		}
		if a == last {
			return false
		}
	}
}

// SegmentCount returns the number of monitored words in the segment
// containing addr (the auxiliary count; overlapped words count once).
func (b *Bitmap) SegmentCount(addr uint32) uint32 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counts[b.SegmentNum(addr)]
}

// MemoryOverheadBytes estimates the structure's memory use: the segment
// table plus privately allocated segments (the shared zero segment counts
// once). This is the quantity behind the paper's "roughly 3% of program
// memory" remark.
func (b *Bitmap) MemoryOverheadBytes() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	total := uint64(len(b.table)) * 4
	total += uint64(len(b.segs)) * uint64(b.segWords/32) * 4
	return total
}
