package bitmap

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicAddLookupRemove(t *testing.T) {
	b := New(DefaultConfig)
	if b.Contains(0x1000) {
		t.Fatal("empty bitmap must not contain anything")
	}
	if err := b.Add(0x1000, 8); err != nil {
		t.Fatal(err)
	}
	for _, a := range []uint32{0x1000, 0x1004} {
		if !b.Contains(a) {
			t.Errorf("addr %#x must be monitored", a)
		}
	}
	for _, a := range []uint32{0xffc, 0x1008} {
		if b.Contains(a) {
			t.Errorf("addr %#x must not be monitored", a)
		}
	}
	if err := b.Remove(0x1000, 8); err != nil {
		t.Fatal(err)
	}
	if b.Contains(0x1000) || b.MonitoredWords() != 0 {
		t.Fatal("remove must clear all bits")
	}
}

func TestAlignmentErrors(t *testing.T) {
	b := New(DefaultConfig)
	if err := b.Add(0x1001, 4); err == nil {
		t.Error("unaligned address must fail")
	}
	if err := b.Add(0x1000, 3); err == nil {
		t.Error("non-word size must fail")
	}
	if err := b.Add(0x1000, 0); err == nil {
		t.Error("zero size must fail")
	}
	if err := b.Add(0xFFFF_FFFC, 8); err == nil {
		t.Error("region past end of address space must fail")
	}
}

func TestOverlapRejectedAtomically(t *testing.T) {
	b := New(DefaultConfig)
	if err := b.Add(0x2000, 16); err != nil {
		t.Fatal(err)
	}
	// Overlapping add must fail and must not set any bits.
	if err := b.Add(0x1FF8, 16); err == nil {
		t.Fatal("overlapping add must fail")
	}
	if b.Contains(0x1FF8) || b.Contains(0x1FFC) {
		t.Fatal("failed add must leave no bits behind")
	}
	if b.MonitoredWords() != 4 {
		t.Fatalf("monitored words = %d, want 4", b.MonitoredWords())
	}
}

func TestRemoveUnmonitoredFails(t *testing.T) {
	b := New(DefaultConfig)
	if err := b.Remove(0x1000, 4); err == nil {
		t.Fatal("removing unmonitored words must fail")
	}
}

func TestUnmonitoredFlagLifecycle(t *testing.T) {
	b := New(DefaultConfig)
	addr := uint32(0x4000)
	if !b.SegmentUnmonitored(addr) {
		t.Fatal("fresh segment must be unmonitored")
	}
	b.Add(addr, 4)
	if b.SegmentUnmonitored(addr) {
		t.Fatal("flag must clear on first region")
	}
	b.Add(addr+8, 4)
	b.Remove(addr, 4)
	if b.SegmentUnmonitored(addr) {
		t.Fatal("flag must stay clear while any word is monitored")
	}
	b.Remove(addr+8, 4)
	if !b.SegmentUnmonitored(addr) {
		t.Fatal("flag must set when the last word is removed")
	}
	if b.SegmentCount(addr) != 0 {
		t.Fatal("count must return to zero")
	}
}

func TestSegmentRecycling(t *testing.T) {
	b := New(DefaultConfig)
	before := len(b.segs)
	for i := 0; i < 100; i++ {
		b.Add(0x8000, 4)
		b.Remove(0x8000, 4)
	}
	if got := len(b.segs) - before; got > 1 {
		t.Fatalf("repeated add/remove leaked %d segments", got)
	}
	// A recycled segment must come back zeroed.
	b.Add(0x8000, 4)
	b.Remove(0x8000, 4)
	b.Add(0x8040, 4)
	if b.Contains(0x8000) {
		t.Fatal("recycled segment must be zeroed")
	}
}

// TestOverlappingRegionRefcount is the regression test for the
// double-counting bug: installing overlapping regions with AddRegion must
// count each covered word once in the segment counts, and removing one of
// the overlapping regions must not clear bits (or flip the unmonitored flag)
// while another region still covers them.
func TestOverlappingRegionRefcount(t *testing.T) {
	b := New(DefaultConfig)
	// [0x1000,0x1010) and [0x1008,0x1018) overlap on words 0x1008, 0x100c.
	if err := b.AddRegion(0x1000, 16); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRegion(0x1008, 16); err != nil {
		t.Fatal(err)
	}
	if got := b.SegmentCount(0x1000); got != 6 {
		t.Fatalf("overlapping regions double-counted: SegmentCount = %d, want 6", got)
	}
	if got := b.MonitoredWords(); got != 6 {
		t.Fatalf("MonitoredWords = %d, want 6", got)
	}
	// Removing the first region must keep the shared words monitored.
	if err := b.RemoveRegion(0x1000, 16); err != nil {
		t.Fatal(err)
	}
	for _, a := range []uint32{0x1008, 0x100c, 0x1010, 0x1014} {
		if !b.Contains(a) {
			t.Errorf("word %#x lost its bit while a region still covers it", a)
		}
	}
	for _, a := range []uint32{0x1000, 0x1004} {
		if b.Contains(a) {
			t.Errorf("word %#x must be clear after its only region went", a)
		}
	}
	if b.SegmentUnmonitored(0x1008) {
		t.Fatal("unmonitored flag flipped early with a region still installed")
	}
	if got := b.SegmentCount(0x1000); got != 4 {
		t.Fatalf("SegmentCount = %d, want 4", got)
	}
	if err := b.RemoveRegion(0x1008, 16); err != nil {
		t.Fatal(err)
	}
	if !b.SegmentUnmonitored(0x1008) || b.MonitoredWords() != 0 {
		t.Fatal("all words removed but segment still flagged monitored")
	}
}

// TestAdjacentRegions confirms adjacency is not treated as overlap.
func TestAdjacentRegions(t *testing.T) {
	b := New(DefaultConfig)
	if err := b.AddRegion(0x2000, 8); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRegion(0x2008, 8); err != nil {
		t.Fatal(err)
	}
	if got := b.SegmentCount(0x2000); got != 4 {
		t.Fatalf("SegmentCount = %d, want 4", got)
	}
	if err := b.RemoveRegion(0x2000, 8); err != nil {
		t.Fatal(err)
	}
	if b.Contains(0x2004) || !b.Contains(0x2008) || !b.Contains(0x200c) {
		t.Fatal("removing one adjacent region disturbed its neighbour")
	}
}

// TestIdenticalRegionRefcount installs the same region twice.
func TestIdenticalRegionRefcount(t *testing.T) {
	b := New(DefaultConfig)
	for i := 0; i < 2; i++ {
		if err := b.AddRegion(0x3000, 8); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.MonitoredWords(); got != 2 {
		t.Fatalf("MonitoredWords = %d, want 2", got)
	}
	if err := b.RemoveRegion(0x3000, 8); err != nil {
		t.Fatal(err)
	}
	if !b.Contains(0x3000) || !b.Contains(0x3004) {
		t.Fatal("first removal of a doubly-installed region cleared the bits")
	}
	if err := b.RemoveRegion(0x3000, 8); err != nil {
		t.Fatal(err)
	}
	if b.Contains(0x3000) || b.MonitoredWords() != 0 {
		t.Fatal("second removal must clear the bits")
	}
	if err := b.RemoveRegion(0x3000, 8); err == nil {
		t.Fatal("third removal must fail")
	}
}

// TestRemoveRegionFailureAtomic: a RemoveRegion over a partly-unmonitored
// range must fail without dropping refcounts on the covered prefix.
func TestRemoveRegionFailureAtomic(t *testing.T) {
	b := New(DefaultConfig)
	if err := b.AddRegion(0x4000, 8); err != nil {
		t.Fatal(err)
	}
	if err := b.RemoveRegion(0x4000, 16); err == nil {
		t.Fatal("RemoveRegion over unmonitored words must fail")
	}
	if !b.Contains(0x4000) || !b.Contains(0x4004) {
		t.Fatal("failed RemoveRegion must leave the bitmap untouched")
	}
}

// TestConcurrentLookupDuringChurn exercises the lock-free lookup path while
// regions churn: under -race this is the contract's proof obligation. A word
// never covered must always read false; a word covered for the whole run
// must always read true.
func TestConcurrentLookupDuringChurn(t *testing.T) {
	b := New(Config{AddrBits: 24, SegWords: 64})
	if err := b.Add(0x10_0000, 16); err != nil { // pinned region
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if b.Contains(0x20_0000 + uint32(i%1024)*4) {
					t.Error("never-monitored word read as monitored")
					return
				}
				if !b.Contains(0x10_0000 + uint32(i%4)*4) {
					t.Error("pinned word read as unmonitored")
					return
				}
				b.SegmentUnmonitored(0x30_0000 + uint32(i%4096)*4)
				b.ContainsAccess(0x30_0000+uint32(i%4096)*4, 8)
			}
		}(g)
	}
	churn := uint32(0x30_0000)
	for i := 0; i < 2000; i++ {
		a := churn + uint32(i%64)*512
		if err := b.AddRegion(a, 32); err != nil {
			t.Fatal(err)
		}
		if err := b.AddRegion(a+16, 32); err != nil { // overlapping
			t.Fatal(err)
		}
		if err := b.RemoveRegion(a, 32); err != nil {
			t.Fatal(err)
		}
		if err := b.RemoveRegion(a+16, 32); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestRegionSpanningSegments(t *testing.T) {
	b := New(DefaultConfig)
	segBytes := uint32(1) << b.SegShift()
	start := segBytes*3 - 8
	if err := b.Add(start, 16); err != nil {
		t.Fatal(err)
	}
	for off := uint32(0); off < 16; off += 4 {
		if !b.Contains(start + off) {
			t.Errorf("word %#x must be monitored", start+off)
		}
	}
	if b.SegmentUnmonitored(start) || b.SegmentUnmonitored(start+12) {
		t.Fatal("both segments must be flagged monitored")
	}
	if err := b.Remove(start, 16); err != nil {
		t.Fatal(err)
	}
	if !b.SegmentUnmonitored(start) || !b.SegmentUnmonitored(start+12) {
		t.Fatal("both segments must return to unmonitored")
	}
}

func TestContainsAccessDoubleWord(t *testing.T) {
	b := New(DefaultConfig)
	b.Add(0x1004, 4)
	if !b.ContainsAccess(0x1000, 8) {
		t.Fatal("std spanning a monitored second word must hit")
	}
	if b.ContainsAccess(0x1008, 8) {
		t.Fatal("std past the region must miss")
	}
	if !b.ContainsAccess(0x1004, 4) {
		t.Fatal("st of the monitored word must hit")
	}
}

func TestSmallAddressSpace(t *testing.T) {
	b := New(Config{AddrBits: 16, SegWords: 32})
	if b.NumSegments() != (1<<16)/(32*4) {
		t.Fatalf("NumSegments = %d", b.NumSegments())
	}
	b.Add(0x100, 4)
	if !b.Contains(0x100) {
		t.Fatal("lookup in small space failed")
	}
	// Addresses are masked into the space.
	if !b.Contains(0x10100) {
		t.Fatal("addresses must be masked to AddrBits")
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{AddrBits: 0, SegWords: 128},
		{AddrBits: 33, SegWords: 128},
		{AddrBits: 32, SegWords: 100},
		{AddrBits: 32, SegWords: 16},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) must panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestMemoryOverhead(t *testing.T) {
	b := New(DefaultConfig)
	base := b.MemoryOverheadBytes()
	// Table: 2^23 entries * 4B = 32MB; one shared zero segment.
	if base < 32<<20 {
		t.Fatalf("overhead %d too small for a full 32-bit table", base)
	}
	b.Add(0x1000, 4)
	if b.MemoryOverheadBytes() <= base {
		t.Fatal("allocating a private segment must grow the overhead")
	}
}

// TestOracle drives the bitmap against a naive map of monitored words with
// random region create/delete/lookup traffic.
func TestOracle(t *testing.T) {
	b := New(Config{AddrBits: 20, SegWords: 128})
	oracle := make(map[uint32]bool)
	type region struct{ addr, size uint32 }
	var live []region
	rng := rand.New(rand.NewSource(1))

	overlapsOracle := func(addr, size uint32) bool {
		for o := uint32(0); o < size; o += 4 {
			if oracle[addr+o] {
				return true
			}
		}
		return false
	}

	for step := 0; step < 5000; step++ {
		switch rng.Intn(4) {
		case 0: // add
			addr := uint32(rng.Intn(1<<18)) &^ 3
			size := uint32(rng.Intn(16)+1) * 4
			err := b.Add(addr, size)
			if overlapsOracle(addr, size) {
				if err == nil {
					t.Fatalf("step %d: Add(%#x,%d) should have failed (overlap)", step, addr, size)
				}
			} else if err != nil {
				t.Fatalf("step %d: Add(%#x,%d) failed: %v", step, addr, size, err)
			} else {
				for o := uint32(0); o < size; o += 4 {
					oracle[addr+o] = true
				}
				live = append(live, region{addr, size})
			}
		case 1: // remove
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			r := live[i]
			if err := b.Remove(r.addr, r.size); err != nil {
				t.Fatalf("step %d: Remove(%#x,%d) failed: %v", step, r.addr, r.size, err)
			}
			for o := uint32(0); o < r.size; o += 4 {
				delete(oracle, r.addr+o)
			}
			live = append(live[:i], live[i+1:]...)
		default: // lookup
			addr := uint32(rng.Intn(1<<18)) &^ 3
			if got, want := b.Contains(addr), oracle[addr]; got != want {
				t.Fatalf("step %d: Contains(%#x) = %v, oracle %v", step, addr, got, want)
			}
		}
	}
	// Unmonitored flag must agree with per-segment truth everywhere we know.
	for a := range oracle {
		if b.SegmentUnmonitored(a) {
			t.Fatalf("segment of %#x has a monitored word but flag says unmonitored", a)
		}
	}
}

func TestQuickLookupAfterAdd(t *testing.T) {
	f := func(rawAddr uint32, nWords uint8) bool {
		b := New(Config{AddrBits: 24, SegWords: 64})
		addr := (rawAddr &^ 3) & 0x00FF_FF00
		size := (uint32(nWords%16) + 1) * 4
		if b.Add(addr, size) != nil {
			return true // alignment/range rejection is fine
		}
		for o := uint32(0); o < size; o += 4 {
			if !b.Contains(addr + o) {
				return false
			}
		}
		return !b.Contains(addr+size) && (addr == 0 || !b.Contains(addr-4))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	bm := New(DefaultConfig)
	bm.Add(0x1000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Contains(uint32(0x8000_0000) + uint32(i%4096)*4)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	bm := New(DefaultConfig)
	bm.Add(0x1000, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Contains(0x1000 + uint32(i%1024)*4)
	}
}

func BenchmarkAddRemove(b *testing.B) {
	bm := New(DefaultConfig)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Add(0x1000, 64)
		bm.Remove(0x1000, 64)
	}
}

// TestContainsAccessSegmentStraddle is the regression test for doubleword
// accesses that straddle a segment boundary on the lock-free path: each word
// of the access must be resolved through its own segment-table entry, so a
// hit in either segment is found even when the other segment is unmonitored
// (or was never privately allocated).
func TestContainsAccessSegmentStraddle(t *testing.T) {
	b := New(DefaultConfig)
	segBytes := uint32(1) << b.SegShift()
	boundary := segBytes * 5
	first := boundary - 4 // last word of segment 4
	// Monitor only the word AFTER the boundary: segment 4 stays on the
	// shared zero segment.
	if err := b.Add(boundary, 4); err != nil {
		t.Fatal(err)
	}
	if !b.ContainsAccess(first, 8) {
		t.Fatal("straddling access must find the hit in the second segment")
	}
	if b.ContainsAccess(first-8, 8) {
		t.Fatal("access entirely inside the unmonitored segment must miss")
	}
	if err := b.Remove(boundary, 4); err != nil {
		t.Fatal(err)
	}
	// Now monitor only the word BEFORE the boundary.
	if err := b.Add(first, 4); err != nil {
		t.Fatal(err)
	}
	if !b.ContainsAccess(first, 8) {
		t.Fatal("straddling access must find the hit in the first segment")
	}
	if b.ContainsAccess(boundary, 8) {
		t.Fatal("access entirely past the region must miss")
	}
}

// TestRemoveSplitsStraddlingRegion removes the two middle words of a region
// that crosses a segment boundary, splitting it into two single-word stubs
// in different segments, and checks every per-word and per-access lookup
// against the resulting shape.
func TestRemoveSplitsStraddlingRegion(t *testing.T) {
	b := New(DefaultConfig)
	segBytes := uint32(1) << b.SegShift()
	boundary := segBytes * 7
	start := boundary - 8
	// Four words: two on each side of the boundary.
	if err := b.Add(start, 16); err != nil {
		t.Fatal(err)
	}
	// Remove the straddling middle pair (one word in each segment).
	if err := b.Remove(start+4, 8); err != nil {
		t.Fatal(err)
	}
	if !b.Contains(start) || !b.Contains(start+12) {
		t.Fatal("outer words must stay monitored")
	}
	if b.Contains(start+4) || b.Contains(start+8) {
		t.Fatal("removed middle words must be clear")
	}
	if b.ContainsAccess(start+4, 8) {
		t.Fatal("doubleword access covering only the removed words must miss")
	}
	if !b.ContainsAccess(start, 8) || !b.ContainsAccess(start+8, 8) {
		t.Fatal("doubleword accesses touching a surviving word must hit")
	}
	if b.SegmentUnmonitored(start) || b.SegmentUnmonitored(boundary) {
		t.Fatal("both segments still hold one monitored word")
	}
	if err := b.Remove(start, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.Remove(start+12, 4); err != nil {
		t.Fatal(err)
	}
	if !b.SegmentUnmonitored(start) || !b.SegmentUnmonitored(boundary) {
		t.Fatal("both segments must return to unmonitored")
	}
}

func TestKindPlanes(t *testing.T) {
	b := New(DefaultConfig)
	if err := b.AddKind(0x1000, 8, KindLoad); err != nil {
		t.Fatal(err)
	}
	if !b.Contains(0x1000) {
		t.Fatal("any-plane must cover a load-kind region")
	}
	if !b.ContainsKind(0x1000, KindLoad) || !b.ContainsKind(0x1004, KindAll) {
		t.Fatal("load plane must cover the region")
	}
	if b.ContainsKind(0x1000, KindStore) {
		t.Fatal("store plane must not cover a load-only region")
	}
	if !b.ContainsAccessKind(0x0FFC, 8, KindLoad) {
		t.Fatal("doubleword load access must hit the load plane")
	}
	if b.ContainsAccessKind(0x0FFC, 8, KindStore) {
		t.Fatal("doubleword store access must miss the load-only region")
	}
	if err := b.RemoveKind(0x1000, 8, KindLoad); err != nil {
		t.Fatal(err)
	}
	if b.Contains(0x1000) || b.ContainsKind(0x1000, KindAll) {
		t.Fatal("remove must clear every plane")
	}
	// Kindless API defaults to the paper's store kind.
	if err := b.Add(0x2000, 4); err != nil {
		t.Fatal(err)
	}
	if !b.ContainsKind(0x2000, KindStore) || b.ContainsKind(0x2000, KindLoad) {
		t.Fatal("kindless Add must populate only the store plane")
	}
	// Invalid kinds are rejected.
	if err := b.AddKind(0x3000, 4, 0); err == nil {
		t.Fatal("kind 0 must be rejected")
	}
	if err := b.AddKind(0x3000, 4, Kind(0x80)); err == nil {
		t.Fatal("unknown kind bits must be rejected")
	}
}

// TestKindRefcountOverlap overlaps refcounted regions of different kinds on
// the same words and checks that each plane clears exactly when its own last
// covering region goes.
func TestKindRefcountOverlap(t *testing.T) {
	b := New(DefaultConfig)
	addr := uint32(0x5000)
	if err := b.AddRegionKind(addr, 8, KindStore); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRegionKind(addr, 8, KindStore); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRegionKind(addr+4, 8, KindLoad); err != nil {
		t.Fatal(err)
	}
	if err := b.RemoveRegionKind(addr, 8, KindStore); err != nil {
		t.Fatal(err)
	}
	if !b.ContainsKind(addr, KindStore) || !b.ContainsKind(addr+4, KindStore) {
		t.Fatal("store plane must survive while a store region remains")
	}
	if err := b.RemoveRegionKind(addr, 8, KindStore); err != nil {
		t.Fatal(err)
	}
	if b.ContainsKind(addr, KindStore) || b.ContainsKind(addr+4, KindStore) {
		t.Fatal("store plane must clear with the last store region")
	}
	if !b.Contains(addr+4) || !b.ContainsKind(addr+8, KindLoad) {
		t.Fatal("load region must survive store removals")
	}
	if b.Contains(addr) {
		t.Fatal("word covered only by removed store regions must clear")
	}
	if err := b.RemoveRegionKind(addr+4, 8, KindLoad); err != nil {
		t.Fatal(err)
	}
	if b.Contains(addr+4) || b.ContainsKind(addr+8, KindAll) {
		t.Fatal("all planes must clear when the last region goes")
	}
	if b.MonitoredWords() != 0 {
		t.Fatalf("monitored words = %d, want 0", b.MonitoredWords())
	}
}

// TestKindLookupDuringChurn hammers the kind-plane lock-free lookups while a
// mutator churns regions of both kinds; run under -race this checks the
// plane reads are properly atomic.
func TestKindLookupDuringChurn(t *testing.T) {
	b := New(Config{AddrBits: 20, SegWords: 128})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := uint32(r.Intn(1<<18)) &^ 3
				k := Kind(1 + r.Intn(3))
				_ = b.ContainsKind(a, k)
				_ = b.ContainsAccessKind(a, 8, k)
			}
		}(int64(i))
	}
	for i := 0; i < 2000; i++ {
		a := uint32((i*512)%(1<<18)) &^ 3
		k := KindStore
		if i%2 == 1 {
			k = KindLoad
		}
		if err := b.AddRegionKind(a, 16, k); err != nil {
			t.Fatal(err)
		}
		if err := b.RemoveRegionKind(a, 16, k); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
