package bitmap

import "testing"

// BenchmarkLookup measures the host cost of the hot-path membership test the
// simulated write checks model (Contains + the span form ContainsAccess),
// over a bitmap with a realistic mix of monitored and untouched segments.
func BenchmarkLookup(b *testing.B) {
	bm := New(DefaultConfig)
	// One monitored run per 64KB, so lookups hit monitored segments,
	// allocated-but-clear words, and never-allocated segments alike.
	for base := uint32(0x1000); base < 0x100000; base += 0x10000 {
		if err := bm.Add(base, 256); err != nil {
			b.Fatal(err)
		}
	}
	addrs := [8]uint32{0x1000, 0x10f0, 0x2000, 0x11000, 0x20000, 0x210fc, 0x80000, 0xf0040}
	b.ReportAllocs()
	b.ResetTimer()
	var hits int
	for i := 0; i < b.N; i++ {
		a := addrs[i&7]
		if bm.Contains(a) {
			hits++
		}
		if bm.ContainsAccess(a, 8) {
			hits++
		}
	}
	if hits == 0 {
		b.Fatal("lookup benchmark never hit a monitored word")
	}
}

// BenchmarkSetRange measures region creation and deletion (Add + Remove of a
// multi-word span), the debugger-side cost of inserting a data breakpoint.
func BenchmarkSetRange(b *testing.B) {
	bm := New(DefaultConfig)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := uint32(0x1000) + uint32(i&1023)*0x1000
		if err := bm.Add(base, 512); err != nil {
			b.Fatal(err)
		}
		if err := bm.Remove(base, 512); err != nil {
			b.Fatal(err)
		}
	}
	if bm.MonitoredWords() != 0 {
		b.Fatal("ranges must be fully cleared")
	}
}
