// Package bench is the experiment harness: it reproduces every table and
// figure in the paper's evaluation by compiling the workload suite, patching
// it with each write-check implementation, executing it on the simulated
// machine, and reducing cycle counts and event counters to the numbers the
// paper reports.
package bench

import (
	"fmt"
	"io"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/elim"
	"databreak/internal/machine"
	"databreak/internal/minic"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// FarRegion is a monitored region far from anything the workloads write:
// present so the service is enabled (disabled flag clear) without producing
// monitor hits — the paper's "overhead is independent of the number of
// breakpoints" setting.
const FarRegion uint32 = 0x7800_0000

// Config parameterizes the harness.
type Config struct {
	Scale int
	Cache cache.Config
	Costs machine.Costs
	// Engine selects the execution engine for every machine the harness
	// creates (mrsbench -engine). The zero value is machine.EngineTrace;
	// simulated counts are engine-independent, so this only moves host time.
	Engine machine.Engine
	// HotThreshold and BrProfMin override the trace/closure tier's tuning
	// knobs on every machine the harness creates (mrsbench/mrsd
	// -hot-threshold / -brprof-min): the per-head dispatch count that
	// triggers lazy trace compilation of private text, and the branch-site
	// execution count below which the edge profile defers to static
	// prediction. <= 0 keeps the machine defaults (64 / 8). Like Engine,
	// simulated counts are independent of either setting.
	HotThreshold int
	BrProfMin    int
	// Workers is the number of benchmark cells executed concurrently; <= 0
	// means runtime.GOMAXPROCS(0). Results are independent of the setting:
	// every table driver collects cells in deterministic input order.
	Workers int
	// Log, when non-nil, receives progress lines. The table drivers wrap it
	// so concurrent workers may share it; see SyncWriter.
	Log io.Writer
	// Server, when non-nil, routes every monitored run through a
	// monitor.Server session instead of a bare Service: the harness attaches
	// each machine, performs region setup under the session lock, and
	// executes in sliced RunFor steps. Counts are bit-identical either way
	// (see machine.RunFor); the table drivers share one server across all
	// worker goroutines, which is exactly the concurrent-session workload
	// the stress harness checks.
	Server *monitor.Server
	// Artifacts, when non-nil, memoizes build products (compiled units,
	// patched+assembled programs with their shared images) across tables,
	// -count repeats, and stress sessions. See artifact.go. Executions are
	// never memoized, so results are byte-identical with or without it.
	Artifacts *ArtifactCache
}

// DefaultConfig runs the suite at scale 1 on the default machine.
func DefaultConfig() Config {
	return Config{Scale: 1, Cache: cache.DefaultConfig, Costs: machine.DefaultCosts}
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Run is the outcome of one program execution.
type Run struct {
	Cycles   int64
	Instrs   int64
	Output   string
	Counters map[string]uint64
	Cache    cache.Stats
	// Hits is the monitor-service hit count for runs driven through
	// execute(); the mrsd load generator compares it against the daemon's
	// HitTotal. Zero for baseline runs (no service).
	Hits int64
}

func (c Config) newMachine() *machine.Machine {
	m := machine.New(c.Cache, c.Costs)
	m.SetEngine(c.Engine)
	if c.HotThreshold > 0 {
		m.SetHotThreshold(c.HotThreshold)
	}
	if c.BrProfMin > 0 {
		m.SetBrProfMin(c.BrProfMin)
	}
	return m
}

// Compile translates a workload to a parsed assembly unit.
func Compile(p workload.Program) (*asm.Unit, error) {
	asmSrc, err := minic.Compile(p.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	u, err := asm.Parse(p.Name+".s", asmSrc)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	return u, nil
}

// unitFor is the cached form of Compile. The returned unit may be shared
// with other cells and sessions: treat it as read-only and Clone before
// rewriting.
func (c Config) unitFor(p workload.Program) (*asm.Unit, error) {
	art, err := c.artifact(p.Source, "unit", func() (Artifact, error) {
		u, err := Compile(p)
		return Artifact{Unit: u}, err
	})
	return art.Unit, err
}

// baselineProgram assembles the unpatched unit, once per distinct source.
func (c Config) baselineProgram(src string, u *asm.Unit) (*asm.Program, error) {
	art, err := c.artifact(src, "baseline", func() (Artifact, error) {
		prog, err := asm.Assemble(asm.Options{AddStartup: true}, u.Clone())
		return Artifact{Prog: prog}, err
	})
	return art.Prog, err
}

// patchedProgram patches the unit with popts and assembles, once per
// distinct (source, normalized options) pair — Table 1's Disabled cell and
// its Bitmap column, or ablation variant 0 and Table 1's BmInlReg column,
// share one artifact because only their run configuration differs.
func (c Config) patchedProgram(src string, u *asm.Unit, popts patch.Options) (*asm.Program, error) {
	art, err := c.artifact(src, descPatch(popts), func() (Artifact, error) {
		res, err := patch.Apply(popts, u.Clone())
		if err != nil {
			return Artifact{}, err
		}
		prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
		return Artifact{Prog: prog}, err
	})
	return art.Prog, err
}

// elimProgram rewrites the unit with the elimination analysis and
// assembles, once per distinct (source, mode, monitor config). The cached
// elim.Result is read-only shared state; the per-run Runtime that arms
// sites from it patches text through machine.PatchInstr, which privatizes
// the shared image first.
func (c Config) elimProgram(src string, u *asm.Unit, mode elim.Mode, mcfg monitor.Config) (*asm.Program, *elim.Result, error) {
	art, err := c.artifact(src, descElim(mode, mcfg), func() (Artifact, error) {
		res, err := elim.Apply(elim.Options{Mode: mode, Monitor: mcfg}, u.Clone())
		if err != nil {
			return Artifact{}, err
		}
		prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
		return Artifact{Prog: prog, Elim: res}, err
	})
	return art.Prog, art.Elim, err
}

// collect reduces a halted machine to the Run record the tables consume.
func collect(prog *asm.Program, m *machine.Machine) Run {
	counters := make(map[string]uint64, len(prog.CounterNames))
	for _, name := range prog.CounterNames {
		counters[name] = prog.Counter(m, name)
	}
	return Run{
		Cycles:   m.Cycles(),
		Instrs:   m.Instrs(),
		Output:   m.Output(),
		Counters: counters,
		Cache:    m.CacheStats(),
	}
}

func (c Config) execute(prog *asm.Program, mcfg monitor.Config, regions [][2]uint32, disabled bool) (Run, error) {
	m := c.newMachine()
	prog.LoadShared(m)
	setup := func(svc *monitor.Service) error {
		svc.DisabledOverride = disabled
		for _, r := range regions {
			if err := svc.CreateRegion(r[0], r[1]); err != nil {
				return err
			}
		}
		svc.Reinstall()
		return nil
	}
	if c.Server != nil {
		sess, err := c.Server.Attach(mcfg, m)
		if err != nil {
			return Run{}, err
		}
		defer sess.Detach()
		if err := sess.Do(func(_ *machine.Machine, svc *monitor.Service) error {
			return setup(svc)
		}); err != nil {
			return Run{}, err
		}
		if _, err := sess.Run(); err != nil {
			return Run{}, err
		}
		var run Run
		err = sess.Do(func(m *machine.Machine, svc *monitor.Service) error {
			run = collect(prog, m)
			run.Hits = svc.HitCount
			return nil
		})
		return run, err
	}
	svc, err := monitor.NewService(mcfg, m)
	if err != nil {
		return Run{}, err
	}
	if err := setup(svc); err != nil {
		return Run{}, err
	}
	if _, err := m.Run(); err != nil {
		return Run{}, err
	}
	run := collect(prog, m)
	run.Hits = svc.HitCount
	return run, nil
}

// RunBaseline assembles and runs the unpatched program. Uncached entry
// point (no content identity for a bare unit); the table drivers use
// runBaseline with the workload source so repeats share one program.
func (c Config) RunBaseline(u *asm.Unit) (Run, error) {
	return c.runBaseline("", u)
}

func (c Config) runBaseline(src string, u *asm.Unit) (Run, error) {
	// Every needBase table re-measures the same baseline; memoRun executes
	// it once per process.
	return c.memoRun(src, "baseline|exec", func() (Run, error) {
		prog, err := c.baselineProgram(src, u)
		if err != nil {
			return Run{}, err
		}
		m := c.newMachine()
		prog.LoadShared(m)
		if _, err := m.Run(); err != nil {
			return Run{}, err
		}
		return Run{Cycles: m.Cycles(), Instrs: m.Instrs(), Output: m.Output(), Cache: m.CacheStats()}, nil
	})
}

// RunStrategy patches with the given Table-1 strategy and runs. With
// disabled set, no region is created and the disabled flag stays on.
// Uncached entry point; the table drivers use runStrategy.
func (c Config) RunStrategy(u *asm.Unit, strat patch.Strategy, mcfg monitor.Config, disabled bool) (Run, error) {
	return c.runStrategy("", u, strat, mcfg, disabled)
}

func (c Config) runStrategy(src string, u *asm.Unit, strat patch.Strategy, mcfg monitor.Config, disabled bool) (Run, error) {
	popts := patch.Options{Strategy: strat, Monitor: mcfg}
	effCfg := mcfg
	if strat == patch.Cache || strat == patch.CacheInline {
		effCfg.Flags = true
	}
	var regions [][2]uint32
	if !disabled && strat != patch.Nops && strat != patch.None {
		regions = [][2]uint32{{FarRegion, 4}}
	}
	desc := descPatch(popts) + "|exec|" + descMonitor(effCfg) + "|" + descRegions(regions, disabled)
	return c.memoRun(src, desc, func() (Run, error) {
		prog, err := c.patchedProgram(src, u, popts)
		if err != nil {
			return Run{}, err
		}
		return c.execute(prog, effCfg, regions, disabled)
	})
}

// RunElim rewrites with the elimination analysis (Sym or Full) and runs.
// Uncached entry point; the table drivers use runElim.
func (c Config) RunElim(u *asm.Unit, mode elim.Mode, mcfg monitor.Config) (Run, error) {
	return c.runElim("", u, mode, mcfg)
}

func (c Config) runElim(src string, u *asm.Unit, mode elim.Mode, mcfg monitor.Config) (Run, error) {
	regions := [][2]uint32{{FarRegion, 4}}
	desc := descElim(mode, mcfg) + "|exec|" + descMonitor(mcfg) + "|" + descRegions(regions, false)
	return c.memoRun(src, desc, func() (Run, error) {
		return c.runElimUncached(src, u, mode, mcfg)
	})
}

// runElimUncached builds (through the cache) and executes an elimination
// run: the per-run elim.Runtime arms sites from the shared result by
// patching live text, which copy-on-write-privatizes the shared image.
func (c Config) runElimUncached(src string, u *asm.Unit, mode elim.Mode, mcfg monitor.Config) (Run, error) {
	prog, res, err := c.elimProgram(src, u, mode, mcfg)
	if err != nil {
		return Run{}, err
	}
	m := c.newMachine()
	prog.LoadShared(m)
	if c.Server != nil {
		sess, err := c.Server.Attach(mcfg, m)
		if err != nil {
			return Run{}, err
		}
		defer sess.Detach()
		if err := sess.Do(func(m *machine.Machine, svc *monitor.Service) error {
			rt := elim.NewRuntime(m, prog, res)
			_ = rt
			if err := svc.CreateRegion(FarRegion, 4); err != nil {
				return err
			}
			svc.Reinstall()
			return nil
		}); err != nil {
			return Run{}, err
		}
		if _, err := sess.Run(); err != nil {
			return Run{}, err
		}
		var run Run
		err = sess.Do(func(m *machine.Machine, _ *monitor.Service) error {
			run = collect(prog, m)
			return nil
		})
		return run, err
	}
	svc, err := monitor.NewService(mcfg, m)
	if err != nil {
		return Run{}, err
	}
	rt := elim.NewRuntime(m, prog, res)
	_ = rt
	if err := svc.CreateRegion(FarRegion, 4); err != nil {
		return Run{}, err
	}
	svc.Reinstall()
	if _, err := m.Run(); err != nil {
		return Run{}, err
	}
	return collect(prog, m), nil
}

func overheadPct(base, with int64) float64 {
	return 100 * (float64(with) - float64(base)) / float64(base)
}

func checkOutput(p workload.Program, want, got string, what string) error {
	if want != got {
		return fmt.Errorf("%s under %s produced %q, baseline %q — monitoring corrupted the program",
			p.Name, what, got, want)
	}
	return nil
}
