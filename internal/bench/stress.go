package bench

import (
	"fmt"
	"sync"

	"databreak/internal/asm"
	"databreak/internal/machine"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/sparc"
	"databreak/internal/workload"
)

// This file is the concurrency stress harness: it runs many monitored
// sessions at once through one monitor.Server — each on its own machine,
// each with a debugger goroutine adding and removing a region mid-run — and
// checks that every session's simulated cycle and instruction counts are
// bit-identical to a serial run of the same program. Any cross-session
// leak, locking bug, or count perturbation from mid-run control traffic
// shows up as a differential failure (and, under -race, as a race report).
//
// All sessions running the same workload execute from ONE shared program
// image (asm.LoadShared), so with PatchChurn enabled this is also the
// copy-on-write torture test: odd-numbered sessions patch live text mid-run
// through Session.Do while their siblings execute from the same image. A
// PatchInstr that wrote the shared arrays instead of privatizing would be a
// data race (caught by -race) and would corrupt the siblings' differential
// counts.

// ChurnRegion is the region the per-session debugger goroutines add and
// remove while the program runs. Like FarRegion it is far from anything the
// workloads touch, so installing and removing it is count-neutral: the
// service stays enabled (FarRegion persists), and the monitor words it
// flips are never read by the patched code.
const ChurnRegion uint32 = 0x7900_0000

// StressConfig parameterizes a Stress run.
type StressConfig struct {
	// Sessions is the number of concurrent sessions; < 2 means one per
	// workload (which also satisfies the harness's ≥8 design point).
	Sessions int
	// Strategy is the write-check implementation; None means
	// BitmapInlineRegisters, the paper's recommended one.
	Strategy patch.Strategy
	// Churn is how many add/remove rounds each session's debugger goroutine
	// performs mid-run; <= 0 means 64.
	Churn int
	// PatchChurn makes every odd-numbered session also toggle text index 0
	// (startup `call main`, executed exactly once) between unimp and its
	// original form mid-run, through the session lock. The first toggle
	// privatizes the session's shared image (copy-on-write); even-numbered
	// siblings keep executing from the pristine shared arrays and must stay
	// bit-identical to the serial reference. Patching invalidates the
	// simulated I-cache line under the startup code, which legitimately
	// perturbs the patching session's own cycle count, so patching sessions
	// are checked on instruction counts and output only.
	PatchChurn bool
}

// StressSession is one session's outcome.
type StressSession struct {
	Session int
	Program string
	Cycles  int64
	Instrs  int64
	// Patched reports that this session ran the PatchChurn flow (its cycle
	// count is self-consistent but not compared against the serial run).
	Patched bool
}

// StressReport summarizes a Stress run that passed its differential check.
type StressReport struct {
	Sessions []StressSession
	// Hits counts monitor hits observed on the server fan-in (expected 0:
	// both FarRegion and ChurnRegion are outside every workload's write
	// set).
	Hits int
}

// Stress compiles and patches every workload once, then runs sc.Sessions
// concurrent server sessions (round-robin over the workloads) with mid-run
// region churn, comparing each session's counts against a serial reference
// run of the same program. It errors on any divergence.
func (c Config) Stress(sc StressConfig) (StressReport, error) {
	c = c.normalized()
	programs := workload.All(c.Scale)
	if sc.Sessions < 2 {
		sc.Sessions = len(programs)
	}
	if sc.Strategy == patch.None {
		sc.Strategy = patch.BitmapInlineRegisters
	}
	if sc.Churn <= 0 {
		sc.Churn = 64
	}
	mcfg := monitor.DefaultConfig
	if sc.Strategy == patch.Cache || sc.Strategy == patch.CacheInline {
		mcfg.Flags = true
	}

	// Compile, patch, and assemble each workload once — through the artifact
	// cache when one is configured, so a stress run after the tables reuses
	// their programs. All sessions running the same workload share one
	// Program and therefore one machine image.
	type stressPrep struct {
		name string
		prog *asm.Program
		ref  Run
	}
	serial := c
	serial.Server = nil
	preps, err := parallelMap(c, len(programs), func(i int) (stressPrep, error) {
		p := programs[i]
		c.logf("stress prep: %s", p.Name)
		u, err := c.unitFor(p)
		if err != nil {
			return stressPrep{}, err
		}
		popts := patch.Options{Strategy: sc.Strategy, Monitor: mcfg}
		prog, err := c.patchedProgram(p.Source, u, popts)
		if err != nil {
			return stressPrep{}, err
		}
		// Serial reference: the counts every concurrent session must
		// reproduce bit for bit. Keyed like a table cell, so a stress run
		// sharing a cache with the tables reuses their measurement.
		regions := [][2]uint32{{FarRegion, 4}}
		desc := descPatch(popts) + "|exec|" + descMonitor(mcfg) + "|" + descRegions(regions, false)
		ref, err := serial.memoRun(p.Source, desc, func() (Run, error) {
			return serial.execute(prog, mcfg, regions, false)
		})
		if err != nil {
			return stressPrep{}, err
		}
		return stressPrep{name: p.Name, prog: prog, ref: ref}, nil
	})
	if err != nil {
		return StressReport{}, err
	}

	srv := monitor.NewServer()
	defer srv.Close()

	// Drain the fan-in for the whole run; the channel closes after Close.
	var hits int
	var hitWG sync.WaitGroup
	hitWG.Add(1)
	go func() {
		defer hitWG.Done()
		for range srv.Hits() {
			hits++
		}
	}()

	report := StressReport{Sessions: make([]StressSession, sc.Sessions)}
	errs := make([]error, sc.Sessions)
	var wg sync.WaitGroup
	for i := 0; i < sc.Sessions; i++ {
		i := i
		pp := preps[i%len(preps)]
		wg.Add(1)
		patcher := sc.PatchChurn && i%2 == 1
		go func() {
			defer wg.Done()
			c.logf("stress session %d: %s", i, pp.name)
			run, err := c.stressSession(srv, pp.prog, mcfg, sc.Churn, patcher)
			if err != nil {
				errs[i] = fmt.Errorf("session %d (%s): %w", i, pp.name, err)
				return
			}
			// Patching sessions own a privatized text copy whose I-cache was
			// invalidated mid-run, so only their architectural results are
			// comparable; every other session must match the serial run bit
			// for bit, including cycles.
			cyclesOK := patcher || run.Cycles == pp.ref.Cycles
			if !cyclesOK || run.Instrs != pp.ref.Instrs || run.Output != pp.ref.Output {
				errs[i] = fmt.Errorf(
					"session %d (%s, patcher=%v): concurrent run diverged from serial: cycles %d vs %d, instrs %d vs %d, output match %v",
					i, pp.name, patcher, run.Cycles, pp.ref.Cycles, run.Instrs, pp.ref.Instrs,
					run.Output == pp.ref.Output)
				return
			}
			report.Sessions[i] = StressSession{
				Session: i, Program: pp.name, Cycles: run.Cycles, Instrs: run.Instrs, Patched: patcher,
			}
		}()
	}
	wg.Wait()
	srv.Close()
	hitWG.Wait()
	report.Hits = hits
	for _, err := range errs {
		if err != nil {
			return StressReport{}, err
		}
	}
	return report, nil
}

// stressSession runs one workload to completion through a server session
// while a debugger goroutine adds and removes ChurnRegion — the mid-run
// control traffic the concurrency contract must absorb without perturbing
// simulated counts. With patcher set, the goroutine also toggles text
// index 0 between unimp and its original instruction through Session.Do:
// the first toggle copy-on-write-privatizes this machine's shared image
// while sibling sessions keep executing from it.
func (c Config) stressSession(srv *monitor.Server, prog *asm.Program, mcfg monitor.Config, churn int, patcher bool) (Run, error) {
	m := c.newMachine()
	prog.LoadShared(m)
	sess, err := srv.Attach(mcfg, m)
	if err != nil {
		return Run{}, err
	}
	defer sess.Detach()
	if err := sess.Do(func(_ *machine.Machine, svc *monitor.Service) error {
		if err := svc.CreateRegion(FarRegion, 4); err != nil {
			return err
		}
		svc.Reinstall()
		return nil
	}); err != nil {
		return Run{}, err
	}

	done := make(chan struct{})
	var churnErr error
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		orig := prog.Text[0]
		unimp := sparc.Instr{Op: sparc.Unimp}
		for i := 0; i < churn; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := sess.CreateRegion(ChurnRegion, 16); err != nil {
				churnErr = err
				return
			}
			// Kind-restricted and transition regions churn alongside the
			// plain one: same far addresses (no workload traffic), so the
			// bitmap and shadow-snapshot plumbing is exercised mid-run
			// without perturbing any simulated count.
			if err := sess.CreateRegionKind(ChurnRegion+16, 8, monitor.KindLoad); err != nil {
				churnErr = err
				return
			}
			if err := sess.CreateTransitionRegion(ChurnRegion+24, 4,
				monitor.Predicate{Kind: monitor.PredNonzero}); err != nil {
				churnErr = err
				return
			}
			if err := sess.DeleteRegion(ChurnRegion, 16); err != nil {
				churnErr = err
				return
			}
			if err := sess.DeleteRegion(ChurnRegion+16, 8); err != nil {
				churnErr = err
				return
			}
			if err := sess.DeleteRegion(ChurnRegion+24, 4); err != nil {
				churnErr = err
				return
			}
			if !patcher {
				continue
			}
			if err := sess.Do(func(m *machine.Machine, _ *monitor.Service) error {
				// Index 0 is the startup `call main`: it executes exactly
				// once, so once at least one instruction has retired it is
				// dead code and may hold anything — but a leak of the unimp
				// into the shared image would kill a sibling that has not
				// started yet.
				if m.Instrs() == 0 {
					return nil
				}
				m.PatchInstr(0, unimp)
				m.PatchInstr(0, orig)
				return nil
			}); err != nil {
				churnErr = err
				return
			}
		}
	}()

	_, runErr := sess.Run()
	close(done)
	cwg.Wait()
	if runErr != nil {
		return Run{}, runErr
	}
	if churnErr != nil {
		return Run{}, churnErr
	}
	var run Run
	err = sess.Do(func(m *machine.Machine, _ *monitor.Service) error {
		run = collect(prog, m)
		return nil
	})
	return run, err
}
