package bench

import (
	"fmt"
	"sync"

	"databreak/internal/asm"
	"databreak/internal/machine"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// This file is the concurrency stress harness: it runs many monitored
// sessions at once through one monitor.Server — each on its own machine,
// each with a debugger goroutine adding and removing a region mid-run — and
// checks that every session's simulated cycle and instruction counts are
// bit-identical to a serial run of the same program. Any cross-session
// leak, locking bug, or count perturbation from mid-run control traffic
// shows up as a differential failure (and, under -race, as a race report).

// ChurnRegion is the region the per-session debugger goroutines add and
// remove while the program runs. Like FarRegion it is far from anything the
// workloads touch, so installing and removing it is count-neutral: the
// service stays enabled (FarRegion persists), and the monitor words it
// flips are never read by the patched code.
const ChurnRegion uint32 = 0x7900_0000

// StressConfig parameterizes a Stress run.
type StressConfig struct {
	// Sessions is the number of concurrent sessions; < 2 means one per
	// workload (which also satisfies the harness's ≥8 design point).
	Sessions int
	// Strategy is the write-check implementation; None means
	// BitmapInlineRegisters, the paper's recommended one.
	Strategy patch.Strategy
	// Churn is how many add/remove rounds each session's debugger goroutine
	// performs mid-run; <= 0 means 64.
	Churn int
}

// StressSession is one session's outcome.
type StressSession struct {
	Session int
	Program string
	Cycles  int64
	Instrs  int64
}

// StressReport summarizes a Stress run that passed its differential check.
type StressReport struct {
	Sessions []StressSession
	// Hits counts monitor hits observed on the server fan-in (expected 0:
	// both FarRegion and ChurnRegion are outside every workload's write
	// set).
	Hits int
}

// Stress compiles and patches every workload once, then runs sc.Sessions
// concurrent server sessions (round-robin over the workloads) with mid-run
// region churn, comparing each session's counts against a serial reference
// run of the same program. It errors on any divergence.
func (c Config) Stress(sc StressConfig) (StressReport, error) {
	c = c.normalized()
	programs := workload.All(c.Scale)
	if sc.Sessions < 2 {
		sc.Sessions = len(programs)
	}
	if sc.Strategy == patch.None {
		sc.Strategy = patch.BitmapInlineRegisters
	}
	if sc.Churn <= 0 {
		sc.Churn = 64
	}
	mcfg := monitor.DefaultConfig
	if sc.Strategy == patch.Cache || sc.Strategy == patch.CacheInline {
		mcfg.Flags = true
	}

	// Compile, patch, and assemble each workload once. An assembled Program
	// is immutable (Load copies text into the machine), so all sessions
	// running the same workload share one.
	type stressPrep struct {
		name string
		prog *asm.Program
		ref  Run
	}
	serial := c
	serial.Server = nil
	preps, err := parallelMap(c, len(programs), func(i int) (stressPrep, error) {
		p := programs[i]
		c.logf("stress prep: %s", p.Name)
		u, err := Compile(p)
		if err != nil {
			return stressPrep{}, err
		}
		res, err := patch.Apply(patch.Options{Strategy: sc.Strategy, Monitor: mcfg}, u)
		if err != nil {
			return stressPrep{}, err
		}
		prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
		if err != nil {
			return stressPrep{}, err
		}
		// Serial reference: the counts every concurrent session must
		// reproduce bit for bit.
		ref, err := serial.execute(prog, mcfg, [][2]uint32{{FarRegion, 4}}, false)
		if err != nil {
			return stressPrep{}, err
		}
		return stressPrep{name: p.Name, prog: prog, ref: ref}, nil
	})
	if err != nil {
		return StressReport{}, err
	}

	srv := monitor.NewServer()
	defer srv.Close()

	// Drain the fan-in for the whole run; the channel closes after Close.
	var hits int
	var hitWG sync.WaitGroup
	hitWG.Add(1)
	go func() {
		defer hitWG.Done()
		for range srv.Hits() {
			hits++
		}
	}()

	report := StressReport{Sessions: make([]StressSession, sc.Sessions)}
	errs := make([]error, sc.Sessions)
	var wg sync.WaitGroup
	for i := 0; i < sc.Sessions; i++ {
		i := i
		pp := preps[i%len(preps)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.logf("stress session %d: %s", i, pp.name)
			run, err := c.stressSession(srv, pp.prog, mcfg, sc.Churn)
			if err != nil {
				errs[i] = fmt.Errorf("session %d (%s): %w", i, pp.name, err)
				return
			}
			if run.Cycles != pp.ref.Cycles || run.Instrs != pp.ref.Instrs || run.Output != pp.ref.Output {
				errs[i] = fmt.Errorf(
					"session %d (%s): concurrent run diverged from serial: cycles %d vs %d, instrs %d vs %d, output match %v",
					i, pp.name, run.Cycles, pp.ref.Cycles, run.Instrs, pp.ref.Instrs,
					run.Output == pp.ref.Output)
				return
			}
			report.Sessions[i] = StressSession{
				Session: i, Program: pp.name, Cycles: run.Cycles, Instrs: run.Instrs,
			}
		}()
	}
	wg.Wait()
	srv.Close()
	hitWG.Wait()
	report.Hits = hits
	for _, err := range errs {
		if err != nil {
			return StressReport{}, err
		}
	}
	return report, nil
}

// stressSession runs one workload to completion through a server session
// while a debugger goroutine adds and removes ChurnRegion — the mid-run
// control traffic the concurrency contract must absorb without perturbing
// simulated counts.
func (c Config) stressSession(srv *monitor.Server, prog *asm.Program, mcfg monitor.Config, churn int) (Run, error) {
	m := c.newMachine()
	prog.Load(m)
	sess, err := srv.Attach(mcfg, m)
	if err != nil {
		return Run{}, err
	}
	defer sess.Detach()
	if err := sess.Do(func(_ *machine.Machine, svc *monitor.Service) error {
		if err := svc.CreateRegion(FarRegion, 4); err != nil {
			return err
		}
		svc.Reinstall()
		return nil
	}); err != nil {
		return Run{}, err
	}

	done := make(chan struct{})
	var churnErr error
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		for i := 0; i < churn; i++ {
			select {
			case <-done:
				return
			default:
			}
			if err := sess.CreateRegion(ChurnRegion, 16); err != nil {
				churnErr = err
				return
			}
			if err := sess.DeleteRegion(ChurnRegion, 16); err != nil {
				churnErr = err
				return
			}
		}
	}()

	_, runErr := sess.Run()
	close(done)
	cwg.Wait()
	if runErr != nil {
		return Run{}, runErr
	}
	if churnErr != nil {
		return Run{}, churnErr
	}
	var run Run
	err = sess.Do(func(m *machine.Machine, _ *monitor.Service) error {
		run = collect(prog, m)
		return nil
	})
	return run, err
}
