package bench

import (
	"fmt"
	"testing"

	"databreak/internal/asm"
	"databreak/internal/minic"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// smallProgram builds one real patched program to use as the unit of cache
// weight in eviction tests (every entry shares the pointer; accounting
// charges each entry its SizeBytes independently).
func smallProgram(t *testing.T) *asm.Program {
	t.Helper()
	w, ok := workload.ByName("eqntott", 1)
	if !ok {
		t.Fatal("eqntott workload missing")
	}
	src, err := minic.Compile(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	u, err := asm.Parse("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := patch.Apply(patch.Options{Strategy: patch.BitmapInlineRegisters, Monitor: monitor.DefaultConfig}, u)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestArtifactCacheLRUEviction(t *testing.T) {
	prog := smallProgram(t)
	size := int64(prog.SizeBytes())
	if size <= 0 {
		t.Fatalf("SizeBytes = %d", size)
	}

	c := NewArtifactCache()
	c.SetCapBytes(3 * size) // room for exactly three programs

	get := func(i int) {
		t.Helper()
		builds := 0
		_, err := c.do(artifactKey(fmt.Sprintf("src%d", i), "d"), func() (Artifact, error) {
			builds++
			return Artifact{Prog: prog}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = builds
	}

	for i := 0; i < 5; i++ {
		get(i)
	}
	st := c.Stats()
	if st.Evictions != 2 {
		t.Fatalf("Evictions = %d after 5 inserts at cap 3, want 2", st.Evictions)
	}
	if st.Entries != 3 || st.Bytes != 3*size {
		t.Fatalf("resident = %d entries / %d bytes, want 3 / %d", st.Entries, st.Bytes, 3*size)
	}
	if st.CapBytes != 3*size {
		t.Fatalf("CapBytes = %d, want %d", st.CapBytes, 3*size)
	}

	// Entries 0 and 1 were evicted; re-requesting 0 is a rebuild (miss).
	misses := st.Misses
	get(0)
	if got := c.Stats().Misses; got != misses+1 {
		t.Fatalf("re-request of evicted entry: misses %d → %d, want a rebuild", misses, got)
	}

	// Touching an old entry protects it: access 3, insert a new one; the
	// victim must be 4 (LRU), not 3.
	get(3)
	hits := c.Stats().Hits
	get(6)
	get(3)
	if got := c.Stats().Hits; got != hits+1 {
		t.Fatal("recently-touched entry was evicted instead of the LRU one")
	}
	get(4)
	if got := c.Stats().Misses; got == misses+1 {
		t.Fatal("expected entry 4 to have been evicted and rebuilt")
	}
}

func TestArtifactCacheOversizedEntrySurvives(t *testing.T) {
	prog := smallProgram(t)
	size := int64(prog.SizeBytes())

	c := NewArtifactCache()
	c.SetCapBytes(size / 2) // smaller than any single program

	key := artifactKey("big", "d")
	if _, err := c.do(key, func() (Artifact, error) { return Artifact{Prog: prog}, nil }); err != nil {
		t.Fatal(err)
	}
	// The MRU entry is never evicted, even over cap: a second request hits.
	if _, err := c.do(key, func() (Artifact, error) {
		t.Fatal("oversized entry was evicted and rebuilt")
		return Artifact{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 resident entry", st)
	}

	// A second program displaces it (the new MRU survives instead).
	if _, err := c.do(artifactKey("big2", "d"), func() (Artifact, error) {
		return Artifact{Prog: prog}, nil
	}); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want the older oversized entry evicted", st)
	}
}

func TestArtifactCacheUnboundedByDefault(t *testing.T) {
	prog := smallProgram(t)
	c := NewArtifactCache()
	for i := 0; i < 8; i++ {
		if _, err := c.do(artifactKey(fmt.Sprintf("s%d", i), "d"), func() (Artifact, error) {
			return Artifact{Prog: prog}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions != 0 || st.Entries != 8 {
		t.Fatalf("unbounded cache evicted: %+v", st)
	}
}
