package bench

import (
	"fmt"
	"strings"

	"databreak/internal/asm"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// AblationRow isolates individual design choices on one program:
//
//   - ReadWrite vs WriteOnly: the §5 extension (access anomaly detection
//     requires monitoring reads, which outnumber writes 2-3x).
//   - FlagsOn vs FlagsOff: the cost, for the plain reserved-register check,
//     of keeping the monitored flag in the segment-table entry's low bit
//     (one extra mask instruction per check) — the price paid to make
//     segment caching possible at all.
type AblationRow struct {
	Name      string
	WriteOnly float64 // BitmapInlineRegisters, writes only
	ReadWrite float64 // BitmapInlineRegisters, reads + writes
	FlagsOff  float64 // same as WriteOnly (clean pointers)
	FlagsOn   float64 // flag bit in the entry: checks must mask it
}

// RunPatched patches with explicit options and runs (general form of
// RunStrategy used by ablations). Uncached entry point; the ablation
// driver uses runPatched.
func (c Config) RunPatched(u *asm.Unit, popts patch.Options, disabled bool) (Run, error) {
	return c.runPatched("", u, popts, disabled)
}

func (c Config) runPatched(src string, u *asm.Unit, popts patch.Options, disabled bool) (Run, error) {
	effCfg := popts.Monitor
	if effCfg.SegWords == 0 {
		effCfg = monitor.DefaultConfig
	}
	if popts.Strategy == patch.Cache || popts.Strategy == patch.CacheInline {
		effCfg.Flags = true
	}
	var regions [][2]uint32
	if !disabled {
		regions = [][2]uint32{{FarRegion, 4}}
	}
	// Keyed identically to runStrategy: ablation variant 0 and Table 1's
	// BmInlReg cell are the same run and execute once.
	desc := descPatch(popts) + "|exec|" + descMonitor(effCfg) + "|" + descRegions(regions, disabled)
	return c.memoRun(src, desc, func() (Run, error) {
		prog, err := c.patchedProgram(src, u, popts)
		if err != nil {
			return Run{}, err
		}
		return c.execute(prog, effCfg, regions, disabled)
	})
}

// Ablation measures the design-choice deltas for each program. The three
// patch configurations of each program are independent cells on the worker
// pool.
func Ablation(cfg Config, programs []workload.Program) ([]AblationRow, error) {
	cfg = cfg.normalized()
	preps, err := cfg.prepare(programs, "ablation", true)
	if err != nil {
		return nil, err
	}
	variants := []patch.Options{
		{Strategy: patch.BitmapInlineRegisters},
		{Strategy: patch.BitmapInlineRegisters, CheckReads: true},
		{Strategy: patch.BitmapInlineRegisters,
			Monitor: monitor.Config{SegWords: monitor.DefaultConfig.SegWords, Flags: true}},
	}
	grid, err := matrix(cfg, preps, len(variants), func(p prepped, v int) (float64, error) {
		cfg.logf("ablation: %s/%d", p.prog.Name, v)
		r, err := cfg.runPatched(p.prog.Source, p.unit, variants[v], false)
		if err != nil {
			return 0, err
		}
		if err := checkOutput(p.prog, p.base.Output, r.Output, "ablation"); err != nil {
			return 0, err
		}
		return overheadPct(p.base.Cycles, r.Cycles), nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, len(preps))
	for i, p := range preps {
		rows[i] = AblationRow{
			Name:      p.prog.Name,
			WriteOnly: grid[i][0],
			ReadWrite: grid[i][1],
			FlagsOff:  grid[i][0],
			FlagsOn:   grid[i][2],
		}
	}
	return rows, nil
}

// FormatAblation renders the rows.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %8s | %9s %8s %8s\n",
		"Program", "WriteOnly", "Read+Write", "ratio", "FlagsOff", "FlagsOn", "delta")
	var wo, rw, fo, fn float64
	for _, r := range rows {
		ratio := 0.0
		if r.WriteOnly != 0 {
			ratio = r.ReadWrite / r.WriteOnly
		}
		fmt.Fprintf(&b, "%-12s %9.1f%% %9.1f%% %7.2fx | %8.1f%% %7.1f%% %+7.1f%%\n",
			r.Name, r.WriteOnly, r.ReadWrite, ratio, r.FlagsOff, r.FlagsOn, r.FlagsOn-r.FlagsOff)
		wo += r.WriteOnly
		rw += r.ReadWrite
		fo += r.FlagsOff
		fn += r.FlagsOn
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(&b, "%-12s %9.1f%% %9.1f%% %7.2fx | %8.1f%% %7.1f%% %+7.1f%%\n",
			"AVERAGE", wo/n, rw/n, (rw/n)/(wo/n), fo/n, fn/n, (fn-fo)/n)
	}
	return b.String()
}
