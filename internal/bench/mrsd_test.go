package bench

import (
	"net"
	"testing"
	"time"

	"databreak/internal/mrsnet"
)

// TestMrsdLoadDifferential: sessions through an in-process mrsd daemon are
// byte-identical to the serial references — the same memoized runs the table
// drivers and bench.Stress verify against, so identity here is transitive
// identity with both. MrsdLoad fails internally on any divergence; this test
// also sanity-checks the report shape.
func TestMrsdLoadDifferential(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Artifacts = NewArtifactCache()
	o := MrsdOptions{
		Sessions:       16,
		Conns:          4,
		PatchChurn:     true,
		HitSessions:    6,
		PerHitBaseline: true,
		Only:           []string{"eqntott", "fpppp"},
	}
	if !testing.Short() {
		o.Only = nil // full suite
		o.Sessions = 30
		o.HitSessions = 10
	}
	rep, err := cfg.MrsdLoad(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != o.Sessions || rep.HitSessions != o.HitSessions {
		t.Fatalf("report counts %d/%d, want %d/%d", rep.Sessions, rep.HitSessions, o.Sessions, o.HitSessions)
	}
	if rep.ChurnSessions == 0 || rep.PatchSessions == 0 {
		t.Fatalf("no churn exercised: %+v", rep)
	}
	if rep.Hits <= 0 || rep.HitsPerSec <= 0 {
		t.Fatalf("hit phase produced no hits: %+v", rep)
	}
	if rep.AttachP50MS <= 0 || rep.AttachP99MS < rep.AttachP50MS {
		t.Fatalf("implausible latency percentiles: p50=%v p99=%v", rep.AttachP50MS, rep.AttachP99MS)
	}
	if rep.BatchSpeedup <= 0 {
		t.Fatalf("per-hit baseline missing: %+v", rep)
	}
	t.Logf("sessions/sec=%.1f hits/sec=%.0f p50=%.2fms p99=%.2fms batch speedup=%.2fx",
		rep.SessionsPerSec, rep.HitsPerSec, rep.AttachP50MS, rep.AttachP99MS, rep.BatchSpeedup)
}

// TestMrsdLoadTCPLoopback drives a daemon over real TCP on 127.0.0.1 — the
// deployment shape cmd/mrsd serves — with the same differential checks.
func TestMrsdLoadTCPLoopback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Artifacts = NewArtifactCache()
	d, err := mrsnet.NewDaemon(mrsnet.Options{
		Programs:   cfg.ProgramSource(),
		NewMachine: cfg.MachineFactory(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(ln)

	rep, err := cfg.MrsdLoad(MrsdOptions{
		Addr:        ln.Addr().String(),
		Sessions:    8,
		Conns:       2,
		PatchChurn:  true,
		HitSessions: 4,
		Only:        []string{"eqntott", "fpppp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hits <= 0 {
		t.Fatalf("no hits over TCP: %+v", rep)
	}
	if got := d.Attached(); got != int64(rep.Sessions+rep.HitSessions) {
		t.Fatalf("daemon attached %d sessions, want %d", got, rep.Sessions+rep.HitSessions)
	}
}

// TestMrsdSharedCacheWithStress: a Stress run and an mrsd load sharing one
// artifact cache verify against the same memoized serial runs — the explicit
// three-way (serial / in-process server / networked daemon) identity the
// design promises. Skipped in -short: Stress runs the full suite.
func TestMrsdSharedCacheWithStress(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite three-way differential")
	}
	cfg := DefaultConfig()
	cfg.Artifacts = NewArtifactCache()
	if _, err := cfg.Stress(StressConfig{Sessions: 10, Churn: 4, PatchChurn: true}); err != nil {
		t.Fatalf("stress: %v", err)
	}
	runsBefore := cfg.Artifacts.Stats().Runs
	rep, err := cfg.MrsdLoad(MrsdOptions{Sessions: 10, HitSessions: -1, PatchChurn: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 10 {
		t.Fatalf("sessions = %d", rep.Sessions)
	}
	// The far-region references must have been reused from the Stress run,
	// not recomputed: same memo keys, so zero new serial executions.
	if runs := cfg.Artifacts.Stats().Runs; runs != runsBefore {
		t.Fatalf("mrsd load recomputed serial refs: %d runs → %d (keys diverged from Stress)", runsBefore, runs)
	}
}

// TestPctileMS pins the nearest-rank percentile helper.
func TestPctileMS(t *testing.T) {
	lats := []time.Duration{
		4 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond,
	}
	if got := pctileMS(lats, 0.50); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := pctileMS(lats, 0.99); got != 4 {
		t.Fatalf("p99 = %v, want 4", got)
	}
	if got := pctileMS(nil, 0.5); got != 0 {
		t.Fatalf("empty sample p50 = %v", got)
	}
}
