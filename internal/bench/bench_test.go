package bench

import (
	"testing"

	"databreak/internal/elim"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// small test suite: the two cheapest programs of each language class.
func testPrograms(t *testing.T) []workload.Program {
	t.Helper()
	var out []workload.Program
	for _, n := range []string{"eqntott", "fpppp"} {
		p, ok := workload.ByName(n, 1)
		if !ok {
			t.Fatalf("missing workload %s", n)
		}
		out = append(out, p)
	}
	return out
}

func TestTable1ShapeInvariants(t *testing.T) {
	cfg := DefaultConfig()
	rows, err := Table1(cfg, testPrograms(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper's qualitative ordering must hold on every program:
		// Disabled is cheapest; reserved registers beat the window-pushing
		// inline variant; segment caching beats the plain bitmap call.
		if !(r.Disabled < r.Overhead[patch.Bitmap]) {
			t.Errorf("%s: Disabled %.1f >= Bitmap %.1f", r.Name, r.Disabled, r.Overhead[patch.Bitmap])
		}
		if !(r.Overhead[patch.BitmapInlineRegisters] < r.Overhead[patch.BitmapInline]) {
			t.Errorf("%s: registers %.1f >= inline %.1f", r.Name,
				r.Overhead[patch.BitmapInlineRegisters], r.Overhead[patch.BitmapInline])
		}
		if !(r.Overhead[patch.Cache] < r.Overhead[patch.Bitmap]) {
			t.Errorf("%s: cache %.1f >= bitmap %.1f", r.Name,
				r.Overhead[patch.Cache], r.Overhead[patch.Bitmap])
		}
		if r.Overhead[patch.Bitmap] <= 0 {
			t.Errorf("%s: bitmap overhead %.1f%% not positive", r.Name, r.Overhead[patch.Bitmap])
		}
	}
	// Formatting must include the average lines.
	out := FormatTable1(rows)
	for _, want := range []string{"C AVERAGE", "FORTRAN AVERAGE", "OVERALL AVERAGE"} {
		if !contains(out, want) {
			t.Errorf("FormatTable1 missing %q", want)
		}
	}
}

func TestTable2ShapeInvariants(t *testing.T) {
	cfg := DefaultConfig()
	// matrix300 is the paper's perfect case: 100% of checks eliminated.
	p, _ := workload.ByName("matrix300", 1)
	rows, err := Table2(cfg, []workload.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Total < 99.0 {
		t.Errorf("matrix300 elimination = %.1f%%, paper reports 100%%", r.Total)
	}
	if r.Full >= r.SymOv {
		t.Errorf("Full %.1f%% must beat Sym %.1f%% on matrix300", r.Full, r.SymOv)
	}
	if r.Full > 10 {
		t.Errorf("matrix300 Full overhead = %.1f%%, paper reports 0.4%%", r.Full)
	}
	if r.Sym+r.LI+r.Range-r.Total > 0.01 || r.Total-r.Sym-r.LI-r.Range > 0.01 {
		t.Errorf("Total %.2f must equal Sym+LI+Range %.2f", r.Total, r.Sym+r.LI+r.Range)
	}
}

func TestFigure3Monotone(t *testing.T) {
	cfg := DefaultConfig()
	p, _ := workload.ByName("li", 1)
	series, err := Figure3(cfg, []workload.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	pts := series["li"]
	if len(pts) != len(Figure3Sizes) {
		t.Fatalf("points = %d", len(pts))
	}
	// Larger segments must not substantially reduce locality (the paper's
	// Figure 3 curve rises with segment size).
	if pts[len(pts)-1].HitRate+0.02 < pts[0].HitRate {
		t.Errorf("hit rate fell with segment size: %.3f -> %.3f",
			pts[0].HitRate, pts[len(pts)-1].HitRate)
	}
	if pts[len(pts)-1].HitRate < 0.9 {
		t.Errorf("largest-segment hit rate = %.3f, want > 0.9", pts[len(pts)-1].HitRate)
	}
}

func TestStrategyTableInvariants(t *testing.T) {
	cfg := DefaultConfig()
	p, _ := workload.ByName("fpppp", 1)
	rows, err := StrategyTable(cfg, []workload.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.TrapFactor < 10_000 {
		t.Errorf("trap factor = %.0f, paper reports ~85,000", r.TrapFactor)
	}
	if r.PageCold > 1 {
		t.Errorf("cold-page protection overhead = %.1f%%, want ~0", r.PageCold)
	}
	if r.PageHot < 100 {
		t.Errorf("hot-page protection overhead = %.1f%%, want punishing", r.PageHot)
	}
	if r.HashPct <= 0 {
		t.Errorf("hash overhead = %.1f%%", r.HashPct)
	}
}

func TestHardwareLimit(t *testing.T) {
	if err := HardwareLimit(1, 4); err != nil {
		t.Errorf("1 word in 4 registers must fit: %v", err)
	}
	if err := HardwareLimit(4, 4); err != nil {
		t.Errorf("4 words in 4 registers must fit: %v", err)
	}
	if err := HardwareLimit(5, 4); err == nil {
		t.Error("5 words in 4 registers must fail")
	}
	if err := HardwareLimit(2, 1); err == nil {
		t.Error("2 words in 1 register (SPARC/R4000) must fail")
	}
}

func TestBreakEven(t *testing.T) {
	// With fast loads and moderate miss rates, caching tolerates a healthy
	// full-lookup fraction; the paper's break-even band is 16%-44%.
	f := BreakEven(2, 0.5)
	if f <= 0 || f >= 1 {
		t.Fatalf("break-even fraction = %.2f, want interior", f)
	}
	// More expensive loads favor caching (bitmap pays 2 loads every time).
	if BreakEven(8, 0.5) <= BreakEven(2, 0.5) {
		t.Error("higher load latency must raise the break-even fraction")
	}
	if FormatBreakEven() == "" {
		t.Error("FormatBreakEven empty")
	}
}

func TestRunElimCountersPresent(t *testing.T) {
	cfg := DefaultConfig()
	p, _ := workload.ByName("doduc", 1)
	u, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cfg.RunElim(u, elim.Full, monitor.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	total := r.Counters[elim.CounterElimSym] + r.Counters[elim.CounterElimLI] +
		r.Counters[elim.CounterElimRange] + r.Counters[patch.CounterChecks]
	if total == 0 {
		t.Fatal("no dynamic writes counted")
	}
	if r.Counters[elim.CounterFpChecks] == 0 {
		t.Fatal("fp checks missing")
	}
}

func TestLinearResidualSigma(t *testing.T) {
	// A perfect line has zero residual.
	xs := []float64{2, 4, 8, 16, 32}
	ys := []float64{5, 9, 17, 33, 65} // y = 1 + 2x
	if s := linearResidualSigma(xs, ys); s > 1e-9 {
		t.Errorf("sigma = %g on a perfect line", s)
	}
	ys[2] += 10
	if s := linearResidualSigma(xs, ys); s < 1 {
		t.Errorf("sigma = %g after perturbation, want >= 1", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestFormattersRender(t *testing.T) {
	// Exercise every table formatter on synthetic rows so output plumbing
	// stays covered without full suite runs.
	t1 := []T1Row{{Name: "x", Lang: "C", Disabled: 1, Sigma: 0.5,
		Overhead: map[patch.Strategy]float64{patch.Bitmap: 10}}}
	if out := FormatTable1(t1); !contains(out, "(C) x") {
		t.Errorf("FormatTable1:\n%s", out)
	}
	t2 := []T2Row{{Name: "x", Lang: "F", Sym: 50, LI: 10, Range: 20, Total: 80, Full: 5, SymOv: 30}}
	if out := FormatTable2(t2); !contains(out, "(F) x") {
		t.Errorf("FormatTable2:\n%s", out)
	}
	sr := []StrategyRow{{Name: "x", TrapFactor: 80000, PageHot: 5000, HashPct: 300, BitmapPct: 90}}
	if out := FormatStrategyTable(sr); !contains(out, "Hardware watchpoints") {
		t.Errorf("FormatStrategyTable:\n%s", out)
	}
	ab := []AblationRow{{Name: "x", WriteOnly: 50, ReadWrite: 150, FlagsOff: 50, FlagsOn: 53}}
	if out := FormatAblation(ab); !contains(out, "3.00x") {
		t.Errorf("FormatAblation:\n%s", out)
	}
	f3 := map[string][]Figure3Point{"x": {{SegWords: 128, HitRate: 0.5}}}
	ps := []workload.Program{{Name: "x"}}
	if out := FormatFigure3(f3, ps); !contains(out, "AVERAGE") {
		t.Errorf("FormatFigure3:\n%s", out)
	}
}

func TestAblationShape(t *testing.T) {
	cfg := DefaultConfig()
	p, _ := workload.ByName("fpppp", 1)
	rows, err := Ablation(cfg, []workload.Program{p})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// §5: read monitoring must cost substantially more (reads outnumber
	// writes); the flag bit costs one instruction per check, a small but
	// positive delta.
	if r.ReadWrite <= r.WriteOnly*1.5 {
		t.Errorf("read+write %.1f%% vs write-only %.1f%%: expected >= 1.5x", r.ReadWrite, r.WriteOnly)
	}
	if r.FlagsOn <= r.FlagsOff {
		t.Errorf("flag bit must cost something: %.1f%% vs %.1f%%", r.FlagsOn, r.FlagsOff)
	}
	if r.FlagsOn > r.FlagsOff+12 {
		t.Errorf("flag bit costs too much: %.1f%% vs %.1f%%", r.FlagsOn, r.FlagsOff)
	}
}

func TestKindsShape(t *testing.T) {
	cfg := DefaultConfig()
	progs := testPrograms(t)
	rows, err := Kinds(cfg, progs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(progs) {
		t.Fatalf("rows = %d, want %d", len(rows), len(progs))
	}
	for _, r := range rows {
		// Transition filtering is debugger-side: the patched code is the
		// store-only variant, so the simulated overhead is identical by
		// construction.
		if r.Transition != r.StoreOnly {
			t.Errorf("%s: transition overhead %.2f%% != store-only %.2f%%",
				r.Name, r.Transition, r.StoreOnly)
		}
		// Read checking adds checks on every load (§5), so a load watchpoint
		// costs strictly more than a store watchpoint.
		if r.LoadWatch <= r.StoreOnly {
			t.Errorf("%s: load watch %.2f%% <= store-only %.2f%%", r.Name, r.LoadWatch, r.StoreOnly)
		}
		// Every workload's entry frame stores HitRegion at least once.
		if r.StoreHits < 1 {
			t.Errorf("%s: no store hits on HitRegion", r.Name)
		}
		// Transition suppression can only drop hits relative to store-only.
		if r.TransHits > r.StoreHits {
			t.Errorf("%s: transition hits %d > store hits %d", r.Name, r.TransHits, r.StoreHits)
		}
		if r.TransHits < 1 {
			t.Errorf("%s: predicate 'changed' delivered no hits", r.Name)
		}
	}
	if out := FormatKinds(rows); !contains(out, "AVERAGE") {
		t.Errorf("FormatKinds missing AVERAGE row")
	}
}
