package bench

import (
	"fmt"
	"math"
	"strings"

	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// Table1Strategies are the columns of Table 1, in order.
var Table1Strategies = []patch.Strategy{
	patch.Bitmap, patch.BitmapInline, patch.BitmapInlineRegisters,
	patch.Cache, patch.CacheInline,
}

// T1Row is one Table 1 line: per-strategy overhead percentages plus the
// cache-alignment noise estimate σ.
type T1Row struct {
	Name     string
	Lang     string
	Disabled float64
	Overhead map[patch.Strategy]float64
	Sigma    float64
}

// Table1 reproduces Table 1: monitored region service overhead for each
// write-check implementation, plus the Disabled column and the σ column
// from the nop-insertion regression of §3.3.1. The (program, variant) cells
// run on the worker pool; rows come back in program order regardless of
// Workers.
func Table1(cfg Config, programs []workload.Program) ([]T1Row, error) {
	cfg = cfg.normalized()
	preps, err := cfg.prepare(programs, "table1", true)
	if err != nil {
		return nil, err
	}
	// Variant cells per program: 0 = Disabled, 1..len(strategies) = the
	// Table 1 columns, last = the σ nop-regression.
	nVar := len(Table1Strategies) + 2
	grid, err := matrix(cfg, preps, nVar, func(p prepped, v int) (float64, error) {
		switch {
		case v == 0:
			// Disabled: fully patched (call-based bitmap), no active
			// breakpoints.
			cfg.logf("table1: %s/Disabled", p.prog.Name)
			dis, err := cfg.runStrategy(p.prog.Source, p.unit, patch.Bitmap, monitor.DefaultConfig, true)
			if err != nil {
				return 0, err
			}
			if err := checkOutput(p.prog, p.base.Output, dis.Output, "Disabled"); err != nil {
				return 0, err
			}
			return overheadPct(p.base.Cycles, dis.Cycles), nil
		case v == nVar-1:
			cfg.logf("table1: %s/sigma", p.prog.Name)
			return cfg.nopSigma(p)
		default:
			strat := Table1Strategies[v-1]
			cfg.logf("table1: %s/%v", p.prog.Name, strat)
			r, err := cfg.runStrategy(p.prog.Source, p.unit, strat, monitor.DefaultConfig, false)
			if err != nil {
				return 0, fmt.Errorf("%s/%v: %w", p.prog.Name, strat, err)
			}
			if err := checkOutput(p.prog, p.base.Output, r.Output, strat.String()); err != nil {
				return 0, err
			}
			return overheadPct(p.base.Cycles, r.Cycles), nil
		}
	})
	if err != nil {
		return nil, err
	}
	rows := make([]T1Row, len(preps))
	for i, p := range preps {
		row := T1Row{Name: p.prog.Name, Lang: p.prog.Lang, Overhead: make(map[patch.Strategy]float64)}
		row.Disabled = grid[i][0]
		for vi, strat := range Table1Strategies {
			row.Overhead[strat] = grid[i][vi+1]
		}
		row.Sigma = grid[i][nVar-1]
		rows[i] = row
	}
	return rows, nil
}

// nopSigma runs the §3.3.1 experiment: insert 2,4,8,16,32 nops before each
// write, regress overhead on nop count, and return the standard deviation of
// the residuals — the cache-alignment noise estimate. Each nop-padded
// program must still compute the baseline's answer; a silent wrong answer
// here would mean the patcher corrupted a delay slot or clobbered a live
// register, so every point is output-checked like the strategy cells.
func (c Config) nopSigma(p prepped) (float64, error) {
	var xs, ys []float64
	for _, n := range []int{2, 4, 8, 16, 32} {
		popts := patch.Options{Strategy: patch.Nops, Nops: n}
		run, err := c.memoRun(p.prog.Source, descPatch(popts)+"|exec|bare", func() (Run, error) {
			prog, err := c.patchedProgram(p.prog.Source, p.unit, popts)
			if err != nil {
				return Run{}, err
			}
			m := c.newMachine()
			prog.LoadShared(m)
			if _, err := m.Run(); err != nil {
				return Run{}, err
			}
			return Run{Cycles: m.Cycles(), Instrs: m.Instrs(), Output: m.Output(), Cache: m.CacheStats()}, nil
		})
		if err != nil {
			return 0, err
		}
		if err := checkOutput(p.prog, p.base.Output, run.Output, fmt.Sprintf("Nops(%d)", n)); err != nil {
			return 0, err
		}
		xs = append(xs, float64(n))
		ys = append(ys, overheadPct(p.base.Cycles, run.Cycles))
	}
	return linearResidualSigma(xs, ys), nil
}

// Averages summarizes rows by language and overall, mirroring the paper's
// C AVERAGE / FORTRAN AVERAGE / OVERALL AVERAGE lines.
func Averages(rows []T1Row) (cAvg, fAvg, all T1Row) {
	avg := func(sel func(T1Row) bool, name string) T1Row {
		out := T1Row{Name: name, Overhead: make(map[patch.Strategy]float64)}
		n := 0
		for _, r := range rows {
			if !sel(r) {
				continue
			}
			n++
			out.Disabled += r.Disabled
			out.Sigma += r.Sigma
			for s, v := range r.Overhead {
				out.Overhead[s] += v
			}
		}
		if n > 0 {
			out.Disabled /= float64(n)
			out.Sigma /= float64(n)
			for s := range out.Overhead {
				out.Overhead[s] /= float64(n)
			}
		}
		return out
	}
	cAvg = avg(func(r T1Row) bool { return r.Lang == "C" }, "C AVERAGE")
	fAvg = avg(func(r T1Row) bool { return r.Lang == "F" }, "FORTRAN AVERAGE")
	all = avg(func(T1Row) bool { return true }, "OVERALL AVERAGE")
	return
}

// FormatTable1 renders rows the way the paper prints Table 1.
func FormatTable1(rows []T1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %9s %9s %9s %9s %9s %9s %7s\n",
		"Program", "Disabled", "Bitmap", "BmInline", "BmInlReg", "Cache", "CacheInl", "sigma")
	line := func(r T1Row) {
		fmt.Fprintf(&b, "%-16s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%% %6.1f%%\n",
			r.Name, r.Disabled,
			r.Overhead[patch.Bitmap], r.Overhead[patch.BitmapInline],
			r.Overhead[patch.BitmapInlineRegisters],
			r.Overhead[patch.Cache], r.Overhead[patch.CacheInline], r.Sigma)
	}
	for _, r := range rows {
		name := r.Name
		if r.Lang != "" {
			name = "(" + r.Lang + ") " + r.Name
		}
		rr := r
		rr.Name = name
		line(rr)
	}
	cAvg, fAvg, all := Averages(rows)
	line(cAvg)
	line(fAvg)
	line(all)
	return b.String()
}

// linearResidualSigma fits y = a + b*x by least squares and returns the
// standard deviation of the residuals.
func linearResidualSigma(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	bSlope := (n*sxy - sx*sy) / den
	a := (sy - bSlope*sx) / n
	var ss float64
	for i := range xs {
		d := ys[i] - (a + bSlope*xs[i])
		ss += d * d
	}
	return math.Sqrt(ss / n)
}
