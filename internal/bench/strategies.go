package bench

import (
	"fmt"
	"strings"

	"databreak/internal/asm"
	"databreak/internal/baseline"
	"databreak/internal/machine"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// StrategyRow compares the §1 implementation strategies on one program.
type StrategyRow struct {
	Name string
	// TrapFactor is the dbx-style slowdown factor (paper: ~85,000x).
	TrapFactor float64
	// PageCold is the page-protection overhead % when the watched variable
	// lives on a page the program never writes; PageHot when it shares a
	// page with hot globals.
	PageCold, PageHot float64
	// HashPct is the overhead % of checking every write through the pilot
	// study's hash table (paper: 209%-642%).
	HashPct float64
	// BitmapPct is the segmented-bitmap overhead % for comparison.
	BitmapPct float64
}

// StrategyTable reproduces the strategy comparison of §1. The four measured
// variants of each program (cold/hot page protection, hash table, bitmap)
// are independent cells on the worker pool.
func StrategyTable(cfg Config, programs []workload.Program) ([]StrategyRow, error) {
	cfg = cfg.normalized()
	preps, err := cfg.prepare(programs, "strategies", true)
	if err != nil {
		return nil, err
	}
	variants := []string{"page-cold", "page-hot", "hash", "bitmap"}
	grid, err := matrix(cfg, preps, len(variants), func(p prepped, v int) (float64, error) {
		cfg.logf("strategies: %s/%s", p.prog.Name, variants[v])
		switch variants[v] {
		case "page-cold":
			// Page protection with the watched word far from anything the
			// program writes.
			cold, err := cfg.runPageProtect(p.prog.Source, p.unit, FarRegion)
			if err != nil {
				return 0, err
			}
			return overheadPct(p.base.Cycles, cold), nil
		case "page-hot":
			// Watched word on the first data page, where the globals live.
			hot, err := cfg.runPageProtect(p.prog.Source, p.unit, machine.DataBase)
			if err != nil {
				return 0, err
			}
			return overheadPct(p.base.Cycles, hot), nil
		case "hash":
			hash, err := cfg.runStrategy(p.prog.Source, p.unit, patch.HashCall, monitor.DefaultConfig, false)
			if err != nil {
				return 0, err
			}
			if err := checkOutput(p.prog, p.base.Output, hash.Output, "HashCall"); err != nil {
				return 0, err
			}
			return overheadPct(p.base.Cycles, hash.Cycles), nil
		default: // segmented bitmap, for comparison
			bm, err := cfg.runStrategy(p.prog.Source, p.unit, patch.BitmapInlineRegisters, monitor.DefaultConfig, false)
			if err != nil {
				return 0, err
			}
			return overheadPct(p.base.Cycles, bm.Cycles), nil
		}
	})
	if err != nil {
		return nil, err
	}
	rows := make([]StrategyRow, len(preps))
	for i, p := range preps {
		rows[i] = StrategyRow{
			Name: p.prog.Name,
			// dbx-style trap checking: two context switches plus debugger
			// work per instruction. The run is deterministic, so the
			// slowdown is the per-instruction penalty amortized over the
			// baseline CPI.
			TrapFactor: float64(p.base.Cycles+p.base.Instrs*baseline.TrapPerInstr) / float64(p.base.Cycles),
			PageCold:   grid[i][0],
			PageHot:    grid[i][1],
			HashPct:    grid[i][2],
			BitmapPct:  grid[i][3],
		}
	}
	return rows, nil
}

// runPageProtect runs the unpatched program under the page-protection
// baseline. The program is the same artifact the baseline run uses — only
// the watch configuration differs — so with a cache it assembles once.
func (c Config) runPageProtect(src string, u *asm.Unit, watch uint32) (int64, error) {
	run, err := c.memoRun(src, fmt.Sprintf("pageprotect|watch=%#x|exec", watch), func() (Run, error) {
		prog, err := c.baselineProgram(src, u)
		if err != nil {
			return Run{}, err
		}
		m := c.newMachine()
		prog.LoadShared(m)
		pp := baseline.NewPageProtect(m)
		pp.Watch(watch, 4)
		if _, err := m.Run(); err != nil {
			return Run{}, err
		}
		return Run{Cycles: m.Cycles(), Instrs: m.Instrs(), Output: m.Output()}, nil
	})
	return run.Cycles, err
}

// HardwareLimit demonstrates the watchpoint-register capacity problem: it
// reports, for a given request size in words, whether an n-register unit
// can serve it.
func HardwareLimit(requestWords, registers int) error {
	m := machine.New(DefaultConfig().Cache, DefaultConfig().Costs)
	hw := baseline.NewHardware(m, registers)
	return hw.Watch(0x2000_0000, uint32(requestWords*4))
}

// FormatStrategyTable renders the comparison.
func FormatStrategyTable(rows []StrategyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %10s %10s %9s %9s\n",
		"Program", "Trap(factor)", "Page(cold)", "Page(hot)", "Hash", "Bitmap")
	var tf, pc, ph, h, bm float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %11.0fx %9.1f%% %9.1f%% %8.1f%% %8.1f%%\n",
			r.Name, r.TrapFactor, r.PageCold, r.PageHot, r.HashPct, r.BitmapPct)
		tf += r.TrapFactor
		pc += r.PageCold
		ph += r.PageHot
		h += r.HashPct
		bm += r.BitmapPct
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(&b, "%-12s %11.0fx %9.1f%% %9.1f%% %8.1f%% %8.1f%%\n",
			"AVERAGE", tf/n, pc/n, ph/n, h/n, bm/n)
	}
	// The hardware strategy is a capacity statement, not a speed one.
	fmt.Fprintf(&b, "\nHardware watchpoints: ")
	if err := HardwareLimit(1, 4); err == nil {
		fmt.Fprintf(&b, "1-word watch OK on i386-class (4 regs); ")
	}
	if err := HardwareLimit(10, 4); err != nil {
		fmt.Fprintf(&b, "a 10-word array FAILS (%v)", err)
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}

// BreakEven reproduces the §3.3.3 analysis: the fraction of write checks
// that may take a full lookup before segment caching loses to the plain
// reserved-register bitmap, as a function of load latency.
//
// BitmapInlineRegisters executes 12 register instructions and 2 loads.
// Cache executes 4 register instructions on a cache hit, 6 register
// instructions and 1 load on a miss to an unmonitored segment, and 26
// register instructions and 2 loads on a full lookup.
func BreakEven(loadCycles float64, missRate float64) (fullLookupBreakEven float64) {
	bir := 12 + 2*loadCycles
	hit := 4.0
	miss := 6 + 1*loadCycles
	full := 26 + 2*loadCycles
	// cost(cache) = hit + missRate*((1-f)*miss' + f*full') where the slow
	// path replaces the hit cost; solve for f with cost(cache) = bir.
	// Treat the three outcomes as exclusive costs:
	//   cost = (1-missRate)*hit + missRate*(1-f)*miss + missRate*f*full
	denom := missRate * (full - miss)
	if denom == 0 {
		return 1
	}
	f := (bir - (1-missRate)*hit - missRate*miss) / denom
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f
}

// FormatBreakEven renders the §3.3.3 break-even analysis for the paper's
// assumed 2-8 cycle loads at representative cache-miss rates.
func FormatBreakEven() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Full-lookup fraction at which Cache = BitmapInlineRegisters\n")
	fmt.Fprintf(&b, "%-18s %10s %10s\n", "segment-cache", "load=2cyc", "load=8cyc")
	for _, miss := range []float64{0.3, 0.5, 0.7} {
		fmt.Fprintf(&b, "miss rate %4.0f%%    %9.1f%% %9.1f%%\n",
			miss*100, 100*BreakEven(2, miss), 100*BreakEven(8, miss))
	}
	return b.String()
}
