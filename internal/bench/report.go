package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"databreak/internal/workload"
)

// Report is the machine-readable result of one table run, written by
// mrsbench -json as BENCH_<table>.json. Rows hold the same numbers the text
// formatters print; Wall* record host time so the harness's own performance
// is tracked from PR to PR. Artifact-cache statistics are deliberately NOT
// embedded here: they are cumulative across the whole run, so the one
// canonical copy lives in BENCH_cachestats.json.
type Report struct {
	Table      string  `json:"table"`
	Engine     string  `json:"engine"`
	Scale      int     `json:"scale"`
	Workers    int     `json:"workers"`
	WallMillis float64 `json:"wall_ms"`
	Rows       any     `json:"rows"`
}

// NewReport stamps a report for one table run.
func NewReport(table string, cfg Config, wall time.Duration, rows any) Report {
	c := cfg.normalized()
	return Report{
		Table:      table,
		Engine:     c.Engine.String(),
		Scale:      c.Scale,
		Workers:    c.Workers,
		WallMillis: float64(wall.Microseconds()) / 1000,
		Rows:       rows,
	}
}

// WriteFile writes the report as indented JSON.
func (r Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("report %s: %w", r.Table, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// T1RowJSON is the JSON shape of a Table 1 row: strategy columns keyed by
// strategy name rather than by internal enum value.
type T1RowJSON struct {
	Name     string             `json:"name"`
	Lang     string             `json:"lang,omitempty"`
	Disabled float64            `json:"disabled_pct"`
	Overhead map[string]float64 `json:"overhead_pct"`
	Sigma    float64            `json:"sigma_pct"`
}

// Table1JSON converts Table 1 rows (plus the average lines) for a report.
func Table1JSON(rows []T1Row) []T1RowJSON {
	cAvg, fAvg, all := Averages(rows)
	full := append(append([]T1Row{}, rows...), cAvg, fAvg, all)
	out := make([]T1RowJSON, len(full))
	for i, r := range full {
		j := T1RowJSON{
			Name:     r.Name,
			Lang:     r.Lang,
			Disabled: r.Disabled,
			Sigma:    r.Sigma,
			Overhead: make(map[string]float64, len(r.Overhead)),
		}
		for s, v := range r.Overhead {
			j.Overhead[s.String()] = v
		}
		out[i] = j
	}
	return out
}

// Table2JSON converts Table 2 rows (plus the average lines) for a report.
// T2Row is already flat and exported, so it marshals as-is.
func Table2JSON(rows []T2Row) []T2Row {
	cAvg, fAvg, all := AveragesT2(rows)
	return append(append([]T2Row{}, rows...), cAvg, fAvg, all)
}

// Fig3SeriesJSON is one program's segment-cache locality curve.
type Fig3SeriesJSON struct {
	Program string         `json:"program"`
	Points  []Figure3Point `json:"points"`
}

// Figure3JSON flattens the locality series into deterministic program order.
func Figure3JSON(series map[string][]Figure3Point, programs []workload.Program) []Fig3SeriesJSON {
	var out []Fig3SeriesJSON
	for _, p := range programs {
		if pts, ok := series[p.Name]; ok {
			out = append(out, Fig3SeriesJSON{Program: p.Name, Points: pts})
		}
	}
	return out
}

// BreakEvenJSON tabulates the §3.3.3 analysis the same way FormatBreakEven
// prints it.
type BreakEvenJSON struct {
	MissRate    float64 `json:"miss_rate"`
	Load2Cycles float64 `json:"full_lookup_frac_load2"`
	Load8Cycles float64 `json:"full_lookup_frac_load8"`
}

// BreakEvenRows evaluates the break-even fractions reported by the text
// formatter.
func BreakEvenRows() []BreakEvenJSON {
	var out []BreakEvenJSON
	for _, miss := range []float64{0.3, 0.5, 0.7} {
		out = append(out, BreakEvenJSON{
			MissRate:    miss,
			Load2Cycles: BreakEven(2, miss),
			Load8Cycles: BreakEven(8, miss),
		})
	}
	return out
}
