package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"databreak/internal/asm"
	"databreak/internal/machine"
	"databreak/internal/monitor"
	"databreak/internal/mrsnet"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// This file is the mrsd load generator: it drives a daemon (in-process over
// net.Pipe, or a remote one over TCP) with many concurrent sessions and
// differentially checks every session against the serial references the rest
// of the harness uses — the same memoized runs, so an mrsd load sharing an
// artifact cache with the tables reuses their measurements byte for byte.
//
// Two phases, two questions:
//
//   - SCALE: o.Sessions sessions round-robin over the workload suite, each
//     with FarRegion installed (service enabled, zero hits) and a subset
//     performing mid-run region churn and live-text patch churn over the
//     wire. Measures sessions/sec; every session must be byte-identical to
//     the serial run (patchers compared on instrs+output, as in Stress).
//
//   - HITS: o.HitSessions sessions with a region on HitRegion — the one
//     stack word every workload's entry frame writes, picked by probing all
//     ten workloads for a small region with nonzero, moderate hit density on
//     each. Measures hits/sec and p50/p99 attach-to-first-hit latency, and
//     (with PerHitBaseline) repeats the phase on one-frame-per-hit
//     connections to measure the batching win.

// HitRegion is the monitored stack word the hit phase watches; every
// workload's entry frame writes it, so every session produces hits.
const (
	HitRegion     uint32 = machine.StackTop - 4
	HitRegionSize uint32 = 4
)

// ProgramSource adapts this Config to the daemon's program supplier: builds
// go through the artifact cache (when configured), so all sessions running
// one workload share a single program and copy-on-write image, and a daemon
// sharing the cache with the tables reuses their builds.
func (c Config) ProgramSource() mrsnet.ProgramSource {
	c = c.normalized()
	return func(name string, scale int, strat patch.Strategy) (*asm.Program, error) {
		p, ok := workload.ByName(name, scale)
		if !ok {
			return nil, fmt.Errorf("bench: unknown workload %q", name)
		}
		u, err := c.unitFor(p)
		if err != nil {
			return nil, err
		}
		mcfg := monitor.DefaultConfig
		if strat == patch.Cache || strat == patch.CacheInline {
			mcfg.Flags = true
		}
		return c.patchedProgram(p.Source, u, patch.Options{Strategy: strat, Monitor: mcfg})
	}
}

// MachineFactory exposes the Config's machine construction (cache geometry,
// cost model, engine) for daemon Options.NewMachine.
func (c Config) MachineFactory() func() *machine.Machine {
	c = c.normalized()
	return c.newMachine
}

// MrsdOptions parameterizes a load-generator run.
type MrsdOptions struct {
	// Addr is a running daemon's TCP address; "" starts an in-process daemon
	// and connects over net.Pipe.
	Addr string
	// Sessions is the scale-phase session count; < 1 means one per workload.
	Sessions int
	// Conns is how many client connections the sessions are spread over;
	// <= 0 means 8 (capped at Sessions).
	Conns int
	// Batch/Flush tune hit delivery for the main pass (0 = daemon default).
	Batch int
	Flush time.Duration
	// Churn is the number of mid-run region add/remove rounds each churn
	// session performs (every fourth session churns); <= 0 means 4.
	Churn int
	// PatchChurn makes every second churn session also toggle text index 0
	// between unimp and its original instruction over the wire.
	PatchChurn bool
	// HitSessions is the hit-phase session count; 0 means two per workload,
	// < 0 disables the phase.
	HitSessions int
	// PerHitBaseline repeats the hit phase on Batch=1 connections (one frame
	// per hit) and reports the batching speedup.
	PerHitBaseline bool
	// Only restricts the workload suite to the named programs (tests use
	// this to keep -race runs fast); empty means all.
	Only []string
}

// MrsdReport is the load generator's result, written by mrsbench -json as
// BENCH_mrsd.json.
type MrsdReport struct {
	Addr     string `json:"addr,omitempty"` // empty: in-process pipe
	Shards   int    `json:"shards"`
	Conns    int    `json:"conns"`
	Batch    int    `json:"batch"` // 0: daemon default (64)
	Sessions int    `json:"sessions"`
	// ChurnSessions/PatchSessions count scale-phase sessions that performed
	// mid-run region churn / live-text patch churn.
	ChurnSessions  int     `json:"churn_sessions"`
	PatchSessions  int     `json:"patch_sessions"`
	ScaleWallMS    float64 `json:"scale_wall_ms"`
	SessionsPerSec float64 `json:"sessions_per_sec"`

	HitSessions int     `json:"hit_sessions"`
	Hits        int64   `json:"hits"`
	HitWallMS   float64 `json:"hit_wall_ms"`
	HitsPerSec  float64 `json:"hits_per_sec"`
	// Attach-to-first-hit latency over the hit sessions.
	AttachP50MS float64 `json:"attach_to_first_hit_p50_ms"`
	AttachP99MS float64 `json:"attach_to_first_hit_p99_ms"`

	// One-frame-per-hit baseline (PerHitBaseline): same sessions, Batch=1.
	PerHitWallMS     float64 `json:"per_hit_wall_ms,omitempty"`
	PerHitHitsPerSec float64 `json:"per_hit_hits_per_sec,omitempty"`
	// BatchSpeedup is batched hits/sec over per-hit hits/sec.
	BatchSpeedup float64 `json:"batch_speedup,omitempty"`
}

// mrsdRefs is one workload's serial references.
type mrsdRefs struct {
	name string
	far  Run // FarRegion only (scale phase)
	hit  Run // HitRegion only (hit phase)
}

// MrsdLoad runs the load generator against a daemon and differentially
// checks every session. See the file comment for the phase structure.
func (c Config) MrsdLoad(o MrsdOptions) (MrsdReport, error) {
	c = c.normalized()
	programs := workload.All(c.Scale)
	if len(o.Only) > 0 {
		var keep []workload.Program
		for _, name := range o.Only {
			p, ok := workload.ByName(name, c.Scale)
			if !ok {
				return MrsdReport{}, fmt.Errorf("bench: unknown workload %q", name)
			}
			keep = append(keep, p)
		}
		programs = keep
	}
	if o.Sessions < 1 {
		o.Sessions = len(programs)
	}
	if o.HitSessions == 0 {
		o.HitSessions = 2 * len(programs)
	}
	if o.Conns <= 0 {
		o.Conns = 8
	}
	if o.Conns > o.Sessions {
		o.Conns = o.Sessions
	}
	if o.Churn <= 0 {
		o.Churn = 4
	}

	mcfg := monitor.DefaultConfig
	popts := patch.Options{Strategy: patch.BitmapInlineRegisters, Monitor: mcfg}

	// Serial references, keyed exactly like table cells and Stress
	// references so a shared artifact cache reuses them.
	serial := c
	serial.Server = nil
	refs, err := parallelMap(c, len(programs), func(i int) (mrsdRefs, error) {
		p := programs[i]
		c.logf("mrsd prep: %s", p.Name)
		u, err := c.unitFor(p)
		if err != nil {
			return mrsdRefs{}, err
		}
		prog, err := c.patchedProgram(p.Source, u, popts)
		if err != nil {
			return mrsdRefs{}, err
		}
		r := mrsdRefs{name: p.Name}
		far := [][2]uint32{{FarRegion, 4}}
		desc := descPatch(popts) + "|exec|" + descMonitor(mcfg) + "|" + descRegions(far, false)
		if r.far, err = serial.memoRun(p.Source, desc, func() (Run, error) {
			return serial.execute(prog, mcfg, far, false)
		}); err != nil {
			return mrsdRefs{}, err
		}
		if o.HitSessions > 0 {
			hit := [][2]uint32{{HitRegion, HitRegionSize}}
			desc := descPatch(popts) + "|exec|" + descMonitor(mcfg) + "|" + descRegions(hit, false)
			if r.hit, err = serial.memoRun(p.Source, desc, func() (Run, error) {
				return serial.execute(prog, mcfg, hit, false)
			}); err != nil {
				return mrsdRefs{}, err
			}
		}
		return r, nil
	})
	if err != nil {
		return MrsdReport{}, err
	}

	// Daemon: in-process unless an address was given.
	var dial func(mrsnet.Hello) (*mrsnet.Client, error)
	rep := MrsdReport{Addr: o.Addr, Conns: o.Conns, Batch: o.Batch, Sessions: o.Sessions}
	if o.Addr == "" {
		d, err := mrsnet.NewDaemon(mrsnet.Options{
			Programs:   c.ProgramSource(),
			NewMachine: c.MachineFactory(),
			Batch:      o.Batch,
			Flush:      o.Flush,
		})
		if err != nil {
			return MrsdReport{}, err
		}
		defer d.Close()
		rep.Shards = d.Shards()
		dial = func(h mrsnet.Hello) (*mrsnet.Client, error) {
			return mrsnet.NewClient(d.Pipe(), h)
		}
	} else {
		dial = func(h mrsnet.Hello) (*mrsnet.Client, error) {
			return mrsnet.Dial(o.Addr, h)
		}
	}
	hello := mrsnet.Hello{Batch: o.Batch, Flush: o.Flush}

	dialN := func(n int, h mrsnet.Hello) ([]*mrsnet.Client, error) {
		conns := make([]*mrsnet.Client, n)
		for i := range conns {
			var err error
			if conns[i], err = dial(h); err != nil {
				for _, cl := range conns[:i] {
					cl.Close()
				}
				return nil, err
			}
		}
		return conns, nil
	}
	closeAll := func(conns []*mrsnet.Client) {
		for _, cl := range conns {
			cl.Close()
		}
	}

	// SCALE phase.
	conns, err := dialN(o.Conns, hello)
	if err != nil {
		return MrsdReport{}, err
	}
	c.logf("mrsd scale phase: %d sessions over %d conns", o.Sessions, o.Conns)
	start := time.Now()
	errs := make([]error, o.Sessions)
	shards := make([]int, o.Sessions)
	var wg sync.WaitGroup
	for i := 0; i < o.Sessions; i++ {
		i := i
		ref := refs[i%len(refs)]
		churner := i%4 == 1
		patcher := churner && o.PatchChurn && (i/4)%2 == 1
		if churner {
			rep.ChurnSessions++
		}
		if patcher {
			rep.PatchSessions++
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := conns[i%len(conns)]
			sid := fmt.Sprintf("scale-%d", i)
			shard, err := c.mrsdScaleSession(cl, sid, ref, churnPlan{
				churn: churner, rounds: o.Churn, patch: patcher,
			})
			shards[i] = shard
			if err != nil {
				errs[i] = fmt.Errorf("session %s (%s): %w", sid, ref.name, err)
			}
		}()
	}
	wg.Wait()
	scaleWall := time.Since(start)
	closeAll(conns)
	for _, err := range errs {
		if err != nil {
			return MrsdReport{}, err
		}
	}
	for _, sh := range shards {
		if sh+1 > rep.Shards {
			rep.Shards = sh + 1
		}
	}
	rep.ScaleWallMS = ms(scaleWall)
	rep.SessionsPerSec = float64(o.Sessions) / scaleWall.Seconds()

	// HIT phase: batched, then optionally the one-frame-per-hit baseline.
	if o.HitSessions > 0 {
		rep.HitSessions = o.HitSessions
		hits, wall, lats, err := c.mrsdHitPhase(dialN, closeAll, hello, o, refs)
		if err != nil {
			return rep, err
		}
		rep.Hits = hits
		rep.HitWallMS = ms(wall)
		rep.HitsPerSec = float64(hits) / wall.Seconds()
		rep.AttachP50MS = pctileMS(lats, 0.50)
		rep.AttachP99MS = pctileMS(lats, 0.99)
		if o.PerHitBaseline {
			c.logf("mrsd per-hit baseline pass")
			bHits, bWall, _, err := c.mrsdHitPhase(dialN, closeAll, mrsnet.Hello{Batch: 1}, o, refs)
			if err != nil {
				return rep, err
			}
			if bHits != hits {
				return rep, fmt.Errorf("delivery mode changed hit totals: %d batched, %d per-hit", hits, bHits)
			}
			rep.PerHitWallMS = ms(bWall)
			rep.PerHitHitsPerSec = float64(bHits) / bWall.Seconds()
			rep.BatchSpeedup = rep.HitsPerSec / rep.PerHitHitsPerSec
		}
	}
	return rep, nil
}

type churnPlan struct {
	churn  bool
	rounds int
	patch  bool
}

// mrsdScaleSession is one scale-phase session: FarRegion installed, optional
// mid-run churn, byte-identity check against the serial reference.
func (c Config) mrsdScaleSession(cl *mrsnet.Client, sid string, ref mrsdRefs, plan churnPlan) (shard int, err error) {
	s, err := cl.Attach(mrsnet.AttachSpec{SID: sid, Workload: ref.name, Scale: c.Scale})
	if err != nil {
		return -1, err
	}
	if err := s.CreateRegion(FarRegion, 4); err != nil {
		return s.Shard, err
	}
	var res mrsnet.RunResult
	if plan.churn {
		if err := s.Start(); err != nil {
			return s.Shard, err
		}
		for j := 0; j < plan.rounds; j++ {
			if err := s.CreateRegion(ChurnRegion, 16); err != nil {
				return s.Shard, fmt.Errorf("churn create: %w", err)
			}
			if err := s.DeleteRegion(ChurnRegion, 16); err != nil {
				return s.Shard, fmt.Errorf("churn delete: %w", err)
			}
			if plan.patch {
				// Index 0 (startup `call main`) retires exactly once; once it
				// has, it is dead code, so the unimp sitting there between the
				// two requests is harmless — the toggle is skipped server-side
				// until the first instruction retires.
				if applied, err := s.PatchToggle(0, true); err != nil {
					return s.Shard, fmt.Errorf("patch: %w", err)
				} else if applied {
					if _, err := s.PatchToggle(0, false); err != nil {
						return s.Shard, fmt.Errorf("patch restore: %w", err)
					}
				}
			}
		}
		if res, err = s.Wait(); err != nil {
			return s.Shard, err
		}
	} else if res, err = s.Run(); err != nil {
		return s.Shard, err
	}
	// Patchers invalidate their own simulated I-cache, so their cycle count
	// is self-consistent but not serial-comparable (same rule as Stress).
	cyclesOK := plan.patch || res.Cycles == ref.far.Cycles
	if !cyclesOK || res.Instrs != ref.far.Instrs || res.Output != ref.far.Output {
		return s.Shard, fmt.Errorf("diverged from serial: cycles %d vs %d, instrs %d vs %d, output match %v",
			res.Cycles, ref.far.Cycles, res.Instrs, ref.far.Instrs, res.Output == ref.far.Output)
	}
	if res.HitTotal != 0 || s.Hits() != 0 {
		return s.Shard, fmt.Errorf("far-region session produced hits: server %d, client %d", res.HitTotal, s.Hits())
	}
	return s.Shard, s.Detach()
}

// mrsdHitPhase runs o.HitSessions sessions watching HitRegion and returns
// total hits, wall time, and per-session attach-to-first-hit latencies.
func (c Config) mrsdHitPhase(
	dialN func(int, mrsnet.Hello) ([]*mrsnet.Client, error),
	closeAll func([]*mrsnet.Client),
	hello mrsnet.Hello,
	o MrsdOptions,
	refs []mrsdRefs,
) (hits int64, wall time.Duration, lats []time.Duration, err error) {
	nconns := o.Conns
	if nconns > o.HitSessions {
		nconns = o.HitSessions
	}
	conns, err := dialN(nconns, hello)
	if err != nil {
		return 0, 0, nil, err
	}
	defer closeAll(conns)
	c.logf("mrsd hit phase: %d sessions, batch=%d", o.HitSessions, hello.Batch)

	start := time.Now()
	errs := make([]error, o.HitSessions)
	latByS := make([]time.Duration, o.HitSessions)
	hitByS := make([]int64, o.HitSessions)
	var wg sync.WaitGroup
	for i := 0; i < o.HitSessions; i++ {
		i := i
		ref := refs[i%len(refs)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := conns[i%len(conns)]
			sid := fmt.Sprintf("hit-%d-%d", hello.Batch, i)
			s, err := cl.Attach(mrsnet.AttachSpec{SID: sid, Workload: ref.name, Scale: c.Scale})
			if err != nil {
				errs[i] = fmt.Errorf("%s (%s): %w", sid, ref.name, err)
				return
			}
			if err := s.CreateRegion(HitRegion, HitRegionSize); err != nil {
				errs[i] = fmt.Errorf("%s: %w", sid, err)
				return
			}
			res, err := s.Run()
			if err != nil {
				errs[i] = fmt.Errorf("%s (%s): %w", sid, ref.name, err)
				return
			}
			if res.Cycles != ref.hit.Cycles || res.Instrs != ref.hit.Instrs ||
				res.Output != ref.hit.Output || res.HitTotal != ref.hit.Hits {
				errs[i] = fmt.Errorf("%s (%s) diverged from serial: cycles %d vs %d, instrs %d vs %d, hits %d vs %d",
					sid, ref.name, res.Cycles, ref.hit.Cycles, res.Instrs, ref.hit.Instrs, res.HitTotal, ref.hit.Hits)
				return
			}
			if got := s.Hits(); got != res.HitTotal {
				errs[i] = fmt.Errorf("%s: client received %d of %d hits", sid, got, res.HitTotal)
				return
			}
			first := s.FirstHitAt()
			if first.IsZero() {
				errs[i] = fmt.Errorf("%s (%s): no hits delivered", sid, ref.name)
				return
			}
			latByS[i] = first.Sub(s.AttachedAt)
			hitByS[i] = res.HitTotal
			errs[i] = s.Detach()
		}()
	}
	wg.Wait()
	wall = time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, 0, nil, err
		}
	}
	for i := range hitByS {
		hits += hitByS[i]
	}
	return hits, wall, latByS, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// pctileMS is the nearest-rank percentile of a latency sample, in ms.
func pctileMS(lats []time.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return ms(s[idx])
}
