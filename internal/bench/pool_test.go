package bench

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelMapOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		cfg := Config{Workers: workers}
		got, err := parallelMap(cfg, 50, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestParallelMapZeroCells(t *testing.T) {
	out, err := parallelMap(Config{Workers: 4}, 0, func(i int) (int, error) {
		t.Fatal("fn must not be called")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestParallelMapReturnsLowestIndexError(t *testing.T) {
	// Several cells fail; the reported error must be the lowest-index one
	// regardless of scheduling, so failures are reproducible.
	for _, workers := range []int{1, 4} {
		_, err := parallelMap(Config{Workers: workers}, 20, func(i int) (int, error) {
			if i == 7 || i == 13 {
				return 0, fmt.Errorf("cell %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "cell 7 failed" {
			t.Fatalf("workers=%d: err = %v, want cell 7", workers, err)
		}
	}
}

func TestParallelMapCancelsAfterError(t *testing.T) {
	// After the first error no new cells may start. With one slow worker
	// holding the error, the feeder must stop well short of n.
	var started atomic.Int64
	_, err := parallelMap(Config{Workers: 2}, 1000, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	// In-flight cells may finish, but the 1000-cell feed must have stopped
	// early. Allow generous slack for cells issued before cancellation won
	// the race.
	if n := started.Load(); n > 900 {
		t.Fatalf("%d cells started after early error; cancellation did not take", n)
	}
}

func TestSyncWriterSharedByWorkers(t *testing.T) {
	var buf bytes.Buffer
	w := SyncWriter(&buf)
	if SyncWriter(w) != w {
		t.Fatal("SyncWriter must be idempotent")
	}
	if SyncWriter(nil) != nil {
		t.Fatal("SyncWriter(nil) must stay nil")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				fmt.Fprintf(w, "line\n")
			}
		}()
	}
	wg.Wait()
	if got := bytes.Count(buf.Bytes(), []byte("line\n")); got != 800 {
		t.Fatalf("interleaved writes: %d intact lines, want 800", got)
	}
}

// TestTable1DeterministicAcrossWorkerCounts is the parallelism regression
// test from the issue: the same table, serial and with 8 workers, must be
// identical row for row — the worker pool may change wall-clock time only.
func TestTable1DeterministicAcrossWorkerCounts(t *testing.T) {
	programs := testPrograms(t)

	serial := DefaultConfig()
	serial.Workers = 1
	want, err := Table1(serial, programs)
	if err != nil {
		t.Fatal(err)
	}

	par := DefaultConfig()
	par.Workers = 8
	got, err := Table1(par, programs)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Table1 differs between Workers=1 and Workers=8:\nserial: %+v\nparallel: %+v", want, got)
	}
	if FormatTable1(want) != FormatTable1(got) {
		t.Fatal("rendered Table 1 text differs between worker counts")
	}
}
