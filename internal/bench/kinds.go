package bench

import (
	"fmt"
	"strings"

	"databreak/internal/machine"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// The kinds table monitors HitRegion (see mrsd.go) — the one stack word
// every workload's entry frame writes. Unlike FarRegion it produces hits, so
// the table can compare delivered hit counts across region kinds, not just
// check overhead.

// KindsRow quantifies the region-kind extension on one program — the
// overhead table row for load and transition watchpoints against the
// paper's store-only baseline:
//
//   - StoreOnly: write checks, a store-kind region on HitRegion.
//   - LoadWatch: read+write checks (§5), a load-kind region on HitRegion —
//     what arming a read watchpoint costs.
//   - Transition: write checks, a transition (value-change) region on
//     HitRegion. Transition filtering happens debugger-side at delivery, so
//     its simulated overhead equals StoreOnly by construction; the row pins
//     that claim, and the hit columns show the suppression.
//
// Overheads are percent over the unmonitored baseline; the hit columns are
// delivered hit counts.
type KindsRow struct {
	Name       string
	StoreOnly  float64
	LoadWatch  float64
	Transition float64
	StoreHits  int64
	LoadHits   int64
	TransHits  int64
}

// kindsVariant describes one cell of the kinds table.
type kindsVariant struct {
	key   string
	popts patch.Options
	setup func(svc *monitor.Service) error
}

func kindsVariants() []kindsVariant {
	store := patch.Options{Strategy: patch.BitmapInlineRegisters}
	readwrite := patch.Options{Strategy: patch.BitmapInlineRegisters, CheckReads: true}
	return []kindsVariant{
		{
			key:   "kind=store",
			popts: store,
			setup: func(svc *monitor.Service) error {
				return svc.CreateRegionKind(HitRegion, 4, monitor.KindStore)
			},
		},
		{
			key:   "kind=load",
			popts: readwrite,
			setup: func(svc *monitor.Service) error {
				return svc.CreateRegionKind(HitRegion, 4, monitor.KindLoad)
			},
		},
		{
			key:   "kind=transition",
			popts: store,
			setup: func(svc *monitor.Service) error {
				return svc.CreateTransitionRegion(HitRegion, 4,
					monitor.Predicate{Kind: monitor.PredChanged})
			},
		},
	}
}

// runKinds executes one kinds-table cell: patch with v.popts, install
// FarRegion (keeps checks enabled without extra hits) plus the variant's
// region on HitRegion, run, and collect cycles and delivered hits.
func (c Config) runKinds(src string, p prepped, v kindsVariant) (Run, error) {
	mcfg := monitor.DefaultConfig
	desc := descPatch(v.popts) + "|exec|" + descMonitor(mcfg) + "|" + v.key
	return c.memoRun(src, desc, func() (Run, error) {
		prog, err := c.patchedProgram(src, p.unit, v.popts)
		if err != nil {
			return Run{}, err
		}
		m := c.newMachine()
		prog.LoadShared(m)
		setup := func(svc *monitor.Service) error {
			if err := svc.CreateRegion(FarRegion, 4); err != nil {
				return err
			}
			if err := v.setup(svc); err != nil {
				return err
			}
			svc.Reinstall()
			return nil
		}
		if c.Server != nil {
			sess, err := c.Server.Attach(mcfg, m)
			if err != nil {
				return Run{}, err
			}
			defer sess.Detach()
			if err := sess.Do(func(_ *machine.Machine, svc *monitor.Service) error {
				return setup(svc)
			}); err != nil {
				return Run{}, err
			}
			if _, err := sess.Run(); err != nil {
				return Run{}, err
			}
			var run Run
			err = sess.Do(func(m *machine.Machine, svc *monitor.Service) error {
				run = collect(prog, m)
				run.Hits = svc.HitCount
				return nil
			})
			return run, err
		}
		svc, err := monitor.NewService(mcfg, m)
		if err != nil {
			return Run{}, err
		}
		if err := setup(svc); err != nil {
			return Run{}, err
		}
		if _, err := m.Run(); err != nil {
			return Run{}, err
		}
		run := collect(prog, m)
		run.Hits = svc.HitCount
		return run, nil
	})
}

// Kinds measures the region-kind overhead table. Cells run on the worker
// pool; rows come back in input order.
func Kinds(cfg Config, programs []workload.Program) ([]KindsRow, error) {
	cfg = cfg.normalized()
	preps, err := cfg.prepare(programs, "kinds", true)
	if err != nil {
		return nil, err
	}
	variants := kindsVariants()
	type cell struct {
		pct  float64
		hits int64
	}
	grid, err := matrix(cfg, preps, len(variants), func(p prepped, v int) (cell, error) {
		cfg.logf("kinds: %s/%s", p.prog.Name, variants[v].key)
		r, err := cfg.runKinds(p.prog.Source, p, variants[v])
		if err != nil {
			return cell{}, err
		}
		if err := checkOutput(p.prog, p.base.Output, r.Output, "kinds"); err != nil {
			return cell{}, err
		}
		return cell{pct: overheadPct(p.base.Cycles, r.Cycles), hits: r.Hits}, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]KindsRow, len(preps))
	for i, p := range preps {
		rows[i] = KindsRow{
			Name:       p.prog.Name,
			StoreOnly:  grid[i][0].pct,
			LoadWatch:  grid[i][1].pct,
			Transition: grid[i][2].pct,
			StoreHits:  grid[i][0].hits,
			LoadHits:   grid[i][1].hits,
			TransHits:  grid[i][2].hits,
		}
	}
	return rows, nil
}

// FormatKinds renders the rows.
func FormatKinds(rows []KindsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %9s %10s | %9s %9s %9s\n",
		"Program", "StoreOnly", "LoadWatch", "Transition", "StHits", "LdHits", "TrHits")
	var so, lw, tr float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8.1f%% %8.1f%% %9.1f%% | %9d %9d %9d\n",
			r.Name, r.StoreOnly, r.LoadWatch, r.Transition,
			r.StoreHits, r.LoadHits, r.TransHits)
		so += r.StoreOnly
		lw += r.LoadWatch
		tr += r.Transition
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(&b, "%-12s %8.1f%% %8.1f%% %9.1f%% |\n",
			"AVERAGE", so/n, lw/n, tr/n)
	}
	return b.String()
}
