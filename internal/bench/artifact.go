package bench

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"sync"

	"databreak/internal/asm"
	"databreak/internal/elim"
	"databreak/internal/monitor"
	"databreak/internal/patch"
)

// This file is the content-addressed artifact cache: compile-once, run-many.
//
// Every cell of the benchmark matrix starts from the same small set of build
// products — a workload compiled to an assembly unit, and that unit patched
// (or elim-rewritten) and assembled into a Program. Without the cache the
// harness rebuilds these for every cell of every table, every -count repeat,
// and every stress session. With it, each distinct build is keyed by the
// SHA-256 of its inputs — the workload source text (which already encodes
// the scale factor) plus a canonical descriptor of the transformation
// (strategy, elim options, monitor config, nop count) — and built exactly
// once, then shared. A cached Program carries its predecoded machine.Image
// and data-segment snapshot (asm.LoadShared), so "running a cached artifact"
// is: attach the shared image, memcpy the data snapshot, execute. Machines
// never mutate shared state — machine.PatchInstr privatizes on first write —
// so any number of concurrent workers and sessions may run one artifact.
//
// The cache also memoizes EXECUTIONS. The simulated machine is
// bit-deterministic — the differential suite pins that a given (program,
// machine config, monitor config, regions) tuple produces identical cycles,
// instructions, output, and cache stats on every run, serial or sliced —
// so a run is as content-addressable as a build: its key is the program's
// key plus a canonical descriptor of everything the run depends on
// (monitor config, regions, disabled flag, machine cache/cost model,
// server routing). The tables repeat many identical runs — every needBase
// table re-measures the same baselines, ablation variant 0 is Table 1's
// BmInlReg cell is the strategy table's bitmap column, Figure 3's 128-word
// point is Table 1's Cache cell — and each now executes once. Because
// replay only ever substitutes a value the simulator is proven to
// reproduce, table output is byte-identical with the cache on or off, for
// any -workers value.

// Artifact is one cached build product. Exactly one pointer class is set
// per entry kind: Unit for compiled workloads, Prog (plus Elim for
// elimination rewrites) for assembled programs. All fields are immutable
// once built; consumers must Clone units before rewriting them.
type Artifact struct {
	Unit *asm.Unit
	Prog *asm.Program
	Elim *elim.Result
}

type artifactEntry struct {
	once sync.Once
	art  Artifact
	err  error

	// Eviction bookkeeping, all guarded by the cache mutex. key lets a
	// post-build accounting pass verify the entry is still resident; bytes is
	// the accounted size; elem is the entry's LRU position (nil until the
	// build completes, and again after eviction). Only Prog-bearing entries
	// join the LRU — units are small and shared by every downstream build.
	key   [sha256.Size]byte
	bytes int64
	elem  *list.Element
}

type runEntry struct {
	once sync.Once
	run  Run
	err  error
}

// ArtifactCache memoizes build products and deterministic executions across
// tables, repeats, and stress sessions. Safe for concurrent use; concurrent
// requests for the same key build (or run) once and share the result
// (per-entry once).
type ArtifactCache struct {
	mu        sync.Mutex
	entries   map[[sha256.Size]byte]*artifactEntry
	runs      map[[sha256.Size]byte]*runEntry
	hits      uint64
	misses    uint64
	runHits   uint64
	runMisses uint64

	// Size bounding. capBytes <= 0 means unbounded. lru orders Prog-bearing
	// entries most-recently-used first; progBytes is their accounted total.
	// When a completed build pushes progBytes past the cap, least-recently-
	// used programs are dropped (never the one just touched) so a long-lived
	// daemon serving many distinct workloads cannot grow without limit.
	// Evicted entries simply leave the map — holders of the returned
	// Artifact keep a valid immutable value; the next request rebuilds.
	capBytes  int64
	lru       *list.List
	progBytes int64
	evictions uint64
}

// NewArtifactCache returns an empty, unbounded cache.
func NewArtifactCache() *ArtifactCache {
	return &ArtifactCache{
		entries: make(map[[sha256.Size]byte]*artifactEntry),
		runs:    make(map[[sha256.Size]byte]*runEntry),
		lru:     list.New(),
	}
}

// SetCapBytes bounds the bytes retained by cached programs (shared images
// plus data snapshots); n <= 0 removes the bound. Lowering the cap evicts
// immediately.
func (c *ArtifactCache) SetCapBytes(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capBytes = n
	c.evict()
}

// evict drops least-recently-used programs until the accounted total fits
// the cap. The MRU entry always survives, so a single program larger than
// the cap still caches (the alternative is rebuilding it on every request).
// Callers must hold c.mu.
func (c *ArtifactCache) evict() {
	if c.capBytes <= 0 {
		return
	}
	for c.progBytes > c.capBytes && c.lru.Len() > 1 {
		back := c.lru.Back()
		e := back.Value.(*artifactEntry)
		c.lru.Remove(back)
		e.elem = nil
		c.progBytes -= e.bytes
		delete(c.entries, e.key)
		c.evictions++
	}
}

// account enters a completed Prog build into the LRU (idempotent; a racing
// eviction wins) and enforces the cap.
func (c *ArtifactCache) account(e *artifactEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.elem == nil && c.entries[e.key] == e {
		e.bytes = int64(e.art.Prog.SizeBytes())
		e.elem = c.lru.PushFront(e)
		c.progBytes += e.bytes
	}
	c.evict()
}

// ArtifactStats is a point-in-time view of cache effectiveness, reported in
// mrsbench's JSON output.
type ArtifactStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
	// RunHits/RunMisses count memoized-execution lookups; Runs is the
	// number of distinct runs retained.
	RunHits   uint64 `json:"run_hits"`
	RunMisses uint64 `json:"run_misses"`
	Runs      int    `json:"runs"`
	// Bytes estimates host memory retained by cached programs (shared
	// images + data snapshots); TraceBytes is the portion of Bytes held by
	// compiled trace streams — the part that scales with hot text rather
	// than program size, broken out so a cap tuned against real footprint
	// can see what the trace tier costs. CapBytes is the configured bound
	// (0 = unbounded) and Evictions counts programs dropped to enforce it.
	Bytes      int64  `json:"bytes"`
	TraceBytes int64  `json:"trace_bytes"`
	CapBytes   int64  `json:"cap_bytes,omitempty"`
	Evictions  uint64 `json:"evictions"`
}

// Stats reports hit/miss counts and the retained-bytes estimate.
func (c *ArtifactCache) Stats() ArtifactStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ArtifactStats{
		Hits: c.hits, Misses: c.misses, Entries: len(c.entries),
		RunHits: c.runHits, RunMisses: c.runMisses, Runs: len(c.runs),
		CapBytes: c.capBytes, Evictions: c.evictions,
	}
	for _, e := range c.entries {
		// Only count completed builds; entries mid-build race with their
		// once and are counted on the next Stats call.
		if e.art.Prog != nil {
			st.Bytes += int64(e.art.Prog.SizeBytes())
			st.TraceBytes += int64(e.art.Prog.TraceBytes())
		}
	}
	return st
}

// do returns the artifact for key, building it at most once across all
// goroutines. An error is cached too: a build that cannot succeed is not
// retried per cell, and every cell reports the same failure.
func (c *ArtifactCache) do(key [sha256.Size]byte, build func() (Artifact, error)) (Artifact, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &artifactEntry{key: key}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
	}
	c.mu.Unlock()
	e.once.Do(func() { e.art, e.err = build() })
	if e.err == nil && e.art.Prog != nil {
		c.account(e)
	}
	return e.art, e.err
}

// artifactKey derives the content address: the workload source (which
// encodes program identity and scale) plus the canonical transformation
// descriptor.
func artifactKey(src, desc string) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(src))
	h.Write([]byte{0})
	h.Write([]byte(desc))
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// artifact routes a build through the cache when one is configured and the
// caller supplied a source identity; otherwise it just builds. src == ""
// marks the uncached public entry points (RunBaseline etc. called with a
// bare unit, where no content identity is available).
func (c Config) artifact(src, desc string, build func() (Artifact, error)) (Artifact, error) {
	if c.Artifacts == nil || src == "" {
		return build()
	}
	return c.Artifacts.do(artifactKey(src, desc), build)
}

// doRun is the execution-side twin of do.
func (c *ArtifactCache) doRun(key [sha256.Size]byte, exec func() (Run, error)) (Run, error) {
	c.mu.Lock()
	e, ok := c.runs[key]
	if !ok {
		e = &runEntry{}
		c.runs[key] = e
		c.runMisses++
	} else {
		c.runHits++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.run, e.err = exec() })
	return e.run, e.err
}

// memoRun memoizes a deterministic execution. desc must name the program
// artifact (its build descriptor) plus every run-side input; runScope folds
// in the Config-level state the simulated counts depend on. The returned
// Run may be shared — its Counters map is read-only to callers.
func (c Config) memoRun(src, desc string, exec func() (Run, error)) (Run, error) {
	if c.Artifacts == nil || src == "" {
		return exec()
	}
	return c.Artifacts.doRun(artifactKey(src, c.runScope()+desc), exec)
}

// runScope canonicalizes the Config state a run's counts depend on: the
// simulated cache geometry and cost model. Server routing is included out
// of caution — counts are proven identical either way, but keeping the
// scopes separate means a -server run always exercises the server at least
// once per distinct cell.
func (c Config) runScope() string {
	return fmt.Sprintf("scope|cache=%+v|costs=%+v|server=%t|", c.Cache, c.Costs, c.Server != nil)
}

// descRegions canonicalizes an execute call's run-side inputs.
func descRegions(regions [][2]uint32, disabled bool) string {
	return fmt.Sprintf("regions=%v|disabled=%t", regions, disabled)
}

// descMonitor canonicalizes a monitor config for key purposes.
func descMonitor(mc monitor.Config) string {
	return fmt.Sprintf("seg=%d,flags=%t", mc.SegWords, mc.Flags)
}

// descPatch canonicalizes patch options, applying the same normalization
// patch.Apply performs (zero monitor config -> default; cache strategies
// force the flag bit) so equivalent options map to one artifact.
func descPatch(o patch.Options) string {
	if o.Monitor.SegWords == 0 {
		o.Monitor = monitor.DefaultConfig
	}
	if o.Strategy == patch.Cache || o.Strategy == patch.CacheInline {
		o.Monitor.Flags = true
	}
	return fmt.Sprintf("patch|strat=%d|nops=%d|reads=%t|nodis=%t|%s",
		o.Strategy, o.Nops, o.CheckReads, o.SkipDisabledBranch, descMonitor(o.Monitor))
}

// descElim canonicalizes an elimination configuration.
func descElim(mode elim.Mode, mc monitor.Config) string {
	if mc.SegWords == 0 {
		mc = monitor.DefaultConfig
	}
	return fmt.Sprintf("elim|mode=%d|%s", mode, descMonitor(mc))
}

