package bench

import (
	"fmt"
	"sort"
	"strings"

	"databreak/internal/machine"
	"databreak/internal/sparc"
	"databreak/internal/workload"
)

// SeqCount is one adjacent opcode sequence (pair or triple) with its dynamic
// frequency: Count occurrences, Pct of all adjacent sequences of that length.
type SeqCount struct {
	Seq   string  `json:"seq"`
	Count int64   `json:"count"`
	Pct   float64 `json:"pct"`
}

// TraceStatsRow reports the fusion coverage of one workload: how the trace
// builder's fusion rules (machine.FusionPlan — the compiler's own decision
// procedure, not a reimplementation) tile the dynamic instruction stream.
//
// Instrs counts retired instructions; Items the dispatch items the trace and
// closure tiers would retire for them; Fused2/Fused3 the instructions retired
// inside two- and three-wide items. ItemsPerInstr = Items/Instrs is the
// dispatch density the closure tier's hot loop actually pays; FusedPct =
// (Fused2+Fused3)/Instrs is the share of retirement covered by fused ops.
type TraceStatsRow struct {
	Program       string     `json:"program"`
	Instrs        int64      `json:"instrs"`
	Items         int64      `json:"items"`
	Fused2        int64      `json:"fused2_instrs"`
	Fused3        int64      `json:"fused3_instrs"`
	FusedPct      float64    `json:"fused_pct"`
	ItemsPerInstr float64    `json:"items_per_instr"`
	TopPairs      []SeqCount `json:"top_pairs"`
	TopTriples    []SeqCount `json:"top_triples"`
}

// traceStatsTop bounds the pair/triple frequency lists per row.
const traceStatsTop = 12

// TraceStats drives each workload's baseline program under the Step engine,
// records the dynamic opcode stream, and reduces it to fusion-coverage rows.
// Adjacency is dynamic: two retirements are adjacent when the second's pc is
// the first's +1, i.e. exactly the straight-line runs the trace builder sees
// (a taken branch or any other transfer breaks the run). Coverage applies
// machine.FusionPlan to each run, so the numbers are what the current
// compiler achieves — rerun after a fusion change to attribute the win.
func TraceStats(cfg Config, programs []workload.Program) ([]TraceStatsRow, error) {
	rows := make([]TraceStatsRow, 0, len(programs))
	for _, p := range programs {
		u, err := cfg.unitFor(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		prog, err := cfg.baselineProgram(p.Source, u)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		stepCfg := cfg
		stepCfg.Engine = machine.EngineStep
		m := stepCfg.newMachine()
		prog.LoadShared(m)

		var (
			row     = TraceStatsRow{Program: p.Name}
			pairs   = make(map[[2]sparc.Op]int64)
			triples = make(map[[3]sparc.Op]int64)
			run     []sparc.Instr
			prevPC  = int32(-2)
		)
		flush := func() {
			if len(run) == 0 {
				return
			}
			for _, w := range machine.FusionPlan(run) {
				row.Items++
				switch w {
				case 2:
					row.Fused2 += 2
				case 3:
					row.Fused3 += 3
				}
			}
			run = run[:0]
		}
		for !m.Halted() {
			pc := m.PC()
			in, ok := m.InstrAt(pc)
			if !ok {
				break
			}
			if pc != prevPC+1 {
				flush()
			}
			if n := len(run); n > 0 {
				pairs[[2]sparc.Op{run[n-1].Op, in.Op}]++
				if n > 1 {
					triples[[3]sparc.Op{run[n-2].Op, run[n-1].Op, in.Op}]++
				}
			}
			run = append(run, in)
			row.Instrs++
			prevPC = pc
			if err := m.Step(); err != nil {
				return nil, fmt.Errorf("%s: step at pc=%d: %w", p.Name, pc, err)
			}
		}
		flush()

		if row.Instrs > 0 {
			row.FusedPct = 100 * float64(row.Fused2+row.Fused3) / float64(row.Instrs)
			row.ItemsPerInstr = float64(row.Items) / float64(row.Instrs)
		}
		row.TopPairs = topSeqs(pairs, traceStatsTop)
		row.TopTriples = topSeqs(triples, traceStatsTop)
		rows = append(rows, row)
	}
	return rows, nil
}

// topSeqs reduces a sequence-frequency map to its top n entries, ties broken
// by sequence text so the output is deterministic.
func topSeqs[K interface{ ~[2]sparc.Op | ~[3]sparc.Op }](m map[K]int64, n int) []SeqCount {
	var total int64
	out := make([]SeqCount, 0, len(m))
	for k, c := range m {
		total += c
		var parts []string
		switch k := any(k).(type) {
		case [2]sparc.Op:
			parts = []string{k[0].String(), k[1].String()}
		case [3]sparc.Op:
			parts = []string{k[0].String(), k[1].String(), k[2].String()}
		}
		out = append(out, SeqCount{Seq: strings.Join(parts, "+"), Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Seq < out[j].Seq
	})
	if len(out) > n {
		out = out[:n]
	}
	for i := range out {
		out[i].Pct = 100 * float64(out[i].Count) / float64(total)
	}
	return out
}

// FormatTraceStats renders the rows as the aligned text table mrsbench
// prints for -trace-stats.
func FormatTraceStats(rows []TraceStatsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %9s %9s %8s %10s\n",
		"program", "instrs", "items", "fused2", "fused3", "fused%", "items/in")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12d %12d %9d %9d %7.1f%% %10.3f\n",
			r.Program, r.Instrs, r.Items, r.Fused2, r.Fused3,
			r.FusedPct, r.ItemsPerInstr)
	}
	b.WriteString("\ntop adjacent sequences (dynamic, straight-line):\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s pairs:", r.Program)
		for _, s := range r.TopPairs {
			fmt.Fprintf(&b, " %s %.1f%%", s.Seq, s.Pct)
		}
		fmt.Fprintf(&b, "\n%s triples:", r.Program)
		for _, s := range r.TopTriples {
			fmt.Fprintf(&b, " %s %.1f%%", s.Seq, s.Pct)
		}
		b.WriteString("\n")
	}
	return b.String()
}
