package bench

import (
	"fmt"
	"sort"
	"time"

	"databreak/internal/machine"
	"databreak/internal/workload"
)

// HostPerfRow is one engine's host-time measurement of the same unit of work
// BenchmarkRunWorkload times: one full eqntott compile-load-run on a fresh
// machine. NsPerOp is the MEDIAN of Runs wall times — the statistic the CI
// speedup gate reads, chosen because best-of overstates stability on shared
// runners (one lucky scheduling quantum sets the record and every later
// regeneration looks like a regression). NsPerOpMin is the best-of number
// `go test -bench` converges to, kept alongside so both views are tracked.
type HostPerfRow struct {
	Engine     string  `json:"engine"`
	NsPerOp    float64 `json:"ns_per_op"`
	NsPerOpMin float64 `json:"ns_per_op_min"`
	Runs       int     `json:"runs"`
	Cycles     int64   `json:"sim_cycles"`
	Instrs     int64   `json:"sim_instrs"`
}

// HostPerf runs the BenchmarkRunWorkload workload `runs` times under each
// execution engine and reports median and best-of wall time per run. Rounds
// are INTERLEAVED — every round times each engine once, in order — so slow
// host drift (thermal throttling, a noisy neighbor arriving mid-measurement)
// lands on all engines roughly equally instead of biasing whichever engine
// happened to run last. It doubles as a cheap cross-engine differential
// check: simulated cycles and instructions must be identical for every
// engine, and any divergence is an error, not a number in a report.
func HostPerf(cfg Config, runs int) ([]HostPerfRow, error) {
	if runs <= 0 {
		runs = 5
	}
	p, ok := workload.ByName("eqntott", 1)
	if !ok {
		return nil, fmt.Errorf("hostperf: workload eqntott missing")
	}
	u, err := Compile(p)
	if err != nil {
		return nil, err
	}
	prog, err := cfg.baselineProgram(p.Source, u)
	if err != nil {
		return nil, err
	}

	engines := []machine.Engine{machine.EngineStep, machine.EngineBlock, machine.EngineTrace, machine.EngineClosure}
	rows := make([]HostPerfRow, len(engines))
	times := make([][]time.Duration, len(engines))
	for i, e := range engines {
		rows[i] = HostPerfRow{Engine: e.String(), Runs: runs}
		times[i] = make([]time.Duration, 0, runs)
	}
	for r := 0; r < runs; r++ {
		for i, e := range engines {
			// Time New+LoadShared+Run, the exact per-iteration work of
			// BenchmarkRunWorkload and of every cached-artifact run in the
			// benchmark matrix, so the numbers are comparable to both.
			start := time.Now()
			m := machine.New(cfg.Cache, cfg.Costs)
			m.SetEngine(e)
			if cfg.HotThreshold > 0 {
				m.SetHotThreshold(cfg.HotThreshold)
			}
			if cfg.BrProfMin > 0 {
				m.SetBrProfMin(cfg.BrProfMin)
			}
			prog.LoadShared(m)
			if _, err := m.Run(); err != nil {
				return nil, fmt.Errorf("hostperf %s: %w", e, err)
			}
			times[i] = append(times[i], time.Since(start))
			if r == 0 {
				rows[i].Cycles, rows[i].Instrs = m.Cycles(), m.Instrs()
			} else if m.Cycles() != rows[i].Cycles || m.Instrs() != rows[i].Instrs {
				return nil, fmt.Errorf("hostperf %s: round %d cycles/instrs %d/%d, want %d/%d",
					e, r, m.Cycles(), m.Instrs(), rows[i].Cycles, rows[i].Instrs)
			}
		}
	}
	for i := range rows {
		ds := times[i]
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		med := ds[len(ds)/2]
		if len(ds)%2 == 0 {
			med = (ds[len(ds)/2-1] + ds[len(ds)/2]) / 2
		}
		rows[i].NsPerOp = float64(med.Nanoseconds())
		rows[i].NsPerOpMin = float64(ds[0].Nanoseconds())
	}
	for _, r := range rows[1:] {
		if r.Cycles != rows[0].Cycles || r.Instrs != rows[0].Instrs {
			return nil, fmt.Errorf("hostperf: engine %s counts %d/%d diverge from %s counts %d/%d",
				r.Engine, r.Cycles, r.Instrs, rows[0].Engine, rows[0].Cycles, rows[0].Instrs)
		}
	}
	return rows, nil
}
