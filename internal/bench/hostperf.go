package bench

import (
	"fmt"
	"time"

	"databreak/internal/machine"
	"databreak/internal/workload"
)

// HostPerfRow is one engine's host-time measurement of the same unit of work
// BenchmarkRunWorkload times: one full eqntott compile-load-run on a fresh
// machine. NsPerOp is the best-of-Runs wall time, the same statistic `go
// test -bench` converges to, so the JSON tracks host throughput per engine
// rather than only table wall-clock.
type HostPerfRow struct {
	Engine  string  `json:"engine"`
	NsPerOp float64 `json:"ns_per_op"`
	Runs    int     `json:"runs"`
	Cycles  int64   `json:"sim_cycles"`
	Instrs  int64   `json:"sim_instrs"`
}

// HostPerf runs the BenchmarkRunWorkload workload `runs` times under each
// execution engine and reports best-of wall time per run. It doubles as a
// cheap cross-engine differential check: simulated cycles and instructions
// must be identical for every engine, and any divergence is an error, not a
// number in a report.
func HostPerf(cfg Config, runs int) ([]HostPerfRow, error) {
	if runs <= 0 {
		runs = 5
	}
	p, ok := workload.ByName("eqntott", 1)
	if !ok {
		return nil, fmt.Errorf("hostperf: workload eqntott missing")
	}
	u, err := Compile(p)
	if err != nil {
		return nil, err
	}
	prog, err := cfg.baselineProgram(p.Source, u)
	if err != nil {
		return nil, err
	}

	var rows []HostPerfRow
	for _, e := range []machine.Engine{machine.EngineStep, machine.EngineBlock, machine.EngineTrace, machine.EngineClosure} {
		row := HostPerfRow{Engine: e.String(), Runs: runs}
		best := time.Duration(0)
		for i := 0; i < runs; i++ {
			// Time New+Load+Run, the exact per-iteration work of
			// BenchmarkRunWorkload, so the numbers are comparable.
			start := time.Now()
			m := machine.New(cfg.Cache, cfg.Costs)
			m.SetEngine(e)
			if cfg.HotThreshold > 0 {
				m.SetHotThreshold(cfg.HotThreshold)
			}
			if cfg.BrProfMin > 0 {
				m.SetBrProfMin(cfg.BrProfMin)
			}
			prog.Load(m)
			if _, err := m.Run(); err != nil {
				return nil, fmt.Errorf("hostperf %s: %w", e, err)
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
			if i == 0 {
				row.Cycles, row.Instrs = m.Cycles(), m.Instrs()
			} else if m.Cycles() != row.Cycles || m.Instrs() != row.Instrs {
				return nil, fmt.Errorf("hostperf %s: run %d cycles/instrs %d/%d, want %d/%d",
					e, i, m.Cycles(), m.Instrs(), row.Cycles, row.Instrs)
			}
		}
		row.NsPerOp = float64(best.Nanoseconds())
		rows = append(rows, row)
	}
	for _, r := range rows[1:] {
		if r.Cycles != rows[0].Cycles || r.Instrs != rows[0].Instrs {
			return nil, fmt.Errorf("hostperf: engine %s counts %d/%d diverge from %s counts %d/%d",
				r.Engine, r.Cycles, r.Instrs, rows[0].Engine, rows[0].Cycles, rows[0].Instrs)
		}
	}
	return rows, nil
}
