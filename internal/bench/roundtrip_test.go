package bench

import (
	"testing"

	"databreak/internal/machine"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// TestEngineRoundTripAllWorkloads is the workload-scale engine-switching
// differential: every benchmark program runs once serially under the
// reference step engine, then again sliced by RunFor with SetEngine rotating
// through all four engines between slices. The sliced run crosses engine
// boundaries dozens of times mid-program — compiled traces and closures are
// entered, abandoned for the block or step engine, and re-entered — and the
// final cycles, instructions, exit code, and output must be bit-identical to
// the uninterrupted reference. Run under -race this also exercises the
// per-engine caches' construction on a machine shared across slices.
func TestEngineRoundTripAllWorkloads(t *testing.T) {
	engines := []machine.Engine{
		machine.EngineStep, machine.EngineBlock,
		machine.EngineTrace, machine.EngineClosure,
	}
	cfg := DefaultConfig()
	for _, p := range workload.All(1) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			u, err := Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := cfg.baselineProgram(p.Source, u)
			if err != nil {
				t.Fatal(err)
			}

			ref := machine.New(cfg.Cache, cfg.Costs)
			ref.SetEngine(machine.EngineStep)
			prog.LoadShared(ref)
			refCode, err := ref.Run()
			if err != nil {
				t.Fatal(err)
			}

			// Slice so the run rotates through each engine many times; the
			// floor keeps tiny programs from degenerating to per-instruction
			// slices (that differential lives in the machine package).
			slice := ref.Instrs() / 48
			if slice < 500 {
				slice = 500
			}

			m := machine.New(cfg.Cache, cfg.Costs)
			prog.LoadShared(m)
			var code int32
			for i := 0; ; i++ {
				m.SetEngine(engines[i%len(engines)])
				c, halted, err := m.RunFor(slice)
				if err != nil {
					t.Fatalf("slice %d (%s): %v", i, engines[i%len(engines)], err)
				}
				if halted {
					code = c
					break
				}
			}

			if code != refCode {
				t.Errorf("exit code %d, reference %d", code, refCode)
			}
			if m.Cycles() != ref.Cycles() || m.Instrs() != ref.Instrs() {
				t.Errorf("sliced counts %d cycles / %d instrs, reference %d / %d",
					m.Cycles(), m.Instrs(), ref.Cycles(), ref.Instrs())
			}
			if m.Output() != ref.Output() {
				t.Errorf("output diverged:\nsliced:    %q\nreference: %q", m.Output(), ref.Output())
			}
		})
	}
}

// TestEngineRoundTripKindRegions repeats the engine-switching differential on
// the monitored, read-checked build: every workload is patched with
// BitmapInlineRegisters+CheckReads, armed with a load-kind region on one
// entry-frame stack slot and a transition region (PredChanged) on another,
// and run once under the step engine and once sliced across all four engines.
// Cycles, instructions, output, AND the delivered hit stream — including
// read flags and transition old/new values — must be bit-identical.
func TestEngineRoundTripKindRegions(t *testing.T) {
	engines := []machine.Engine{
		machine.EngineStep, machine.EngineBlock,
		machine.EngineTrace, machine.EngineClosure,
	}
	cfg := DefaultConfig()
	popts := patch.Options{Strategy: patch.BitmapInlineRegisters, CheckReads: true}
	mcfg := monitor.DefaultConfig

	type hitKey struct {
		addr     uint32
		size     int32
		read     bool
		old, new uint32
		instrs   int64
	}
	arm := func(t *testing.T, svc *monitor.Service) {
		t.Helper()
		if err := svc.CreateRegion(FarRegion, 4); err != nil {
			t.Fatal(err)
		}
		if err := svc.CreateRegionKind(machine.StackTop-8, 4, monitor.KindLoad); err != nil {
			t.Fatal(err)
		}
		if err := svc.CreateTransitionRegion(HitRegion, HitRegionSize,
			monitor.Predicate{Kind: monitor.PredChanged}); err != nil {
			t.Fatal(err)
		}
		svc.Reinstall()
	}
	var totalHits int64
	for _, p := range workload.All(1) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			u, err := Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := cfg.patchedProgram(p.Source, u, popts)
			if err != nil {
				t.Fatal(err)
			}

			ref := machine.New(cfg.Cache, cfg.Costs)
			ref.SetEngine(machine.EngineStep)
			prog.LoadShared(ref)
			refSvc, err := monitor.NewService(mcfg, ref)
			if err != nil {
				t.Fatal(err)
			}
			arm(t, refSvc)
			refCode, err := ref.Run()
			if err != nil {
				t.Fatal(err)
			}

			slice := ref.Instrs() / 48
			if slice < 500 {
				slice = 500
			}
			m := machine.New(cfg.Cache, cfg.Costs)
			prog.LoadShared(m)
			svc, err := monitor.NewService(mcfg, m)
			if err != nil {
				t.Fatal(err)
			}
			arm(t, svc)
			var code int32
			for i := 0; ; i++ {
				m.SetEngine(engines[i%len(engines)])
				c, halted, err := m.RunFor(slice)
				if err != nil {
					t.Fatalf("slice %d (%s): %v", i, engines[i%len(engines)], err)
				}
				if halted {
					code = c
					break
				}
			}

			if code != refCode {
				t.Errorf("exit code %d, reference %d", code, refCode)
			}
			if m.Cycles() != ref.Cycles() || m.Instrs() != ref.Instrs() {
				t.Errorf("sliced counts %d cycles / %d instrs, reference %d / %d",
					m.Cycles(), m.Instrs(), ref.Cycles(), ref.Instrs())
			}
			if m.Output() != ref.Output() {
				t.Errorf("output diverged")
			}
			if svc.HitCount != refSvc.HitCount {
				t.Errorf("hit count %d, reference %d", svc.HitCount, refSvc.HitCount)
			}
			for i := range refSvc.Hits {
				if i >= len(svc.Hits) {
					break
				}
				r, s := refSvc.Hits[i], svc.Hits[i]
				rk := hitKey{r.Addr, r.Size, r.Read, r.Old, r.New, r.Instrs}
				sk := hitKey{s.Addr, s.Size, s.Read, s.Old, s.New, s.Instrs}
				if rk != sk {
					t.Fatalf("hit %d diverged: sliced %+v, reference %+v", i, sk, rk)
				}
			}
			totalHits += refSvc.HitCount
		})
	}
	// The armed regions must actually see traffic somewhere in the suite;
	// an all-zero hit stream would make the differential vacuous.
	if !t.Failed() && totalHits == 0 {
		t.Error("no workload delivered any read or transition hit")
	}
}
