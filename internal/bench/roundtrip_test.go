package bench

import (
	"testing"

	"databreak/internal/machine"
	"databreak/internal/workload"
)

// TestEngineRoundTripAllWorkloads is the workload-scale engine-switching
// differential: every benchmark program runs once serially under the
// reference step engine, then again sliced by RunFor with SetEngine rotating
// through all four engines between slices. The sliced run crosses engine
// boundaries dozens of times mid-program — compiled traces and closures are
// entered, abandoned for the block or step engine, and re-entered — and the
// final cycles, instructions, exit code, and output must be bit-identical to
// the uninterrupted reference. Run under -race this also exercises the
// per-engine caches' construction on a machine shared across slices.
func TestEngineRoundTripAllWorkloads(t *testing.T) {
	engines := []machine.Engine{
		machine.EngineStep, machine.EngineBlock,
		machine.EngineTrace, machine.EngineClosure,
	}
	cfg := DefaultConfig()
	for _, p := range workload.All(1) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			u, err := Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := cfg.baselineProgram(p.Source, u)
			if err != nil {
				t.Fatal(err)
			}

			ref := machine.New(cfg.Cache, cfg.Costs)
			ref.SetEngine(machine.EngineStep)
			prog.LoadShared(ref)
			refCode, err := ref.Run()
			if err != nil {
				t.Fatal(err)
			}

			// Slice so the run rotates through each engine many times; the
			// floor keeps tiny programs from degenerating to per-instruction
			// slices (that differential lives in the machine package).
			slice := ref.Instrs() / 48
			if slice < 500 {
				slice = 500
			}

			m := machine.New(cfg.Cache, cfg.Costs)
			prog.LoadShared(m)
			var code int32
			for i := 0; ; i++ {
				m.SetEngine(engines[i%len(engines)])
				c, halted, err := m.RunFor(slice)
				if err != nil {
					t.Fatalf("slice %d (%s): %v", i, engines[i%len(engines)], err)
				}
				if halted {
					code = c
					break
				}
			}

			if code != refCode {
				t.Errorf("exit code %d, reference %d", code, refCode)
			}
			if m.Cycles() != ref.Cycles() || m.Instrs() != ref.Instrs() {
				t.Errorf("sliced counts %d cycles / %d instrs, reference %d / %d",
					m.Cycles(), m.Instrs(), ref.Cycles(), ref.Instrs())
			}
			if m.Output() != ref.Output() {
				t.Errorf("output diverged:\nsliced:    %q\nreference: %q", m.Output(), ref.Output())
			}
		})
	}
}
