package bench

import (
	"fmt"
	"strings"

	"databreak/internal/elim"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// T2Row is one Table 2 line: dynamic write-check elimination percentages,
// pre-header checks generated, and the runtime overhead of the two analysis
// configurations.
type T2Row struct {
	Name string
	Lang string
	// Checks eliminated, as % of dynamic write instructions.
	Sym, LI, Range, Total float64
	// Checks generated in pre-headers, as % of dynamic writes.
	GenLI, GenRange float64
	// Runtime overhead (%): Full = symbol + loop optimization; SymOv =
	// symbol-table optimization only.
	Full, SymOv float64
}

// Table2 reproduces Table 2: write-check elimination results. The two
// analysis configurations of each program are independent cells on the
// worker pool.
func Table2(cfg Config, programs []workload.Program) ([]T2Row, error) {
	cfg = cfg.normalized()
	preps, err := cfg.prepare(programs, "table2", true)
	if err != nil {
		return nil, err
	}
	modes := []elim.Mode{elim.Full, elim.SymOnly}
	grid, err := matrix(cfg, preps, len(modes), func(p prepped, v int) (Run, error) {
		mode := modes[v]
		cfg.logf("table2: %s/%v", p.prog.Name, mode)
		r, err := cfg.runElim(p.prog.Source, p.unit, mode, monitor.DefaultConfig)
		if err != nil {
			return Run{}, fmt.Errorf("%s/%v: %w", p.prog.Name, mode, err)
		}
		if err := checkOutput(p.prog, p.base.Output, r.Output, mode.String()); err != nil {
			return Run{}, err
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]T2Row, 0, len(preps))
	for i, p := range preps {
		base, full, sym := p.base, grid[i][0], grid[i][1]

		eSym := full.Counters[elim.CounterElimSym]
		eLI := full.Counters[elim.CounterElimLI]
		eRange := full.Counters[elim.CounterElimRange]
		checked := full.Counters[patch.CounterChecks]
		writes := eSym + eLI + eRange + checked
		if writes == 0 {
			writes = 1
		}
		pct := func(n uint64) float64 { return 100 * float64(n) / float64(writes) }

		rows = append(rows, T2Row{
			Name:     p.prog.Name,
			Lang:     p.prog.Lang,
			Sym:      pct(eSym),
			LI:       pct(eLI),
			Range:    pct(eRange),
			Total:    pct(eSym + eLI + eRange),
			GenLI:    pct(full.Counters[elim.CounterGenLI]),
			GenRange: pct(full.Counters[elim.CounterGenRange]),
			Full:     overheadPct(base.Cycles, full.Cycles),
			SymOv:    overheadPct(base.Cycles, sym.Cycles),
		})
	}
	return rows, nil
}

// AveragesT2 summarizes by language and overall.
func AveragesT2(rows []T2Row) (cAvg, fAvg, all T2Row) {
	avg := func(sel func(T2Row) bool, name string) T2Row {
		out := T2Row{Name: name}
		n := 0
		for _, r := range rows {
			if !sel(r) {
				continue
			}
			n++
			out.Sym += r.Sym
			out.LI += r.LI
			out.Range += r.Range
			out.Total += r.Total
			out.GenLI += r.GenLI
			out.GenRange += r.GenRange
			out.Full += r.Full
			out.SymOv += r.SymOv
		}
		if n > 0 {
			f := float64(n)
			out.Sym /= f
			out.LI /= f
			out.Range /= f
			out.Total /= f
			out.GenLI /= f
			out.GenRange /= f
			out.Full /= f
			out.SymOv /= f
		}
		return out
	}
	cAvg = avg(func(r T2Row) bool { return r.Lang == "C" }, "C AVERAGE")
	fAvg = avg(func(r T2Row) bool { return r.Lang == "F" }, "FORTRAN AVERAGE")
	all = avg(func(T2Row) bool { return true }, "OVERALL AVERAGE")
	return
}

// FormatTable2 renders rows the way the paper prints Table 2.
func FormatTable2(rows []T2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s | %7s %6s %6s %6s | %6s %6s | %8s %8s\n",
		"", "Checks", "Elimin", "ated", "", "Gener", "ated", "Overhead", "")
	fmt.Fprintf(&b, "%-16s | %7s %6s %6s %6s | %6s %6s | %8s %8s\n",
		"Program", "Symbol", "LI", "Range", "Total", "LI", "Range", "Full", "Sym")
	line := func(r T2Row, name string) {
		fmt.Fprintf(&b, "%-16s | %6.1f%% %5.1f%% %5.1f%% %5.1f%% | %5.1f%% %5.1f%% | %7.1f%% %7.1f%%\n",
			name, r.Sym, r.LI, r.Range, r.Total, r.GenLI, r.GenRange, r.Full, r.SymOv)
	}
	for _, r := range rows {
		line(r, "("+r.Lang+") "+r.Name)
	}
	cAvg, fAvg, all := AveragesT2(rows)
	line(cAvg, cAvg.Name)
	line(fAvg, fAvg.Name)
	line(all, all.Name)
	return b.String()
}

// Figure3Point is one sample of segment-cache locality.
type Figure3Point struct {
	SegWords int
	// HitRate is the fraction of segment-cache checks that hit, aggregated
	// over all write types.
	HitRate float64
}

// Figure3Sizes are the segment sizes swept (the paper's x axis starts at
// the 128-word choice and grows; larger segments improve cache locality but
// increase full lookups and table pressure).
var Figure3Sizes = []int{32, 64, 128, 256, 512, 1024, 2048, 4096}

// Figure3 reproduces the segment-cache locality study: per program, the
// segment cache hit rate as a function of segment size. Every
// (program, segment size) pair is one cell on the worker pool.
func Figure3(cfg Config, programs []workload.Program) (map[string][]Figure3Point, error) {
	cfg = cfg.normalized()
	preps, err := cfg.prepare(programs, "figure3", false)
	if err != nil {
		return nil, err
	}
	grid, err := matrix(cfg, preps, len(Figure3Sizes), func(p prepped, v int) (Figure3Point, error) {
		sw := Figure3Sizes[v]
		cfg.logf("figure3: %s/seg%d", p.prog.Name, sw)
		mcfg := monitor.Config{SegWords: uint32(sw), Flags: true}
		r, err := cfg.runStrategy(p.prog.Source, p.unit, patch.Cache, mcfg, false)
		if err != nil {
			return Figure3Point{}, fmt.Errorf("%s/seg%d: %w", p.prog.Name, sw, err)
		}
		var total, miss uint64
		for _, wt := range []patch.WriteType{
			patch.WriteStack, patch.WriteBSS, patch.WriteHeap, patch.WriteBSSVar,
		} {
			total += r.Counters[patch.CacheTotalCounter(wt)]
			miss += r.Counters[patch.CacheMissCounter(wt)]
		}
		rate := 0.0
		if total > 0 {
			rate = 1 - float64(miss)/float64(total)
		}
		return Figure3Point{SegWords: sw, HitRate: rate}, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]Figure3Point, len(preps))
	for i, p := range preps {
		out[p.prog.Name] = grid[i]
	}
	return out, nil
}

// FormatFigure3 renders the locality series as a text table.
func FormatFigure3(series map[string][]Figure3Point, programs []workload.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "segment")
	for _, sw := range Figure3Sizes {
		fmt.Fprintf(&b, " %6dw", sw)
	}
	b.WriteString("\n")
	avg := make([]float64, len(Figure3Sizes))
	n := 0
	for _, p := range programs {
		pts, ok := series[p.Name]
		if !ok {
			continue
		}
		n++
		fmt.Fprintf(&b, "%-12s", p.Name)
		for i, pt := range pts {
			fmt.Fprintf(&b, " %6.1f%%", 100*pt.HitRate)
			avg[i] += pt.HitRate
		}
		b.WriteString("\n")
	}
	if n > 0 {
		fmt.Fprintf(&b, "%-12s", "AVERAGE")
		for _, a := range avg {
			fmt.Fprintf(&b, " %6.1f%%", 100*a/float64(n))
		}
		b.WriteString("\n")
	}
	return b.String()
}

var _ = workload.Program{}
