package bench

import (
	"fmt"
	"strings"

	"databreak/internal/elim"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// T2Row is one Table 2 line: dynamic write-check elimination percentages,
// pre-header checks generated, and the runtime overhead of the two analysis
// configurations.
type T2Row struct {
	Name string
	Lang string
	// Checks eliminated, as % of dynamic write instructions.
	Sym, LI, Range, Total float64
	// Checks generated in pre-headers, as % of dynamic writes.
	GenLI, GenRange float64
	// Runtime overhead (%): Full = symbol + loop optimization; SymOv =
	// symbol-table optimization only.
	Full, SymOv float64
}

// Table2 reproduces Table 2: write-check elimination results.
func Table2(cfg Config, programs []workload.Program) ([]T2Row, error) {
	var rows []T2Row
	for _, p := range programs {
		cfg.logf("table2: %s", p.Name)
		u, err := Compile(p)
		if err != nil {
			return nil, err
		}
		base, err := cfg.RunBaseline(u)
		if err != nil {
			return nil, err
		}
		full, err := cfg.RunElim(u, elim.Full, monitor.DefaultConfig)
		if err != nil {
			return nil, fmt.Errorf("%s/full: %w", p.Name, err)
		}
		if err := checkOutput(p, base.Output, full.Output, "Full"); err != nil {
			return nil, err
		}
		sym, err := cfg.RunElim(u, elim.SymOnly, monitor.DefaultConfig)
		if err != nil {
			return nil, fmt.Errorf("%s/sym: %w", p.Name, err)
		}
		if err := checkOutput(p, base.Output, sym.Output, "Sym"); err != nil {
			return nil, err
		}

		eSym := full.Counters[elim.CounterElimSym]
		eLI := full.Counters[elim.CounterElimLI]
		eRange := full.Counters[elim.CounterElimRange]
		checked := full.Counters[patch.CounterChecks]
		writes := eSym + eLI + eRange + checked
		if writes == 0 {
			writes = 1
		}
		pct := func(n uint64) float64 { return 100 * float64(n) / float64(writes) }

		rows = append(rows, T2Row{
			Name:     p.Name,
			Lang:     p.Lang,
			Sym:      pct(eSym),
			LI:       pct(eLI),
			Range:    pct(eRange),
			Total:    pct(eSym + eLI + eRange),
			GenLI:    pct(full.Counters[elim.CounterGenLI]),
			GenRange: pct(full.Counters[elim.CounterGenRange]),
			Full:     overheadPct(base.Cycles, full.Cycles),
			SymOv:    overheadPct(base.Cycles, sym.Cycles),
		})
	}
	return rows, nil
}

// AveragesT2 summarizes by language and overall.
func AveragesT2(rows []T2Row) (cAvg, fAvg, all T2Row) {
	avg := func(sel func(T2Row) bool, name string) T2Row {
		out := T2Row{Name: name}
		n := 0
		for _, r := range rows {
			if !sel(r) {
				continue
			}
			n++
			out.Sym += r.Sym
			out.LI += r.LI
			out.Range += r.Range
			out.Total += r.Total
			out.GenLI += r.GenLI
			out.GenRange += r.GenRange
			out.Full += r.Full
			out.SymOv += r.SymOv
		}
		if n > 0 {
			f := float64(n)
			out.Sym /= f
			out.LI /= f
			out.Range /= f
			out.Total /= f
			out.GenLI /= f
			out.GenRange /= f
			out.Full /= f
			out.SymOv /= f
		}
		return out
	}
	cAvg = avg(func(r T2Row) bool { return r.Lang == "C" }, "C AVERAGE")
	fAvg = avg(func(r T2Row) bool { return r.Lang == "F" }, "FORTRAN AVERAGE")
	all = avg(func(T2Row) bool { return true }, "OVERALL AVERAGE")
	return
}

// FormatTable2 renders rows the way the paper prints Table 2.
func FormatTable2(rows []T2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s | %7s %6s %6s %6s | %6s %6s | %8s %8s\n",
		"", "Checks", "Elimin", "ated", "", "Gener", "ated", "Overhead", "")
	fmt.Fprintf(&b, "%-16s | %7s %6s %6s %6s | %6s %6s | %8s %8s\n",
		"Program", "Symbol", "LI", "Range", "Total", "LI", "Range", "Full", "Sym")
	line := func(r T2Row, name string) {
		fmt.Fprintf(&b, "%-16s | %6.1f%% %5.1f%% %5.1f%% %5.1f%% | %5.1f%% %5.1f%% | %7.1f%% %7.1f%%\n",
			name, r.Sym, r.LI, r.Range, r.Total, r.GenLI, r.GenRange, r.Full, r.SymOv)
	}
	for _, r := range rows {
		line(r, "("+r.Lang+") "+r.Name)
	}
	cAvg, fAvg, all := AveragesT2(rows)
	line(cAvg, cAvg.Name)
	line(fAvg, fAvg.Name)
	line(all, all.Name)
	return b.String()
}

// Figure3Point is one sample of segment-cache locality.
type Figure3Point struct {
	SegWords int
	// HitRate is the fraction of segment-cache checks that hit, aggregated
	// over all write types.
	HitRate float64
}

// Figure3Sizes are the segment sizes swept (the paper's x axis starts at
// the 128-word choice and grows; larger segments improve cache locality but
// increase full lookups and table pressure).
var Figure3Sizes = []int{32, 64, 128, 256, 512, 1024, 2048, 4096}

// Figure3 reproduces the segment-cache locality study: per program, the
// segment cache hit rate as a function of segment size.
func Figure3(cfg Config, programs []workload.Program) (map[string][]Figure3Point, error) {
	out := make(map[string][]Figure3Point)
	for _, p := range programs {
		cfg.logf("figure3: %s", p.Name)
		u, err := Compile(p)
		if err != nil {
			return nil, err
		}
		for _, sw := range Figure3Sizes {
			mcfg := monitor.Config{SegWords: uint32(sw), Flags: true}
			r, err := cfg.RunStrategy(u, patch.Cache, mcfg, false)
			if err != nil {
				return nil, fmt.Errorf("%s/seg%d: %w", p.Name, sw, err)
			}
			var total, miss uint64
			for _, wt := range []patch.WriteType{
				patch.WriteStack, patch.WriteBSS, patch.WriteHeap, patch.WriteBSSVar,
			} {
				total += r.Counters[patch.CacheTotalCounter(wt)]
				miss += r.Counters[patch.CacheMissCounter(wt)]
			}
			rate := 0.0
			if total > 0 {
				rate = 1 - float64(miss)/float64(total)
			}
			out[p.Name] = append(out[p.Name], Figure3Point{SegWords: sw, HitRate: rate})
		}
	}
	return out, nil
}

// FormatFigure3 renders the locality series as a text table.
func FormatFigure3(series map[string][]Figure3Point, programs []workload.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "segment")
	for _, sw := range Figure3Sizes {
		fmt.Fprintf(&b, " %6dw", sw)
	}
	b.WriteString("\n")
	avg := make([]float64, len(Figure3Sizes))
	n := 0
	for _, p := range programs {
		pts, ok := series[p.Name]
		if !ok {
			continue
		}
		n++
		fmt.Fprintf(&b, "%-12s", p.Name)
		for i, pt := range pts {
			fmt.Fprintf(&b, " %6.1f%%", 100*pt.HitRate)
			avg[i] += pt.HitRate
		}
		b.WriteString("\n")
	}
	if n > 0 {
		fmt.Fprintf(&b, "%-12s", "AVERAGE")
		for _, a := range avg {
			fmt.Fprintf(&b, " %6.1f%%", 100*a/float64(n))
		}
		b.WriteString("\n")
	}
	return b.String()
}

var _ = workload.Program{}
