package bench

import (
	"io"
	"runtime"
	"sync"

	"databreak/internal/asm"
	"databreak/internal/workload"
)

// This file is the parallel execution engine for the benchmark matrix. The
// paper's evaluation is a grid of independent (program, variant) simulator
// runs; every table driver enumerates its cells, fans them out over
// Config.Workers goroutines, and collects results in deterministic input
// order, so the rendered tables are byte-identical to a serial run.

// syncWriter serializes a progress log shared by concurrent workers.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// SyncWriter wraps w so that concurrent workers may share it. A nil writer
// and an already-wrapped writer pass through unchanged.
func SyncWriter(w io.Writer) io.Writer {
	if w == nil {
		return nil
	}
	if _, ok := w.(*syncWriter); ok {
		return w
	}
	return &syncWriter{w: w}
}

// normalized returns a copy of c with Workers defaulted to the host
// parallelism and Log made goroutine-safe. Every table driver calls it on
// entry, so callers may pass a plain Config.
func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	c.Log = SyncWriter(c.Log)
	return c
}

// parallelMap runs fn(0..n-1) over cfg.Workers goroutines and returns the
// results indexed by input position. After the first error no new cells are
// issued; in-flight cells finish and the lowest-index error is returned, so
// the reported failure does not depend on goroutine scheduling.
func parallelMap[T any](cfg Config, n int, fn func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	idxc := make(chan int)
	done := make(chan struct{})
	var once sync.Once
	cancel := func() { once.Do(func() { close(done) }) }
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxc {
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				out[i] = v
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idxc <- i:
		case <-done:
			break feed
		}
	}
	close(idxc)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// prepped is a workload ready for the variant cells: compiled once, with its
// baseline run (the denominator of every overhead column) measured once. The
// unit may come from the shared artifact cache — cells must Clone it before
// rewriting.
type prepped struct {
	prog workload.Program
	unit *asm.Unit
	base Run
}

// prepare compiles every program and, when needBase is set, measures its
// baseline, in parallel. what tags progress lines.
func (c Config) prepare(programs []workload.Program, what string, needBase bool) ([]prepped, error) {
	return parallelMap(c, len(programs), func(i int) (prepped, error) {
		p := programs[i]
		c.logf("%s: %s", what, p.Name)
		u, err := c.unitFor(p)
		if err != nil {
			return prepped{}, err
		}
		pr := prepped{prog: p, unit: u}
		if needBase {
			if pr.base, err = c.runBaseline(p.Source, u); err != nil {
				return prepped{}, err
			}
		}
		return pr, nil
	})
}

// matrix fans fn over every (program, variant) cell — the benchmark grid —
// and returns results as rows[program][variant]. Cells are independent:
// each clones the prepped unit before rewriting, so any interleaving
// produces the same grid.
func matrix[T any](cfg Config, preps []prepped, nVar int, fn func(p prepped, v int) (T, error)) ([][]T, error) {
	flat, err := parallelMap(cfg, len(preps)*nVar, func(k int) (T, error) {
		return fn(preps[k/nVar], k%nVar)
	})
	if err != nil {
		return nil, err
	}
	rows := make([][]T, len(preps))
	for i := range rows {
		rows[i] = flat[i*nVar : (i+1)*nVar]
	}
	return rows, nil
}
