// Package workload provides the ten benchmark programs used to reproduce
// the paper's evaluation. Each is a mini-C program whose kernel structure
// mirrors the memory behaviour of the corresponding SPEC89 program (write
// density, locality, loop structure, pointer use, register declarations):
//
//	eqntott    integer sorting/comparison over tables (C)
//	espresso   bit-vector set operations with register cursors (C)
//	gcc        many small functions over allocated expression trees (C)
//	li         cons-cell interpreter churn: alloc/free + recursion (C)
//	doduc      scalar-heavy iterative simulation, small loops (Fortran-like)
//	fpppp      huge straight-line basic blocks over scalars (Fortran-like)
//	matrix300  dense matrix multiply, perfectly analyzable loops (Fortran-like)
//	nasker     mixed kernels: saxpy, stencil, scatter, reduction (Fortran-like)
//	spice2g6   sparse matrix-vector with indirect indexing (Fortran-like)
//	tomcatv    2-D stencil relaxation over mesh arrays (Fortran-like)
//
// Absolute running times are meaningless on a simulator; what matters is
// that the *shape* of each program's write mix matches its model, because
// that is what drives every number in Tables 1 and 2.
package workload

import (
	"fmt"
	"strings"
)

// Program is one benchmark.
type Program struct {
	Name   string
	Lang   string // "C" or "F"
	Source string
}

// expand substitutes @X@ tokens (avoids fmt-escaping % in mini-C source).
func expand(src string, vars map[string]int) string {
	for k, v := range vars {
		src = strings.ReplaceAll(src, "@"+k+"@", fmt.Sprint(v))
	}
	return src
}

// All returns the benchmark suite at the given scale (1 = quick; larger
// values grow iteration counts roughly linearly).
func All(scale int) []Program {
	if scale < 1 {
		scale = 1
	}
	return []Program{
		Eqntott(scale), Espresso(scale), GCC(scale), LI(scale),
		Doduc(scale), Fpppp(scale), Matrix300(scale), Nasker(scale),
		Spice(scale), Tomcatv(scale),
	}
}

// ByName returns the named benchmark.
func ByName(name string, scale int) (Program, bool) {
	for _, p := range All(scale) {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}

// Eqntott mirrors 023.eqntott: quicksort over permutation tables; heavy
// known scalar writes, comparison-dominated control flow.
func Eqntott(scale int) Program {
	src := `
int perm[2048];
int vals[2048];
int seed;

int nextrand() {
	seed = seed * 1103515245 + 12345;
	if (seed < 0) seed = -seed;
	return seed;
}

int less(int i, int j) {
	int vi;
	int vj;
	vi = vals[perm[i]];
	vj = vals[perm[j]];
	if (vi < vj) return 1;
	if (vi > vj) return 0;
	return perm[i] < perm[j];
}

int qsortr(int lo, int hi) {
	int i;
	int j;
	int t;
	int mid;
	if (lo >= hi) return 0;
	mid = perm[(lo + hi) / 2];
	i = lo;
	j = hi;
	while (i <= j) {
		while (vals[perm[i]] < vals[mid]) i = i + 1;
		while (vals[perm[j]] > vals[mid]) j = j - 1;
		if (i <= j) {
			t = perm[i];
			perm[i] = perm[j];
			perm[j] = t;
			i = i + 1;
			j = j - 1;
		}
	}
	qsortr(lo, j);
	qsortr(i, hi);
	return 0;
}

int main() {
	int i;
	int r;
	int sum;
	int n;
	n = @N@;
	sum = 0;
	seed = 12345;
	for (r = 0; r < @R@; r = r + 1) {
		for (i = 0; i < n; i = i + 1) {
			perm[i] = i;
			vals[i] = nextrand() % 10000;
		}
		qsortr(0, n - 1);
		for (i = 1; i < n; i = i + 1) {
			if (vals[perm[i - 1]] > vals[perm[i]]) sum = sum + 1000000;
		}
		sum = sum + vals[perm[0]] + vals[perm[n - 1]] + less(0, n - 1);
	}
	print(sum);
	return 0;
}
`
	return Program{"eqntott", "C", expand(src, map[string]int{"N": 1200, "R": 2 * scale})}
}

// Espresso mirrors 008.espresso: bit-vector cube covers with register
// declared loop cursors (reducing both the need and opportunity for
// optimization, as §4.6.1 notes).
func Espresso(scale int) Program {
	src := `
int cover[128][8];
int temp[8];
int seed;

int nextrand() {
	seed = seed * 1103515245 + 12345;
	if (seed < 0) seed = -seed;
	return seed;
}

int popcount(int x) {
	register int c;
	register int v;
	c = 0;
	v = x;
	while (v != 0) {
		c = c + (v & 1);
		v = (v >> 1) & 0x7fffffff;
	}
	return c;
}

int intersect(int a, int b) {
	register int k;
	register int any;
	any = 0;
	for (k = 0; k < 8; k = k + 1) {
		temp[k] = cover[a][k] & cover[b][k];
		any = any | temp[k];
	}
	return any != 0;
}

int covers(int a, int b) {
	register int k;
	for (k = 0; k < 8; k = k + 1) {
		if ((cover[a][k] & cover[b][k]) != cover[b][k]) return 0;
	}
	return 1;
}

int main() {
	register int i;
	register int j;
	int bits;
	int pairs;
	int r;
	seed = 99;
	bits = 0;
	pairs = 0;
	for (i = 0; i < 128; i = i + 1) {
		for (j = 0; j < 8; j = j + 1) {
			cover[i][j] = nextrand();
		}
	}
	for (r = 0; r < @R@; r = r + 1) {
		for (i = 0; i < 127; i = i + 1) {
			for (j = i + 1; j < 128; j = j + 2) {
				if (intersect(i, j)) {
					bits = bits + popcount(temp[0] ^ temp[7]);
				}
				pairs = pairs + covers(i, j);
			}
		}
	}
	print(bits + pairs);
	return 0;
}
`
	return Program{"espresso", "C", expand(src, map[string]int{"R": 2 * scale})}
}

// GCC mirrors 001.gcc: many small functions building, folding, and freeing
// expression trees; frequent calls mean frequent %fp definitions.
func GCC(scale int) Program {
	src := `
struct Node {
	int op;
	int val;
	struct Node *l;
	struct Node *r;
};
int seed;
int folded;

int nextrand() {
	seed = seed * 1103515245 + 12345;
	if (seed < 0) seed = -seed;
	return seed;
}

struct Node *mkleaf(int v) {
	struct Node *n;
	n = alloc(sizeof(struct Node));
	n->op = 0;
	n->val = v;
	n->l = 0;
	n->r = 0;
	return n;
}

struct Node *mknode(int op, struct Node *l, struct Node *r) {
	struct Node *n;
	n = alloc(sizeof(struct Node));
	n->op = op;
	n->val = 0;
	n->l = l;
	n->r = r;
	return n;
}

struct Node *build(int depth) {
	int op;
	if (depth <= 0) return mkleaf(nextrand() % 100);
	op = 1 + nextrand() % 3;
	return mknode(op, build(depth - 1), build(depth - 1 - nextrand() % 2));
}

int eval(struct Node *n) {
	int a;
	int b;
	if (n->op == 0) return n->val;
	a = eval(n->l);
	b = eval(n->r);
	if (n->op == 1) return a + b;
	if (n->op == 2) return a - b;
	return a * b % 65536;
}

int fold(struct Node *n) {
	if (n->op == 0) return n->val;
	n->val = eval(n);
	n->op = 0;
	folded = folded + 1;
	freetree(n->l);
	freetree(n->r);
	n->l = 0;
	n->r = 0;
	return n->val;
}

int freetree(struct Node *n) {
	if (n == 0) return 0;
	freetree(n->l);
	freetree(n->r);
	free(n);
	return 0;
}

int main() {
	struct Node *t;
	int i;
	int sum;
	seed = 7;
	sum = 0;
	folded = 0;
	for (i = 0; i < @R@; i = i + 1) {
		t = build(7);
		sum = (sum + eval(t)) % 1000000;
		sum = (sum + fold(t)) % 1000000;
		freetree(t);
	}
	print(sum + folded);
	return 0;
}
`
	return Program{"gcc", "C", expand(src, map[string]int{"R": 60 * scale})}
}

// LI mirrors 022.li: a cons-cell workload with allocation churn, deep
// recursion, and the suite's highest dynamic write density.
func LI(scale int) Program {
	src := `
struct Cell {
	int car;
	struct Cell *cdr;
};
int seed;

int nextrand() {
	seed = seed * 1103515245 + 12345;
	if (seed < 0) seed = -seed;
	return seed;
}

struct Cell *cons(int v, struct Cell *rest) {
	struct Cell *c;
	c = alloc(sizeof(struct Cell));
	c->car = v;
	c->cdr = rest;
	return c;
}

struct Cell *buildlist(int n) {
	struct Cell *head;
	int i;
	head = 0;
	for (i = 0; i < n; i = i + 1) {
		head = cons(nextrand() % 1000, head);
	}
	return head;
}

struct Cell *reverse(struct Cell *l) {
	struct Cell *out;
	struct Cell *next;
	out = 0;
	while (l != 0) {
		next = l->cdr;
		l->cdr = out;
		out = l;
		l = next;
	}
	return out;
}

int sumlist(struct Cell *l) {
	if (l == 0) return 0;
	return l->car + sumlist(l->cdr);
}

int freelist(struct Cell *l) {
	struct Cell *next;
	while (l != 0) {
		next = l->cdr;
		free(l);
		l = next;
	}
	return 0;
}

int mapsq(struct Cell *l) {
	while (l != 0) {
		l->car = l->car * l->car % 4096;
		l = l->cdr;
	}
	return 0;
}

int main() {
	struct Cell *l;
	int i;
	int sum;
	seed = 3;
	sum = 0;
	for (i = 0; i < @R@; i = i + 1) {
		l = buildlist(400);
		l = reverse(l);
		mapsq(l);
		sum = (sum + sumlist(l)) % 1000000;
		freelist(l);
	}
	print(sum);
	return 0;
}
`
	return Program{"li", "C", expand(src, map[string]int{"R": 25 * scale})}
}

// Doduc mirrors 015.doduc: a scalar-heavy iterative simulation with many
// short loops over small arrays.
func Doduc(scale int) Program {
	src := `
int flux[64];
int temp[64];
int rho[64];

int step(int t) {
	int i;
	int dl;
	int dr;
	int acc;
	acc = 0;
	for (i = 1; i < 63; i = i + 1) {
		dl = temp[i] - temp[i - 1];
		dr = temp[i + 1] - temp[i];
		flux[i] = (dr - dl) * 3 + rho[i] / 2;
	}
	for (i = 1; i < 63; i = i + 1) {
		temp[i] = temp[i] + flux[i] / 8;
		rho[i] = (rho[i] * 15 + temp[i]) / 16;
		acc = acc + temp[i];
	}
	return acc + t;
}

int main() {
	int i;
	int t;
	int acc;
	for (i = 0; i < 64; i = i + 1) {
		temp[i] = i * 17 % 97;
		rho[i] = i * 29 % 83;
		flux[i] = 0;
	}
	acc = 0;
	for (t = 0; t < @T@; t = t + 1) {
		acc = (acc + step(t)) % 1000000;
	}
	print(acc);
	return 0;
}
`
	return Program{"doduc", "F", expand(src, map[string]int{"T": 700 * scale})}
}

// Fpppp mirrors 042.fpppp: enormous straight-line basic blocks of scalar
// arithmetic with dense stack traffic.
func Fpppp(scale int) Program {
	var block strings.Builder
	// A long straight-line block of dependent scalar updates (the fpppp
	// signature: basic blocks hundreds of instructions long).
	for k := 0; k < 24; k++ {
		fmt.Fprintf(&block, "\tt%d = (t%d * 3 + t%d / 2 + g[%d]) %% 9973;\n",
			k%6, (k+1)%6, (k+2)%6, k%16)
		fmt.Fprintf(&block, "\tg[%d] = g[%d] + t%d;\n", k%16, (k+5)%16, k%6)
	}
	src := `
int g[16];

int kernel(int a, int b) {
	int t0;
	int t1;
	int t2;
	int t3;
	int t4;
	int t5;
	t0 = a;
	t1 = b;
	t2 = a + b;
	t3 = a - b;
	t4 = a * 3;
	t5 = b * 5;
@BLOCK@
	return (t0 + t1 + t2 + t3 + t4 + t5) % 1000000;
}

int main() {
	int i;
	int acc;
	for (i = 0; i < 16; i = i + 1) g[i] = i * 13 + 1;
	acc = 0;
	for (i = 0; i < @R@; i = i + 1) {
		acc = (acc + kernel(i, acc)) % 1000000;
	}
	print(acc);
	return 0;
}
`
	src = strings.ReplaceAll(src, "@BLOCK@", block.String())
	return Program{"fpppp", "F", expand(src, map[string]int{"R": 900 * scale})}
}

// Matrix300 mirrors 030.matrix300: dense matrix multiply whose loop nest is
// perfectly analyzable — the paper eliminates 100% of its checks.
func Matrix300(scale int) Program {
	src := `
int a[@N@][@N@];
int b[@N@][@N@];
int c[@N@][@N@];

int main() {
	int i;
	int j;
	int k;
	int s;
	int r;
	for (i = 0; i < @N@; i = i + 1) {
		for (j = 0; j < @N@; j = j + 1) {
			a[i][j] = (i * 3 + j * 7) % 19;
			b[i][j] = (i * 5 + j * 11) % 23;
			c[i][j] = 0;
		}
	}
	for (r = 0; r < @R@; r = r + 1) {
		for (i = 0; i < @N@; i = i + 1) {
			for (j = 0; j < @N@; j = j + 1) {
				s = 0;
				for (k = 0; k < @N@; k = k + 1) {
					s = s + a[i][k] * b[k][j];
				}
				c[i][j] = (c[i][j] + s) % 65536;
			}
		}
	}
	s = 0;
	for (i = 0; i < @N@; i = i + 1) s = (s + c[i][i]) % 1000000;
	print(s);
	return 0;
}
`
	return Program{"matrix300", "F", expand(src, map[string]int{"N": 40, "R": 2 * scale})}
}

// Nasker mirrors 020.nasker: a mix of numeric kernels — saxpy, stencil,
// reduction, and a scatter whose indirect writes defeat loop analysis.
func Nasker(scale int) Program {
	src := `
int x[512];
int y[512];
int z[512];
int idx[512];

int main() {
	int i;
	int r;
	int acc;
	int n;
	n = 512;
	for (i = 0; i < n; i = i + 1) {
		x[i] = i % 37;
		y[i] = (i * 3) % 41;
		idx[i] = (i * 7 + 3) % n;
		z[i] = 0;
	}
	acc = 0;
	for (r = 0; r < @R@; r = r + 1) {
		for (i = 0; i < n; i = i + 1) {
			y[i] = y[i] + 3 * x[i];
		}
		for (i = 1; i < n - 1; i = i + 1) {
			z[i] = (x[i - 1] + x[i] + x[i + 1]) / 3;
		}
		for (i = 0; i < n; i = i + 1) {
			z[idx[i]] = z[idx[i]] + y[i] % 7;
		}
		for (i = 0; i < n; i = i + 1) {
			acc = (acc + z[i]) % 1000000;
		}
	}
	print(acc);
	return 0;
}
`
	return Program{"nasker", "F", expand(src, map[string]int{"R": 110 * scale})}
}

// Spice mirrors 013.spice2g6: sparse matrix-vector products with indirect
// row/column indexing plus scalar-heavy model evaluation.
func Spice(scale int) Program {
	src := `
int rowptr[257];
int colidx[2048];
int aval[2048];
int xv[256];
int yv[256];

int modeleval(int v, int g) {
	int i1;
	int i2;
	int i3;
	i1 = v * g % 1009;
	i2 = (i1 * 3 + v) % 2003;
	i3 = (i2 - g) * 5 % 4001;
	if (i3 < 0) i3 = -i3;
	return (i1 + i2 + i3) % 997;
}

int main() {
	int i;
	int k;
	int r;
	int nnz;
	int acc;
	int n;
	n = 256;
	nnz = 0;
	for (i = 0; i < n; i = i + 1) {
		rowptr[i] = nnz;
		for (k = 0; k < 8; k = k + 1) {
			colidx[nnz] = (i + k * 31) % n;
			aval[nnz] = (i * 13 + k * 7) % 29 + 1;
			nnz = nnz + 1;
		}
		xv[i] = i % 17 + 1;
	}
	rowptr[n] = nnz;
	acc = 0;
	for (r = 0; r < @R@; r = r + 1) {
		for (i = 0; i < n; i = i + 1) {
			int s;
			int e;
			int sum;
			s = rowptr[i];
			e = rowptr[i + 1];
			sum = 0;
			for (k = s; k < e; k = k + 1) {
				sum = sum + aval[k] * xv[colidx[k]];
			}
			yv[i] = sum % 10007;
		}
		for (i = 0; i < n; i = i + 1) {
			xv[i] = (xv[i] + modeleval(yv[i], xv[i])) % 1000 + 1;
		}
		acc = (acc + yv[n - 1] + xv[0]) % 1000000;
	}
	print(acc);
	return 0;
}
`
	return Program{"spice2g6", "F", expand(src, map[string]int{"R": 35 * scale})}
}

// Tomcatv mirrors 047.tomcatv: 2-D stencil relaxation over mesh arrays with
// vectorizable inner loops.
func Tomcatv(scale int) Program {
	src := `
int u[66][66];
int v[66][66];

int main() {
	int i;
	int j;
	int it;
	int acc;
	for (i = 0; i < 66; i = i + 1) {
		for (j = 0; j < 66; j = j + 1) {
			u[i][j] = (i * j) % 100;
			v[i][j] = (i + j) % 100;
		}
	}
	acc = 0;
	for (it = 0; it < @T@; it = it + 1) {
		for (i = 1; i < 65; i = i + 1) {
			for (j = 1; j < 65; j = j + 1) {
				v[i][j] = (u[i - 1][j] + u[i + 1][j] + u[i][j - 1] + u[i][j + 1]) / 4;
			}
		}
		for (i = 1; i < 65; i = i + 1) {
			for (j = 1; j < 65; j = j + 1) {
				u[i][j] = u[i][j] + (v[i][j] - u[i][j]) / 2;
			}
		}
		acc = (acc + u[33][33]) % 1000000;
	}
	print(acc);
	return 0;
}
`
	return Program{"tomcatv", "F", expand(src, map[string]int{"T": 28 * scale})}
}
