package workload

import (
	"testing"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/minic"
)

func runProgram(t *testing.T, p Program) (*machine.Machine, string) {
	t.Helper()
	asmSrc, err := minic.Compile(p.Source)
	if err != nil {
		t.Fatalf("%s: compile: %v", p.Name, err)
	}
	u, err := asm.Parse(p.Name+".s", asmSrc)
	if err != nil {
		t.Fatalf("%s: parse: %v", p.Name, err)
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, u)
	if err != nil {
		t.Fatalf("%s: assemble: %v", p.Name, err)
	}
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.Load(m)
	code, err := m.Run()
	if err != nil {
		t.Fatalf("%s: run: %v", p.Name, err)
	}
	if code != 0 {
		t.Fatalf("%s: exit code %d", p.Name, code)
	}
	return m, m.Output()
}

func TestAllProgramsCompileAndRun(t *testing.T) {
	for _, p := range All(1) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			m, out := runProgram(t, p)
			if out == "" {
				t.Fatal("no checksum printed")
			}
			if m.Instrs() < 100_000 {
				t.Fatalf("only %d instructions executed; workload too small", m.Instrs())
			}
			if m.Instrs() > 100_000_000 {
				t.Fatalf("%d instructions executed; workload too large", m.Instrs())
			}
		})
	}
}

func TestDeterministicOutput(t *testing.T) {
	for _, p := range []Program{Eqntott(1), LI(1), Matrix300(1)} {
		_, out1 := runProgram(t, p)
		_, out2 := runProgram(t, p)
		if out1 != out2 {
			t.Fatalf("%s: nondeterministic output %q vs %q", p.Name, out1, out2)
		}
	}
}

func TestSuiteComposition(t *testing.T) {
	all := All(1)
	if len(all) != 10 {
		t.Fatalf("suite has %d programs, want 10", len(all))
	}
	c, f := 0, 0
	for _, p := range all {
		switch p.Lang {
		case "C":
			c++
		case "F":
			f++
		default:
			t.Fatalf("%s: bad lang %q", p.Name, p.Lang)
		}
	}
	if c != 4 || f != 6 {
		t.Fatalf("suite split C=%d F=%d, want 4 and 6 (as in the paper)", c, f)
	}
	if _, ok := ByName("matrix300", 1); !ok {
		t.Fatal("ByName failed")
	}
	if _, ok := ByName("nonesuch", 1); ok {
		t.Fatal("ByName found a ghost")
	}
}

func TestScaleGrowsWork(t *testing.T) {
	m1, _ := runProgram(t, Doduc(1))
	m2, _ := runProgram(t, Doduc(2))
	if m2.Instrs() < m1.Instrs()*3/2 {
		t.Fatalf("scale 2 ran %d instrs vs %d at scale 1; scaling broken",
			m2.Instrs(), m1.Instrs())
	}
}

// TestDifferentialAgainstInterpreter cross-checks the compiled benchmarks
// against the mini-C reference interpreter (full-program differential
// testing of the compiler substrate).
func TestDifferentialAgainstInterpreter(t *testing.T) {
	for _, p := range []Program{Eqntott(1), Doduc(1), Fpppp(1), GCC(1)} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			_, compiled := runProgram(t, p)
			iOut, iCode, err := minic.Interpret(p.Source)
			if err != nil {
				t.Fatalf("interpret: %v", err)
			}
			if iCode != 0 {
				t.Fatalf("interp exit = %d", iCode)
			}
			if iOut != compiled {
				t.Fatalf("interpreter %q != compiled %q", iOut, compiled)
			}
		})
	}
}
