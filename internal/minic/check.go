package minic

import "fmt"

// checker performs semantic analysis: name resolution, type checking, and
// storage layout (stack slots and register-variable assignment).
type checker struct {
	prog    *Program
	funcs   map[string]*FuncDecl
	globals map[string]*VarSym

	// per-function state
	fn      *FuncDecl
	scopes  []map[string]*VarSym
	frame   int32 // bytes of locals allocated so far
	regNext int   // next %l register index for register variables
}

// Check resolves and type-checks prog in place.
func Check(prog *Program) error {
	c := &checker{
		prog:    prog,
		funcs:   make(map[string]*FuncDecl),
		globals: make(map[string]*VarSym),
	}
	for _, f := range prog.Funcs {
		if builtinNames[f.Name] {
			return fmt.Errorf("line %d: %q is a builtin", f.Line, f.Name)
		}
		if _, dup := c.funcs[f.Name]; dup {
			return fmt.Errorf("line %d: function %q redefined", f.Line, f.Name)
		}
		c.funcs[f.Name] = f
	}
	for _, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return fmt.Errorf("line %d: global %q redefined", g.Line, g.Name)
		}
		if _, dup := c.funcs[g.Name]; dup {
			return fmt.Errorf("line %d: %q is both global and function", g.Line, g.Name)
		}
		if g.Register {
			return fmt.Errorf("line %d: global %q cannot be register", g.Line, g.Name)
		}
		if g.Init != nil {
			if g.Init.Kind != ExprNum && !(g.Init.Kind == ExprUnary && g.Init.Op == "-" && g.Init.X.Kind == ExprNum) {
				return fmt.Errorf("line %d: global initializer must be a constant", g.Line)
			}
			if g.Type.Kind != TypeInt {
				return fmt.Errorf("line %d: only int globals may have initializers", g.Line)
			}
		}
		sym := &VarSym{Name: g.Name, Kind: SymGlobal, Type: g.Type, Label: g.Name}
		g.Sym = sym
		c.globals[g.Name] = sym
	}
	if f, ok := c.funcs["main"]; !ok {
		return fmt.Errorf("program has no main function")
	} else if len(f.Params) != 0 || f.Ret.Kind != TypeInt {
		return fmt.Errorf("line %d: main must be int main()", f.Line)
	}
	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	c.scopes = []map[string]*VarSym{make(map[string]*VarSym)}
	c.frame = 0
	c.regNext = 0
	if f.Ret.Kind == TypeStruct || f.Ret.Kind == TypeArray {
		return fmt.Errorf("line %d: function %q returns an aggregate", f.Line, f.Name)
	}
	for _, p := range f.Params {
		sym, err := c.declare(p, SymParam)
		if err != nil {
			return err
		}
		p.Sym = sym
	}
	if err := c.checkStmt(f.Body); err != nil {
		return err
	}
	f.LocalBytes = c.frame
	return nil
}

// declare allocates storage for a variable in the current scope.
func (c *checker) declare(d *VarDecl, kind VarSymKind) (*VarSym, error) {
	scope := c.scopes[len(c.scopes)-1]
	if _, dup := scope[d.Name]; dup {
		return nil, fmt.Errorf("line %d: %q redeclared in this scope", d.Line, d.Name)
	}
	sym := &VarSym{Name: d.Name, Type: d.Type, Func: c.fn.Name}
	if d.Register && kind == SymLocal && d.Type.Kind != TypeArray && d.Type.Kind != TypeStruct && c.regNext < 6 {
		sym.Kind = SymRegister
		sym.RegIdx = c.regNext
		c.regNext++
	} else {
		sym.Kind = kind
		size := d.Type.Size()
		size = (size + 3) &^ 3
		c.frame += size
		sym.FpOff = -c.frame
	}
	scope[d.Name] = sym
	c.fn.Locals = append(c.fn.Locals, sym)
	return sym, nil
}

func (c *checker) lookup(name string) *VarSym {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.globals[name]
}

func (c *checker) checkStmt(s *Stmt) error {
	switch s.Kind {
	case StmtEmpty:
		return nil
	case StmtExpr:
		_, err := c.checkExpr(s.X)
		return err
	case StmtDecl:
		d := s.Decl
		if d.Type.Kind == TypeVoid {
			return fmt.Errorf("line %d: void variable", d.Line)
		}
		if d.Init != nil {
			if d.Type.Kind == TypeArray || d.Type.Kind == TypeStruct {
				return fmt.Errorf("line %d: aggregate initializer not supported", d.Line)
			}
			it, err := c.checkExpr(d.Init)
			if err != nil {
				return err
			}
			if !assignable(d.Type, it, d.Init) {
				return fmt.Errorf("line %d: cannot initialize %s with %s", d.Line, d.Type, it)
			}
		}
		sym, err := c.declare(d, SymLocal)
		if err != nil {
			return err
		}
		d.Sym = sym
		return nil
	case StmtIf:
		if err := c.checkCond(s.X); err != nil {
			return err
		}
		if err := c.checkStmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil
	case StmtWhile:
		if err := c.checkCond(s.X); err != nil {
			return err
		}
		return c.checkStmt(s.Body)
	case StmtFor:
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.X != nil {
			if err := c.checkCond(s.X); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if _, err := c.checkExpr(s.Post); err != nil {
				return err
			}
		}
		return c.checkStmt(s.Body)
	case StmtReturn:
		if s.X == nil {
			if c.fn.Ret.Kind != TypeVoid {
				return fmt.Errorf("line %d: missing return value in %q", s.Line, c.fn.Name)
			}
			return nil
		}
		t, err := c.checkExpr(s.X)
		if err != nil {
			return err
		}
		if c.fn.Ret.Kind == TypeVoid {
			return fmt.Errorf("line %d: return with value in void function", s.Line)
		}
		if !assignable(c.fn.Ret, t, s.X) {
			return fmt.Errorf("line %d: cannot return %s from %s function", s.Line, t, c.fn.Ret)
		}
		return nil
	case StmtBreak, StmtContinue:
		return nil // loop nesting validated during codegen
	case StmtBlock:
		c.scopes = append(c.scopes, make(map[string]*VarSym))
		for _, sub := range s.List {
			if err := c.checkStmt(sub); err != nil {
				return err
			}
		}
		c.scopes = c.scopes[:len(c.scopes)-1]
		return nil
	}
	return fmt.Errorf("line %d: unhandled statement", s.Line)
}

func (c *checker) checkCond(e *Expr) error {
	t, err := c.checkExpr(e)
	if err != nil {
		return err
	}
	if t.Kind != TypeInt && t.Kind != TypePtr {
		return fmt.Errorf("line %d: condition has type %s", e.Line, t)
	}
	return nil
}

// assignable reports whether a value of type src (from expression srcE) can
// be stored into dst.
func assignable(dst, src *Type, srcE *Expr) bool {
	if dst.Same(src) {
		return true
	}
	if dst.Kind == TypePtr {
		// alloc() yields a generic pointer; the constant 0 is a null pointer;
		// an array of T decays to T*.
		if srcE != nil && srcE.Kind == ExprBuiltin && srcE.Name == "alloc" {
			return true
		}
		if srcE != nil && srcE.Kind == ExprNum && srcE.Val == 0 {
			return true
		}
		if src.Kind == TypeArray && dst.Elem.Same(src.Elem) {
			return true
		}
	}
	return false
}

// isLvalue reports whether e denotes a storage location.
func isLvalue(e *Expr) bool {
	switch e.Kind {
	case ExprIdent:
		return true
	case ExprIndex, ExprField, ExprArrow:
		return true
	case ExprUnary:
		return e.Op == "*"
	}
	return false
}

func (c *checker) checkExpr(e *Expr) (*Type, error) {
	t, err := c.checkExprInner(e)
	if err != nil {
		return nil, err
	}
	e.Type = t
	return t, nil
}

func (c *checker) checkExprInner(e *Expr) (*Type, error) {
	switch e.Kind {
	case ExprNum:
		return intType, nil

	case ExprStr:
		return &Type{Kind: TypePtr, Elem: intType}, nil // only valid in prints

	case ExprSizeof:
		return intType, nil

	case ExprIdent:
		sym := c.lookup(e.Name)
		if sym == nil {
			return nil, fmt.Errorf("line %d: undefined variable %q", e.Line, e.Name)
		}
		e.Sym = sym
		return sym.Type, nil

	case ExprUnary:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-", "~", "!":
			if xt.Kind != TypeInt {
				return nil, fmt.Errorf("line %d: unary %s on %s", e.Line, e.Op, xt)
			}
			return intType, nil
		case "*":
			if xt.Kind == TypePtr {
				return xt.Elem, nil
			}
			if xt.Kind == TypeArray {
				return xt.Elem, nil
			}
			return nil, fmt.Errorf("line %d: dereference of %s", e.Line, xt)
		case "&":
			if !isLvalue(e.X) {
				return nil, fmt.Errorf("line %d: & of non-lvalue", e.Line)
			}
			if e.X.Kind == ExprIdent && e.X.Sym.Kind == SymRegister {
				return nil, fmt.Errorf("line %d: cannot take the address of register variable %q", e.Line, e.X.Name)
			}
			return &Type{Kind: TypePtr, Elem: xt}, nil
		}
		return nil, fmt.Errorf("line %d: unknown unary %s", e.Line, e.Op)

	case ExprBinary:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		yt, err := c.checkExpr(e.Y)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "+", "-":
			// pointer arithmetic: ptr +/- int
			if (xt.Kind == TypePtr || xt.Kind == TypeArray) && yt.Kind == TypeInt {
				elem := xt.Elem
				return &Type{Kind: TypePtr, Elem: elem}, nil
			}
			if xt.Kind == TypeInt && (yt.Kind == TypePtr || yt.Kind == TypeArray) && e.Op == "+" {
				return &Type{Kind: TypePtr, Elem: yt.Elem}, nil
			}
			if xt.Kind == TypeInt && yt.Kind == TypeInt {
				return intType, nil
			}
			return nil, fmt.Errorf("line %d: invalid operands to %s: %s and %s", e.Line, e.Op, xt, yt)
		case "*", "/", "%", "&", "|", "^", "<<", ">>":
			if xt.Kind != TypeInt || yt.Kind != TypeInt {
				return nil, fmt.Errorf("line %d: invalid operands to %s: %s and %s", e.Line, e.Op, xt, yt)
			}
			return intType, nil
		case "==", "!=", "<", "<=", ">", ">=":
			ok := xt.Kind == TypeInt && yt.Kind == TypeInt ||
				xt.Kind == TypePtr && yt.Kind == TypePtr ||
				xt.Kind == TypePtr && e.Y.Kind == ExprNum && e.Y.Val == 0 ||
				yt.Kind == TypePtr && e.X.Kind == ExprNum && e.X.Val == 0
			if !ok {
				return nil, fmt.Errorf("line %d: invalid comparison of %s and %s", e.Line, xt, yt)
			}
			return intType, nil
		case "&&", "||":
			for _, t := range []*Type{xt, yt} {
				if t.Kind != TypeInt && t.Kind != TypePtr {
					return nil, fmt.Errorf("line %d: invalid operand to %s: %s", e.Line, e.Op, t)
				}
			}
			return intType, nil
		}
		return nil, fmt.Errorf("line %d: unknown operator %s", e.Line, e.Op)

	case ExprAssign:
		if !isLvalue(e.X) {
			return nil, fmt.Errorf("line %d: assignment to non-lvalue", e.Line)
		}
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		if xt.Kind == TypeArray || xt.Kind == TypeStruct {
			return nil, fmt.Errorf("line %d: cannot assign aggregate %s", e.Line, xt)
		}
		yt, err := c.checkExpr(e.Y)
		if err != nil {
			return nil, err
		}
		if !assignable(xt, yt, e.Y) {
			return nil, fmt.Errorf("line %d: cannot assign %s to %s", e.Line, yt, xt)
		}
		return xt, nil

	case ExprIndex:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		yt, err := c.checkExpr(e.Y)
		if err != nil {
			return nil, err
		}
		if yt.Kind != TypeInt {
			return nil, fmt.Errorf("line %d: array index has type %s", e.Line, yt)
		}
		if xt.Kind != TypeArray && xt.Kind != TypePtr {
			return nil, fmt.Errorf("line %d: indexing non-array %s", e.Line, xt)
		}
		return xt.Elem, nil

	case ExprField:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		if xt.Kind != TypeStruct {
			return nil, fmt.Errorf("line %d: .%s on non-struct %s", e.Line, e.Name, xt)
		}
		f, ok := xt.Struct.FieldByName(e.Name)
		if !ok {
			return nil, fmt.Errorf("line %d: struct %s has no field %q", e.Line, xt.Struct.Name, e.Name)
		}
		return f.Type, nil

	case ExprArrow:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return nil, err
		}
		if xt.Kind != TypePtr || xt.Elem.Kind != TypeStruct {
			return nil, fmt.Errorf("line %d: ->%s on %s", e.Line, e.Name, xt)
		}
		f, ok := xt.Elem.Struct.FieldByName(e.Name)
		if !ok {
			return nil, fmt.Errorf("line %d: struct %s has no field %q", e.Line, xt.Elem.Struct.Name, e.Name)
		}
		return f.Type, nil

	case ExprCall:
		fn, ok := c.funcs[e.Name]
		if !ok {
			return nil, fmt.Errorf("line %d: undefined function %q", e.Line, e.Name)
		}
		if len(e.Args) != len(fn.Params) {
			return nil, fmt.Errorf("line %d: %q takes %d arguments, got %d", e.Line, e.Name, len(fn.Params), len(e.Args))
		}
		for i, a := range e.Args {
			at, err := c.checkExpr(a)
			if err != nil {
				return nil, err
			}
			if !assignable(fn.Params[i].Type, at, a) {
				return nil, fmt.Errorf("line %d: argument %d of %q: cannot pass %s as %s",
					e.Line, i+1, e.Name, at, fn.Params[i].Type)
			}
		}
		return fn.Ret, nil

	case ExprBuiltin:
		switch e.Name {
		case "print", "printc":
			if len(e.Args) != 1 {
				return nil, fmt.Errorf("line %d: %s takes one argument", e.Line, e.Name)
			}
			at, err := c.checkExpr(e.Args[0])
			if err != nil {
				return nil, err
			}
			if at.Kind != TypeInt {
				return nil, fmt.Errorf("line %d: %s takes an int", e.Line, e.Name)
			}
			return voidType, nil
		case "prints":
			if len(e.Args) != 1 || e.Args[0].Kind != ExprStr {
				return nil, fmt.Errorf("line %d: prints takes a string literal", e.Line)
			}
			if _, err := c.checkExpr(e.Args[0]); err != nil {
				return nil, err
			}
			return voidType, nil
		case "alloc":
			if len(e.Args) != 1 {
				return nil, fmt.Errorf("line %d: alloc takes one argument", e.Line)
			}
			at, err := c.checkExpr(e.Args[0])
			if err != nil {
				return nil, err
			}
			if at.Kind != TypeInt {
				return nil, fmt.Errorf("line %d: alloc takes an int size", e.Line)
			}
			return &Type{Kind: TypePtr, Elem: intType}, nil
		case "free":
			if len(e.Args) != 1 {
				return nil, fmt.Errorf("line %d: free takes one argument", e.Line)
			}
			at, err := c.checkExpr(e.Args[0])
			if err != nil {
				return nil, err
			}
			if at.Kind != TypePtr {
				return nil, fmt.Errorf("line %d: free takes a pointer", e.Line)
			}
			return voidType, nil
		}
		return nil, fmt.Errorf("line %d: unknown builtin %q", e.Line, e.Name)
	}
	return nil, fmt.Errorf("line %d: unhandled expression", e.Line)
}
