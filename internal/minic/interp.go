package minic

import (
	"fmt"
	"strings"
)

// Interp is a reference AST interpreter for mini-C, used to differentially
// test the compiler: for any program, the interpreter's output and exit code
// must match the compiled program's behaviour on the simulated machine. It
// mirrors the machine's semantics exactly: 32-bit wrapping arithmetic,
// truncating division, shift counts masked to 5 bits, and an allocator with
// size-segregated free lists (so pointer-reuse observations agree).
type Interp struct {
	prog    *Program
	mem     map[uint32]int32
	globals map[string]uint32
	funcs   map[string]*FuncDecl

	sp       uint32 // descending stack allocator for locals
	heapNext uint32
	freeList map[uint32][]uint32

	out   strings.Builder
	steps int64
	// MaxSteps bounds execution (guard against runaway programs).
	MaxSteps int64
}

// frame is one function activation.
type frame struct {
	addrs map[*VarSym]uint32 // memory-resident vars -> address
	regs  map[*VarSym]int32  // register vars -> value
}

// control-flow signals (via panic/recover, the classic tree-walker trick).
type returnSignal struct{ val int32 }
type breakSignal struct{}
type continueSignal struct{}

type interpError struct{ err error }

// NewInterp prepares an interpreter for a checked program.
func NewInterp(prog *Program) *Interp {
	in := &Interp{
		prog:     prog,
		mem:      make(map[uint32]int32),
		globals:  make(map[string]uint32),
		funcs:    make(map[string]*FuncDecl),
		sp:       0xE000_0000,
		heapNext: 0x4000_0000,
		freeList: make(map[uint32][]uint32),
		MaxSteps: 1 << 30,
	}
	for _, f := range prog.Funcs {
		in.funcs[f.Name] = f
	}
	// Lay out globals contiguously from a data base, like the assembler.
	next := uint32(0x2000_0000)
	for _, g := range prog.Globals {
		in.globals[g.Name] = next
		if g.Init != nil {
			v := g.Init.Val
			if g.Init.Kind == ExprUnary {
				v = -g.Init.X.Val
			}
			in.mem[next] = v
		}
		size := uint32(g.Type.Size())
		next += (size + 3) &^ 3
	}
	return in
}

// Interpret parses, checks, and interprets src, returning its printed
// output and exit code.
func Interpret(src string) (output string, exit int32, err error) {
	prog, err := Parse(src)
	if err != nil {
		return "", 0, err
	}
	if err := Check(prog); err != nil {
		return "", 0, err
	}
	return NewInterp(prog).Run()
}

// Run executes main and returns the program's output and exit code.
func (in *Interp) Run() (output string, exit int32, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ie, ok := r.(interpError); ok {
				err = ie.err
				return
			}
			panic(r)
		}
	}()
	exit = in.call(in.funcs["main"], nil)
	return in.out.String(), exit, nil
}

func (in *Interp) fail(format string, args ...any) {
	panic(interpError{fmt.Errorf("interp: "+format, args...)})
}

func (in *Interp) tick() {
	in.steps++
	if in.steps > in.MaxSteps {
		in.fail("exceeded MaxSteps=%d", in.MaxSteps)
	}
}

func (in *Interp) load(addr uint32) int32 {
	if addr&3 != 0 {
		in.fail("unaligned load at %#x", addr)
	}
	return in.mem[addr]
}

func (in *Interp) store(addr uint32, v int32) {
	if addr&3 != 0 {
		in.fail("unaligned store at %#x", addr)
	}
	in.mem[addr] = v
}

func (in *Interp) alloc(size uint32) uint32 {
	size = (size + 7) &^ 7
	if size == 0 {
		size = 8
	}
	if lst := in.freeList[size]; len(lst) > 0 {
		ptr := lst[len(lst)-1]
		in.freeList[size] = lst[:len(lst)-1]
		return ptr
	}
	in.heapNext = (in.heapNext + 7) &^ 7
	ptr := in.heapNext + 8
	in.mem[ptr-4] = int32(size)
	in.heapNext = ptr + size
	return ptr
}

func (in *Interp) free(ptr uint32) {
	if ptr == 0 {
		return
	}
	size := uint32(in.mem[ptr-4])
	in.freeList[size] = append(in.freeList[size], ptr)
}

func (in *Interp) call(f *FuncDecl, args []int32) int32 {
	fr := &frame{
		addrs: make(map[*VarSym]uint32),
		regs:  make(map[*VarSym]int32),
	}
	// Allocate every local and param a slot (the checker hoisted them all).
	for _, sym := range f.Locals {
		if sym.Kind == SymRegister {
			fr.regs[sym] = 0
			continue
		}
		size := uint32(sym.Type.Size())
		size = (size + 3) &^ 3
		in.sp -= size
		fr.addrs[sym] = in.sp
		// Fresh frame memory starts zeroed only for determinism with the
		// machine (pages are zero there too); clear reused stack words.
		for o := uint32(0); o < size; o += 4 {
			in.mem[in.sp+o] = 0
		}
	}
	for i, p := range f.Params {
		in.store(fr.addrs[p.Sym], args[i])
	}
	base := in.sp

	var ret int32
	func() {
		defer func() {
			if r := recover(); r != nil {
				switch r.(type) {
				case returnSignal:
					ret = r.(returnSignal).val
				case breakSignal:
					// A loop signal reaching the function boundary means
					// break/continue outside any loop: surface it as an
					// interp error instead of an opaque escaping panic.
					panic(interpError{fmt.Errorf("interp: break statement outside a loop in %s", f.Name)})
				case continueSignal:
					panic(interpError{fmt.Errorf("interp: continue statement outside a loop in %s", f.Name)})
				default:
					panic(r)
				}
			}
		}()
		in.execStmt(f.Body, fr)
	}()
	// Pop the frame.
	in.sp = base
	for _, a := range fr.addrs {
		_ = a
	}
	in.sp += frameSize(f)
	return ret
}

func frameSize(f *FuncDecl) uint32 {
	var total uint32
	for _, sym := range f.Locals {
		if sym.Kind == SymRegister {
			continue
		}
		total += (uint32(sym.Type.Size()) + 3) &^ 3
	}
	return total
}

func (in *Interp) execStmt(s *Stmt, fr *frame) {
	in.tick()
	switch s.Kind {
	case StmtEmpty:
	case StmtExpr:
		in.eval(s.X, fr)
	case StmtDecl:
		if s.Decl.Init != nil {
			v := in.eval(s.Decl.Init, fr)
			in.assign(s.Decl.Sym, v, fr)
		}
	case StmtIf:
		if in.eval(s.X, fr) != 0 {
			in.execStmt(s.Then, fr)
		} else if s.Else != nil {
			in.execStmt(s.Else, fr)
		}
	case StmtWhile:
		in.loop(fr, nil, s.X, nil, s.Body)
	case StmtFor:
		in.loop(fr, s.Init, s.X, s.Post, s.Body)
	case StmtReturn:
		var v int32
		if s.X != nil {
			v = in.eval(s.X, fr)
		}
		panic(returnSignal{v})
	case StmtBreak:
		panic(breakSignal{})
	case StmtContinue:
		panic(continueSignal{})
	case StmtBlock:
		for _, sub := range s.List {
			in.execStmt(sub, fr)
		}
	}
}

func (in *Interp) loop(fr *frame, init *Stmt, cond *Expr, post *Expr, body *Stmt) {
	if init != nil {
		in.execStmt(init, fr)
	}
	for {
		in.tick()
		if cond != nil && in.eval(cond, fr) == 0 {
			return
		}
		brk := func() (brk bool) {
			defer func() {
				if r := recover(); r != nil {
					switch r.(type) {
					case breakSignal:
						brk = true
					case continueSignal:
						brk = false
					default:
						panic(r)
					}
				}
			}()
			in.execStmt(body, fr)
			return false
		}()
		if brk {
			return
		}
		if post != nil {
			in.eval(post, fr)
		}
	}
}

// addrOf computes the address of an lvalue.
func (in *Interp) addrOf(e *Expr, fr *frame) uint32 {
	switch e.Kind {
	case ExprIdent:
		sym := e.Sym
		switch sym.Kind {
		case SymGlobal:
			return in.globals[sym.Name]
		case SymRegister:
			in.fail("address of register variable %q", sym.Name)
		default:
			return fr.addrs[sym]
		}
	case ExprUnary: // *p
		return uint32(in.eval(e.X, fr))
	case ExprIndex:
		var base uint32
		if e.X.Type.Kind == TypeArray {
			base = in.addrOf(e.X, fr)
		} else {
			base = uint32(in.eval(e.X, fr))
		}
		idx := in.eval(e.Y, fr)
		return base + uint32(idx*e.Type.Size())
	case ExprField:
		f, _ := e.X.Type.Struct.FieldByName(e.Name)
		return in.addrOf(e.X, fr) + uint32(f.Off)
	case ExprArrow:
		f, _ := e.X.Type.Elem.Struct.FieldByName(e.Name)
		return uint32(in.eval(e.X, fr)) + uint32(f.Off)
	}
	in.fail("not an lvalue")
	return 0
}

func (in *Interp) assign(sym *VarSym, v int32, fr *frame) {
	if sym.Kind == SymRegister {
		fr.regs[sym] = v
		return
	}
	if sym.Kind == SymGlobal {
		in.store(in.globals[sym.Name], v)
		return
	}
	in.store(fr.addrs[sym], v)
}

func (in *Interp) eval(e *Expr, fr *frame) int32 {
	in.tick()
	switch e.Kind {
	case ExprNum:
		return e.Val
	case ExprSizeof:
		return e.SizeofType.Size()
	case ExprStr:
		in.fail("string literal outside prints")
	case ExprIdent:
		sym := e.Sym
		if sym.Kind == SymRegister {
			return fr.regs[sym]
		}
		if isAggregate(sym.Type) {
			return int32(in.addrOf(e, fr))
		}
		if sym.Kind == SymGlobal {
			return in.load(in.globals[sym.Name])
		}
		return in.load(fr.addrs[sym])
	case ExprUnary:
		switch e.Op {
		case "-":
			return -in.eval(e.X, fr)
		case "~":
			return ^in.eval(e.X, fr)
		case "!":
			if in.eval(e.X, fr) == 0 {
				return 1
			}
			return 0
		case "*":
			a := uint32(in.eval(e.X, fr))
			if isAggregate(e.Type) {
				return int32(a)
			}
			return in.load(a)
		case "&":
			return int32(in.addrOf(e.X, fr))
		}
	case ExprBinary:
		return in.evalBinary(e, fr)
	case ExprAssign:
		v := in.eval(e.Y, fr)
		if e.X.Kind == ExprIdent {
			in.assign(e.X.Sym, v, fr)
		} else {
			in.store(in.addrOf(e.X, fr), v)
		}
		return v
	case ExprIndex, ExprField, ExprArrow:
		a := in.addrOf(e, fr)
		if isAggregate(e.Type) {
			return int32(a)
		}
		return in.load(a)
	case ExprCall:
		f := in.funcs[e.Name]
		args := make([]int32, len(e.Args))
		for i, a := range e.Args {
			args[i] = in.eval(a, fr)
		}
		return in.call(f, args)
	case ExprBuiltin:
		switch e.Name {
		case "print":
			fmt.Fprintf(&in.out, "%d\n", in.eval(e.Args[0], fr))
			return 0
		case "printc":
			in.out.WriteByte(byte(in.eval(e.Args[0], fr)))
			return 0
		case "prints":
			in.out.WriteString(e.Args[0].Str)
			return 0
		case "alloc":
			return int32(in.alloc(uint32(in.eval(e.Args[0], fr))))
		case "free":
			in.free(uint32(in.eval(e.Args[0], fr)))
			return 0
		}
	}
	in.fail("unhandled expression kind %d", e.Kind)
	return 0
}

func (in *Interp) evalBinary(e *Expr, fr *frame) int32 {
	// Short-circuit operators evaluate lazily.
	switch e.Op {
	case "&&":
		if in.eval(e.X, fr) == 0 {
			return 0
		}
		if in.eval(e.Y, fr) != 0 {
			return 1
		}
		return 0
	case "||":
		if in.eval(e.X, fr) != 0 {
			return 1
		}
		if in.eval(e.Y, fr) != 0 {
			return 1
		}
		return 0
	}

	x := in.eval(e.X, fr)
	y := in.eval(e.Y, fr)

	// Pointer arithmetic scaling, as in codegen.
	xPtr := e.X.Type.Kind == TypePtr || e.X.Type.Kind == TypeArray
	yPtr := e.Y.Type.Kind == TypePtr || e.Y.Type.Kind == TypeArray
	switch e.Op {
	case "+":
		if xPtr && !yPtr {
			return x + y*e.X.Type.Elem.Size()
		}
		if yPtr && !xPtr {
			return y + x*e.Y.Type.Elem.Size()
		}
		return x + y
	case "-":
		if xPtr && !yPtr {
			return x - y*e.X.Type.Elem.Size()
		}
		return x - y
	case "*":
		return x * y
	case "/":
		if y == 0 {
			in.fail("division by zero")
		}
		return x / y
	case "%":
		if y == 0 {
			in.fail("division by zero")
		}
		q := x / y
		return x - q*y
	case "&":
		return x & y
	case "|":
		return x | y
	case "^":
		return x ^ y
	case "<<":
		return x << (uint32(y) & 31)
	case ">>":
		return x >> (uint32(y) & 31)
	case "<":
		return b2i(x < y)
	case "<=":
		return b2i(x <= y)
	case ">":
		return b2i(x > y)
	case ">=":
		return b2i(x >= y)
	case "==":
		return b2i(x == y)
	case "!=":
		return b2i(x != y)
	}
	in.fail("unhandled operator %q", e.Op)
	return 0
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
