package minic

import (
	"strings"
	"testing"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/machine"
)

// run compiles, assembles, and executes src, returning output and exit code.
func run(t *testing.T, src string) (string, int32) {
	t.Helper()
	asmSrc, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	u, err := asm.Parse("prog.s", asmSrc)
	if err != nil {
		t.Fatalf("assemble parse: %v\n%s", err, numbered(asmSrc))
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, u)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.Load(m)
	code, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, numbered(asmSrc))
	}
	return m.Output(), code
}

func numbered(s string) string {
	lines := strings.Split(s, "\n")
	var b strings.Builder
	for i, l := range lines {
		b.WriteString(strings.TrimRight(l, " "))
		if i > 400 {
			b.WriteString("\n...")
			break
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestReturnConstant(t *testing.T) {
	_, code := run(t, `int main() { return 42; }`)
	if code != 42 {
		t.Fatalf("exit = %d", code)
	}
}

func TestArithmetic(t *testing.T) {
	out, code := run(t, `
int main() {
	print(2 + 3 * 4);
	print(10 - 7);
	print(100 / 7);
	print(100 % 7);
	print(-5);
	print(~0);
	print(1 << 10);
	print(-16 >> 2);
	print(12 & 10);
	print(12 | 10);
	print(12 ^ 10);
	return 0;
}`)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	want := "14\n3\n14\n2\n-5\n-1\n1024\n-4\n8\n14\n6\n"
	if out != want {
		t.Fatalf("output = %q, want %q", out, want)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	out, _ := run(t, `
int main() {
	print(3 < 4);
	print(4 < 3);
	print(3 <= 3);
	print(5 > 2);
	print(5 >= 6);
	print(3 == 3);
	print(3 != 3);
	print(1 && 0);
	print(1 && 2);
	print(0 || 0);
	print(0 || 7);
	print(!5);
	print(!0);
	return 0;
}`)
	want := "1\n0\n1\n1\n0\n1\n0\n0\n1\n0\n1\n0\n1\n"
	if out != want {
		t.Fatalf("output = %q, want %q", out, want)
	}
}

func TestLocalsAndAssignment(t *testing.T) {
	out, _ := run(t, `
int main() {
	int x;
	int y;
	x = 10;
	y = x * 2;
	x = x + y;
	print(x);
	print(y);
	return 0;
}`)
	if out != "30\n20\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestGlobalsWithInit(t *testing.T) {
	out, _ := run(t, `
int counter = 5;
int bare;
int main() {
	bare = counter + 1;
	counter = counter * 10;
	print(counter);
	print(bare);
	return 0;
}`)
	if out != "50\n6\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestControlFlow(t *testing.T) {
	out, _ := run(t, `
int main() {
	int i;
	int sum;
	sum = 0;
	for (i = 1; i <= 10; i = i + 1) {
		sum = sum + i;
	}
	print(sum);
	i = 0;
	while (i < 5) {
		i = i + 1;
		if (i == 3) continue;
		if (i == 5) break;
		print(i);
	}
	if (sum > 50) { print(1); } else { print(2); }
	return 0;
}`)
	want := "55\n1\n2\n4\n1\n"
	if out != want {
		t.Fatalf("output = %q, want %q", out, want)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	out, code := run(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int add3(int a, int b, int c) { return a + b + c; }
int main() {
	print(fib(10));
	print(add3(1, 2, 3));
	return fib(7);
}`)
	if out != "55\n6\n" || code != 13 {
		t.Fatalf("output = %q code = %d", out, code)
	}
}

func TestArrays(t *testing.T) {
	out, _ := run(t, `
int a[10];
int main() {
	int i;
	int local[4];
	for (i = 0; i < 10; i = i + 1) a[i] = i * i;
	for (i = 0; i < 4; i = i + 1) local[i] = a[i + 2];
	print(a[9]);
	print(local[0]);
	print(local[3]);
	return 0;
}`)
	if out != "81\n4\n25\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestPointers(t *testing.T) {
	out, _ := run(t, `
int g;
int main() {
	int x;
	int *p;
	int a[3];
	p = &x;
	*p = 7;
	print(x);
	p = &g;
	*p = 9;
	print(g);
	p = a;
	p[0] = 1;
	*(p + 1) = 2;
	a[2] = p[0] + p[1];
	print(a[2]);
	return 0;
}`)
	if out != "7\n9\n3\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestStructs(t *testing.T) {
	out, _ := run(t, `
struct Point { int x; int y; };
struct Rect { struct Point min; struct Point max; };
struct Point origin;
int main() {
	struct Rect r;
	struct Point *p;
	r.min.x = 1;
	r.min.y = 2;
	r.max.x = 10;
	r.max.y = 20;
	print(r.max.y - r.min.y);
	p = &r.min;
	p->x = 100;
	print(r.min.x);
	origin.x = 5;
	print(origin.x);
	return 0;
}`)
	if out != "18\n100\n5\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestHeapAllocation(t *testing.T) {
	out, _ := run(t, `
struct Node { int val; struct Node *next; };
int main() {
	struct Node *head;
	struct Node *n;
	int i;
	int sum;
	head = 0;
	for (i = 1; i <= 5; i = i + 1) {
		n = alloc(sizeof(struct Node));
		n->val = i;
		n->next = head;
		head = n;
	}
	sum = 0;
	n = head;
	while (n != 0) {
		sum = sum + n->val;
		n = n->next;
	}
	print(sum);
	return 0;
}`)
	if out != "15\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestRegisterVariables(t *testing.T) {
	src := `
int main() {
	register int i;
	register int sum;
	sum = 0;
	for (i = 0; i < 100; i = i + 1) sum = sum + i;
	print(sum);
	return 0;
}`
	out, _ := run(t, src)
	if out != "4950\n" {
		t.Fatalf("output = %q", out)
	}
	// Register variables must not generate stack traffic for themselves:
	// the emitted code must contain no %fp-relative stores.
	asmSrc, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(asmSrc, "[%fp") {
		t.Fatalf("register-only function emitted frame accesses:\n%s", asmSrc)
	}
}

func TestCallClobberSpill(t *testing.T) {
	// f(x) results must survive across later calls in one expression.
	out, _ := run(t, `
int id(int x) { return x; }
int main() {
	print(id(1) + id(2) + id(3));
	print(id(10) * id(20) - id(5));
	return 0;
}`)
	if out != "6\n195\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestDeepExpressions(t *testing.T) {
	out, _ := run(t, `
int main() {
	print((1 + (2 * (3 + (4 * (5 + (6 * 7)))))));
	print(((((((1 + 2) + 3) + 4) + 5) + 6) + 7));
	return 0;
}`)
	if out != "383\n28\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestStringsAndChars(t *testing.T) {
	out, _ := run(t, `
int main() {
	prints("hello\n");
	printc('A');
	printc('\n');
	print('0');
	return 0;
}`)
	if out != "hello\nA\n48\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestSizeof(t *testing.T) {
	out, _ := run(t, `
struct Pair { int a; int b; };
int main() {
	print(sizeof(int));
	print(sizeof(int*));
	print(sizeof(struct Pair));
	return 0;
}`)
	if out != "4\n4\n8\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestFreeAndReuse(t *testing.T) {
	out, _ := run(t, `
int main() {
	int *p;
	int *q;
	p = alloc(16);
	p[0] = 11;
	free(p);
	q = alloc(16);
	print(p == q);
	return 0;
}`)
	if out != "1\n" {
		t.Fatalf("allocator should reuse the freed block: %q", out)
	}
}

func TestStabsEmitted(t *testing.T) {
	asmSrc, err := Compile(`
int g[4];
int f(int a) { int loc; loc = a; return loc; }
int main() { return f(1); }
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`.stabs "g", global, g, 16`,
		`.stabs "f", func, f, 0`,
		`.stabs "loc", local, %fp`,
		`.stabs "a", param, %fp`,
	} {
		if !strings.Contains(asmSrc, want) {
			t.Errorf("missing symbol record %q in:\n%s", want, asmSrc)
		}
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`int main() { return x; }`, "undefined variable"},
		{`int main() { return f(); }`, "undefined function"},
		{`int f(int a) { return a; } int main() { return f(); }`, "takes 1 arguments"},
		{`int main() { int x; x = "s"; return 0; }`, "cannot assign"},
		{`int main() { 3 = 4; return 0; }`, "non-lvalue"},
		{`int main() { register int r; return &r == 0; }`, "register variable"},
		{`int main() { break; }`, "break outside"},
		{`int x; int x; int main() { return 0; }`, "redefined"},
		{`int main() { int y; int y; return 0; }`, "redeclared"},
		{`int f() { return 0; }`, "no main"},
		{`struct S { int a; }; int main() { struct S s; s.b = 1; return 0; }`, "no field"},
		{`int main() { int *p; return *p + p; }`, "cannot return"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q) error = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`int main( { return 0; }`,
		`int main() { return 0 }`,
		`int main() { if return; }`,
		`int 3x; int main(){return 0;}`,
		`int main() { return "unterminated; }`,
		`int a[0]; int main(){return 0;}`,
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestPointerArithScaling(t *testing.T) {
	out, _ := run(t, `
struct Big { int a; int b; int c; };
struct Big arr[4];
int main() {
	struct Big *p;
	p = arr;
	p = p + 2;
	p->a = 77;
	print(arr[2].a);
	print(p - 1 == &arr[1]);
	return 0;
}`)
	if out != "77\n1\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestShadowing(t *testing.T) {
	out, _ := run(t, `
int x = 1;
int main() {
	int x;
	x = 2;
	{
		int x;
		x = 3;
		print(x);
	}
	print(x);
	return 0;
}`)
	if out != "3\n2\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestLargeLocalArrayFrame(t *testing.T) {
	// Frame larger than simm13 forces the set/save path and wide fp offsets.
	out, _ := run(t, `
int main() {
	int big[2000];
	int i;
	for (i = 0; i < 2000; i = i + 1) big[i] = i;
	print(big[1999]);
	print(big[0]);
	return 0;
}`)
	if out != "1999\n0\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestCharLiteralsAndComments(t *testing.T) {
	out, _ := run(t, `
// line comment
/* block
   comment */
int main() {
	print('a' - 'A'); // 32
	return 0;
}`)
	if out != "32\n" {
		t.Fatalf("output = %q", out)
	}
}
