package minic

import "fmt"

// TypeKind discriminates Type.
type TypeKind int

const (
	TypeInt TypeKind = iota
	TypeVoid
	TypePtr
	TypeArray
	TypeStruct
)

// Type describes a mini-C type. Types are interned per declaration; compare
// with Same, not ==.
type Type struct {
	Kind   TypeKind
	Elem   *Type       // Ptr, Array
	Len    int32       // Array
	Struct *StructInfo // Struct
}

// StructInfo is a declared struct layout.
type StructInfo struct {
	Name   string
	Fields []Field
	Size   int32
}

// Field is one struct member.
type Field struct {
	Name string
	Type *Type
	Off  int32
}

// FieldByName returns the field with the given name.
func (s *StructInfo) FieldByName(name string) (Field, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

var (
	intType  = &Type{Kind: TypeInt}
	voidType = &Type{Kind: TypeVoid}
)

// Size returns the byte size of t.
func (t *Type) Size() int32 {
	switch t.Kind {
	case TypeInt, TypePtr:
		return 4
	case TypeArray:
		return t.Len * t.Elem.Size()
	case TypeStruct:
		return t.Struct.Size
	}
	return 0
}

// Same reports structural type equality.
func (t *Type) Same(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case TypeInt, TypeVoid:
		return true
	case TypePtr:
		return t.Elem.Same(u.Elem)
	case TypeArray:
		return t.Len == u.Len && t.Elem.Same(u.Elem)
	case TypeStruct:
		return t.Struct == u.Struct
	}
	return false
}

func (t *Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeVoid:
		return "void"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case TypeStruct:
		return "struct " + t.Struct.Name
	}
	return "?"
}

// --- Expressions ---

// Expr is an expression node. Type is filled in by the checker.
type Expr struct {
	Kind ExprKind
	Line int
	Type *Type

	// literals and names
	Val  int32  // NumLit
	Name string // Ident, Field/Arrow member, Call callee, StrLit label
	Str  string // StrLit content

	// operator expressions
	Op   string // Binary, Unary, Assign
	X, Y *Expr  // operands (X only for unary/postfix)

	// Call
	Args []*Expr

	// Sizeof: the measured type (Type holds the expression's own type, int)
	SizeofType *Type

	// checker annotations
	Sym *VarSym // resolved variable for Ident
}

// ExprKind discriminates Expr.
type ExprKind int

const (
	ExprNum ExprKind = iota
	ExprStr
	ExprIdent
	ExprUnary   // Op in - ! ~ * &
	ExprBinary  // arithmetic/logic/comparison
	ExprAssign  // X = Y
	ExprCall    // Name(Args) - direct calls only
	ExprIndex   // X[Y]
	ExprField   // X.Name
	ExprArrow   // X->Name
	ExprSizeof  // sizeof(type): Type holds the measured type, result int
	ExprBuiltin // Name in print/printc/prints/alloc/free
)

// --- Statements ---

// StmtKind discriminates Stmt.
type StmtKind int

const (
	StmtExpr StmtKind = iota
	StmtDecl
	StmtIf
	StmtWhile
	StmtFor
	StmtReturn
	StmtBreak
	StmtContinue
	StmtBlock
	StmtEmpty
)

// Stmt is a statement node.
type Stmt struct {
	Kind StmtKind
	Line int

	X *Expr // Expr, Return (nil for bare return), If/While/For condition

	// Decl
	Decl *VarDecl

	// If
	Then, Else *Stmt

	// While/For
	Body *Stmt
	Init *Stmt // For
	Post *Expr // For

	// Block
	List []*Stmt
}

// VarDecl declares one variable (locals and globals).
type VarDecl struct {
	Name     string
	Type     *Type
	Register bool
	Init     *Expr // optional initializer (constant for globals)
	Line     int
	Sym      *VarSym // filled by the checker
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*VarDecl
	Body   *Stmt // block
	Line   int
	Locals []*VarSym // all locals+params, filled by the checker
	// LocalBytes is the stack space the checker assigned to memory-resident
	// locals and params; codegen adds spill slots below it.
	LocalBytes int32
}

// Program is a parsed translation unit.
type Program struct {
	Structs []*StructInfo
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// VarSymKind classifies resolved variables.
type VarSymKind int

const (
	SymGlobal VarSymKind = iota
	SymLocal
	SymParam
	SymRegister
)

// VarSym is a resolved variable: where it lives.
type VarSym struct {
	Name string
	Kind VarSymKind
	Type *Type

	// SymGlobal: assembly label (same as source name).
	Label string
	// SymLocal/SymParam: %fp-relative offset (negative).
	FpOff int32
	// SymRegister: local register index 0..5 (maps to %l0-%l5).
	RegIdx int

	// Func is the enclosing function name for locals.
	Func string
}
