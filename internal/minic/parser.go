package minic

import "fmt"

type parser struct {
	toks    []Token
	pos     int
	structs map[string]*StructInfo
	prog    *Program
}

// Parse lexes and parses src into a Program (no semantic checking yet).
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:    toks,
		structs: make(map[string]*StructInfo),
		prog:    &Program{},
	}
	for !p.at(TokEOF, "") {
		if err := p.parseTopLevel(); err != nil {
			return nil, err
		}
	}
	return p.prog, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[TokKind]string{TokIdent: "identifier", TokNumber: "number"}[kind]
	}
	return Token{}, fmt.Errorf("line %d: expected %s, found %s", p.cur().Line, want, p.cur())
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: "+format, append([]any{p.cur().Line}, args...)...)
}

// isTypeStart reports whether the current token begins a type.
func (p *parser) isTypeStart() bool {
	t := p.cur()
	if t.Kind != TokKeyword {
		return false
	}
	return t.Text == "int" || t.Text == "void" || t.Text == "struct" || t.Text == "register"
}

// parseTypeSpec parses "int" | "void" | "struct NAME".
func (p *parser) parseTypeSpec() (*Type, error) {
	switch {
	case p.accept(TokKeyword, "int"):
		return intType, nil
	case p.accept(TokKeyword, "void"):
		return voidType, nil
	case p.accept(TokKeyword, "struct"):
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		si, ok := p.structs[name.Text]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown struct %q", name.Line, name.Text)
		}
		return &Type{Kind: TypeStruct, Struct: si}, nil
	}
	return nil, p.errf("expected a type, found %s", p.cur())
}

// parseStars wraps t in pointer types for each leading '*'.
func (p *parser) parseStars(t *Type) *Type {
	for p.accept(TokPunct, "*") {
		t = &Type{Kind: TypePtr, Elem: t}
	}
	return t
}

// parseArraySuffix appends array dimensions after the identifier.
func (p *parser) parseArraySuffix(t *Type) (*Type, error) {
	var dims []int32
	for p.accept(TokPunct, "[") {
		n, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		if n.Val <= 0 {
			return nil, fmt.Errorf("line %d: array length must be positive", n.Line)
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return nil, err
		}
		dims = append(dims, n.Val)
	}
	for i := len(dims) - 1; i >= 0; i-- {
		t = &Type{Kind: TypeArray, Elem: t, Len: dims[i]}
	}
	return t, nil
}

func (p *parser) parseTopLevel() error {
	if p.at(TokKeyword, "struct") && p.toks[p.pos+2].Kind == TokPunct && p.toks[p.pos+2].Text == "{" {
		return p.parseStructDecl()
	}
	reg := p.accept(TokKeyword, "register")
	base, err := p.parseTypeSpec()
	if err != nil {
		return err
	}
	t := p.parseStars(base)
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return err
	}
	if p.at(TokPunct, "(") {
		if reg {
			return fmt.Errorf("line %d: register on a function", name.Line)
		}
		return p.parseFuncRest(t, name)
	}
	// Global variable declaration (possibly a list).
	for {
		vt, err := p.parseArraySuffix(t)
		if err != nil {
			return err
		}
		if vt.Kind == TypeVoid {
			return fmt.Errorf("line %d: variable %q has void type", name.Line, name.Text)
		}
		vd := &VarDecl{Name: name.Text, Type: vt, Register: reg, Line: name.Line}
		if p.accept(TokPunct, "=") {
			e, err := p.parseAssign()
			if err != nil {
				return err
			}
			vd.Init = e
		}
		p.prog.Globals = append(p.prog.Globals, vd)
		if !p.accept(TokPunct, ",") {
			break
		}
		t = p.parseStars(base)
		name, err = p.expect(TokIdent, "")
		if err != nil {
			return err
		}
	}
	_, err = p.expect(TokPunct, ";")
	return err
}

func (p *parser) parseStructDecl() error {
	p.next() // struct
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return err
	}
	if _, dup := p.structs[name.Text]; dup {
		return fmt.Errorf("line %d: struct %q redefined", name.Line, name.Text)
	}
	si := &StructInfo{Name: name.Text}
	p.structs[name.Text] = si // visible for self-referential pointers
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return err
	}
	off := int32(0)
	for !p.accept(TokPunct, "}") {
		base, err := p.parseTypeSpec()
		if err != nil {
			return err
		}
		for {
			ft := p.parseStars(base)
			fname, err := p.expect(TokIdent, "")
			if err != nil {
				return err
			}
			ft, err = p.parseArraySuffix(ft)
			if err != nil {
				return err
			}
			if ft.Kind == TypeVoid {
				return fmt.Errorf("line %d: field %q has void type", fname.Line, fname.Text)
			}
			if ft.Kind == TypeStruct && ft.Struct == si {
				return fmt.Errorf("line %d: struct %q contains itself", fname.Line, name.Text)
			}
			if _, dup := si.FieldByName(fname.Text); dup {
				return fmt.Errorf("line %d: duplicate field %q", fname.Line, fname.Text)
			}
			si.Fields = append(si.Fields, Field{Name: fname.Text, Type: ft, Off: off})
			off += ft.Size()
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return err
		}
	}
	si.Size = (off + 3) &^ 3
	if si.Size == 0 {
		si.Size = 4
	}
	p.prog.Structs = append(p.prog.Structs, si)
	_, err = p.expect(TokPunct, ";")
	return err
}

func (p *parser) parseFuncRest(ret *Type, name Token) error {
	fd := &FuncDecl{Name: name.Text, Ret: ret, Line: name.Line}
	p.next() // (
	if !p.accept(TokPunct, ")") {
		if p.at(TokKeyword, "void") && p.toks[p.pos+1].Text == ")" {
			p.next()
			p.next()
		} else {
			for {
				base, err := p.parseTypeSpec()
				if err != nil {
					return err
				}
				pt := p.parseStars(base)
				pname, err := p.expect(TokIdent, "")
				if err != nil {
					return err
				}
				pt, err = p.parseArraySuffix(pt)
				if err != nil {
					return err
				}
				// Arrays decay to pointers in parameters.
				if pt.Kind == TypeArray {
					pt = &Type{Kind: TypePtr, Elem: pt.Elem}
				}
				if pt.Kind == TypeVoid {
					return fmt.Errorf("line %d: parameter %q has void type", pname.Line, pname.Text)
				}
				fd.Params = append(fd.Params, &VarDecl{Name: pname.Text, Type: pt, Line: pname.Line})
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return err
			}
		}
	}
	if len(fd.Params) > 6 {
		return fmt.Errorf("line %d: function %q has more than 6 parameters", name.Line, name.Text)
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	fd.Body = body
	p.prog.Funcs = append(p.prog.Funcs, fd)
	return nil
}

func (p *parser) parseBlock() (*Stmt, error) {
	open, err := p.expect(TokPunct, "{")
	if err != nil {
		return nil, err
	}
	blk := &Stmt{Kind: StmtBlock, Line: open.Line}
	for !p.accept(TokPunct, "}") {
		if p.at(TokEOF, "") {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.List = append(blk.List, s)
	}
	return blk, nil
}

func (p *parser) parseStmt() (*Stmt, error) {
	t := p.cur()
	switch {
	case p.at(TokPunct, "{"):
		return p.parseBlock()

	case p.at(TokPunct, ";"):
		p.next()
		return &Stmt{Kind: StmtEmpty, Line: t.Line}, nil

	case p.isTypeStart():
		// Local declaration; possibly a comma list, desugared into a block.
		reg := p.accept(TokKeyword, "register")
		base, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		var decls []*Stmt
		for {
			vt := p.parseStars(base)
			name, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			vt, err = p.parseArraySuffix(vt)
			if err != nil {
				return nil, err
			}
			if vt.Kind == TypeVoid {
				return nil, fmt.Errorf("line %d: variable %q has void type", name.Line, name.Text)
			}
			vd := &VarDecl{Name: name.Text, Type: vt, Register: reg, Line: name.Line}
			if p.accept(TokPunct, "=") {
				e, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				vd.Init = e
			}
			decls = append(decls, &Stmt{Kind: StmtDecl, Decl: vd, Line: name.Line})
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		if len(decls) == 1 {
			return decls[0], nil
		}
		return &Stmt{Kind: StmtBlock, List: decls, Line: t.Line}, nil

	case p.accept(TokKeyword, "if"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s := &Stmt{Kind: StmtIf, X: cond, Then: then, Line: t.Line}
		if p.accept(TokKeyword, "else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
		return s, nil

	case p.accept(TokKeyword, "while"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtWhile, X: cond, Body: body, Line: t.Line}, nil

	case p.accept(TokKeyword, "for"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		s := &Stmt{Kind: StmtFor, Line: t.Line}
		if !p.at(TokPunct, ";") {
			if p.isTypeStart() {
				return nil, p.errf("declarations in for-init are not supported")
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Init = &Stmt{Kind: StmtExpr, X: e, Line: t.Line}
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(TokPunct, ";") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.X = cond
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		if !p.at(TokPunct, ")") {
			post, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Post = post
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Body = body
		return s, nil

	case p.accept(TokKeyword, "return"):
		s := &Stmt{Kind: StmtReturn, Line: t.Line}
		if !p.at(TokPunct, ";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.X = e
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil

	case p.accept(TokKeyword, "break"):
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtBreak, Line: t.Line}, nil

	case p.accept(TokKeyword, "continue"):
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtContinue, Line: t.Line}, nil

	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtExpr, X: e, Line: t.Line}, nil
	}
}

// --- Expressions (precedence climbing) ---

func (p *parser) parseExpr() (*Expr, error) { return p.parseAssign() }

func (p *parser) parseAssign() (*Expr, error) {
	lhs, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.at(TokPunct, "=") {
		line := p.next().Line
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprAssign, X: lhs, Y: rhs, Line: line}, nil
	}
	return lhs, nil
}

// binary operator precedence levels, loosest first.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (*Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range binLevels[level] {
			if p.at(TokPunct, op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return lhs, nil
		}
		line := p.next().Line
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Expr{Kind: ExprBinary, Op: matched, X: lhs, Y: rhs, Line: line}
	}
}

func (p *parser) parseUnary() (*Expr, error) {
	for _, op := range []string{"-", "!", "~", "*", "&"} {
		if p.at(TokPunct, op) {
			line := p.next().Line
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprUnary, Op: op, X: x, Line: line}, nil
		}
	}
	if p.at(TokKeyword, "sizeof") {
		line := p.next().Line
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		base, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		t := p.parseStars(base)
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprSizeof, SizeofType: t, Line: line}, nil
	}
	return p.parsePostfix()
}

var builtinNames = map[string]bool{
	"print": true, "printc": true, "prints": true, "alloc": true, "free": true,
}

func (p *parser) parsePostfix() (*Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(TokPunct, "["):
			line := p.next().Line
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			e = &Expr{Kind: ExprIndex, X: e, Y: idx, Line: line}
		case p.at(TokPunct, "."):
			line := p.next().Line
			name, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			e = &Expr{Kind: ExprField, X: e, Name: name.Text, Line: line}
		case p.at(TokPunct, "->"):
			line := p.next().Line
			name, err := p.expect(TokIdent, "")
			if err != nil {
				return nil, err
			}
			e = &Expr{Kind: ExprArrow, X: e, Name: name.Text, Line: line}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (*Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		p.next()
		return &Expr{Kind: ExprNum, Val: t.Val, Line: t.Line}, nil
	case t.Kind == TokString:
		p.next()
		return &Expr{Kind: ExprStr, Str: t.Text, Line: t.Line}, nil
	case t.Kind == TokIdent:
		p.next()
		if p.at(TokPunct, "(") {
			p.next()
			var args []*Expr
			if !p.accept(TokPunct, ")") {
				for {
					a, err := p.parseAssign()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(TokPunct, ",") {
						break
					}
				}
				if _, err := p.expect(TokPunct, ")"); err != nil {
					return nil, err
				}
			}
			kind := ExprCall
			if builtinNames[t.Text] {
				kind = ExprBuiltin
			}
			return &Expr{Kind: kind, Name: t.Text, Args: args, Line: t.Line}, nil
		}
		return &Expr{Kind: ExprIdent, Name: t.Text, Line: t.Line}, nil
	case p.accept(TokPunct, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("expected an expression, found %s", t)
}
