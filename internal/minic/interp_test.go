package minic

import (
	"strings"
	"testing"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/machine"
)

// runCompiled compiles and executes src on the simulated machine.
func runCompiled(t *testing.T, src string) (string, int32) {
	t.Helper()
	asmSrc, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	u, err := asm.Parse("p.s", asmSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, u)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.Load(m)
	code, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.Output(), code
}

// differential asserts interpreter and compiled execution agree.
func differential(t *testing.T, src string) {
	t.Helper()
	iOut, iCode, err := Interpret(src)
	if err != nil {
		t.Fatalf("interpret: %v", err)
	}
	cOut, cCode := runCompiled(t, src)
	if iOut != cOut {
		t.Fatalf("output mismatch:\ninterp:   %q\ncompiled: %q", iOut, cOut)
	}
	if iCode != cCode {
		t.Fatalf("exit mismatch: interp %d, compiled %d", iCode, cCode)
	}
}

func TestDifferentialBasics(t *testing.T) {
	cases := []string{
		`int main() { return 42; }`,
		`int main() { print(2 + 3 * 4 - 6 / 2); return 0; }`,
		`int main() { print(-2147483647 - 1); print(2147483647 + 1); return 0; }`,  // wrapping
		`int main() { print(-17 / 5); print(-17 % 5); print(17 % -5); return 0; }`, // truncating
		`int main() { print(1 << 31); print((1 << 31) >> 31); return 0; }`,
		`int main() { int x; x = 0; print(x && (1 / x)); return 0; }`, // short circuit
		`int main() { print('a' != 'b' || 1 / 0); return 0; }`,
	}
	for _, src := range cases {
		differential(t, src)
	}
}

func TestDifferentialControlFlow(t *testing.T) {
	differential(t, `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 20; i = i + 1) {
		if (i % 3 == 0) continue;
		if (i == 17) break;
		s = s + i;
	}
	while (s > 100) s = s - 7;
	print(s);
	return s % 256;
}`)
}

func TestDifferentialFunctionsAndRecursion(t *testing.T) {
	differential(t, `
int ack(int m, int n) {
	if (m == 0) return n + 1;
	if (n == 0) return ack(m - 1, 1);
	return ack(m - 1, ack(m, n - 1));
}
int main() {
	print(ack(2, 3));
	return ack(1, 5);
}`)
}

func TestDifferentialArraysPointersStructs(t *testing.T) {
	differential(t, `
struct P { int x; int y; };
struct P pts[4];
int g[8];
int sum(int *a, int n) {
	int i;
	int s;
	s = 0;
	for (i = 0; i < n; i = i + 1) s = s + a[i];
	return s;
}
int main() {
	int i;
	int local[5];
	struct P *p;
	for (i = 0; i < 8; i = i + 1) g[i] = i * i;
	for (i = 0; i < 5; i = i + 1) local[i] = g[i + 2];
	for (i = 0; i < 4; i = i + 1) {
		pts[i].x = i;
		pts[i].y = g[i];
	}
	p = &pts[2];
	p->y = p->y + 100;
	print(sum(g, 8));
	print(sum(local, 5));
	print(pts[2].y);
	print(*(g + 3));
	return 0;
}`)
}

func TestDifferentialHeapChurn(t *testing.T) {
	differential(t, `
struct Cell { int v; struct Cell *next; };
int main() {
	struct Cell *head;
	struct Cell *c;
	int i;
	int s;
	head = 0;
	for (i = 1; i <= 20; i = i + 1) {
		c = alloc(sizeof(struct Cell));
		c->v = i * 3;
		c->next = head;
		head = c;
	}
	s = 0;
	c = head;
	while (c != 0) {
		s = s + c->v;
		c = c->next;
	}
	// free and re-allocate: pointer identity must agree across backends
	free(head);
	c = alloc(sizeof(struct Cell));
	print(c == head);
	print(s);
	return 0;
}`)
}

func TestDifferentialRegisterVars(t *testing.T) {
	differential(t, `
int main() {
	register int i;
	register int acc;
	int spill;
	acc = 1;
	spill = 0;
	for (i = 0; i < 12; i = i + 1) {
		acc = acc * 2 + i % 3;
		spill = spill ^ acc;
	}
	print(acc);
	print(spill);
	return 0;
}`)
}

func TestDifferentialStringsAndChars(t *testing.T) {
	differential(t, `
int main() {
	prints("diff\ttest\n");
	printc('X');
	printc(10);
	print('0' + 5);
	return 0;
}`)
}

// TestDifferentialWorkloadKernels runs scaled-down versions of the workload
// kernels through both backends.
func TestDifferentialWorkloadKernels(t *testing.T) {
	differential(t, `
int a[20][20];
int b[20][20];
int c[20][20];
int main() {
	int i;
	int j;
	int k;
	int s;
	for (i = 0; i < 20; i = i + 1) {
		for (j = 0; j < 20; j = j + 1) {
			a[i][j] = (i * 3 + j * 7) % 19;
			b[i][j] = (i * 5 + j * 11) % 23;
		}
	}
	for (i = 0; i < 20; i = i + 1) {
		for (j = 0; j < 20; j = j + 1) {
			s = 0;
			for (k = 0; k < 20; k = k + 1) s = s + a[i][k] * b[k][j];
			c[i][j] = s;
		}
	}
	s = 0;
	for (i = 0; i < 20; i = i + 1) s = (s + c[i][i]) % 65536;
	print(s);
	return 0;
}`)
	differential(t, `
int seed;
int nextrand() {
	seed = seed * 1103515245 + 12345;
	if (seed < 0) seed = -seed;
	return seed;
}
int main() {
	int i;
	int acc;
	seed = 7;
	acc = 0;
	for (i = 0; i < 500; i = i + 1) acc = (acc + nextrand() % 977) % 100000;
	print(acc);
	return 0;
}`)
}

// TestInterpLooseLoopSignals: break/continue outside any loop must come
// back as a proper interp error, not an escaping panic (the compile path
// rejects these in codegen, but the interpreter runs from Check alone).
func TestInterpLooseLoopSignals(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`int main() { break; return 0; }`, "break statement outside a loop"},
		{`int main() { continue; return 0; }`, "continue statement outside a loop"},
		{`int f() { break; return 1; }
		  int main() { int i; for (i = 0; i < 3; i = i + 1) f(); return 0; }`,
			"break statement outside a loop"},
		{`int main() { if (1) { continue; } return 0; }`, "continue statement outside a loop"},
	}
	for _, c := range cases {
		_, _, err := Interpret(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Interpret(%q) err = %v, want %q", c.src, err, c.want)
		}
	}
	// Break inside a loop must still just exit the loop.
	out, exit, err := Interpret(`int main() {
		int i;
		for (i = 0; i < 10; i = i + 1) { if (i == 3) break; }
		print(i);
		return i;
	}`)
	if err != nil || exit != 3 || out != "3\n" {
		t.Fatalf("in-loop break: out=%q exit=%d err=%v", out, exit, err)
	}
}

func TestInterpStepGuard(t *testing.T) {
	prog, err := Parse(`int main() { while (1) {} return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(prog); err != nil {
		t.Fatal(err)
	}
	in := NewInterp(prog)
	in.MaxSteps = 10_000
	if _, _, err := in.Run(); err == nil {
		t.Fatal("infinite loop must trip MaxSteps")
	}
}
