// Package minic implements a small C-like language compiler targeting the
// SPARC-subset ISA, standing in for the Sun C and FORTRAN compilers in the
// paper's pipeline. It emits the naive, debugging-style code the paper
// assumes — every variable lives in memory at a %fp-relative or absolute
// address, every access is an explicit load or store — together with
// STAB-style symbol records that the symbol-table pattern matcher of §4.2
// consumes. A `register` storage class keeps a variable in a register (as
// SPEC's espresso and gcc use heavily), which removes both the need and the
// opportunity for write-check optimization on it.
package minic

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies tokens.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokPunct   // operators and punctuation
	TokKeyword // reserved words
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Val  int32 // for TokNumber
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokNumber:
		return fmt.Sprintf("number %d", t.Val)
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"int": true, "void": true, "struct": true, "register": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true, "sizeof": true,
}

// multi-character operators, longest first.
var punctuators = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "->",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ",", ";", ".",
}

// Lex tokenizes src. It returns an error with a line number on any invalid
// input.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("line %d: unterminated block comment", line)
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (isIdentChar(src[j])) {
				j++
			}
			text := src[i:j]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: line})
			i = j
		case c >= '0' && c <= '9':
			j := i
			base := int32(10)
			if c == '0' && j+1 < len(src) && (src[j+1] == 'x' || src[j+1] == 'X') {
				base = 16
				j += 2
			}
			var v int64
			start := j
			for j < len(src) && isDigit(src[j], base) {
				v = v*int64(base) + int64(digitVal(src[j]))
				if v > 1<<32 {
					return nil, fmt.Errorf("line %d: integer constant too large", line)
				}
				j++
			}
			if base == 16 && j == start {
				return nil, fmt.Errorf("line %d: malformed hex constant", line)
			}
			toks = append(toks, Token{Kind: TokNumber, Val: int32(v), Text: src[i:j], Line: line})
			i = j
		case c == '\'':
			if i+2 < len(src) && src[i+1] == '\\' {
				v, ok := escapeChar(src[i+2])
				if !ok || i+3 >= len(src) || src[i+3] != '\'' {
					return nil, fmt.Errorf("line %d: bad character literal", line)
				}
				toks = append(toks, Token{Kind: TokNumber, Val: int32(v), Text: src[i : i+4], Line: line})
				i += 4
			} else if i+2 < len(src) && src[i+2] == '\'' {
				toks = append(toks, Token{Kind: TokNumber, Val: int32(src[i+1]), Text: src[i : i+3], Line: line})
				i += 3
			} else {
				return nil, fmt.Errorf("line %d: bad character literal", line)
			}
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					v, ok := escapeChar(src[j+1])
					if !ok {
						return nil, fmt.Errorf("line %d: bad escape in string", line)
					}
					sb.WriteByte(v)
					j += 2
					continue
				}
				if src[j] == '\n' {
					return nil, fmt.Errorf("line %d: newline in string literal", line)
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("line %d: unterminated string literal", line)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Line: line})
			i = j + 1
		default:
			matched := false
			for _, p := range punctuators {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, Token{Kind: TokPunct, Text: p, Line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line})
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isDigit(c byte, base int32) bool {
	if base == 16 {
		return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
	}
	return c >= '0' && c <= '9'
}

func digitVal(c byte) int32 {
	switch {
	case c >= '0' && c <= '9':
		return int32(c - '0')
	case c >= 'a' && c <= 'f':
		return int32(c-'a') + 10
	default:
		return int32(c-'A') + 10
	}
}

func escapeChar(c byte) (byte, bool) {
	switch c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '0':
		return 0, true
	case '\\':
		return '\\', true
	case '\'':
		return '\'', true
	case '"':
		return '"', true
	}
	return 0, false
}
