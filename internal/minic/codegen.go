package minic

import (
	"fmt"
	"strings"
)

// Codegen notes.
//
// The generator produces the naive "compiled for debugging" code shape the
// paper assumes: every memory-resident variable access is an explicit load
// or store, expression temporaries live in an %o-register evaluation stack
// (%o0-%o4, with %o5 as scratch and frame spill slots when an operand must
// survive a call), and each function carries a register window
// (save/restore). Variables declared `register` live in %l0-%l5 and never
// touch memory.
//
// Reserved for the monitored region service and never emitted here:
// %g1-%g7, %l6, %l7 (see internal/patch).

const maxEvalDepth = 4 // %o0..%o4 hold the evaluation stack; %o5 is scratch

type codegen struct {
	prog *Program
	b    strings.Builder

	fn        *FuncDecl
	labelN    int
	spillOff  []int32 // active spill slot offsets (stack discipline)
	spillMax  int32
	breakL    []string
	contL     []string
	strLabels map[string]string
	strN      int
	err       error
}

// Compile parses, checks, and compiles src to assembly text.
func Compile(src string) (string, error) {
	prog, err := Parse(src)
	if err != nil {
		return "", err
	}
	if err := Check(prog); err != nil {
		return "", err
	}
	return Generate(prog)
}

// Generate emits assembly for a checked program.
func Generate(prog *Program) (string, error) {
	g := &codegen{prog: prog, strLabels: make(map[string]string)}
	g.p("\t.text")
	for _, f := range prog.Funcs {
		g.genFunc(f)
		if g.err != nil {
			return "", g.err
		}
	}
	g.p("\t.data")
	for _, gd := range prog.Globals {
		g.p("%s:", gd.Name)
		if gd.Init != nil {
			v := gd.Init.Val
			if gd.Init.Kind == ExprUnary {
				v = -gd.Init.X.Val
			}
			g.p("\t.word %d", v)
		} else {
			g.p("\t.space %d", gd.Type.Size())
		}
		g.p("\t.stabs %q, global, %s, %d", gd.Name, gd.Name, gd.Type.Size())
	}
	for s, label := range g.strLabels {
		g.p("%s:", label)
		g.p("\t.ascii %q", s)
	}
	return g.b.String(), nil
}

func (g *codegen) p(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *codegen) fail(line int, format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf("line %d: "+format, append([]any{line}, args...)...)
	}
}

func (g *codegen) newLabel() string {
	g.labelN++
	return fmt.Sprintf(".L%s_%d", g.fn.Name, g.labelN)
}

// oreg returns the evaluation-stack register for depth d.
func oreg(d int) string { return fmt.Sprintf("%%o%d", d) }

const scratch = "%o5"

// spillAlloc reserves a frame slot below the locals and returns its
// fp-relative offset.
func (g *codegen) spillAlloc() int32 {
	off := -(g.fn.LocalBytes + 4*int32(len(g.spillOff)) + 4)
	g.spillOff = append(g.spillOff, off)
	if n := 4 * int32(len(g.spillOff)); n > g.spillMax {
		g.spillMax = n
	}
	return off
}

func (g *codegen) spillFree() {
	g.spillOff = g.spillOff[:len(g.spillOff)-1]
}

// fpStore emits st reg, [%fp+off], handling offsets beyond simm13.
func (g *codegen) fpStore(reg string, off int32) {
	if off >= -4096 && off <= 4095 {
		g.p("\tst %s, [%%fp%+d]", reg, off)
		return
	}
	g.p("\tset %d, %s", off, scratch)
	g.p("\tst %s, [%%fp+%s]", reg, scratch)
}

// fpLoad emits ld [%fp+off], reg, handling offsets beyond simm13.
func (g *codegen) fpLoad(off int32, reg string) {
	if off >= -4096 && off <= 4095 {
		g.p("\tld [%%fp%+d], %s", off, reg)
		return
	}
	g.p("\tset %d, %s", off, scratch)
	g.p("\tld [%%fp+%s], %s", scratch, reg)
}

// fpAddr leaves %fp+off in reg.
func (g *codegen) fpAddr(off int32, reg string) {
	if off >= -4096 && off <= 4095 {
		g.p("\tadd %%fp, %d, %s", off, reg)
		return
	}
	g.p("\tset %d, %s", off, scratch)
	g.p("\tadd %%fp, %s, %s", scratch, reg)
}

func (g *codegen) genFunc(f *FuncDecl) {
	g.fn = f
	g.labelN = 0
	g.spillOff = g.spillOff[:0]
	g.spillMax = 0
	g.breakL = g.breakL[:0]
	g.contL = g.contL[:0]

	var body strings.Builder
	saved := g.b
	g.b = body
	// Parameters arrive in %i0..%i5 and are spilled to their stack homes
	// (naive debug compilation; gives the symbol-table optimizer its
	// "known" parameter writes).
	for i, p := range f.Params {
		g.fpStore(fmt.Sprintf("%%i%d", i), p.Sym.FpOff)
	}
	g.genStmt(f.Body)
	g.p(".Lep_%s:", f.Name)
	g.p("\trestore")
	g.p("\tretl")
	bodyText := g.b.String()
	g.b = saved

	frame := 64 + f.LocalBytes + g.spillMax
	frame = (frame + 7) &^ 7
	g.p("%s:", f.Name)
	g.p("\t.stabs %q, func, %s, 0", f.Name, f.Name)
	if frame <= 4095 {
		g.p("\tsave %%sp, %d, %%sp", -frame)
	} else {
		// Large frames: compute the displacement in a scratch register
		// before the window shifts (use %o5 of the caller's window).
		g.p("\tset %d, %%o5", -frame)
		g.p("\tsave %%sp, %%o5, %%sp")
	}
	g.b.WriteString(bodyText)
	// Symbol records for memory-resident locals and params.
	for _, sym := range f.Locals {
		switch sym.Kind {
		case SymLocal:
			g.p("\t.stabs %q, local, %%fp%+d, %d, %q", sym.Name, sym.FpOff, sym.Type.Size(), f.Name)
		case SymParam:
			g.p("\t.stabs %q, param, %%fp%+d, %d, %q", sym.Name, sym.FpOff, sym.Type.Size(), f.Name)
		}
	}
}

func (g *codegen) genStmt(s *Stmt) {
	if g.err != nil {
		return
	}
	switch s.Kind {
	case StmtEmpty:
	case StmtExpr:
		g.genExpr(s.X, 0)
	case StmtDecl:
		d := s.Decl
		if d.Init == nil {
			return
		}
		g.genExpr(d.Init, 0)
		sym := d.Sym
		if sym.Kind == SymRegister {
			g.p("\tmov %%o0, %%l%d", sym.RegIdx)
		} else {
			g.fpStore("%o0", sym.FpOff)
		}
	case StmtIf:
		lThen, lElse, lEnd := g.newLabel(), g.newLabel(), g.newLabel()
		g.genCond(s.X, lThen, lElse, 0)
		g.p("%s:", lThen)
		g.genStmt(s.Then)
		g.p("\tba %s", lEnd)
		g.p("%s:", lElse)
		if s.Else != nil {
			g.genStmt(s.Else)
		}
		g.p("%s:", lEnd)
	case StmtWhile:
		lCond, lBody, lEnd := g.newLabel(), g.newLabel(), g.newLabel()
		g.p("%s:", lCond)
		g.genCond(s.X, lBody, lEnd, 0)
		g.p("%s:", lBody)
		g.breakL = append(g.breakL, lEnd)
		g.contL = append(g.contL, lCond)
		g.genStmt(s.Body)
		g.breakL = g.breakL[:len(g.breakL)-1]
		g.contL = g.contL[:len(g.contL)-1]
		g.p("\tba %s", lCond)
		g.p("%s:", lEnd)
	case StmtFor:
		lCond, lBody, lPost, lEnd := g.newLabel(), g.newLabel(), g.newLabel(), g.newLabel()
		if s.Init != nil {
			g.genStmt(s.Init)
		}
		g.p("%s:", lCond)
		if s.X != nil {
			g.genCond(s.X, lBody, lEnd, 0)
		}
		g.p("%s:", lBody)
		g.breakL = append(g.breakL, lEnd)
		g.contL = append(g.contL, lPost)
		g.genStmt(s.Body)
		g.breakL = g.breakL[:len(g.breakL)-1]
		g.contL = g.contL[:len(g.contL)-1]
		g.p("%s:", lPost)
		if s.Post != nil {
			g.genExpr(s.Post, 0)
		}
		g.p("\tba %s", lCond)
		g.p("%s:", lEnd)
	case StmtReturn:
		if s.X != nil {
			g.genExpr(s.X, 0)
			g.p("\tmov %%o0, %%i0")
		}
		g.p("\tba .Lep_%s", g.fn.Name)
	case StmtBreak:
		if len(g.breakL) == 0 {
			g.fail(s.Line, "break outside a loop")
			return
		}
		g.p("\tba %s", g.breakL[len(g.breakL)-1])
	case StmtContinue:
		if len(g.contL) == 0 {
			g.fail(s.Line, "continue outside a loop")
			return
		}
		g.p("\tba %s", g.contL[len(g.contL)-1])
	case StmtBlock:
		for _, sub := range s.List {
			g.genStmt(sub)
		}
	}
}

// clobbers reports whether evaluating e may destroy %o registers other than
// its own stack slot (calls and trap builtins do).
func clobbers(e *Expr) bool {
	if e == nil {
		return false
	}
	if e.Kind == ExprCall || e.Kind == ExprBuiltin {
		return true
	}
	if clobbers(e.X) || clobbers(e.Y) {
		return true
	}
	for _, a := range e.Args {
		if clobbers(a) {
			return true
		}
	}
	return false
}

// genOperands evaluates X and Y, returning the registers holding them.
// Fast path: X at depth d, Y at d+1. If Y may clobber or the stack is full,
// X is spilled around Y's evaluation and reloaded into the scratch register.
func (g *codegen) genOperands(x, y *Expr, d int) (rx, ry string) {
	if clobbers(y) || d >= maxEvalDepth {
		g.genExpr(x, d)
		slot := g.spillAlloc()
		g.fpStore(oreg(d), slot)
		g.genExpr(y, d)
		g.fpLoad(slot, scratch)
		g.spillFree()
		// Move Y out of the result register so the result can land in
		// oreg(d): result = op(scratch, oreg(d)) works directly.
		return scratch, oreg(d)
	}
	g.genExpr(x, d)
	g.genExpr(y, d+1)
	return oreg(d), oreg(d + 1)
}

var condBranch = map[string]string{
	"==": "be", "!=": "bne", "<": "bl", "<=": "ble", ">": "bg", ">=": "bge",
}

// genCond emits control flow: jump to lTrue if e holds, else to lFalse.
func (g *codegen) genCond(e *Expr, lTrue, lFalse string, d int) {
	if g.err != nil {
		return
	}
	switch {
	case e.Kind == ExprBinary && condBranch[e.Op] != "":
		rx, ry := g.genOperands(e.X, e.Y, d)
		g.p("\tcmp %s, %s", rx, ry)
		g.p("\t%s %s", condBranch[e.Op], lTrue)
		g.p("\tba %s", lFalse)
	case e.Kind == ExprBinary && e.Op == "&&":
		mid := g.newLabel()
		g.genCond(e.X, mid, lFalse, d)
		g.p("%s:", mid)
		g.genCond(e.Y, lTrue, lFalse, d)
	case e.Kind == ExprBinary && e.Op == "||":
		mid := g.newLabel()
		g.genCond(e.X, lTrue, mid, d)
		g.p("%s:", mid)
		g.genCond(e.Y, lTrue, lFalse, d)
	case e.Kind == ExprUnary && e.Op == "!":
		g.genCond(e.X, lFalse, lTrue, d)
	default:
		g.genExpr(e, d)
		g.p("\ttst %s", oreg(d))
		g.p("\tbne %s", lTrue)
		g.p("\tba %s", lFalse)
	}
}

// genAddr leaves the address of lvalue e in oreg(d).
func (g *codegen) genAddr(e *Expr, d int) {
	if g.err != nil {
		return
	}
	switch e.Kind {
	case ExprIdent:
		sym := e.Sym
		switch sym.Kind {
		case SymGlobal:
			g.p("\tset %s, %s", sym.Label, oreg(d))
		case SymLocal, SymParam:
			g.fpAddr(sym.FpOff, oreg(d))
		default:
			g.fail(e.Line, "cannot take the address of register variable %q", sym.Name)
		}
	case ExprUnary: // *p
		g.genExpr(e.X, d)
	case ExprIndex:
		base := e.X
		if base.Type.Kind == TypeArray {
			g.genAddr(base, d)
		} else {
			g.genExpr(base, d)
		}
		elem := e.Type
		size := elem.Size()
		// Index value with the usual operand discipline.
		if clobbers(e.Y) || d >= maxEvalDepth {
			slot := g.spillAlloc()
			g.fpStore(oreg(d), slot)
			g.genExpr(e.Y, d)
			g.scaleReg(oreg(d), size, e.Line)
			g.fpLoad(slot, scratch)
			g.spillFree()
			g.p("\tadd %s, %s, %s", scratch, oreg(d), oreg(d))
		} else {
			g.genExpr(e.Y, d+1)
			g.scaleReg(oreg(d+1), size, e.Line)
			g.p("\tadd %s, %s, %s", oreg(d), oreg(d+1), oreg(d))
		}
	case ExprField:
		g.genAddr(e.X, d)
		f, _ := e.X.Type.Struct.FieldByName(e.Name)
		if f.Off != 0 {
			g.p("\tadd %s, %d, %s", oreg(d), f.Off, oreg(d))
		}
	case ExprArrow:
		g.genExpr(e.X, d)
		f, _ := e.X.Type.Elem.Struct.FieldByName(e.Name)
		if f.Off != 0 {
			g.p("\tadd %s, %d, %s", oreg(d), f.Off, oreg(d))
		}
	default:
		g.fail(e.Line, "not an lvalue")
	}
}

// scaleReg multiplies reg by size in place (pointer/array arithmetic).
func (g *codegen) scaleReg(reg string, size int32, line int) {
	switch {
	case size == 1:
	case size&(size-1) == 0:
		sh := 0
		for s := size; s > 1; s >>= 1 {
			sh++
		}
		g.p("\tsll %s, %d, %s", reg, sh, reg)
	case size <= 4095:
		g.p("\tsmul %s, %d, %s", reg, size, reg)
	default:
		g.fail(line, "element size %d too large for scaling", size)
	}
}

// isAggregate reports whether t is an array or struct (whose "value" is its
// address).
func isAggregate(t *Type) bool {
	return t != nil && (t.Kind == TypeArray || t.Kind == TypeStruct)
}

// genExpr leaves the value of e in oreg(d).
func (g *codegen) genExpr(e *Expr, d int) {
	if g.err != nil {
		return
	}
	if d > maxEvalDepth {
		g.fail(e.Line, "expression too deep")
		return
	}
	switch e.Kind {
	case ExprNum:
		g.p("\tset %d, %s", e.Val, oreg(d))

	case ExprSizeof:
		g.p("\tset %d, %s", e.SizeofType.Size(), oreg(d))

	case ExprStr:
		g.p("\tset %s, %s", g.strLabel(e.Str), oreg(d))

	case ExprIdent:
		sym := e.Sym
		switch {
		case sym.Kind == SymRegister:
			g.p("\tmov %%l%d, %s", sym.RegIdx, oreg(d))
		case isAggregate(sym.Type):
			g.genAddr(e, d)
		case sym.Kind == SymGlobal:
			g.p("\tset %s, %s", sym.Label, oreg(d))
			g.p("\tld [%s], %s", oreg(d), oreg(d))
		default:
			g.fpLoad(sym.FpOff, oreg(d))
		}

	case ExprUnary:
		switch e.Op {
		case "-":
			g.genExpr(e.X, d)
			g.p("\tsub %%g0, %s, %s", oreg(d), oreg(d))
		case "~":
			g.genExpr(e.X, d)
			g.p("\txnor %s, %%g0, %s", oreg(d), oreg(d))
		case "!":
			g.genExpr(e.X, d)
			l := g.newLabel()
			g.p("\ttst %s", oreg(d))
			g.p("\tmov 1, %s", oreg(d))
			g.p("\tbe %s", l)
			g.p("\tmov 0, %s", oreg(d))
			g.p("%s:", l)
		case "*":
			g.genExpr(e.X, d)
			if !isAggregate(e.Type) {
				g.p("\tld [%s], %s", oreg(d), oreg(d))
			}
		case "&":
			g.genAddr(e.X, d)
		}

	case ExprBinary:
		g.genBinary(e, d)

	case ExprAssign:
		g.genAssign(e, d)

	case ExprIndex, ExprField, ExprArrow:
		g.genAddr(e, d)
		if !isAggregate(e.Type) {
			g.p("\tld [%s], %s", oreg(d), oreg(d))
		}

	case ExprCall:
		g.genCall(e, d)

	case ExprBuiltin:
		g.genBuiltin(e, d)
	}
}

func (g *codegen) genBinary(e *Expr, d int) {
	op := e.Op
	if condBranch[op] != "" || op == "&&" || op == "||" {
		// Comparison/logical as a value: materialize 0/1 via genCond.
		lT, lF, lEnd := g.newLabel(), g.newLabel(), g.newLabel()
		g.genCond(e, lT, lF, d)
		g.p("%s:", lT)
		g.p("\tmov 1, %s", oreg(d))
		g.p("\tba %s", lEnd)
		g.p("%s:", lF)
		g.p("\tmov 0, %s", oreg(d))
		g.p("%s:", lEnd)
		return
	}

	// Pointer arithmetic scaling.
	xPtr := e.X.Type.Kind == TypePtr || e.X.Type.Kind == TypeArray
	yPtr := e.Y.Type.Kind == TypePtr || e.Y.Type.Kind == TypeArray

	rx, ry := g.genOperands(e.X, e.Y, d)
	switch op {
	case "+":
		if xPtr && !yPtr {
			g.scaleReg(ry, e.X.Type.Elem.Size(), e.Line)
		} else if yPtr && !xPtr {
			g.scaleReg(rx, e.Y.Type.Elem.Size(), e.Line)
		}
		g.p("\tadd %s, %s, %s", rx, ry, oreg(d))
	case "-":
		if xPtr && !yPtr {
			g.scaleReg(ry, e.X.Type.Elem.Size(), e.Line)
		}
		g.p("\tsub %s, %s, %s", rx, ry, oreg(d))
	case "*":
		g.p("\tsmul %s, %s, %s", rx, ry, oreg(d))
	case "/":
		g.p("\tsdiv %s, %s, %s", rx, ry, oreg(d))
	case "%":
		g.genModulo(e, rx, ry, d)
	case "&":
		g.p("\tand %s, %s, %s", rx, ry, oreg(d))
	case "|":
		g.p("\tor %s, %s, %s", rx, ry, oreg(d))
	case "^":
		g.p("\txor %s, %s, %s", rx, ry, oreg(d))
	case "<<":
		g.p("\tsll %s, %s, %s", rx, ry, oreg(d))
	case ">>":
		g.p("\tsra %s, %s, %s", rx, ry, oreg(d))
	default:
		g.fail(e.Line, "unhandled operator %s", op)
	}
}

// genModulo lowers % as a - (a/b)*b without needing a third free register:
// in the spill path the left operand is reloadable from its slot.
func (g *codegen) genModulo(e *Expr, rx, ry string, d int) {
	if rx == scratch {
		// Spill path: rx=%o5 (also in a just-freed slot), ry=oreg(d).
		slot := g.spillAlloc() // re-reserve the slot the operands used
		g.fpStore(rx, slot)
		g.p("\tsdiv %s, %s, %s", rx, ry, scratch) // q
		g.p("\tsmul %s, %s, %s", scratch, ry, scratch)
		g.fpLoad(slot, oreg(d)) // reload a over the dead rhs
		g.spillFree()
		g.p("\tsub %s, %s, %s", oreg(d), scratch, oreg(d))
		return
	}
	// Fast path: rx=oreg(d), ry=oreg(d+1); %o5 is free.
	g.p("\tsdiv %s, %s, %s", rx, ry, scratch)
	g.p("\tsmul %s, %s, %s", scratch, ry, scratch)
	g.p("\tsub %s, %s, %s", rx, scratch, oreg(d))
}

func (g *codegen) genAssign(e *Expr, d int) {
	lhs := e.X
	// Register destination: evaluate and move.
	if lhs.Kind == ExprIdent && lhs.Sym.Kind == SymRegister {
		g.genExpr(e.Y, d)
		g.p("\tmov %s, %%l%d", oreg(d), lhs.Sym.RegIdx)
		return
	}
	// Simple direct destinations: value first, then store straight to the
	// variable's home (this is the canonical `st %oN, [%fp-20]` shape).
	if lhs.Kind == ExprIdent {
		sym := lhs.Sym
		g.genExpr(e.Y, d)
		if sym.Kind == SymGlobal {
			g.p("\tset %s, %s", sym.Label, scratch)
			g.p("\tst %s, [%s]", oreg(d), scratch)
		} else {
			g.fpStore(oreg(d), sym.FpOff)
		}
		return
	}
	// General lvalue: address, then value.
	if clobbers(e.Y) || d >= maxEvalDepth {
		g.genAddr(lhs, d)
		slot := g.spillAlloc()
		g.fpStore(oreg(d), slot)
		g.genExpr(e.Y, d)
		g.fpLoad(slot, scratch)
		g.spillFree()
		g.p("\tst %s, [%s]", oreg(d), scratch)
		return
	}
	g.genAddr(lhs, d)
	g.genExpr(e.Y, d+1)
	g.p("\tst %s, [%s]", oreg(d+1), oreg(d))
	g.p("\tmov %s, %s", oreg(d+1), oreg(d)) // assignment value
}

func (g *codegen) genCall(e *Expr, d int) {
	n := len(e.Args)
	anyClobber := false
	for i, a := range e.Args {
		if i > 0 && clobbers(a) {
			anyClobber = true
		}
	}
	if anyClobber || d+n-1 > maxEvalDepth {
		// Evaluate each argument at depth d and park it in a slot; then
		// reload into the outgoing registers (all ancestors have spilled,
		// so %o0.. are free).
		slots := make([]int32, n)
		for i, a := range e.Args {
			g.genExpr(a, d)
			slots[i] = g.spillAlloc()
			g.fpStore(oreg(d), slots[i])
		}
		for i := n - 1; i >= 0; i-- {
			g.fpLoad(slots[i], fmt.Sprintf("%%o%d", i))
			g.spillFree()
		}
	} else {
		for i, a := range e.Args {
			g.genExpr(a, d+i)
		}
		if d > 0 {
			for i := 0; i < n; i++ {
				g.p("\tmov %s, %%o%d", oreg(d+i), i)
			}
		}
	}
	g.p("\tcall %s", e.Name)
	if e.Type.Kind != TypeVoid && d > 0 {
		g.p("\tmov %%o0, %s", oreg(d))
	}
}

func (g *codegen) genBuiltin(e *Expr, d int) {
	mov0 := func() {
		if d != 0 {
			g.p("\tmov %s, %%o0", oreg(d))
		}
	}
	switch e.Name {
	case "print":
		g.genExpr(e.Args[0], d)
		mov0()
		g.p("\tta 1")
	case "printc":
		g.genExpr(e.Args[0], d)
		mov0()
		g.p("\tta 2")
	case "prints":
		s := e.Args[0].Str
		g.p("\tset %s, %%o0", g.strLabel(s))
		g.p("\tset %d, %%o1", len(s))
		g.p("\tta 3")
	case "alloc":
		g.genExpr(e.Args[0], d)
		mov0()
		g.p("\tta 4")
		if d != 0 {
			g.p("\tmov %%o0, %s", oreg(d))
		}
	case "free":
		g.genExpr(e.Args[0], d)
		mov0()
		g.p("\tta 5")
	}
}

func (g *codegen) strLabel(s string) string {
	if l, ok := g.strLabels[s]; ok {
		return l
	}
	l := fmt.Sprintf("__str_%d", g.strN)
	g.strN++
	g.strLabels[s] = l
	return l
}
