package machine

import (
	"math/rand"
	"reflect"
	"testing"

	"databreak/internal/cache"
	"databreak/internal/sparc"
)

// These tests pin the central invariant of the block-dispatch engine: a
// single-Step loop and Run() are observationally identical — same registers,
// same output, same simulated Cycles()/Instrs(), same cache statistics, same
// faults — on any text, including text patched while a block is executing.

// stepAll drives m with the single-instruction path until it halts or faults.
func stepAll(m *Machine) error {
	for !m.halted {
		if uint32(m.pc) >= uint32(len(m.text)) {
			return &Fault{PC: m.pc, Reason: "pc outside text"}
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// diffStates fails the test unless a (stepped) and b (block-run) agree on
// every observable: termination, errors, all 32 registers, condition codes,
// pc, counts, output, counters, and cache statistics.
func diffStates(t *testing.T, ctx string, a, b *Machine, errA, errB error) {
	t.Helper()
	switch {
	case (errA == nil) != (errB == nil):
		t.Fatalf("%s: step err=%v, run err=%v", ctx, errA, errB)
	case errA != nil && errA.Error() != errB.Error():
		t.Fatalf("%s: step err %q, run err %q", ctx, errA, errB)
	}
	if a.Halted() != b.Halted() || a.ExitCode() != b.ExitCode() {
		t.Fatalf("%s: halted/exit mismatch: step (%v,%d) run (%v,%d)",
			ctx, a.Halted(), a.ExitCode(), b.Halted(), b.ExitCode())
	}
	if a.PC() != b.PC() {
		t.Fatalf("%s: pc mismatch: step %d run %d", ctx, a.PC(), b.PC())
	}
	for r := sparc.Reg(0); r < sparc.NumRegs; r++ {
		if a.Reg(r) != b.Reg(r) {
			t.Fatalf("%s: %s mismatch: step %d run %d", ctx, r, a.Reg(r), b.Reg(r))
		}
	}
	if a.ccb != b.ccb {
		t.Fatalf("%s: cc mismatch: step %v run %v", ctx, ccFromBits(a.ccb), ccFromBits(b.ccb))
	}
	if a.Instrs() != b.Instrs() {
		t.Fatalf("%s: instrs mismatch: step %d run %d", ctx, a.Instrs(), b.Instrs())
	}
	if a.Cycles() != b.Cycles() {
		t.Fatalf("%s: cycles mismatch: step %d run %d (over %d instrs)",
			ctx, a.Cycles(), b.Cycles(), a.Instrs())
	}
	if a.Output() != b.Output() {
		t.Fatalf("%s: output mismatch: step %q run %q", ctx, a.Output(), b.Output())
	}
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		t.Fatalf("%s: counters mismatch: step %v run %v", ctx, a.Counters, b.Counters)
	}
	if a.CacheStats() != b.CacheStats() {
		t.Fatalf("%s: cache stats mismatch:\nstep %+v\nrun  %+v", ctx, a.CacheStats(), b.CacheStats())
	}
}

// diffRun loads text into two fresh machines and executes one via Step and
// one via Run, then compares every observable.
func diffRun(t *testing.T, ctx string, text []sparc.Instr) {
	t.Helper()
	a := New(cache.DefaultConfig, DefaultCosts)
	b := New(cache.DefaultConfig, DefaultCosts)
	a.SetCounterCount(4)
	b.SetCounterCount(4)
	a.LoadText(text, 0)
	b.LoadText(text, 0)
	errA := stepAll(a)
	_, errB := b.Run()
	diffStates(t, ctx, a, b, errA, errB)
}

// randText generates a terminating program: straight-line ALU, memory, and
// counted instructions mixed with forward-only branches and calls, ending in
// an exit trap. Forward-only control transfer guarantees termination for any
// condition-code history.
func randText(r *rand.Rand, n int) []sparc.Instr {
	regs := []sparc.Reg{
		sparc.G1, sparc.G2, sparc.G3,
		sparc.O0, sparc.O1, sparc.O2, sparc.O3, sparc.O4, sparc.O5,
		sparc.L1, sparc.L2, sparc.L3, sparc.L4, sparc.L5,
		sparc.I0, sparc.I1, sparc.I2,
	}
	evenRegs := []sparc.Reg{sparc.O0, sparc.O2, sparc.O4, sparc.L2, sparc.L4, sparc.I0, sparc.I2}
	alu := []sparc.Op{
		sparc.Add, sparc.Sub, sparc.And, sparc.Andn, sparc.Or, sparc.Orn,
		sparc.Xor, sparc.Xnor, sparc.Sll, sparc.Srl, sparc.Sra, sparc.SMul,
		sparc.Addcc, sparc.Subcc, sparc.Andcc, sparc.Andncc, sparc.Orcc, sparc.Xorcc,
	}
	pick := func() sparc.Reg { return regs[r.Intn(len(regs))] }

	// %l0 holds the data base for every memory op.
	text := []sparc.Instr{
		{Op: sparc.Sethi, Rd: sparc.L0, Imm: int32(DataBase >> 10), UseImm: true},
	}
	for len(text) < n {
		i := int32(len(text))
		var in sparc.Instr
		switch k := r.Intn(100); {
		case k < 40:
			op := alu[r.Intn(len(alu))]
			if r.Intn(2) == 0 {
				in = sparc.RR(op, pick(), pick(), pick())
			} else {
				in = sparc.RI(op, pick(), int32(r.Intn(8192)-4096), pick())
			}
		case k < 52:
			in = sparc.Instr{Op: sparc.Ld, Rd: pick(), Rs1: sparc.L0,
				Imm: int32(r.Intn(1024)) * 4, UseImm: true}
		case k < 64:
			in = sparc.Instr{Op: sparc.St, Rd: pick(), Rs1: sparc.L0,
				Imm: int32(r.Intn(1024)) * 4, UseImm: true}
		case k < 68:
			op := sparc.Ldd
			if r.Intn(2) == 0 {
				op = sparc.Std
			}
			in = sparc.Instr{Op: op, Rd: evenRegs[r.Intn(len(evenRegs))],
				Rs1: sparc.L0, Imm: int32(r.Intn(512)) * 8, UseImm: true}
		case k < 72:
			in = sparc.Instr{Op: sparc.Sethi, Rd: pick(),
				Imm: int32(r.Intn(1 << 20)), UseImm: true}
		case k < 76:
			d := int32(r.Intn(200) - 100)
			if d == 0 {
				d = 7
			}
			in = sparc.RI(sparc.SDiv, pick(), d, pick())
		case k < 88:
			in = sparc.Instr{Op: sparc.Br, Cond: sparc.Cond(r.Intn(16)),
				Target: i + 1 + int32(r.Intn(6))}
		case k < 92:
			in = sparc.Instr{Op: sparc.Call, Target: i + 1 + int32(r.Intn(6))}
		default:
			in = sparc.Instr{Op: sparc.Nop}
		}
		if r.Intn(5) == 0 {
			in.Count = int32(r.Intn(4)) + 1
		}
		text = append(text, in)
	}
	exit := int32(len(text))
	for i := range text {
		switch text[i].Op {
		case sparc.Br, sparc.Call:
			if text[i].Target > exit {
				text[i].Target = exit
			}
		}
	}
	return append(text, sparc.Instr{Op: sparc.Ta, Imm: TrapExit, UseImm: true})
}

// TestDifferentialRandomPrograms runs many randomized instruction sequences
// through both execution paths and demands identical observables.
func TestDifferentialRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		text := randText(r, 80+r.Intn(400))
		diffRun(t, "seed "+string(rune('0'+seed%10))+"/len", text)
	}
}

// TestDifferentialFaults checks that both paths fault identically: same
// error text, same pc, and — because the block engine pre-charges nothing —
// same cycle and instruction counts at the fault.
func TestDifferentialFaults(t *testing.T) {
	base := sparc.Instr{Op: sparc.Sethi, Rd: sparc.L0, Imm: int32(DataBase >> 10), UseImm: true}
	textAlign := sparc.Instr{Op: sparc.Sethi, Rd: sparc.G1, Imm: int32(TextBase >> 10), UseImm: true}
	cases := []struct {
		name string
		text []sparc.Instr
	}{
		{"unaligned load", []sparc.Instr{
			base,
			sparc.RI(sparc.Add, sparc.L0, 2, sparc.L1),
			{Op: sparc.Ld, Rd: sparc.O0, Rs1: sparc.L1, UseImm: true},
			{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
		}},
		{"unaligned store", []sparc.Instr{
			base,
			sparc.RI(sparc.Or, sparc.G0, 1, sparc.O1),
			{Op: sparc.St, Rd: sparc.O1, Rs1: sparc.L0, Imm: 6, UseImm: true},
			{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
		}},
		{"division by zero", []sparc.Instr{
			sparc.RI(sparc.Or, sparc.G0, 100, sparc.O1),
			sparc.RR(sparc.SDiv, sparc.O1, sparc.G0, sparc.O2),
			{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
		}},
		{"ldd odd destination", []sparc.Instr{
			base,
			{Op: sparc.Ldd, Rd: sparc.O1, Rs1: sparc.L0, UseImm: true},
			{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
		}},
		{"std odd source", []sparc.Instr{
			base,
			{Op: sparc.Std, Rd: sparc.L3, Rs1: sparc.L0, UseImm: true},
			{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
		}},
		{"jmpl misaligned target", []sparc.Instr{
			textAlign,
			sparc.RI(sparc.Add, sparc.G1, 2, sparc.G1),
			{Op: sparc.Jmpl, Rd: sparc.G0, Rs1: sparc.G1, UseImm: true},
			{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
		}},
		{"jmpl below text", []sparc.Instr{
			{Op: sparc.Jmpl, Rd: sparc.G0, Rs1: sparc.G0, UseImm: true},
			{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
		}},
		{"jmpl past text", []sparc.Instr{
			textAlign,
			{Op: sparc.Jmpl, Rd: sparc.G0, Rs1: sparc.G1, Imm: 4096, UseImm: true},
			{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
		}},
		{"branch past text", []sparc.Instr{
			sparc.Branch(sparc.BA, 1000),
			{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
		}},
		{"run off the end", []sparc.Instr{
			sparc.RI(sparc.Add, sparc.G0, 1, sparc.O0),
			sparc.RI(sparc.Add, sparc.O0, 1, sparc.O0),
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { diffRun(t, c.name, c.text) })
	}
}

// TestDifferentialPatchMidRun patches text from a StoreHook while the store's
// own block is executing — the hardest invalidation case for the block
// engine, since the patched instruction sits later in the block currently
// being dispatched. Both machines run the same hook, so any divergence means
// block dispatch missed the invalidation.
func TestDifferentialPatchMidRun(t *testing.T) {
	// Loop storing %o1 and incrementing it; after the 5th store the hook
	// rewrites the increment (index 2, directly after the store at index 1
	// inside the same straight-line block) from +1 to +3.
	text := []sparc.Instr{
		{Op: sparc.Sethi, Rd: sparc.L0, Imm: int32(DataBase >> 10), UseImm: true},
		{Op: sparc.St, Rd: sparc.O1, Rs1: sparc.L0, UseImm: true},
		sparc.RI(sparc.Add, sparc.O1, 1, sparc.O1),
		sparc.RI(sparc.Subcc, sparc.O1, 100, sparc.G0),
		sparc.Branch(sparc.BL, 1),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
	patched := sparc.RI(sparc.Add, sparc.O1, 3, sparc.O1)

	mk := func() (*Machine, *int) {
		m := New(cache.DefaultConfig, DefaultCosts)
		m.LoadText(text, 0)
		stores := 0
		m.StoreHook = func(addr uint32, size int32) int64 {
			stores++
			if stores == 5 {
				if err := m.PatchInstr(2, patched); err != nil {
					t.Fatalf("patch: %v", err)
				}
			}
			return 0
		}
		return m, &stores
	}

	a, storesA := mk()
	b, storesB := mk()
	errA := stepAll(a)
	_, errB := b.Run()
	diffStates(t, "patch mid-run", a, b, errA, errB)
	if *storesA != *storesB {
		t.Fatalf("store hook fired %d times under Step, %d under Run", *storesA, *storesB)
	}
	if got := a.Reg(sparc.O1); got < 100 || got > 102 {
		t.Fatalf("final %%o1 = %d, want the patched +3 stride past 100", got)
	}
	if *storesA >= 100 {
		t.Fatalf("hook fired %d times; patch to +3 stride apparently ignored", *storesA)
	}
}

// TestDifferentialPatchInTrace is TestDifferentialPatchMidRun against the
// trace tier: both machines attach to a shared Image, so the store executes
// inside an eagerly compiled superblock when the hook patches an instruction
// the trace has already consumed. The trace must commit exactly the store,
// exit to the dispatcher, and re-dispatch against the privatized text.
func TestDifferentialPatchInTrace(t *testing.T) {
	text := []sparc.Instr{
		{Op: sparc.Sethi, Rd: sparc.L0, Imm: int32(DataBase >> 10), UseImm: true},
		{Op: sparc.St, Rd: sparc.O1, Rs1: sparc.L0, UseImm: true},
		sparc.RI(sparc.Add, sparc.O1, 1, sparc.O1),
		sparc.RI(sparc.Subcc, sparc.O1, 100, sparc.G0),
		sparc.Branch(sparc.BL, 1),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
	patched := sparc.RI(sparc.Add, sparc.O1, 3, sparc.O1)
	img := BuildImage(text, 0)

	mk := func() *Machine {
		m := New(cache.DefaultConfig, DefaultCosts)
		m.LoadImage(img)
		stores := 0
		m.StoreHook = func(addr uint32, size int32) int64 {
			stores++
			if stores == 5 {
				if err := m.PatchInstr(2, patched); err != nil {
					t.Fatalf("patch: %v", err)
				}
			}
			return 0
		}
		return m
	}

	a, b := mk(), mk()
	errA := stepAll(a)
	_, errB := b.Run()
	diffStates(t, "patch in trace", a, b, errA, errB)
	if b.imgShared {
		t.Fatal("patching machine still marked shared after PatchInstr")
	}
	if img.traces[1] == nil {
		t.Fatal("image lost its compiled trace after a sibling patched")
	}
	if got := b.Reg(sparc.O1); got < 100 || got > 102 {
		t.Fatalf("final %%o1 = %d, want the patched +3 stride past 100", got)
	}
}

// TestDifferentialPatchInFusedStore drives the same hazard through a fused
// add+st trace-op (tAddSt): the hook fires from the second half of a fused
// pair and patches the pair's own first instruction, so the mid-pair
// patch-exit protocol must commit both halves and land pc just past the
// store.
func TestDifferentialPatchInFusedStore(t *testing.T) {
	text := []sparc.Instr{
		{Op: sparc.Sethi, Rd: sparc.L0, Imm: int32(DataBase >> 10), UseImm: true},
		sparc.RI(sparc.Add, sparc.O1, 1, sparc.O1),
		{Op: sparc.St, Rd: sparc.O1, Rs1: sparc.L0, UseImm: true},
		sparc.RI(sparc.Subcc, sparc.O1, 100, sparc.G0),
		sparc.Branch(sparc.BL, 1),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
	patched := sparc.RI(sparc.Add, sparc.O1, 7, sparc.O1)
	img := BuildImage(text, 0)

	mk := func() *Machine {
		m := New(cache.DefaultConfig, DefaultCosts)
		m.LoadImage(img)
		stores := 0
		m.StoreHook = func(addr uint32, size int32) int64 {
			stores++
			if stores == 9 {
				if err := m.PatchInstr(1, patched); err != nil {
					t.Fatalf("patch: %v", err)
				}
			}
			return 0
		}
		return m
	}

	a, b := mk(), mk()
	errA := stepAll(a)
	_, errB := b.Run()
	diffStates(t, "patch in fused store", a, b, errA, errB)
}

// TestDifferentialWindowedCallTrace loops through a call -> save -> restore
// -> jmpl ring — the shape that exercises the trace tier's interior window
// ops, the dynamic jmpl terminator, and trace linking across the return —
// under both lazy (LoadText, hotness-compiled) and eager (Image) tiers.
func TestDifferentialWindowedCallTrace(t *testing.T) {
	text := []sparc.Instr{
		sparc.RI(sparc.Or, sparc.G0, 0, sparc.O0),
		{Op: sparc.Call, Target: 5},
		sparc.RI(sparc.Subcc, sparc.O0, 200, sparc.G0),
		sparc.Branch(sparc.BL, 1),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
		{Op: sparc.Save, Rd: sparc.G0, Rs1: sparc.G0, UseImm: true},
		sparc.RI(sparc.Add, sparc.I0, 1, sparc.I0),
		{Op: sparc.Restore, Rd: sparc.G0, Rs1: sparc.G0, UseImm: true},
		{Op: sparc.Jmpl, Rd: sparc.G0, Rs1: sparc.O7, UseImm: true},
	}
	diffRun(t, "windowed call loop", text)

	// Eager tier: same program from a shared image.
	img := BuildImage(text, 0)
	a := New(cache.DefaultConfig, DefaultCosts)
	b := New(cache.DefaultConfig, DefaultCosts)
	a.LoadImage(img)
	b.LoadImage(img)
	errA := stepAll(a)
	_, errB := b.Run()
	diffStates(t, "windowed call loop (image)", a, b, errA, errB)
}

// TestDifferentialPatchInFusedLoad mirrors TestDifferentialPatchInFusedStore
// for the read side: a LoadHook patches the loop body from inside a
// fused-load execution, and the trace tier must unwind to the patched text
// exactly like the step reference.
func TestDifferentialPatchInFusedLoad(t *testing.T) {
	text := []sparc.Instr{
		{Op: sparc.Sethi, Rd: sparc.L0, Imm: int32(DataBase >> 10), UseImm: true},
		sparc.RI(sparc.Add, sparc.O1, 1, sparc.O1),
		{Op: sparc.Ld, Rd: sparc.O2, Rs1: sparc.L0, UseImm: true},
		sparc.RI(sparc.Subcc, sparc.O1, 100, sparc.G0),
		sparc.Branch(sparc.BL, 1),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
	patched := sparc.RI(sparc.Add, sparc.O1, 7, sparc.O1)
	img := BuildImage(text, 0)

	mk := func() *Machine {
		m := New(cache.DefaultConfig, DefaultCosts)
		m.LoadImage(img)
		loads := 0
		m.LoadHook = func(addr uint32, size int32) int64 {
			loads++
			if loads == 9 {
				if err := m.PatchInstr(1, patched); err != nil {
					t.Fatalf("patch: %v", err)
				}
			}
			return 0
		}
		return m
	}

	a, b := mk(), mk()
	errA := stepAll(a)
	_, errB := b.Run()
	diffStates(t, "patch in fused load", a, b, errA, errB)
}
