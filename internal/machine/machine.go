// Package machine executes programs for the SPARC-subset ISA with a cycle
// cost model and a direct-mapped combined cache, reproducing the performance
// envelope of the workstation used in "Practical Data Breakpoints" (PLDI
// 1993).
//
// The machine is deliberately observable: the debugger side of the monitored
// region service reads and writes simulated memory directly, patches
// instructions at run time (Kessler-style fast breakpoints), and receives
// callbacks on monitor hits, range-check hits, and control-flow-check
// violations, all without perturbing the cycle count of the program being
// debugged except where the paper's design says it must.
package machine

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"databreak/internal/cache"
	"databreak/internal/sparc"
)

// Address-space layout. These are conventions shared with the assembler.
const (
	TextBase  uint32 = 0x0001_0000 // instruction addresses (4 bytes each)
	DataBase  uint32 = 0x2000_0000 // .data and .bss
	HeapBase  uint32 = 0x4000_0000 // trap-based allocator arena
	StackTop  uint32 = 0xEFFF_FFF0 // initial %sp (grows down)
	MonBase   uint32 = 0x8000_0000 // monitor library data structures
	PageBytes        = 1 << 12
)

// Trap numbers for the ta instruction.
const (
	TrapExit     int32 = iota // halt; exit code in %o0
	TrapPrintInt              // print %o0 as signed decimal + newline
	TrapPrintCh               // print %o0 as a byte
	TrapPrintStr              // print bytes at [%o0], length %o1
	TrapAlloc                 // %o0 = size in bytes -> %o0 = pointer
	TrapFree                  // free pointer in %o0
	TrapMonHit4               // monitor hit, 1 word,  address in %g5
	TrapMonHit8               // monitor hit, 2 words, address in %g5
	TrapRangeHit              // pre-header range check hit; site id in %o0
	TrapCtlCheck              // control-flow check violation; detail in %o0
	TrapMonRead4              // monitor hit on a 1-word READ, address in %g5
	TrapMonRead8              // monitor hit on a 2-word READ, address in %g5
)

// NWindows is the number of physical register windows. Deeper call chains
// trigger overflow spills, as on a real SPARC.
const NWindows = 8

// Costs parameterizes the cycle model. Zero value is not useful; use
// DefaultCosts.
type Costs struct {
	Base        int64 // every instruction
	MemExtra    int64 // extra cycles for a load/store that hits the cache
	MissPenalty int64 // additional cycles on any cache miss (ifetch or data)
	TakenBranch int64 // extra cycles for a taken branch/call/jmpl
	Mul         int64 // extra cycles for smul
	Div         int64 // extra cycles for sdiv
	Trap        int64 // extra cycles for ta (OS service entry/exit)
	WindowSpill int64 // extra cycles for window overflow or underflow
}

// DefaultCosts approximates the SPARCstation generation the paper measured:
// single-issue, 1-cycle register ops, loads 2 cycles on a hit, a handful of
// cycles on a miss (the paper's break-even analysis assumes loads take 2-8
// cycles), multi-cycle multiply/divide, and expensive traps.
var DefaultCosts = Costs{
	Base:        1,
	MemExtra:    1,
	MissPenalty: 8,
	TakenBranch: 1,
	Mul:         4,
	Div:         18,
	Trap:        40, // library-call cost: the trap services model libc routines
	WindowSpill: 64,
}

// Fault describes a runtime error in the simulated program.
type Fault struct {
	PC     int32
	Instr  sparc.Instr
	Reason string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("machine fault at pc=%d (%s): %s", f.PC, f.Instr, f.Reason)
}

type winRegs struct {
	o, l, i [8]int32
}

// Counters records dynamic event counts declared via sparc.Instr.Count.
type Counters []uint64

// Machine is a simulated processor plus memory. Create with New, load a
// program with LoadText/LoadData (usually via the asm package), then Run.
//
// A Machine is NOT safe for concurrent use: every method — execution (Run,
// RunFor, Step), debugger accesses (ReadWord, WriteWord, Reg, SetReg), and
// text patching (PatchInstr) — must be externally serialized. The intended
// multiplexing point is monitor.Session, whose per-machine mutex serializes
// control operations against execution slices; see DESIGN.md §7. Distinct
// Machines share nothing and may run on any number of goroutines.
type Machine struct {
	text []sparc.Instr
	// uops is the block-dispatch index derived from text; see blocks.go.
	// uops[i] is text[i] predecoded, and uops[i].bl counts the straight-line
	// instructions starting at i (0 when text[i] is a block terminator).
	// textGen increments on every text mutation so an in-flight block can
	// detect a patch landing under it.
	uops    []uop
	textGen uint32
	// imgShared marks text/uops as views into a shared Image (LoadImage):
	// they are read-only until PatchInstr privatizes both (copy-on-write,
	// see image.go). LoadText always installs private arrays. img retains
	// the attached image so the trace tier can reach its compiled traces.
	imgShared bool
	img       *Image
	// engine selects the Run/RunFor execution strategy; the trace-tier state
	// below is maintained by syncTraceState (trace.go). traces[i], when
	// non-nil, is the compiled trace registered at head i — the image's
	// immutable traces when imgShared, a private lazily-filled slice
	// otherwise. hot holds the per-head hotness counters driving lazy
	// compilation of private text; nil on shared images (compiled eagerly)
	// and under non-trace engines.
	engine Engine
	traces []*traceProg
	// cls is the closure tier (closure.go): cls[i], when non-nil, is the
	// threaded-closure compilation of traces[i]. Always per machine — the
	// closures capture this machine's register file and per-site page
	// memos — and non-nil exactly when EngineClosure is active over
	// non-empty text. Filled lazily on first dispatch of a traced head.
	cls []*closProg
	// cstate is execClosures' reusable spill area (closure.go): dispatching
	// a compiled closure chain must not allocate, and the pointer handed to
	// the closures would otherwise force a fresh heap cst per dispatch.
	cstate cst
	hot    []uint16
	// brProf is the per-branch-site edge profile driving trace compilation
	// for private text: low 16 bits count executions, high 16 taken, both
	// saturating (trace.go). The block dispatcher records it during the
	// hotness warm-up, so by the time a head compiles, its branches carry
	// measured bias instead of static guesses. nil on shared images and
	// under non-trace engines.
	brProf []uint32
	// hotThreshold/brProfMin are the trace-tier tuning knobs (trace.go
	// consts hold the defaults; SetHotThreshold/SetBrProfMin override).
	hotThreshold uint16
	brProfMin    uint32
	pc           int32
	// regs is the architecturally visible register file of the CURRENT
	// window, flat: %g0-%g7, %o0-%o7, %l0-%l7, %i0-%i7, plus one scratch
	// slot (index 32) that absorbs block-engine writes destined for %g0.
	// Keeping one flat view makes every register access a single index —
	// the interpreter's hottest operation — at the price of copying 24
	// words on the (rare) save/restore. regs[0] (%g0) and the scratch slot
	// are never read-visible, so reads need no guard. The array is sized
	// 256 so that any uint8 register index is provably in range: the block
	// engine's register accesses then compile without bounds checks.
	regs     [256]int32
	win      []winRegs // caller frames; win[len-1] is the direct parent
	resident int       // windows currently held in the register file
	// ccb is the condition-code register packed into the condMask bit
	// index (see blocks.go): N=8, Z=4, V=2, C=1. Branch evaluation is then
	// one table lookup; ccFromBits rebuilds the sparc.CC view on demand.
	ccb   uint8
	pages map[uint32]*[PageBytes]byte
	// pageCache short-circuits the pages map on the interpreter's
	// load/store path: direct-mapped by page number, so the stack page and
	// the globals page (which real programs alternate between every few
	// instructions) occupy distinct slots instead of evicting each other.
	// base 1 marks an empty slot (bases are always page aligned). Pages are
	// never removed from the map, so cached pointers never go stale.
	pageCache [nPageCache]pageCacheEnt

	cache *cache.Cache
	costs Costs

	cycles   int64
	instrs   int64
	halted   bool
	exitCode int32

	output bytes.Buffer

	heapNext uint32
	freeList map[uint32][]uint32 // size -> free pointers

	// MaxInstrs bounds execution (guard against runaway programs).
	MaxInstrs int64

	// PerInstrPenalty adds a fixed cycle cost to every instruction; the
	// trap-per-instruction (dbx-style) baseline strategy sets this.
	PerInstrPenalty int64

	// StoreHook, if non-nil, is consulted on every store with the effective
	// address and size; it returns extra cycles to charge. The page
	// protection and hardware watchpoint baselines use it.
	StoreHook func(addr uint32, size int32) int64

	// LoadHook, if non-nil, is consulted on every load with the effective
	// address and size; it returns extra cycles to charge. It is the load
	// mirror of StoreHook — the hardware-watchpoint baseline for read
	// watchpoints uses it — and it obeys the same contract in every engine:
	// the hook fires BEFORE the load's data access, observes exact simulated
	// counts, and may patch text (the block/trace/closure engines exit the
	// compiled region cleanly when it does).
	LoadHook func(addr uint32, size int32) int64

	// OnMonHit is invoked when check code raises TrapMonHit: a store touched
	// a monitored region. addr is the store's target, size 4 or 8.
	OnMonHit func(addr uint32, size int32)

	// OnMonRead is invoked for TrapMonRead: a load touched a monitored
	// region (the read-monitoring extension of §5).
	OnMonRead func(addr uint32, size int32)

	// OnRangeHit is invoked when a loop pre-header range check intersects a
	// monitored region; id identifies the pre-header site so the MRS can
	// re-insert the eliminated in-loop checks.
	OnRangeHit func(id int32)

	// OnCtlViolation is invoked when a control-flow integrity check fails
	// (indirect jump to an illegitimate target, or a corrupted %fp).
	OnCtlViolation func(detail int32)

	// Counters holds event counts; sized on demand by SetCounterCount.
	Counters Counters
}

// New returns a machine with the given cache geometry and cost model.
func New(cfg cache.Config, costs Costs) *Machine {
	m := &Machine{
		pages: make(map[uint32]*[PageBytes]byte),
		// Pre-size the window stack so deep call chains do not reallocate
		// it mid-run (the fault-free path stays allocation-free).
		win:          make([]winRegs, 0, 64),
		cache:        cache.New(cfg),
		costs:        costs,
		heapNext:     HeapBase,
		freeList:     make(map[uint32][]uint32),
		MaxInstrs:    4_000_000_000,
		hotThreshold: hotThreshold,
		brProfMin:    brProfMin,
	}
	for i := range m.pageCache {
		m.pageCache[i].base = 1 // never matches a page-aligned base
	}
	m.Reset()
	return m
}

// Reset restores registers, windows, cycle counts, heap, and cache to their
// initial state. Loaded text and data are preserved.
func (m *Machine) Reset() {
	m.regs = [256]int32{}
	m.win = m.win[:0]
	m.resident = 1
	m.ccb = 0
	m.pc = 0
	m.cycles = 0
	m.instrs = 0
	m.halted = false
	m.exitCode = 0
	m.output.Reset()
	m.heapNext = HeapBase
	m.freeList = make(map[uint32][]uint32)
	m.cache.Flush()
	m.cache.ResetStats()
	top := StackTop
	m.regs[sparc.O6] = int32(top)
	m.regs[sparc.I6] = int32(top)
	for i := range m.Counters {
		m.Counters[i] = 0
	}
}

// LoadText installs the program text and (re)builds the block-dispatch
// index. PC starts at entry (a text index). After LoadText the text slice is
// owned by the machine: all further mutation must go through PatchInstr so
// the block index stays coherent.
func (m *Machine) LoadText(text []sparc.Instr, entry int32) {
	if m.imgShared {
		// Drop the shared view before rebuildBlocks reuses uops capacity:
		// the old slice belongs to an Image other machines may be executing.
		m.uops = nil
		m.imgShared = false
	}
	m.text = text
	m.img = nil
	m.pc = entry
	m.rebuildBlocks()
	m.syncTraceState()
}

// SetEntry sets the initial pc (text index).
func (m *Machine) SetEntry(entry int32) { m.pc = entry }

// TextLen returns the number of instructions loaded.
func (m *Machine) TextLen() int { return len(m.text) }

// InstrAt returns the instruction at text index idx. ok is false when idx is
// outside the loaded text (the debugger asked for an address that is not
// code); no fault is raised, since this is a debugger-side read.
func (m *Machine) InstrAt(idx int32) (in sparc.Instr, ok bool) {
	if uint32(idx) >= uint32(len(m.text)) {
		return sparc.Instr{}, false
	}
	return m.text[idx], true
}

// PatchInstr replaces the instruction at text index idx, invalidating the
// corresponding I-cache line (as the real system's patching must) and the
// block-dispatch index entries covering idx. It is the ONLY supported way to
// mutate loaded text: bypassing it would leave the block engine executing
// stale predecoded instructions. An out-of-range idx returns an error and
// changes nothing — a bad patch address from the debugger must not crash the
// simulator.
//
// When the text came from a shared Image (LoadImage), the first patch
// privatizes the text and block-index arrays (copy-on-write), so the patch
// is visible only to this machine; siblings sharing the image are untouched.
func (m *Machine) PatchInstr(idx int32, in sparc.Instr) error {
	if uint32(idx) >= uint32(len(m.text)) {
		return fmt.Errorf("machine: patch index %d outside text (%d instructions)", idx, len(m.text))
	}
	m.privatize()
	m.text[idx] = in
	m.cache.Invalidate(TextBase + uint32(idx)*4)
	m.invalidateBlock(idx)
	// Drop every compiled trace whose consumed spans cover idx. (After a COW
	// privatization the private trace slice starts empty, so this is a no-op
	// there; the shared image's traces are immutable and stay with the
	// siblings.)
	m.invalidateTraces(idx)
	return nil
}

// LoadData copies raw bytes into memory at addr without cache traffic or
// cycle cost (loader action). Copies page-at-a-time, so loading a large
// data snapshot is one page lookup per 4 KiB, not per byte.
func (m *Machine) LoadData(addr uint32, data []byte) {
	for len(data) > 0 {
		p := m.page(addr)
		o := addr & (PageBytes - 1)
		n := copy(p[o:], data)
		data = data[n:]
		addr += uint32(n)
	}
}

// SetCounterCount sizes the event counter vector.
func (m *Machine) SetCounterCount(n int) {
	m.Counters = make(Counters, n)
}

// Cycles returns the accumulated cycle count.
func (m *Machine) Cycles() int64 { return m.cycles }

// Instrs returns the number of instructions executed.
func (m *Machine) Instrs() int64 { return m.instrs }

// Output returns everything the program printed.
func (m *Machine) Output() string { return m.output.String() }

// ExitCode returns the value passed to TrapExit.
func (m *Machine) ExitCode() int32 { return m.exitCode }

// Halted reports whether the program has exited.
func (m *Machine) Halted() bool { return m.halted }

// CacheStats returns the cache statistics so far.
func (m *Machine) CacheStats() cache.Stats { return m.cache.Stats() }

// Reg reads a register in the current window (debugger view).
func (m *Machine) Reg(r sparc.Reg) int32 { return m.readReg(r) }

// SetReg writes a register in the current window (debugger view). Writes to
// %g0 are ignored.
func (m *Machine) SetReg(r sparc.Reg, v int32) { m.writeReg(r, v) }

// PC returns the current text index.
func (m *Machine) PC() int32 { return m.pc }

const nPageCache = 64

type pageCacheEnt struct {
	base uint32
	p    *[PageBytes]byte
}

// pageCacheIdx maps an address to its page-cache slot. The page numbers the
// harness actually alternates between — globals (DataBase), heap (HeapBase),
// monitor structures (MonBase), segment-table entries, and the stack — are
// all offsets from power-of-two bases, so indexing by the LOW page-number
// bits alone (the old (addr>>12)&mask) made them systematically collide and
// thrash the cache into the pages map on every monitored store. Folding the
// high page-number bits in spreads those bases across distinct slots while
// keeping consecutive pages in consecutive slots.
func pageCacheIdx(addr uint32) uint32 {
	return ((addr >> 12) ^ (addr >> 20) ^ (addr >> 28)) & (nPageCache - 1)
}

// page returns the backing page for addr. The fast path — a direct-mapped
// page-cache hit — is one compare, small enough to inline into every load
// and store of the interpreter loop.
func (m *Machine) page(addr uint32) *[PageBytes]byte {
	base := addr &^ (PageBytes - 1)
	e := &m.pageCache[pageCacheIdx(addr)]
	if e.base == base {
		return e.p
	}
	return m.pageSlow(base)
}

// pageSlow is kept out of page's inlining budget so page itself stays small
// enough to inline into every load and store of the engine hot loops.
//
//go:noinline
func (m *Machine) pageSlow(base uint32) *[PageBytes]byte {
	p, ok := m.pages[base]
	if !ok {
		p = new([PageBytes]byte)
		m.pages[base] = p
	}
	m.pageCache[pageCacheIdx(base)] = pageCacheEnt{base: base, p: p}
	return p
}

func (m *Machine) pokeByte(addr uint32, b byte) {
	m.page(addr)[addr&(PageBytes-1)] = b
}

func (m *Machine) peekByte(addr uint32) byte {
	return m.page(addr)[addr&(PageBytes-1)]
}

// ReadWord reads a 32-bit big-endian word without cache traffic or cycle
// cost (debugger access).
func (m *Machine) ReadWord(addr uint32) int32 {
	p := m.page(addr)
	o := addr & (PageBytes - 1)
	if o+4 <= PageBytes {
		return int32(binary.BigEndian.Uint32(p[o : o+4]))
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		v = v<<8 | uint32(m.peekByte(addr+i))
	}
	return int32(v)
}

// WriteWord writes a 32-bit big-endian word without cache traffic or cycle
// cost, invalidating any cached copy (debugger access).
func (m *Machine) WriteWord(addr uint32, v int32) {
	p := m.page(addr)
	o := addr & (PageBytes - 1)
	u := uint32(v)
	if o+4 <= PageBytes {
		binary.BigEndian.PutUint32(p[o:o+4], u)
	} else {
		for i := uint32(0); i < 4; i++ {
			m.pokeByte(addr+i, byte(u>>(24-8*i)))
		}
	}
	m.cache.Invalidate(addr)
}

// readReg needs no %g0 special case: regs[0] is never written, so it stays
// zero.
func (m *Machine) readReg(r sparc.Reg) int32 {
	return m.regs[r]
}

func (m *Machine) writeReg(r sparc.Reg, v int32) {
	if r != sparc.G0 {
		m.regs[r] = v
	}
}

func (m *Machine) operand2(in *sparc.Instr) int32 {
	if in.UseImm {
		return in.Imm
	}
	return m.readReg(in.Rs2)
}

func (m *Machine) setCCAdd(a, b, r int32) {
	var bits uint8
	if r < 0 {
		bits = ccN
	}
	if r == 0 {
		bits |= ccZ
	}
	if (a >= 0 && b >= 0 && r < 0) || (a < 0 && b < 0 && r >= 0) {
		bits |= ccV
	}
	if uint32(r) < uint32(a) {
		bits |= ccC
	}
	m.ccb = bits
}

func (m *Machine) setCCSub(a, b, r int32) {
	var bits uint8
	if r < 0 {
		bits = ccN
	}
	if r == 0 {
		bits |= ccZ
	}
	if (a >= 0 && b < 0 && r < 0) || (a < 0 && b >= 0 && r >= 0) {
		bits |= ccV
	}
	if uint32(a) < uint32(b) {
		bits |= ccC
	}
	m.ccb = bits
}

func (m *Machine) setCCLogic(r int32) {
	var bits uint8
	if r < 0 {
		bits = ccN
	}
	if r == 0 {
		bits |= ccZ
	}
	m.ccb = bits
}

// dataAccess charges cache+cycle cost for an n-byte data access.
//
// Doubleword accesses (Ldd/Std) are one cache reference plus a MemExtra
// cycle for the second word, matching the paper's cost model of a doubleword
// as a single memory operation. That is exact, not an approximation, for any
// line size >= 8 bytes: Ldd/Std fault on addresses not 8-byte aligned, so
// ea and ea+4 always share a line and the second word's probe would be a
// guaranteed hit. dataAccess2 preserves the accounting when lines are
// narrower than a doubleword (then the second word always has its own line
// and IS probed). All four engines implement the same split.
func (m *Machine) dataAccess(addr uint32, kind cache.Kind) {
	m.cycles += m.costs.MemExtra
	if !m.cache.Access(addr, kind) {
		m.cycles += m.costs.MissPenalty
	}
}

// dataAccess2 charges the second word of a doubleword access at addr: a free
// ride on addr's line when the line covers both words (see dataAccess), a
// full probe of its own line otherwise.
func (m *Machine) dataAccess2(addr uint32, kind cache.Kind) {
	if second := addr + 4; m.cache.Line(second) != m.cache.Line(addr) {
		m.dataAccess(second, kind)
		return
	}
	m.cycles += m.costs.MemExtra
}

func (m *Machine) fault(in sparc.Instr, format string, args ...any) error {
	return &Fault{PC: m.pc, Instr: in, Reason: fmt.Sprintf(format, args...)}
}

// Step executes one instruction. It returns an error on a machine fault.
func (m *Machine) Step() error {
	if m.halted {
		return nil
	}
	// One unsigned compare covers both pc < 0 and pc >= len(text).
	if uint32(m.pc) >= uint32(len(m.text)) {
		return &Fault{PC: m.pc, Reason: "pc outside text"}
	}
	in := &m.text[m.pc]
	m.instrs++
	m.cycles += m.costs.Base + m.PerInstrPenalty
	if !m.cache.Access(TextBase+uint32(m.pc)*4, cache.IFetch) {
		m.cycles += m.costs.MissPenalty
	}
	if in.Count != 0 {
		m.Counters[in.Count-1]++
	}
	next := m.pc + 1

	switch in.Op {
	case sparc.Nop:
		// nothing

	case sparc.Ld:
		ea := uint32(m.readReg(in.Rs1) + m.operand2(in))
		if ea&3 != 0 {
			return m.fault(*in, "unaligned load at %#x", ea)
		}
		if m.LoadHook != nil {
			m.cycles += m.LoadHook(ea, 4)
		}
		m.dataAccess(ea, cache.DRead)
		m.writeReg(in.Rd, m.ReadWord(ea))

	case sparc.Ldd:
		ea := uint32(m.readReg(in.Rs1) + m.operand2(in))
		if ea&7 != 0 {
			return m.fault(*in, "unaligned ldd at %#x", ea)
		}
		if in.Rd&1 != 0 {
			return m.fault(*in, "ldd destination must be even")
		}
		if m.LoadHook != nil {
			m.cycles += m.LoadHook(ea, 8)
		}
		m.dataAccess(ea, cache.DRead)
		m.dataAccess2(ea, cache.DRead)
		m.writeReg(in.Rd, m.ReadWord(ea))
		m.writeReg(in.Rd+1, m.ReadWord(ea+4))

	case sparc.St:
		ea := uint32(m.readReg(in.Rs1) + m.operand2(in))
		if ea&3 != 0 {
			return m.fault(*in, "unaligned store at %#x", ea)
		}
		if m.StoreHook != nil {
			m.cycles += m.StoreHook(ea, 4)
		}
		m.dataAccess(ea, cache.DWrite)
		m.storeWord(ea, m.readReg(in.Rd))

	case sparc.Std:
		ea := uint32(m.readReg(in.Rs1) + m.operand2(in))
		if ea&7 != 0 {
			return m.fault(*in, "unaligned std at %#x", ea)
		}
		if in.Rd&1 != 0 {
			return m.fault(*in, "std source must be even")
		}
		if m.StoreHook != nil {
			m.cycles += m.StoreHook(ea, 8)
		}
		m.dataAccess(ea, cache.DWrite)
		m.dataAccess2(ea, cache.DWrite)
		m.storeWord(ea, m.readReg(in.Rd))
		m.storeWord(ea+4, m.readReg(in.Rd+1))

	case sparc.Add:
		m.writeReg(in.Rd, m.readReg(in.Rs1)+m.operand2(in))
	case sparc.Sub:
		m.writeReg(in.Rd, m.readReg(in.Rs1)-m.operand2(in))
	case sparc.And:
		m.writeReg(in.Rd, m.readReg(in.Rs1)&m.operand2(in))
	case sparc.Andn:
		m.writeReg(in.Rd, m.readReg(in.Rs1)&^m.operand2(in))
	case sparc.Or:
		m.writeReg(in.Rd, m.readReg(in.Rs1)|m.operand2(in))
	case sparc.Orn:
		m.writeReg(in.Rd, m.readReg(in.Rs1)|^m.operand2(in))
	case sparc.Xor:
		m.writeReg(in.Rd, m.readReg(in.Rs1)^m.operand2(in))
	case sparc.Xnor:
		m.writeReg(in.Rd, ^(m.readReg(in.Rs1) ^ m.operand2(in)))
	case sparc.Sll:
		m.writeReg(in.Rd, m.readReg(in.Rs1)<<(uint32(m.operand2(in))&31))
	case sparc.Srl:
		m.writeReg(in.Rd, int32(uint32(m.readReg(in.Rs1))>>(uint32(m.operand2(in))&31)))
	case sparc.Sra:
		m.writeReg(in.Rd, m.readReg(in.Rs1)>>(uint32(m.operand2(in))&31))
	case sparc.SMul:
		m.cycles += m.costs.Mul
		m.writeReg(in.Rd, m.readReg(in.Rs1)*m.operand2(in))
	case sparc.SDiv:
		m.cycles += m.costs.Div
		d := m.operand2(in)
		if d == 0 {
			return m.fault(*in, "division by zero")
		}
		m.writeReg(in.Rd, m.readReg(in.Rs1)/d)

	case sparc.Addcc:
		a, b := m.readReg(in.Rs1), m.operand2(in)
		r := a + b
		m.setCCAdd(a, b, r)
		m.writeReg(in.Rd, r)
	case sparc.Subcc:
		a, b := m.readReg(in.Rs1), m.operand2(in)
		r := a - b
		m.setCCSub(a, b, r)
		m.writeReg(in.Rd, r)
	case sparc.Andcc:
		r := m.readReg(in.Rs1) & m.operand2(in)
		m.setCCLogic(r)
		m.writeReg(in.Rd, r)
	case sparc.Andncc:
		r := m.readReg(in.Rs1) &^ m.operand2(in)
		m.setCCLogic(r)
		m.writeReg(in.Rd, r)
	case sparc.Orcc:
		r := m.readReg(in.Rs1) | m.operand2(in)
		m.setCCLogic(r)
		m.writeReg(in.Rd, r)
	case sparc.Xorcc:
		r := m.readReg(in.Rs1) ^ m.operand2(in)
		m.setCCLogic(r)
		m.writeReg(in.Rd, r)

	case sparc.Sethi:
		m.writeReg(in.Rd, in.Imm<<10)

	case sparc.Br:
		if condMask[in.Cond&15]>>uint32(m.ccb)&1 != 0 {
			m.cycles += m.costs.TakenBranch
			next = in.Target
		}

	case sparc.Call:
		m.writeReg(sparc.O7, int32(TextBase)+(m.pc+1)*4)
		m.cycles += m.costs.TakenBranch
		next = in.Target

	case sparc.Jmpl:
		dest := uint32(m.readReg(in.Rs1) + m.operand2(in))
		m.writeReg(in.Rd, int32(TextBase)+(m.pc+1)*4)
		if dest < TextBase || dest&3 != 0 {
			return m.fault(*in, "indirect jump to bad address %#x", dest)
		}
		idx := int32((dest - TextBase) / 4)
		if int(idx) >= len(m.text) {
			return m.fault(*in, "indirect jump outside text %#x", dest)
		}
		m.cycles += m.costs.TakenBranch
		next = idx

	case sparc.Save:
		v := m.readReg(in.Rs1) + m.operand2(in)
		// Push the caller's window; the new window sees the caller's %o
		// registers as its %i, with fresh %l and %o.
		var parent winRegs
		parent.o = [8]int32(m.regs[8:16])
		parent.l = [8]int32(m.regs[16:24])
		parent.i = [8]int32(m.regs[24:32])
		m.win = append(m.win, parent)
		copy(m.regs[24:32], parent.o[:])
		clear(m.regs[8:24])
		m.resident++
		if m.resident > NWindows-1 {
			m.resident = NWindows - 1
			m.cycles += m.costs.WindowSpill
		}
		m.writeReg(in.Rd, v)

	case sparc.Restore:
		if len(m.win) < 1 {
			return m.fault(*in, "register window underflow at top frame")
		}
		v := m.readReg(in.Rs1) + m.operand2(in)
		// This window's %i become the caller's %o; %l and %i reload from
		// the popped frame.
		ins := [8]int32(m.regs[24:32])
		parent := &m.win[len(m.win)-1]
		copy(m.regs[8:16], ins[:])
		copy(m.regs[16:24], parent.l[:])
		copy(m.regs[24:32], parent.i[:])
		m.win = m.win[:len(m.win)-1]
		m.resident--
		if m.resident < 1 {
			m.resident = 1
			m.cycles += m.costs.WindowSpill
		}
		m.writeReg(in.Rd, v)

	case sparc.Ta:
		if err := m.trap(in); err != nil {
			return err
		}

	case sparc.Unimp:
		return m.fault(*in, "unimplemented instruction executed")

	default:
		return m.fault(*in, "unknown opcode")
	}

	if !m.halted {
		m.pc = next
	}
	return nil
}

func (m *Machine) storeWord(addr uint32, v int32) {
	p := m.page(addr)
	o := addr & (PageBytes - 1)
	binary.BigEndian.PutUint32(p[o:o+4], uint32(v))
}

func (m *Machine) trap(in *sparc.Instr) error {
	switch in.Imm {
	case TrapExit:
		m.halted = true
		m.exitCode = m.readReg(sparc.O0)
	case TrapPrintInt:
		m.cycles += m.costs.Trap
		fmt.Fprintf(&m.output, "%d\n", m.readReg(sparc.O0))
	case TrapPrintCh:
		m.cycles += m.costs.Trap
		m.output.WriteByte(byte(m.readReg(sparc.O0)))
	case TrapPrintStr:
		m.cycles += m.costs.Trap
		addr := uint32(m.readReg(sparc.O0))
		n := m.readReg(sparc.O1)
		for i := int32(0); i < n; i++ {
			m.output.WriteByte(m.peekByte(addr + uint32(i)))
		}
	case TrapAlloc:
		m.cycles += m.costs.Trap
		size := uint32(m.readReg(sparc.O0))
		m.writeReg(sparc.O0, int32(m.alloc(size)))
	case TrapFree:
		m.cycles += m.costs.Trap
		// The allocator records block size in a hidden header word.
		ptr := uint32(m.readReg(sparc.O0))
		if ptr != 0 {
			size := uint32(m.ReadWord(ptr - 4))
			m.freeList[size] = append(m.freeList[size], ptr)
		}
	case TrapMonHit4, TrapMonHit8:
		m.cycles += m.costs.Trap
		size := int32(4)
		if in.Imm == TrapMonHit8 {
			size = 8
		}
		if m.OnMonHit != nil {
			m.OnMonHit(uint32(m.readReg(sparc.G5)), size)
		}
	case TrapMonRead4, TrapMonRead8:
		m.cycles += m.costs.Trap
		size := int32(4)
		if in.Imm == TrapMonRead8 {
			size = 8
		}
		if m.OnMonRead != nil {
			m.OnMonRead(uint32(m.readReg(sparc.G5)), size)
		}
	case TrapRangeHit:
		m.cycles += m.costs.Trap
		if m.OnRangeHit != nil {
			m.OnRangeHit(m.readReg(sparc.O0))
		}
	case TrapCtlCheck:
		m.cycles += m.costs.Trap
		if m.OnCtlViolation != nil {
			m.OnCtlViolation(m.readReg(sparc.O0))
		} else {
			return m.fault(*in, "control-flow check violation %d", m.readReg(sparc.O0))
		}
	default:
		return m.fault(*in, "unknown trap %d", in.Imm)
	}
	return nil
}

// alloc implements the trap allocator: size-segregated free lists over a
// bump arena, with a hidden size header so free can recycle exactly.
func (m *Machine) alloc(size uint32) uint32 {
	size = (size + 7) &^ 7
	if size == 0 {
		size = 8
	}
	if lst := m.freeList[size]; len(lst) > 0 {
		ptr := lst[len(lst)-1]
		m.freeList[size] = lst[:len(lst)-1]
		return ptr
	}
	// Header word + payload, 8-byte aligned payloads.
	m.heapNext = (m.heapNext + 7) &^ 7
	ptr := m.heapNext + 8
	m.WriteWord(ptr-4, int32(size))
	m.heapNext = ptr + size
	return ptr
}

// Run executes until the program exits, faults, or exceeds MaxInstrs.
//
// Under the default trace engine it dispatches a block at a time (blocks.go)
// and enters compiled traces at hot heads (trace.go); EngineBlock skips the
// trace tier; EngineStep runs the reference one-instruction loop. Simulated
// cycle and instruction counts are bit-identical across all three; only host
// time changes.
func (m *Machine) Run() (int32, error) {
	if m.engine == EngineStep {
		return m.runStep()
	}
	for !m.halted {
		if err := m.execBlocks(); err != nil {
			return 0, err
		}
		// execBlocks returned without error: budget exhausted, pc outside
		// text, or a terminator it does not handle. The checks below mirror
		// the order the single-Step loop applied them.
		if m.instrs >= m.MaxInstrs {
			return 0, fmt.Errorf("machine: exceeded MaxInstrs=%d at pc=%d", m.MaxInstrs, m.pc)
		}
		if uint32(m.pc) >= uint32(len(m.text)) {
			return 0, &Fault{PC: m.pc, Reason: "pc outside text"}
		}
		if err := m.Step(); err != nil {
			return 0, err
		}
	}
	return m.exitCode, nil
}

// runStep is Run under EngineStep: the single-instruction reference loop,
// with the budget and bounds errors raised at exactly the points the block
// engines raise them.
func (m *Machine) runStep() (int32, error) {
	for !m.halted {
		if m.instrs >= m.MaxInstrs {
			return 0, fmt.Errorf("machine: exceeded MaxInstrs=%d at pc=%d", m.MaxInstrs, m.pc)
		}
		if uint32(m.pc) >= uint32(len(m.text)) {
			return 0, &Fault{PC: m.pc, Reason: "pc outside text"}
		}
		if err := m.Step(); err != nil {
			return 0, err
		}
	}
	return m.exitCode, nil
}

// RunFor executes at most n further instructions, then returns with the
// machine ready to continue. It exists so a session scheduler can interleave
// debugger control operations (region create/delete, PatchInstr) with
// execution at block boundaries without holding a lock across a whole run.
//
// Simulated cycle and instruction counts over a sequence of RunFor slices
// are bit-identical to one uninterrupted Run: execBlocks clamps blocks
// exactly at the budget and its per-slice line caches are conservative (a
// cold re-entry re-probes the cache with identical hit/miss statistics).
//
// RunFor returns halted=true when the program exited (exit code in code).
// Exceeding the machine-wide MaxInstrs budget is an error, exactly as in
// Run; exhausting only the slice is a normal return.
func (m *Machine) RunFor(n int64) (code int32, halted bool, err error) {
	if m.halted {
		return m.exitCode, true, nil
	}
	if m.engine == EngineStep {
		return m.runForStep(n)
	}
	limit := m.instrs + n
	if limit > m.MaxInstrs {
		limit = m.MaxInstrs
	}
	saved := m.MaxInstrs
	m.MaxInstrs = limit // execBlocks clamps block budgets against this
	defer func() { m.MaxInstrs = saved }()
	for !m.halted && m.instrs < limit {
		if err := m.execBlocks(); err != nil {
			return 0, false, err
		}
		if m.instrs >= limit {
			break
		}
		if uint32(m.pc) >= uint32(len(m.text)) {
			return 0, false, &Fault{PC: m.pc, Reason: "pc outside text"}
		}
		if err := m.Step(); err != nil {
			return 0, false, err
		}
	}
	if m.halted {
		return m.exitCode, true, nil
	}
	if m.instrs >= saved {
		return 0, false, fmt.Errorf("machine: exceeded MaxInstrs=%d at pc=%d", saved, m.pc)
	}
	return 0, false, nil
}

// runForStep is RunFor under EngineStep, with the same slice semantics.
func (m *Machine) runForStep(n int64) (code int32, halted bool, err error) {
	limit := m.instrs + n
	if limit > m.MaxInstrs {
		limit = m.MaxInstrs
	}
	for !m.halted && m.instrs < limit {
		if uint32(m.pc) >= uint32(len(m.text)) {
			return 0, false, &Fault{PC: m.pc, Reason: "pc outside text"}
		}
		if err := m.Step(); err != nil {
			return 0, false, err
		}
	}
	if m.halted {
		return m.exitCode, true, nil
	}
	if m.instrs >= m.MaxInstrs {
		return 0, false, fmt.Errorf("machine: exceeded MaxInstrs=%d at pc=%d", m.MaxInstrs, m.pc)
	}
	return 0, false, nil
}
