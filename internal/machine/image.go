// Compile-once, run-many program images.
//
// An Image is the immutable, shareable form of a loaded program's text: the
// decoded sparc.Instr slice plus the predecoded µop/block index from
// blocks.go, built once by BuildImage and attached to any number of Machines
// with LoadImage. Sharing is safe because every execution path only READS
// text and uops; the one mutation path, PatchInstr, privatizes both arrays
// on first write (copy-on-write), so a Kessler-style runtime patch in one
// machine — the PreMonitor/PostMonitor flow, elim.Runtime arming a site —
// can never leak into a sibling sharing the same image. This is the
// self-modifying-code hazard of "Instrumenting self-modifying code"
// (PAPERS.md) resolved in the direction the paper's design wants: the shared
// artifact stays pristine, the patching debuggee pays a one-time copy.
//
// Simulated cycle and instruction counts are bit-identical between LoadText
// and LoadImage by construction: both install the same decoded text and the
// same block index, and neither touches the cache model. The differential
// suite (image_test.go) pins this.
package machine

import (
	"sync"
	"unsafe"

	"databreak/internal/sparc"
)

// Image is an immutable predecoded program text. Build with BuildImage;
// attach with Machine.LoadImage. A single Image may back any number of
// Machines on any number of goroutines concurrently — it is never written
// after BuildImage returns.
type Image struct {
	text  []sparc.Instr
	uops  []uop
	entry int32
	// traces holds the eagerly compiled trace tier (trace.go), one slot per
	// text index, non-nil at compiled block heads. Like text and uops it is
	// immutable after BuildImage: machines enter traces read-only, and a
	// patching machine privatizes away from the whole image first.
	// traceShift is the I-line shift the traces were compiled for (the
	// default cache geometry); machines with a different geometry compile
	// their own traces instead (syncTraceState).
	traces     []*traceProg
	traceShift uint32
	// cls caches the closure tier's shared threaded form of the traces
	// above, keyed by the cost model the item streams bake in. BuildImage
	// cannot compile it (there is no machine, hence no cost model, at build
	// time), so the first closure-engine attach per cost model pays the
	// threading cost and every later attach reuses the published slice.
	// Published slices and their closProgs are immutable, exactly like
	// traces: the lazy-compile paths in exitNext and the block dispatcher
	// only fill nil slots, and a shared slice has a non-nil slot wherever
	// traces does, so those paths never write to it. Deliberately NOT part
	// of SizeBytes: retained-bytes accounting must not depend on which
	// engine has run (the benchmark reports diff it across engines).
	clsMu sync.Mutex
	cls   map[Costs][]*closProg
}

// BuildImage decodes text into a shareable image with the given entry point
// (a text index). The input slice is copied, so the caller may reuse it.
// Trace compilation happens here too — eagerly, for every block head — so
// the cost is paid once per image, not per attached machine.
func BuildImage(text []sparc.Instr, entry int32) *Image {
	img := &Image{
		text:  make([]sparc.Instr, len(text)),
		entry: entry,
	}
	copy(img.text, text)
	img.uops = buildUops(img.text, nil)
	img.traceShift = defaultLineShift()
	img.traces = buildTraces(img.text, img.uops, entry, img.traceShift)
	return img
}

// Len returns the number of instructions in the image.
func (img *Image) Len() int { return len(img.text) }

// Entry returns the image's entry point (a text index).
func (img *Image) Entry() int32 { return img.entry }

// SizeBytes reports the host memory held by the image (text + block index +
// compiled traces), for artifact-cache accounting.
func (img *Image) SizeBytes() int {
	return len(img.text)*int(unsafe.Sizeof(sparc.Instr{})) +
		len(img.uops)*int(unsafe.Sizeof(uop{})) +
		len(img.traces)*int(unsafe.Sizeof((*traceProg)(nil))) +
		img.TraceBytes()
}

// TraceBytes reports the portion of SizeBytes held by the compiled trace
// tier alone (trace headers, op streams, invalidation spans) — the part
// that scales with how much of the text went hot, reported separately so
// cache accounting can distinguish code from trace footprint.
func (img *Image) TraceBytes() int {
	n := 0
	for _, tr := range img.traces {
		if tr != nil {
			n += int(unsafe.Sizeof(traceProg{})) +
				len(tr.ops)*int(unsafe.Sizeof(top{})) +
				len(tr.spans)*8
		}
	}
	return n
}

// sharedClosures returns the image's shared closure tier for m's cost
// model, threading every compiled trace eagerly on the first request per
// model (the per-model map stays tiny: one entry per distinct Costs that
// ever attaches a closure-engine machine to this image).
func (img *Image) sharedClosures(m *Machine) []*closProg {
	img.clsMu.Lock()
	defer img.clsMu.Unlock()
	cls, ok := img.cls[m.costs]
	if !ok {
		cls = make([]*closProg, len(img.text))
		for i, tr := range img.traces {
			if tr != nil {
				cls[i] = m.compileClosures(tr)
			}
		}
		if img.cls == nil {
			img.cls = make(map[Costs][]*closProg, 1)
		}
		img.cls[m.costs] = cls
	}
	return cls
}

// buildUops decodes text into its block index, reusing buf's capacity when
// possible. It is the single decode pass shared by LoadText (private text)
// and BuildImage (shared image): for every index i, the entry holds the
// predecoded µop and the straight-line run length starting at i (see
// blocks.go).
func buildUops(text []sparc.Instr, buf []uop) []uop {
	n := len(text)
	if cap(buf) < n {
		buf = make([]uop, n)
	}
	buf = buf[:n]
	next := int32(0) // bl of index i+1
	for i := n - 1; i >= 0; i-- {
		u, ok := decodeUop(&text[i])
		if ok {
			next = min(next+1, maxBlockLen)
		} else {
			next = 0
		}
		u.bl = next
		buf[i] = u
	}
	return buf
}

// LoadImage attaches a shared image: the machine executes directly from the
// image's text and block index with no copying. PC starts at the image's
// entry point. The first PatchInstr after LoadImage privatizes the text and
// µop arrays (copy-on-write), so patches stay invisible to every other
// machine sharing img. Counts are bit-identical to LoadText of the same
// text (see image_test.go).
func (m *Machine) LoadImage(img *Image) {
	m.text = img.text
	m.uops = img.uops
	m.imgShared = true
	m.img = img
	m.pc = img.entry
	m.textGen++
	m.syncTraceState()
}

// privatize gives the machine its own copy of the text and block index. It
// is the copy-on-write half of LoadImage: called by PatchInstr before the
// first mutation, it guarantees no write ever lands in a shared image. The
// image's compiled traces are dropped for THIS machine only — they were
// built against text this machine is about to diverge from — while siblings
// sharing the image keep executing them untouched; the patching machine's
// hot heads recompile privately via the hotness counters.
func (m *Machine) privatize() {
	if !m.imgShared {
		return
	}
	text := make([]sparc.Instr, len(m.text))
	copy(text, m.text)
	uops := make([]uop, len(m.uops))
	copy(uops, m.uops)
	m.text = text
	m.uops = uops
	m.imgShared = false
	m.img = nil
	m.syncTraceState()
}
