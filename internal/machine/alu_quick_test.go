package machine

import (
	"testing"
	"testing/quick"

	"databreak/internal/cache"
	"databreak/internal/sparc"
)

// evalOne executes a single register-register ALU instruction on fresh
// machine state and returns the result plus condition codes.
func evalOne(t *testing.T, op sparc.Op, a, b int32) (int32, sparc.CC) {
	t.Helper()
	m := New(cache.DefaultConfig, DefaultCosts)
	m.LoadText([]sparc.Instr{
		sparc.RR(op, sparc.O1, sparc.O2, sparc.O0),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}, 0)
	m.SetReg(sparc.O1, a)
	m.SetReg(sparc.O2, b)
	if _, err := m.Run(); err != nil {
		t.Fatalf("%v(%d,%d): %v", op, a, b, err)
	}
	return m.Reg(sparc.O0), ccFromBits(m.ccb)
}

// TestALUMatchesGoSemantics drives every ALU op with random operands and
// checks against Go's int32 arithmetic (the reference semantics shared with
// the mini-C interpreter).
func TestALUMatchesGoSemantics(t *testing.T) {
	type alucase struct {
		op   sparc.Op
		eval func(a, b int32) int32
	}
	cases := []alucase{
		{sparc.Add, func(a, b int32) int32 { return a + b }},
		{sparc.Sub, func(a, b int32) int32 { return a - b }},
		{sparc.And, func(a, b int32) int32 { return a & b }},
		{sparc.Andn, func(a, b int32) int32 { return a &^ b }},
		{sparc.Or, func(a, b int32) int32 { return a | b }},
		{sparc.Orn, func(a, b int32) int32 { return a | ^b }},
		{sparc.Xor, func(a, b int32) int32 { return a ^ b }},
		{sparc.Xnor, func(a, b int32) int32 { return ^(a ^ b) }},
		{sparc.Sll, func(a, b int32) int32 { return a << (uint32(b) & 31) }},
		{sparc.Srl, func(a, b int32) int32 { return int32(uint32(a) >> (uint32(b) & 31)) }},
		{sparc.Sra, func(a, b int32) int32 { return a >> (uint32(b) & 31) }},
		{sparc.SMul, func(a, b int32) int32 { return a * b }},
	}
	for _, c := range cases {
		c := c
		f := func(a, b int32) bool {
			got, _ := evalOne(t, c.op, a, b)
			return got == c.eval(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", c.op, err)
		}
	}
}

// TestSubccConditionCodesMatchComparisons checks that after subcc the full
// set of signed and unsigned branch conditions agrees with Go comparisons —
// the property every emitted cmp/branch pair relies on.
func TestSubccConditionCodesMatchComparisons(t *testing.T) {
	f := func(a, b int32) bool {
		_, cc := evalOne(t, sparc.Subcc, a, b)
		checks := []struct {
			cond sparc.Cond
			want bool
		}{
			{sparc.BE, a == b}, {sparc.BNE, a != b},
			{sparc.BL, a < b}, {sparc.BLE, a <= b},
			{sparc.BG, a > b}, {sparc.BGE, a >= b},
			{sparc.BLU, uint32(a) < uint32(b)}, {sparc.BGEU, uint32(a) >= uint32(b)},
			{sparc.BGU, uint32(a) > uint32(b)}, {sparc.BLEU, uint32(a) <= uint32(b)},
		}
		for _, ch := range checks {
			if ch.cond.Eval(cc) != ch.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestSDivMatchesGo checks truncating division on non-zero divisors.
func TestSDivMatchesGo(t *testing.T) {
	f := func(a, b int32) bool {
		if b == 0 {
			return true
		}
		if a == -1<<31 && b == -1 {
			return true // overflow case: Go panics; hardware result undefined
		}
		got, _ := evalOne(t, sparc.SDiv, a, b)
		return got == a/b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMemoryWordRoundTripQuick: WriteWord/ReadWord round-trips any value at
// any aligned address.
func TestMemoryWordRoundTripQuick(t *testing.T) {
	m := New(cache.DefaultConfig, DefaultCosts)
	f := func(addr uint32, v int32) bool {
		a := addr &^ 3
		m.WriteWord(a, v)
		return m.ReadWord(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
