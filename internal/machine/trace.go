// Trace/superblock compiler tier.
//
// The block engine (blocks.go) already amortizes dispatch over straight-line
// runs, but it still pays a switch on the generic µop encoding for every
// instruction and a fresh dispatch at every terminator. This tier goes one
// step further: a hot block head is compiled into a trace — a threaded-code
// array of specialized trace-ops (top) covering the straight-line run AND the
// statically-predicted path beyond it, stitched across unconditional
// branches, calls, and conditional branches predicted taken (backward) or
// not-taken (forward). Common adjacent pairs are fused into one trace-op
// (sethi+or constant synthesis, subcc+branch compare-and-branch), and
// operand-2 forms that are immediate-only at compile time drop the register
// read entirely. A trace whose last op branches back to its own entry is a
// loop trace: one execTrace call retires whole iterations without returning
// to the dispatcher.
//
// The proof obligation is unchanged from blocks.go: simulated instruction
// counts, cycles, cache statistics, event counters, and fault points must be
// bit-identical to the single-Step engine. Everything data-dependent —
// cache probes (through the same known-hit line trackers execBlocks uses,
// threaded in and out of execTrace so residency knowledge survives the
// transition), StoreHook, event counters, the MaxInstrs budget — fires in
// program order. Static prediction never speculates state: a mispredicted
// branch is a side exit that commits exactly the instructions architecturally
// executed and returns to the dispatcher.
//
// Compilation points:
//   - BuildImage compiles traces for every block head eagerly; they live in
//     the immutable Image and are shared by every attached machine.
//   - LoadText installs per-head hotness counters instead; a head that
//     dispatches hotThreshold times is compiled on the machine's own dime.
//
// Patch safety (the self-modifying-code hazard, DESIGN.md §9): PatchInstr
// nils every private trace whose consumed-index spans cover the patched
// index; on a shared image it privatizes first, which drops the image's
// traces for the patching machine only (siblings keep executing the immutable
// image traces). A patch landing while a trace is executing — only possible
// from a StoreHook or LoadHook — is caught by the textGen generation check
// after the access, exactly as in execBlocks, and the trace exits cleanly
// after the hooked instruction so the dispatcher re-enters against fresh
// state.
package machine

import (
	"encoding/binary"
	"fmt"
	"unsafe"

	"databreak/internal/cache"
	"databreak/internal/sparc"
)

// Engine selects how Run/RunFor execute. The zero value is EngineTrace: the
// trace tier is the default, and every engine produces bit-identical
// simulated counts, so the choice is purely a host-speed/diagnosis knob.
type Engine uint8

const (
	// EngineTrace dispatches blocks and enters compiled traces at hot heads.
	EngineTrace Engine = iota
	// EngineBlock is the PR-2 block-dispatch engine with no trace tier.
	EngineBlock
	// EngineStep executes one instruction at a time through Step — the
	// reference semantics the other engines are measured against.
	EngineStep
	// EngineClosure compiles each trace into threaded Go closures
	// (closure.go): same traces, same accounting, no per-op switch.
	EngineClosure
)

func (e Engine) String() string {
	switch e {
	case EngineTrace:
		return "trace"
	case EngineBlock:
		return "block"
	case EngineStep:
		return "step"
	case EngineClosure:
		return "closure"
	}
	return fmt.Sprintf("engine?%d", uint8(e))
}

// ParseEngine converts a flag value ("step", "block", "trace", "closure") to
// an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "trace":
		return EngineTrace, nil
	case "block":
		return EngineBlock, nil
	case "step":
		return EngineStep, nil
	case "closure":
		return EngineClosure, nil
	}
	return EngineTrace, fmt.Errorf("machine: unknown engine %q (want step, block, trace, or closure)", s)
}

// SetEngine selects the execution engine. Safe at any point the machine is
// not running; switching engines mid-program keeps all simulated counts
// correct (they are engine-independent by construction).
func (m *Machine) SetEngine(e Engine) {
	m.engine = e
	m.syncTraceState()
}

// Engine returns the currently selected execution engine.
func (m *Machine) Engine() Engine { return m.engine }

// hotThreshold is the default for how many times a block head must dispatch
// before LoadText text compiles a trace for it. Image text skips the counter
// entirely (BuildImage compiles eagerly). 64 is low enough that every loop
// that matters compiles within noise, high enough that straight-through
// startup code never pays compilation. Tunable per machine via
// SetHotThreshold (the EXPERIMENTS.md sweep confirms 64 as the default).
const hotThreshold = 64

// SetHotThreshold overrides the per-head dispatch count that triggers lazy
// trace compilation of private text (default 64). Clamped to [1, 65534];
// values already counted keep their progress. Image text is unaffected
// (compiled eagerly at BuildImage).
func (m *Machine) SetHotThreshold(n int) {
	if n < 1 {
		n = 1
	}
	if n > int(hotNever)-1 {
		n = int(hotNever) - 1
	}
	m.hotThreshold = uint16(n)
}

// SetBrProfMin overrides the branch-site execution count below which the
// edge profile is ignored in favor of static prediction (default 8).
func (m *Machine) SetBrProfMin(n int) {
	if n < 1 {
		n = 1
	}
	m.brProfMin = uint32(n)
}

// hotNever marks a head whose compilation was attempted and declined
// (trivial trace); it is never retried.
const hotNever = ^uint16(0)

// minTraceInstrs rejects traces too short to amortize the execTrace call.
const minTraceInstrs = 3

// topOp is a trace-op opcode. Plain ops mirror the block engine's semantics
// with operand-2 unification; *I variants are immediate-only specializations
// that skip the regs[s2r] read; the control ops encode the compile-time
// branch prediction; tCmpBr*/tSet2 are fused two-instruction ops.
type topOp uint8

const (
	tNop topOp = iota
	tLd        // rd = mem[rs1 + regs[s2r] + imm]
	tLdI       // rd = mem[rs1 + imm]
	tLdd
	tSt // mem[rs1 + regs[s2r] + imm] = rd
	tStI
	tStd
	tAdd
	tAddI
	tSub
	tSubI
	tAnd
	tAndn
	tOr
	tOrI
	tOrn
	tXor
	tXnor
	tSll
	tSllI
	tSrl
	tSrlI
	tSra
	tSMul
	tSDiv
	tAddcc
	tSubcc
	tAndcc
	tAndncc
	tOrcc
	tXorcc
	tSet  // sethi: rd = imm (pre-shifted)
	tSet2 // fused sethi+or: rd = imm, two instructions wide

	tBr     // conditional, predicted not taken: side exit when taken
	tBrT    // conditional, predicted taken (stitched): side exit on fall-through
	tBrLoop // conditional back-edge to the trace entry: new pass when taken
	tBA     // unconditional stitched branch: taken cost, keep going
	tBALoop // unconditional back-edge to the trace entry
	tCall   // stitched call: rd(%o7) = return address, taken cost, keep going

	// Window and indirect-jump ops. save/restore are pure register-window
	// shuffles in this subset (no memory traffic), so they compile as
	// interior ops; jmpl ends the trace with a computed exit that feeds
	// straight into trace linking, which is what lets one chained execTrace
	// call run caller -> callee -> return without a dispatcher round-trip.
	tSave
	tRestore
	tJmpl // terminator: validates the target, side-exits to Step on a bad one

	tCmpBr     // fused subcc+branch, predicted not taken (two wide)
	tCmpBrT    // fused subcc+branch, predicted taken
	tCmpBrLoop // fused subcc+branch back-edge to the trace entry

	// tEnd terminates every trace's op array: it commits the completed pass
	// and transfers to exitPC. A synthetic op (no instruction, no fetch), it
	// lets the interpreter walk ops with a raw pointer instead of paying an
	// index bound check per op — the walk provably stops at tEnd, and every
	// other path out of a pass is an explicit goto.
	tEnd

	// Fused interior pairs (two instructions, one dispatch). These are the
	// dominant dynamic adjacencies of the compiled workloads — the
	// load/scale/index address chains minic emits — measured on eqntott:
	// ld+sll 10.8%, add+ld 10.5%, or+ld 8.8%, sll+add 11.2%, ld+subcc 4.8%,
	// ld+or 3.3% of all adjacent pairs. The second slot's operands live in
	// rd2/rs1b/s2rb/imm2; both halves execute in program order, so any
	// dataflow between them (or none) is correct by construction.
	tLdSll  // ld then sll
	tLdOr   // ld then or
	tLdCmp  // ld then subcc
	tSllAdd // sll then add
	tAddLd  // add then ld
	tOrLd   // or then ld
	tLdLd   // ld then ld
	tLdSt   // ld then st
	tAddSt  // add then st
	tSubSt  // sub then st
	tOrAdd  // or then add
	tOrSub  // or then sub

	// Fused interior triples (three instructions, one dispatch), the next
	// rung of the same ladder: the dominant dynamic straight-line triples of
	// the compiled workloads, measured by mrsbench -trace-stats — the
	// load/scale/index address chains (eqntott ld+sll+add 11.8%, sll+add+ld
	// 11.4%, or+ld+sll 8.5%; the same shapes lead doduc/nasker/spice2g6/
	// matrix300/tomcatv), espresso's mask-merge or chains (or+or+or 9.9%),
	// the pointer-chase step ld+add+ld (li 5.5%, gcc 4.8%), sethi+or+memop
	// address materialization (sethi+or+ld 7-11% everywhere), and the
	// canonical read-modify-write ld+op+st of the global update pattern.
	// The third slot's operands live in rd3/rs1c/s2rc with its immediate in
	// tgt (free on interior ops); all three slots execute in program order,
	// so intra-run dataflow — including a load clobbering its own address
	// register — is correct by construction. Triples are only formed when no
	// instruction is counted.
	tLdSllAdd // ld, sll, add — the scaled-index address chain
	tSllAddLd // sll, add, ld
	tOrLdSll  // or, ld, sll
	tAddLdSll // add, ld, sll
	tLdAddLd  // ld, add, ld — the pointer-chase step
	tOrOrOr   // or, or, or — espresso's mask-merge chain
	tSet2Ld   // sethi, or, ld — load through a materialized address
	tSet2St   // sethi, or, st — store through a materialized address
	// Read-modify-write triples: ld [a], r; op r, x, r; st r, [a]. Only
	// fused when the store's address expression is textually the load's
	// (sameAddr), so the third slot needs just the value register rd3 — the
	// address recomputes from the FIRST slot's operand fields at store time,
	// which is exactly program order even when the op half clobbers an
	// address register.
	tLdAddSt
	tLdSubSt
	tLdOrSt

	// topOpEnd is one past the last real trace-op; closure.go's synthetic
	// item kinds start here.
	topOpEnd

	// topCount is or-ed into op when the instruction carries an event
	// counter; the interpreter's default case bumps the counter, strips the
	// flag, and re-dispatches (same trick as blocks.go opCount). Fused ops
	// are only formed when neither instruction is counted.
	topCount topOp = 0x80
)

// top is one trace-op: a specialized instruction (or fused pair) plus the
// bookkeeping needed for exact accounting. 32 bytes, so a 64-byte line holds
// two ops.
type top struct {
	op   topOp
	rd   uint8 // destination (source for stores); scratchReg absorbs %g0
	rs1  uint8
	s2r  uint8 // operand-2 register (%g0 slot for immediate forms)
	cond uint8 // branch condition (condMask index) for control ops
	rd2  uint8 // fused pairs: second instruction's destination
	rs1b uint8 // fused pairs: second instruction's rs1
	s2rb uint8 // fused pairs: second instruction's operand-2 register
	// nl marks compile-time I-line boundaries under the trace's shift:
	// bit0 — this op's (first) fetch is on a different line than the
	// previous op's last fetch in pass order (always set on the first op);
	// bit1 — a fused op's second fetch crosses a line from its first;
	// bit2 — a fused triple's third fetch crosses a line from its second. A
	// clear bit plus a live curILine proves the fetch hits without even
	// computing the line number.
	nl   uint8
	rd3  uint8  // fused triples: third instruction's destination
	ni   uint16 // simulated instructions retired before this op in one pass
	cnt  uint16 // event counter index+1; 0 means none
	rs1c uint8  // fused triples: third instruction's rs1
	s2rc uint8  // fused triples: third instruction's operand-2 register
	imm  int32  // operand-2 immediate / synthesized constant
	imm2 int32  // fused pairs: second instruction's operand-2 immediate
	// tgt: branch or call target (text index); free on interior ops, where a
	// fused triple stores its third instruction's immediate instead.
	tgt int32
	// iaddr is the fetch address of the op's (first) instruction; the text
	// index is (iaddr-TextBase)/4, so side exits need no extra field.
	iaddr uint32
}

// traceProg is one compiled trace. Immutable after compileTrace returns, so
// traces may be shared across machines (Image) and read while another
// machine invalidates its own slice entries.
type traceProg struct {
	entry      int32  // head text index the trace is registered under
	exitPC     int32  // pc installed when a pass runs off the tail
	shift      uint32 // I-line shift the nl bits were computed under
	passInstrs int64  // simulated instructions one full pass retires
	ops        []top
	// spans are the sorted, disjoint [lo,hi) text-index ranges the trace
	// consumed; PatchInstr invalidates any trace whose span covers the
	// patched index.
	spans [][2]int32
}

// covers reports whether text index idx is part of the trace.
func (tr *traceProg) covers(idx int32) bool {
	for _, s := range tr.spans {
		if idx >= s[0] && idx < s[1] {
			return true
		}
	}
	return false
}

// syncTraceState (re)establishes the engine-dependent trace state after any
// event that changes what the dispatcher may execute: engine selection, text
// installation, or COW privatization. Invariant: m.traces is non-nil exactly
// when the trace (or closure) engine is active over non-empty text, so
// execBlocks gates the whole tier on one nil check; m.cls is non-nil exactly
// when the closure engine is active over non-empty text.
func (m *Machine) syncTraceState() {
	traced := m.engine == EngineTrace || m.engine == EngineClosure
	if !traced || len(m.text) == 0 {
		m.traces, m.hot, m.brProf, m.cls = nil, nil, nil, nil
		return
	}
	shared := m.imgShared && m.img.traceShift == m.cache.LineShift()
	if shared {
		// Shared image with matching cache geometry: the immutable, eagerly
		// compiled traces. No hotness counters or edge profile — there is
		// nothing left to compile.
		m.traces = m.img.traces
		m.hot, m.brProf = nil, nil
	} else {
		// Private text — or a shared image whose traces were compiled for a
		// different I-line geometry, which this machine cannot execute (the nl
		// bits would mis-batch fetch accounting): compile privately, driven by
		// the hotness counters. The shared text itself is still borrowed.
		m.traces = make([]*traceProg, len(m.text))
		m.hot = make([]uint16, len(m.text))
		m.brProf = make([]uint32, len(m.text))
	}
	if m.engine == EngineClosure {
		// The threaded form is machine-independent data — items bake in only
		// the trace stream and the cost model — so machines attached to a
		// shared image share one compiled closure tier per cost model
		// (image.go). Private text threads its own, lazily, as traces
		// appear.
		if shared {
			m.cls = m.img.sharedClosures(m)
		} else {
			m.cls = make([]*closProg, len(m.text))
		}
	} else {
		m.cls = nil
	}
}

// noteHot counts a dispatch of private-text head pc and compiles a trace
// once the head crosses hotThreshold. Called from the dispatcher only when
// m.hot is non-nil and m.traces[pc] is nil.
func (m *Machine) noteHot(pc int32) {
	h := m.hot[pc]
	switch {
	case h >= m.hotThreshold: // hotNever: compilation declined, don't retry
	case h+1 >= m.hotThreshold:
		if tr := compileTrace(m.text, m.uops, pc, m.brProf, m.brProfMin, m.cache.LineShift()); tr != nil {
			m.traces[pc] = tr
			m.hot[pc] = 0
		} else {
			m.hot[pc] = hotNever
		}
	default:
		m.hot[pc] = h + 1
	}
}

// invalidateTraces drops every private trace whose consumed spans cover the
// patched index. The caller (PatchInstr) has already privatized, so on a
// formerly shared image m.traces is a fresh private slice (all nil) and this
// is a no-op; the image's own traces are immutable and untouched.
func (m *Machine) invalidateTraces(idx int32) {
	for i, tr := range m.traces {
		if tr != nil && tr.covers(idx) {
			m.traces[i] = nil
			if m.cls != nil {
				// The closure tier compiles FROM traces, so a dropped trace
				// drops its threaded form too (closure.go).
				m.cls[i] = nil
			}
		}
	}
}

// topOf maps a straight-line sparc.Op to its generic trace-op. Zero (tNop)
// doubles as "no mapping" for ops that never appear in block interiors.
var topOf = [64]topOp{
	sparc.Ld: tLd, sparc.Ldd: tLdd, sparc.St: tSt, sparc.Std: tStd,
	sparc.Add: tAdd, sparc.Sub: tSub, sparc.And: tAnd, sparc.Andn: tAndn,
	sparc.Or: tOr, sparc.Orn: tOrn, sparc.Xor: tXor, sparc.Xnor: tXnor,
	sparc.Sll: tSll, sparc.Srl: tSrl, sparc.Sra: tSra,
	sparc.SMul: tSMul, sparc.SDiv: tSDiv,
	sparc.Addcc: tAddcc, sparc.Subcc: tSubcc, sparc.Andcc: tAndcc,
	sparc.Andncc: tAndncc, sparc.Orcc: tOrcc, sparc.Xorcc: tXorcc,
	sparc.Sethi: tSet,
}

// fusePair returns the fused trace-op for the adjacent interior pair (a, b),
// or 0 when the pair has no fused form. Only the measured-hot address-chain
// shapes are fused; the caller checks that neither instruction is counted
// (fused ops carry no second counter slot).
func fusePair(a, b *sparc.Instr) topOp {
	switch a.Op {
	case sparc.Ld:
		switch b.Op {
		case sparc.Sll:
			return tLdSll
		case sparc.Or:
			return tLdOr
		case sparc.Subcc:
			return tLdCmp
		case sparc.Ld:
			return tLdLd
		case sparc.St:
			return tLdSt
		}
	case sparc.Sll:
		if b.Op == sparc.Add {
			return tSllAdd
		}
	case sparc.Add:
		switch b.Op {
		case sparc.Ld:
			return tAddLd
		case sparc.St:
			return tAddSt
		}
	case sparc.Sub:
		if b.Op == sparc.St {
			return tSubSt
		}
	case sparc.Or:
		switch b.Op {
		case sparc.Ld:
			return tOrLd
		case sparc.Add:
			return tOrAdd
		case sparc.Sub:
			return tOrSub
		}
	}
	return 0
}

// sameAddr reports whether two memory instructions name textually the same
// effective-address expression. The RMW triples require it so the store slot
// carries no address operands of its own: the address recomputes from the
// load slot's fields, which is program-order-exact either way.
func sameAddr(a, c *sparc.Instr) bool {
	if a.Rs1 != c.Rs1 || a.UseImm != c.UseImm {
		return false
	}
	if a.UseImm {
		return a.Imm == c.Imm
	}
	return a.Rs2 == c.Rs2
}

// fuseTriple returns the fused trace-op for the adjacent interior triple
// (a, b, c), or 0 when the triple has no fused form. Shapes chosen from the
// measured dynamic adjacencies (see the opcode block); the caller checks that
// no instruction is counted.
func fuseTriple(a, b, c *sparc.Instr) topOp {
	switch a.Op {
	case sparc.Ld:
		switch b.Op {
		case sparc.Sll:
			if c.Op == sparc.Add {
				return tLdSllAdd
			}
		case sparc.Add:
			if c.Op == sparc.Ld {
				return tLdAddLd
			}
			if c.Op == sparc.St && sameAddr(a, c) {
				return tLdAddSt
			}
		case sparc.Sub:
			if c.Op == sparc.St && sameAddr(a, c) {
				return tLdSubSt
			}
		case sparc.Or:
			if c.Op == sparc.St && sameAddr(a, c) {
				return tLdOrSt
			}
		}
	case sparc.Sll:
		if b.Op == sparc.Add && c.Op == sparc.Ld {
			return tSllAddLd
		}
	case sparc.Or:
		switch b.Op {
		case sparc.Ld:
			if c.Op == sparc.Sll {
				return tOrLdSll
			}
		case sparc.Or:
			if c.Op == sparc.Or {
				return tOrOrOr
			}
		}
	case sparc.Add:
		if b.Op == sparc.Ld && c.Op == sparc.Sll {
			return tAddLdSll
		}
	}
	return 0
}

// fuseAt decides how many instructions starting at text[i] fuse into one
// trace-op inside the straight-line window [i, stop), mirroring exactly what
// compileTrace emits: (op, 3) for a fused triple, (op, 2) for a fused pair or
// sethi+or constant, (0, 1) when text[i] compiles as a single op. The
// decision lives here — separate from emission — so FusionPlan reports
// coverage with the compiler's own rules and can never drift from them.
func fuseAt(text []sparc.Instr, i, stop int32) (topOp, int32) {
	in := &text[i]
	// sethi+or constant synthesis: sethi rd, hi; or rd, lo, rd. Skipped for
	// %g0 destinations (the sethi write is discarded there, so the pair is
	// NOT a constant) and counted pairs. An uncounted word memop right after
	// widens to the address-materialization triple.
	if in.Op == sparc.Sethi && in.Count == 0 && in.Rd != sparc.G0 && i+1 < stop {
		if n2 := &text[i+1]; n2.Op == sparc.Or && n2.UseImm &&
			n2.Count == 0 && n2.Rs1 == in.Rd && n2.Rd == in.Rd {
			if i+2 < stop && text[i+2].Count == 0 {
				switch text[i+2].Op {
				case sparc.Ld:
					return tSet2Ld, 3
				case sparc.St:
					return tSet2St, 3
				}
			}
			return tSet2, 2
		}
	}
	if i+1 < stop && in.Count == 0 && text[i+1].Count == 0 {
		// Fused interior triples first — a triple plus whatever follows is
		// never sparser than the pair tiling it replaces — then pairs.
		if i+2 < stop && text[i+2].Count == 0 {
			if f := fuseTriple(in, &text[i+1], &text[i+2]); f != 0 {
				return f, 3
			}
		}
		if f := fusePair(in, &text[i+1]); f != 0 {
			return f, 2
		}
	}
	return 0, 1
}

// isTraceTerminator reports whether op ends a straight-line interior run in
// the trace builder's walk (compileTrace cases these individually; FusionPlan
// uses it to bound the fusion window inside a dynamic run).
func isTraceTerminator(op sparc.Op) bool {
	switch op {
	case sparc.Br, sparc.Call, sparc.Jmpl, sparc.Save, sparc.Restore,
		sparc.Ta, sparc.Unimp:
		return true
	}
	return false
}

// FusionPlan applies the trace builder's fusion rules to one dynamically
// consecutive instruction run and returns the width in instructions (1, 2, or
// 3) of each dispatch item the trace and closure tiers would retire for it.
// Interior fusion windows are bounded at terminators exactly as compileTrace
// bounds them at block ends, and a conditional branch fuses with an
// immediately preceding uncounted subcc (tCmpBr*). The mrsbench -trace-stats
// report is built on this, so its coverage numbers are the compiler's own.
func FusionPlan(run []sparc.Instr) []int8 {
	var widths []int8
	n := int32(len(run))
	for i := int32(0); i < n; {
		in := &run[i]
		if isTraceTerminator(in.Op) {
			if in.Op == sparc.Br && in.Count == 0 && len(widths) > 0 &&
				widths[len(widths)-1] == 1 &&
				run[i-1].Op == sparc.Subcc && run[i-1].Count == 0 {
				widths[len(widths)-1] = 2 // subcc+branch fuse (tCmpBr*)
			} else {
				widths = append(widths, 1)
			}
			i++
			continue
		}
		stop := i
		for stop < n && !isTraceTerminator(run[stop].Op) {
			stop++
		}
		_, w := fuseAt(run, i, stop)
		widths = append(widths, int8(w))
		i += w
	}
	return widths
}

// brProfMin is the default execution count below which a branch site's edge
// profile is considered noise and the static heuristics decide instead.
// Tunable per machine via SetBrProfMin.
const brProfMin = 8

// predictBranch predicts a conditional branch for trace stitching. The edge
// profile wins when the site has been executed enough times (private text
// warms up in block mode, so compiled traces follow MEASURED bias, the
// Dynamo-style trace-selection rule); otherwise backward branches are
// predicted taken (the classic loop heuristic) and forward branches fall to
// predictTaken's layout heuristic. Predictions never affect correctness —
// a wrong one is a side exit — only how long the common pass runs.
func predictBranch(text []sparc.Instr, uops []uop, prof []uint32, profMin uint32, brPC, tgt int32) bool {
	if prof != nil {
		if p := prof[brPC]; p&0xffff >= profMin {
			return p>>16 >= (p&0xffff+1)/2
		}
	}
	if tgt <= brPC {
		return true
	}
	return predictTaken(text, uops, brPC, tgt)
}

// predictTaken is the static prediction for a FORWARD conditional branch
// without profile data. Default: not taken — fall-through is the common layout
// for compiler output. Exception: when the fall-through path is a short run
// that ends in a trap or unimp, the branch is the branch-over-trap shape
// every patched check sequence uses, and the taken edge is the hot one.
func predictTaken(text []sparc.Instr, uops []uop, brPC, tgt int32) bool {
	ft := brPC + 1
	if uint32(ft) >= uint32(len(text)) {
		return true
	}
	run := uops[ft].bl
	if run > 3 {
		return false
	}
	t := ft + run
	if uint32(t) >= uint32(len(text)) {
		return false
	}
	switch text[t].Op {
	case sparc.Ta, sparc.Unimp:
		return true
	}
	return false
}

// compileTrace builds a superblock trace starting at the block head entry,
// or returns nil when the result would be too trivial to pay for. The walk
// consumes straight-line runs, fuses sethi+or and subcc+branch pairs, and
// stitches across the predicted edge of each terminator — including
// predicted-taken BACKWARD branches, the superblock tail-duplication case —
// until it revisits a consumed index, reaches an unstitchable terminator
// (jmpl/save/restore/ta/unimp), or hits the maxBlockLen instruction bound —
// the same bound that caps block runs and PatchInstr's backward repair, so
// a single patch never invalidates more than a bounded neighborhood.
// prof is the per-site edge profile (predictBranch) with its noise floor
// profMin, nil for image text.
// shift is the I-line shift the nl bits are computed under; a machine may
// only execute traces whose shift matches its own cache geometry
// (syncTraceState enforces this).
func compileTrace(text []sparc.Instr, uops []uop, entry int32, prof []uint32, profMin, shift uint32) *traceProg {
	if uint32(entry) >= uint32(len(uops)) {
		return nil
	}
	if uops[entry].bl == 0 {
		// Terminator at the head. save/restore heads are worth compiling —
		// every callee entry is a save — and branch/call/jmpl heads stitch
		// their predicted edge and keep going, which matters because side
		// exits land on them (a not-taken exit whose successor is another
		// branch). Only ta/unimp heads have nothing to specialize.
		switch text[entry].Op {
		case sparc.Save, sparc.Restore, sparc.Br, sparc.Call, sparc.Jmpl:
		default:
			return nil
		}
	}
	var (
		ops      []top
		consumed = make([]bool, len(text))
		ni       = 0
		loop     = false
		dyn      = false
		pc       = entry
		exitPC   = entry
	)

scan:
	for {
		if ni >= maxBlockLen || uint32(pc) >= uint32(len(text)) {
			exitPC = pc // budget or end of text: dispatcher takes over
			break
		}
		if consumed[pc] {
			exitPC = pc // trace rejoins itself: end here
			break
		}
		if run := int(uops[pc].bl); run > 0 {
			// Interior straight-line instructions [pc, pc+run).
			if ni+run > maxBlockLen {
				run = maxBlockLen - ni
			}
			stop := pc + int32(run)
			i := pc
			for i < stop {
				consumed[i] = true
				in := &text[i]
				if f, w := fuseAt(text, i, stop); w > 1 {
					for k := int32(1); k < w; k++ {
						consumed[i+k] = true
					}
					t := top{op: f, ni: uint16(ni), iaddr: TextBase + uint32(i)*4}
					switch f {
					case tSet2:
						// The synthesized constant lives in imm; the or's
						// operands are implied (rd op= lo).
						t.rd = uint8(in.Rd)
						t.imm = in.Imm<<10 | text[i+1].Imm
					case tSet2Ld, tSet2St:
						// Slots A+B are the synthesized constant (rd, imm);
						// the memop rides in the pair's second-slot fields.
						u3, _ := decodeUop(&text[i+2])
						t.rd = uint8(in.Rd)
						t.imm = in.Imm<<10 | text[i+1].Imm
						t.rd2, t.rs1b, t.s2rb, t.imm2 = u3.rd, u3.rs1, u3.s2r, u3.s2i
					default:
						u1, _ := decodeUop(in)
						u2, _ := decodeUop(&text[i+1])
						t.rd, t.rs1, t.s2r, t.imm = u1.rd, u1.rs1, u1.s2r, u1.s2i
						t.rd2, t.rs1b, t.s2rb, t.imm2 = u2.rd, u2.rs1, u2.s2r, u2.s2i
						if w == 3 {
							u3, _ := decodeUop(&text[i+2])
							t.rd3, t.rs1c, t.s2rc = u3.rd, u3.rs1, u3.s2r
							t.tgt = u3.s2i // imm3: tgt is free on interior ops
						}
					}
					ops = append(ops, t)
					ni += int(w)
					i += w
					continue
				}
				u, _ := decodeUop(in)
				t := top{
					rd: u.rd, rs1: u.rs1, s2r: u.s2r, imm: u.s2i,
					cnt:   uint16(u.cnt),
					ni:    uint16(ni),
					iaddr: TextBase + uint32(i)*4,
				}
				op := topOf[u.op&^opCount]
				// Immediate-only specializations for the hottest ops.
				if u.s2r == uint8(sparc.G0) {
					switch op {
					case tLd:
						op = tLdI
					case tSt:
						op = tStI
					case tAdd:
						op = tAddI
					case tOr:
						op = tOrI
					case tSub:
						op = tSubI
					case tSll:
						op = tSllI
					case tSrl:
						op = tSrlI
					}
				}
				t.op = op
				if t.cnt != 0 {
					t.op |= topCount
				}
				ops = append(ops, t)
				ni++
				i++
			}
			pc = stop
			continue
		}

		// Terminator at pc.
		term := &text[pc]
		ta := TextBase + uint32(pc)*4
		switch term.Op {
		case sparc.Br:
			consumed[pc] = true
			cond := uint8(term.Cond & 15)
			tgt := term.Target
			// Fuse with an immediately preceding uncounted subcc.
			fused := false
			if n := len(ops); n > 0 && term.Count == 0 {
				if p := &ops[n-1]; p.op == tSubcc && p.cnt == 0 && p.iaddr == ta-4 {
					fused = true
				}
			}
			// emit appends the branch (or rewrites the subcc into the fused
			// form): opU for the plain op, opF for the fused one.
			emit := func(opU, opF topOp) {
				if fused {
					p := &ops[len(ops)-1]
					p.op = opF
					p.cond = cond
					p.tgt = tgt
					return
				}
				t := top{op: opU, cond: cond, tgt: tgt,
					cnt: uint16(term.Count), ni: uint16(ni), iaddr: ta}
				if t.cnt != 0 {
					t.op |= topCount
				}
				ops = append(ops, t)
			}
			switch {
			case term.Cond == sparc.BN:
				// Never taken: tBr with cond BN never side-exits.
				emit(tBr, tCmpBr)
				ni++
				pc++
			case tgt == entry && (term.Cond == sparc.BA ||
				predictBranch(text, uops, prof, profMin, pc, tgt)):
				// Predicted-taken back-edge to the head: loop trace. (BA
				// back-edges too: condMask[BA] is all-ones, so tBrLoop with
				// cond BA never takes its side exit.)
				if term.Cond == sparc.BA && !fused {
					emit(tBALoop, 0)
				} else {
					emit(tBrLoop, tCmpBrLoop)
				}
				ni++
				loop = true
				break scan
			case term.Cond == sparc.BA:
				// Unconditional stitch.
				if fused {
					emit(0, tCmpBrT) // cond BA: always continues
				} else {
					emit(tBA, 0)
				}
				ni++
				pc = tgt
			case predictBranch(text, uops, prof, profMin, pc, tgt):
				// Predicted taken: stitch to the target and keep compiling.
				// Backward targets duplicate already-laid-out code into the
				// trace tail (superblock tail duplication); the consumed-set
				// check at the top of the walk bounds the duplication.
				emit(tBrT, tCmpBrT)
				ni++
				pc = tgt
			default:
				emit(tBr, tCmpBr)
				ni++
				pc++
			}

		case sparc.Call:
			consumed[pc] = true
			t := top{op: tCall, tgt: term.Target,
				cnt: uint16(term.Count), ni: uint16(ni), iaddr: ta}
			if t.cnt != 0 {
				t.op |= topCount
			}
			ops = append(ops, t)
			ni++
			pc = term.Target

		case sparc.Save, sparc.Restore:
			// Interior window shuffle: operand 2 unified like every other
			// op, %g0 destinations discarded via the scratch register.
			consumed[pc] = true
			t := top{rd: uint8(term.Rd), rs1: uint8(term.Rs1),
				cnt: uint16(term.Count), ni: uint16(ni), iaddr: ta}
			if term.UseImm {
				t.s2r = uint8(sparc.G0)
				t.imm = term.Imm
			} else {
				t.s2r = uint8(term.Rs2)
			}
			if term.Rd == sparc.G0 {
				t.rd = scratchReg
			}
			if term.Op == sparc.Save {
				t.op = tSave
			} else {
				t.op = tRestore
			}
			if t.cnt != 0 {
				t.op |= topCount
			}
			ops = append(ops, t)
			ni++
			pc++

		case sparc.Jmpl:
			// Dynamic terminator: the exit pc is computed at run time and
			// handed to trace linking. exitPC doubles as the replay point
			// when the target turns out to be invalid (Step raises the
			// fault with the exact semantics, including the rd write).
			consumed[pc] = true
			ju, _ := decodeUop(term)
			t := top{op: tJmpl, rd: ju.rd, rs1: ju.rs1, s2r: ju.s2r, imm: ju.s2i,
				cnt: uint16(ju.cnt), ni: uint16(ni), iaddr: ta}
			if t.cnt != 0 {
				t.op |= topCount
			}
			ops = append(ops, t)
			ni++
			exitPC = pc
			dyn = true
			break scan

		default:
			// ta/unimp (and malformed encodings): only Step executes
			// these; the trace ends just before.
			exitPC = pc
			break scan
		}
	}

	if !loop && !dyn && ni < minTraceInstrs {
		return nil
	}
	// nl post-pass: mark the compile-time I-line boundaries (see top.nl).
	// lastFetch is the previous op's last fetch address in pass order.
	lastLine := ^uint32(0)
	for k := range ops {
		u := &ops[k]
		line := u.iaddr >> shift
		if k == 0 || line != lastLine {
			u.nl = 1
		}
		lastLine = line
		if w := topWidth(u.op); w >= 2 {
			if line2 := (u.iaddr + 4) >> shift; line2 != lastLine {
				u.nl |= 2
				lastLine = line2
			}
			if w == 3 {
				if line3 := (u.iaddr + 8) >> shift; line3 != lastLine {
					u.nl |= 4
					lastLine = line3
				}
			}
		}
	}
	ops = append(ops, top{op: tEnd})
	return &traceProg{
		entry:      entry,
		exitPC:     exitPC,
		shift:      shift,
		passInstrs: int64(ni),
		ops:        ops,
		spans:      spansOf(consumed),
	}
}

// topWidth reports how many instructions (and ifetches, at iaddr, +4, +8) a
// trace-op retires: 1, 2, or 3. Fused ops are never counted, so the topCount
// flag need not be stripped.
func topWidth(op topOp) int32 {
	switch op {
	case tSet2, tCmpBr, tCmpBrT, tCmpBrLoop,
		tLdSll, tLdOr, tLdCmp, tSllAdd, tAddLd, tOrLd,
		tLdLd, tLdSt, tAddSt, tSubSt, tOrAdd, tOrSub:
		return 2
	case tLdSllAdd, tSllAddLd, tOrLdSll, tAddLdSll, tLdAddLd, tOrOrOr,
		tSet2Ld, tSet2St, tLdAddSt, tLdSubSt, tLdOrSt:
		return 3
	}
	return 1
}

// spansOf collapses the consumed index set into sorted disjoint [lo,hi)
// ranges for PatchInstr's coverage test.
func spansOf(consumed []bool) [][2]int32 {
	var spans [][2]int32
	for i := 0; i < len(consumed); i++ {
		if !consumed[i] {
			continue
		}
		j := i
		for j < len(consumed) && consumed[j] {
			j++
		}
		spans = append(spans, [2]int32{int32(i), int32(j)})
		i = j
	}
	return spans
}

// buildTraces eagerly compiles a trace for every block head of text: the
// entry point, every branch/call target, and every fall-through successor of
// a terminator. Used by BuildImage; LoadText text compiles lazily instead
// (noteHot). Image traces are compiled for the default cache geometry's
// I-line shift; a machine with a different geometry compiles its own
// (syncTraceState).
func buildTraces(text []sparc.Instr, uops []uop, entry int32, shift uint32) []*traceProg {
	if len(text) == 0 {
		return nil
	}
	heads := make([]bool, len(text))
	mark := func(i int32) {
		if uint32(i) < uint32(len(heads)) {
			heads[i] = true
		}
	}
	mark(entry)
	mark(0)
	for i := range text {
		switch text[i].Op {
		case sparc.Br, sparc.Call:
			mark(text[i].Target)
		}
		if uops[i].bl == 0 {
			mark(int32(i) + 1) // fall-through and jmpl-return successors
		}
	}
	traces := make([]*traceProg, len(text))
	for i, h := range heads {
		if h {
			traces[i] = compileTrace(text, uops, int32(i), nil, brProfMin, shift)
		}
	}
	return traces
}

// traceFault commits the accounting for a fault at trace-op u — the faulting
// instruction's base cost and ifetch are charged, nothing past the point
// Step would have charged — flushes the batched ifetch hits, and leaves pc
// on the faulting instruction. Fused ops never fault (their first
// instruction is ALU-only and their pair is only formed when well-typed), so
// the faulting instruction always accounts for exactly one.
func (m *Machine) traceFault(u *top, cyc, base int64, ihits uint64, format string, args ...any) error {
	m.cache.NoteHits(cache.IFetch, ihits)
	n := int64(u.ni) + 1
	m.instrs += n
	m.cycles += cyc + base*n
	m.pc = int32((u.iaddr - TextBase) / 4)
	return m.fault(m.text[m.pc], format, args...)
}

// traceFault2 is traceFault for a fault in the SECOND half of a fused pair:
// the first half already retired, so two instructions commit and pc lands on
// the second instruction. The caller has already accounted the second
// instruction's fetch (Step fetches before it executes).
func (m *Machine) traceFault2(u *top, cyc, base int64, ihits uint64, format string, args ...any) error {
	m.cache.NoteHits(cache.IFetch, ihits)
	n := int64(u.ni) + 2
	m.instrs += n
	m.cycles += cyc + base*n
	m.pc = int32((u.iaddr-TextBase)/4) + 1
	return m.fault(m.text[m.pc], format, args...)
}

// traceFault3 is traceFault for a fault in the THIRD slot of a fused triple:
// the first two slots already retired, so three instructions commit and pc
// lands on the third instruction. The caller has already accounted the third
// instruction's fetch.
func (m *Machine) traceFault3(u *top, cyc, base int64, ihits uint64, format string, args ...any) error {
	m.cache.NoteHits(cache.IFetch, ihits)
	n := int64(u.ni) + 3
	m.instrs += n
	m.cycles += cyc + base*n
	m.pc = int32((u.iaddr-TextBase)/4) + 2
	return m.fault(m.text[m.pc], format, args...)
}

// traceExit commits a side exit after n instructions of the current pass.
func (m *Machine) traceExit(nextPC int32, n, cyc, base int64) {
	m.instrs += n
	m.cycles += cyc + base*n
	m.pc = nextPC
}

// execTrace runs passes of tr until a side exit, the tail, a fault, a
// mid-trace patch, or the MaxInstrs budget. The known-hit line trackers and
// the batched ifetch-hit count are threaded in from the dispatcher and back
// out, so residency knowledge survives the block→trace→block transitions and
// the combined engine issues exactly the probes Step would.
//
// Accounting protocol (mirrors execBlocks):
//   - Base+PerInstrPenalty cycles fold into one multiply per commit:
//     base*passInstrs when a pass completes (tail or back-edge),
//     base*(ni+width) at side exits and faults.
//   - Dynamic cycles (MemExtra, miss penalties, Mul/Div, taken branches,
//     StoreHook charges) accumulate in cyc and commit with the pass.
//   - ihits counts only ACTUAL known-hit fetches (no prepaid credits); it is
//     flushed via cache.NoteHits before anything that can observe the cache
//     (StoreHook, fault) and returned to the dispatcher otherwise.
//   - The caller guarantees MaxInstrs-instrs >= passInstrs on entry; loop
//     back-edges re-check before starting another pass.
func (m *Machine) execTrace(tr *traceProg, shift, imask, ciLine, cdLine uint32, ihits0 uint64) (curILine, curDLine uint32, ihits uint64, err error) {
	curILine, curDLine, ihits = ciLine, cdLine, ihits0
	ts := m.traces
	const topSize = unsafe.Sizeof(top{})
	base := m.costs.Base + m.PerInstrPenalty
	gen := m.textGen
	var (
		cyc   int64
		npc   int32 // pending exit pc (text index), set before goto exit/link
		width int64 // instructions the exiting op retires, set before goto exit
	)

chain:
	for {
		ops := tr.ops
	pass:
		for {
			// Raw-pointer walk over ops: tEnd terminates every trace, every
			// other way out of the loop is an explicit goto/continue, so no
			// per-op bound check is needed.
			p := unsafe.Pointer(&ops[0])
			for {
				u := (*top)(p)
				p = unsafe.Add(p, topSize)
				op := u.op
				if op == tEnd {
					// The whole pass retired.
					m.instrs += tr.passInstrs
					m.cycles += cyc + base*tr.passInstrs
					npc = tr.exitPC
					goto link
				}
				// One ifetch per instruction through the known-hit line
				// tracker. The nl bit proves at compile time that this fetch
				// shares the previous op's line, so while curILine is live the
				// fetch is a guaranteed hit with no line arithmetic at all;
				// line-crossing ops (and a dead tracker) take the full path.
				if u.nl&1 == 0 && curILine != noLine {
					ihits++
				} else if line := u.iaddr >> shift; line == curILine {
					ihits++
				} else {
					if !m.cache.Access(u.iaddr, cache.IFetch) {
						cyc += m.costs.MissPenalty
					}
					if (line^curDLine)&imask == 0 {
						curDLine = noLine
					}
					curILine = line
				}
			redo:
				switch op {
				case tNop:
					// nothing

				case tLdI:
					ea := uint32(m.regs[u.rs1] + u.imm)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault(u, cyc, base, ihits, "unaligned load at %#x", ea)
					}
					hooked := m.LoadHook != nil
					if hooked {
						// Same contract as the store hook below: flush the
						// earned hits, kill both trackers.
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					p := pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					m.regs[u.rd] = int32(binary.BigEndian.Uint32(p[o : o+4]))
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+1, int64(u.ni)+1, cyc, base)
						return curILine, curDLine, ihits, nil
					}

				case tLd:
					ea := uint32(m.regs[u.rs1] + m.regs[u.s2r] + u.imm)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault(u, cyc, base, ihits, "unaligned load at %#x", ea)
					}
					hooked := m.LoadHook != nil
					if hooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					p := pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					m.regs[u.rd] = int32(binary.BigEndian.Uint32(p[o : o+4]))
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+1, int64(u.ni)+1, cyc, base)
						return curILine, curDLine, ihits, nil
					}

				case tLdd:
					ea := uint32(m.regs[u.rs1] + m.regs[u.s2r] + u.imm)
					if ea&7 != 0 {
						return curILine, curDLine, 0, m.traceFault(u, cyc, base, ihits, "unaligned ldd at %#x", ea)
					}
					hooked := m.LoadHook != nil
					if hooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 8)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					cyc += m.costs.MemExtra // second word (see dataAccess2)
					if line2 := (ea + 4) >> shift; line2 != curDLine {
						if !m.cache.Access(ea+4, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line2^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line2
					}
					m.regs[u.rd] = m.ReadWord(ea)
					m.regs[u.rd+1] = m.ReadWord(ea + 4)
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+1, int64(u.ni)+1, cyc, base)
						return curILine, curDLine, ihits, nil
					}

				case tStI, tSt:
					var ea uint32
					if op == tStI {
						ea = uint32(m.regs[u.rs1] + u.imm)
					} else {
						ea = uint32(m.regs[u.rs1] + m.regs[u.s2r] + u.imm)
					}
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault(u, cyc, base, ihits, "unaligned store at %#x", ea)
					}
					hooked := m.StoreHook != nil
					if hooked {
						// Flush the earned hits so a hook that inspects the
						// machine sees exact statistics; the hook may invalidate
						// any line, so both trackers die.
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.StoreHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DWrite, 1)
					} else {
						if !m.cache.Access(ea, cache.DWrite) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					p := pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					binary.BigEndian.PutUint32(p[o:o+4], uint32(m.regs[u.rd]))
					if hooked && m.textGen != gen {
						// The hook patched text under us: this trace may be
						// stale (or already invalidated). Finish this instruction
						// (done) and return to the dispatcher, which re-dispatches
						// against the fresh trace/block index.
						m.traceExit(int32((u.iaddr-TextBase)/4)+1, int64(u.ni)+1, cyc, base)
						return curILine, curDLine, ihits, nil
					}

				case tStd:
					ea := uint32(m.regs[u.rs1] + m.regs[u.s2r] + u.imm)
					if ea&7 != 0 {
						return curILine, curDLine, 0, m.traceFault(u, cyc, base, ihits, "unaligned std at %#x", ea)
					}
					hooked := m.StoreHook != nil
					if hooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.StoreHook(ea, 8)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DWrite, 1)
					} else {
						if !m.cache.Access(ea, cache.DWrite) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					cyc += m.costs.MemExtra // second word (see dataAccess2)
					if line2 := (ea + 4) >> shift; line2 != curDLine {
						if !m.cache.Access(ea+4, cache.DWrite) {
							cyc += m.costs.MissPenalty
						}
						if (line2^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line2
					}
					m.storeWord(ea, m.regs[u.rd])
					m.storeWord(ea+4, m.regs[u.rd+1])
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+1, int64(u.ni)+1, cyc, base)
						return curILine, curDLine, ihits, nil
					}

				case tAddI:
					m.regs[u.rd] = m.regs[u.rs1] + u.imm
				case tAdd:
					m.regs[u.rd] = m.regs[u.rs1] + m.regs[u.s2r] + u.imm
				case tSub:
					m.regs[u.rd] = m.regs[u.rs1] - (m.regs[u.s2r] + u.imm)
				case tSubI:
					m.regs[u.rd] = m.regs[u.rs1] - u.imm
				case tAnd:
					m.regs[u.rd] = m.regs[u.rs1] & (m.regs[u.s2r] + u.imm)
				case tAndn:
					m.regs[u.rd] = m.regs[u.rs1] &^ (m.regs[u.s2r] + u.imm)
				case tOr:
					m.regs[u.rd] = m.regs[u.rs1] | (m.regs[u.s2r] + u.imm)
				case tOrI:
					m.regs[u.rd] = m.regs[u.rs1] | u.imm
				case tOrn:
					m.regs[u.rd] = m.regs[u.rs1] | ^(m.regs[u.s2r] + u.imm)
				case tXor:
					m.regs[u.rd] = m.regs[u.rs1] ^ (m.regs[u.s2r] + u.imm)
				case tXnor:
					m.regs[u.rd] = ^(m.regs[u.rs1] ^ (m.regs[u.s2r] + u.imm))
				case tSll:
					m.regs[u.rd] = m.regs[u.rs1] << (uint32(m.regs[u.s2r]+u.imm) & 31)
				case tSllI:
					m.regs[u.rd] = m.regs[u.rs1] << (uint32(u.imm) & 31)
				case tSrl:
					m.regs[u.rd] = int32(uint32(m.regs[u.rs1]) >> (uint32(m.regs[u.s2r]+u.imm) & 31))
				case tSrlI:
					m.regs[u.rd] = int32(uint32(m.regs[u.rs1]) >> (uint32(u.imm) & 31))
				case tSra:
					m.regs[u.rd] = m.regs[u.rs1] >> (uint32(m.regs[u.s2r]+u.imm) & 31)
				case tSMul:
					cyc += m.costs.Mul
					m.regs[u.rd] = m.regs[u.rs1] * (m.regs[u.s2r] + u.imm)
				case tSDiv:
					cyc += m.costs.Div // charged before the zero check, as in Step
					d := m.regs[u.s2r] + u.imm
					if d == 0 {
						return curILine, curDLine, 0, m.traceFault(u, cyc, base, ihits, "division by zero")
					}
					m.regs[u.rd] = m.regs[u.rs1] / d

				case tAddcc:
					a, b := m.regs[u.rs1], m.regs[u.s2r]+u.imm
					r := a + b
					m.setCCAdd(a, b, r)
					m.regs[u.rd] = r
				case tSubcc:
					a, b := m.regs[u.rs1], m.regs[u.s2r]+u.imm
					r := a - b
					m.setCCSub(a, b, r)
					m.regs[u.rd] = r
				case tAndcc:
					r := m.regs[u.rs1] & (m.regs[u.s2r] + u.imm)
					m.setCCLogic(r)
					m.regs[u.rd] = r
				case tAndncc:
					r := m.regs[u.rs1] &^ (m.regs[u.s2r] + u.imm)
					m.setCCLogic(r)
					m.regs[u.rd] = r
				case tOrcc:
					r := m.regs[u.rs1] | (m.regs[u.s2r] + u.imm)
					m.setCCLogic(r)
					m.regs[u.rd] = r
				case tXorcc:
					r := m.regs[u.rs1] ^ (m.regs[u.s2r] + u.imm)
					m.setCCLogic(r)
					m.regs[u.rd] = r

				case tSet:
					m.regs[u.rd] = u.imm

				case tSet2:
					// Fused pair: second fetch at iaddr+4, then the synthesized
					// constant. Reordering the or's fetch before the sethi's
					// write is invisible — ALU ops touch no cache state.
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					m.regs[u.rd] = u.imm

				case tLdSll, tLdOr, tLdCmp:
					// Fused ld+ALU pair: the load executes first (it may fault
					// and has the d-cache probe), then the second half's fetch,
					// then the ALU op — exactly Step's order. A load hook that
					// patches text exits after the load half retires.
					ea := uint32(m.regs[u.rs1] + m.regs[u.s2r] + u.imm)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault(u, cyc, base, ihits, "unaligned load at %#x", ea)
					}
					hooked := m.LoadHook != nil
					if hooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					p := pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					m.regs[u.rd] = int32(binary.BigEndian.Uint32(p[o : o+4]))
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+1, int64(u.ni)+1, cyc, base)
						return curILine, curDLine, ihits, nil
					}
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					switch op {
					case tLdSll:
						m.regs[u.rd2] = m.regs[u.rs1b] << (uint32(m.regs[u.s2rb]+u.imm2) & 31)
					case tLdOr:
						m.regs[u.rd2] = m.regs[u.rs1b] | (m.regs[u.s2rb] + u.imm2)
					default: // tLdCmp
						a, b := m.regs[u.rs1b], m.regs[u.s2rb]+u.imm2
						r := a - b
						m.setCCSub(a, b, r)
						m.regs[u.rd2] = r
					}

				case tSllAdd:
					// Two ALU halves: only the second fetch touches cache state.
					m.regs[u.rd] = m.regs[u.rs1] << (uint32(m.regs[u.s2r]+u.imm) & 31)
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					m.regs[u.rd2] = m.regs[u.rs1b] + m.regs[u.s2rb] + u.imm2

				case tAddLd, tOrLd:
					// Fused ALU+ld pair: ALU result commits, second fetch, then
					// the load — which may fault with the first half retired
					// (traceFault2 commits both the pair's fetches and widths).
					if op == tAddLd {
						m.regs[u.rd] = m.regs[u.rs1] + m.regs[u.s2r] + u.imm
					} else {
						m.regs[u.rd] = m.regs[u.rs1] | (m.regs[u.s2r] + u.imm)
					}
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					ea := uint32(m.regs[u.rs1b] + m.regs[u.s2rb] + u.imm2)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault2(u, cyc, base, ihits, "unaligned load at %#x", ea)
					}
					hooked := m.LoadHook != nil
					if hooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					p := pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					m.regs[u.rd2] = int32(binary.BigEndian.Uint32(p[o : o+4]))
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+2, int64(u.ni)+2, cyc, base)
						return curILine, curDLine, ihits, nil
					}

				case tLdLd:
					// Fused ld+ld: either half may fault; the first retires
					// before the second's fetch, so a dependent (pointer-chase)
					// second load reads the just-written register. The load
					// hook fires per half, with the tSt patch-exit protocol.
					ea := uint32(m.regs[u.rs1] + m.regs[u.s2r] + u.imm)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault(u, cyc, base, ihits, "unaligned load at %#x", ea)
					}
					hooked := m.LoadHook != nil
					if hooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					p := pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					m.regs[u.rd] = int32(binary.BigEndian.Uint32(p[o : o+4]))
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+1, int64(u.ni)+1, cyc, base)
						return curILine, curDLine, ihits, nil
					}
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					ea = uint32(m.regs[u.rs1b] + m.regs[u.s2rb] + u.imm2)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault2(u, cyc, base, ihits, "unaligned load at %#x", ea)
					}
					hooked = m.LoadHook != nil
					if hooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb = ea &^ (PageBytes - 1)
					pe = &m.pageCache[pageCacheIdx(ea)]
					p = pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o = ea & (PageBytes - 4)
					m.regs[u.rd2] = int32(binary.BigEndian.Uint32(p[o : o+4]))
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+2, int64(u.ni)+2, cyc, base)
						return curILine, curDLine, ihits, nil
					}

				case tLdSt, tAddSt, tSubSt:
					// Fused op+store: the first half retires, then the second
					// fetch, then the store with the full hook/patch-exit
					// protocol of tSt.
					switch op {
					case tLdSt:
						ea := uint32(m.regs[u.rs1] + m.regs[u.s2r] + u.imm)
						if ea&3 != 0 {
							return curILine, curDLine, 0, m.traceFault(u, cyc, base, ihits, "unaligned load at %#x", ea)
						}
						lhooked := m.LoadHook != nil
						if lhooked {
							m.cache.NoteHits(cache.IFetch, ihits)
							ihits = 0
							cyc += m.LoadHook(ea, 4)
							curILine = noLine
							curDLine = noLine
						}
						cyc += m.costs.MemExtra
						if line := ea >> shift; line == curDLine {
							m.cache.NoteHits(cache.DRead, 1)
						} else {
							if !m.cache.Access(ea, cache.DRead) {
								cyc += m.costs.MissPenalty
							}
							if (line^curILine)&imask == 0 {
								curILine = noLine
							}
							curDLine = line
						}
						pb := ea &^ (PageBytes - 1)
						pe := &m.pageCache[pageCacheIdx(ea)]
						p := pe.p
						if pe.base != pb {
							p = m.pageSlow(pb)
						}
						o := ea & (PageBytes - 4)
						m.regs[u.rd] = int32(binary.BigEndian.Uint32(p[o : o+4]))
						if lhooked && m.textGen != gen {
							m.traceExit(int32((u.iaddr-TextBase)/4)+1, int64(u.ni)+1, cyc, base)
							return curILine, curDLine, ihits, nil
						}
					case tAddSt:
						m.regs[u.rd] = m.regs[u.rs1] + m.regs[u.s2r] + u.imm
					default: // tSubSt
						m.regs[u.rd] = m.regs[u.rs1] - (m.regs[u.s2r] + u.imm)
					}
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					ea := uint32(m.regs[u.rs1b] + m.regs[u.s2rb] + u.imm2)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault2(u, cyc, base, ihits, "unaligned store at %#x", ea)
					}
					hooked := m.StoreHook != nil
					if hooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.StoreHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DWrite, 1)
					} else {
						if !m.cache.Access(ea, cache.DWrite) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					p := pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					binary.BigEndian.PutUint32(p[o:o+4], uint32(m.regs[u.rd2]))
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+2, int64(u.ni)+2, cyc, base)
						return curILine, curDLine, ihits, nil
					}

				case tOrAdd, tOrSub:
					// Two ALU halves, like tSllAdd.
					m.regs[u.rd] = m.regs[u.rs1] | (m.regs[u.s2r] + u.imm)
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					if op == tOrAdd {
						m.regs[u.rd2] = m.regs[u.rs1b] + m.regs[u.s2rb] + u.imm2
					} else {
						m.regs[u.rd2] = m.regs[u.rs1b] - (m.regs[u.s2rb] + u.imm2)
					}

				case tLdSllAdd:
					// Fused ld+sll+add triple (the eqntott index-scale-add
					// chain): the load retires with the full hook/fault
					// protocol of tLd, then the second fetch, the shift, the
					// third fetch, and the add. Slot C's operands live in
					// rd3/rs1c/s2rc with tgt reused as its immediate.
					ea := uint32(m.regs[u.rs1] + m.regs[u.s2r] + u.imm)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault(u, cyc, base, ihits, "unaligned load at %#x", ea)
					}
					hooked := m.LoadHook != nil
					if hooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					p := pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					m.regs[u.rd] = int32(binary.BigEndian.Uint32(p[o : o+4]))
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+1, int64(u.ni)+1, cyc, base)
						return curILine, curDLine, ihits, nil
					}
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					m.regs[u.rd2] = m.regs[u.rs1b] << (uint32(m.regs[u.s2rb]+u.imm2) & 31)
					if u.nl&4 == 0 && curILine != noLine {
						ihits++
					} else if ia3 := u.iaddr + 8; ia3>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia3, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia3>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia3 >> shift
					}
					m.regs[u.rd3] = m.regs[u.rs1c] + m.regs[u.s2rc] + u.tgt

				case tSllAddLd:
					// Fused sll+add+ld (address-scale then dereference): two
					// ALU slots, then a slot-C load that may fault with both
					// earlier slots retired (traceFault3) and takes the full
					// hook/patch-exit protocol at +3.
					m.regs[u.rd] = m.regs[u.rs1] << (uint32(m.regs[u.s2r]+u.imm) & 31)
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					m.regs[u.rd2] = m.regs[u.rs1b] + m.regs[u.s2rb] + u.imm2
					if u.nl&4 == 0 && curILine != noLine {
						ihits++
					} else if ia3 := u.iaddr + 8; ia3>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia3, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia3>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia3 >> shift
					}
					ea := uint32(m.regs[u.rs1c] + m.regs[u.s2rc] + u.tgt)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault3(u, cyc, base, ihits, "unaligned load at %#x", ea)
					}
					hooked := m.LoadHook != nil
					if hooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					p := pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					m.regs[u.rd3] = int32(binary.BigEndian.Uint32(p[o : o+4]))
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+3, int64(u.ni)+3, cyc, base)
						return curILine, curDLine, ihits, nil
					}

				case tOrLdSll, tAddLdSll:
					// Fused alu+ld+sll: the slot-B load faults with one slot
					// retired (traceFault2) and a patching hook exits at +2 —
					// the slot-C shift has not executed and re-dispatches
					// against fresh text.
					if op == tOrLdSll {
						m.regs[u.rd] = m.regs[u.rs1] | (m.regs[u.s2r] + u.imm)
					} else {
						m.regs[u.rd] = m.regs[u.rs1] + m.regs[u.s2r] + u.imm
					}
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					ea := uint32(m.regs[u.rs1b] + m.regs[u.s2rb] + u.imm2)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault2(u, cyc, base, ihits, "unaligned load at %#x", ea)
					}
					hooked := m.LoadHook != nil
					if hooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					p := pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					m.regs[u.rd2] = int32(binary.BigEndian.Uint32(p[o : o+4]))
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+2, int64(u.ni)+2, cyc, base)
						return curILine, curDLine, ihits, nil
					}
					if u.nl&4 == 0 && curILine != noLine {
						ihits++
					} else if ia3 := u.iaddr + 8; ia3>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia3, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia3>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia3 >> shift
					}
					m.regs[u.rd3] = m.regs[u.rs1c] << (uint32(m.regs[u.s2rc]+u.tgt) & 31)

				case tLdAddLd:
					// Fused ld+add+ld pointer chase (li/gcc): either load may
					// fault or hook-patch; slot A exits at +1, slot C at +3.
					// The slot-C address reads the registers as they stand
					// after slots A and B, exactly program order.
					ea := uint32(m.regs[u.rs1] + m.regs[u.s2r] + u.imm)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault(u, cyc, base, ihits, "unaligned load at %#x", ea)
					}
					hooked := m.LoadHook != nil
					if hooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					p := pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					m.regs[u.rd] = int32(binary.BigEndian.Uint32(p[o : o+4]))
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+1, int64(u.ni)+1, cyc, base)
						return curILine, curDLine, ihits, nil
					}
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					m.regs[u.rd2] = m.regs[u.rs1b] + m.regs[u.s2rb] + u.imm2
					if u.nl&4 == 0 && curILine != noLine {
						ihits++
					} else if ia3 := u.iaddr + 8; ia3>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia3, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia3>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia3 >> shift
					}
					ea = uint32(m.regs[u.rs1c] + m.regs[u.s2rc] + u.tgt)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault3(u, cyc, base, ihits, "unaligned load at %#x", ea)
					}
					hooked = m.LoadHook != nil
					if hooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb = ea &^ (PageBytes - 1)
					pe = &m.pageCache[pageCacheIdx(ea)]
					p = pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o = ea & (PageBytes - 4)
					m.regs[u.rd3] = int32(binary.BigEndian.Uint32(p[o : o+4]))
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+3, int64(u.ni)+3, cyc, base)
						return curILine, curDLine, ihits, nil
					}

				case tOrOrOr:
					// Three ALU slots (espresso's mask-merge runs): only the
					// interior fetches touch cache state.
					m.regs[u.rd] = m.regs[u.rs1] | (m.regs[u.s2r] + u.imm)
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					m.regs[u.rd2] = m.regs[u.rs1b] | (m.regs[u.s2rb] + u.imm2)
					if u.nl&4 == 0 && curILine != noLine {
						ihits++
					} else if ia3 := u.iaddr + 8; ia3>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia3, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia3>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia3 >> shift
					}
					m.regs[u.rd3] = m.regs[u.rs1c] | (m.regs[u.s2rc] + u.tgt)

				case tSet2Ld:
					// Fused sethi+or+ld (address materialization then
					// dereference): the merged constant commits after the
					// or's fetch — before the slot-C load, which typically
					// uses rd as its address base. The load's operands are in
					// the rd2/rs1b/s2rb/imm2 slots but it is the THIRD
					// instruction: faults use traceFault3, patch-exits +3.
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					m.regs[u.rd] = u.imm
					if u.nl&4 == 0 && curILine != noLine {
						ihits++
					} else if ia3 := u.iaddr + 8; ia3>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia3, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia3>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia3 >> shift
					}
					ea := uint32(m.regs[u.rs1b] + m.regs[u.s2rb] + u.imm2)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault3(u, cyc, base, ihits, "unaligned load at %#x", ea)
					}
					hooked := m.LoadHook != nil
					if hooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					p := pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					m.regs[u.rd2] = int32(binary.BigEndian.Uint32(p[o : o+4]))
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+3, int64(u.ni)+3, cyc, base)
						return curILine, curDLine, ihits, nil
					}

				case tSet2St:
					// tSet2Ld with a store in slot C: full StoreHook/patch
					// protocol of tSt, committing three instructions.
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					m.regs[u.rd] = u.imm
					if u.nl&4 == 0 && curILine != noLine {
						ihits++
					} else if ia3 := u.iaddr + 8; ia3>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia3, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia3>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia3 >> shift
					}
					ea := uint32(m.regs[u.rs1b] + m.regs[u.s2rb] + u.imm2)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault3(u, cyc, base, ihits, "unaligned store at %#x", ea)
					}
					hooked := m.StoreHook != nil
					if hooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.StoreHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DWrite, 1)
					} else {
						if !m.cache.Access(ea, cache.DWrite) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					p := pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					binary.BigEndian.PutUint32(p[o:o+4], uint32(m.regs[u.rd2]))
					if hooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+3, int64(u.ni)+3, cyc, base)
						return curILine, curDLine, ihits, nil
					}

				case tLdAddSt, tLdSubSt, tLdOrSt:
					// Canonical read-modify-write: ld [a], r; op r, x, r2;
					// st r2, [a]. Fusion requires the store's address operands
					// to equal the load's (sameAddr), and the store recomputes
					// its address from the registers as they stand after slot
					// B — so even an op that clobbers the address register is
					// program-order exact. Load hooks exit at +1, store hooks
					// at +3; either access can fault with the earlier slots
					// retired.
					ea := uint32(m.regs[u.rs1] + m.regs[u.s2r] + u.imm)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault(u, cyc, base, ihits, "unaligned load at %#x", ea)
					}
					lhooked := m.LoadHook != nil
					if lhooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					p := pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					m.regs[u.rd] = int32(binary.BigEndian.Uint32(p[o : o+4]))
					if lhooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+1, int64(u.ni)+1, cyc, base)
						return curILine, curDLine, ihits, nil
					}
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					switch op {
					case tLdAddSt:
						m.regs[u.rd2] = m.regs[u.rs1b] + m.regs[u.s2rb] + u.imm2
					case tLdSubSt:
						m.regs[u.rd2] = m.regs[u.rs1b] - (m.regs[u.s2rb] + u.imm2)
					default: // tLdOrSt
						m.regs[u.rd2] = m.regs[u.rs1b] | (m.regs[u.s2rb] + u.imm2)
					}
					if u.nl&4 == 0 && curILine != noLine {
						ihits++
					} else if ia3 := u.iaddr + 8; ia3>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia3, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia3>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia3 >> shift
					}
					ea = uint32(m.regs[u.rs1c] + m.regs[u.s2rc] + u.tgt)
					if ea&3 != 0 {
						return curILine, curDLine, 0, m.traceFault3(u, cyc, base, ihits, "unaligned store at %#x", ea)
					}
					shooked := m.StoreHook != nil
					if shooked {
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.StoreHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DWrite, 1)
					} else {
						if !m.cache.Access(ea, cache.DWrite) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
						}
						curDLine = line
					}
					pb = ea &^ (PageBytes - 1)
					pe = &m.pageCache[pageCacheIdx(ea)]
					p = pe.p
					if pe.base != pb {
						p = m.pageSlow(pb)
					}
					o = ea & (PageBytes - 4)
					binary.BigEndian.PutUint32(p[o:o+4], uint32(m.regs[u.rd3]))
					if shooked && m.textGen != gen {
						m.traceExit(int32((u.iaddr-TextBase)/4)+3, int64(u.ni)+3, cyc, base)
						return curILine, curDLine, ihits, nil
					}

				case tBr: // predicted not taken
					if condMask[u.cond]>>uint32(m.ccb)&1 != 0 {
						cyc += m.costs.TakenBranch
						npc, width = u.tgt, int64(u.ni)+1
						goto exit
					}

				case tBrT: // predicted taken (stitched)
					if condMask[u.cond]>>uint32(m.ccb)&1 != 0 {
						cyc += m.costs.TakenBranch
					} else {
						npc, width = int32((u.iaddr-TextBase)/4)+1, int64(u.ni)+1
						goto exit
					}

				case tBrLoop:
					if condMask[u.cond]>>uint32(m.ccb)&1 != 0 {
						cyc += m.costs.TakenBranch
						m.instrs += int64(u.ni) + 1
						m.cycles += cyc + base*(int64(u.ni)+1)
						cyc = 0
						if m.MaxInstrs-m.instrs < tr.passInstrs {
							m.pc = tr.entry // dispatcher clamps the tail exactly
							return curILine, curDLine, ihits, nil
						}
						continue pass
					}
					npc, width = int32((u.iaddr-TextBase)/4)+1, int64(u.ni)+1
					goto exit

				case tBA:
					cyc += m.costs.TakenBranch

				case tBALoop:
					cyc += m.costs.TakenBranch
					m.instrs += int64(u.ni) + 1
					m.cycles += cyc + base*(int64(u.ni)+1)
					cyc = 0
					if m.MaxInstrs-m.instrs < tr.passInstrs {
						m.pc = tr.entry
						return curILine, curDLine, ihits, nil
					}
					continue pass

				case tCall:
					m.regs[sparc.O7] = int32(u.iaddr) + 4
					cyc += m.costs.TakenBranch

				case tSave:
					// Mirrors Step: operand computed in the caller's window,
					// destination written in the new one.
					v := m.regs[u.rs1] + m.regs[u.s2r] + u.imm
					var parent winRegs
					parent.o = [8]int32(m.regs[8:16])
					parent.l = [8]int32(m.regs[16:24])
					parent.i = [8]int32(m.regs[24:32])
					m.win = append(m.win, parent)
					copy(m.regs[24:32], parent.o[:])
					clear(m.regs[8:24])
					m.resident++
					if m.resident > NWindows-1 {
						m.resident = NWindows - 1
						cyc += m.costs.WindowSpill
					}
					m.regs[u.rd] = v

				case tRestore:
					if len(m.win) < 1 {
						return curILine, curDLine, 0, m.traceFault(u, cyc, base, ihits, "register window underflow at top frame")
					}
					v := m.regs[u.rs1] + m.regs[u.s2r] + u.imm
					ins := [8]int32(m.regs[24:32])
					parent := &m.win[len(m.win)-1]
					copy(m.regs[8:16], ins[:])
					copy(m.regs[16:24], parent.l[:])
					copy(m.regs[24:32], parent.i[:])
					m.win = m.win[:len(m.win)-1]
					m.resident--
					if m.resident < 1 {
						m.resident = 1
						cyc += m.costs.WindowSpill
					}
					m.regs[u.rd] = v

				case tJmpl:
					dest := uint32(m.regs[u.rs1] + m.regs[u.s2r] + u.imm)
					idx := int32((dest - TextBase) / 4)
					if dest < TextBase || dest&3 != 0 || int(idx) >= len(m.uops) {
						// Bad target: exit before the jmpl, Step replays it
						// and raises the fault (committing the rd write
						// first, exactly as the block engine's bail does).
						m.traceExit(int32((u.iaddr-TextBase)/4), int64(u.ni), cyc, base)
						return curILine, curDLine, ihits, nil
					}
					m.regs[u.rd] = int32(u.iaddr) + 4
					cyc += m.costs.TakenBranch
					npc, width = idx, int64(u.ni)+1
					goto exit

				case tCmpBr, tCmpBrT, tCmpBrLoop:
					// Fused subcc+branch: second fetch, compare, then the branch
					// with the same prediction split as the unfused forms.
					if u.nl&2 == 0 && curILine != noLine {
						ihits++
					} else if ia2 := u.iaddr + 4; ia2>>shift == curILine {
						ihits++
					} else {
						if !m.cache.Access(ia2, cache.IFetch) {
							cyc += m.costs.MissPenalty
						}
						if (ia2>>shift^curDLine)&imask == 0 {
							curDLine = noLine
						}
						curILine = ia2 >> shift
					}
					a, b := m.regs[u.rs1], m.regs[u.s2r]+u.imm
					r := a - b
					m.setCCSub(a, b, r)
					m.regs[u.rd] = r
					taken := condMask[u.cond]>>uint32(m.ccb)&1 != 0
					switch op {
					case tCmpBr:
						if taken {
							cyc += m.costs.TakenBranch
							npc, width = u.tgt, int64(u.ni)+2
							goto exit
						}
					case tCmpBrT:
						if taken {
							cyc += m.costs.TakenBranch
						} else {
							npc, width = int32((u.iaddr-TextBase)/4)+2, int64(u.ni)+2
							goto exit
						}
					case tCmpBrLoop:
						if taken {
							cyc += m.costs.TakenBranch
							m.instrs += int64(u.ni) + 2
							m.cycles += cyc + base*(int64(u.ni)+2)
							cyc = 0
							if m.MaxInstrs-m.instrs < tr.passInstrs {
								m.pc = tr.entry
								return curILine, curDLine, ihits, nil
							}
							continue pass
						}
						npc, width = int32((u.iaddr-TextBase)/4)+2, int64(u.ni)+2
						goto exit
					}

				default:
					// Only counted ops land here: bump the event counter, strip
					// the flag, and dispatch the underlying op.
					m.Counters[u.cnt-1]++
					op &^= topCount
					goto redo
				}
			}
		}

	exit:
		// A side exit retired width instructions of the current pass.
		m.instrs += width
		m.cycles += cyc + base*width
	link:
		// Trace linking: when the exit lands on another compiled head with
		// budget for a full pass, jump straight into it — no dispatcher
		// round-trip, no call overhead. This is what turns a side-exit-heavy
		// program (predictions are static) back into straight-line execution.
		if uint32(npc) < uint32(len(ts)) {
			if next := ts[npc]; next != nil && m.MaxInstrs-m.instrs >= next.passInstrs {
				cyc = 0
				tr = next
				continue chain
			}
		}
		m.pc = npc
		return curILine, curDLine, ihits, nil
	}
}

// defaultLineShift is the I-line shift of cache.DefaultConfig, the geometry
// image traces are compiled for.
func defaultLineShift() uint32 {
	var s uint32
	for lb := cache.DefaultConfig.LineBytes; lb > 1; lb >>= 1 {
		s++
	}
	return s
}
