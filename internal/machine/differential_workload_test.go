package machine_test

import (
	"testing"

	"databreak/internal/asm"
	"databreak/internal/bench"
	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/sparc"
	"databreak/internal/workload"
)

// TestDifferentialWorkloads runs every benchmark workload through the
// single-Step path and the block-dispatch Run path and requires identical
// registers, output, cycle counts, instruction counts, and cache statistics.
// Unlike the randomized differential (differential_test.go) these programs
// exercise the full compiler output: register windows, loops, indirect
// calls, and the output trap.
func TestDifferentialWorkloads(t *testing.T) {
	for _, p := range workload.All(1) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			u, err := bench.Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := asm.Assemble(asm.Options{AddStartup: true}, u)
			if err != nil {
				t.Fatal(err)
			}

			stepM := machine.New(cache.DefaultConfig, machine.DefaultCosts)
			prog.Load(stepM)
			for !stepM.Halted() {
				if err := stepM.Step(); err != nil {
					t.Fatalf("step: %v", err)
				}
			}

			runM := machine.New(cache.DefaultConfig, machine.DefaultCosts)
			prog.Load(runM)
			if _, err := runM.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}

			if stepM.ExitCode() != runM.ExitCode() {
				t.Errorf("exit code: step %d run %d", stepM.ExitCode(), runM.ExitCode())
			}
			if stepM.Output() != runM.Output() {
				t.Errorf("output: step %q run %q", stepM.Output(), runM.Output())
			}
			if stepM.Cycles() != runM.Cycles() {
				t.Errorf("cycles: step %d run %d", stepM.Cycles(), runM.Cycles())
			}
			if stepM.Instrs() != runM.Instrs() {
				t.Errorf("instrs: step %d run %d", stepM.Instrs(), runM.Instrs())
			}
			if stepM.CacheStats() != runM.CacheStats() {
				t.Errorf("cache stats:\nstep %+v\nrun  %+v", stepM.CacheStats(), runM.CacheStats())
			}
			for r := sparc.Reg(0); r < sparc.NumRegs; r++ {
				if stepM.Reg(r) != runM.Reg(r) {
					t.Errorf("%s: step %d run %d", r, stepM.Reg(r), runM.Reg(r))
				}
			}
		})
	}
}

// TestDifferentialWorkloadsLoadShared runs every workload twice from one
// shared image (asm.LoadShared: predecoded text plus the data-segment
// snapshot) and once via the private-copy Load path, requiring bit-identical
// observables across all three. This is the compile-once, run-many contract
// the artifact cache rests on: attaching a cached Program to a fresh machine
// is indistinguishable from linking it from scratch, and re-running it sees
// no residue from the first run.
func TestDifferentialWorkloadsLoadShared(t *testing.T) {
	for _, p := range workload.All(1) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			u, err := bench.Compile(p)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := asm.Assemble(asm.Options{AddStartup: true}, u)
			if err != nil {
				t.Fatal(err)
			}

			load := machine.New(cache.DefaultConfig, machine.DefaultCosts)
			prog.Load(load)
			if _, err := load.Run(); err != nil {
				t.Fatalf("load run: %v", err)
			}

			for i := 0; i < 2; i++ {
				shared := machine.New(cache.DefaultConfig, machine.DefaultCosts)
				prog.LoadShared(shared)
				if _, err := shared.Run(); err != nil {
					t.Fatalf("shared run %d: %v", i, err)
				}
				if load.ExitCode() != shared.ExitCode() {
					t.Errorf("run %d exit code: load %d shared %d", i, load.ExitCode(), shared.ExitCode())
				}
				if load.Output() != shared.Output() {
					t.Errorf("run %d output: load %q shared %q", i, load.Output(), shared.Output())
				}
				if load.Cycles() != shared.Cycles() {
					t.Errorf("run %d cycles: load %d shared %d", i, load.Cycles(), shared.Cycles())
				}
				if load.Instrs() != shared.Instrs() {
					t.Errorf("run %d instrs: load %d shared %d", i, load.Instrs(), shared.Instrs())
				}
				if load.CacheStats() != shared.CacheStats() {
					t.Errorf("run %d cache stats:\nload   %+v\nshared %+v", i, load.CacheStats(), shared.CacheStats())
				}
				for r := sparc.Reg(0); r < sparc.NumRegs; r++ {
					if load.Reg(r) != shared.Reg(r) {
						t.Errorf("run %d %s: load %d shared %d", i, r, load.Reg(r), shared.Reg(r))
					}
				}
			}
		})
	}
}
