package machine

import (
	"reflect"
	"testing"

	"databreak/internal/cache"
	"databreak/internal/sparc"
)

// Mid-triple hazard coverage for the three-instruction fused runs. Each test
// pins one way a fused triple can be interrupted after the run is hot and
// compiled — a fault in a specific slot, a text patch landed by the triple's
// own hooked store, a monitored load clobbering its address register — and
// demands bit-identical state, counts, fault pc, and error text against a
// pure-Step reference on BOTH compiled tiers (trace interpreter and closure
// item stream). Every case first asserts, via the builder's own FusionPlan,
// that the hazard instruction really sits inside a width-3 item; otherwise a
// builder change could silently turn these into plain single-op tests.

// diffRunBoth runs text against Step on the trace and closure engines with
// an immediate hot threshold, applying setup (hooks) to every machine. Each
// machine loads its OWN copy of the text: LoadText aliases the caller's
// slice and PatchInstr writes through it, so the patch tests would otherwise
// leak one machine's patch into its reference.
func diffRunBoth(t *testing.T, ctx string, text []sparc.Instr, setup func(*Machine)) {
	t.Helper()
	clone := func() []sparc.Instr { return append([]sparc.Instr(nil), text...) }
	for _, e := range []Engine{EngineTrace, EngineClosure} {
		a := New(cache.DefaultConfig, DefaultCosts)
		b := New(cache.DefaultConfig, DefaultCosts)
		b.SetEngine(e)
		b.SetHotThreshold(1)
		if setup != nil {
			setup(a)
			setup(b)
		}
		a.LoadText(clone(), 0)
		b.LoadText(clone(), 0)
		errA := stepAll(a)
		_, errB := b.Run()
		diffStates(t, ctx+" vs "+e.String(), a, b, errA, errB)
	}
}

// wantWidths asserts the fusion tiling of a straight-line body so each test
// is pinned to the triple shape it claims to exercise.
func wantWidths(t *testing.T, body []sparc.Instr, want []int8) {
	t.Helper()
	if got := FusionPlan(body); !reflect.DeepEqual(got, want) {
		t.Fatalf("fusion plan = %v, want %v (test no longer covers the intended triple)", got, want)
	}
}

// slotFaultLoop builds the shared skeleton of the slot-fault tests: a loop
// whose load address is DataBase plus (iteration>>4)<<1 — word-aligned for
// the first 16 iterations (plenty to compile at threshold 1), then offset 2,
// so the fused load faults from inside a long-since-compiled triple.
//
//	sethi %l0, DataBase
//	add %o1, 1, %o1     ; counter
//	srl %o1, 4, %o5     ; 0 while warm, 1 from iteration 16
//	<mid>               ; shape-specific body, computes/loads through %l1/%l2
//	subcc %o1, 64, %g0
//	bl 1
//	ta exit
func slotFaultLoop(mid []sparc.Instr) []sparc.Instr {
	text := []sparc.Instr{
		{Op: sparc.Sethi, Rd: sparc.L0, Imm: int32(DataBase >> 10), UseImm: true},
		sparc.RI(sparc.Add, sparc.O1, 1, sparc.O1),
		sparc.RI(sparc.Srl, sparc.O1, 4, sparc.O5),
	}
	text = append(text, mid...)
	return append(text,
		sparc.RI(sparc.Subcc, sparc.O1, 64, sparc.G0),
		sparc.Branch(sparc.BL, 1),
		sparc.Instr{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	)
}

// TestDifferentialTripleSlotFaults faults the fused load in each slot
// position a triple can carry one: slot 1 (tLdSllAdd and the RMW tLdAddSt),
// slot 2 (tOrLdSll), and slot 3 (tSllAddLd). The store slot of the RMW
// triples can never be first to fault: fusion requires sameAddr with the
// load slot, so an unaligned store address always faults at the LOAD pc —
// the tLdAddSt case pins exactly that attribution.
func TestDifferentialTripleSlotFaults(t *testing.T) {
	barrier := sparc.RR(sparc.Xor, sparc.G0, sparc.G0, sparc.G3)
	cases := []struct {
		name   string
		mid    []sparc.Instr
		widths []int8 // tiling of [counter add .. subcc] inclusive
	}{
		{"slot1 tLdSllAdd", []sparc.Instr{
			sparc.RI(sparc.Sll, sparc.O5, 1, sparc.L1),
			sparc.RR(sparc.Add, sparc.L0, sparc.L1, sparc.L2),
			barrier, // keeps the ld out of the sll/add window above
			{Op: sparc.Ld, Rd: sparc.O3, Rs1: sparc.L2, UseImm: true},
			sparc.RI(sparc.Sll, sparc.O3, 2, sparc.O4),
			sparc.RI(sparc.Add, sparc.O4, 0, sparc.O6),
		}, []int8{1, 1, 2, 1, 3, 1}},
		{"slot1 tLdAddSt", []sparc.Instr{
			sparc.RI(sparc.Sll, sparc.O5, 1, sparc.L1),
			sparc.RR(sparc.Add, sparc.L0, sparc.L1, sparc.L2),
			barrier,
			{Op: sparc.Ld, Rd: sparc.O3, Rs1: sparc.L2, UseImm: true},
			sparc.RI(sparc.Add, sparc.O3, 1, sparc.O3),
			{Op: sparc.St, Rd: sparc.O3, Rs1: sparc.L2, UseImm: true},
		}, []int8{1, 1, 2, 1, 3, 1}},
		{"slot2 tOrLdSll", []sparc.Instr{
			sparc.RI(sparc.Sll, sparc.O5, 1, sparc.L1),
			sparc.RR(sparc.Add, sparc.L0, sparc.L1, sparc.L2),
			sparc.RI(sparc.Or, sparc.L2, 0, sparc.L3),
			{Op: sparc.Ld, Rd: sparc.O3, Rs1: sparc.L3, UseImm: true},
			sparc.RI(sparc.Sll, sparc.O3, 2, sparc.O4),
		}, []int8{1, 1, 2, 3, 1}},
		{"slot3 tSllAddLd", []sparc.Instr{
			barrier, // keeps the sll window off the srl above
			sparc.RI(sparc.Sll, sparc.O5, 1, sparc.L1),
			sparc.RR(sparc.Add, sparc.L0, sparc.L1, sparc.L2),
			{Op: sparc.Ld, Rd: sparc.O3, Rs1: sparc.L2, UseImm: true},
		}, []int8{1, 1, 1, 3, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			text := slotFaultLoop(c.mid)
			wantWidths(t, text[1:len(text)-2], c.widths)
			diffRunBoth(t, c.name, text, nil)
		})
	}
}

// TestDifferentialPatchInTripleStore lands a text patch from the StoreHook
// of an RMW triple's OWN store slot, overwriting the add the same triple
// already consumed this pass. The store must commit, the run exit, the
// compiled artifacts invalidate, and every later iteration use the patched
// stride — on both compiled tiers, matching Step exactly.
func TestDifferentialPatchInTripleStore(t *testing.T) {
	text := []sparc.Instr{
		{Op: sparc.Sethi, Rd: sparc.L0, Imm: int32(DataBase >> 10), UseImm: true},
		sparc.RR(sparc.Xor, sparc.G0, sparc.G0, sparc.G3),
		{Op: sparc.Ld, Rd: sparc.O2, Rs1: sparc.L0, UseImm: true}, // tLdAddSt
		sparc.RI(sparc.Add, sparc.O2, 1, sparc.O2),                // patched mid-flight
		{Op: sparc.St, Rd: sparc.O2, Rs1: sparc.L0, UseImm: true},
		sparc.RI(sparc.Add, sparc.O1, 1, sparc.O1),
		sparc.RI(sparc.Subcc, sparc.O1, 100, sparc.G0),
		sparc.Branch(sparc.BL, 1),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
	wantWidths(t, text[1:7], []int8{1, 3, 1, 1})
	patched := sparc.RI(sparc.Add, sparc.O2, 7, sparc.O2)
	setup := func(m *Machine) {
		stores := 0
		m.StoreHook = func(addr uint32, size int32) int64 {
			stores++
			if stores == 9 {
				if err := m.PatchInstr(3, patched); err != nil {
					t.Fatalf("patch: %v", err)
				}
			}
			return 0
		}
	}
	diffRunBoth(t, "patch in triple store", text, setup)
}

// TestDifferentialMonitoredClobberLoadInTriple monitors (LoadHook) a fused
// run whose slot-3 load clobbers its own address register (ld [%l2], %l2 —
// the pointer-chase shape LoadClobbersAddress exists for). The hook must
// observe the PRE-clobber effective address for every load, in Step's exact
// order, on both compiled tiers.
func TestDifferentialMonitoredClobberLoadInTriple(t *testing.T) {
	text := []sparc.Instr{
		{Op: sparc.Sethi, Rd: sparc.L0, Imm: int32(DataBase >> 10), UseImm: true},
		sparc.RI(sparc.Add, sparc.O1, 1, sparc.O1),
		sparc.RI(sparc.Srl, sparc.O1, 2, sparc.O5),
		sparc.RR(sparc.Xor, sparc.G0, sparc.G0, sparc.G3),
		sparc.RI(sparc.Sll, sparc.O5, 2, sparc.L1), // tSllAddLd
		sparc.RR(sparc.Add, sparc.L0, sparc.L1, sparc.L2),
		{Op: sparc.Ld, Rd: sparc.L2, Rs1: sparc.L2, UseImm: true}, // clobbers %l2
		sparc.RI(sparc.Subcc, sparc.O1, 60, sparc.G0),
		sparc.Branch(sparc.BL, 1),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
	wantWidths(t, text[1:8], []int8{1, 1, 1, 3, 1})

	addrs := map[*Machine][]uint32{}
	var ms []*Machine
	setup := func(m *Machine) {
		ms = append(ms, m)
		m.LoadHook = func(addr uint32, size int32) int64 {
			addrs[m] = append(addrs[m], addr)
			return 0
		}
	}
	diffRunBoth(t, "monitored clobber load in triple", text, setup)
	// diffRunBoth creates (step, engine) pairs in order; every machine must
	// have seen the same address stream.
	if len(ms) < 2 {
		t.Fatal("no machines recorded")
	}
	want := addrs[ms[0]]
	if len(want) == 0 {
		t.Fatal("reference machine recorded no monitored loads")
	}
	for _, m := range ms[1:] {
		if !reflect.DeepEqual(addrs[m], want) {
			t.Fatalf("monitored address stream diverged: %v vs %v", addrs[m], want)
		}
	}
}
