package machine

import (
	"strings"
	"testing"

	"databreak/internal/cache"
	"databreak/internal/sparc"
)

func newM() *Machine { return New(cache.DefaultConfig, DefaultCosts) }

func TestHaltAndExitCode(t *testing.T) {
	m := newM()
	m.LoadText([]sparc.Instr{
		sparc.RI(sparc.Or, sparc.G0, 7, sparc.O0),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}, 0)
	code, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if code != 7 || !m.Halted() {
		t.Fatalf("code=%d halted=%v", code, m.Halted())
	}
}

func TestG0IsAlwaysZero(t *testing.T) {
	m := newM()
	m.LoadText([]sparc.Instr{
		sparc.RI(sparc.Or, sparc.G0, 99, sparc.G0), // write to %g0
		sparc.RR(sparc.Or, sparc.G0, sparc.G0, sparc.O0),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}, 0)
	code, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("%%g0 must stay zero, got %d", code)
	}
}

func TestMemoryBigEndianRoundTrip(t *testing.T) {
	m := newM()
	m.WriteWord(0x2000_0000, -123456789)
	if got := m.ReadWord(0x2000_0000); got != -123456789 {
		t.Fatalf("round trip = %d", got)
	}
	// Big-endian byte order.
	m.WriteWord(0x3000, 0x11223344)
	if b := m.peekByte(0x3000); b != 0x11 {
		t.Fatalf("first byte = %#x, want 0x11 (big endian)", b)
	}
}

func TestUnalignedAccessFaults(t *testing.T) {
	m := newM()
	m.LoadText([]sparc.Instr{
		sparc.LoadRI(sparc.G0, 2, sparc.O0),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}, 0)
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "unaligned") {
		t.Fatalf("err = %v, want unaligned fault", err)
	}
}

func TestDivisionByZeroFaults(t *testing.T) {
	m := newM()
	m.LoadText([]sparc.Instr{
		sparc.RI(sparc.SDiv, sparc.O1, 0, sparc.O0),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}, 0)
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "division") {
		t.Fatalf("err = %v, want division fault", err)
	}
}

func TestWindowOverflowCostsCycles(t *testing.T) {
	// Nest saves past NWindows and confirm spill cycles are charged.
	deep := make([]sparc.Instr, 0, 64)
	for i := 0; i < NWindows+4; i++ {
		deep = append(deep, sparc.Instr{Op: sparc.Save, Rs1: sparc.SP, Imm: -96, UseImm: true, Rd: sparc.SP})
	}
	for i := 0; i < NWindows+4; i++ {
		deep = append(deep, sparc.Instr{Op: sparc.Restore, Rs1: sparc.G0, UseImm: true, Rd: sparc.G0})
	}
	deep = append(deep, sparc.Instr{Op: sparc.Ta, Imm: TrapExit, UseImm: true})

	m := newM()
	m.LoadText(deep, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	spilled := m.Cycles()

	// A shallow nest of the same instruction count but depth < NWindows.
	shallow := make([]sparc.Instr, 0, 64)
	for i := 0; i < NWindows+4; i++ {
		shallow = append(shallow,
			sparc.Instr{Op: sparc.Save, Rs1: sparc.SP, Imm: -96, UseImm: true, Rd: sparc.SP},
			sparc.Instr{Op: sparc.Restore, Rs1: sparc.G0, UseImm: true, Rd: sparc.G0},
		)
	}
	shallow = append(shallow, sparc.Instr{Op: sparc.Ta, Imm: TrapExit, UseImm: true})
	m2 := newM()
	m2.LoadText(shallow, 0)
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if spilled <= m2.Cycles() {
		t.Fatalf("deep nesting (%d cycles) should cost more than shallow (%d)", spilled, m2.Cycles())
	}
}

func TestWindowRestoreSeesCalleeResults(t *testing.T) {
	// Callee writes %i0; after restore the caller must see it in %o0.
	m := newM()
	m.LoadText([]sparc.Instr{
		{Op: sparc.Save, Rs1: sparc.SP, Imm: -96, UseImm: true, Rd: sparc.SP},
		sparc.RI(sparc.Or, sparc.G0, 42, sparc.I0),
		{Op: sparc.Restore, Rs1: sparc.G0, UseImm: true, Rd: sparc.G0},
		sparc.RR(sparc.Or, sparc.O0, sparc.G0, sparc.O0),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}, 0)
	code, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if code != 42 {
		t.Fatalf("restore must propagate %%i regs to caller %%o regs, got %d", code)
	}
}

func TestRestoreUnderflowFaults(t *testing.T) {
	m := newM()
	m.LoadText([]sparc.Instr{
		{Op: sparc.Restore, Rs1: sparc.G0, UseImm: true, Rd: sparc.G0},
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}, 0)
	if _, err := m.Run(); err == nil {
		t.Fatal("restore at top frame must fault")
	}
}

func TestMonHitCallback(t *testing.T) {
	var hits []uint32
	var sizes []int32
	m := newM()
	m.OnMonHit = func(addr uint32, size int32) {
		hits = append(hits, addr)
		sizes = append(sizes, size)
	}
	m.LoadText([]sparc.Instr{
		sparc.RI(sparc.Or, sparc.G0, 0x100, sparc.G5),
		{Op: sparc.Ta, Imm: TrapMonHit4, UseImm: true},
		{Op: sparc.Ta, Imm: TrapMonHit8, UseImm: true},
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0] != 0x100 || sizes[0] != 4 || sizes[1] != 8 {
		t.Fatalf("hits=%v sizes=%v", hits, sizes)
	}
}

func TestStoreHookChargesCycles(t *testing.T) {
	prog := []sparc.Instr{
		sparc.StoreRI(sparc.G0, sparc.G0, 0x100),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
	m := newM()
	m.LoadText(prog, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	base := m.Cycles()

	m2 := newM()
	m2.StoreHook = func(addr uint32, size int32) int64 {
		if addr != 0x100 || size != 4 {
			t.Errorf("hook got addr=%#x size=%d", addr, size)
		}
		return 1000
	}
	m2.LoadText(prog, 0)
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if m2.Cycles() != base+1000 {
		t.Fatalf("cycles=%d, want %d", m2.Cycles(), base+1000)
	}
}

func TestPerInstrPenalty(t *testing.T) {
	prog := []sparc.Instr{
		sparc.MakeNop(), sparc.MakeNop(),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
	m := newM()
	m.LoadText(prog, 0)
	m.Run()
	base := m.Cycles()
	m2 := newM()
	m2.PerInstrPenalty = 85_000
	m2.LoadText(prog, 0)
	m2.Run()
	if got := m2.Cycles() - base; got != 3*85_000 {
		t.Fatalf("penalty cycles = %d, want %d", got, 3*85_000)
	}
}

func TestPatchInstrInvalidatesICache(t *testing.T) {
	// Run a loop; patch its body to exit; ensure the patch takes effect.
	prog := []sparc.Instr{
		sparc.MakeNop(),                             // 0: will be patched
		sparc.Branch(sparc.BA, 0),                   // 1: loop forever
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true}, // 2
	}
	m := newM()
	m.LoadText(prog, 0)
	for i := 0; i < 10; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	m.PatchInstr(1, sparc.Branch(sparc.BA, 2))
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !m.Halted() {
		t.Fatal("patched branch must redirect the loop to exit")
	}
}

func TestResetPreservesProgram(t *testing.T) {
	m := newM()
	m.LoadText([]sparc.Instr{
		sparc.RI(sparc.Or, sparc.G0, 5, sparc.O0),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.Cycles() != 0 || m.Instrs() != 0 || m.Halted() {
		t.Fatal("Reset must clear execution state")
	}
	code, err := m.Run()
	if err != nil || code != 5 {
		t.Fatalf("second run: code=%d err=%v", code, err)
	}
}

func TestMaxInstrsGuard(t *testing.T) {
	m := newM()
	m.MaxInstrs = 100
	m.LoadText([]sparc.Instr{sparc.Branch(sparc.BA, 0)}, 0)
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "MaxInstrs") {
		t.Fatalf("err = %v, want MaxInstrs guard", err)
	}
}

func TestCyclesChargeCacheMisses(t *testing.T) {
	// Loads that stride across lines must cost more than repeated loads of
	// one address.
	mkProg := func(stride int32) []sparc.Instr {
		var p []sparc.Instr
		p = append(p, sparc.RI(sparc.Or, sparc.G0, 0, sparc.O1))
		for i := 0; i < 64; i++ {
			p = append(p,
				sparc.Instr{Op: sparc.Ld, Rs1: sparc.O1, Imm: 0x1000, UseImm: true, Rd: sparc.O0},
				sparc.RI(sparc.Add, sparc.O1, stride, sparc.O1),
			)
		}
		p = append(p, sparc.Instr{Op: sparc.Ta, Imm: TrapExit, UseImm: true})
		return p
	}
	m := newM()
	m.LoadText(mkProg(0), 0)
	m.Run()
	same := m.Cycles()
	m2 := newM()
	m2.LoadText(mkProg(64), 0)
	m2.Run()
	if m2.Cycles() <= same {
		t.Fatalf("striding loads (%d) should cost more than repeated loads (%d)", m2.Cycles(), same)
	}
}

func TestJmplIndirect(t *testing.T) {
	// Compute the address of instruction 3 and jump there via jmpl.
	target := int32(TextBase) + 3*4
	m := newM()
	m.LoadText([]sparc.Instr{
		sparc.MakeNop(),
		{Op: sparc.Sethi, Imm: target >> 10, UseImm: true, Rd: sparc.O1},
		{Op: sparc.Jmpl, Rs1: sparc.O1, Imm: target & 0x3ff, UseImm: true, Rd: sparc.G0},
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true}, // 3: target
	}, 0)
	code, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if m.Instrs() != 4 {
		t.Fatalf("executed %d instructions, want 4", m.Instrs())
	}
}

func TestJmplBadTargetFaults(t *testing.T) {
	m := newM()
	m.LoadText([]sparc.Instr{
		{Op: sparc.Jmpl, Rs1: sparc.G0, Imm: 0x40, UseImm: true, Rd: sparc.G0},
	}, 0)
	if _, err := m.Run(); err == nil {
		t.Fatal("jump below TextBase must fault")
	}
}

func TestCountersIncrement(t *testing.T) {
	m := newM()
	m.SetCounterCount(2)
	loop := []sparc.Instr{
		sparc.RI(sparc.Or, sparc.G0, 0, sparc.O1),
		{Op: sparc.Add, Rs1: sparc.O1, Imm: 1, UseImm: true, Rd: sparc.O1, Count: 1},
		{Op: sparc.Subcc, Rs1: sparc.O1, Imm: 10, UseImm: true, Rd: sparc.G0},
		sparc.Branch(sparc.BL, 1),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true, Count: 2},
	}
	m.LoadText(loop, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Counters[0] != 10 || m.Counters[1] != 1 {
		t.Fatalf("counters = %v", m.Counters)
	}
}

func TestOutputAndPrintTraps(t *testing.T) {
	m := newM()
	m.LoadText([]sparc.Instr{
		sparc.RI(sparc.Or, sparc.G0, -5, sparc.O0),
		{Op: sparc.Ta, Imm: TrapPrintInt, UseImm: true},
		sparc.RI(sparc.Or, sparc.G0, 'A', sparc.O0),
		{Op: sparc.Ta, Imm: TrapPrintCh, UseImm: true},
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Output(); got != "-5\nA" {
		t.Fatalf("output = %q", got)
	}
}

func TestAllocAlignmentAndHeader(t *testing.T) {
	m := newM()
	p1 := m.alloc(5)
	p2 := m.alloc(5)
	if p1%8 != 0 || p2%8 != 0 {
		t.Fatalf("allocations must be 8-aligned: %#x %#x", p1, p2)
	}
	if p1 == p2 {
		t.Fatal("distinct allocations must not alias")
	}
	if got := m.ReadWord(p1 - 4); got != 8 {
		t.Fatalf("header size = %d, want rounded 8", got)
	}
}

func TestLddStdPair(t *testing.T) {
	m := newM()
	m.LoadText([]sparc.Instr{
		sparc.RI(sparc.Or, sparc.G0, 11, sparc.O0),
		sparc.RI(sparc.Or, sparc.G0, 22, sparc.O1),
		{Op: sparc.Std, Rd: sparc.O0, Rs1: sparc.G0, Imm: 0x100, UseImm: true},
		{Op: sparc.Ldd, Rd: sparc.O2, Rs1: sparc.G0, Imm: 0x100, UseImm: true},
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Reg(sparc.O2) != 11 || m.Reg(sparc.O3) != 22 {
		t.Fatalf("ldd pair = %d,%d", m.Reg(sparc.O2), m.Reg(sparc.O3))
	}
	if m.ReadWord(0x100) != 11 || m.ReadWord(0x104) != 22 {
		t.Fatal("std wrote wrong words")
	}
}

func TestLddStdAlignmentAndRegParity(t *testing.T) {
	cases := [][]sparc.Instr{
		{{Op: sparc.Ldd, Rd: sparc.O1, Rs1: sparc.G0, Imm: 0x100, UseImm: true}}, // odd rd
		{{Op: sparc.Std, Rd: sparc.O1, Rs1: sparc.G0, Imm: 0x100, UseImm: true}},
		{{Op: sparc.Ldd, Rd: sparc.O0, Rs1: sparc.G0, Imm: 0x104, UseImm: true}}, // misaligned
		{{Op: sparc.Std, Rd: sparc.O0, Rs1: sparc.G0, Imm: 0x104, UseImm: true}},
	}
	for i, prog := range cases {
		m := newM()
		m.LoadText(append(prog, sparc.Instr{Op: sparc.Ta, Imm: TrapExit, UseImm: true}), 0)
		if _, err := m.Run(); err == nil {
			t.Errorf("case %d must fault", i)
		}
	}
}

func TestMoreALUOps(t *testing.T) {
	m := newM()
	m.LoadText([]sparc.Instr{
		sparc.RI(sparc.Or, sparc.G0, 0b1100, sparc.O1),
		sparc.RI(sparc.Orn, sparc.O1, 0b1010, sparc.O2),    // o1 | ^imm
		sparc.RI(sparc.Andncc, sparc.O1, 0b1010, sparc.O3), // o1 &^ imm
		sparc.RI(sparc.Xorcc, sparc.O1, 0b0110, sparc.O4),
		{Op: sparc.Sethi, Imm: 0x12345, UseImm: true, Rd: sparc.O5},
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(sparc.O2); got != (12 | ^int32(10)) {
		t.Errorf("orn = %d", got)
	}
	if got := m.Reg(sparc.O3); got != 4 {
		t.Errorf("andncc = %d", got)
	}
	if got := m.Reg(sparc.O4); got != 10 {
		t.Errorf("xorcc = %d", got)
	}
	if got := m.Reg(sparc.O5); got != 0x12345<<10 {
		t.Errorf("sethi = %#x", got)
	}
}

func TestPrintStrTrap(t *testing.T) {
	m := newM()
	m.LoadData(0x2000, []byte("hello"))
	m.LoadText([]sparc.Instr{
		sparc.RI(sparc.Or, sparc.G0, 0x2000, sparc.O0),
		sparc.RI(sparc.Or, sparc.G0, 5, sparc.O1),
		{Op: sparc.Ta, Imm: TrapPrintStr, UseImm: true},
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Output() != "hello" {
		t.Fatalf("output = %q", m.Output())
	}
}

func TestUnknownTrapFaults(t *testing.T) {
	m := newM()
	m.LoadText([]sparc.Instr{{Op: sparc.Ta, Imm: 99, UseImm: true}}, 0)
	if _, err := m.Run(); err == nil {
		t.Fatal("unknown trap must fault")
	}
}

func TestUnimpFaults(t *testing.T) {
	m := newM()
	m.LoadText([]sparc.Instr{{Op: sparc.Unimp}}, 0)
	if _, err := m.Run(); err == nil {
		t.Fatal("unimp must fault")
	}
}

func TestRangeAndCtlTraps(t *testing.T) {
	m := newM()
	var rangeIDs []int32
	m.OnRangeHit = func(id int32) { rangeIDs = append(rangeIDs, id) }
	var ctl []int32
	m.OnCtlViolation = func(d int32) { ctl = append(ctl, d) }
	m.LoadText([]sparc.Instr{
		sparc.RI(sparc.Or, sparc.G0, 7, sparc.O0),
		{Op: sparc.Ta, Imm: TrapRangeHit, UseImm: true},
		sparc.RI(sparc.Or, sparc.G0, 3, sparc.O0),
		{Op: sparc.Ta, Imm: TrapCtlCheck, UseImm: true},
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}, 0)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rangeIDs) != 1 || rangeIDs[0] != 7 {
		t.Fatalf("range ids = %v", rangeIDs)
	}
	if len(ctl) != 1 || ctl[0] != 3 {
		t.Fatalf("ctl = %v", ctl)
	}
	// Without a handler, the control-check trap is fatal.
	m2 := newM()
	m2.LoadText([]sparc.Instr{{Op: sparc.Ta, Imm: TrapCtlCheck, UseImm: true}}, 0)
	if _, err := m2.Run(); err == nil {
		t.Fatal("ctl violation without handler must fault")
	}
}
