// Block-dispatch execution engine.
//
// Run() no longer pays the full Step() entry cost — halted check, pc bounds
// check, MaxInstrs check, indirect call, pc writeback — once per simulated
// instruction. Instead LoadText scans the decoded text into a block index:
// for every text index i, blockLen[i] is the number of consecutive
// STRAIGHT-LINE instructions starting at i (instructions that cannot branch,
// trap, halt, or grow/shrink the register-window stack). Run dispatches one
// block at a time: a single bounds/halted check, an amortized MaxInstrs
// budget, the Base (and PerInstrPenalty) cycle contribution folded into one
// multiply per block, and a tight inner loop over predecoded micro-ops.
// Fault-free terminators (branches and calls) chain inside the engine;
// everything else — jmpl, save/restore, traps, unimp — runs through the
// unchanged Step path, one per block.
//
// Everything data-dependent still happens per instruction, in program order,
// so simulated cycles, cache statistics, and event counters stay
// bit-identical to the single-Step engine (DESIGN.md §6): window spills
// never occur inside a block, and StoreHook and counter effects fire exactly
// where Step would fire them. Cache accesses stay exact too, but both
// instruction fetches and data accesses use a known-hit fast path: an access
// to the same line as the previous access of its kind skips the tag probe
// when no intervening access could have evicted the line (cache.NoteHits
// keeps the statistics identical); whenever residency cannot be proven the
// engine falls back to a full cache.Access, so the fast path is
// conservative, never wrong.
//
// Runtime code patching (Kessler-style fast breakpoints, the paper's
// PreMonitor/PostMonitor flow) may rewrite text at any trap boundary — the
// same self-modifying-code hazard treated in "Instrumenting self-modifying
// code". The invariant: ALL text mutation goes through PatchInstr, which
// re-decodes the patched micro-op and recomputes the block index for the
// (bounded) straight-line run ending at the patched index. A patch that
// lands inside the currently executing block is caught by a text generation
// counter checked on the only re-entrant paths a block interior has
// (StoreHook and LoadHook); the block then exits cleanly and re-dispatches
// against the fresh index.
package machine

import (
	"encoding/binary"

	"databreak/internal/cache"
	"databreak/internal/sparc"
)

// scratchReg is the extra register-file slot that absorbs writes whose
// architectural destination is %g0. Mapping rd==%g0 to this slot at decode
// time removes the "is it %g0" branch from every ALU/load write in the block
// interior; the slot is never read.
const scratchReg = 32

// maxBlockLen caps blockLen so both the MaxInstrs clamp granularity and the
// backward re-scan a PatchInstr triggers are bounded, even for pathological
// branch-free programs. Real workload blocks are far shorter.
const maxBlockLen = 1024

// noLine is the "no instruction line known resident" sentinel for the
// known-hit ifetch fast path; no 32-bit address shifts to it.
const noLine = ^uint32(0)

// uop is one predecoded instruction plus its block-index entry. Operand 2 is
// unified: value = regs[s2r] + s2i, where the decoder sets s2r=%g0 (always
// zero) for the immediate form and s2i=0 for the register form — no UseImm
// branch in the hot loop. For Sethi, s2i holds the already-shifted constant.
// The fault-free terminators the dispatcher chains inline are predecoded
// too: for Br, rd holds the condition and s2i the target index; for Call,
// s2i holds the target. bl co-locates the block length with the first
// micro-op's operands so a dispatch touches one cache line, not two arrays.
type uop struct {
	op  sparc.Op
	rd  uint8 // destination index; scratchReg when the target is %g0; Cond for Br
	rs1 uint8
	s2r uint8
	s2i int32 // operand-2 immediate; branch target index for Br/Call
	cnt int32 // event counter index+1; 0 means none (sparc.Instr.Count)
	bl  int32 // straight-line run starting here; 0 marks a terminator
}

// Condition codes are kept packed in Machine.ccb using these bits, which
// double as the condMask bit index.
const (
	ccN = 8
	ccZ = 4
	ccV = 2
	ccC = 1
)

// condMask[c] has bit b set iff Cond(c) holds under the CC whose packed form
// is b; one table lookup replaces a 16-way Eval switch on the hot branch
// path. Filled from Cond.Eval itself so the two can never disagree.
var condMask [16]uint16

func init() {
	for c := range condMask {
		for b := 0; b < 16; b++ {
			if sparc.Cond(c).Eval(ccFromBits(uint8(b))) {
				condMask[c] |= 1 << b
			}
		}
	}
}

// ccFromBits rebuilds the architectural CC view from the packed form.
func ccFromBits(b uint8) sparc.CC {
	return sparc.CC{N: b&ccN != 0, Z: b&ccZ != 0, V: b&ccV != 0, C: b&ccC != 0}
}

// opCount is or-ed into an interior uop's op when the instruction carries an
// event counter (sparc.Instr.Count). The hot loop's switch falls to default
// for such ops, bumps the counter, strips the flag, and re-dispatches — so
// instructions without counters (the vast majority) pay no per-instruction
// counter check at all.
const opCount sparc.Op = 0x80

// decodeUop predecodes in. ok reports whether the instruction is
// straight-line (block interior); terminators and malformed encodings that
// must fault return ok=false and execute via Step (or, for Br/Call, inline
// in the dispatcher from the predecoded fields).
func decodeUop(in *sparc.Instr) (u uop, ok bool) {
	switch in.Op {
	case sparc.Nop, sparc.Ld, sparc.Ldd, sparc.St, sparc.Std,
		sparc.Add, sparc.Sub, sparc.And, sparc.Andn, sparc.Or, sparc.Orn,
		sparc.Xor, sparc.Xnor, sparc.Sll, sparc.Srl, sparc.Sra,
		sparc.SMul, sparc.SDiv,
		sparc.Addcc, sparc.Subcc, sparc.Andcc, sparc.Andncc,
		sparc.Orcc, sparc.Xorcc, sparc.Sethi:
	case sparc.Br:
		return uop{op: sparc.Br, rd: uint8(in.Cond & 15), s2i: in.Target, cnt: in.Count}, false
	case sparc.Call:
		return uop{op: sparc.Call, s2i: in.Target, cnt: in.Count}, false
	case sparc.Jmpl:
		u = uop{op: sparc.Jmpl, rd: uint8(in.Rd), rs1: uint8(in.Rs1), cnt: in.Count}
		if in.UseImm {
			u.s2r = uint8(sparc.G0)
			u.s2i = in.Imm
		} else {
			u.s2r = uint8(in.Rs2)
		}
		if in.Rd == sparc.G0 {
			u.rd = scratchReg
		}
		return u, false
	default:
		return uop{op: in.Op}, false // Jmpl/Save/Restore/Ta/Unimp/unknown: Step only
	}
	u = uop{op: in.Op, rd: uint8(in.Rd), rs1: uint8(in.Rs1), cnt: in.Count}
	if in.UseImm {
		u.s2r = uint8(sparc.G0)
		u.s2i = in.Imm
	} else {
		u.s2r = uint8(in.Rs2)
		u.s2i = 0
	}
	switch in.Op {
	case sparc.Sethi:
		u.s2i = in.Imm << 10
		if in.Rd == sparc.G0 {
			u.rd = scratchReg
		}
	case sparc.Ldd:
		// Odd rd must fault; rd==%g0 has the quirky "write %g1 only"
		// semantics writeReg gives it. Both go through Step.
		if in.Rd&1 != 0 || in.Rd == sparc.G0 {
			return uop{op: in.Op}, false
		}
	case sparc.Std:
		if in.Rd&1 != 0 {
			return uop{op: in.Op}, false
		}
	case sparc.St:
		// rd is a source; keep the architectural index.
	default:
		if in.Rd == sparc.G0 {
			u.rd = scratchReg
		}
	}
	if u.cnt != 0 {
		u.op |= opCount
	}
	return u, true
}

// rebuildBlocks recomputes the whole block index from m.text (LoadText).
// The decode pass itself is buildUops (image.go), shared with BuildImage.
func (m *Machine) rebuildBlocks() {
	m.uops = buildUops(m.text, m.uops)
	m.textGen++
}

// invalidateBlock re-decodes the patched index and repairs the block index
// for the straight-line run ending there. uops[i].bl > 0 is exactly "index
// i is straight-line", so the backward walk can stop at the first
// unchanged entry: everything earlier is unchanged too. The walk is bounded
// by maxBlockLen.
func (m *Machine) invalidateBlock(idx int32) {
	u, ok := decodeUop(&m.text[idx])
	next := int32(0)
	if int(idx)+1 < len(m.uops) {
		next = m.uops[idx+1].bl
	}
	nl := int32(0)
	if ok {
		nl = min(next+1, maxBlockLen)
	}
	old := m.uops[idx].bl
	u.bl = nl
	m.uops[idx] = u
	if nl == old {
		// Same length and (because length>0 ⇔ straight-line) same class;
		// the decoded uop above is already refreshed, and no earlier entry
		// can change. Still bump the generation: the OPERANDS may differ,
		// and an in-flight block must re-dispatch rather than keep running
		// on a stale snapshot.
		m.textGen++
		return
	}
	next = nl
	for i := idx - 1; i >= 0; i-- {
		if m.uops[i].bl == 0 {
			break // non-straight-line: runs further up are unaffected
		}
		nl = min(next+1, maxBlockLen)
		if nl == m.uops[i].bl {
			break
		}
		m.uops[i].bl = nl
		next = nl
	}
	m.textGen++
}

// execBlocks is the block-dispatch engine proper. It executes straight-line
// blocks in a tight predecoded loop and chains through the two fault-free
// terminators (Br, Call) without leaving the function, so a whole loop
// iteration of the simulated program typically costs one dispatch. It
// returns nil (with state committed) when it needs Run to act: the MaxInstrs
// budget is exhausted, pc left the text, or the next instruction is a
// terminator only Step handles (jmpl, save/restore, traps, unimp).
//
// Cycle accounting matches Step exactly: the per-instruction
// Base+PerInstrPenalty contribution is folded into one multiply per block,
// and a fault charges the faulting instruction's base cost but nothing past
// the point Step would have charged.
//
// curILine/curDLine implement the known-hit fast path for the cache model:
// once a fetch (respectively data access) has touched a line, later accesses
// to the same line are guaranteed hits — and skip the tag probe — until an
// access that maps to the same direct-mapped slot could have evicted it.
// Both trackers are conservative: whenever residency cannot be proven the
// engine falls back to a full cache.Access, so hit/miss statistics and
// miss-penalty cycles stay exact either way (a hit never changes tag state).
// ihits batches the statistics increments for the skipped ifetch probes;
// they are flushed at every exit and before any callback that could observe
// the machine.
func (m *Machine) execBlocks() error {
	base := m.costs.Base + m.PerInstrPenalty
	// Cache geometry, hoisted so the per-instruction line arithmetic does
	// not re-read through the cache pointer.
	shift := m.cache.LineShift()
	imask := m.cache.IndexMask()
	curILine := noLine
	curDLine := noLine
	var ihits uint64
dispatch:
	for {
		if m.instrs >= m.MaxInstrs {
			m.cache.NoteHits(cache.IFetch, ihits)
			return nil // Run reports the budget error with this pc
		}
		pc := m.pc
		if uint32(pc) >= uint32(len(m.uops)) {
			m.cache.NoteHits(cache.IFetch, ihits)
			return nil // Run raises the out-of-text fault
		}
		head := &m.uops[pc]
		n := int64(head.bl)
		if n == 0 {
			// Terminator. Br, Call, and a well-formed Jmpl cannot fault or
			// halt: dispatch them here (from the predecoded fields) and keep
			// chaining. Everything else — save/restore, traps, unimp, and a
			// Jmpl that must fault — goes through Step. The Jmpl fast path
			// validates its target BEFORE committing any state, so bailing
			// to Step replays the instruction exactly.
			next := pc + 1
			switch head.op {
			case sparc.Br:
				taken := condMask[head.rd]>>uint32(m.ccb)&1 != 0
				if taken {
					m.cycles += m.costs.TakenBranch
					next = head.s2i
				}
				// Edge profile for the trace tier (trace.go): every branch
				// the dispatcher executes before its enclosing head compiles
				// contributes measured bias; once traces cover the hot paths
				// this site runs cold. Saturating, so the counts never wrap.
				if m.brProf != nil {
					if p := m.brProf[pc]; p&0xffff != 0xffff {
						if taken {
							p += 1<<16 | 1
						} else {
							p++
						}
						m.brProf[pc] = p
					}
				}
			case sparc.Call:
				m.regs[sparc.O7] = int32(TextBase) + (pc+1)*4
				m.cycles += m.costs.TakenBranch
				next = head.s2i
			case sparc.Jmpl:
				dest := uint32(m.regs[head.rs1] + m.regs[head.s2r] + head.s2i)
				idx := int32((dest - TextBase) / 4)
				if dest < TextBase || dest&3 != 0 || int(idx) >= len(m.uops) {
					m.cache.NoteHits(cache.IFetch, ihits)
					return nil // Step replays and raises the fault
				}
				m.regs[head.rd] = int32(TextBase) + (pc+1)*4
				m.cycles += m.costs.TakenBranch
				next = idx
			default:
				m.cache.NoteHits(cache.IFetch, ihits)
				return nil
			}
			m.instrs++
			m.cycles += base
			iaddr := TextBase + uint32(pc)*4
			if line := iaddr >> shift; line == curILine {
				ihits++
			} else {
				if !m.cache.Access(iaddr, cache.IFetch) {
					m.cycles += m.costs.MissPenalty
				}
				if (line^curDLine)&imask == 0 {
					curDLine = noLine
				}
				curILine = line
			}
			if head.cnt != 0 {
				m.Counters[head.cnt-1]++
			}
			m.pc = next
			continue
		}
		// Trace tier (trace.go): m.traces is non-nil exactly when the trace
		// engine is active, so the whole tier costs one nil check under
		// EngineBlock. A compiled trace is entered only when a full pass fits
		// in the remaining budget — otherwise the block path below clamps the
		// tail bit-exactly. Heads without a trace bump their hotness counter
		// (private text only; image traces were compiled eagerly).
		if ts := m.traces; ts != nil {
			if tr := ts[pc]; tr != nil {
				if cs := m.cls; cs != nil {
					// Closure tier (closure.go): thread the trace on first
					// dispatch, then run the threaded form.
					cp := cs[pc]
					if cp == nil {
						cp = m.compileClosures(tr)
						cs[pc] = cp
					}
					if m.MaxInstrs-m.instrs >= cp.passInstrs {
						var err error
						curILine, curDLine, ihits, err = m.execClosures(cp, shift, imask, curILine, curDLine, ihits)
						if err != nil {
							return err
						}
						continue
					}
				} else if m.MaxInstrs-m.instrs >= tr.passInstrs {
					var err error
					curILine, curDLine, ihits, err = m.execTrace(tr, shift, imask, curILine, curDLine, ihits)
					if err != nil {
						return err
					}
					continue
				}
			} else if m.hot != nil {
				m.noteHot(pc)
			}
		}
		// Clamp to the MaxInstrs budget; the instrs check above guarantees
		// at least one instruction of headroom, and straight-line
		// instructions cannot halt or branch, so a truncated block resumes
		// exactly where it stopped.
		if rem := m.MaxInstrs - m.instrs; n > rem {
			n = rem
		}
		blk := m.uops[pc : pc+int32(n)]
		gen := m.textGen
		var cyc int64
		k := 0
		for k < len(blk) {
			// One ifetch probe per instruction-cache line: block instructions
			// are contiguous, so every fetch until the next line boundary is
			// a guaranteed hit while the line stays resident. The hits are
			// credited up front (ihits) and debited exactly at every point
			// that cuts the run short — a possible eviction by a data access,
			// a StoreHook, or a fault — so statistics stay bit-identical to
			// one Access per fetch.
			iaddr := TextBase + uint32(pc+int32(k))*4
			if line := iaddr >> shift; line != curILine {
				if !m.cache.Access(iaddr, cache.IFetch) {
					cyc += m.costs.MissPenalty
				}
				if (line^curDLine)&imask == 0 {
					curDLine = noLine
				}
				curILine = line
				ihits-- // the probe above already counted this fetch
			}
			end := k + int((((curILine+1)<<shift)-iaddr)>>2)
			if end > len(blk) {
				end = len(blk)
			}
			ihits += uint64(end - k)
			for ; k < end; k++ {
				u := &blk[k]
				op := u.op
			redo:
				switch op {
				case sparc.Nop:
				// nothing

				case sparc.Ld:
					ea := uint32(m.regs[u.rs1] + m.regs[u.s2r] + u.s2i)
					if ea&3 != 0 {
						return m.blockFault(pc, k, cyc, base, ihits-uint64(end-k-1), "unaligned load at %#x", ea)
					}
					hooked := m.LoadHook != nil
					if hooked {
						// Same contract as StoreHook below: debit the prepaid
						// ifetch hits, flush the earned ones, and end the chunk
						// so a hook that patches or invalidates is safe.
						ihits -= uint64(end - k - 1)
						end = k + 1
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
							ihits -= uint64(end - k - 1)
							end = k + 1
						}
						curDLine = line
					}
					p := m.page(ea)
					// ea&3 == 0, so masking with PageBytes-4 equals
					// PageBytes-1 and proves o+4 <= PageBytes (no bounds
					// check on the 4-byte load).
					o := ea & (PageBytes - 4)
					m.regs[u.rd] = int32(binary.BigEndian.Uint32(p[o : o+4]))
					if hooked && m.textGen != gen {
						m.instrs += int64(k) + 1
						m.cycles += cyc + base*(int64(k)+1)
						m.pc = pc + int32(k) + 1
						continue dispatch
					}

				case sparc.Ldd:
					ea := uint32(m.regs[u.rs1] + m.regs[u.s2r] + u.s2i)
					if ea&7 != 0 {
						return m.blockFault(pc, k, cyc, base, ihits-uint64(end-k-1), "unaligned ldd at %#x", ea)
					}
					hooked := m.LoadHook != nil
					if hooked {
						ihits -= uint64(end - k - 1)
						end = k + 1
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.LoadHook(ea, 8)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DRead, 1)
					} else {
						if !m.cache.Access(ea, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
							ihits -= uint64(end - k - 1)
							end = k + 1
						}
						curDLine = line
					}
					cyc += m.costs.MemExtra // second word (see dataAccess2)
					if line2 := (ea + 4) >> shift; line2 != curDLine {
						// Lines narrower than a doubleword: the second word
						// has its own line and is probed like any access.
						if !m.cache.Access(ea+4, cache.DRead) {
							cyc += m.costs.MissPenalty
						}
						if (line2^curILine)&imask == 0 {
							curILine = noLine
							ihits -= uint64(end - k - 1)
							end = k + 1
						}
						curDLine = line2
					}
					m.regs[u.rd] = m.ReadWord(ea)
					m.regs[u.rd+1] = m.ReadWord(ea + 4)
					if hooked && m.textGen != gen {
						m.instrs += int64(k) + 1
						m.cycles += cyc + base*(int64(k)+1)
						m.pc = pc + int32(k) + 1
						continue dispatch
					}

				case sparc.St:
					ea := uint32(m.regs[u.rs1] + m.regs[u.s2r] + u.s2i)
					if ea&3 != 0 {
						return m.blockFault(pc, k, cyc, base, ihits-uint64(end-k-1), "unaligned store at %#x", ea)
					}
					hooked := m.StoreHook != nil
					if hooked {
						// Debit the not-yet-earned prepaid hits, then flush
						// the earned ones so a hook that inspects the machine
						// sees exact counts; it may also invalidate any cache
						// line, so the chunk ends here.
						ihits -= uint64(end - k - 1)
						end = k + 1
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.StoreHook(ea, 4)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DWrite, 1)
					} else {
						if !m.cache.Access(ea, cache.DWrite) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
							ihits -= uint64(end - k - 1)
							end = k + 1
						}
						curDLine = line
					}
					p := m.page(ea)
					o := ea & (PageBytes - 4)
					binary.BigEndian.PutUint32(p[o:o+4], uint32(m.regs[u.rd]))
					if hooked && m.textGen != gen {
						// The hook patched text under us: finish this
						// instruction (done) and re-dispatch against the fresh
						// block index. Only a hook can patch from inside a
						// block, so the check is skipped when none ran.
						m.instrs += int64(k) + 1
						m.cycles += cyc + base*(int64(k)+1)
						m.pc = pc + int32(k) + 1
						continue dispatch
					}

				case sparc.Std:
					ea := uint32(m.regs[u.rs1] + m.regs[u.s2r] + u.s2i)
					if ea&7 != 0 {
						return m.blockFault(pc, k, cyc, base, ihits-uint64(end-k-1), "unaligned std at %#x", ea)
					}
					hooked := m.StoreHook != nil
					if hooked {
						ihits -= uint64(end - k - 1)
						end = k + 1
						m.cache.NoteHits(cache.IFetch, ihits)
						ihits = 0
						cyc += m.StoreHook(ea, 8)
						curILine = noLine
						curDLine = noLine
					}
					cyc += m.costs.MemExtra
					if line := ea >> shift; line == curDLine {
						m.cache.NoteHits(cache.DWrite, 1)
					} else {
						if !m.cache.Access(ea, cache.DWrite) {
							cyc += m.costs.MissPenalty
						}
						if (line^curILine)&imask == 0 {
							curILine = noLine
							ihits -= uint64(end - k - 1)
							end = k + 1
						}
						curDLine = line
					}
					cyc += m.costs.MemExtra // second word (see dataAccess2)
					if line2 := (ea + 4) >> shift; line2 != curDLine {
						if !m.cache.Access(ea+4, cache.DWrite) {
							cyc += m.costs.MissPenalty
						}
						if (line2^curILine)&imask == 0 {
							curILine = noLine
							ihits -= uint64(end - k - 1)
							end = k + 1
						}
						curDLine = line2
					}
					m.storeWord(ea, m.regs[u.rd])
					m.storeWord(ea+4, m.regs[u.rd+1])
					if hooked && m.textGen != gen {
						m.instrs += int64(k) + 1
						m.cycles += cyc + base*(int64(k)+1)
						m.pc = pc + int32(k) + 1
						continue dispatch
					}

				case sparc.Add:
					m.regs[u.rd] = m.regs[u.rs1] + m.regs[u.s2r] + u.s2i
				case sparc.Sub:
					m.regs[u.rd] = m.regs[u.rs1] - (m.regs[u.s2r] + u.s2i)
				case sparc.And:
					m.regs[u.rd] = m.regs[u.rs1] & (m.regs[u.s2r] + u.s2i)
				case sparc.Andn:
					m.regs[u.rd] = m.regs[u.rs1] &^ (m.regs[u.s2r] + u.s2i)
				case sparc.Or:
					m.regs[u.rd] = m.regs[u.rs1] | (m.regs[u.s2r] + u.s2i)
				case sparc.Orn:
					m.regs[u.rd] = m.regs[u.rs1] | ^(m.regs[u.s2r] + u.s2i)
				case sparc.Xor:
					m.regs[u.rd] = m.regs[u.rs1] ^ (m.regs[u.s2r] + u.s2i)
				case sparc.Xnor:
					m.regs[u.rd] = ^(m.regs[u.rs1] ^ (m.regs[u.s2r] + u.s2i))
				case sparc.Sll:
					m.regs[u.rd] = m.regs[u.rs1] << (uint32(m.regs[u.s2r]+u.s2i) & 31)
				case sparc.Srl:
					m.regs[u.rd] = int32(uint32(m.regs[u.rs1]) >> (uint32(m.regs[u.s2r]+u.s2i) & 31))
				case sparc.Sra:
					m.regs[u.rd] = m.regs[u.rs1] >> (uint32(m.regs[u.s2r]+u.s2i) & 31)
				case sparc.SMul:
					cyc += m.costs.Mul
					m.regs[u.rd] = m.regs[u.rs1] * (m.regs[u.s2r] + u.s2i)
				case sparc.SDiv:
					cyc += m.costs.Div // charged before the zero check, as in Step
					d := m.regs[u.s2r] + u.s2i
					if d == 0 {
						return m.blockFault(pc, k, cyc, base, ihits-uint64(end-k-1), "division by zero")
					}
					m.regs[u.rd] = m.regs[u.rs1] / d

				case sparc.Addcc:
					a, b := m.regs[u.rs1], m.regs[u.s2r]+u.s2i
					r := a + b
					m.setCCAdd(a, b, r)
					m.regs[u.rd] = r
				case sparc.Subcc:
					a, b := m.regs[u.rs1], m.regs[u.s2r]+u.s2i
					r := a - b
					m.setCCSub(a, b, r)
					m.regs[u.rd] = r
				case sparc.Andcc:
					r := m.regs[u.rs1] & (m.regs[u.s2r] + u.s2i)
					m.setCCLogic(r)
					m.regs[u.rd] = r
				case sparc.Andncc:
					r := m.regs[u.rs1] &^ (m.regs[u.s2r] + u.s2i)
					m.setCCLogic(r)
					m.regs[u.rd] = r
				case sparc.Orcc:
					r := m.regs[u.rs1] | (m.regs[u.s2r] + u.s2i)
					m.setCCLogic(r)
					m.regs[u.rd] = r
				case sparc.Xorcc:
					r := m.regs[u.rs1] ^ (m.regs[u.s2r] + u.s2i)
					m.setCCLogic(r)
					m.regs[u.rd] = r

				case sparc.Sethi:
					m.regs[u.rd] = u.s2i

				default:
					// Only counted interior ops land here (decodeUop admits
					// nothing else): bump the event counter, strip the flag,
					// and dispatch the underlying op.
					m.Counters[u.cnt-1]++
					op &^= opCount
					goto redo
				}
			}
		}
		m.instrs += n
		m.cycles += cyc + base*n
		m.pc = pc + int32(n)
	}
}

// blockFault commits the cycle/instruction/ifetch accounting for a fault at
// block offset k — the faulting instruction's base cost and ifetch are
// charged, exactly as Step charges them before its switch — and leaves pc
// on the faulting instruction.
func (m *Machine) blockFault(pc int32, k int, cyc, base int64, ihits uint64, format string, args ...any) error {
	m.cache.NoteHits(cache.IFetch, ihits)
	m.instrs += int64(k) + 1
	m.cycles += cyc + base*(int64(k)+1)
	m.pc = pc + int32(k)
	return m.fault(m.text[m.pc], format, args...)
}
