package machine

import (
	"reflect"
	"testing"

	"databreak/internal/cache"
	"databreak/internal/sparc"
)

// countLoop is a small store/increment loop every trace-tier test can share:
// long enough (100 iterations) to cross the lazy hotThreshold, fused-pair
// friendly, and deterministic.
func countLoop() []sparc.Instr {
	return []sparc.Instr{
		{Op: sparc.Sethi, Rd: sparc.L0, Imm: int32(DataBase >> 10), UseImm: true},
		{Op: sparc.St, Rd: sparc.O1, Rs1: sparc.L0, UseImm: true},
		sparc.RI(sparc.Add, sparc.O1, 1, sparc.O1),
		sparc.RI(sparc.Subcc, sparc.O1, 100, sparc.G0),
		sparc.Branch(sparc.BL, 1),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
}

// TestImageTracesSurviveSiblingPatch pins the COW invariant for the trace
// tier: a machine that patches text on a shared image drops the IMAGE's
// compiled traces for itself only — its sibling keeps executing the
// immutable image traces, slice-identical to the image's own, and still
// produces counts bit-identical to a fresh Step reference.
func TestImageTracesSurviveSiblingPatch(t *testing.T) {
	text := countLoop()
	img := BuildImage(text, 0)
	if img.traces[1] == nil {
		t.Fatal("BuildImage did not compile the loop head")
	}

	m1 := New(cache.DefaultConfig, DefaultCosts)
	m2 := New(cache.DefaultConfig, DefaultCosts)
	m1.LoadImage(img)
	m2.LoadImage(img)
	if reflect.ValueOf(m2.traces).Pointer() != reflect.ValueOf(img.traces).Pointer() {
		t.Fatal("shared machine does not execute the image's traces")
	}

	// m1 patches before running: +3 stride instead of +1.
	if err := m1.PatchInstr(2, sparc.RI(sparc.Add, sparc.O1, 3, sparc.O1)); err != nil {
		t.Fatalf("patch: %v", err)
	}
	if m1.imgShared {
		t.Fatal("patching machine still shared")
	}
	if reflect.ValueOf(m1.traces).Pointer() == reflect.ValueOf(img.traces).Pointer() {
		t.Fatal("patching machine still holds the image's trace slice")
	}
	for i, tr := range m1.traces {
		if tr != nil {
			t.Fatalf("private trace slice has a stale compiled entry at %d", i)
		}
	}

	// The sibling is untouched: same trace slice, and its run matches a
	// fresh Step-only reference on the ORIGINAL text.
	if reflect.ValueOf(m2.traces).Pointer() != reflect.ValueOf(img.traces).Pointer() {
		t.Fatal("sibling lost the image's traces after the patch")
	}
	ref := New(cache.DefaultConfig, DefaultCosts)
	ref.LoadText(text, 0)
	errRef := stepAll(ref)
	_, err2 := m2.Run()
	diffStates(t, "sibling after COW patch", ref, m2, errRef, err2)

	// And the patching machine matches a Step reference on the PATCHED text.
	patched := countLoop()
	patched[2] = sparc.RI(sparc.Add, sparc.O1, 3, sparc.O1)
	ref2 := New(cache.DefaultConfig, DefaultCosts)
	ref2.LoadText(patched, 0)
	errRef2 := stepAll(ref2)
	_, err1 := m1.Run()
	diffStates(t, "patcher after COW patch", ref2, m1, errRef2, err1)
}

// TestEngineSelection pins the engine flag surface: parsing, String, and
// that all four engines produce identical counts on the same program.
func TestEngineSelection(t *testing.T) {
	for _, c := range []struct {
		s string
		e Engine
	}{{"step", EngineStep}, {"block", EngineBlock}, {"trace", EngineTrace}, {"closure", EngineClosure}} {
		e, err := ParseEngine(c.s)
		if err != nil || e != c.e {
			t.Fatalf("ParseEngine(%q) = %v, %v", c.s, e, err)
		}
		if e.String() != c.s {
			t.Fatalf("Engine(%v).String() = %q, want %q", e, e.String(), c.s)
		}
	}
	if _, err := ParseEngine("jit"); err == nil {
		t.Fatal("ParseEngine accepted an unknown engine")
	}

	text := countLoop()
	var ref *Machine
	for _, e := range []Engine{EngineStep, EngineBlock, EngineTrace, EngineClosure} {
		m := New(cache.DefaultConfig, DefaultCosts)
		m.SetEngine(e)
		m.LoadText(text, 0)
		if _, err := m.Run(); err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if ref == nil {
			ref = m
			continue
		}
		diffStates(t, "engine "+e.String(), ref, m, nil, nil)
	}
}
