// Host-time micro-benchmarks for the interpreter hot loop. These measure
// wall-clock nanoseconds per simulated instruction, not simulated cycles:
// simulated counts are part of the experiment results and must never move,
// while these numbers are allowed (encouraged) to go down. Run with
//
//	go test ./internal/machine -bench . -benchmem
//
// The package is external (machine_test) because BenchmarkRunWorkload needs
// the asm/minic/workload pipeline, and asm imports machine.
package machine_test

import (
	"testing"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/minic"
	"databreak/internal/sparc"
	"databreak/internal/workload"
)

// BenchmarkStep drives Step directly over a small ALU/load/store loop — the
// instruction mix the fault-free fast path sees — and reports ns per step.
func BenchmarkStep(b *testing.B) {
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	m.LoadText([]sparc.Instr{
		sparc.RI(sparc.Add, sparc.O0, 1, sparc.O0),      // 0
		sparc.RI(sparc.Or, sparc.G0, 0x2000, sparc.O1),  // 1
		sparc.StoreRI(sparc.O0, sparc.O1, 0),            // 2
		sparc.LoadRI(sparc.O1, 0, sparc.O2),             // 3
		sparc.RR(sparc.Add, sparc.O2, sparc.O0, sparc.O3), // 4
		sparc.Branch(sparc.BA, 0),                       // 5: loop forever
	}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
	if m.Instrs() != int64(b.N) {
		b.Fatalf("instrs = %d, want %d", m.Instrs(), b.N)
	}
}

// BenchmarkRunWorkload runs a full compiled workload per iteration — the
// unit of work the benchmark matrix fans out over its worker pool — so a
// regression anywhere in the compile/assemble/execute path shows up here.
func BenchmarkRunWorkload(b *testing.B) {
	p, ok := workload.ByName("eqntott", 1)
	if !ok {
		b.Fatal("workload eqntott missing")
	}
	src, err := minic.Compile(p.Source)
	if err != nil {
		b.Fatal(err)
	}
	u, err := asm.Parse(p.Name+".s", src)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, u)
	if err != nil {
		b.Fatal(err)
	}
	// Pin the simulated counts once so the benchmark doubles as a cheap
	// determinism check: the optimization invariant is that host time may
	// change but these may not.
	var wantCycles, wantInstrs int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
		prog.Load(m)
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			wantCycles, wantInstrs = m.Cycles(), m.Instrs()
		} else if m.Cycles() != wantCycles || m.Instrs() != wantInstrs {
			b.Fatalf("run %d: cycles/instrs = %d/%d, want %d/%d",
				i, m.Cycles(), m.Instrs(), wantCycles, wantInstrs)
		}
	}
}
