// Host-time micro-benchmarks for the interpreter hot loop. These measure
// wall-clock nanoseconds per simulated instruction, not simulated cycles:
// simulated counts are part of the experiment results and must never move,
// while these numbers are allowed (encouraged) to go down. Run with
//
//	go test ./internal/machine -bench . -benchmem
//
// The package is external (machine_test) because BenchmarkRunWorkload needs
// the asm/minic/workload pipeline, and asm imports machine.
package machine_test

import (
	"testing"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/minic"
	"databreak/internal/sparc"
	"databreak/internal/workload"
)

// BenchmarkStep drives Step directly over a small ALU/load/store loop — the
// instruction mix the fault-free fast path sees — and reports ns per step.
func BenchmarkStep(b *testing.B) {
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	m.LoadText([]sparc.Instr{
		sparc.RI(sparc.Add, sparc.O0, 1, sparc.O0),        // 0
		sparc.RI(sparc.Or, sparc.G0, 0x2000, sparc.O1),    // 1
		sparc.StoreRI(sparc.O0, sparc.O1, 0),              // 2
		sparc.LoadRI(sparc.O1, 0, sparc.O2),               // 3
		sparc.RR(sparc.Add, sparc.O2, sparc.O0, sparc.O3), // 4
		sparc.Branch(sparc.BA, 0),                         // 5: loop forever
	}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
	if m.Instrs() != int64(b.N) {
		b.Fatalf("instrs = %d, want %d", m.Instrs(), b.N)
	}
}

// compiledWorkload assembles one workload through the minic/asm pipeline so
// the load-path benchmarks below all operate on the same realistic text.
func compiledWorkload(b *testing.B, name string) *asm.Program {
	b.Helper()
	p, ok := workload.ByName(name, 1)
	if !ok {
		b.Fatalf("workload %s missing", name)
	}
	src, err := minic.Compile(p.Source)
	if err != nil {
		b.Fatal(err)
	}
	u, err := asm.Parse(p.Name+".s", src)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, u)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkRunWorkload runs a full compiled workload per iteration — the
// unit of work the benchmark matrix fans out over its worker pool: attach
// the shared image, land the data snapshot, execute (LoadShared, the
// artifact cache's run-a-cached-artifact path; Load's per-machine text copy
// and predecode is the cold path the cache exists to avoid). One
// sub-benchmark per execution engine: the trace tier's speedup over the
// block engine is this benchmark's trace/block ratio, and CI prints all
// three next to the matrix wall-clock delta.
func BenchmarkRunWorkload(b *testing.B) {
	prog := compiledWorkload(b, "eqntott")
	// Pin the simulated counts across iterations AND engines, so the
	// benchmark doubles as a cheap determinism check: the optimization
	// invariant is that host time may change but these may not.
	var wantCycles, wantInstrs int64
	for _, e := range []machine.Engine{machine.EngineClosure, machine.EngineTrace, machine.EngineBlock, machine.EngineStep} {
		b.Run(e.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
				m.SetEngine(e)
				prog.LoadShared(m)
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
				if wantCycles == 0 {
					wantCycles, wantInstrs = m.Cycles(), m.Instrs()
				} else if m.Cycles() != wantCycles || m.Instrs() != wantInstrs {
					b.Fatalf("%v run %d: cycles/instrs = %d/%d, want %d/%d",
						e, i, m.Cycles(), m.Instrs(), wantCycles, wantInstrs)
				}
			}
		})
	}
}

// BenchmarkLoadText is the compile-every-time baseline for the image cache:
// a fresh machine decodes and block-indexes the text from scratch on every
// load, which is what each benchmark cell paid before artifact sharing.
func BenchmarkLoadText(b *testing.B) {
	prog := compiledWorkload(b, "eqntott")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
		m.LoadText(prog.Text, prog.Entry)
	}
}

// BenchmarkBuildImage measures the one-time cost of predecoding text into a
// shareable Image — the amount of work the artifact cache amortizes over
// every subsequent LoadImage.
func BenchmarkBuildImage(b *testing.B) {
	prog := compiledWorkload(b, "eqntott")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img := machine.BuildImage(prog.Text, prog.Entry)
		if img.Len() != len(prog.Text) {
			b.Fatalf("image len = %d, want %d", img.Len(), len(prog.Text))
		}
	}
}

// BenchmarkLoadImageShared attaches fresh machines to one prebuilt image —
// the run-many half of compile-once/run-many. Compare against
// BenchmarkLoadText: the per-machine cost should be near-zero because the
// decode and block index are shared, not rebuilt.
func BenchmarkLoadImageShared(b *testing.B) {
	prog := compiledWorkload(b, "eqntott")
	img := machine.BuildImage(prog.Text, prog.Entry)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
		m.LoadImage(img)
	}
}

// BenchmarkPatchInstrCOW measures the first-write privatization penalty: a
// machine on a shared image pays one full text+µop copy on its first
// PatchInstr, the price of keeping siblings isolated.
func BenchmarkPatchInstrCOW(b *testing.B) {
	prog := compiledWorkload(b, "eqntott")
	img := machine.BuildImage(prog.Text, prog.Entry)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
		m.LoadImage(img)
		if err := m.PatchInstr(0, prog.Text[0]); err != nil {
			b.Fatal(err)
		}
	}
}
