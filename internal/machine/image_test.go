package machine

import (
	"math/rand"
	"testing"

	"databreak/internal/cache"
	"databreak/internal/sparc"
)

// These tests pin the image-sharing contract: LoadImage is observationally
// identical to LoadText of the same text, and PatchInstr on a shared image
// privatizes before writing, so a patch in one machine can never reach a
// sibling executing from the same image.

// diffImageRun loads text into one machine via LoadText and into another via
// a freshly built shared image, runs both, and compares every observable.
func diffImageRun(t *testing.T, ctx string, text []sparc.Instr) {
	t.Helper()
	a := New(cache.DefaultConfig, DefaultCosts)
	b := New(cache.DefaultConfig, DefaultCosts)
	a.SetCounterCount(4)
	b.SetCounterCount(4)
	a.LoadText(text, 0)
	b.LoadImage(BuildImage(text, 0))
	_, errA := a.Run()
	_, errB := b.Run()
	diffStates(t, ctx, a, b, errA, errB)
}

// TestDifferentialImageRandomPrograms demands LoadText/LoadImage equivalence
// on the same randomized instruction mix the Step/Run differential uses.
func TestDifferentialImageRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		text := randText(r, 80+r.Intn(400))
		diffImageRun(t, "seed "+string(rune('0'+seed%10)), text)
	}
}

// TestLoadImageAccessors pins the Image surface the artifact cache depends
// on: length, entry, and a positive footprint estimate.
func TestLoadImageAccessors(t *testing.T) {
	text := []sparc.Instr{
		{Op: sparc.Nop},
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
	if e := BuildImage(text, 1).Entry(); e != 1 {
		t.Fatalf("Entry = %d, want 1", e)
	}
	img := BuildImage(text, 0)
	if img.Len() != 2 || img.Entry() != 0 {
		t.Fatalf("Len/Entry = %d/%d, want 2/0", img.Len(), img.Entry())
	}
	if img.SizeBytes() <= 0 {
		t.Fatalf("SizeBytes = %d, want > 0", img.SizeBytes())
	}
	// BuildImage copies: mutating the caller's slice must not reach the image.
	text[0] = sparc.Instr{Op: sparc.Ta, Imm: TrapExit, UseImm: true}
	m := New(cache.DefaultConfig, DefaultCosts)
	m.LoadImage(img)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Instrs() != 2 {
		t.Fatalf("instrs = %d, want 2 (nop + exit; caller mutation leaked into image)", m.Instrs())
	}
}

// TestPatchInstrCOWIsolation runs two machines off ONE shared image. One
// patches its own text mid-run from a StoreHook (the Kessler patch flow at
// its hardest: the patched index is later in the block being dispatched);
// the other starts only after that patch landed. Every observable of both
// must be bit-identical to private-image reference runs, i.e. the patch
// stayed in the patching machine's privatized copy.
func TestPatchInstrCOWIsolation(t *testing.T) {
	// Same program as TestDifferentialPatchMidRun: store-increment loop where
	// the 5th store rewrites the increment from +1 to +3.
	text := []sparc.Instr{
		{Op: sparc.Sethi, Rd: sparc.L0, Imm: int32(DataBase >> 10), UseImm: true},
		{Op: sparc.St, Rd: sparc.O1, Rs1: sparc.L0, UseImm: true},
		sparc.RI(sparc.Add, sparc.O1, 1, sparc.O1),
		sparc.RI(sparc.Subcc, sparc.O1, 100, sparc.G0),
		sparc.Branch(sparc.BL, 1),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
	patched := sparc.RI(sparc.Add, sparc.O1, 3, sparc.O1)
	orig := text[2]

	img := BuildImage(text, 0)
	// LoadText takes ownership of its slice, so each private reference
	// machine gets its own copy; the patch below must only ever land there.
	private1 := append([]sparc.Instr(nil), text...)
	private2 := append([]sparc.Instr(nil), text...)

	withPatchHook := func(m *Machine) {
		stores := 0
		m.StoreHook = func(addr uint32, size int32) int64 {
			stores++
			if stores == 5 {
				if err := m.PatchInstr(2, patched); err != nil {
					t.Fatalf("patch: %v", err)
				}
			}
			return 0
		}
	}

	// Patching machine on the shared image vs its private-text reference.
	shared := New(cache.DefaultConfig, DefaultCosts)
	shared.LoadImage(img)
	withPatchHook(shared)
	private := New(cache.DefaultConfig, DefaultCosts)
	private.LoadText(private1, 0)
	withPatchHook(private)
	_, errS := shared.Run()
	_, errP := private.Run()
	diffStates(t, "patcher shared vs private", shared, private, errS, errP)

	// The shared image must still hold the original increment...
	if img.text[2] != orig {
		t.Fatalf("patch leaked into shared image: %+v", img.text[2])
	}
	// ...and a sibling attached after the patch must behave as if the patch
	// never happened, matching a private unpatched reference bit for bit.
	sib := New(cache.DefaultConfig, DefaultCosts)
	sib.LoadImage(img)
	ref := New(cache.DefaultConfig, DefaultCosts)
	ref.LoadText(private2, 0)
	_, errSib := sib.Run()
	_, errRef := ref.Run()
	diffStates(t, "sibling vs unpatched reference", sib, ref, errSib, errRef)
}

// TestLoadTextAfterSharedImage pins the capacity-reuse hazard: LoadText
// rebuilds the block index in place when it can, which must never scribble
// on a shared image's µop array left behind by a previous LoadImage.
func TestLoadTextAfterSharedImage(t *testing.T) {
	long := []sparc.Instr{
		{Op: sparc.Nop}, {Op: sparc.Nop}, {Op: sparc.Nop},
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
	short := []sparc.Instr{
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
	img := BuildImage(long, 0)
	m := New(cache.DefaultConfig, DefaultCosts)
	m.LoadImage(img)
	m.LoadText(short, 0) // must drop, not reuse, the image's arrays
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// The image must still run its original four instructions.
	m2 := New(cache.DefaultConfig, DefaultCosts)
	m2.LoadImage(img)
	if _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if m2.Instrs() != 4 {
		t.Fatalf("image corrupted by LoadText reuse: instrs = %d, want 4", m2.Instrs())
	}
}
