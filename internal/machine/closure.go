// Closure-compiled (threaded-code) execution tier.
//
// The trace tier (trace.go) already stitches superblocks, fuses pairs, and
// skips known-hit cache probes, but execTrace still pays, per trace-op: the
// three-way known-hit ifetch check, a per-op batched-hit increment, per-op
// static-cycle accumulation, memory round-trips through m.ccb for every
// condition-code def/use, and a counter-redo dispatch in the switch default.
// This tier compiles each traceProg one step further: ONE closure per trace,
// whose body is a loop over items that map 1:1 onto trace-ops but carry
// their accounting pre-resolved — the fetch check collapses to a two-bit
// dispatch code, known-hit fetches and static cycles collapse to per-batch
// prefix sums settled in one addition at each control op, the condition
// codes live in a closure-local byte, and counted ops become (rare)
// dedicated counter items so the hot dispatch never sees them. Control
// transfers are evaluated inline; the trace back-edge is a pointer reset,
// not a dispatch. Per-pass hot state (both line trackers, hit/cycle
// accumulators, the CC byte) stays in locals and spills to the shared cst
// only at trace exits, faults, and hook (StoreHook/LoadHook) boundaries. Trace-to-trace
// linking is a tail-dispatch: the exiting closure hands the trampoline
// (execClosures) the next trace's entry closure, threading it on demand, so
// chained traces run without a block-dispatcher round-trip.
//
// Measured dead ends worth recording, all on BenchmarkRunWorkload against
// execTrace's ~5.5-6ms/op: one-closure-per-µop threading — the classic
// threaded-code shape — lands at ~9.9ms (an indirect call, frame setup, and
// spilled hot state per op cost more than a predicted jump-table branch);
// one-closure-per-RUN with control ops as separate closures lands at ~10.1ms
// (at this workload's ~3.4-instruction runs it still pays an indirect call
// round-trip per handful of ops, and every closure boundary forces hot state
// through memory); and a first cut of the single-closure shape that exploded
// fused pairs into separate items and emitted explicit per-run fetch items
// lands at ~14.5ms — item count per retired instruction, not arithmetic, is
// what the loop's cost tracks, so the item stream must stay as dense as the
// trace-op stream it replaces.
//
// Two codegen hazards dominate the remaining tuning and are easy to
// reintroduce silently:
//
//  1. The inliner's big-function demotion. A function over the compiler's
//     node budget is "considered 'big'" (visible under -gcflags=-m=2) and
//     has its per-callee inlining budget cut to a fraction — at which point
//     cache.Access and the cc-bit packers become real calls inside the hot
//     loop, and with no callee-saved registers in the Go ABI each call
//     spills the loop's whole hoisted state. run() stays under the budget
//     by construction: cold case bodies live in noinline helpers (winPush/
//     winPop/hookTail/fault/stop/exitNext), the eight side-exit sites share
//     one `goto hop` tail, and exit-only accounting lookups hide inside the
//     noinline callees. Any edit that grows run() should re-check -m=2.
//  2. Item footprint. ritem is exactly 32 bytes — two per cache line, never
//     straddling — with exit-only fields split into the parallel rcold
//     array and control items' settle pair packed into their unused imm2.
//     The dispatch loop streams items, so bytes per item is a first-order
//     cost (the 48-byte predecessor measured ~3% slower end to end).
//
// Batched-fetch accounting, the part that needs a proof: after any fetch the
// I-line tracker is live, and only a data access that aliases the I-line (or
// a store hook) can kill it — both sites repair the tracker eagerly,
// performing the next precounted fetch's probe at the kill site (the
// intervening work touches no cache state, so the probe order matches
// execTrace exactly; the repair target is precomputed, and a line-crossing
// or control fetch bounds the scan because those probe dynamically anyway).
// Every same-line (nl-clear) body fetch is therefore a guaranteed hit
// counted at compile time into per-item prefix sums (hb), settled with ONE
// addition at each control op and corrected by an `adj` register on the
// rare kill/hook paths. A control op's own fetch never precounts (it may
// exit the trace with the batch unsettled); it keeps the compile-time proof
// as a "tracker live => hit" fast path, and its probe re-establishes the
// tracker for the next batch.
//
// The proof obligation is unchanged: simulated instruction counts, cycles,
// cache statistics, event counters, and fault points bit-identical to Step.
// Patch safety reuses the trace tier's contract verbatim: spans + textGen (a
// hooked store or load that patches text exits at the access boundary), and COW
// privatization drops this machine's closures only (invalidateTraces nils
// cls alongside traces; syncTraceState rebuilds both slices).
package machine

import (
	"encoding/binary"
	"fmt"
	"unsafe"

	"databreak/internal/cache"
	"databreak/internal/sparc"
)

// cfn is one threaded closure: execute (up to) a whole trace, return the
// next trace's closure (nil to return control to the dispatcher — s.npc and
// s.err say why). The hot per-pass state — both line trackers, the batched
// ifetch hits, and the CC byte — threads THROUGH the trampoline as explicit
// arguments and results: under Go's register ABI it rides in registers
// across every trace-to-trace link, where an earlier cst-resident version
// paid a spill in every exit and a reload in every prologue (~30k hops per
// eqntott run made that the single largest line item in the profile).
type cfn func(m *Machine, curIL, curDL uint32, ihits uint64, ccb uint8) (cfn, uint32, uint32, uint64, uint8)

// closProg is the compiled closure form of one traceProg. Per machine, and
// dropped wholesale (never mutated) on invalidation.
type closProg struct {
	entry      cfn
	items      []ritem // compiled item stream, 1:1 with tr.ops
	cold       []rcold // exit-only accounting, 1:1 with items
	head       int32   // trace entry text index
	passInstrs int64   // one full pass's simulated instructions
	// cost constants resolved at compile time, so run() never touches costs
	shift                   uint32
	taken, div, spill, memx int64
}

// cst is the spill area of one execClosures call (the Machine's reusable
// scratch, so dispatch never allocates). The register-threaded hot state
// never touches it; everything here is read/written only on slow paths,
// commits, and exits.
type cst struct {
	m     *Machine
	cls   []*closProg
	imask uint32
	gen   uint32 // textGen at entry; a mismatch after a hooked store exits
	drh   uint64 // batched known-hit data reads
	dwh   uint64 // batched known-hit data writes
	base  int64  // costs.Base + PerInstrPenalty
	inst  int64  // instructions committed this call
	cycs  int64  // cycles committed this call
	rem   int64  // remaining MaxInstrs budget
	npc   int32  // exit pc handed back to the dispatcher
	err   error
}

// ritem is one trace-op with its accounting pre-resolved. The stream maps
// 1:1 onto tr.ops (fused pairs stay fused — dispatch density is what the
// loop's cost tracks) except that counted ops are preceded by a synthetic
// cCount item, keeping the counter test off the hot path entirely.
//
// The struct is exactly 32 bytes — half a cache line, so a streamed item
// never straddles two lines — and holds only what the loop touches between
// settles. Exit-only accounting (a memory item's batch prefix and retired
// count, read on faults and patch exits) lives in the parallel rcold array;
// a control item packs the same pair into its unused imm2 (see finish), and
// fetch addresses are derived from fpc (TextBase + fpc<<2) at probe sites.
type ritem struct {
	kind topOp
	// f bits 0-1 dispatch this item's first ifetch:
	//   0 = precounted into the batch (nl-clear body op: guaranteed hit);
	//   1 = fast two-way (nl-clear control op: tracker live => hit, else
	//       probe — never precounted because the op may exit the trace);
	//   2 = full two-way line compare (the trace's first op: tracker state
	//       at entry is dynamic);
	//   3 = unconditional probe (line-crossing: a live tracker holds the
	//       previous fetch's line, which a crossing line can never match).
	// f bit 2: the fused second fetch crosses a line (probe); clear on a
	// fused op means the second fetch is precounted (body) or a direct
	// guaranteed hit (compare-and-branch). f bit 3: same for a fused
	// triple's third fetch (iaddr+8).
	f    uint8
	rd   uint8 // destination (source for stores)
	rs1  uint8
	s2r  uint8 // operand-2 register (%g0 slot for immediate forms)
	rd2  uint8 // fused second half's operands
	rs1b uint8
	s2rb uint8
	// cm: control item — branch condition mask; ALU-chain triple — the third
	// slot's rd3|rs1c<<8 (triples are never control ops, so the field is free;
	// set2+memop triples carry their memop in the rd2 slots instead).
	cm uint16
	// hb: precounted fetches earned through this item's FIRST fetch since
	// the last settle (a fused op's second precounted fetch lands in the
	// next item's hb); on a control item, the full batch to settle.
	hb  uint16
	imm int32
	// imm2: fused second half's immediate. Control items have no second
	// immediate, so finish() packs their settle pair here instead:
	// bits 0-15 the batch's static-cycle total, bits 16-30 the pass
	// instructions retired through the op's first instr (niW). Read via
	// ctlCyc/ctlNi; both fit 15 bits because maxBlockLen caps a trace.
	imm2 int32
	// c3: ALU-chain triple — the third slot's s2rc | uint16(imm3)<<16 (the
	// immediate is a 13-bit SPARC field, so the int16 round-trips exactly).
	// Free elsewhere: the first fetch's line is derived from fpc at the
	// probe site, like every other fetch address.
	c3 uint32
	// rx: memory item — the ifetch ADDRESS of the next precounted
	// first-fetch after this item, for eager kill repair (0 = none; its
	// line is rx>>shift; a fused op's own second fetch is repaired in-case
	// from the derived ia+4); control item — the link-target TEXT INDEX of
	// the exiting path, reinterpreted as int32.
	rx  uint32
	fpc int32 // this instruction's text index (probe address / fault / exit)
}

// rcold is the exit-only half of a memory item: the batch's static-cycle
// prefix (cycB) and the pass instructions retired through the op's first
// instr (niW), read only on faults and store-boundary patch exits. Kept out
// of ritem so the hot stream stays at 32 bytes; indexed 1:1 with items.
type rcold struct {
	cycB int32
	niW  int32
}

// ctlCyc and ctlNi unpack a control item's settle pair from imm2.
func ctlCyc(it *ritem) int64 { return int64(it.imm2 & 0xffff) }
func ctlNi(it *ritem) int64  { return int64(it.imm2 >> 16) }

// itemIdx recovers an item's index from its pointer — cold-path glue for
// rcold lookups, kept as pointer math so the loop needs no index variable.
func itemIdx(items []ritem, it *ritem) int {
	return int((uintptr(unsafe.Pointer(it)) - uintptr(unsafe.Pointer(&items[0]))) / unsafe.Sizeof(ritem{}))
}

// ClosureBytes reports the host memory held by this machine's compiled
// closure tier (item streams, cold arrays, headers). Closures are always
// per-machine — never shared through an Image — so this is the per-machine
// half of the footprint split that Image.TraceBytes reports for the shared
// trace tier.
func (m *Machine) ClosureBytes() int {
	n := len(m.cls) * int(unsafe.Sizeof((*closProg)(nil)))
	for _, cp := range m.cls {
		if cp != nil {
			n += int(unsafe.Sizeof(closProg{})) +
				len(cp.items)*int(unsafe.Sizeof(ritem{})) +
				len(cp.cold)*int(unsafe.Sizeof(rcold{}))
		}
	}
	return n
}

// cCount is the synthetic counter-bump item kind; imm is the counter index.
// Placed before its op — both effects are pure counters invisible until the
// next flush, where both have completed (v. the trace tier's redo dispatch).
const cCount = topOpEnd

// chainKinds marks the item kinds runOutlined retires itself: the outlined
// triples/double-words it is entered for, plus the cheap singles and pairs
// that sit between triples in straight-line runs (the glue the builder could
// not fuse). The chain loop keeps a call alive while the next item is one of
// these, so one call typically covers a whole straight-line run.
var chainKinds = [cCount + 1]bool{
	tLdSllAdd: true, tSllAddLd: true, tOrLdSll: true, tAddLdSll: true,
	tLdAddLd: true, tOrOrOr: true, tSet2Ld: true, tSet2St: true,
	tLdAddSt: true, tLdSubSt: true, tLdOrSt: true,
	tStI: true, tSllAdd: true, tOrAdd: true, tOrSub: true,
	tSet2: true, tSet: true, tAdd: true, tAddI: true, tSub: true,
	tSubI: true, tOr: true, tOrI: true, tSll: true, tSllI: true,
	// tBA is control but never side-exits (stitched unconditional branch:
	// taken cost, keep walking), so it chains like a straight-line op.
	tBA: true,
}

// fetchSlowV is the full-probe ifetch path for second (fused) fetches and
// hook repairs, value-threaded so the hoisted trackers stay in registers at
// the call site. Returns the new I-line, the (possibly alias-killed)
// D-line, and the cycle charge.
//
//go:noinline
func fetchSlowV(m *Machine, line, iaddr, curDL, imask uint32) (uint32, uint32, int64) {
	cyc := int64(0)
	if !m.cache.Access(iaddr, cache.IFetch) {
		cyc = m.costs.MissPenalty
	}
	if (line^curDL)&imask == 0 {
		curDL = noLine
	}
	return line, curDL, cyc
}

// dataSlowV is a memory item's full-probe data access (the known-hit fast
// path inlines into the loop: a line compare and a local increment). It
// eagerly repairs the I-line tracker when the access aliases it: the next
// precounted fetch (address ria, line ria>>shift) is probed at the kill
// site — nothing between them touches cache state, so the probe order
// matches execTrace exactly — and the returned conv (-1) records the
// hit-to-probe conversion for the next settle.
//
//go:noinline
func dataSlowV(m *Machine, ea uint32, kind cache.Kind, line, curIL, curDL, imask, ria, shift uint32) (uint32, uint32, int64, int64) {
	cyc, conv := int64(0), int64(0)
	if !m.cache.Access(ea, kind) {
		cyc = m.costs.MissPenalty
	}
	kill := curIL != noLine && (line^curIL)&imask == 0
	curDL = line
	if kill {
		curIL = noLine
		if ria != 0 {
			rline := ria >> shift
			if !m.cache.Access(ria, cache.IFetch) {
				cyc += m.costs.MissPenalty
			}
			if (rline^curDL)&imask == 0 {
				curDL = noLine
			}
			curIL = rline
			conv = -1
		}
	}
	return curIL, curDL, cyc, conv
}

// dataSlow2V is the doubleword straddle slow path: ea and ea+4 fall on
// different D-lines (only possible with lines narrower than 8 bytes — Ldd/Std
// enforce 8-byte alignment), so both words probe, in program order, one
// reference each (see dataAccess2). Any I-tracker kill defers its eager
// repair until AFTER the second word's probe: execTrace probes the next
// fetch only once both data words are done, and the repair must keep that
// cache-probe order to stay bit-identical.
//
//go:noinline
func dataSlow2V(m *Machine, ea uint32, kind cache.Kind, line, curIL, curDL, imask, ria, shift uint32) (uint32, uint32, int64, int64) {
	cyc, conv := int64(0), int64(0)
	kill := false
	if line == curDL {
		if kind == cache.DRead {
			m.cstate.drh++
		} else {
			m.cstate.dwh++
		}
	} else {
		if !m.cache.Access(ea, kind) {
			cyc = m.costs.MissPenalty
		}
		if curIL != noLine && (line^curIL)&imask == 0 {
			curIL = noLine
			kill = true
		}
		curDL = line
	}
	// The second word's line differs from the first's by construction, and
	// curDL now holds the first word's line, so this is always a probe.
	line2 := (ea + 4) >> shift
	if !m.cache.Access(ea+4, kind) {
		cyc += m.costs.MissPenalty
	}
	if curIL != noLine && (line2^curIL)&imask == 0 {
		curIL = noLine
		kill = true
	}
	curDL = line2
	if kill && ria != 0 {
		rline := ria >> shift
		if !m.cache.Access(ria, cache.IFetch) {
			cyc += m.costs.MissPenalty
		}
		if (rline^curDL)&imask == 0 {
			curDL = noLine
		}
		curIL = rline
		conv = -1
	}
	return curIL, curDL, cyc, conv
}

// stop commits n instructions (cyc dynamic cycles plus the folded base) and
// returns control to the dispatcher at npc — budget exhaustion and
// store-boundary patch exits.
//
//go:noinline
func (s *cst) stop(curIL, curDL uint32, ihits uint64, ccb uint8, cyc, n int64, npc int32) (cfn, uint32, uint32, uint64, uint8) {
	s.inst += n
	s.cycs += cyc + s.base*n
	s.rem -= n
	s.npc = npc
	return nil, curIL, curDL, ihits, ccb
}

// exitNext is the cold tail of a trace side exit: commit n instructions and
// resolve the next-closure pointer registered at npc (threading it on demand)
// when a full pass fits the remaining budget. The caller hops to the returned
// trace in-function — the whole point of the closure tier: a linked exit is a
// pointer swap and a branch, never a call-frame round-trip. A nil return
// hands control back to the dispatcher at npc.
//
//go:noinline
func (s *cst) exitNext(cyc, n int64, npc int32) *closProg {
	s.inst += n
	s.cycs += cyc + s.base*n
	s.rem -= n
	if uint32(npc) < uint32(len(s.cls)) {
		next := s.cls[npc]
		if next == nil {
			if tr := s.m.traces[npc]; tr != nil {
				next = s.m.compileClosures(tr)
				s.cls[npc] = next
			}
		}
		if next != nil && s.rem >= next.passInstrs {
			return next
		}
	}
	s.npc = npc
	return nil
}

// hookFlush drains exact statistics — and the machine-visible CC byte — for
// a StoreHook observer, then runs the hook. The caller zeroes its local
// hit count and kills both trackers (the hook may invalidate any line).
//
//go:noinline
func (s *cst) hookFlush(ihits uint64, ccb uint8, ea uint32, size int32) int64 {
	s.m.ccb = ccb
	c := s.m.cache
	c.NoteHits(cache.IFetch, ihits)
	if s.drh != 0 {
		c.NoteHits(cache.DRead, s.drh)
		s.drh = 0
	}
	if s.dwh != 0 {
		c.NoteHits(cache.DWrite, s.dwh)
		s.dwh = 0
	}
	return s.m.StoreHook(ea, size)
}

// loadHookFlush is hookFlush's load twin: drain exact statistics for a
// LoadHook observer, then run the hook. Same caller contract — zero the
// local hit count and kill both trackers after the call.
//
//go:noinline
func (s *cst) loadHookFlush(ihits uint64, ccb uint8, ea uint32, size int32) int64 {
	s.m.ccb = ccb
	c := s.m.cache
	c.NoteHits(cache.IFetch, ihits)
	if s.drh != 0 {
		c.NoteHits(cache.DRead, s.drh)
		s.drh = 0
	}
	if s.dwh != 0 {
		c.NoteHits(cache.DWrite, s.dwh)
		s.dwh = 0
	}
	return s.m.LoadHook(ea, size)
}

// fault commits a fault at the item's text index (cyc arrives as the
// faulting pass's dynamic charges through the faulting instruction — its
// fetch and any dynamic cost charged, nothing past it; the item's static
// batch prefix and retired count come from the cold array here, with dN/dPc
// adjusting for a fused op's second half) and stops the trampoline with the
// Fault. ihits arrives with the earned batch hits folded in and is flushed
// here (the returned batch is empty); the flushed statistics and error
// values match execTrace's traceFault bit for bit.
//
//go:noinline
func (s *cst) fault(curIL, curDL uint32, ihits uint64, ccb uint8, cyc int64, cp *closProg, items []ritem, it *ritem, dN, dPc int32, format string, args ...any) (cfn, uint32, uint32, uint64, uint8) {
	cd := &cp.cold[itemIdx(items, it)]
	n := int64(cd.niW + dN)
	pc := it.fpc + dPc
	s.m.cache.NoteHits(cache.IFetch, ihits)
	s.inst += n
	s.cycs += cyc + int64(cd.cycB) + s.base*n
	s.rem -= n
	s.npc = pc
	s.err = &Fault{PC: pc, Instr: s.m.text[pc], Reason: fmt.Sprintf(format, args...)}
	return nil, curIL, curDL, 0, ccb
}

// ccAddBits/ccSubBits/ccLogicBits compute the packed condition codes the
// machine's setCC* helpers write, but return them so closures can keep the
// CC byte hoisted in a local.
func ccAddBits(a, b, r int32) uint8 {
	var bits uint8
	if r < 0 {
		bits = ccN
	}
	if r == 0 {
		bits |= ccZ
	}
	if (a >= 0 && b >= 0 && r < 0) || (a < 0 && b < 0 && r >= 0) {
		bits |= ccV
	}
	if uint32(r) < uint32(a) {
		bits |= ccC
	}
	return bits
}

func ccSubBits(a, b, r int32) uint8 {
	var bits uint8
	if r < 0 {
		bits = ccN
	}
	if r == 0 {
		bits |= ccZ
	}
	if (a >= 0 && b < 0 && r < 0) || (a < 0 && b >= 0 && r >= 0) {
		bits |= ccV
	}
	if uint32(a) < uint32(b) {
		bits |= ccC
	}
	return bits
}

func ccLogicBits(r int32) uint8 {
	var bits uint8
	if r < 0 {
		bits = ccN
	}
	if r == 0 {
		bits |= ccZ
	}
	return bits
}

// cb is the closure compiler's per-trace context. It holds no machine
// state beyond the cost model — the output closProg must stay
// machine-independent so a shared image can publish it to every attached
// machine (image.go sharedClosures).
type cb struct {
	tr    *traceProg
	shift uint32
	taken int64
	mul   int64
	div   int64
	spill int64
	memx  int64
}

// isCtlOp reports whether a trace-op is a control transfer (settles the
// batch; its own fetch never precounts).
func isCtlOp(op topOp) bool {
	switch op {
	case tEnd, tBr, tBrT, tBrLoop, tBA, tBALoop, tJmpl, tCmpBr, tCmpBrT, tCmpBrLoop:
		return true
	}
	return false
}

// compileClosures compiles tr into its single-closure form for machine m.
func (m *Machine) compileClosures(tr *traceProg) *closProg {
	cp := &closProg{head: tr.entry, passInstrs: tr.passInstrs}
	b := &cb{
		tr:    tr,
		shift: tr.shift,
		taken: m.costs.TakenBranch,
		mul:   m.costs.Mul,
		div:   m.costs.Div,
		spill: m.costs.WindowSpill,
		memx:  m.costs.MemExtra,
	}

	items := make([]ritem, 0, len(tr.ops)+4)
	cold := make([]rcold, 0, len(tr.ops)+4)
	for i := range tr.ops {
		u := &tr.ops[i]
		items, cold = b.appendItem(items, cold, u, len(items) == 0)
		if u.op&^topCount == tEnd {
			break
		}
	}
	b.finish(items, cold)
	cp.items = items
	cp.cold = cold
	cp.shift = b.shift
	cp.taken, cp.div, cp.spill, cp.memx = b.taken, b.div, b.spill, b.memx
	// The entry closure is deliberately a thin thunk: the interpreting loop
	// lives in the regular method run() so the compiler optimizes it like
	// execTrace (helper inlining, bounds-check elision, jump-table dispatch) —
	// the same body compiled as a func literal kept small helpers
	// (pageCacheIdx, bigEndian.Uint32, the cc-bit packers) as real calls,
	// and with no callee-saved registers in the Go ABI every such call
	// spilled the loop's whole hot set around every memory item.
	cp.entry = func(m *Machine, curIL, curDL uint32, ihits uint64, ccb uint8) (cfn, uint32, uint32, uint64, uint8) {
		return cp.run(m, curIL, curDL, ihits, ccb)
	}
	return cp
}

// appendItem compiles one trace-op into its item (plus a counter item when
// the op is counted), growing the cold array in lockstep: every item gets an
// rcold slot; niW lands there and finish() fills cycB (or repacks both into
// a control item's imm2).
func (b *cb) appendItem(items []ritem, cold []rcold, u *top, first bool) ([]ritem, []rcold) {
	op := u.op &^ topCount
	if u.op&topCount != 0 {
		// The counter item fetches nothing, so the op after it keeps its
		// own dispatch code (including the entry compare when first).
		items = append(items, ritem{kind: cCount, imm: int32(u.cnt) - 1})
		cold = append(cold, rcold{})
	}
	if op == tEnd {
		// Synthetic tail: settle, commit the whole pass, link to exitPC.
		items = append(items, ritem{kind: tEnd, rx: uint32(b.tr.exitPC)})
		cold = append(cold, rcold{niW: int32(b.tr.passInstrs)})
		return items, cold
	}
	it := ritem{
		kind: op,
		rd:   u.rd, rs1: u.rs1, s2r: u.s2r,
		rd2: u.rd2, rs1b: u.rs1b, s2rb: u.s2rb,
		cm:  condMask[u.cond],
		imm: u.imm, imm2: u.imm2,
		fpc: int32((u.iaddr - TextBase) / 4),
	}
	switch {
	case first:
		it.f = 2 // entry residency is dynamic: full two-way check
	case u.nl&1 != 0:
		it.f = 3 // line-crossing: unconditional probe
	case isCtlOp(op):
		it.f = 1 // tracker live => hit; never joins a batch
	default:
		it.f = 0 // precounted
	}
	if u.nl&2 != 0 {
		it.f |= 4 // fused second fetch crosses: unconditional probe
	}
	if u.nl&4 != 0 {
		it.f |= 8 // fused third fetch crosses: unconditional probe
	}
	switch op {
	case tLdSllAdd, tSllAddLd, tOrLdSll, tAddLdSll, tLdAddLd, tOrOrOr,
		tLdAddSt, tLdSubSt, tLdOrSt:
		// ALU-chain triple: the third slot rides in cm/c3 (see ritem).
		it.cm = uint16(u.rd3) | uint16(u.rs1c)<<8
		it.c3 = uint32(u.s2rc) | uint32(uint16(u.tgt))<<16
	case tCall:
		it.rd = uint8(sparc.O7)
		it.imm = int32(u.iaddr) + 4
	case tBr, tCmpBr:
		it.rx = uint32(u.tgt)
	case tBrT, tBrLoop:
		it.rx = uint32(it.fpc + 1)
	case tCmpBrT, tCmpBrLoop:
		it.rx = uint32(it.fpc + 2)
	}
	return append(items, it), append(cold, rcold{niW: int32(u.ni) + 1})
}

// ownStatic is one item's static-cycle contribution to its batch's prefix
// sums. Div stays a dynamic charge at its (rare) item so the
// charged-before-the-zero-check contract needs no special case; a branch's
// taken cost is dynamic by nature (tCall's is static: it always transfers,
// and its target is stitched into the trace).
func (b *cb) ownStatic(op topOp) int32 {
	switch op {
	case tLd, tLdI, tSt, tStI, tLdSll, tLdOr, tLdCmp, tAddLd, tOrLd, tAddSt, tSubSt,
		tLdSllAdd, tSllAddLd, tOrLdSll, tAddLdSll, tSet2Ld, tSet2St:
		return int32(b.memx)
	case tLdd, tStd, tLdLd, tLdSt, tLdAddLd, tLdAddSt, tLdSubSt, tLdOrSt:
		return 2 * int32(b.memx)
	case tSMul:
		return int32(b.mul)
	case tCall:
		return int32(b.taken)
	}
	return 0
}

// finish computes the batch bookkeeping over the item stream: per-item
// precounted-hit and static-cycle prefix sums (a batch runs from one control
// op to the next — the control settles and resets it), and, for every memory
// item, the eager repair target: the next precounted first-fetch in
// instruction order. The scan bounds at any dynamically-fetching item
// (crossing, entry, control): its own probe re-establishes the tracker, so
// nothing past it needs repair.
func (b *cb) finish(items []ritem, cold []rcold) {
	hb := uint16(0)
	cyc := int32(0)
	for i := range items {
		it := &items[i]
		if it.kind == cCount {
			continue
		}
		if isCtlOp(it.kind) {
			// Controls read their settle pair on every execution, so it
			// rides in the hot item: imm2 (free — no fused second half) is
			// cycB | niW<<16. maxBlockLen (1024) bounds both well under
			// their 16/15-bit fields.
			it.hb = hb
			it.imm2 = cyc | cold[i].niW<<16
			hb, cyc = 0, 0
			continue
		}
		if it.f&3 == 0 {
			hb++
		}
		it.hb = hb // through the first fetch: first-half faults charge this
		if w := topWidth(it.kind); w >= 2 {
			if it.f&4 == 0 {
				hb++
			}
			if w == 3 && it.f&8 == 0 {
				hb++
			}
		}
		cold[i].cycB = cyc
		cyc += b.ownStatic(it.kind)
	}
	for i := range items {
		switch items[i].kind {
		case tLd, tLdI, tLdd, tSt, tStI, tStd, tLdSll, tLdOr, tLdCmp, tAddLd, tOrLd, tLdLd, tLdSt, tAddSt, tSubSt,
			tLdSllAdd, tSllAddLd, tOrLdSll, tAddLdSll, tLdAddLd, tSet2Ld, tSet2St, tLdAddSt, tLdSubSt, tLdOrSt:
			for j := i + 1; j < len(items); j++ {
				jt := &items[j]
				if jt.kind == cCount {
					continue
				}
				if jt.f&3 != 0 || isCtlOp(jt.kind) {
					break // that fetch probes dynamically itself
				}
				items[i].rx = TextBase + uint32(jt.fpc)<<2
				break
			}
		}
	}
}

// winPush is tSave's window push — cold relative to the dispatch loop, and
// kept out of line so run() stays under the inliner's big-function node
// budget (crossing it demotes every inlinable callee in the hot loop, most
// damagingly cache.Access, to a real call). Returns the spill charge.
//
//go:noinline
func (m *Machine) winPush(spillC int64) int64 {
	var parent winRegs
	parent.o = [8]int32(m.regs[8:16])
	parent.l = [8]int32(m.regs[16:24])
	parent.i = [8]int32(m.regs[24:32])
	m.win = append(m.win, parent)
	copy(m.regs[24:32], parent.o[:])
	clear(m.regs[8:24])
	m.resident++
	if m.resident > NWindows-1 {
		m.resident = NWindows - 1
		return spillC
	}
	return 0
}

// winPop is tRestore's window pop (the caller has already rejected the
// underflow fault). Out of line for the same node-budget reason as winPush.
//
//go:noinline
func (m *Machine) winPop(spillC int64) int64 {
	ins := [8]int32(m.regs[24:32])
	parent := &m.win[len(m.win)-1]
	copy(m.regs[8:16], ins[:])
	copy(m.regs[16:24], parent.l[:])
	copy(m.regs[24:32], parent.i[:])
	m.win = m.win[:len(m.win)-1]
	m.resident--
	if m.resident < 1 {
		m.resident = 1
		return spillC
	}
	return 0
}

// hookedAccess is the whole hooked-access slow path shared by every load and
// store item: flush-and-hook (hookFlush or loadHookFlush by kind), the word
// probes with both trackers dead (the kill leaves no known-hit or alias case
// to handle — every word is a plain probe, a straddled doubleword's second
// word its own reference, see dataAccess2), the architectural move through
// the generic ReadWord/storeWord path, then either the batch rebase and
// eager repair (rebased ihits wraps negative mod 2^64; every path to a flush
// first adds a batch prefix that covers it, and the repair performs the next
// precounted fetch's probe exactly as execTrace's next per-op fetch would)
// or, on a text patch under the hook, the access-boundary commit (exit=true:
// the caller returns to the trampoline immediately). Keeping all of it out
// of line keeps the nine hook sites in run() from pushing the loop over the
// inliner's big-function node budget.
//
// ria is the eager-repair target: the next precounted first-fetch address
// (it.rx) — or, for a hooked FIRST half of a fused pair whose own second
// fetch is precounted, that second fetch's address. extra/dN/dPc locate the
// access boundary for the patch exit: the item's static share through the
// access, and the retired-count/pc deltas for a fused second half.
//
//go:noinline
func (s *cst) hookedAccess(cp *closProg, items []ritem, it *ritem, ihits0 uint64, ccb uint8, cyc0 int64, ea uint32, hb uint16, ria uint32, reg uint8, kind cache.Kind, dbl bool, extra int64, dN, dPc int32) (curIL, curDL uint32, ihits uint64, cyc int64, exit bool) {
	m := s.m
	size := int32(4)
	if dbl {
		size = 8
	}
	cyc = cyc0
	if kind == cache.DWrite {
		cyc += s.hookFlush(ihits0+uint64(hb), ccb, ea, size)
	} else {
		cyc += s.loadHookFlush(ihits0+uint64(hb), ccb, ea, size)
	}
	shift := cp.shift
	if !m.cache.Access(ea, kind) {
		cyc += m.costs.MissPenalty
	}
	curIL, curDL = noLine, ea>>shift
	if dbl {
		if l2 := (ea + 4) >> shift; l2 != curDL {
			if !m.cache.Access(ea+4, kind) {
				cyc += m.costs.MissPenalty
			}
			curDL = l2
		}
	}
	if kind == cache.DWrite {
		m.storeWord(ea, m.regs[reg])
		if dbl {
			m.storeWord(ea+4, m.regs[reg+1])
		}
	} else {
		m.regs[reg] = m.ReadWord(ea)
		if dbl {
			m.regs[reg+1] = m.ReadWord(ea + 4)
		}
	}
	if m.textGen != s.gen {
		cd := &cp.cold[itemIdx(items, it)]
		n := int64(cd.niW) + int64(dN)
		s.inst += n
		s.cycs += cyc + int64(cd.cycB) + extra + s.base*n
		s.rem -= n
		s.npc = it.fpc + dPc
		return curIL, curDL, 0, 0, true
	}
	ihits = -uint64(hb)
	if ria != 0 {
		var c int64
		curIL, curDL, c = fetchSlowV(m, ria>>shift, ria, curDL, s.imask)
		cyc += c
		ihits--
	}
	return curIL, curDL, ihits, cyc, false
}

// run interprets the trace's compiled item stream — the closure tier's whole
// hot loop. It keeps the register-threaded state in locals (arguments), and
// everything rarer (data-hit batches, the adj correction, committed totals)
// s-resident: a handful of L1 round-trips on slow paths beats spilling the
// dispatch loop itself.
func (cp *closProg) run(m *Machine, curIL, curDL uint32, ihits uint64, ccb uint8) (cfn, uint32, uint32, uint64, uint8) {
	items := cp.items
	shift := cp.shift
	// Loop-invariant hot fields, hoisted so the compiler keeps them in
	// registers instead of reloading through m after every real call.
	cs := &m.cstate
	cc := m.cache
	imask := cs.imask
	missP := m.costs.MissPenalty
	const itemSize = unsafe.Sizeof(ritem{})
	{
		var cyc int64
		// side-exit operands, set before goto hop (one shared exit tail
		// keeps eight hop sites out of the inliner's node budget)
		var xCyc, xN int64
		var xNpc int32
	pass:
		for {
			// Raw-pointer walk: tEnd terminates every trace, and every other
			// way out is an explicit return/continue, so no bound check.
			p := unsafe.Pointer(&items[0])
			for {
				it := (*ritem)(p)
				p = unsafe.Add(p, itemSize)
				// First ifetch, dispatched on the two-bit compile-time code
				// (0 = precounted: nothing to do here).
				if k := it.f & 3; k != 0 {
					ia := TextBase + uint32(it.fpc)<<2
					if line := ia >> shift; (k == 1 && curIL != noLine) || line == curIL {
						ihits++
					} else {
						if !cc.Access(ia, cache.IFetch) {
							cyc += missP
						}
						if (line^curDL)&imask == 0 {
							curDL = noLine
						}
						curIL = line
					}
				}
				switch it.kind {
				case tNop:
					// fetch only

				case cCount:
					m.Counters[it.imm]++

				case tAdd:
					m.regs[it.rd] = m.regs[it.rs1] + m.regs[it.s2r] + it.imm
				case tAddI:
					m.regs[it.rd] = m.regs[it.rs1] + it.imm
				case tSub:
					m.regs[it.rd] = m.regs[it.rs1] - (m.regs[it.s2r] + it.imm)
				case tSubI:
					m.regs[it.rd] = m.regs[it.rs1] - it.imm
				case tAnd:
					m.regs[it.rd] = m.regs[it.rs1] & (m.regs[it.s2r] + it.imm)
				case tAndn:
					m.regs[it.rd] = m.regs[it.rs1] &^ (m.regs[it.s2r] + it.imm)
				case tOr:
					m.regs[it.rd] = m.regs[it.rs1] | (m.regs[it.s2r] + it.imm)
				case tOrI:
					m.regs[it.rd] = m.regs[it.rs1] | it.imm
				case tOrn:
					m.regs[it.rd] = m.regs[it.rs1] | ^(m.regs[it.s2r] + it.imm)
				case tXor:
					m.regs[it.rd] = m.regs[it.rs1] ^ (m.regs[it.s2r] + it.imm)
				case tXnor:
					m.regs[it.rd] = ^(m.regs[it.rs1] ^ (m.regs[it.s2r] + it.imm))
				case tSll:
					m.regs[it.rd] = m.regs[it.rs1] << (uint32(m.regs[it.s2r]+it.imm) & 31)
				case tSllI:
					m.regs[it.rd] = m.regs[it.rs1] << (uint32(it.imm) & 31)
				case tSrl:
					m.regs[it.rd] = int32(uint32(m.regs[it.rs1]) >> (uint32(m.regs[it.s2r]+it.imm) & 31))
				case tSrlI:
					m.regs[it.rd] = int32(uint32(m.regs[it.rs1]) >> (uint32(it.imm) & 31))
				case tSra:
					m.regs[it.rd] = m.regs[it.rs1] >> (uint32(m.regs[it.s2r]+it.imm) & 31)
				case tSMul:
					// cycles in the static batch
					m.regs[it.rd] = m.regs[it.rs1] * (m.regs[it.s2r] + it.imm)
				case tSDiv:
					cyc += cp.div // charged before the zero check, as in Step
					dv := m.regs[it.s2r] + it.imm
					if dv == 0 {
						return cs.fault(curIL, curDL, ihits+uint64(it.hb), ccb,
							cyc, cp, items, it, 0, 0, "division by zero")
					}
					m.regs[it.rd] = m.regs[it.rs1] / dv
				case tAddcc:
					a, c := m.regs[it.rs1], m.regs[it.s2r]+it.imm
					r := a + c
					ccb = ccAddBits(a, c, r)
					m.regs[it.rd] = r
				case tSubcc:
					a, c := m.regs[it.rs1], m.regs[it.s2r]+it.imm
					r := a - c
					ccb = ccSubBits(a, c, r)
					m.regs[it.rd] = r
				case tAndcc:
					r := m.regs[it.rs1] & (m.regs[it.s2r] + it.imm)
					ccb = ccLogicBits(r)
					m.regs[it.rd] = r
				case tAndncc:
					r := m.regs[it.rs1] &^ (m.regs[it.s2r] + it.imm)
					ccb = ccLogicBits(r)
					m.regs[it.rd] = r
				case tOrcc:
					r := m.regs[it.rs1] | (m.regs[it.s2r] + it.imm)
					ccb = ccLogicBits(r)
					m.regs[it.rd] = r
				case tXorcc:
					r := m.regs[it.rs1] ^ (m.regs[it.s2r] + it.imm)
					ccb = ccLogicBits(r)
					m.regs[it.rd] = r
				case tSet:
					m.regs[it.rd] = it.imm
				case tCall:
					m.regs[it.rd] = it.imm // precomputed return address; cp.taken cost is static

				case tLd, tLdI:
					var ea uint32
					if it.kind == tLd {
						ea = uint32(m.regs[it.rs1] + m.regs[it.s2r] + it.imm)
					} else {
						ea = uint32(m.regs[it.rs1] + it.imm)
					}
					if ea&3 != 0 {
						return cs.fault(curIL, curDL, ihits+uint64(it.hb), ccb,
							cyc, cp, items, it, 0, 0, "unaligned load at %#x", ea)
					}
					if m.LoadHook != nil {
						var ex bool
						curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
							ihits, ccb, cyc, ea, it.hb, it.rx, it.rd, cache.DRead, false, cp.memx, 0, 1)
						if ex {
							return nil, curIL, curDL, ihits, ccb
						}
						break
					}
					if line := ea >> shift; line == curDL {
						cs.drh++
					} else if curIL == noLine || (line^curIL)&imask != 0 {
						// Clean D-line change (no I-tracker alias) stays inline: probe
						// and retarget — the kill-and-repair path is the rare one.
						if !cc.Access(ea, cache.DRead) {
							cyc += missP
						}
						curDL = line
					} else {
						var c, cv int64
						curIL, curDL, c, cv = dataSlowV(m, ea, cache.DRead, line, curIL, curDL, imask, it.rx, shift)
						cyc += c
						ihits += uint64(cv)
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					pg := pe.p
					if pe.base != pb {
						pg = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					m.regs[it.rd] = int32(binary.BigEndian.Uint32(pg[o : o+4]))

				case tSt, tStI:
					var ea uint32
					if it.kind == tSt {
						ea = uint32(m.regs[it.rs1] + m.regs[it.s2r] + it.imm)
					} else {
						ea = uint32(m.regs[it.rs1] + it.imm)
					}
					if ea&3 != 0 {
						return cs.fault(curIL, curDL, ihits+uint64(it.hb), ccb,
							cyc, cp, items, it, 0, 0, "unaligned store at %#x", ea)
					}
					if m.StoreHook != nil {
						// The whole hooked protocol — flush exact statistics,
						// run the hook, probe with dead trackers, store, then
						// rebase-and-repair or patch-exit — lives out of line.
						var ex bool
						curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
							ihits, ccb, cyc, ea, it.hb, it.rx, it.rd, cache.DWrite, false, cp.memx, 0, 1)
						if ex {
							return nil, curIL, curDL, ihits, ccb
						}
						break
					}
					if line := ea >> shift; line == curDL {
						cs.dwh++
					} else if curIL == noLine || (line^curIL)&imask != 0 {
						// Clean D-line change (no I-tracker alias) stays inline: probe
						// and retarget — the kill-and-repair path is the rare one.
						if !cc.Access(ea, cache.DWrite) {
							cyc += missP
						}
						curDL = line
					} else {
						var c, cv int64
						curIL, curDL, c, cv = dataSlowV(m, ea, cache.DWrite, line, curIL, curDL, imask, it.rx, shift)
						cyc += c
						ihits += uint64(cv)
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					pg := pe.p
					if pe.base != pb {
						pg = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					binary.BigEndian.PutUint32(pg[o:o+4], uint32(m.regs[it.rd]))

				case tSave:
					// Mirrors Step: operand computed in the caller's window,
					// destination written in the new one.
					v := m.regs[it.rs1] + m.regs[it.s2r] + it.imm
					cyc += m.winPush(cp.spill)
					m.regs[it.rd] = v

				case tRestore:
					if len(m.win) < 1 {
						return cs.fault(curIL, curDL, ihits+uint64(it.hb), ccb,
							cyc, cp, items, it, 0, 0, "register window underflow at top frame")
					}
					v := m.regs[it.rs1] + m.regs[it.s2r] + it.imm
					cyc += m.winPop(cp.spill)
					m.regs[it.rd] = v

				// ---- fused pairs (two instructions, one item) ----

				case tSet2:
					// sethi half is a fetch-only nop here: the merged
					// constant commits in the or half, and the intermediate
					// register value is unobservable inside a trace. The
					// same-line second fetch is already in the batch.
					if it.f&4 != 0 {
						ia2 := TextBase + uint32(it.fpc)<<2 + 4
						if !cc.Access(ia2, cache.IFetch) {
							cyc += missP
						}
						curIL = ia2 >> shift
						if (curIL^curDL)&imask == 0 {
							curDL = noLine
						}
					}
					m.regs[it.rd] = it.imm

				case tSllAdd, tOrAdd, tOrSub:
					if it.kind == tSllAdd {
						m.regs[it.rd] = m.regs[it.rs1] << (uint32(m.regs[it.s2r]+it.imm) & 31)
					} else {
						m.regs[it.rd] = m.regs[it.rs1] | (m.regs[it.s2r] + it.imm)
					}
					if it.f&4 != 0 {
						ia2 := TextBase + uint32(it.fpc)<<2 + 4
						if !cc.Access(ia2, cache.IFetch) {
							cyc += missP
						}
						curIL = ia2 >> shift
						if (curIL^curDL)&imask == 0 {
							curDL = noLine
						}
					}
					if it.kind == tOrSub {
						m.regs[it.rd2] = m.regs[it.rs1b] - (m.regs[it.s2rb] + it.imm2)
					} else {
						m.regs[it.rd2] = m.regs[it.rs1b] + m.regs[it.s2rb] + it.imm2
					}

				case tLdSll, tLdOr, tLdCmp:
					ea := uint32(m.regs[it.rs1] + m.regs[it.s2r] + it.imm)
					if ea&3 != 0 {
						return cs.fault(curIL, curDL, ihits+uint64(it.hb), ccb,
							cyc, cp, items, it, 0, 0, "unaligned load at %#x", ea)
					}
					if m.LoadHook != nil {
						// Repair targets the op's own second fetch when it is
						// precounted (a crossing one probes for itself below),
						// exactly like the kill-repair path.
						var ra uint32
						if it.f&4 == 0 {
							ra = TextBase + uint32(it.fpc)<<2 + 4
						}
						var ex bool
						curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
							ihits, ccb, cyc, ea, it.hb, ra, it.rd, cache.DRead, false, cp.memx, 0, 1)
						if ex {
							return nil, curIL, curDL, ihits, ccb
						}
					} else {
						if line := ea >> shift; line == curDL {
							cs.drh++
						} else if curIL == noLine || (line^curIL)&imask != 0 {
							// Clean D-line change (no I-tracker alias) stays inline: probe
							// and retarget — the kill-and-repair path is the rare one.
							if !cc.Access(ea, cache.DRead) {
								cyc += missP
							}
							curDL = line
						} else {
							// Kill repair targets the op's own second fetch when
							// precounted; a crossing second fetch probes anyway.
							var ra uint32
							if it.f&4 == 0 {
								ra = TextBase + uint32(it.fpc)<<2 + 4
							}
							var c, cv int64
							curIL, curDL, c, cv = dataSlowV(m, ea, cache.DRead, line, curIL, curDL, imask, ra, shift)
							cyc += c
							ihits += uint64(cv)
						}
						pb := ea &^ (PageBytes - 1)
						pe := &m.pageCache[pageCacheIdx(ea)]
						pg := pe.p
						if pe.base != pb {
							pg = m.pageSlow(pb)
						}
						o := ea & (PageBytes - 4)
						m.regs[it.rd] = int32(binary.BigEndian.Uint32(pg[o : o+4]))
					}
					if it.f&4 != 0 {
						ia2 := TextBase + uint32(it.fpc)<<2 + 4
						if !cc.Access(ia2, cache.IFetch) {
							cyc += missP
						}
						curIL = ia2 >> shift
						if (curIL^curDL)&imask == 0 {
							curDL = noLine
						}
					}
					switch it.kind {
					case tLdSll:
						m.regs[it.rd2] = m.regs[it.rs1b] << (uint32(m.regs[it.s2rb]+it.imm2) & 31)
					case tLdOr:
						m.regs[it.rd2] = m.regs[it.rs1b] | (m.regs[it.s2rb] + it.imm2)
					default: // tLdCmp
						a, c2 := m.regs[it.rs1b], m.regs[it.s2rb]+it.imm2
						r := a - c2
						ccb = ccSubBits(a, c2, r)
						m.regs[it.rd2] = r
					}

				case tAddLd, tOrLd, tLdLd:
					var firstMemx int64
					lhooked := m.LoadHook != nil
					if it.kind == tLdLd {
						firstMemx = cp.memx
						ea := uint32(m.regs[it.rs1] + m.regs[it.s2r] + it.imm)
						if ea&3 != 0 {
							return cs.fault(curIL, curDL, ihits+uint64(it.hb), ccb,
								cyc, cp, items, it, 0, 0, "unaligned load at %#x", ea)
						}
						if lhooked {
							var ra uint32
							if it.f&4 == 0 {
								ra = TextBase + uint32(it.fpc)<<2 + 4
							}
							var ex bool
							curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
								ihits, ccb, cyc, ea, it.hb, ra, it.rd, cache.DRead, false, cp.memx, 0, 1)
							if ex {
								return nil, curIL, curDL, ihits, ccb
							}
						} else {
							if line := ea >> shift; line == curDL {
								cs.drh++
							} else if curIL == noLine || (line^curIL)&imask != 0 {
								// Clean D-line change (no I-tracker alias) stays inline: probe
								// and retarget — the kill-and-repair path is the rare one.
								if !cc.Access(ea, cache.DRead) {
									cyc += missP
								}
								curDL = line
							} else {
								var ra uint32
								if it.f&4 == 0 {
									ra = TextBase + uint32(it.fpc)<<2 + 4
								}
								var c, cv int64
								curIL, curDL, c, cv = dataSlowV(m, ea, cache.DRead, line, curIL, curDL, imask, ra, shift)
								cyc += c
								ihits += uint64(cv)
							}
							pb := ea &^ (PageBytes - 1)
							pe := &m.pageCache[pageCacheIdx(ea)]
							pg := pe.p
							if pe.base != pb {
								pg = m.pageSlow(pb)
							}
							o := ea & (PageBytes - 4)
							m.regs[it.rd] = int32(binary.BigEndian.Uint32(pg[o : o+4]))
						}
					} else if it.kind == tAddLd {
						m.regs[it.rd] = m.regs[it.rs1] + m.regs[it.s2r] + it.imm
					} else {
						m.regs[it.rd] = m.regs[it.rs1] | (m.regs[it.s2r] + it.imm)
					}
					hb2 := int64(it.hb)
					if it.f&4 == 0 {
						hb2++ // the batched second fetch has now executed
					} else {
						ia2 := TextBase + uint32(it.fpc)<<2 + 4
						if !cc.Access(ia2, cache.IFetch) {
							cyc += missP
						}
						curIL = ia2 >> shift
						if (curIL^curDL)&imask == 0 {
							curDL = noLine
						}
					}
					ea := uint32(m.regs[it.rs1b] + m.regs[it.s2rb] + it.imm2)
					if ea&3 != 0 {
						return cs.fault(curIL, curDL, ihits+uint64(uint16(hb2)), ccb,
							cyc+firstMemx, cp, items, it, 1, 1, "unaligned load at %#x", ea)
					}
					if lhooked {
						var ex bool
						curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
							ihits, ccb, cyc, ea, uint16(hb2), it.rx, it.rd2, cache.DRead, false, firstMemx+cp.memx, 1, 2)
						if ex {
							return nil, curIL, curDL, ihits, ccb
						}
						break
					}
					if line := ea >> shift; line == curDL {
						cs.drh++
					} else if curIL == noLine || (line^curIL)&imask != 0 {
						// Clean D-line change (no I-tracker alias) stays inline: probe
						// and retarget — the kill-and-repair path is the rare one.
						if !cc.Access(ea, cache.DRead) {
							cyc += missP
						}
						curDL = line
					} else {
						var c, cv int64
						curIL, curDL, c, cv = dataSlowV(m, ea, cache.DRead, line, curIL, curDL, imask, it.rx, shift)
						cyc += c
						ihits += uint64(cv)
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					pg := pe.p
					if pe.base != pb {
						pg = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					m.regs[it.rd2] = int32(binary.BigEndian.Uint32(pg[o : o+4]))

				case tLdSt, tAddSt, tSubSt:
					var firstMemx int64
					if it.kind == tLdSt {
						firstMemx = cp.memx
						ea := uint32(m.regs[it.rs1] + m.regs[it.s2r] + it.imm)
						if ea&3 != 0 {
							return cs.fault(curIL, curDL, ihits+uint64(it.hb), ccb,
								cyc, cp, items, it, 0, 0, "unaligned load at %#x", ea)
						}
						if m.LoadHook != nil {
							var ra uint32
							if it.f&4 == 0 {
								ra = TextBase + uint32(it.fpc)<<2 + 4
							}
							var ex bool
							curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
								ihits, ccb, cyc, ea, it.hb, ra, it.rd, cache.DRead, false, cp.memx, 0, 1)
							if ex {
								return nil, curIL, curDL, ihits, ccb
							}
						} else {
							if line := ea >> shift; line == curDL {
								cs.drh++
							} else if curIL == noLine || (line^curIL)&imask != 0 {
								// Clean D-line change (no I-tracker alias) stays inline: probe
								// and retarget — the kill-and-repair path is the rare one.
								if !cc.Access(ea, cache.DRead) {
									cyc += missP
								}
								curDL = line
							} else {
								var ra uint32
								if it.f&4 == 0 {
									ra = TextBase + uint32(it.fpc)<<2 + 4
								}
								var c, cv int64
								curIL, curDL, c, cv = dataSlowV(m, ea, cache.DRead, line, curIL, curDL, imask, ra, shift)
								cyc += c
								ihits += uint64(cv)
							}
							pb := ea &^ (PageBytes - 1)
							pe := &m.pageCache[pageCacheIdx(ea)]
							pg := pe.p
							if pe.base != pb {
								pg = m.pageSlow(pb)
							}
							o := ea & (PageBytes - 4)
							m.regs[it.rd] = int32(binary.BigEndian.Uint32(pg[o : o+4]))
						}
					} else if it.kind == tAddSt {
						m.regs[it.rd] = m.regs[it.rs1] + m.regs[it.s2r] + it.imm
					} else {
						m.regs[it.rd] = m.regs[it.rs1] - (m.regs[it.s2r] + it.imm)
					}
					hb2 := int64(it.hb)
					if it.f&4 == 0 {
						hb2++ // the batched second fetch has now executed
					} else {
						ia2 := TextBase + uint32(it.fpc)<<2 + 4
						if !cc.Access(ia2, cache.IFetch) {
							cyc += missP
						}
						curIL = ia2 >> shift
						if (curIL^curDL)&imask == 0 {
							curDL = noLine
						}
					}
					ea := uint32(m.regs[it.rs1b] + m.regs[it.s2rb] + it.imm2)
					if ea&3 != 0 {
						return cs.fault(curIL, curDL, ihits+uint64(uint16(hb2)), ccb,
							cyc+firstMemx, cp, items, it, 1, 1, "unaligned store at %#x", ea)
					}
					if m.StoreHook != nil {
						var ex bool
						curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
							ihits, ccb, cyc, ea, uint16(hb2), it.rx, it.rd2, cache.DWrite, false, firstMemx+cp.memx, 1, 2)
						if ex {
							return nil, curIL, curDL, ihits, ccb
						}
						break
					}
					if line := ea >> shift; line == curDL {
						cs.dwh++
					} else if curIL == noLine || (line^curIL)&imask != 0 {
						// Clean D-line change (no I-tracker alias) stays inline: probe
						// and retarget — the kill-and-repair path is the rare one.
						if !cc.Access(ea, cache.DWrite) {
							cyc += missP
						}
						curDL = line
					} else {
						var c, cv int64
						curIL, curDL, c, cv = dataSlowV(m, ea, cache.DWrite, line, curIL, curDL, imask, it.rx, shift)
						cyc += c
						ihits += uint64(cv)
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					pg := pe.p
					if pe.base != pb {
						pg = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					binary.BigEndian.PutUint32(pg[o:o+4], uint32(m.regs[it.rd2]))

					// ---- fused triples (three instructions, one item; the third
					// slot's operands unpack from cm/c3, see ritem) ----

				case tLdd, tStd:
					// Double-word pairs: rare path (see runOutlinedDW).
					fn, nIL, nDL, nih, nccb, ncyc, done := cp.runOutlinedDW(m, items, it, curIL, curDL, ihits, ccb, cyc)
					if done {
						return fn, nIL, nDL, nih, nccb
					}
					curIL, curDL, ihits, ccb, cyc = nIL, nDL, nih, nccb, ncyc

				case tLdSllAdd, tSllAddLd, tOrLdSll, tAddLdSll, tLdAddLd, tOrOrOr,
					tSet2Ld, tSet2St, tLdAddSt, tLdSubSt, tLdOrSt:
					// Fused triples and double-word pairs retire out of line.
					// runOutlined chains through consecutive outlined items
					// before coming back (triples cluster in straight-line code,
					// so one call retires a whole run); done means fault or hook
					// exit, with the results forwarded verbatim.
					var fn cfn
					var done bool
					p, fn, curIL, curDL, ihits, ccb, cyc, done = cp.runOutlined(m, items, p, it, curIL, curDL, ihits, ccb, cyc)
					if done {
						return fn, curIL, curDL, ihits, ccb
					}

				// ---- control transfers (settle, then the op) ----

				case tBr: // predicted not cp.taken: the cp.taken edge exits
					ihits += uint64(it.hb)
					cyc += ctlCyc(it)
					if it.cm>>uint32(ccb)&1 != 0 {
						n := ctlNi(it)
						xCyc, xN, xNpc = cyc+cp.taken, n, int32(it.rx)
						goto hop
					}

				case tBrT: // predicted cp.taken (stitched): the not-cp.taken edge exits
					ihits += uint64(it.hb)
					cyc += ctlCyc(it)
					if it.cm>>uint32(ccb)&1 == 0 {
						n := ctlNi(it)
						xCyc, xN, xNpc = cyc, n, int32(it.rx)
						goto hop
					}
					cyc += cp.taken

				case tBrLoop:
					ihits += uint64(it.hb)
					cyc += ctlCyc(it)
					if it.cm>>uint32(ccb)&1 != 0 {
						n := ctlNi(it)
						cs.inst += n
						cs.cycs += cyc + cp.taken + cs.base*n
						cs.rem -= n
						cyc = 0
						if cs.rem < cp.passInstrs {
							// dispatcher clamps the tail exactly
							return cs.stop(curIL, curDL, ihits, ccb, 0, 0, cp.head)
						}
						continue pass
					}
					n := ctlNi(it)
					xCyc, xN, xNpc = cyc, n, int32(it.rx)
					goto hop

				case tBA:
					ihits += uint64(it.hb)
					cyc += ctlCyc(it) + cp.taken

				case tBALoop:
					ihits += uint64(it.hb)
					n := ctlNi(it)
					cs.inst += n
					cs.cycs += cyc + ctlCyc(it) + cp.taken + cs.base*n
					cs.rem -= n
					cyc = 0
					if cs.rem < cp.passInstrs {
						return cs.stop(curIL, curDL, ihits, ccb, 0, 0, cp.head)
					}
					continue pass

				case tJmpl:
					ihits += uint64(it.hb)
					cyc += ctlCyc(it)
					dest := uint32(m.regs[it.rs1] + m.regs[it.s2r] + it.imm)
					idx := int32((dest - TextBase) / 4)
					if dest < TextBase || dest&3 != 0 || int(idx) >= len(m.uops) {
						// Bad target: exit before the jmpl so Step replays it
						// and raises the fault. NOT a link — the dispatcher's
						// terminator path owns this pc.
						n := ctlNi(it) - 1
						return cs.stop(curIL, curDL, ihits, ccb,
							cyc, n, it.fpc)
					}
					m.regs[it.rd] = int32(TextBase) + it.fpc<<2 + 4
					n := ctlNi(it)
					xCyc, xN, xNpc = cyc+cp.taken, n, idx
					goto hop

				case tCmpBr, tCmpBrT, tCmpBrLoop:
					// Fused subcc+branch: settle, second fetch (a guaranteed
					// hit when same-line: the first fetch just ran), compare,
					// then the branch with the usual prediction split.
					ihits += uint64(it.hb)
					cyc += ctlCyc(it)
					if it.f&4 == 0 {
						ihits++
					} else {
						ia2 := TextBase + uint32(it.fpc)<<2 + 4
						if !cc.Access(ia2, cache.IFetch) {
							cyc += missP
						}
						curIL = ia2 >> shift
						if (curIL^curDL)&imask == 0 {
							curDL = noLine
						}
					}
					a, c2 := m.regs[it.rs1], m.regs[it.s2r]+it.imm
					r := a - c2
					ccb = ccSubBits(a, c2, r)
					m.regs[it.rd] = r
					br := it.cm>>uint32(ccb)&1 != 0
					if it.kind == tCmpBrLoop {
						n := ctlNi(it) + 1
						if br {
							cs.inst += n
							cs.cycs += cyc + cp.taken + cs.base*n
							cs.rem -= n
							cyc = 0
							if cs.rem < cp.passInstrs {
								return cs.stop(curIL, curDL, ihits, ccb, 0, 0, cp.head)
							}
							continue pass
						}
						xCyc, xN, xNpc = cyc, n, int32(it.rx)
						goto hop
					}
					if it.kind == tCmpBr {
						if br {
							n := ctlNi(it) + 1
							xCyc, xN, xNpc = cyc+cp.taken, n, int32(it.rx)
							goto hop
						}
					} else { // tCmpBrT
						if !br {
							n := ctlNi(it) + 1
							xCyc, xN, xNpc = cyc, n, int32(it.rx)
							goto hop
						}
						cyc += cp.taken
					}

				case tEnd:
					ihits += uint64(it.hb)
					xCyc, xN, xNpc = cyc+ctlCyc(it), ctlNi(it), int32(it.rx)
					goto hop

				default:
					panic(fmt.Sprintf("machine: compiled trace: unhandled item kind %d", it.kind))
				}
			}
		hop:
			if np := cs.exitNext(xCyc, xN, xNpc); np != nil {
				cp = np
				items = cp.items
				shift = cp.shift
				cyc = 0
				continue pass
			}
			return nil, curIL, curDL, ihits, ccb
		}
	}
}

// execClosures runs the compiled form of a trace until a side exit, a fault,
// a mid-trace patch, or the MaxInstrs budget — the closure tier's execTrace.
// The accounting protocol is execTrace's exactly (see that doc comment);
// additionally known data hits batch in the cst and flush with the same
// discipline as ifetch hits. The caller guarantees MaxInstrs-instrs >=
// passInstrs on entry; back-edges and links re-check against s.rem.
func (m *Machine) execClosures(cp *closProg, shift, imask, ciLine, cdLine uint32, ihits0 uint64) (uint32, uint32, uint64, error) {
	_ = shift // geometry is compiled into the closures (syncTraceState gates on it)
	s := &m.cstate
	*s = cst{
		m:     m,
		cls:   m.cls,
		imask: imask,
		gen:   m.textGen,
		base:  m.costs.Base + m.PerInstrPenalty,
		rem:   m.MaxInstrs - m.instrs,
	}
	f, curIL, curDL, ihits, ccb := cp.entry, ciLine, cdLine, ihits0, m.ccb
	for f != nil {
		f, curIL, curDL, ihits, ccb = f(m, curIL, curDL, ihits, ccb)
	}
	m.ccb = ccb
	m.instrs += s.inst
	m.cycles += s.cycs
	m.pc = s.npc
	if s.drh != 0 {
		m.cache.NoteHits(cache.DRead, s.drh)
	}
	if s.dwh != 0 {
		m.cache.NoteHits(cache.DWrite, s.dwh)
	}
	return curIL, curDL, ihits, s.err
}

// runOutlined retires the item kinds run keeps out of its own body: every
// fused triple (the double-word pairs tLdd/tStd take their own rare path,
// runOutlinedDW). These bodies would push run past the compiler's
// big-function node budget and demote every cache probe on the hot
// pair/single path to a real call — one extra call per outlined item is far
// cheaper than uninlining the whole dispatch loop. To amortize even that
// call, runOutlined keeps retiring as long as the NEXT item is also an
// outlined kind — triples cluster in the straight-line address chains minic
// emits, so one call often covers a whole run — and hands the advanced
// stream pointer back to the caller.
// done reports that the dispatch must return (a fault or a hook exit, with
// the non-pointer results forwarded verbatim); otherwise the caller resumes
// its walk at the returned pointer with the returned threaded state.
func (cp *closProg) runOutlined(m *Machine, items []ritem, p unsafe.Pointer, it *ritem, curIL, curDL uint32, ihits uint64, ccb uint8, cyc int64) (unsafe.Pointer, cfn, uint32, uint32, uint64, uint8, int64, bool) {
	shift := cp.shift
	// Loop-invariant hot fields, hoisted so the compiler keeps them in
	// registers instead of reloading through m after every real call.
	cs := &m.cstate
	cc := m.cache
	imask := cs.imask
	missP := m.costs.MissPenalty
	const itemSize = unsafe.Sizeof(ritem{})
	for {
		switch it.kind {
		case tLdSllAdd:
			// ld+sll+add: the load is slot A with tLdSll's exact
			// protocol (hook/fault/kill-repair against the own second
			// fetch), then the two ALU slots with their fetches.
			ea := uint32(m.regs[it.rs1] + m.regs[it.s2r] + it.imm)
			if ea&3 != 0 {
				fn, fIL, fDL, fih, fcb := cs.fault(curIL, curDL, ihits+uint64(it.hb), ccb,
					cyc, cp, items, it, 0, 0, "unaligned load at %#x", ea)
				return p, fn, fIL, fDL, fih, fcb, 0, true
			}
			if m.LoadHook != nil {
				var ra uint32
				if it.f&4 == 0 {
					ra = TextBase + uint32(it.fpc)<<2 + 4
				}
				var ex bool
				curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
					ihits, ccb, cyc, ea, it.hb, ra, it.rd, cache.DRead, false, cp.memx, 0, 1)
				if ex {
					return p, nil, curIL, curDL, ihits, ccb, 0, true
				}
			} else {
				if line := ea >> shift; line == curDL {
					cs.drh++
				} else if curIL == noLine || (line^curIL)&imask != 0 {
					if !cc.Access(ea, cache.DRead) {
						cyc += missP
					}
					curDL = line
				} else {
					var ra uint32
					if it.f&4 == 0 {
						ra = TextBase + uint32(it.fpc)<<2 + 4
					}
					var c, cv int64
					curIL, curDL, c, cv = dataSlowV(m, ea, cache.DRead, line, curIL, curDL, imask, ra, shift)
					cyc += c
					ihits += uint64(cv)
				}
				pb := ea &^ (PageBytes - 1)
				pe := &m.pageCache[pageCacheIdx(ea)]
				pg := pe.p
				if pe.base != pb {
					pg = m.pageSlow(pb)
				}
				o := ea & (PageBytes - 4)
				m.regs[it.rd] = int32(binary.BigEndian.Uint32(pg[o : o+4]))
			}
			if it.f&4 != 0 {
				ia2 := TextBase + uint32(it.fpc)<<2 + 4
				if !cc.Access(ia2, cache.IFetch) {
					cyc += missP
				}
				curIL = ia2 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			m.regs[it.rd2] = m.regs[it.rs1b] << (uint32(m.regs[it.s2rb]+it.imm2) & 31)
			if it.f&8 != 0 {
				ia3 := TextBase + uint32(it.fpc)<<2 + 8
				if !cc.Access(ia3, cache.IFetch) {
					cyc += missP
				}
				curIL = ia3 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			m.regs[uint8(it.cm)] = m.regs[uint8(it.cm>>8)] + m.regs[it.c3&0xff] + int32(int16(it.c3>>16))

		case tSllAddLd:
			// sll+add+ld: two ALU slots, then a slot-C load that
			// faults with both earlier slots retired (dN/dPc 2) and
			// kill-repairs against the next item's precounted fetch.
			m.regs[it.rd] = m.regs[it.rs1] << (uint32(m.regs[it.s2r]+it.imm) & 31)
			hb3 := int64(it.hb)
			if it.f&4 == 0 {
				hb3++ // the batched second fetch has now executed
			} else {
				ia2 := TextBase + uint32(it.fpc)<<2 + 4
				if !cc.Access(ia2, cache.IFetch) {
					cyc += missP
				}
				curIL = ia2 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			m.regs[it.rd2] = m.regs[it.rs1b] + m.regs[it.s2rb] + it.imm2
			if it.f&8 == 0 {
				hb3++
			} else {
				ia3 := TextBase + uint32(it.fpc)<<2 + 8
				if !cc.Access(ia3, cache.IFetch) {
					cyc += missP
				}
				curIL = ia3 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			ea := uint32(m.regs[uint8(it.cm>>8)] + m.regs[it.c3&0xff] + int32(int16(it.c3>>16)))
			if ea&3 != 0 {
				fn, fIL, fDL, fih, fcb := cs.fault(curIL, curDL, ihits+uint64(uint16(hb3)), ccb,
					cyc, cp, items, it, 2, 2, "unaligned load at %#x", ea)
				return p, fn, fIL, fDL, fih, fcb, 0, true
			}
			if m.LoadHook != nil {
				var ex bool
				curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
					ihits, ccb, cyc, ea, uint16(hb3), it.rx, uint8(it.cm), cache.DRead, false, cp.memx, 2, 3)
				if ex {
					return p, nil, curIL, curDL, ihits, ccb, 0, true
				}
				break
			}
			if line := ea >> shift; line == curDL {
				cs.drh++
			} else if curIL == noLine || (line^curIL)&imask != 0 {
				if !cc.Access(ea, cache.DRead) {
					cyc += missP
				}
				curDL = line
			} else {
				var c, cv int64
				curIL, curDL, c, cv = dataSlowV(m, ea, cache.DRead, line, curIL, curDL, imask, it.rx, shift)
				cyc += c
				ihits += uint64(cv)
			}
			pb := ea &^ (PageBytes - 1)
			pe := &m.pageCache[pageCacheIdx(ea)]
			pg := pe.p
			if pe.base != pb {
				pg = m.pageSlow(pb)
			}
			o := ea & (PageBytes - 4)
			m.regs[uint8(it.cm)] = int32(binary.BigEndian.Uint32(pg[o : o+4]))

		case tOrLdSll, tAddLdSll:
			// alu+ld+sll: the slot-B load faults with one slot retired
			// (dN/dPc 1) and kill-repairs against the op's own third
			// fetch when precounted (a crossing one probes below).
			if it.kind == tOrLdSll {
				m.regs[it.rd] = m.regs[it.rs1] | (m.regs[it.s2r] + it.imm)
			} else {
				m.regs[it.rd] = m.regs[it.rs1] + m.regs[it.s2r] + it.imm
			}
			hb2 := int64(it.hb)
			if it.f&4 == 0 {
				hb2++ // the batched second fetch has now executed
			} else {
				ia2 := TextBase + uint32(it.fpc)<<2 + 4
				if !cc.Access(ia2, cache.IFetch) {
					cyc += missP
				}
				curIL = ia2 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			ea := uint32(m.regs[it.rs1b] + m.regs[it.s2rb] + it.imm2)
			if ea&3 != 0 {
				fn, fIL, fDL, fih, fcb := cs.fault(curIL, curDL, ihits+uint64(uint16(hb2)), ccb,
					cyc, cp, items, it, 1, 1, "unaligned load at %#x", ea)
				return p, fn, fIL, fDL, fih, fcb, 0, true
			}
			if m.LoadHook != nil {
				var ra uint32
				if it.f&8 == 0 {
					ra = TextBase + uint32(it.fpc)<<2 + 8
				}
				var ex bool
				curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
					ihits, ccb, cyc, ea, uint16(hb2), ra, it.rd2, cache.DRead, false, cp.memx, 1, 2)
				if ex {
					return p, nil, curIL, curDL, ihits, ccb, 0, true
				}
			} else {
				if line := ea >> shift; line == curDL {
					cs.drh++
				} else if curIL == noLine || (line^curIL)&imask != 0 {
					if !cc.Access(ea, cache.DRead) {
						cyc += missP
					}
					curDL = line
				} else {
					var ra uint32
					if it.f&8 == 0 {
						ra = TextBase + uint32(it.fpc)<<2 + 8
					}
					var c, cv int64
					curIL, curDL, c, cv = dataSlowV(m, ea, cache.DRead, line, curIL, curDL, imask, ra, shift)
					cyc += c
					ihits += uint64(cv)
				}
				pb := ea &^ (PageBytes - 1)
				pe := &m.pageCache[pageCacheIdx(ea)]
				pg := pe.p
				if pe.base != pb {
					pg = m.pageSlow(pb)
				}
				o := ea & (PageBytes - 4)
				m.regs[it.rd2] = int32(binary.BigEndian.Uint32(pg[o : o+4]))
			}
			if it.f&8 != 0 {
				ia3 := TextBase + uint32(it.fpc)<<2 + 8
				if !cc.Access(ia3, cache.IFetch) {
					cyc += missP
				}
				curIL = ia3 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			m.regs[uint8(it.cm)] = m.regs[uint8(it.cm>>8)] << (uint32(m.regs[it.c3&0xff]+int32(int16(it.c3>>16))) & 31)

		case tLdAddLd:
			// ld+add+ld pointer chase: slot A is tLdLd's first half,
			// slot C reads the registers as they stand after A and B —
			// program order, even when the add clobbers an address
			// register the slot-C load names.
			{
				ea := uint32(m.regs[it.rs1] + m.regs[it.s2r] + it.imm)
				if ea&3 != 0 {
					fn, fIL, fDL, fih, fcb := cs.fault(curIL, curDL, ihits+uint64(it.hb), ccb,
						cyc, cp, items, it, 0, 0, "unaligned load at %#x", ea)
					return p, fn, fIL, fDL, fih, fcb, 0, true
				}
				if m.LoadHook != nil {
					var ra uint32
					if it.f&4 == 0 {
						ra = TextBase + uint32(it.fpc)<<2 + 4
					}
					var ex bool
					curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
						ihits, ccb, cyc, ea, it.hb, ra, it.rd, cache.DRead, false, cp.memx, 0, 1)
					if ex {
						return p, nil, curIL, curDL, ihits, ccb, 0, true
					}
				} else {
					if line := ea >> shift; line == curDL {
						cs.drh++
					} else if curIL == noLine || (line^curIL)&imask != 0 {
						if !cc.Access(ea, cache.DRead) {
							cyc += missP
						}
						curDL = line
					} else {
						var ra uint32
						if it.f&4 == 0 {
							ra = TextBase + uint32(it.fpc)<<2 + 4
						}
						var c, cv int64
						curIL, curDL, c, cv = dataSlowV(m, ea, cache.DRead, line, curIL, curDL, imask, ra, shift)
						cyc += c
						ihits += uint64(cv)
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					pg := pe.p
					if pe.base != pb {
						pg = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					m.regs[it.rd] = int32(binary.BigEndian.Uint32(pg[o : o+4]))
				}
			}
			hb3 := int64(it.hb)
			if it.f&4 == 0 {
				hb3++ // the batched second fetch has now executed
			} else {
				ia2 := TextBase + uint32(it.fpc)<<2 + 4
				if !cc.Access(ia2, cache.IFetch) {
					cyc += missP
				}
				curIL = ia2 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			m.regs[it.rd2] = m.regs[it.rs1b] + m.regs[it.s2rb] + it.imm2
			if it.f&8 == 0 {
				hb3++
			} else {
				ia3 := TextBase + uint32(it.fpc)<<2 + 8
				if !cc.Access(ia3, cache.IFetch) {
					cyc += missP
				}
				curIL = ia3 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			ea := uint32(m.regs[uint8(it.cm>>8)] + m.regs[it.c3&0xff] + int32(int16(it.c3>>16)))
			if ea&3 != 0 {
				fn, fIL, fDL, fih, fcb := cs.fault(curIL, curDL, ihits+uint64(uint16(hb3)), ccb,
					cyc+cp.memx, cp, items, it, 2, 2, "unaligned load at %#x", ea)
				return p, fn, fIL, fDL, fih, fcb, 0, true
			}
			if m.LoadHook != nil {
				var ex bool
				curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
					ihits, ccb, cyc, ea, uint16(hb3), it.rx, uint8(it.cm), cache.DRead, false, 2*cp.memx, 2, 3)
				if ex {
					return p, nil, curIL, curDL, ihits, ccb, 0, true
				}
				break
			}
			if line := ea >> shift; line == curDL {
				cs.drh++
			} else if curIL == noLine || (line^curIL)&imask != 0 {
				if !cc.Access(ea, cache.DRead) {
					cyc += missP
				}
				curDL = line
			} else {
				var c, cv int64
				curIL, curDL, c, cv = dataSlowV(m, ea, cache.DRead, line, curIL, curDL, imask, it.rx, shift)
				cyc += c
				ihits += uint64(cv)
			}
			pb := ea &^ (PageBytes - 1)
			pe := &m.pageCache[pageCacheIdx(ea)]
			pg := pe.p
			if pe.base != pb {
				pg = m.pageSlow(pb)
			}
			o := ea & (PageBytes - 4)
			m.regs[uint8(it.cm)] = int32(binary.BigEndian.Uint32(pg[o : o+4]))

		case tSet2Ld:
			// sethi+or+ld: the merged constant commits after the or's
			// fetch, before the slot-C load that typically uses rd as
			// its address base. The memop rides in the rd2 slots but
			// is the THIRD instruction: faults and patch exits land
			// at +2/+3.
			hb3 := int64(it.hb)
			if it.f&4 == 0 {
				hb3++
			} else {
				ia2 := TextBase + uint32(it.fpc)<<2 + 4
				if !cc.Access(ia2, cache.IFetch) {
					cyc += missP
				}
				curIL = ia2 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			m.regs[it.rd] = it.imm
			if it.f&8 == 0 {
				hb3++
			} else {
				ia3 := TextBase + uint32(it.fpc)<<2 + 8
				if !cc.Access(ia3, cache.IFetch) {
					cyc += missP
				}
				curIL = ia3 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			ea := uint32(m.regs[it.rs1b] + m.regs[it.s2rb] + it.imm2)
			if ea&3 != 0 {
				fn, fIL, fDL, fih, fcb := cs.fault(curIL, curDL, ihits+uint64(uint16(hb3)), ccb,
					cyc, cp, items, it, 2, 2, "unaligned load at %#x", ea)
				return p, fn, fIL, fDL, fih, fcb, 0, true
			}
			if m.LoadHook != nil {
				var ex bool
				curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
					ihits, ccb, cyc, ea, uint16(hb3), it.rx, it.rd2, cache.DRead, false, cp.memx, 2, 3)
				if ex {
					return p, nil, curIL, curDL, ihits, ccb, 0, true
				}
				break
			}
			if line := ea >> shift; line == curDL {
				cs.drh++
			} else if curIL == noLine || (line^curIL)&imask != 0 {
				if !cc.Access(ea, cache.DRead) {
					cyc += missP
				}
				curDL = line
			} else {
				var c, cv int64
				curIL, curDL, c, cv = dataSlowV(m, ea, cache.DRead, line, curIL, curDL, imask, it.rx, shift)
				cyc += c
				ihits += uint64(cv)
			}
			pb := ea &^ (PageBytes - 1)
			pe := &m.pageCache[pageCacheIdx(ea)]
			pg := pe.p
			if pe.base != pb {
				pg = m.pageSlow(pb)
			}
			o := ea & (PageBytes - 4)
			m.regs[it.rd2] = int32(binary.BigEndian.Uint32(pg[o : o+4]))

		case tSet2St:
			// tSet2Ld with a store in slot C: tSt's full protocol.
			hb3 := int64(it.hb)
			if it.f&4 == 0 {
				hb3++
			} else {
				ia2 := TextBase + uint32(it.fpc)<<2 + 4
				if !cc.Access(ia2, cache.IFetch) {
					cyc += missP
				}
				curIL = ia2 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			m.regs[it.rd] = it.imm
			if it.f&8 == 0 {
				hb3++
			} else {
				ia3 := TextBase + uint32(it.fpc)<<2 + 8
				if !cc.Access(ia3, cache.IFetch) {
					cyc += missP
				}
				curIL = ia3 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			ea := uint32(m.regs[it.rs1b] + m.regs[it.s2rb] + it.imm2)
			if ea&3 != 0 {
				fn, fIL, fDL, fih, fcb := cs.fault(curIL, curDL, ihits+uint64(uint16(hb3)), ccb,
					cyc, cp, items, it, 2, 2, "unaligned store at %#x", ea)
				return p, fn, fIL, fDL, fih, fcb, 0, true
			}
			if m.StoreHook != nil {
				var ex bool
				curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
					ihits, ccb, cyc, ea, uint16(hb3), it.rx, it.rd2, cache.DWrite, false, cp.memx, 2, 3)
				if ex {
					return p, nil, curIL, curDL, ihits, ccb, 0, true
				}
				break
			}
			if line := ea >> shift; line == curDL {
				cs.dwh++
			} else if curIL == noLine || (line^curIL)&imask != 0 {
				if !cc.Access(ea, cache.DWrite) {
					cyc += missP
				}
				curDL = line
			} else {
				var c, cv int64
				curIL, curDL, c, cv = dataSlowV(m, ea, cache.DWrite, line, curIL, curDL, imask, it.rx, shift)
				cyc += c
				ihits += uint64(cv)
			}
			pb := ea &^ (PageBytes - 1)
			pe := &m.pageCache[pageCacheIdx(ea)]
			pg := pe.p
			if pe.base != pb {
				pg = m.pageSlow(pb)
			}
			o := ea & (PageBytes - 4)
			binary.BigEndian.PutUint32(pg[o:o+4], uint32(m.regs[it.rd2]))

		case tLdAddSt, tLdSubSt, tLdOrSt:
			// Canonical read-modify-write: the slot-A load follows
			// tLdSt's first half, and the slot-C store recomputes its
			// address from the live registers (sameAddr guarantees its
			// fields equal the load's) — program-order exact even when
			// the op clobbers the address register. Load hooks exit at
			// +1, store hooks at +3.
			{
				ea := uint32(m.regs[it.rs1] + m.regs[it.s2r] + it.imm)
				if ea&3 != 0 {
					fn, fIL, fDL, fih, fcb := cs.fault(curIL, curDL, ihits+uint64(it.hb), ccb,
						cyc, cp, items, it, 0, 0, "unaligned load at %#x", ea)
					return p, fn, fIL, fDL, fih, fcb, 0, true
				}
				if m.LoadHook != nil {
					var ra uint32
					if it.f&4 == 0 {
						ra = TextBase + uint32(it.fpc)<<2 + 4
					}
					var ex bool
					curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
						ihits, ccb, cyc, ea, it.hb, ra, it.rd, cache.DRead, false, cp.memx, 0, 1)
					if ex {
						return p, nil, curIL, curDL, ihits, ccb, 0, true
					}
				} else {
					if line := ea >> shift; line == curDL {
						cs.drh++
					} else if curIL == noLine || (line^curIL)&imask != 0 {
						if !cc.Access(ea, cache.DRead) {
							cyc += missP
						}
						curDL = line
					} else {
						var ra uint32
						if it.f&4 == 0 {
							ra = TextBase + uint32(it.fpc)<<2 + 4
						}
						var c, cv int64
						curIL, curDL, c, cv = dataSlowV(m, ea, cache.DRead, line, curIL, curDL, imask, ra, shift)
						cyc += c
						ihits += uint64(cv)
					}
					pb := ea &^ (PageBytes - 1)
					pe := &m.pageCache[pageCacheIdx(ea)]
					pg := pe.p
					if pe.base != pb {
						pg = m.pageSlow(pb)
					}
					o := ea & (PageBytes - 4)
					m.regs[it.rd] = int32(binary.BigEndian.Uint32(pg[o : o+4]))
				}
			}
			hb3 := int64(it.hb)
			if it.f&4 == 0 {
				hb3++ // the batched second fetch has now executed
			} else {
				ia2 := TextBase + uint32(it.fpc)<<2 + 4
				if !cc.Access(ia2, cache.IFetch) {
					cyc += missP
				}
				curIL = ia2 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			switch it.kind {
			case tLdAddSt:
				m.regs[it.rd2] = m.regs[it.rs1b] + m.regs[it.s2rb] + it.imm2
			case tLdSubSt:
				m.regs[it.rd2] = m.regs[it.rs1b] - (m.regs[it.s2rb] + it.imm2)
			default: // tLdOrSt
				m.regs[it.rd2] = m.regs[it.rs1b] | (m.regs[it.s2rb] + it.imm2)
			}
			if it.f&8 == 0 {
				hb3++
			} else {
				ia3 := TextBase + uint32(it.fpc)<<2 + 8
				if !cc.Access(ia3, cache.IFetch) {
					cyc += missP
				}
				curIL = ia3 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			ea := uint32(m.regs[uint8(it.cm>>8)] + m.regs[it.c3&0xff] + int32(int16(it.c3>>16)))
			if ea&3 != 0 {
				fn, fIL, fDL, fih, fcb := cs.fault(curIL, curDL, ihits+uint64(uint16(hb3)), ccb,
					cyc+cp.memx, cp, items, it, 2, 2, "unaligned store at %#x", ea)
				return p, fn, fIL, fDL, fih, fcb, 0, true
			}
			if m.StoreHook != nil {
				var ex bool
				curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
					ihits, ccb, cyc, ea, uint16(hb3), it.rx, uint8(it.cm), cache.DWrite, false, 2*cp.memx, 2, 3)
				if ex {
					return p, nil, curIL, curDL, ihits, ccb, 0, true
				}
				break
			}
			if line := ea >> shift; line == curDL {
				cs.dwh++
			} else if curIL == noLine || (line^curIL)&imask != 0 {
				if !cc.Access(ea, cache.DWrite) {
					cyc += missP
				}
				curDL = line
			} else {
				var c, cv int64
				curIL, curDL, c, cv = dataSlowV(m, ea, cache.DWrite, line, curIL, curDL, imask, it.rx, shift)
				cyc += c
				ihits += uint64(cv)
			}
			pb := ea &^ (PageBytes - 1)
			pe := &m.pageCache[pageCacheIdx(ea)]
			pg := pe.p
			if pe.base != pb {
				pg = m.pageSlow(pb)
			}
			o := ea & (PageBytes - 4)
			binary.BigEndian.PutUint32(pg[o:o+4], uint32(m.regs[uint8(it.cm)]))

		case tOrOrOr:
			// Three ALU slots: only the interior fetches touch cache
			// state.
			m.regs[it.rd] = m.regs[it.rs1] | (m.regs[it.s2r] + it.imm)
			if it.f&4 != 0 {
				ia2 := TextBase + uint32(it.fpc)<<2 + 4
				if !cc.Access(ia2, cache.IFetch) {
					cyc += missP
				}
				curIL = ia2 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			m.regs[it.rd2] = m.regs[it.rs1b] | (m.regs[it.s2rb] + it.imm2)
			if it.f&8 != 0 {
				ia3 := TextBase + uint32(it.fpc)<<2 + 8
				if !cc.Access(ia3, cache.IFetch) {
					cyc += missP
				}
				curIL = ia3 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			m.regs[uint8(it.cm)] = m.regs[uint8(it.cm>>8)] | (m.regs[it.c3&0xff] + int32(int16(it.c3>>16)))

		// ---- chain-extension kinds: the cheap singles and pairs that sit
		// between triples in straight-line runs. run()'s dispatch never
		// enters here with one of these — only the chain step below reaches
		// them — they just keep a run alive across the glue items. Bodies
		// are verbatim copies of run()'s. ----

		case tAdd:
			m.regs[it.rd] = m.regs[it.rs1] + m.regs[it.s2r] + it.imm
		case tAddI:
			m.regs[it.rd] = m.regs[it.rs1] + it.imm
		case tSub:
			m.regs[it.rd] = m.regs[it.rs1] - (m.regs[it.s2r] + it.imm)
		case tSubI:
			m.regs[it.rd] = m.regs[it.rs1] - it.imm
		case tOr:
			m.regs[it.rd] = m.regs[it.rs1] | (m.regs[it.s2r] + it.imm)
		case tOrI:
			m.regs[it.rd] = m.regs[it.rs1] | it.imm
		case tSll:
			m.regs[it.rd] = m.regs[it.rs1] << (uint32(m.regs[it.s2r]+it.imm) & 31)
		case tSllI:
			m.regs[it.rd] = m.regs[it.rs1] << (uint32(it.imm) & 31)
		case tSet:
			m.regs[it.rd] = it.imm

		case tSet2:
			if it.f&4 != 0 {
				ia2 := TextBase + uint32(it.fpc)<<2 + 4
				if !cc.Access(ia2, cache.IFetch) {
					cyc += missP
				}
				curIL = ia2 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			m.regs[it.rd] = it.imm

		case tSllAdd, tOrAdd, tOrSub:
			if it.kind == tSllAdd {
				m.regs[it.rd] = m.regs[it.rs1] << (uint32(m.regs[it.s2r]+it.imm) & 31)
			} else {
				m.regs[it.rd] = m.regs[it.rs1] | (m.regs[it.s2r] + it.imm)
			}
			if it.f&4 != 0 {
				ia2 := TextBase + uint32(it.fpc)<<2 + 4
				if !cc.Access(ia2, cache.IFetch) {
					cyc += missP
				}
				curIL = ia2 >> shift
				if (curIL^curDL)&imask == 0 {
					curDL = noLine
				}
			}
			if it.kind == tOrSub {
				m.regs[it.rd2] = m.regs[it.rs1b] - (m.regs[it.s2rb] + it.imm2)
			} else {
				m.regs[it.rd2] = m.regs[it.rs1b] + m.regs[it.s2rb] + it.imm2
			}

		case tStI:
			ea := uint32(m.regs[it.rs1] + it.imm)
			if ea&3 != 0 {
				fn, fIL, fDL, fih, fcb := cs.fault(curIL, curDL, ihits+uint64(it.hb), ccb,
					cyc, cp, items, it, 0, 0, "unaligned store at %#x", ea)
				return p, fn, fIL, fDL, fih, fcb, 0, true
			}
			if m.StoreHook != nil {
				var ex bool
				curIL, curDL, ihits, cyc, ex = cs.hookedAccess(cp, items, it,
					ihits, ccb, cyc, ea, it.hb, it.rx, it.rd, cache.DWrite, false, cp.memx, 0, 1)
				if ex {
					return p, nil, curIL, curDL, ihits, ccb, 0, true
				}
				break
			}
			if line := ea >> shift; line == curDL {
				cs.dwh++
			} else if curIL == noLine || (line^curIL)&imask != 0 {
				if !cc.Access(ea, cache.DWrite) {
					cyc += missP
				}
				curDL = line
			} else {
				var c, cv int64
				curIL, curDL, c, cv = dataSlowV(m, ea, cache.DWrite, line, curIL, curDL, imask, it.rx, shift)
				cyc += c
				ihits += uint64(cv)
			}
			pb := ea &^ (PageBytes - 1)
			pe := &m.pageCache[pageCacheIdx(ea)]
			pg := pe.p
			if pe.base != pb {
				pg = m.pageSlow(pb)
			}
			o := ea & (PageBytes - 4)
			binary.BigEndian.PutUint32(pg[o:o+4], uint32(m.regs[it.rd]))

		case tBA:
			ihits += uint64(it.hb)
			cyc += ctlCyc(it) + cp.taken
		}
		// Chain: if the next item is also an outlined kind, retire it here
		// instead of bouncing back through the caller's dispatch. The walk is
		// safe unbounded: tEnd terminates every trace and is never outlined.
		// (Chaining conditional branches on their predicted edge was tried —
		// peek the decision, bail to run's hop tail on exits — and measured
		// ~7% SLOWER: the peek double-evaluates the compare and the extra
		// cases grow the hottest loop past what the saved bounce buys.)
		nx := (*ritem)(p)
		if !chainKinds[nx.kind] {
			return p, nil, curIL, curDL, ihits, ccb, cyc, false
		}
		it = nx
		p = unsafe.Add(p, itemSize)
		// First ifetch, same protocol as the caller's per-item prologue.
		if k := it.f & 3; k != 0 {
			ia := TextBase + uint32(it.fpc)<<2
			if line := ia >> shift; (k == 1 && curIL != noLine) || line == curIL {
				ihits++
			} else {
				if !cc.Access(ia, cache.IFetch) {
					cyc += missP
				}
				if (line^curDL)&imask == 0 {
					curDL = noLine
				}
				curIL = line
			}
		}
	}
}

// runOutlinedDW retires the double-word pairs tLdd/tStd. No compiled
// workload emits them (minic never generates ldd/std), so they live on
// their own rare path rather than spending runOutlined's node budget —
// keeping that function under the big-function threshold is what keeps the
// cache probes on the chained triple path inlined. Results follow
// runOutlined's contract minus the stream pointer: done means fault or hook
// exit.
func (cp *closProg) runOutlinedDW(m *Machine, items []ritem, it *ritem, curIL, curDL uint32, ihits uint64, ccb uint8, cyc int64) (cfn, uint32, uint32, uint64, uint8, int64, bool) {
	shift := cp.shift
	switch it.kind {
	case tLdd:
		ea := uint32(m.regs[it.rs1] + m.regs[it.s2r] + it.imm)
		if ea&7 != 0 {
			fn, fIL, fDL, fih, fcb := m.cstate.fault(curIL, curDL, ihits+uint64(it.hb), ccb,
				cyc, cp, items, it, 0, 0, "unaligned ldd at %#x", ea)
			return fn, fIL, fDL, fih, fcb, 0, true
		}
		if m.LoadHook != nil {
			var ex bool
			curIL, curDL, ihits, cyc, ex = m.cstate.hookedAccess(cp, items, it,
				ihits, ccb, cyc, ea, it.hb, it.rx, it.rd, cache.DRead, true, 2*cp.memx, 0, 1)
			if ex {
				return nil, curIL, curDL, ihits, ccb, 0, true
			}
			break
		}
		if line := ea >> shift; (ea+4)>>shift != line {
			// Straddle (lines narrower than 8 bytes): both words
			// probe, repair deferred — see dataSlow2V.
			var c, cv int64
			curIL, curDL, c, cv = dataSlow2V(m, ea, cache.DRead, line, curIL, curDL, m.cstate.imask, it.rx, shift)
			cyc += c
			ihits += uint64(cv)
		} else if line == curDL {
			m.cstate.drh++
		} else if curIL == noLine || (line^curIL)&m.cstate.imask != 0 {
			// Clean D-line change (no I-tracker alias) stays inline: probe
			// and retarget — the kill-and-repair path is the rare one.
			if !m.cache.Access(ea, cache.DRead) {
				cyc += m.costs.MissPenalty
			}
			curDL = line
		} else {
			var c, cv int64
			curIL, curDL, c, cv = dataSlowV(m, ea, cache.DRead, line, curIL, curDL, m.cstate.imask, it.rx, shift)
			cyc += c
			ihits += uint64(cv)
		}
		m.regs[it.rd] = m.ReadWord(ea)
		m.regs[it.rd+1] = m.ReadWord(ea + 4)

	case tStd:
		ea := uint32(m.regs[it.rs1] + m.regs[it.s2r] + it.imm)
		if ea&7 != 0 {
			fn, fIL, fDL, fih, fcb := m.cstate.fault(curIL, curDL, ihits+uint64(it.hb), ccb,
				cyc, cp, items, it, 0, 0, "unaligned std at %#x", ea)
			return fn, fIL, fDL, fih, fcb, 0, true
		}
		if m.StoreHook != nil {
			var ex bool
			curIL, curDL, ihits, cyc, ex = m.cstate.hookedAccess(cp, items, it,
				ihits, ccb, cyc, ea, it.hb, it.rx, it.rd, cache.DWrite, true, 2*cp.memx, 0, 1)
			if ex {
				return nil, curIL, curDL, ihits, ccb, 0, true
			}
			break
		}
		if line := ea >> shift; (ea+4)>>shift != line {
			// Straddle (lines narrower than 8 bytes): both words
			// probe, repair deferred — see dataSlow2V.
			var c, cv int64
			curIL, curDL, c, cv = dataSlow2V(m, ea, cache.DWrite, line, curIL, curDL, m.cstate.imask, it.rx, shift)
			cyc += c
			ihits += uint64(cv)
		} else if line == curDL {
			m.cstate.dwh++
		} else if curIL == noLine || (line^curIL)&m.cstate.imask != 0 {
			// Clean D-line change (no I-tracker alias) stays inline: probe
			// and retarget — the kill-and-repair path is the rare one.
			if !m.cache.Access(ea, cache.DWrite) {
				cyc += m.costs.MissPenalty
			}
			curDL = line
		} else {
			var c, cv int64
			curIL, curDL, c, cv = dataSlowV(m, ea, cache.DWrite, line, curIL, curDL, m.cstate.imask, it.rx, shift)
			cyc += c
			ihits += uint64(cv)
		}
		m.storeWord(ea, m.regs[it.rd])
		m.storeWord(ea+4, m.regs[it.rd+1])
	}
	return nil, curIL, curDL, ihits, ccb, cyc, false
}
