package machine

import (
	"math/rand"
	"testing"

	"databreak/internal/cache"
	"databreak/internal/sparc"
)

// The closure tier's proof obligation is execTrace's: observationally
// identical to Step on any program, any fault, and any mid-run patch. These
// tests re-run the differential suite with EngineClosure and pin the
// closure-specific hazards — patching out from under a compiled closure
// chain, COW siblings, and the per-machine (never shared) closure cache.

// diffRunClosure is diffRun with the run side on the closure engine.
func diffRunClosure(t *testing.T, ctx string, text []sparc.Instr) {
	t.Helper()
	a := New(cache.DefaultConfig, DefaultCosts)
	b := New(cache.DefaultConfig, DefaultCosts)
	a.SetCounterCount(4)
	b.SetCounterCount(4)
	b.SetEngine(EngineClosure)
	// Compile immediately so even short-lived programs execute closures.
	b.SetHotThreshold(1)
	a.LoadText(text, 0)
	b.LoadText(text, 0)
	errA := stepAll(a)
	_, errB := b.Run()
	diffStates(t, ctx, a, b, errA, errB)
}

// TestDifferentialClosureRandomPrograms is the randomized differential
// sweep against compiled closures.
func TestDifferentialClosureRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		text := randText(r, 80+r.Intn(400))
		diffRunClosure(t, "closure seed "+string(rune('0'+seed%10)), text)
	}
}

// TestDifferentialClosureFaults re-runs the fault matrix under the closure
// engine: same error text, same pc, same counts at the fault.
func TestDifferentialClosureFaults(t *testing.T) {
	base := sparc.Instr{Op: sparc.Sethi, Rd: sparc.L0, Imm: int32(DataBase >> 10), UseImm: true}
	textAlign := sparc.Instr{Op: sparc.Sethi, Rd: sparc.G1, Imm: int32(TextBase >> 10), UseImm: true}
	// Every case loops enough for the head to pass any hot threshold and the
	// fault to fire from inside a compiled closure chain.
	cases := []struct {
		name string
		text []sparc.Instr
	}{
		{"unaligned load in loop", []sparc.Instr{
			base,
			sparc.RI(sparc.Add, sparc.O1, 1, sparc.O1),
			sparc.RI(sparc.Subcc, sparc.O1, 50, sparc.G0),
			sparc.Branch(sparc.BL, 1),
			sparc.RI(sparc.Add, sparc.L0, 2, sparc.L1),
			{Op: sparc.Ld, Rd: sparc.O0, Rs1: sparc.L1, UseImm: true},
			{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
		}},
		{"division by zero in loop", []sparc.Instr{
			sparc.RI(sparc.Or, sparc.G0, 40, sparc.O2),
			sparc.RI(sparc.Sub, sparc.O2, 1, sparc.O2),
			sparc.RR(sparc.SDiv, sparc.O2, sparc.O2, sparc.O3),
			sparc.RI(sparc.Subcc, sparc.O2, 0, sparc.G0),
			sparc.Branch(sparc.BG, 1),
			{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
		}},
		{"window underflow in loop", []sparc.Instr{
			sparc.RI(sparc.Add, sparc.O1, 1, sparc.O1),
			sparc.RI(sparc.Subcc, sparc.O1, 30, sparc.G0),
			sparc.Branch(sparc.BL, 0),
			{Op: sparc.Restore, Rd: sparc.G0, Rs1: sparc.G0, UseImm: true},
			{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
		}},
		{"jmpl bad target in loop", []sparc.Instr{
			textAlign,
			sparc.RI(sparc.Add, sparc.O1, 1, sparc.O1),
			sparc.RI(sparc.Subcc, sparc.O1, 30, sparc.G0),
			sparc.Branch(sparc.BL, 1),
			sparc.RI(sparc.Add, sparc.G1, 2, sparc.G1),
			{Op: sparc.Jmpl, Rd: sparc.G0, Rs1: sparc.G1, UseImm: true},
			{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { diffRunClosure(t, c.name, c.text) })
	}
}

// TestDifferentialPatchInClosure is TestDifferentialPatchInTrace on the
// closure engine: the hook fires from a compiled closure's store, patches an
// instruction the chain already consumed, and the closure must commit
// exactly the store, exit, and re-dispatch against privatized text.
func TestDifferentialPatchInClosure(t *testing.T) {
	text := []sparc.Instr{
		{Op: sparc.Sethi, Rd: sparc.L0, Imm: int32(DataBase >> 10), UseImm: true},
		{Op: sparc.St, Rd: sparc.O1, Rs1: sparc.L0, UseImm: true},
		sparc.RI(sparc.Add, sparc.O1, 1, sparc.O1),
		sparc.RI(sparc.Subcc, sparc.O1, 100, sparc.G0),
		sparc.Branch(sparc.BL, 1),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
	patched := sparc.RI(sparc.Add, sparc.O1, 3, sparc.O1)
	img := BuildImage(text, 0)

	mk := func(e Engine) *Machine {
		m := New(cache.DefaultConfig, DefaultCosts)
		m.SetEngine(e)
		m.LoadImage(img)
		stores := 0
		m.StoreHook = func(addr uint32, size int32) int64 {
			stores++
			if stores == 5 {
				if err := m.PatchInstr(2, patched); err != nil {
					t.Fatalf("patch: %v", err)
				}
			}
			return 0
		}
		return m
	}

	a, b := mk(EngineStep), mk(EngineClosure)
	errA := stepAll(a)
	_, errB := b.Run()
	diffStates(t, "patch in closure", a, b, errA, errB)
	if b.imgShared {
		t.Fatal("patching machine still marked shared after PatchInstr")
	}
	if b.cls != nil && b.cls[1] != nil {
		t.Fatal("patcher kept a compiled closure for the invalidated trace")
	}
	if got := b.Reg(sparc.O1); got < 100 || got > 102 {
		t.Fatalf("final %%o1 = %d, want the patched +3 stride past 100", got)
	}
}

// TestDifferentialPatchInFusedStoreClosure drives the mid-fused-run patch
// exit (tAddSt second half) through the closure tier.
func TestDifferentialPatchInFusedStoreClosure(t *testing.T) {
	text := []sparc.Instr{
		{Op: sparc.Sethi, Rd: sparc.L0, Imm: int32(DataBase >> 10), UseImm: true},
		sparc.RI(sparc.Add, sparc.O1, 1, sparc.O1),
		{Op: sparc.St, Rd: sparc.O1, Rs1: sparc.L0, UseImm: true},
		sparc.RI(sparc.Subcc, sparc.O1, 100, sparc.G0),
		sparc.Branch(sparc.BL, 1),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
	patched := sparc.RI(sparc.Add, sparc.O1, 7, sparc.O1)
	img := BuildImage(text, 0)

	mk := func(e Engine) *Machine {
		m := New(cache.DefaultConfig, DefaultCosts)
		m.SetEngine(e)
		m.LoadImage(img)
		stores := 0
		m.StoreHook = func(addr uint32, size int32) int64 {
			stores++
			if stores == 9 {
				if err := m.PatchInstr(1, patched); err != nil {
					t.Fatalf("patch: %v", err)
				}
			}
			return 0
		}
		return m
	}

	a, b := mk(EngineStep), mk(EngineClosure)
	errA := stepAll(a)
	_, errB := b.Run()
	diffStates(t, "patch in fused store closure", a, b, errA, errB)
}

// TestImageClosuresSurviveSiblingPatch: two closure-engine machines share an
// Image; one patches (COW-privatizing itself and dropping only its own
// compiled closures), the sibling keeps executing its chains against the
// shared traces. Counts must match Step references on both texts.
func TestImageClosuresSurviveSiblingPatch(t *testing.T) {
	text := countLoop()
	img := BuildImage(text, 0)

	m1 := New(cache.DefaultConfig, DefaultCosts)
	m2 := New(cache.DefaultConfig, DefaultCosts)
	m1.SetEngine(EngineClosure)
	m2.SetEngine(EngineClosure)
	m1.LoadImage(img)
	m2.LoadImage(img)

	// Warm the sibling's closure cache on the shared trace.
	if _, _, err := m2.RunFor(50); err != nil {
		t.Fatalf("warm m2: %v", err)
	}
	if m2.cls == nil || m2.cls[1] == nil {
		t.Fatal("closure engine sibling compiled no closure for the loop head")
	}

	// m1 patches before running: privatized, its (empty) closure slice is
	// rebuilt; the image keeps its traces and the sibling its closures.
	if err := m1.PatchInstr(2, sparc.RI(sparc.Add, sparc.O1, 3, sparc.O1)); err != nil {
		t.Fatalf("patch: %v", err)
	}
	if img.traces[1] == nil {
		t.Fatal("image lost its compiled trace after a sibling patched")
	}
	if m2.cls == nil || m2.cls[1] == nil {
		t.Fatal("sibling lost its compiled closures to another machine's patch")
	}

	// The sibling finishes on the original text and matches a Step reference.
	ref := New(cache.DefaultConfig, DefaultCosts)
	ref.LoadText(text, 0)
	errRef := stepAll(ref)
	_, err2 := m2.Run()
	diffStates(t, "closure sibling after COW patch", ref, m2, errRef, err2)

	// The patcher finishes on the patched text and matches its reference.
	patched := countLoop()
	patched[2] = sparc.RI(sparc.Add, sparc.O1, 3, sparc.O1)
	ref2 := New(cache.DefaultConfig, DefaultCosts)
	ref2.LoadText(patched, 0)
	errRef2 := stepAll(ref2)
	_, err1 := m1.Run()
	diffStates(t, "closure patcher after COW patch", ref2, m1, errRef2, err1)
}

// TestClosureEngineRoundTrip switches one machine through all four engines
// mid-program (RunFor slices) and demands the final state match a pure-Step
// reference: the closure tier's hoisted state must spill completely at every
// exit.
func TestClosureEngineRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed * 77))
		text := randText(r, 300)

		ref := New(cache.DefaultConfig, DefaultCosts)
		ref.SetCounterCount(4)
		ref.LoadText(text, 0)
		errRef := stepAll(ref)

		m := New(cache.DefaultConfig, DefaultCosts)
		m.SetCounterCount(4)
		m.SetEngine(EngineClosure)
		m.SetHotThreshold(1)
		m.LoadText(text, 0)
		order := []Engine{EngineClosure, EngineStep, EngineTrace, EngineBlock}
		var errM error
		for i := 0; !m.Halted() && errM == nil; i++ {
			m.SetEngine(order[i%len(order)])
			_, _, errM = m.RunFor(17)
		}
		diffStates(t, "engine round-trip", ref, m, errRef, errM)
	}
}

// TestClosureTuningKnobs pins SetHotThreshold/SetBrProfMin: a lower
// threshold compiles earlier, and any setting leaves simulated counts
// unchanged.
func TestClosureTuningKnobs(t *testing.T) {
	text := countLoop()
	ref := New(cache.DefaultConfig, DefaultCosts)
	ref.LoadText(text, 0)
	errRef := stepAll(ref)

	for _, hot := range []int{1, 4, 1 << 20} {
		m := New(cache.DefaultConfig, DefaultCosts)
		m.SetEngine(EngineClosure)
		m.SetHotThreshold(hot)
		m.SetBrProfMin(2)
		m.LoadText(text, 0)
		_, err := m.Run()
		diffStates(t, "hot threshold", ref, m, errRef, err)
	}
}

// TestDifferentialPatchInFusedLoadClosure is the closure-tier analog of
// TestDifferentialPatchInFusedLoad: a LoadHook patches mid-chain from inside
// a fused-load closure.
func TestDifferentialPatchInFusedLoadClosure(t *testing.T) {
	text := []sparc.Instr{
		{Op: sparc.Sethi, Rd: sparc.L0, Imm: int32(DataBase >> 10), UseImm: true},
		sparc.RI(sparc.Add, sparc.O1, 1, sparc.O1),
		{Op: sparc.Ld, Rd: sparc.O2, Rs1: sparc.L0, UseImm: true},
		sparc.RI(sparc.Subcc, sparc.O1, 100, sparc.G0),
		sparc.Branch(sparc.BL, 1),
		{Op: sparc.Ta, Imm: TrapExit, UseImm: true},
	}
	patched := sparc.RI(sparc.Add, sparc.O1, 7, sparc.O1)
	img := BuildImage(text, 0)

	mk := func(e Engine) *Machine {
		m := New(cache.DefaultConfig, DefaultCosts)
		m.SetEngine(e)
		m.LoadImage(img)
		loads := 0
		m.LoadHook = func(addr uint32, size int32) int64 {
			loads++
			if loads == 9 {
				if err := m.PatchInstr(1, patched); err != nil {
					t.Fatalf("patch: %v", err)
				}
			}
			return 0
		}
		return m
	}

	a, b := mk(EngineStep), mk(EngineClosure)
	errA := stepAll(a)
	_, errB := b.Run()
	diffStates(t, "patch in fused load closure", a, b, errA, errB)
}
