package cache

import (
	"testing"
	"testing/quick"
)

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 32})
	if c.Access(0x100, DRead) {
		t.Fatal("first access must miss")
	}
	if !c.Access(0x100, DRead) {
		t.Fatal("second access must hit")
	}
	if !c.Access(0x11c, DRead) {
		t.Fatal("same-line access must hit")
	}
	if c.Access(0x120, DRead) {
		t.Fatal("next-line access must miss")
	}
	s := c.Stats()
	if s.Accesses[DRead] != 4 || s.Misses[DRead] != 2 {
		t.Fatalf("stats = %+v, want 4 accesses / 2 misses", s)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 32}) // 32 lines
	a := uint32(0x0)
	b := uint32(0x400) // same index, different tag
	c.Access(a, IFetch)
	if c.Access(b, IFetch) {
		t.Fatal("conflicting line must miss")
	}
	if c.Access(a, IFetch) {
		t.Fatal("evicted line must miss again")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(DefaultConfig)
	c.Access(0x500, DWrite)
	if !c.Probe(0x500) {
		t.Fatal("line should be resident")
	}
	c.Invalidate(0x500)
	if c.Probe(0x500) {
		t.Fatal("line should be invalidated")
	}
	// Invalidating an address whose index holds a different tag is a no-op.
	c.Access(0x500, DWrite)
	c.Invalidate(0x500 + 1<<20)
	if !c.Probe(0x500) {
		t.Fatal("invalidate of a different tag must not evict")
	}
}

func TestFlushKeepsStats(t *testing.T) {
	c := New(DefaultConfig)
	c.Access(0x40, DRead)
	c.Flush()
	if c.Probe(0x40) {
		t.Fatal("flush must empty the cache")
	}
	if c.Stats().TotalAccesses() != 1 {
		t.Fatal("flush must keep statistics")
	}
	c.ResetStats()
	if c.Stats().TotalAccesses() != 0 {
		t.Fatal("ResetStats must zero statistics")
	}
}

func TestProbeMatchesAccess(t *testing.T) {
	// Probe must predict exactly what a subsequent Access reports, and must
	// not change state.
	c := New(Config{SizeBytes: 512, LineBytes: 32})
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			want := c.Probe(a)
			if c.Probe(a) != want { // Probe idempotent
				return false
			}
			if c.Access(a, DRead) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32},
		{SizeBytes: 100, LineBytes: 32},
		{SizeBytes: 1024, LineBytes: 0},
		{SizeBytes: 1024, LineBytes: 33},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
	c := New(Config{SizeBytes: 64 * 1024, LineBytes: 32})
	if c.Lines() != 2048 || c.LineBytes() != 32 {
		t.Errorf("geometry: lines=%d lineBytes=%d", c.Lines(), c.LineBytes())
	}
}

func TestStatsTotals(t *testing.T) {
	c := New(DefaultConfig)
	c.Access(0x0, IFetch)
	c.Access(0x0, IFetch)
	c.Access(0x1000, DRead)
	c.Access(0x2000, DWrite)
	s := c.Stats()
	if s.TotalAccesses() != 4 {
		t.Errorf("TotalAccesses = %d, want 4", s.TotalAccesses())
	}
	if s.TotalMisses() != 3 {
		t.Errorf("TotalMisses = %d, want 3", s.TotalMisses())
	}
}
