// Package cache models the direct-mapped, combined instruction/data cache of
// the SPARC workstations used in the paper's evaluation (32-byte lines).
//
// The paper's §3.3.1 attributes several measurement anomalies (negative
// overheads, inlining being a wash) to this cache: inserting write checks
// both consumes cache capacity and shifts code alignment relative to line
// boundaries. Modelling the cache lets those effects emerge here too.
package cache

// Kind classifies an access for statistics.
type Kind uint8

const (
	IFetch Kind = iota
	DRead
	DWrite
	numKinds
)

// Stats accumulates hit/miss counts per access kind.
type Stats struct {
	Accesses [numKinds]uint64
	Misses   [numKinds]uint64
}

// TotalAccesses returns the number of accesses of all kinds.
func (s Stats) TotalAccesses() uint64 {
	var t uint64
	for _, a := range s.Accesses {
		t += a
	}
	return t
}

// TotalMisses returns the number of misses of all kinds.
func (s Stats) TotalMisses() uint64 {
	var t uint64
	for _, m := range s.Misses {
		t += m
	}
	return t
}

// Cache is a direct-mapped combined I+D cache. It tracks only tags (the
// simulator keeps data in its own memory); a hit or miss is all the cycle
// model needs.
//
// Tags are uint64 so an invalid line can be a sentinel no 32-bit address
// maps to: the hot Access path is then a single load-and-compare, with no
// separate valid-bit array. Access sits on the simulator's per-instruction
// path (one ifetch per Step plus data accesses), so this shape matters.
type Cache struct {
	lineShift uint32 // log2(line size in bytes)
	indexMask uint32 // number of lines - 1
	tags      []uint64
	stats     Stats
}

// invalidTag never equals uint64(line) for any 32-bit address.
const invalidTag = ^uint64(0)

// Config describes a cache geometry.
type Config struct {
	SizeBytes int // total capacity; must be a power of two
	LineBytes int // line size; must be a power of two
}

// DefaultConfig matches the machine in the paper: a 64KB direct-mapped
// combined cache with 32-byte lines.
var DefaultConfig = Config{SizeBytes: 64 * 1024, LineBytes: 32}

// New builds a cache with the given geometry. It panics if the geometry is
// not a power-of-two pair, since that is a programming error in the harness.
func New(cfg Config) *Cache {
	if cfg.SizeBytes <= 0 || cfg.SizeBytes&(cfg.SizeBytes-1) != 0 {
		panic("cache: size must be a positive power of two")
	}
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cache: line size must be a positive power of two")
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	if lines < 1 {
		panic("cache: fewer than one line")
	}
	c := &Cache{
		tags: make([]uint64, lines),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	for ls := cfg.LineBytes; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	c.indexMask = uint32(lines - 1)
	return c
}

// Access simulates one access; it returns true on a hit. A miss installs the
// line (allocate-on-miss for both reads and writes, which is how a combined
// direct-mapped cache with write-allocate behaves for our purposes).
func (c *Cache) Access(addr uint32, kind Kind) bool {
	line := addr >> c.lineShift
	idx := line & c.indexMask
	c.stats.Accesses[kind]++
	if c.tags[idx] == uint64(line) {
		return true
	}
	c.stats.Misses[kind]++
	c.tags[idx] = uint64(line)
	return false
}

// Line returns the line number (tag and index combined) containing addr.
// Two addresses with equal line numbers always hit or miss together.
func (c *Cache) Line(addr uint32) uint32 { return addr >> c.lineShift }

// LineShift returns log2(line size): addr >> LineShift() == Line(addr).
// Hot loops hoist it into a local instead of re-reading through the pointer
// per access.
func (c *Cache) LineShift() uint32 { return c.lineShift }

// IndexMask returns the mask selecting a line number's slot in the
// direct-mapped array: two lines a, b can evict each other exactly when
// (a^b)&IndexMask() == 0 (equal lines "evict" conservatively).
func (c *Cache) IndexMask() uint32 { return c.indexMask }

// MayEvict reports whether an access to line a can evict line b: they map to
// the same slot of the direct-mapped array. (a == b returns true; that
// access would in fact keep b resident, so callers using MayEvict to guard a
// known-hit fast path are conservative, never wrong.)
func (c *Cache) MayEvict(a, b uint32) bool { return (a^b)&c.indexMask == 0 }

// NoteHits records n statistics-only accesses of the given kind that the
// caller has proven would hit (same line as a preceding access, with no
// possibly-evicting access in between). The interpreter's block engine uses
// this to skip the tag probe for sequential instruction fetches while
// keeping Stats bit-identical to one Access call per fetch.
func (c *Cache) NoteHits(kind Kind, n uint64) { c.stats.Accesses[kind] += n }

// Probe reports whether addr would hit, without changing cache state or
// statistics.
func (c *Cache) Probe(addr uint32) bool {
	line := addr >> c.lineShift
	idx := line & c.indexMask
	return c.tags[idx] == uint64(line)
}

// Invalidate drops the line containing addr, if present. The debugger uses
// this when it patches code or monitor data structures from outside the
// simulated processor.
func (c *Cache) Invalidate(addr uint32) {
	line := addr >> c.lineShift
	idx := line & c.indexMask
	if c.tags[idx] == uint64(line) {
		c.tags[idx] = invalidTag
	}
}

// Flush empties the cache and leaves statistics intact.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
}

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int { return 1 << c.lineShift }

// Lines returns the number of lines.
func (c *Cache) Lines() int { return int(c.indexMask) + 1 }
