package mrsnet

// Protocol messages. One Msg shape serves both directions; Op selects the
// meaning and which fields matter. Requests carry a client-chosen Seq that
// the matching response echoes, so a client may pipeline requests for many
// sessions over one connection. Hit delivery is unsolicited (no Seq):
// OpHits frames carry batches coalesced by the daemon's per-connection
// writer.
//
// Session ids (SID) are client-chosen strings, scoped to the connection.
// The daemon places each session onto a shard by consistent hash of the
// SID, so a client re-attaching the same id lands on the same shard.
const (
	// Client → daemon.
	OpHello   = "hello"   // negotiate per-connection hit delivery (Batch, FlushUS)
	OpAttach  = "attach"  // create a session: Workload, Scale, Strategy
	OpRegionC = "region+" // create monitored region: Addr, Size
	OpRegionD = "region-" // delete monitored region: Addr, Size
	OpRun     = "run"     // run to completion; response carries the result
	OpPatch   = "patch"   // toggle text index Index to unimp (Unimp) or original
	OpDetach  = "detach"  // tear the session down

	// Daemon → client.
	OpResp = "resp" // response to the request with the same Seq
	OpHits = "hits" // async batch of watchpoint hits
)

// Msg is one protocol frame body.
type Msg struct {
	Op  string `json:"op"`
	Seq uint64 `json:"seq,omitempty"`
	SID string `json:"sid,omitempty"`

	// OpHello: per-connection hit delivery tuning. Batch 0 keeps the daemon
	// default; 1 disables coalescing (one frame per hit — the measured
	// baseline for the batching win); FlushUS is the coalescing deadline in
	// microseconds (0 = daemon default).
	Batch   int `json:"batch,omitempty"`
	FlushUS int `json:"flush_us,omitempty"`

	// OpAttach.
	Workload string `json:"workload,omitempty"`
	Scale    int    `json:"scale,omitempty"`
	Strategy string `json:"strategy,omitempty"`

	// OpRegionC / OpRegionD. Kind selects the access kinds that deliver
	// hits: "store", "load", "all", or "transition" (store-triggered,
	// filtered by the value predicate in Pred/PredArg). Empty means "all" —
	// the legacy behavior, so old clients are unaffected. Pred is one of
	// "changed", "nonzero", "sign", "mask", "eq" (empty = "changed") and is
	// honored only with Kind "transition".
	Addr    uint32 `json:"addr,omitempty"`
	Size    uint32 `json:"size,omitempty"`
	Kind    string `json:"kind,omitempty"`
	Pred    string `json:"pred,omitempty"`
	PredArg uint32 `json:"pred_arg,omitempty"`

	// OpPatch: the mid-run text-patch toggle (the wire form of the stress
	// harness's copy-on-write churn). Index is the text index; Unimp picks
	// unimp vs the image's original instruction. Skipped (OK response with
	// Skipped set) until the debuggee has retired at least one instruction.
	Index   int32 `json:"index,omitempty"`
	Unimp   bool  `json:"unimp,omitempty"`
	Skipped bool  `json:"skipped,omitempty"`

	// OpResp.
	OK  bool   `json:"ok,omitempty"`
	Err string `json:"err,omitempty"`
	// Attach response: which shard the session was placed on.
	Shard int `json:"shard,omitempty"`
	// Run response: the run result plus the server-side hit total (every
	// one of which has been flushed to this connection before the response,
	// so a client that tallies OpHits frames can reconcile exactly).
	Code     int32  `json:"code,omitempty"`
	Cycles   int64  `json:"cycles,omitempty"`
	Instrs   int64  `json:"instrs,omitempty"`
	Output   string `json:"output,omitempty"`
	HitTotal int64  `json:"hit_total,omitempty"`

	// OpHits.
	Hits []HitRec `json:"hits,omitempty"`
}

// HitRec is one watchpoint hit as delivered on the wire.
type HitRec struct {
	SID    string `json:"sid"`
	Addr   uint32 `json:"addr"`
	Size   int32  `json:"size"`
	Read   bool   `json:"read,omitempty"`
	PC     int32  `json:"pc"`
	Instrs int64  `json:"instrs"`
	// Old and New carry the before/after word values of a transition-region
	// hit; both zero for other hits.
	Old uint32 `json:"old,omitempty"`
	New uint32 `json:"new,omitempty"`
}
