package mrsnet

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/minic"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/workload"
)

// hitWord is the one stack word every workload's entry frame writes: probing
// all ten workloads showed [StackTop-4, StackTop) is the only small region
// with a nonzero, moderate hit count on every program.
const (
	hitAddr uint32 = machine.StackTop - 4
	hitSize uint32 = 4

	// farAddr/churnAddr are far from any workload's data. A region at
	// farAddr installed before the run keeps the check code active for the
	// whole execution without ever hitting; with it in place, adding and
	// removing churnAddr mid-run is count-neutral (mirrors bench.Stress's
	// FarRegion/ChurnRegion pairing).
	farAddr   uint32 = 0x7800_0000
	churnAddr uint32 = 0x7900_0000
)

// testPrograms is a memoizing ProgramSource for daemon tests: same
// workload/scale/strategy → same *asm.Program, so sessions share one
// copy-on-write image exactly as the production source does.
func testPrograms() ProgramSource {
	var mu sync.Mutex
	memo := make(map[string]*asm.Program)
	return func(name string, scale int, strat patch.Strategy) (*asm.Program, error) {
		key := fmt.Sprintf("%s|%d|%s", name, scale, strat)
		mu.Lock()
		defer mu.Unlock()
		if p := memo[key]; p != nil {
			return p, nil
		}
		w, ok := workload.ByName(name, scale)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		src, err := minic.Compile(w.Source)
		if err != nil {
			return nil, err
		}
		u, err := asm.Parse(name+".s", src)
		if err != nil {
			return nil, err
		}
		mcfg := monitor.DefaultConfig
		if strat == patch.Cache || strat == patch.CacheInline {
			mcfg.Flags = true
		}
		res, err := patch.Apply(patch.Options{Strategy: strat, Monitor: mcfg}, u)
		if err != nil {
			return nil, err
		}
		prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
		if err != nil {
			return nil, err
		}
		memo[key] = prog
		return prog, nil
	}
}

type serialResult struct {
	code   int32
	cycles int64
	instrs int64
	output string
	hits   int64
}

// serialRun executes prog on a private machine with regions installed in the
// given order — the byte-identity reference for daemon runs.
func serialRun(t *testing.T, prog *asm.Program, regions [][2]uint32) serialResult {
	t.Helper()
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.LoadShared(m)
	svc, err := monitor.NewService(monitor.DefaultConfig, m)
	if err != nil {
		t.Fatalf("serial service: %v", err)
	}
	svc.NoHitLog = true
	for _, r := range regions {
		if err := svc.CreateRegion(r[0], r[1]); err != nil {
			t.Fatalf("serial region %#x: %v", r[0], err)
		}
	}
	svc.Reinstall()
	code, err := m.Run()
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	return serialResult{
		code: code, cycles: m.Cycles(), instrs: m.Instrs(),
		output: m.Output(), hits: svc.HitCount,
	}
}

func newTestDaemon(t *testing.T, opts Options) *Daemon {
	t.Helper()
	if opts.Programs == nil {
		opts.Programs = testPrograms()
	}
	d, err := NewDaemon(opts)
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	t.Cleanup(d.Close)
	return d
}

func dialPipe(t *testing.T, d *Daemon, hello Hello) *Client {
	t.Helper()
	c, err := NewClient(d.Pipe(), hello)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestAttachRunDetach is the core lifecycle: a session attached over the pipe
// transport produces byte-identical counts to a serial run, every hit is
// delivered before the run response, and detach frees the session.
func TestAttachRunDetach(t *testing.T) {
	d := newTestDaemon(t, Options{Shards: 2})
	c := dialPipe(t, d, Hello{})

	s, err := c.Attach(AttachSpec{SID: "s1", Workload: "eqntott", Scale: 1})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if err := s.CreateRegion(hitAddr, hitSize); err != nil {
		t.Fatalf("region: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	prog, err := d.opts.Programs("eqntott", 1, patch.BitmapInlineRegisters)
	if err != nil {
		t.Fatal(err)
	}
	want := serialRun(t, prog, [][2]uint32{{hitAddr, hitSize}})
	if res.Code != want.code || res.Cycles != want.cycles ||
		res.Instrs != want.instrs || res.Output != want.output {
		t.Fatalf("daemon run diverged from serial:\n daemon: code=%d cycles=%d instrs=%d out=%q\n serial: code=%d cycles=%d instrs=%d out=%q",
			res.Code, res.Cycles, res.Instrs, res.Output,
			want.code, want.cycles, want.instrs, want.output)
	}
	if res.HitTotal != want.hits {
		t.Fatalf("HitTotal = %d, serial produced %d", res.HitTotal, want.hits)
	}
	// Zero hit loss: the response is ordered after the last hit frame, so by
	// now the client has tallied every hit.
	if got := s.Hits(); got != res.HitTotal {
		t.Fatalf("client received %d hits, server reported %d", got, res.HitTotal)
	}
	if s.FirstHitAt().IsZero() {
		t.Fatal("no first-hit timestamp despite hits")
	}
	if err := s.Detach(); err != nil {
		t.Fatalf("detach: %v", err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("run succeeded after detach")
	}
	if d.Attached() != 1 {
		t.Fatalf("Attached() = %d, want 1", d.Attached())
	}
}

// TestBatchToggle runs the same workload under coalesced delivery and under
// the one-frame-per-hit baseline (hello Batch=1): both must deliver the same
// hits, and the coalesced connection must actually batch.
func TestBatchToggle(t *testing.T) {
	d := newTestDaemon(t, Options{Shards: 1})

	run := func(hello Hello, sid string) (RunResult, int64, int) {
		c := dialPipe(t, d, hello)
		maxBatch := 0
		var mu sync.Mutex
		c.OnHits = func(batch []HitRec) {
			mu.Lock()
			if len(batch) > maxBatch {
				maxBatch = len(batch)
			}
			mu.Unlock()
		}
		s, err := c.Attach(AttachSpec{SID: sid, Workload: "fpppp", Scale: 1})
		if err != nil {
			t.Fatalf("attach: %v", err)
		}
		if err := s.CreateRegion(hitAddr, hitSize); err != nil {
			t.Fatalf("region: %v", err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		mu.Lock()
		defer mu.Unlock()
		return res, s.Hits(), maxBatch
	}

	batched, bHits, bMax := run(Hello{Batch: 64, Flush: 50 * time.Millisecond}, "b")
	single, sHits, sMax := run(Hello{Batch: 1}, "s")

	if batched.HitTotal != single.HitTotal || batched.Instrs != single.Instrs {
		t.Fatalf("delivery mode changed results: batched %d hits/%d instrs, single %d/%d",
			batched.HitTotal, batched.Instrs, single.HitTotal, single.Instrs)
	}
	if bHits != batched.HitTotal || sHits != single.HitTotal {
		t.Fatalf("client tallies %d/%d, want %d", bHits, sHits, batched.HitTotal)
	}
	if bMax <= 1 {
		t.Fatalf("coalescing connection never batched (max frame %d of %d hits)", bMax, batched.HitTotal)
	}
	if sMax != 1 {
		t.Fatalf("batch=1 connection sent a %d-hit frame", sMax)
	}
}

// TestShardPlacementStable: the same session id lands on the same shard in
// any daemon with the same shard count, and ids spread across shards.
func TestShardPlacementStable(t *testing.T) {
	const shards = 4
	seen := make(map[int]bool)
	var first []int
	for round := 0; round < 2; round++ {
		d := newTestDaemon(t, Options{Shards: shards})
		c := dialPipe(t, d, Hello{})
		var placed []int
		for i := 0; i < 16; i++ {
			s, err := c.Attach(AttachSpec{SID: fmt.Sprintf("sess-%d", i), Workload: "eqntott", Scale: 1})
			if err != nil {
				t.Fatalf("attach %d: %v", i, err)
			}
			placed = append(placed, s.Shard)
			seen[s.Shard] = true
		}
		if round == 0 {
			first = placed
		} else {
			for i := range placed {
				if placed[i] != first[i] {
					t.Fatalf("sess-%d moved: shard %d then %d", i, first[i], placed[i])
				}
			}
		}
		c.Close()
		d.Close()
	}
	if len(seen) < 2 {
		t.Fatalf("16 sessions all hashed to one shard of %d", shards)
	}
}

// TestRegionAndPatchChurn drives the stress harness's churn over the wire:
// count-neutral region add/remove and the text-patch toggle, mid-run. The
// run must match the serial reference on instrs and output (cycles are
// perturbed by I-cache invalidation, exactly as in bench.Stress).
func TestRegionAndPatchChurn(t *testing.T) {
	d := newTestDaemon(t, Options{Shards: 2})
	c := dialPipe(t, d, Hello{})
	s, err := c.Attach(AttachSpec{SID: "churn", Workload: "eqntott", Scale: 1})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if err := s.CreateRegion(farAddr, 4); err != nil {
		t.Fatalf("far region: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	applied := 0
	for i := 0; i < 8; i++ {
		if err := s.CreateRegion(churnAddr, 64); err != nil {
			t.Fatalf("churn create: %v", err)
		}
		if err := s.DeleteRegion(churnAddr, 64); err != nil {
			t.Fatalf("churn delete: %v", err)
		}
		if ok, err := s.PatchToggle(0, true); err != nil {
			t.Fatalf("patch unimp: %v", err)
		} else if ok {
			if _, err := s.PatchToggle(0, false); err != nil {
				t.Fatalf("patch restore: %v", err)
			}
			applied++
		}
		time.Sleep(time.Millisecond)
	}
	res, err := s.Wait()
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	prog, err := d.opts.Programs("eqntott", 1, patch.BitmapInlineRegisters)
	if err != nil {
		t.Fatal(err)
	}
	want := serialRun(t, prog, [][2]uint32{{farAddr, 4}})
	if res.Instrs != want.instrs || res.Output != want.output || res.Code != want.code {
		t.Fatalf("churned run diverged: instrs %d vs %d, code %d vs %d",
			res.Instrs, want.instrs, res.Code, want.code)
	}
	t.Logf("patch toggles applied: %d of 8", applied)
}

// TestErrors pins the failure paths: bad attach, duplicate sid, unknown
// session, out-of-range patch, admission control.
func TestErrors(t *testing.T) {
	d := newTestDaemon(t, Options{Shards: 1, MaxSessionsPerShard: 2})
	c := dialPipe(t, d, Hello{})

	if _, err := c.Attach(AttachSpec{SID: "x", Workload: "no-such-workload"}); err == nil {
		t.Fatal("attach of unknown workload succeeded")
	}
	if _, err := c.Attach(AttachSpec{SID: "x", Workload: "eqntott", Strategy: "bogus"}); err == nil {
		t.Fatal("attach with unknown strategy succeeded")
	}
	s, err := c.Attach(AttachSpec{SID: "x", Workload: "eqntott"})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if _, err := c.Attach(AttachSpec{SID: "x", Workload: "eqntott"}); err == nil ||
		!strings.Contains(err.Error(), "already attached") {
		t.Fatalf("duplicate sid: err = %v", err)
	}
	if err := s.CreateRegion(3, hitSize); err == nil {
		t.Fatal("misaligned region accepted")
	}

	// Patch before the first retired instruction is skipped, not applied.
	if ok, err := s.PatchToggle(0, true); err != nil || ok {
		t.Fatalf("pre-run patch: applied=%v err=%v, want skipped", ok, err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := s.PatchToggle(1<<20, true); err == nil {
		t.Fatal("out-of-range patch index accepted")
	}

	// Admission control: shard cap is 2 (one slot used by "x").
	if _, err := c.Attach(AttachSpec{SID: "y", Workload: "eqntott"}); err != nil {
		t.Fatalf("attach y: %v", err)
	}
	if _, err := c.Attach(AttachSpec{SID: "z", Workload: "eqntott"}); err == nil ||
		!strings.Contains(err.Error(), "session capacity") {
		t.Fatalf("over-cap attach: err = %v", err)
	}
	if err := s.Detach(); err != nil {
		t.Fatalf("detach: %v", err)
	}
	if _, err := c.Attach(AttachSpec{SID: "z", Workload: "eqntott"}); err != nil {
		t.Fatalf("attach after slot freed: %v", err)
	}

	// Session ops on an unknown sid fail cleanly.
	ghost := &ClientSession{c: c, sid: "ghost"}
	if err := ghost.CreateRegion(hitAddr, hitSize); err == nil {
		t.Fatal("region op on unknown session succeeded")
	}
}

// TestDaemonClose: closing the daemon tears down live connections; clients
// see errors, not hangs.
func TestDaemonClose(t *testing.T) {
	d := newTestDaemon(t, Options{Shards: 2})
	c := dialPipe(t, d, Hello{})
	if _, err := c.Attach(AttachSpec{SID: "s", Workload: "eqntott"}); err != nil {
		t.Fatalf("attach: %v", err)
	}
	done := make(chan struct{})
	go func() {
		d.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon Close hung")
	}
	if _, err := c.Attach(AttachSpec{SID: "t", Workload: "eqntott"}); err == nil {
		t.Fatal("attach succeeded after daemon close")
	}
}

// TestConcurrentSessions: many sessions over several connections, every one
// byte-identical to the serial reference, hits fully reconciled.
func TestConcurrentSessions(t *testing.T) {
	names := []string{"eqntott", "fpppp", "li"}
	if testing.Short() {
		names = names[:2]
	}
	src := testPrograms()
	d := newTestDaemon(t, Options{Programs: src})

	type ref struct{ serialResult }
	refs := make(map[string]ref)
	for _, name := range names {
		prog, err := src(name, 1, patch.BitmapInlineRegisters)
		if err != nil {
			t.Fatal(err)
		}
		refs[name] = ref{serialRun(t, prog, [][2]uint32{{hitAddr, hitSize}})}
	}

	const perConn = 4
	var wg sync.WaitGroup
	errs := make(chan error, 3*perConn)
	for ci := 0; ci < 3; ci++ {
		c := dialPipe(t, d, Hello{})
		for si := 0; si < perConn; si++ {
			wg.Add(1)
			go func(c *Client, ci, si int) {
				defer wg.Done()
				name := names[(ci*perConn+si)%len(names)]
				s, err := c.Attach(AttachSpec{SID: fmt.Sprintf("c%d-s%d", ci, si), Workload: name, Scale: 1})
				if err != nil {
					errs <- fmt.Errorf("attach: %w", err)
					return
				}
				if err := s.CreateRegion(hitAddr, hitSize); err != nil {
					errs <- fmt.Errorf("region: %w", err)
					return
				}
				res, err := s.Run()
				if err != nil {
					errs <- fmt.Errorf("run %s: %w", name, err)
					return
				}
				want := refs[name]
				if res.Cycles != want.cycles || res.Instrs != want.instrs ||
					res.Output != want.output || res.HitTotal != want.hits {
					errs <- fmt.Errorf("%s diverged: cycles %d vs %d, instrs %d vs %d, hits %d vs %d",
						name, res.Cycles, want.cycles, res.Instrs, want.instrs, res.HitTotal, want.hits)
					return
				}
				if s.Hits() != res.HitTotal {
					errs <- fmt.Errorf("%s: client saw %d of %d hits", name, s.Hits(), res.HitTotal)
					return
				}
				errs <- s.Detach()
			}(c, ci, si)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// daemonSession finds the daemon-side session for sid (test-only peek).
func daemonSession(d *Daemon, sid string) *session {
	for _, sh := range d.shards {
		sh.mu.Lock()
		for _, s := range sh.sessions {
			if s.sid == sid {
				sh.mu.Unlock()
				return s
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// TestRunReconcileTimeout is the liveness regression test for the run
// handler's delivered-vs-produced reconciliation: when hits are produced
// that can never reach the connection writer (a stalled routing path,
// simulated here by inflating the service's HitCount directly), the run
// must fail promptly with ErrHitReconcileTimeout instead of polling
// forever.
func TestRunReconcileTimeout(t *testing.T) {
	d := newTestDaemon(t, Options{ReconcileTimeout: 50 * time.Millisecond})
	c := dialPipe(t, d, Hello{})
	s, err := c.Attach(AttachSpec{SID: "stall", Workload: "eqntott", Scale: 1})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if err := s.CreateRegion(hitAddr, hitSize); err != nil {
		t.Fatalf("region: %v", err)
	}
	ds := daemonSession(d, "stall")
	if ds == nil {
		t.Fatal("no daemon session for sid")
	}
	// Fault injection: hits the service counted but the router will never
	// forward. Serialized against the run by Session.Do.
	if err := ds.ms.Do(func(_ *machine.Machine, svc *monitor.Service) error {
		svc.HitCount += 3
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = s.Run()
	if err == nil {
		t.Fatal("run succeeded despite undeliverable hits")
	}
	if !errors.Is(err, ErrHitReconcileTimeout) {
		t.Fatalf("run error = %v, want ErrHitReconcileTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("reconcile failure took %v, deadline not honored", elapsed)
	}
	// The session is still usable for control operations after the failed
	// run (the timeout fails the response, not the session).
	if err := s.Detach(); err != nil {
		t.Fatalf("detach after reconcile failure: %v", err)
	}
}

// TestRegionKinds drives the wire-level kind field: store-kind regions
// behave exactly like legacy regions (store traps are the only checks in a
// write-only patching), load-kind regions deliver nothing without read
// checks, transitions suppress same-value stores and carry old/new values,
// and unknown kinds fail cleanly.
func TestRegionKinds(t *testing.T) {
	d := newTestDaemon(t, Options{})
	c := dialPipe(t, d, Hello{})

	var mu sync.Mutex
	var recs []HitRec
	c.OnHits = func(batch []HitRec) {
		mu.Lock()
		recs = append(recs, batch...)
		mu.Unlock()
	}

	// Baseline: legacy (kind-less) region.
	s1, err := c.Attach(AttachSpec{SID: "k-legacy", Workload: "eqntott", Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.CreateRegion(hitAddr, hitSize); err != nil {
		t.Fatal(err)
	}
	legacy, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	if legacy.HitTotal == 0 {
		t.Fatal("baseline run produced no hits")
	}

	// Explicit store kind: identical delivery.
	s2, err := c.Attach(AttachSpec{SID: "k-store", Workload: "eqntott", Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.CreateRegionKind(hitAddr, hitSize, "store"); err != nil {
		t.Fatal(err)
	}
	store, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if store.HitTotal != legacy.HitTotal || store.Cycles != legacy.Cycles {
		t.Fatalf("store-kind run: hits=%d cycles=%d, legacy hits=%d cycles=%d",
			store.HitTotal, store.Cycles, legacy.HitTotal, legacy.Cycles)
	}

	// Load kind: same simulated counts (the bitmap is kind-blind), zero
	// delivered hits (no read checks are patched in, and store traps are
	// filtered out at delivery).
	s3, err := c.Attach(AttachSpec{SID: "k-load", Workload: "eqntott", Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.CreateRegionKind(hitAddr, hitSize, "load"); err != nil {
		t.Fatal(err)
	}
	load, err := s3.Run()
	if err != nil {
		t.Fatal(err)
	}
	if load.Cycles != legacy.Cycles || load.Instrs != legacy.Instrs {
		t.Fatalf("load-kind region changed simulated counts: cycles %d vs %d",
			load.Cycles, legacy.Cycles)
	}
	if load.HitTotal != 0 || s3.Hits() != 0 {
		t.Fatalf("load-kind region delivered %d hits (client %d), want 0",
			load.HitTotal, s3.Hits())
	}

	// Transition: hits only when the stored value changes; old/new ride
	// along; HitTotal still reconciles against delivered frames.
	s4, err := c.Attach(AttachSpec{SID: "k-trans", Workload: "eqntott", Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s4.CreateTransitionRegion(hitAddr, hitSize, "changed", 0); err != nil {
		t.Fatal(err)
	}
	trans, err := s4.Run()
	if err != nil {
		t.Fatal(err)
	}
	if trans.Cycles != legacy.Cycles {
		t.Fatalf("transition region changed simulated cycles: %d vs %d",
			trans.Cycles, legacy.Cycles)
	}
	if trans.HitTotal > legacy.HitTotal {
		t.Fatalf("transition delivered %d hits, more than the %d stores",
			trans.HitTotal, legacy.HitTotal)
	}
	if s4.Hits() != trans.HitTotal {
		t.Fatalf("client received %d transition hits, server reported %d",
			s4.Hits(), trans.HitTotal)
	}
	mu.Lock()
	for _, r := range recs {
		if r.SID == "k-trans" && r.Old == r.New {
			mu.Unlock()
			t.Fatalf("transition hit with old == new: %+v", r)
		}
	}
	mu.Unlock()

	// Unknown kind fails cleanly.
	s5, err := c.Attach(AttachSpec{SID: "k-bad", Workload: "eqntott", Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s5.CreateRegionKind(hitAddr, hitSize, "exec"); err == nil ||
		!strings.Contains(err.Error(), "unknown region kind") {
		t.Fatalf("unknown kind error = %v", err)
	}
	if err := s5.CreateTransitionRegion(hitAddr, hitSize, "xor", 0); err == nil ||
		!strings.Contains(err.Error(), "unknown transition predicate") {
		t.Fatalf("unknown predicate error = %v", err)
	}
}
