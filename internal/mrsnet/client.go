package mrsnet

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Client speaks the mrsd protocol over one connection, multiplexing any
// number of sessions. Safe for concurrent use: requests are seq-tagged and
// may be pipelined from many goroutines; a single reader goroutine routes
// responses and tallies hit batches.
type Client struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes
	seq atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan *Msg
	sess    map[string]*ClientSession
	readErr error
	closed  chan struct{}

	// OnHits, when non-nil, observes every received hit batch (set before
	// issuing requests). Per-session counters update regardless.
	OnHits func(batch []HitRec)
}

// Hello tunes the daemon's hit delivery for this connection.
type Hello struct {
	// Batch is the hit-coalescing batch size (0 = daemon default, 1 = one
	// frame per hit).
	Batch int
	// Flush is the coalescing deadline (0 = daemon default).
	Flush time.Duration
}

// NewClient wraps an established connection and performs the hello
// exchange. The connection is owned by the client afterwards.
func NewClient(nc net.Conn, hello Hello) (*Client, error) {
	c := &Client{
		nc:      nc,
		pending: make(map[uint64]chan *Msg),
		sess:    make(map[string]*ClientSession),
		closed:  make(chan struct{}),
	}
	go c.readLoop()
	_, err := c.request(&Msg{
		Op:      OpHello,
		Batch:   hello.Batch,
		FlushUS: int(hello.Flush / time.Microsecond),
	})
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("mrsnet: hello: %w", err)
	}
	return c, nil
}

// Dial connects to an mrsd daemon over TCP.
func Dial(addr string, hello Hello) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc, hello)
}

// Close tears the connection down; outstanding requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	c.mu.Unlock()
	return c.nc.Close()
}

// readLoop routes response frames to their waiting requests and hit frames
// to session counters.
func (c *Client) readLoop() {
	var buf []byte
	var err error
	for {
		var m Msg
		buf, err = readMsg(c.nc, buf, &m)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for seq, ch := range c.pending {
				delete(c.pending, seq)
				close(ch)
			}
			select {
			case <-c.closed:
			default:
				close(c.closed)
			}
			c.mu.Unlock()
			return
		}
		switch m.Op {
		case OpResp:
			c.mu.Lock()
			ch := c.pending[m.Seq]
			delete(c.pending, m.Seq)
			c.mu.Unlock()
			if ch != nil {
				mm := m
				ch <- &mm
			}
		case OpHits:
			now := time.Now().UnixNano()
			c.mu.Lock()
			for i := range m.Hits {
				if s := c.sess[m.Hits[i].SID]; s != nil {
					s.hits.Add(1)
					s.firstHit.CompareAndSwap(0, now)
				}
			}
			c.mu.Unlock()
			if c.OnHits != nil {
				c.OnHits(m.Hits)
			}
		}
	}
}

// start registers a waiter and writes the request frame.
func (c *Client) start(m *Msg) (chan *Msg, error) {
	m.Seq = c.seq.Add(1)
	ch := make(chan *Msg, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return nil, err
	}
	c.pending[m.Seq] = ch
	c.mu.Unlock()
	c.wmu.Lock()
	err := writeMsg(c.nc, m)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, m.Seq)
		c.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

// respErr maps a response's error string to a client-side error, restoring
// the daemon's typed errors (ErrHitReconcileTimeout) so callers can match
// them with errors.Is across the wire.
func respErr(r *Msg) error {
	if r.Err == "" {
		return nil
	}
	if strings.Contains(r.Err, ErrHitReconcileTimeout.Error()) {
		return fmt.Errorf("mrsnet: %s: %w", r.Err, ErrHitReconcileTimeout)
	}
	return fmt.Errorf("mrsnet: %s", r.Err)
}

// await blocks for the response on ch.
func (c *Client) await(ch chan *Msg) (*Msg, error) {
	select {
	case r, ok := <-ch:
		if !ok {
			return nil, c.connErr()
		}
		if err := respErr(r); err != nil {
			return nil, err
		}
		return r, nil
	case <-c.closed:
		// The reader may still deliver a response it routed before closing.
		select {
		case r, ok := <-ch:
			if ok {
				if err := respErr(r); err != nil {
					return nil, err
				}
				return r, nil
			}
		default:
		}
		return nil, c.connErr()
	}
}

func (c *Client) connErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr != nil {
		return fmt.Errorf("mrsnet: connection lost: %w", c.readErr)
	}
	return fmt.Errorf("mrsnet: connection closed")
}

// request is a synchronous round trip.
func (c *Client) request(m *Msg) (*Msg, error) {
	ch, err := c.start(m)
	if err != nil {
		return nil, err
	}
	return c.await(ch)
}

// ClientSession is one attached session's client half.
type ClientSession struct {
	c   *Client
	sid string
	// Shard is the daemon shard the session landed on.
	Shard int
	// AttachedAt is when the attach request was sent (latency baseline).
	AttachedAt time.Time

	hits     atomic.Int64
	firstHit atomic.Int64 // UnixNano of the first received hit; 0 = none

	runCh chan *Msg
}

// AttachSpec names the program a session runs.
type AttachSpec struct {
	SID      string
	Workload string
	Scale    int
	Strategy string // "" = BitmapInlineRegisters
}

// Attach creates a session on the daemon.
func (c *Client) Attach(spec AttachSpec) (*ClientSession, error) {
	s := &ClientSession{c: c, sid: spec.SID, AttachedAt: time.Now()}
	// Register before the request so a hit racing the attach response is
	// still counted (hits cannot precede attach server-side, but the reply
	// and a first hit can interleave on the wire for a fast program).
	c.mu.Lock()
	if _, dup := c.sess[spec.SID]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("mrsnet: session %q already attached", spec.SID)
	}
	c.sess[spec.SID] = s
	c.mu.Unlock()
	r, err := c.request(&Msg{
		Op: OpAttach, SID: spec.SID,
		Workload: spec.Workload, Scale: spec.Scale, Strategy: spec.Strategy,
	})
	if err != nil {
		c.mu.Lock()
		delete(c.sess, spec.SID)
		c.mu.Unlock()
		return nil, err
	}
	s.Shard = r.Shard
	return s, nil
}

// SID returns the session id.
func (s *ClientSession) SID() string { return s.sid }

// Hits returns the number of hit records received so far.
func (s *ClientSession) Hits() int64 { return s.hits.Load() }

// FirstHitAt returns when the first hit arrived (zero time if none yet).
func (s *ClientSession) FirstHitAt() time.Time {
	ns := s.firstHit.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// CreateRegion installs a monitored region.
func (s *ClientSession) CreateRegion(addr, size uint32) error {
	_, err := s.c.request(&Msg{Op: OpRegionC, SID: s.sid, Addr: addr, Size: size})
	return err
}

// CreateRegionKind installs a monitored region delivering only hits of the
// named access kind: "store", "load", or "all".
func (s *ClientSession) CreateRegionKind(addr, size uint32, kind string) error {
	_, err := s.c.request(&Msg{Op: OpRegionC, SID: s.sid, Addr: addr, Size: size, Kind: kind})
	return err
}

// CreateTransitionRegion installs a transition watchpoint: store-triggered,
// delivered only when the named predicate's result over the stored word
// changes. pred is one of "changed", "nonzero", "sign", "mask", "eq"
// (empty = "changed"); arg parameterizes "mask" and "eq".
func (s *ClientSession) CreateTransitionRegion(addr, size uint32, pred string, arg uint32) error {
	_, err := s.c.request(&Msg{
		Op: OpRegionC, SID: s.sid, Addr: addr, Size: size,
		Kind: "transition", Pred: pred, PredArg: arg,
	})
	return err
}

// DeleteRegion removes a monitored region.
func (s *ClientSession) DeleteRegion(addr, size uint32) error {
	_, err := s.c.request(&Msg{Op: OpRegionD, SID: s.sid, Addr: addr, Size: size})
	return err
}

// PatchToggle patches text index idx to unimp (true) or back to the
// program's original instruction (false); the daemon skips the patch until
// the debuggee has retired at least one instruction. Returns whether the
// patch was applied.
func (s *ClientSession) PatchToggle(idx int32, unimp bool) (applied bool, err error) {
	r, err := s.c.request(&Msg{Op: OpPatch, SID: s.sid, Index: idx, Unimp: unimp})
	if err != nil {
		return false, err
	}
	return !r.Skipped, nil
}

// RunResult is a completed run.
type RunResult struct {
	Code   int32
	Cycles int64
	Instrs int64
	Output string
	// HitTotal is the server-side hit count; every one of those hits was
	// delivered to this client before the run response.
	HitTotal int64
}

// Start launches the session's run without waiting for completion. Control
// operations (regions, patches) may be issued while it executes; call Wait
// to collect the result.
func (s *ClientSession) Start() error {
	if s.runCh != nil {
		return fmt.Errorf("mrsnet: session %q already running", s.sid)
	}
	ch, err := s.c.start(&Msg{Op: OpRun, SID: s.sid})
	if err != nil {
		return err
	}
	s.runCh = ch
	return nil
}

// Wait blocks for the result of Start.
func (s *ClientSession) Wait() (RunResult, error) {
	if s.runCh == nil {
		return RunResult{}, fmt.Errorf("mrsnet: session %q not started", s.sid)
	}
	r, err := s.c.await(s.runCh)
	s.runCh = nil
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{
		Code: r.Code, Cycles: r.Cycles, Instrs: r.Instrs,
		Output: r.Output, HitTotal: r.HitTotal,
	}, nil
}

// Run is Start+Wait.
func (s *ClientSession) Run() (RunResult, error) {
	if err := s.Start(); err != nil {
		return RunResult{}, err
	}
	return s.Wait()
}

// Detach tears the session down on the daemon and unregisters it locally.
func (s *ClientSession) Detach() error {
	_, err := s.c.request(&Msg{Op: OpDetach, SID: s.sid})
	s.c.mu.Lock()
	delete(s.c.sess, s.sid)
	s.c.mu.Unlock()
	return err
}
