package mrsnet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/sparc"
)

// This file is the mrsd daemon: the paper's single-process monitored region
// service productionized into a sharded network service.
//
// # Architecture
//
// A Daemon owns GOMAXPROCS (configurable) SHARDS, each a private
// monitor.Server instance with its own bounded hit fan-in queue and its own
// router goroutine. Sessions are placed onto shards by jump consistent hash
// of the client-chosen session id, so placement is stable across
// reconnects and independent of arrival order, and no cross-shard lock
// exists anywhere on the hot path: a session's execution, control
// operations, and hit delivery all stay inside one shard.
//
// # Hit path and backpressure
//
//	check code traps (under Session.mu, inside a RunFor slice)
//	  → shard's bounded admission queue (monitor.Options.QueueCap;
//	    a full queue BLOCKS the producing session — backpressure)
//	  → shard pump → shard Hits channel
//	  → shard router (maps monitor session id → owning connection)
//	  → connection outbound queue (bounded channel; a full queue blocks
//	    the router, which transitively fills the admission queue)
//	  → connection writer, which COALESCES consecutive hits into one
//	    OpHits frame, flushing on batch size or deadline
//	  → one length-prefixed frame on the wire
//
// Every stage is bounded, so a slow or dead client throttles only the
// sessions it owns (their shard's queue fills and their RunFor slices
// stall); it cannot grow daemon memory without limit.
//
// # Lock ordering (see DESIGN.md §10)
//
// Daemon.mu > shard.mu > (monitor) Server.mu > Session.mu > leaf locks.
// The router holds shard.mu only for the id→session lookup, never while
// blocking on a connection queue... except it must not: lookup copies the
// *session out, then enqueues outside the lock.

// ProgramSource builds (or fetches from a cache) the patched program for a
// workload. The daemon calls it on every attach; implementations are
// expected to memoize so that sessions running the same workload share one
// asm.Program and therefore one copy-on-write machine.Image (the
// allocation-light attach path). Must be safe for concurrent use.
type ProgramSource func(workload string, scale int, strategy patch.Strategy) (*asm.Program, error)

// ErrHitReconcileTimeout reports that a run finished but the daemon could
// not confirm delivery of all its hits to the connection writer within
// Options.ReconcileTimeout. The run's simulated result is discarded; the
// error indicates a stalled hit-routing path, not a debuggee fault. Client
// callers can match it with errors.Is on run errors.
var ErrHitReconcileTimeout = errors.New("hit delivery reconciliation timed out")

// Options configures a Daemon.
type Options struct {
	// Shards is the number of per-core monitor.Server instances; <= 0 means
	// runtime.GOMAXPROCS(0).
	Shards int
	// QueueCap bounds each shard's hit admission queue; <= 0 means 4096.
	QueueCap int
	// MaxSessionsPerShard caps sessions per shard (admission control);
	// <= 0 means unlimited.
	MaxSessionsPerShard int
	// Batch is the default hit-coalescing batch size per connection
	// (overridable per connection via OpHello); <= 0 means 64. 1 disables
	// coalescing: one frame per hit.
	Batch int
	// Flush is the coalescing deadline: a partial batch is flushed this
	// long after its first hit; <= 0 means 500µs.
	Flush time.Duration
	// ReconcileTimeout bounds how long a run response may wait for the
	// run's hits to reach the connection writer. The wait is normally
	// microseconds (queue → pump → router); if hit routing stalls — a stuck
	// writer, a dead pump — the run handler gives up after this long and
	// fails the run with ErrHitReconcileTimeout instead of hanging the
	// session forever. <= 0 means 5s.
	ReconcileTimeout time.Duration
	// Programs supplies patched programs for attach. Required.
	Programs ProgramSource
	// NewMachine builds the simulated machine for a session; nil means the
	// default geometry and cost model. Must be safe for concurrent use.
	NewMachine func() *machine.Machine
	// Log, when non-nil, receives one line per lifecycle event.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 4096
	}
	if o.Batch <= 0 {
		o.Batch = 64
	}
	if o.Flush <= 0 {
		o.Flush = 500 * time.Microsecond
	}
	if o.ReconcileTimeout <= 0 {
		o.ReconcileTimeout = 5 * time.Second
	}
	if o.NewMachine == nil {
		o.NewMachine = func() *machine.Machine {
			return machine.New(cache.DefaultConfig, machine.DefaultCosts)
		}
	}
	return o
}

// Daemon is a running mrsd instance. Create with NewDaemon, feed it
// connections with Serve/ServeConn (or dial in-process with Pipe), stop
// with Close.
type Daemon struct {
	opts   Options
	shards []*shard

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
	closed    bool
	wg        sync.WaitGroup

	// Sessions ever attached; exposed for load-generator reporting.
	attached atomic.Int64
}

// shard is one per-core monitor.Server plus the routing table from monitor
// session ids to daemon sessions. All state is shard-private.
type shard struct {
	id  int
	srv *monitor.Server

	mu       sync.Mutex
	sessions map[int]*session // monitor session id → session
}

// session is one attached debuggee.
type session struct {
	sid   string
	cn    *conn
	shard *shard
	ms    *monitor.Session
	prog  *asm.Program

	// delivered counts hits handed to the connection's outbound queue; the
	// run handler reconciles it against the Service's HitCount before
	// responding, so a run response is always ordered after the last hit
	// frame of that run.
	delivered atomic.Int64
}

// NewDaemon starts the shard servers and routers. It serves no connections
// until Serve/ServeConn/Pipe.
func NewDaemon(opts Options) (*Daemon, error) {
	opts = opts.withDefaults()
	if opts.Programs == nil {
		return nil, fmt.Errorf("mrsnet: Options.Programs is required")
	}
	d := &Daemon{
		opts:      opts,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*conn]struct{}),
	}
	for i := 0; i < opts.Shards; i++ {
		sh := &shard{
			id: i,
			srv: monitor.NewServerOpt(monitor.Options{
				QueueCap:    opts.QueueCap,
				MaxSessions: opts.MaxSessionsPerShard,
			}),
			sessions: make(map[int]*session),
		}
		d.shards = append(d.shards, sh)
		d.wg.Add(1)
		go d.route(sh)
	}
	return d, nil
}

// Shards returns the shard count (for reporting).
func (d *Daemon) Shards() int { return len(d.shards) }

// Attached returns the number of sessions ever attached.
func (d *Daemon) Attached() int64 { return d.attached.Load() }

func (d *Daemon) logf(format string, args ...any) {
	if d.opts.Log != nil {
		fmt.Fprintf(d.opts.Log, "mrsd: "+format+"\n", args...)
	}
}

// route is a shard's router goroutine: it moves hits from the shard's
// monitor fan-in to the owning connection's outbound queue. The enqueue may
// block (bounded queue) — that is the designed backpressure path — but it
// happens outside shard.mu, so control operations on other sessions of the
// shard never stall behind a slow client.
func (d *Daemon) route(sh *shard) {
	defer d.wg.Done()
	for h := range sh.srv.Hits() {
		sh.mu.Lock()
		s := sh.sessions[h.Session]
		sh.mu.Unlock()
		if s == nil {
			continue // session detached with hits still in flight: drop
		}
		rec := HitRec{
			SID:    s.sid,
			Addr:   h.Hit.Addr,
			Size:   h.Hit.Size,
			Read:   h.Hit.Read,
			PC:     h.Hit.PC,
			Instrs: h.Hit.Instrs,
			Old:    h.Hit.Old,
			New:    h.Hit.New,
		}
		if s.cn.sendHit(rec) {
			s.delivered.Add(1)
		}
	}
}

// placeShard picks the shard for a session id: 64-bit FNV-1a of the id fed
// to Lamping & Veach's jump consistent hash. Stable for any shard count and
// uniform without any per-session placement state.
func (d *Daemon) placeShard(sid string) *shard {
	f := fnv.New64a()
	io.WriteString(f, sid)
	return d.shards[jumpHash(f.Sum64(), len(d.shards))]
}

// jumpHash is the jump consistent hash: O(ln buckets), no memory, minimal
// movement when the bucket count changes.
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// ListenAndServe listens on addr (TCP) and serves until Close.
func (d *Daemon) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return d.Serve(ln)
}

// Serve accepts connections from ln until Close (or a permanent accept
// error). Each connection is served on its own goroutines.
func (d *Daemon) Serve(ln net.Listener) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		ln.Close()
		return fmt.Errorf("mrsnet: daemon is closed")
	}
	d.listeners[ln] = struct{}{}
	d.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			d.mu.Lock()
			closed := d.closed
			d.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		d.ServeConn(nc)
	}
}

// ServeConn serves one established connection (any net.Conn, including one
// side of a net.Pipe) on its own goroutines and returns immediately.
func (d *Daemon) ServeConn(nc net.Conn) {
	cn := &conn{
		d:     d,
		nc:    nc,
		out:   make(chan outEvent, 256),
		done:  make(chan struct{}),
		sess:  make(map[string]*session),
		batch: d.opts.Batch,
		flush: d.opts.Flush,
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		nc.Close()
		return
	}
	d.conns[cn] = struct{}{}
	d.wg.Add(2)
	d.mu.Unlock()
	go cn.readLoop()
	go cn.writeLoop()
}

// Pipe connects an in-process client to the daemon over a net.Pipe — the
// zero-network transport the differential tests and the in-process load
// generator use. The returned connection is the client side.
func (d *Daemon) Pipe() net.Conn {
	client, server := net.Pipe()
	d.ServeConn(server)
	return client
}

// Close stops listeners, tears down every connection (detaching its
// sessions), and shuts the shard servers down gracefully. Idempotent.
func (d *Daemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		d.wg.Wait()
		return
	}
	d.closed = true
	lns := make([]net.Listener, 0, len(d.listeners))
	for ln := range d.listeners {
		lns = append(lns, ln)
	}
	conns := make([]*conn, 0, len(d.conns))
	for cn := range d.conns {
		conns = append(conns, cn)
	}
	d.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, cn := range conns {
		cn.close()
	}
	// Shard servers: Close detaches any straggler sessions and closes the
	// Hits channels, which ends the router goroutines.
	for _, sh := range d.shards {
		sh.srv.Close()
	}
	d.wg.Wait()
}

// outEvent is one item on a connection's outbound queue: either a response
// frame (written immediately, after flushing any pending hit batch so hit/
// response order is preserved) or a single hit (coalesced).
type outEvent struct {
	msg *Msg
	hit HitRec
}

// conn is one served connection: a reader goroutine dispatching requests, a
// writer goroutine owning the socket and the hit batcher, and the session
// registry for this client.
type conn struct {
	d    *Daemon
	nc   net.Conn
	out  chan outEvent
	done chan struct{}

	batch int
	flush time.Duration

	mu     sync.Mutex
	sess   map[string]*session
	closed bool
}

// close tears the connection down: sessions detach, both loops exit. Safe
// to call from any goroutine, idempotent.
func (cn *conn) close() {
	cn.mu.Lock()
	if cn.closed {
		cn.mu.Unlock()
		return
	}
	cn.closed = true
	sessions := make([]*session, 0, len(cn.sess))
	for _, s := range cn.sess {
		sessions = append(sessions, s)
	}
	cn.sess = make(map[string]*session)
	cn.mu.Unlock()
	close(cn.done)
	cn.nc.Close()
	for _, s := range sessions {
		s.unregister()
		s.ms.Detach()
	}
	cn.d.mu.Lock()
	delete(cn.d.conns, cn)
	cn.d.mu.Unlock()
}

// send enqueues an outbound event, failing (false) once the connection is
// closed. Blocking here is the backpressure contract: the caller is either
// a shard router (throttling hit producers) or a request handler.
func (cn *conn) send(ev outEvent) bool {
	select {
	case cn.out <- ev:
		return true
	case <-cn.done:
		return false
	}
}

func (cn *conn) sendHit(rec HitRec) bool { return cn.send(outEvent{hit: rec}) }

func (cn *conn) reply(m *Msg) { cn.send(outEvent{msg: m}) }

func (cn *conn) fail(seq uint64, format string, args ...any) {
	cn.reply(&Msg{Op: OpResp, Seq: seq, Err: fmt.Sprintf(format, args...)})
}

func (cn *conn) ok(seq uint64) { cn.reply(&Msg{Op: OpResp, Seq: seq, OK: true}) }

// writeLoop owns the socket's write side. Hits are coalesced: the first hit
// of a batch starts the flush timer; the batch is written when it reaches
// cn.batch hits, when the timer fires, or when a response frame needs to go
// out (responses are never delayed and never overtake the hits that
// preceded them).
func (cn *conn) writeLoop() {
	defer cn.d.wg.Done()
	defer cn.close()
	var (
		pending []HitRec
		timer   *time.Timer
		timerC  <-chan time.Time
	)
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timerC = nil
		}
	}
	flushHits := func() bool {
		if len(pending) == 0 {
			return true
		}
		err := writeMsg(cn.nc, &Msg{Op: OpHits, Hits: pending})
		pending = pending[:0]
		stopTimer()
		return err == nil
	}
	handle := func(ev outEvent) bool {
		if ev.msg != nil {
			if !flushHits() {
				return false
			}
			return writeMsg(cn.nc, ev.msg) == nil
		}
		pending = append(pending, ev.hit)
		if len(pending) >= cn.batch {
			return flushHits()
		}
		if timer == nil {
			timer = time.NewTimer(cn.flush)
			timerC = timer.C
		}
		return true
	}
	for {
		select {
		case ev := <-cn.out:
			if !handle(ev) {
				return
			}
		case <-timerC:
			timer = nil
			timerC = nil
			if !flushHits() {
				return
			}
		case <-cn.done:
			// Drain what is already queued so a client that detached cleanly
			// still receives its final frames, then exit.
			for {
				select {
				case ev := <-cn.out:
					if !handle(ev) {
						return
					}
				default:
					flushHits()
					return
				}
			}
		}
	}
}

// readLoop parses request frames and dispatches them. Every operation that
// can block on a session lock (attach builds, run, region ops behind an
// executing slice) runs on its own goroutine so one slow session never
// stalls the connection's other sessions.
func (cn *conn) readLoop() {
	defer cn.d.wg.Done()
	defer cn.close()
	var buf []byte
	var err error
	for {
		var m Msg
		buf, err = readMsg(cn.nc, buf, &m)
		if err != nil {
			if err != io.EOF {
				cn.d.logf("conn %v: read: %v", cn.nc.RemoteAddr(), err)
			}
			return
		}
		switch m.Op {
		case OpHello:
			// Per-connection delivery tuning; applied before the writer sees
			// any hits because hello precedes attach.
			if m.Batch > 0 {
				cn.batch = m.Batch
			}
			if m.FlushUS > 0 {
				cn.flush = time.Duration(m.FlushUS) * time.Microsecond
			}
			cn.ok(m.Seq)
		case OpAttach:
			m := m
			go cn.handleAttach(&m)
		case OpRegionC, OpRegionD, OpRun, OpPatch, OpDetach:
			m := m
			go cn.handleSessionOp(&m)
		default:
			cn.fail(m.Seq, "unknown op %q", m.Op)
		}
	}
}

// parseStrategy maps wire strategy names to patch strategies. Empty picks
// the paper's recommended implementation.
func parseStrategy(name string) (patch.Strategy, error) {
	if name == "" {
		return patch.BitmapInlineRegisters, nil
	}
	for _, s := range []patch.Strategy{
		patch.Bitmap, patch.BitmapInline, patch.BitmapInlineRegisters,
		patch.Cache, patch.CacheInline, patch.HashCall,
	} {
		if s.String() == name {
			return s, nil
		}
	}
	return patch.None, fmt.Errorf("unknown strategy %q", name)
}

func (cn *conn) handleAttach(m *Msg) {
	if m.SID == "" {
		cn.fail(m.Seq, "attach: empty sid")
		return
	}
	strat, err := parseStrategy(m.Strategy)
	if err != nil {
		cn.fail(m.Seq, "attach %s: %v", m.SID, err)
		return
	}
	scale := m.Scale
	if scale <= 0 {
		scale = 1
	}
	prog, err := cn.d.opts.Programs(m.Workload, scale, strat)
	if err != nil {
		cn.fail(m.Seq, "attach %s: %v", m.SID, err)
		return
	}
	mcfg := monitor.DefaultConfig
	if strat == patch.Cache || strat == patch.CacheInline {
		mcfg.Flags = true
	}
	mach := cn.d.opts.NewMachine()
	prog.LoadShared(mach)
	sh := cn.d.placeShard(m.SID)
	ms, err := sh.srv.Attach(mcfg, mach)
	if err != nil {
		cn.fail(m.Seq, "attach %s: %v", m.SID, err)
		return
	}
	// The daemon streams hits; holding the per-service log would retain
	// every hit of every session for the session's lifetime.
	ms.Do(func(_ *machine.Machine, svc *monitor.Service) error {
		svc.NoHitLog = true
		return nil
	})
	s := &session{sid: m.SID, cn: cn, shard: sh, ms: ms, prog: prog}
	cn.mu.Lock()
	dup := cn.sess[m.SID] != nil
	if !dup && !cn.closed {
		cn.sess[m.SID] = s
	}
	closed := cn.closed
	cn.mu.Unlock()
	if dup || closed {
		ms.Detach()
		if dup {
			cn.fail(m.Seq, "attach %s: session id already attached", m.SID)
		}
		return
	}
	sh.mu.Lock()
	sh.sessions[ms.ID()] = s
	sh.mu.Unlock()
	cn.d.attached.Add(1)
	cn.d.logf("attach %s → shard %d (%s, scale %d, %s)", m.SID, sh.id, m.Workload, scale, strat)
	cn.reply(&Msg{Op: OpResp, Seq: m.Seq, OK: true, Shard: sh.id})
}

// lookup finds the connection's session for sid.
func (cn *conn) lookup(sid string) *session {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.sess[sid]
}

// unregister removes the session from its shard's routing table and its
// connection's registry.
func (s *session) unregister() {
	s.shard.mu.Lock()
	delete(s.shard.sessions, s.ms.ID())
	s.shard.mu.Unlock()
	s.cn.mu.Lock()
	if s.cn.sess[s.sid] == s {
		delete(s.cn.sess, s.sid)
	}
	s.cn.mu.Unlock()
}

// createRegion maps an OpRegionC frame to the right monitor.Session region
// call. An empty Kind keeps the legacy deliver-everything behavior.
func createRegion(ms *monitor.Session, m *Msg) error {
	switch m.Kind {
	case "", "all":
		return ms.CreateRegion(m.Addr, m.Size)
	case "store":
		return ms.CreateRegionKind(m.Addr, m.Size, monitor.KindStore)
	case "load":
		return ms.CreateRegionKind(m.Addr, m.Size, monitor.KindLoad)
	case "transition":
		pred, err := parsePred(m.Pred, m.PredArg)
		if err != nil {
			return err
		}
		return ms.CreateTransitionRegion(m.Addr, m.Size, pred)
	}
	return fmt.Errorf("mrsnet: unknown region kind %q", m.Kind)
}

// parsePred maps the wire predicate name to a monitor.Predicate.
func parsePred(name string, arg uint32) (monitor.Predicate, error) {
	k, err := monitor.ParsePredKind(name)
	if err != nil {
		return monitor.Predicate{}, fmt.Errorf("mrsnet: %w", err)
	}
	return monitor.Predicate{Kind: k, Arg: arg}, nil
}

func (cn *conn) handleSessionOp(m *Msg) {
	s := cn.lookup(m.SID)
	if s == nil {
		cn.fail(m.Seq, "%s: no session %q", m.Op, m.SID)
		return
	}
	switch m.Op {
	case OpRegionC:
		if err := createRegion(s.ms, m); err != nil {
			cn.fail(m.Seq, "%v", err)
			return
		}
		cn.ok(m.Seq)
	case OpRegionD:
		if err := s.ms.DeleteRegion(m.Addr, m.Size); err != nil {
			cn.fail(m.Seq, "%v", err)
			return
		}
		cn.ok(m.Seq)
	case OpPatch:
		skipped := false
		err := s.ms.Do(func(mach *machine.Machine, _ *monitor.Service) error {
			// Until the first instruction retires the startup code is still
			// pending execution; patching it to unimp would kill the run.
			// Mirrors bench.Stress's patch-churn guard.
			if mach.Instrs() == 0 {
				skipped = true
				return nil
			}
			if m.Index < 0 || int(m.Index) >= len(s.prog.Text) {
				return fmt.Errorf("patch index %d out of range", m.Index)
			}
			in := s.prog.Text[m.Index]
			if m.Unimp {
				in = sparc.Instr{Op: sparc.Unimp}
			}
			return mach.PatchInstr(m.Index, in)
		})
		if err != nil {
			cn.fail(m.Seq, "%v", err)
			return
		}
		cn.reply(&Msg{Op: OpResp, Seq: m.Seq, OK: true, Skipped: skipped})
	case OpRun:
		s.handleRun(m.Seq)
	case OpDetach:
		s.unregister()
		s.ms.Detach()
		cn.d.logf("detach %s (shard %d)", s.sid, s.shard.id)
		cn.ok(m.Seq)
	}
}

// handleRun executes the session to completion and responds with the
// result. Before responding it waits for every hit the run produced to be
// handed to the connection's writer, so the response frame is ordered after
// the last hit frame and HitTotal is exact from the client's perspective.
func (s *session) handleRun(seq uint64) {
	code, runErr := s.ms.Run()
	var produced int64
	var cycles, instrs int64
	var output string
	err := s.ms.Do(func(m *machine.Machine, svc *monitor.Service) error {
		produced = svc.HitCount
		cycles = m.Cycles()
		instrs = m.Instrs()
		output = m.Output()
		return nil
	})
	if runErr != nil {
		s.cn.fail(seq, "run %s: %v", s.sid, runErr)
		return
	}
	if err != nil {
		s.cn.fail(seq, "run %s: %v", s.sid, err)
		return
	}
	// Reconcile delivery: hits traverse shard queue → pump → router
	// asynchronously; poll until the router has forwarded them all (or the
	// connection dies). One flush interval is the natural poll quantum. The
	// deadline guards liveness: if routing stalls (stuck pump, wedged
	// writer), the response must not hang the session forever — fail it
	// with the typed reconcile error instead.
	deadline := time.NewTimer(s.cn.d.opts.ReconcileTimeout)
	defer deadline.Stop()
	for s.delivered.Load() < produced {
		select {
		case <-s.cn.done:
			return
		case <-deadline.C:
			s.cn.fail(seq, "run %s: %v (%d of %d hits delivered)",
				s.sid, ErrHitReconcileTimeout, s.delivered.Load(), produced)
			return
		case <-time.After(100 * time.Microsecond):
		}
	}
	s.cn.reply(&Msg{
		Op: OpResp, Seq: seq, OK: true,
		Code: code, Cycles: cycles, Instrs: instrs, Output: output,
		HitTotal: produced,
	})
}
