// Package mrsnet is the wire layer of the mrsd session daemon: a
// length-prefixed JSON frame protocol carrying the monitored-region-service
// lifecycle (attach, region create/delete, run, patch, detach) plus the
// asynchronous, batched delivery of watchpoint hits back to the client.
//
// The transport is any net.Conn — TCP for the daemon proper, net.Pipe for
// in-process tests and the bench load generator's zero-network mode. Framing
// is deliberately dumb: a 4-byte big-endian payload length followed by one
// JSON object. Dumb framing is what makes the codec provable: ReadFrame can
// be fuzzed against arbitrary byte streams (truncated, oversized, garbage)
// and must return an error, never panic and never over-read.
package mrsnet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxFrame bounds a frame payload. Large enough for a hit batch or a run
// result carrying a workload's full output; small enough that a hostile or
// corrupt length prefix cannot make the reader allocate unbounded memory.
const MaxFrame = 1 << 20

// frameHdrLen is the length prefix size.
const frameHdrLen = 4

// WriteFrame writes one frame: a 4-byte big-endian length then the payload.
// Payloads must be non-empty (a frame always carries a JSON object) and at
// most MaxFrame bytes.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("mrsnet: empty frame payload")
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("mrsnet: frame payload %d bytes exceeds MaxFrame %d", len(payload), MaxFrame)
	}
	var hdr [frameHdrLen]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame payload, reusing buf's capacity when possible.
// It returns io.EOF only on a clean boundary (no bytes read); a frame cut
// short mid-header or mid-payload is io.ErrUnexpectedEOF. Oversized and
// zero-length prefixes are errors before any payload byte is read.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err // clean EOF stays io.EOF
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("mrsnet: zero-length frame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("mrsnet: frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// writeMsg marshals m and writes it as one frame. Callers serialize writes
// per connection themselves.
func writeMsg(w io.Writer, m *Msg) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return WriteFrame(w, payload)
}

// readMsg reads one frame and unmarshals it into m (zeroed first). Garbage
// payloads — non-JSON bytes, wrong JSON shape — are errors, never panics.
func readMsg(r io.Reader, buf []byte, m *Msg) ([]byte, error) {
	buf, err := ReadFrame(r, buf)
	if err != nil {
		return buf, err
	}
	*m = Msg{}
	if err := json.Unmarshal(buf, m); err != nil {
		return buf, fmt.Errorf("mrsnet: bad frame payload: %w", err)
	}
	return buf, nil
}
