package mrsnet

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// FuzzFrameRoundTrip: any non-empty payload up to MaxFrame survives a
// write/read cycle byte-for-byte; oversized payloads are write errors.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(`{"op":"hello"}`))
	f.Add([]byte(`{"op":"hits","hits":[{"sid":"s1","addr":536870912,"size":4,"pc":12,"instrs":99}]}`))
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{0xff}, 4096))
	f.Fuzz(func(t *testing.T, payload []byte) {
		var buf bytes.Buffer
		err := WriteFrame(&buf, payload)
		if len(payload) == 0 || len(payload) > MaxFrame {
			if err == nil {
				t.Fatalf("WriteFrame accepted %d-byte payload", len(payload))
			}
			return
		}
		if err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		got, err := ReadFrame(&buf, nil)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: %d bytes in, %d out", len(payload), len(got))
		}
		// A second read on the drained stream is a clean EOF.
		if _, err := ReadFrame(&buf, got); err != io.EOF {
			t.Fatalf("read past end: err = %v, want io.EOF", err)
		}
	})
}

// FuzzFrameDecode: arbitrary byte streams — truncations, wild lengths,
// garbage JSON — must produce errors, never panics, and never huge
// allocations (the MaxFrame check runs before any payload allocation).
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 5, 'h', 'i'})
	ok := []byte(`{"op":"resp","seq":3,"ok":true}`)
	var framed bytes.Buffer
	WriteFrame(&framed, ok)
	f.Add(framed.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var m Msg
		var buf []byte
		for {
			var err error
			buf, err = readMsg(r, buf, &m)
			if err != nil {
				break // any error is acceptable; looping proves no panic
			}
		}
	})
}

func frame(payload []byte) []byte {
	var b bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	b.Write(hdr[:])
	b.Write(payload)
	return b.Bytes()
}

// TestReadFrameErrors pins the error taxonomy the fuzzers rely on.
func TestReadFrameErrors(t *testing.T) {
	cases := []struct {
		name  string
		input []byte
		want  error  // exact error, or
		sub   string // substring of the error text
	}{
		{name: "clean EOF", input: nil, want: io.EOF},
		{name: "truncated header", input: []byte{0, 0}, want: io.ErrUnexpectedEOF},
		{name: "zero length", input: []byte{0, 0, 0, 0}, sub: "zero-length"},
		{name: "oversized", input: []byte{0xff, 0xff, 0xff, 0xff}, sub: "exceeds MaxFrame"},
		{name: "just over the cap", input: frame(nil)[:4], sub: "zero-length"},
		{name: "truncated payload", input: []byte{0, 0, 0, 8, 'a', 'b'}, want: io.ErrUnexpectedEOF},
	}
	// Patch the oversized-by-one case properly: a header declaring
	// MaxFrame+1 with no payload must fail on the length check alone.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	cases = append(cases, struct {
		name  string
		input []byte
		want  error
		sub   string
	}{name: "MaxFrame+1", input: hdr[:], sub: "exceeds MaxFrame"})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrame(bytes.NewReader(tc.input), nil)
			if err == nil {
				t.Fatal("ReadFrame succeeded on malformed input")
			}
			if tc.want != nil && err != tc.want {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if tc.sub != "" && !strings.Contains(err.Error(), tc.sub) {
				t.Fatalf("err = %v, want substring %q", err, tc.sub)
			}
		})
	}
}

// TestFrameAtCap: exactly MaxFrame bytes round-trips; garbage JSON inside a
// well-formed frame errors at the message layer.
func TestFrameAtCap(t *testing.T) {
	big := bytes.Repeat([]byte{'x'}, MaxFrame)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, big); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf, nil)
	if err != nil || len(got) != MaxFrame {
		t.Fatalf("cap-size frame: len=%d err=%v", len(got), err)
	}
	var m Msg
	if _, err := readMsg(bytes.NewReader(frame([]byte("not json"))), nil, &m); err == nil {
		t.Fatal("readMsg accepted garbage JSON")
	}
}

// TestMsgRoundTrip: a fully populated message survives encode/decode.
func TestMsgRoundTrip(t *testing.T) {
	in := Msg{
		Op: OpResp, Seq: 42, SID: "s7", OK: true, Shard: 3,
		Code: 1, Cycles: 123456789, Instrs: 987654321,
		Output: "hello\n", HitTotal: 17,
		Hits: []HitRec{{SID: "s7", Addr: 0x2000_0000, Size: 4, PC: 9, Instrs: 1000}},
	}
	var buf bytes.Buffer
	if err := writeMsg(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out Msg
	if _, err := readMsg(&buf, nil, &out); err != nil {
		t.Fatal(err)
	}
	if out.Op != in.Op || out.Seq != in.Seq || out.SID != in.SID ||
		out.Cycles != in.Cycles || out.Instrs != in.Instrs ||
		out.Output != in.Output || out.HitTotal != in.HitTotal ||
		len(out.Hits) != 1 || out.Hits[0] != in.Hits[0] {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}
