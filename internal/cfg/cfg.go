// Package cfg builds control flow graphs, dominator trees, and natural
// loops over assembly units, for the write-check elimination analysis of §4.
//
// Functions are delimited by the compiler's `.stabs "...", func` records.
// Each function's instructions are partitioned into basic blocks; back edges
// (whose targets dominate their sources) identify natural loops, processed
// inner-to-outer by the optimizer so checks hoisted out of an inner loop can
// be hoisted again (§4.3.2).
package cfg

import (
	"fmt"
	"sort"

	"databreak/internal/asm"
	"databreak/internal/sparc"
)

// Func is one function's instruction range within a unit.
type Func struct {
	Name  string
	Unit  *asm.Unit
	Start int // first item index (the function label)
	End   int // one past the last item

	// Instrs lists the item indices of instructions, in order.
	Instrs []int
	// PosOf maps item index -> position in Instrs.
	PosOf map[int]int

	Blocks []*Block
	// BlockOf maps instruction position -> owning block.
	BlockOf []int

	Loops []*Loop
}

// Block is a basic block of instruction positions [Start, End).
type Block struct {
	ID    int
	Start int // position in Func.Instrs
	End   int
	Succs []int
	Preds []int
	// IDom is the immediate dominator block id (-1 for entry).
	IDom int
	// FallthroughSucc is the textually next block if control can fall into
	// it (-1 otherwise).
	FallthroughSucc int
}

// Loop is a natural loop.
type Loop struct {
	Header int          // block id
	Blocks map[int]bool // block ids in the loop (including header)
	Depth  int          // nesting depth (1 = outermost)
	Parent *Loop
}

// Contains reports whether the loop contains block b.
func (l *Loop) Contains(b int) bool { return l.Blocks[b] }

// SplitFunctions finds functions in a unit via its func symbol records.
func SplitFunctions(u *asm.Unit) ([]*Func, error) {
	// Collect function names and label positions.
	labelPos := make(map[string]int)
	for i, it := range u.Items {
		if it.Kind == asm.ItemLabel {
			labelPos[it.Label] = i
		}
	}
	type fn struct {
		name string
		pos  int
	}
	var fns []fn
	for _, it := range u.Items {
		if it.Kind == asm.ItemSymRec && it.Sym.Kind == asm.SymFunc {
			pos, ok := labelPos[it.Sym.Label]
			if !ok {
				return nil, fmt.Errorf("cfg: func record %q names unknown label", it.Sym.Name)
			}
			fns = append(fns, fn{it.Sym.Name, pos})
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].pos < fns[j].pos })
	var out []*Func
	for i, f := range fns {
		end := len(u.Items)
		if i+1 < len(fns) {
			end = fns[i+1].pos
		}
		fun, err := Build(u, f.name, f.pos, end)
		if err != nil {
			return nil, err
		}
		out = append(out, fun)
	}
	return out, nil
}

// Build constructs the CFG for the instructions of u.Items[start:end].
func Build(u *asm.Unit, name string, start, end int) (*Func, error) {
	f := &Func{Name: name, Unit: u, Start: start, End: end, PosOf: make(map[int]int)}

	// Map local labels to the position of the next instruction.
	labelAt := make(map[string]int) // label -> instruction position
	var pendingLabels []string
	for i := start; i < end; i++ {
		it := &u.Items[i]
		switch it.Kind {
		case asm.ItemLabel:
			pendingLabels = append(pendingLabels, it.Label)
		case asm.ItemInstr:
			pos := len(f.Instrs)
			f.PosOf[i] = pos
			f.Instrs = append(f.Instrs, i)
			for _, l := range pendingLabels {
				labelAt[l] = pos
			}
			pendingLabels = nil
		}
	}
	n := len(f.Instrs)
	if n == 0 {
		return nil, fmt.Errorf("cfg: function %q has no instructions", name)
	}

	// Successor positions per instruction; -1 entries trimmed.
	succs := make([][]int, n)
	isLeader := make([]bool, n)
	isLeader[0] = true
	for p := 0; p < n; p++ {
		in := u.Items[f.Instrs[p]].Instr
		tgt := func() (int, bool) {
			name := u.Items[f.Instrs[p]].TargetSym
			t, ok := labelAt[name]
			return t, ok
		}
		switch {
		case in.Op == sparc.Br:
			t, ok := tgt()
			if !ok {
				// Branch out of the function: treat as exit.
				if p+1 < n && in.Cond != sparc.BA {
					succs[p] = []int{p + 1}
				}
			} else {
				if in.Cond == sparc.BA {
					succs[p] = []int{t}
				} else if p+1 < n {
					succs[p] = []int{t, p + 1}
				} else {
					succs[p] = []int{t}
				}
				isLeader[t] = true
			}
			if p+1 < n {
				isLeader[p+1] = true
			}
		case in.Op == sparc.Jmpl:
			// Indirect jump (including ret/retl): function exit.
			if p+1 < n {
				isLeader[p+1] = true
			}
		case in.Op == sparc.Ta && in.Imm == 0:
			// Program exit.
			if p+1 < n {
				isLeader[p+1] = true
			}
		default:
			// Calls return; everything else falls through.
			if p+1 < n {
				succs[p] = []int{p + 1}
			}
		}
	}
	for _, t := range labelAt {
		isLeader[t] = true
	}

	// Form blocks.
	f.BlockOf = make([]int, n)
	for p := 0; p < n; p++ {
		if p == 0 || isLeader[p] {
			f.Blocks = append(f.Blocks, &Block{ID: len(f.Blocks), Start: p, IDom: -1, FallthroughSucc: -1})
		}
		f.BlockOf[p] = len(f.Blocks) - 1
		f.Blocks[len(f.Blocks)-1].End = p + 1
	}
	// Block edges from the last instruction of each block.
	for _, b := range f.Blocks {
		last := b.End - 1
		for _, sp := range succs[last] {
			sb := f.BlockOf[sp]
			b.Succs = append(b.Succs, sb)
			f.Blocks[sb].Preds = append(f.Blocks[sb].Preds, b.ID)
			if sp == b.End && sp < n && f.Blocks[sb].Start == sp {
				b.FallthroughSucc = sb
			}
		}
		// A block that ends mid-way (next is a leader) falls through when
		// its last instruction has a fallthrough successor; covered above.
	}

	f.computeDominators()
	f.findLoops()
	return f, nil
}

// computeDominators runs the iterative algorithm (Cooper/Harvey/Kennedy)
// over a reverse postorder.
func (f *Func) computeDominators() {
	n := len(f.Blocks)
	rpo := f.reversePostorder()
	order := make([]int, n) // block id -> rpo index
	for i, b := range rpo {
		order[b] = i
	}
	f.Blocks[rpo[0]].IDom = rpo[0]
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom = -1
			for _, p := range f.Blocks[b].Preds {
				if f.Blocks[p].IDom == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = f.intersect(p, newIdom, order)
				}
			}
			if newIdom != -1 && f.Blocks[b].IDom != newIdom {
				f.Blocks[b].IDom = newIdom
				changed = true
			}
		}
	}
	// Entry's conventional self-idom becomes -1 for callers.
	f.Blocks[rpo[0]].IDom = -1
}

func (f *Func) intersect(a, b int, order []int) int {
	for a != b {
		for order[a] > order[b] {
			a = f.Blocks[a].IDom
			if a == -1 {
				return b
			}
		}
		for order[b] > order[a] {
			b = f.Blocks[b].IDom
			if b == -1 {
				return a
			}
		}
	}
	return a
}

func (f *Func) reversePostorder() []int {
	seen := make([]bool, len(f.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range f.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	// Unreachable blocks are appended so every block has an order.
	for b := range f.Blocks {
		if !seen[b] {
			post = append(post, b)
		}
	}
	rpo := make([]int, len(post))
	for i := range post {
		rpo[len(post)-1-i] = post[i]
	}
	return rpo
}

// Dominates reports whether block a dominates block b.
func (f *Func) Dominates(a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		if b == 0 {
			return a == 0
		}
		b = f.Blocks[b].IDom
	}
	return false
}

// findLoops discovers natural loops from back edges and computes nesting.
func (f *Func) findLoops() {
	byHeader := make(map[int]*Loop)
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if !f.Dominates(s, b.ID) {
				continue
			}
			// Back edge b -> s.
			l, ok := byHeader[s]
			if !ok {
				l = &Loop{Header: s, Blocks: map[int]bool{s: true}}
				byHeader[s] = l
			}
			// Collect nodes reaching b without passing through s.
			var stack []int
			if !l.Blocks[b.ID] {
				l.Blocks[b.ID] = true
				stack = append(stack, b.ID)
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range f.Blocks[x].Preds {
					if !l.Blocks[p] {
						l.Blocks[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}
	for _, l := range byHeader {
		f.Loops = append(f.Loops, l)
	}
	// Sort by body size so inner loops come first; compute nesting.
	sort.Slice(f.Loops, func(i, j int) bool {
		if len(f.Loops[i].Blocks) != len(f.Loops[j].Blocks) {
			return len(f.Loops[i].Blocks) < len(f.Loops[j].Blocks)
		}
		return f.Loops[i].Header < f.Loops[j].Header
	})
	for i, l := range f.Loops {
		for j := i + 1; j < len(f.Loops); j++ {
			outer := f.Loops[j]
			if outer.Blocks[l.Header] && len(outer.Blocks) > len(l.Blocks) {
				l.Parent = outer
				break
			}
		}
	}
	for _, l := range f.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
}

// EntryEdgesFallthrough reports whether every edge entering the loop header
// from outside the loop is a textual fallthrough (required for pre-header
// insertion directly before the header label).
func (f *Func) EntryEdgesFallthrough(l *Loop) bool {
	h := f.Blocks[l.Header]
	for _, p := range h.Preds {
		if l.Blocks[p] {
			continue // back edge
		}
		if f.Blocks[p].FallthroughSucc != l.Header {
			return false
		}
	}
	return true
}

// InstrItem returns the unit item index for instruction position p.
func (f *Func) InstrItem(p int) int { return f.Instrs[p] }

// Instruction returns the instruction at position p.
func (f *Func) Instruction(p int) sparc.Instr {
	return f.Unit.Items[f.Instrs[p]].Instr
}

// LoopOf returns the innermost loop containing block b, or nil.
func (f *Func) LoopOf(b int) *Loop {
	for _, l := range f.Loops { // loops sorted inner-first
		if l.Blocks[b] {
			return l
		}
	}
	return nil
}
