package cfg

import (
	"testing"

	"databreak/internal/asm"
	"databreak/internal/minic"
)

func buildFromC(t *testing.T, src string) []*Func {
	t.Helper()
	asmSrc, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	u, err := asm.Parse("p.s", asmSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fns, err := SplitFunctions(u)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	return fns
}

func findFunc(t *testing.T, fns []*Func, name string) *Func {
	t.Helper()
	for _, f := range fns {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("function %q not found", name)
	return nil
}

func TestSplitFunctions(t *testing.T) {
	fns := buildFromC(t, `
int helper(int x) { return x + 1; }
int main() { return helper(41); }
`)
	if len(fns) != 2 {
		t.Fatalf("found %d functions, want 2", len(fns))
	}
	if fns[0].Name != "helper" || fns[1].Name != "main" {
		t.Fatalf("functions = %s, %s", fns[0].Name, fns[1].Name)
	}
	for _, f := range fns {
		if len(f.Instrs) == 0 || len(f.Blocks) == 0 {
			t.Fatalf("%s: empty function", f.Name)
		}
	}
}

func TestStraightLineIsOneLoopFree(t *testing.T) {
	fns := buildFromC(t, `int main() { int x; x = 1; x = x + 2; return x; }`)
	f := findFunc(t, fns, "main")
	if len(f.Loops) != 0 {
		t.Fatalf("straight-line code reports %d loops", len(f.Loops))
	}
}

func TestSimpleLoopDetected(t *testing.T) {
	fns := buildFromC(t, `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 10; i = i + 1) s = s + i;
	return s;
}`)
	f := findFunc(t, fns, "main")
	if len(f.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(f.Loops))
	}
	l := f.Loops[0]
	if l.Depth != 1 {
		t.Fatalf("depth = %d", l.Depth)
	}
	if !f.EntryEdgesFallthrough(l) {
		t.Fatal("compiler loops must be enterable by fallthrough")
	}
	// The header must dominate every block in the loop.
	for b := range l.Blocks {
		if !f.Dominates(l.Header, b) {
			t.Fatalf("header %d does not dominate member %d", l.Header, b)
		}
	}
}

func TestNestedLoops(t *testing.T) {
	fns := buildFromC(t, `
int m[100];
int main() {
	int i;
	int j;
	for (i = 0; i < 10; i = i + 1) {
		for (j = 0; j < 10; j = j + 1) {
			m[i * 10 + j] = i + j;
		}
	}
	return 0;
}`)
	f := findFunc(t, fns, "main")
	if len(f.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(f.Loops))
	}
	inner, outer := f.Loops[0], f.Loops[1]
	if len(inner.Blocks) >= len(outer.Blocks) {
		t.Fatal("loops must be sorted inner-first")
	}
	if inner.Parent != outer {
		t.Fatal("inner loop's parent must be the outer loop")
	}
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Fatalf("depths = %d, %d", inner.Depth, outer.Depth)
	}
	// Inner loop blocks must all be members of the outer loop.
	for b := range inner.Blocks {
		if !outer.Blocks[b] {
			t.Fatalf("inner block %d not in outer loop", b)
		}
	}
}

func TestDominators(t *testing.T) {
	fns := buildFromC(t, `
int main() {
	int x;
	x = 0;
	if (x) { x = 1; } else { x = 2; }
	return x;
}`)
	f := findFunc(t, fns, "main")
	// Entry dominates everything.
	for _, b := range f.Blocks {
		if !f.Dominates(0, b.ID) {
			t.Fatalf("entry must dominate block %d", b.ID)
		}
	}
	// Parallel branches must not dominate each other or the join.
	var thenB, elseB = -1, -1
	for _, b := range f.Blocks {
		if len(b.Preds) == 1 && len(f.Blocks[b.Preds[0]].Succs) == 2 {
			if thenB == -1 {
				thenB = b.ID
			} else if elseB == -1 && b.Preds[0] == f.Blocks[thenB].Preds[0] {
				elseB = b.ID
			}
		}
	}
	if thenB >= 0 && elseB >= 0 {
		if f.Dominates(thenB, elseB) || f.Dominates(elseB, thenB) {
			t.Fatal("sibling branches must not dominate each other")
		}
	}
}

func TestBlockPartitionCoversAllInstrs(t *testing.T) {
	fns := buildFromC(t, `
int f(int n) {
	int i;
	int s;
	s = 0;
	for (i = 0; i < n; i = i + 1) {
		if (i % 2) { s = s + i; } else { s = s - i; }
	}
	return s;
}
int main() { return f(10); }
`)
	for _, f := range fns {
		covered := make([]bool, len(f.Instrs))
		for _, b := range f.Blocks {
			for p := b.Start; p < b.End; p++ {
				if covered[p] {
					t.Fatalf("%s: instruction %d in two blocks", f.Name, p)
				}
				covered[p] = true
				if f.BlockOf[p] != b.ID {
					t.Fatalf("%s: BlockOf[%d] = %d, want %d", f.Name, p, f.BlockOf[p], b.ID)
				}
			}
		}
		for p, c := range covered {
			if !c {
				t.Fatalf("%s: instruction %d not in any block", f.Name, p)
			}
		}
		// Edge symmetry.
		for _, b := range f.Blocks {
			for _, s := range b.Succs {
				found := false
				for _, p := range f.Blocks[s].Preds {
					if p == b.ID {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s: edge %d->%d missing pred link", f.Name, b.ID, s)
				}
			}
		}
	}
}

func TestWhileLoopShape(t *testing.T) {
	fns := buildFromC(t, `
int main() {
	int i;
	i = 0;
	while (i < 100) { i = i + 3; }
	return i;
}`)
	f := findFunc(t, fns, "main")
	if len(f.Loops) != 1 {
		t.Fatalf("loops = %d", len(f.Loops))
	}
	if !f.EntryEdgesFallthrough(f.Loops[0]) {
		t.Fatal("while loop must be fallthrough-entered")
	}
}
