package asm

import (
	"fmt"
	"sync"

	"databreak/internal/machine"
	"databreak/internal/sparc"
)

// Program is fully resolved machine code plus its data image and debugging
// symbols, ready to load.
type Program struct {
	Text       []sparc.Instr
	TextLabels map[string]int32 // label -> text index
	DataLabels map[string]uint32
	DataSize   uint32
	dataInit   []initWord
	Syms       []Sym
	Entry      int32

	// CounterNames maps event-counter index -> name; CounterIDs the reverse.
	CounterNames []string
	CounterIDs   map[string]int

	// Shared-load artifacts, built lazily on first use and then reused by
	// every LoadShared: the predecoded machine.Image and a flat big-endian
	// snapshot of the initialized data segment. Both are immutable once
	// built, so a single *Program may back any number of machines on any
	// number of goroutines (the artifact cache and the stress harness do
	// exactly that). Guarded by onces, not a mutex: Program must not be
	// copied after first LoadShared (go vet's copylocks enforces this).
	imgOnce  sync.Once
	img      *machine.Image
	dataOnce sync.Once
	dataSnap []byte
}

type initWord struct {
	addr   uint32
	val    int32
	isByte bool
}

// startupSrc calls main and exits with its return value.
const startupSrc = `
__start:
	call main
	ta 0
`

// Options controls assembly.
type Options struct {
	// AddStartup prepends a stub that calls main and exits with its result.
	AddStartup bool
}

// Assemble resolves one or more units into a Program. Units are concatenated
// in order; labels are a single global namespace.
func Assemble(opts Options, units ...*Unit) (*Program, error) {
	all := units
	if opts.AddStartup {
		all = append([]*Unit{MustParse("__startup", startupSrc)}, units...)
	}

	p := &Program{
		TextLabels: make(map[string]int32),
		DataLabels: make(map[string]uint32),
		CounterIDs: make(map[string]int),
	}

	// Pass 1: assign text indices and data offsets, collect labels.
	textIdx := int32(0)
	dataOff := uint32(0)
	for _, u := range all {
		for i := range u.Items {
			it := &u.Items[i]
			switch it.Kind {
			case ItemLabel:
				if it.Section == "text" {
					if _, dup := p.TextLabels[it.Label]; dup {
						return nil, fmt.Errorf("%s:%d: duplicate label %q", u.Name, it.Line, it.Label)
					}
					p.TextLabels[it.Label] = textIdx
				} else {
					if _, dup := p.DataLabels[it.Label]; dup {
						return nil, fmt.Errorf("%s:%d: duplicate label %q", u.Name, it.Line, it.Label)
					}
					p.DataLabels[it.Label] = machine.DataBase + dataOff
				}
			case ItemInstr:
				if it.Section != "text" {
					return nil, fmt.Errorf("%s:%d: instruction outside .text", u.Name, it.Line)
				}
				textIdx++
			case ItemWord:
				dataOff += 4
			case ItemSpace:
				dataOff += uint32(it.N)
			case ItemAscii:
				dataOff += uint32(len(it.Bytes))
			case ItemAlign:
				n := uint32(it.N)
				dataOff = (dataOff + n - 1) &^ (n - 1)
			case ItemSymRec:
				// handled in pass 2
			}
		}
	}
	p.DataSize = dataOff

	resolve := func(sym string) (uint32, bool) {
		if a, ok := p.DataLabels[sym]; ok {
			return a, true
		}
		if idx, ok := p.TextLabels[sym]; ok {
			return machine.TextBase + uint32(idx)*4, true
		}
		return 0, false
	}

	// Pass 2: emit instructions and data with resolved operands.
	p.Text = make([]sparc.Instr, 0, textIdx)
	dataOff = 0
	for _, u := range all {
		for i := range u.Items {
			it := &u.Items[i]
			switch it.Kind {
			case ItemInstr:
				in := it.Instr
				if it.TargetSym != "" {
					tgt, ok := p.TextLabels[it.TargetSym]
					if !ok {
						return nil, fmt.Errorf("%s:%d: undefined text label %q", u.Name, it.Line, it.TargetSym)
					}
					in.Target = tgt
				}
				if it.ImmSym != "" {
					addr, ok := resolve(it.ImmSym)
					if !ok {
						return nil, fmt.Errorf("%s:%d: undefined symbol %q", u.Name, it.Line, it.ImmSym)
					}
					switch it.ImmSel {
					case ImmHi:
						in.Imm = int32(addr >> 10)
					case ImmLo:
						in.Imm = int32(addr & 0x3ff)
					default:
						if addr > 4095 {
							return nil, fmt.Errorf("%s:%d: symbol %q does not fit in 13 bits", u.Name, it.Line, it.ImmSym)
						}
						in.Imm = int32(addr)
					}
				}
				if it.CountName != "" {
					id, ok := p.CounterIDs[it.CountName]
					if !ok {
						id = len(p.CounterNames)
						p.CounterIDs[it.CountName] = id
						p.CounterNames = append(p.CounterNames, it.CountName)
					}
					in.Count = int32(id) + 1
				}
				p.Text = append(p.Text, in)
			case ItemWord:
				v := it.Word
				if it.WordSym != "" {
					addr, ok := resolve(it.WordSym)
					if !ok {
						return nil, fmt.Errorf("%s:%d: undefined symbol %q", u.Name, it.Line, it.WordSym)
					}
					v = int32(addr)
				}
				p.dataInit = append(p.dataInit, initWord{addr: machine.DataBase + dataOff, val: v})
				dataOff += 4
			case ItemSpace:
				dataOff += uint32(it.N)
			case ItemAscii:
				for j, b := range it.Bytes {
					p.dataInit = append(p.dataInit, initWord{addr: machine.DataBase + dataOff + uint32(j), val: int32(b), isByte: true})
				}
				dataOff += uint32(len(it.Bytes))
			case ItemAlign:
				n := uint32(it.N)
				dataOff = (dataOff + n - 1) &^ (n - 1)
			case ItemSymRec:
				sym := it.Sym
				if sym.Kind == SymGlobal || sym.Kind == SymFunc {
					addr, ok := resolve(sym.Label)
					if !ok {
						return nil, fmt.Errorf("%s:%d: .stabs names undefined symbol %q", u.Name, it.Line, sym.Label)
					}
					sym.Addr = addr
				}
				p.Syms = append(p.Syms, sym)
			}
		}
	}

	entry, ok := p.TextLabels["__start"]
	if !ok {
		entry, ok = p.TextLabels["main"]
	}
	if !ok && len(p.Text) > 0 {
		entry = 0
		ok = true
	}
	if !ok {
		return nil, fmt.Errorf("no entry point (no __start or main)")
	}
	p.Entry = entry
	return p, nil
}

// Load installs the program into a machine: text, initialized data, entry
// point, and the event-counter vector. The machine gets a private copy of
// the text; for the compile-once, run-many path that shares one predecoded
// image across machines, use LoadShared.
func (p *Program) Load(m *machine.Machine) {
	text := make([]sparc.Instr, len(p.Text))
	copy(text, p.Text)
	m.LoadText(text, p.Entry)
	for _, iw := range p.dataInit {
		if iw.isByte {
			m.LoadData(iw.addr, []byte{byte(iw.val)})
		} else {
			m.WriteWord(iw.addr, iw.val)
		}
	}
	m.SetCounterCount(len(p.CounterNames))
}

// Image returns the program's predecoded machine image, building it on
// first call and reusing it afterwards. The image is immutable and safe to
// attach to any number of machines concurrently (machine.LoadImage's
// copy-on-write patching keeps per-machine patches private).
func (p *Program) Image() *machine.Image {
	p.imgOnce.Do(func() {
		p.img = machine.BuildImage(p.Text, p.Entry)
	})
	return p.img
}

// dataSnapshot flattens the initialized data segment into one big-endian
// byte image at machine.DataBase, built once. It extends only to the last
// initialized byte — uninitialized .space beyond it is already zero on a
// fresh machine. Loading it with machine.LoadData on a fresh machine is
// equivalent to replaying the per-word initializer list (both are loader
// actions with no cache traffic or cycle cost), so re-running a cached
// artifact only resets memory instead of re-linking.
func (p *Program) dataSnapshot() []byte {
	p.dataOnce.Do(func() {
		var end uint32
		for _, iw := range p.dataInit {
			n := iw.addr - machine.DataBase + 4
			if iw.isByte {
				n -= 3
			}
			if n > end {
				end = n
			}
		}
		snap := make([]byte, end)
		for _, iw := range p.dataInit {
			off := iw.addr - machine.DataBase
			if iw.isByte {
				snap[off] = byte(iw.val)
			} else {
				u := uint32(iw.val)
				snap[off] = byte(u >> 24)
				snap[off+1] = byte(u >> 16)
				snap[off+2] = byte(u >> 8)
				snap[off+3] = byte(u)
			}
		}
		p.dataSnap = snap
	})
	return p.dataSnap
}

// LoadShared installs the program into a fresh (or Reset) machine via the
// shared image: no text copy, no predecode, and the data segment lands as
// one snapshot write. Simulated counts are bit-identical to Load; the only
// difference is host time and that the machine's first PatchInstr pays a
// copy-on-write privatization instead of mutating in place.
func (p *Program) LoadShared(m *machine.Machine) {
	m.LoadImage(p.Image())
	if snap := p.dataSnapshot(); len(snap) > 0 {
		m.LoadData(machine.DataBase, snap)
	}
	m.SetCounterCount(len(p.CounterNames))
}

// SizeBytes estimates the host memory a cached Program retains: the shared
// image plus the data snapshot. Used for artifact-cache accounting.
func (p *Program) SizeBytes() int {
	return p.Image().SizeBytes() + len(p.dataSnapshot())
}

// TraceBytes is the portion of SizeBytes held by the image's compiled trace
// tier, reported separately (ArtifactStats.TraceBytes) so the cache's
// retained-bytes number distinguishes program code from trace footprint.
func (p *Program) TraceBytes() int {
	return p.Image().TraceBytes()
}

// Counter returns the machine's value for the named event counter, or zero
// if the counter does not exist.
func (p *Program) Counter(m *machine.Machine, name string) uint64 {
	id, ok := p.CounterIDs[name]
	if !ok {
		return 0
	}
	return m.Counters[id]
}

// LookupSym finds the first symbol record with the given name, optionally
// scoped to a function (pass "" for any scope).
func (p *Program) LookupSym(name, fn string) (Sym, bool) {
	for _, s := range p.Syms {
		if s.Name == name && (fn == "" || s.Func == fn || s.Func == "") {
			return s, true
		}
	}
	return Sym{}, false
}
