package asm

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds random byte soup to the parser; it must return
// an error or a unit, never panic.
func TestParseNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %q: %v", raw, r)
			}
		}()
		_, _ = Parse("fuzz.s", string(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsOnMangledPrograms mutates a valid program at random
// positions — closer to realistic malformed input than pure noise.
func TestParseNeverPanicsOnMangledPrograms(t *testing.T) {
	const base = `
main:
	save %sp, -96, %sp
	set arr, %o0
	st %l0, [%o0+4]
	sethi %hi(arr), %o1
	or %o1, %lo(arr), %o1
	ba main
	.stabs "x", local, %fp-8, 4, "main"
	.data
arr:	.space 16
`
	mutations := []string{"%", "[", "]", ",", "0x", "\"", "(", ")", "-", ".",
		"!", "\t", "st", "%zz", "4096000000"}
	f := func(pos uint16, which uint8, del bool) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked: %v", r)
			}
		}()
		src := base
		p := int(pos) % len(src)
		if del {
			src = src[:p] + src[p+1:]
		} else {
			m := mutations[int(which)%len(mutations)]
			src = src[:p] + m + src[p:]
		}
		_, _ = Parse("mut.s", src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestAssembleNeverPanicsOnParsedInput: anything that parses must either
// assemble or fail with an error.
func TestAssembleNeverPanicsOnParsedInput(t *testing.T) {
	inputs := []string{
		"main:\n nop\n",
		"main:\n ba main\n",
		"main:\n ba elsewhere\n",  // undefined label
		"main:\n set main, %o0\n", // text symbol as immediate
		".data\nx: .word y\n",     // undefined word sym + no entry
		"main:\n call main\n call main\n",
	}
	for _, src := range inputs {
		u, err := Parse("t.s", src)
		if err != nil {
			continue
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Assemble panicked on %q: %v", src, r)
				}
			}()
			_, _ = Assemble(Options{}, u)
		}()
	}
}

// TestFormatParsesForAllDirectives ensures every item kind the formatter can
// emit survives a reparse.
func TestFormatParsesForAllDirectives(t *testing.T) {
	u := MustParse("d.s", `
	.text
f:	nop
	.stabs "f", func, f, 0
	.stabs "p", param, %fp+68, 4, "f"
	.data
a:	.word 1
b:	.word a
c:	.space 12
	.align 4
s:	.ascii "a\"b\nc"
`)
	out := Format(u)
	if _, err := Parse("d2.s", out); err != nil {
		t.Fatalf("formatted output does not reparse: %v\n%s", err, out)
	}
	if !strings.Contains(out, `.ascii "a\"b\nc"`) {
		t.Errorf("ascii escaping lost:\n%s", out)
	}
}
