package asm

import (
	"fmt"
	"strings"

	"databreak/internal/sparc"
)

// Format renders a unit back to parseable assembly text. Parse(Format(u))
// yields a unit that assembles to the same program — the round-trip property
// the tests verify. Tools (cmd/mrspatch) use it to emit patched assembly.
func Format(u *Unit) string {
	var b strings.Builder
	sect := ""
	for _, it := range u.Items {
		if it.Section != sect && it.Kind != ItemSymRec {
			sect = it.Section
			fmt.Fprintf(&b, "\t.%s\n", sect)
		}
		switch it.Kind {
		case ItemLabel:
			fmt.Fprintf(&b, "%s:\n", it.Label)
		case ItemInstr:
			if it.CountName != "" {
				fmt.Fprintf(&b, "\t.count %q\n", it.CountName)
			}
			fmt.Fprintf(&b, "\t%s\n", FormatInstr(it))
		case ItemWord:
			if it.WordSym != "" {
				fmt.Fprintf(&b, "\t.word %s\n", it.WordSym)
			} else {
				fmt.Fprintf(&b, "\t.word %d\n", it.Word)
			}
		case ItemSpace:
			fmt.Fprintf(&b, "\t.space %d\n", it.N)
		case ItemAscii:
			fmt.Fprintf(&b, "\t.ascii %q\n", string(it.Bytes))
		case ItemAlign:
			fmt.Fprintf(&b, "\t.align %d\n", it.N)
		case ItemSymRec:
			s := it.Sym
			switch s.Kind {
			case SymGlobal, SymFunc:
				fmt.Fprintf(&b, "\t.stabs %q, %s, %s, %d\n", s.Name, s.Kind, s.Label, s.Size)
			default:
				where := fmt.Sprintf("%%fp%+d", s.FpOff)
				if s.FpOff == 0 {
					where = "%fp"
				}
				fmt.Fprintf(&b, "\t.stabs %q, %s, %s, %d, %q\n", s.Name, s.Kind, where, s.Size, s.Func)
			}
		}
	}
	return b.String()
}

// FormatInstr renders one instruction item with its symbolic operands
// restored (branch targets, %hi/%lo relocations).
func FormatInstr(it Item) string {
	in := it.Instr
	if it.TargetSym != "" {
		switch in.Op {
		case sparc.Br:
			return fmt.Sprintf("%s %s", in.Cond, it.TargetSym)
		case sparc.Call:
			return fmt.Sprintf("call %s", it.TargetSym)
		}
	}
	if it.ImmSym != "" {
		switch {
		case in.Op == sparc.Sethi && it.ImmSel == ImmHi:
			return fmt.Sprintf("sethi %%hi(%s), %s", it.ImmSym, in.Rd)
		case it.ImmSel == ImmLo && in.Op.IsALU():
			return fmt.Sprintf("%s %s, %%lo(%s), %s", in.Op, in.Rs1, it.ImmSym, in.Rd)
		case it.ImmSel == ImmLo && (in.Op == sparc.Ld || in.Op == sparc.Ldd):
			return fmt.Sprintf("%s [%s+%%lo(%s)], %s", in.Op, in.Rs1, it.ImmSym, in.Rd)
		case it.ImmSel == ImmLo && in.Op.IsStore():
			return fmt.Sprintf("%s %s, [%s+%%lo(%s)]", in.Op, in.Rd, in.Rs1, it.ImmSym)
		}
	}
	// Branch targets without symbols cannot round-trip through text; the
	// assembler resolves all targets from TargetSym, so synthesize a label
	// reference only when available. Otherwise fall back to Instr.String.
	return in.String()
}
