package asm

import (
	"strings"
	"testing"

	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/sparc"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	u, err := Parse("test.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Assemble(Options{AddStartup: true}, u)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func run(t *testing.T, src string) (*machine.Machine, int32) {
	t.Helper()
	p := mustAssemble(t, src)
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	p.Load(m)
	code, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return m, code
}

func TestArithmeticAndReturn(t *testing.T) {
	_, code := run(t, `
main:
	save %sp, -96, %sp
	mov 20, %l0
	add %l0, 22, %l1
	mov %l1, %i0
	restore
	retl
`)
	if code != 42 {
		t.Fatalf("exit code = %d, want 42", code)
	}
}

func TestMemoryAndGlobals(t *testing.T) {
	m, code := run(t, `
main:
	save %sp, -96, %sp
	set counter, %o0
	ld [%o0], %o1
	add %o1, 5, %o1
	st %o1, [%o0]
	ld [%o0], %i0
	restore
	retl
	.data
counter: .word 37
`)
	if code != 42 {
		t.Fatalf("exit code = %d, want 42", code)
	}
	if got := m.ReadWord(machine.DataBase); got != 42 {
		t.Fatalf("counter in memory = %d, want 42", got)
	}
}

func TestLoopAndBranch(t *testing.T) {
	// Sum 1..10 = 55.
	_, code := run(t, `
main:
	save %sp, -96, %sp
	mov 0, %l0
	mov 1, %l1
loop:
	cmp %l1, 10
	bg done
	add %l0, %l1, %l0
	inc %l1
	ba loop
done:
	mov %l0, %i0
	restore
	retl
`)
	if code != 55 {
		t.Fatalf("exit code = %d, want 55", code)
	}
}

func TestCallAndRegisterWindows(t *testing.T) {
	// Recursive factorial through register windows: fact(5) = 120.
	_, code := run(t, `
main:
	save %sp, -96, %sp
	mov 5, %o0
	call fact
	mov %o0, %i0
	restore
	retl
fact:
	save %sp, -96, %sp
	cmp %i0, 1
	ble base
	sub %i0, 1, %o0
	call fact
	smul %o0, %i0, %i0
	ba out
base:
	mov 1, %i0
out:
	restore
	retl
`)
	if code != 120 {
		t.Fatalf("fact(5) = %d, want 120", code)
	}
}

func TestStackFrameLocals(t *testing.T) {
	_, code := run(t, `
main:
	save %sp, -96, %sp
	mov 7, %o0
	st %o0, [%fp-20]
	ld [%fp-20], %o1
	smul %o1, 6, %i0
	restore
	retl
`)
	if code != 42 {
		t.Fatalf("exit code = %d, want 42", code)
	}
}

func TestPrintTraps(t *testing.T) {
	m, _ := run(t, `
main:
	save %sp, -96, %sp
	mov 123, %o0
	ta 1
	set msg, %o0
	mov 3, %o1
	ta 3
	mov 0, %i0
	restore
	retl
	.data
msg:	.ascii "hi\n"
`)
	if got := m.Output(); got != "123\nhi\n" {
		t.Fatalf("output = %q", got)
	}
}

func TestAllocFreeReuse(t *testing.T) {
	_, code := run(t, `
main:
	save %sp, -96, %sp
	mov 16, %o0
	ta 4          ! alloc 16
	mov %o0, %l0
	st %l0, [%l0] ! touch it
	mov %l0, %o0
	ta 5          ! free
	mov 16, %o0
	ta 4          ! alloc 16 again: should reuse
	cmp %o0, %l0
	be same
	mov 1, %i0
	ba out
same:
	mov 0, %i0
out:
	restore
	retl
`)
	if code != 0 {
		t.Fatal("allocator failed to reuse freed block of same size")
	}
}

func TestHiLoRelocation(t *testing.T) {
	m, code := run(t, `
main:
	save %sp, -96, %sp
	sethi %hi(cell), %o0
	or %o0, %lo(cell), %o0
	mov 99, %o1
	st %o1, [%o0]
	ld [%o0], %i0
	restore
	retl
	.data
	.space 1024
cell:	.word 0
`)
	if code != 99 {
		t.Fatalf("exit code = %d, want 99", code)
	}
	if got := m.ReadWord(machine.DataBase + 1024); got != 99 {
		t.Fatalf("cell = %d, want 99", got)
	}
}

func TestStabsRecords(t *testing.T) {
	p := mustAssemble(t, `
main:
	save %sp, -96, %sp
	st %g0, [%fp-8]
	mov 0, %i0
	restore
	retl
	.stabs "main", func, main, 0
	.stabs "x", local, %fp-8, 4, "main"
	.stabs "buf", global, buf, 40
	.data
buf:	.space 40
`)
	x, ok := p.LookupSym("x", "main")
	if !ok || x.Kind != SymLocal || x.FpOff != -8 || x.Size != 4 {
		t.Fatalf("local sym = %+v ok=%v", x, ok)
	}
	buf, ok := p.LookupSym("buf", "")
	if !ok || buf.Kind != SymGlobal || buf.Addr != machine.DataBase || buf.Size != 40 {
		t.Fatalf("global sym = %+v ok=%v", buf, ok)
	}
	fn, ok := p.LookupSym("main", "")
	if !ok || fn.Kind != SymFunc {
		t.Fatalf("func sym = %+v ok=%v", fn, ok)
	}
}

func TestEventCounters(t *testing.T) {
	p := mustAssemble(t, `
main:
	save %sp, -96, %sp
	mov 0, %l0
loop:
	cmp %l0, 5
	bge done
	.count "stores"
	st %l0, [%fp-8]
	inc %l0
	ba loop
done:
	mov 0, %i0
	restore
	retl
`)
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	p.Load(m)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := p.Counter(m, "stores"); got != 5 {
		t.Fatalf("stores counter = %d, want 5", got)
	}
	if got := p.Counter(m, "missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
}

func TestWordSymbolData(t *testing.T) {
	m, code := run(t, `
main:
	save %sp, -96, %sp
	set ptr, %o0
	ld [%o0], %o1   ! o1 = &cell
	mov 7, %o2
	st %o2, [%o1]
	ld [%o1], %i0
	restore
	retl
	.data
cell:	.word 0
ptr:	.word cell
`)
	if code != 7 {
		t.Fatalf("exit = %d, want 7", code)
	}
	if got := uint32(m.ReadWord(machine.DataBase + 4)); got != machine.DataBase {
		t.Fatalf("ptr = %#x, want %#x", got, machine.DataBase)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate %o0",
		"add %o0, %o1",
		"add %o0, 99999, %o1",
		"ld %o0, %o1",
		"st [%o0], %o1",
		".word",
		".space -1",
		`.stabs "x", bogus, %fp-4, 4`,
		"bne",
		"sethi 99999999, %o0",
	}
	for _, src := range bad {
		if _, err := Parse("bad.s", src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"main:\n ba nowhere\n", "undefined text label"},
		{"main:\n nop\nmain:\n nop\n", "duplicate label"},
		{"main:\n set nowhere, %o0\n", "undefined symbol"},
		{".data\nx: .word 0\n", "no entry point"},
	}
	for _, c := range cases {
		u, err := Parse("t.s", c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		_, err = Assemble(Options{}, u)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) error = %v, want contains %q", c.src, err, c.want)
		}
	}
}

func TestCommentHandling(t *testing.T) {
	_, code := run(t, `
main:	! entry
	save %sp, -96, %sp	! prologue
	mov 1, %i0		! result
	restore
	retl
`)
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
}

func TestSyntheticExpansion(t *testing.T) {
	u := MustParse("t.s", "set 0x12345678, %o0\n")
	var n int
	for _, it := range u.Items {
		if it.Kind == ItemInstr {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("set of a large constant should expand to 2 instructions, got %d", n)
	}
	// Verify the value round-trips.
	_, code := run(t, `
main:
	save %sp, -96, %sp
	set 0x123456, %o0
	set 0x123456, %o1
	cmp %o0, %o1
	be ok
	mov 1, %i0
	ba out
ok:	mov 0, %i0
out:
	restore
	retl
`)
	if code != 0 {
		t.Fatal("set expansion mismatch")
	}
}

func TestAlignDirective(t *testing.T) {
	p := mustAssemble(t, `
main:
	nop
	mov 0, %o0
	ta 0
	.data
a:	.space 3
	.align 8
b:	.word 1
`)
	if got := p.DataLabels["b"] - p.DataLabels["a"]; got != 8 {
		t.Fatalf("aligned offset = %d, want 8", got)
	}
}

func TestUnitClone(t *testing.T) {
	u := MustParse("t.s", "main:\n nop\n st %o0, [%fp-4]\n")
	c := u.Clone()
	c.Items[1].Instr.Op = sparc.Unimp
	if u.Items[1].Instr.Op == sparc.Unimp {
		t.Fatal("Clone must not share item storage")
	}
}
