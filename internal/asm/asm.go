// Package asm implements a two-pass assembler for the SPARC-subset ISA.
//
// The assembler is the substrate the paper's analysis tool plugs into: it
// parses textual assembly into a symbolic item list (labels, instructions
// with unresolved operands, data directives, STAB-style symbol records), lets
// tools such as internal/patch and internal/elim rewrite that list, and then
// resolves everything into a loadable Program.
//
// Supported syntax (one statement per line, `!` starts a comment):
//
//	label:  st %o0, [%fp-20]
//	        set counter, %o1
//	        ld [%o1], %o2
//	        inc %o2
//	        st %o2, [%o1]
//	        cmp %o2, 10
//	        bl loop
//	        ret
//	        .data
//	counter: .word 0
//	        .stabs "counter", global, counter, 4
//
// Directives: .text .data .bss .global .word .space .ascii .align .stabs
// .count. Synthetic instructions: set mov cmp tst clr inc dec neg not nop
// ret retl jmp b<cond> call. %hi(sym) and %lo(sym) are supported where an
// immediate may appear.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"databreak/internal/sparc"
)

// SymKind classifies a debugging symbol record.
type SymKind uint8

const (
	SymGlobal SymKind = iota // static data at an absolute address
	SymLocal                 // stack slot at %fp+Off
	SymParam                 // incoming parameter spilled to %fp+Off
	SymFunc                  // function entry
)

func (k SymKind) String() string {
	switch k {
	case SymGlobal:
		return "global"
	case SymLocal:
		return "local"
	case SymParam:
		return "param"
	case SymFunc:
		return "func"
	}
	return "sym?"
}

// Sym is a STAB-style debugging symbol record. The symbol-table pattern
// matcher (internal/symtab) matches write target addresses against these.
type Sym struct {
	Name string
	Kind SymKind
	// For SymGlobal: the data label whose resolved address locates the
	// symbol. For SymFunc: the text label.
	Label string
	// For SymLocal/SymParam: frame-pointer offset of the slot.
	FpOff int32
	// Size of the object in bytes.
	Size int32
	// Enclosing function name for locals and params.
	Func string
	// Addr is filled in during assembly for globals.
	Addr uint32
}

// ItemKind discriminates Item variants.
type ItemKind uint8

const (
	ItemInstr ItemKind = iota
	ItemLabel
	ItemWord   // .word: one initialized data word
	ItemSpace  // .space: N zero bytes
	ItemAscii  // .ascii: literal bytes
	ItemAlign  // .align: pad data to a multiple of N
	ItemSymRec // .stabs record
)

// ImmSel selects how a symbolic immediate is folded into Instr.Imm.
type ImmSel uint8

const (
	ImmFull ImmSel = iota // whole value (must fit signed 13 bits)
	ImmHi                 // high 22 bits (for sethi)
	ImmLo                 // low 10 bits
)

// Item is one statement in a parsed unit. Instructions may carry symbolic
// references that the assembler resolves: TargetSym for branches and calls,
// ImmSym (+ImmSel) for immediates naming data labels.
type Item struct {
	Kind ItemKind

	// ItemInstr
	Instr     sparc.Instr
	TargetSym string // branch/call target label
	ImmSym    string // symbolic immediate (data or text label)
	ImmSel    ImmSel
	CountName string // event counter attached to this instruction

	// ItemLabel
	Label string

	// ItemWord
	Word int32
	// .word may also name a label whose address becomes the value.
	WordSym string

	// ItemSpace / ItemAlign
	N int32

	// ItemAscii
	Bytes []byte

	// ItemSymRec
	Sym Sym

	// Section this item was parsed in ("text", "data", "bss").
	Section string

	// Line number in the source, for diagnostics.
	Line int
}

// Unit is a parsed assembly file: an ordered list of items.
type Unit struct {
	Name  string
	Items []Item
}

// Clone returns a deep-enough copy of u for independent rewriting (Items are
// copied; byte slices are shared since rewriters never mutate them).
func (u *Unit) Clone() *Unit {
	nu := &Unit{Name: u.Name, Items: make([]Item, len(u.Items))}
	copy(nu.Items, u.Items)
	return nu
}

type parser struct {
	unit         *Unit
	sect         string
	line         int
	pendingCount string // set by .count, consumed by the next instruction
}

// Parse parses one assembly source file into a Unit.
func Parse(name, src string) (*Unit, error) {
	p := &parser{unit: &Unit{Name: name}, sect: "text"}
	for i, raw := range strings.Split(src, "\n") {
		p.line = i + 1
		if err := p.parseLine(raw); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, p.line, err)
		}
	}
	return p.unit, nil
}

// MustParse is Parse for trusted EMBEDDED sources only (the startup shim,
// test fixtures): a parse failure there is a programmer error, so it panics.
// Generated or user-influenced source — monitor.LibrarySource output, check
// sequences from patch.CheckText — must go through Parse with the error
// propagated; see patch.Apply and elim.Apply for the pattern.
func MustParse(name, src string) *Unit {
	u, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return u
}

func (p *parser) emit(it Item) {
	it.Section = p.sect
	it.Line = p.line
	p.unit.Items = append(p.unit.Items, it)
}

func (p *parser) parseLine(raw string) error {
	if i := strings.IndexByte(raw, '!'); i >= 0 {
		// Keep '!' inside string literals.
		if q := strings.IndexByte(raw, '"'); q < 0 || q > i {
			raw = raw[:i]
		} else if e := strings.IndexByte(raw[q+1:], '"'); e >= 0 {
			rest := raw[q+1+e+1:]
			if j := strings.IndexByte(rest, '!'); j >= 0 {
				raw = raw[:q+1+e+1+j]
			}
		}
	}
	s := strings.TrimSpace(raw)
	for s != "" {
		// Leading labels.
		if i := strings.IndexByte(s, ':'); i >= 0 && isIdent(s[:i]) {
			p.emit(Item{Kind: ItemLabel, Label: s[:i]})
			s = strings.TrimSpace(s[i+1:])
			continue
		}
		break
	}
	if s == "" {
		return nil
	}
	if s[0] == '.' {
		return p.parseDirective(s)
	}
	return p.parseInstr(s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c == '.' || c == '$':
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	if len(out) == 1 && out[0] == "" {
		return nil
	}
	return out
}

func (p *parser) parseDirective(s string) error {
	name, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	ops := splitOperands(rest)
	switch name {
	case ".text", ".data", ".bss":
		p.sect = name[1:]
	case ".global":
		// Visibility is not modelled; accepted for compatibility.
	case ".word":
		if len(ops) == 0 {
			return fmt.Errorf(".word needs at least one operand")
		}
		for _, op := range ops {
			if v, err := parseInt(op); err == nil {
				p.emit(Item{Kind: ItemWord, Word: int32(v)})
			} else if isIdent(op) {
				p.emit(Item{Kind: ItemWord, WordSym: op})
			} else {
				return fmt.Errorf("bad .word operand %q", op)
			}
		}
	case ".space":
		if len(ops) != 1 {
			return fmt.Errorf(".space needs one operand")
		}
		v, err := parseInt(ops[0])
		if err != nil || v < 0 {
			return fmt.Errorf("bad .space size %q", ops[0])
		}
		p.emit(Item{Kind: ItemSpace, N: int32(v)})
	case ".align":
		if len(ops) != 1 {
			return fmt.Errorf(".align needs one operand")
		}
		v, err := parseInt(ops[0])
		if err != nil || v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("bad .align %q", ops[0])
		}
		p.emit(Item{Kind: ItemAlign, N: int32(v)})
	case ".ascii":
		lit, err := strconv.Unquote(rest)
		if err != nil {
			return fmt.Errorf("bad .ascii literal: %v", err)
		}
		p.emit(Item{Kind: ItemAscii, Bytes: []byte(lit)})
	case ".stabs":
		return p.parseStabs(ops)
	case ".count":
		if len(ops) != 1 {
			return fmt.Errorf(".count needs one quoted name")
		}
		nm, err := strconv.Unquote(ops[0])
		if err != nil {
			return fmt.Errorf("bad .count name: %v", err)
		}
		// Attach to the next instruction via a pending marker: emit a
		// zero-width item is avoided by storing on the parser; simplest is
		// to emit a label-like record the resolver folds forward. Instead we
		// stash it and apply on the next instruction.
		p.pendingCount = nm
	default:
		return fmt.Errorf("unknown directive %s", name)
	}
	return nil
}

func (p *parser) parseStabs(ops []string) error {
	if len(ops) < 4 {
		return fmt.Errorf(".stabs needs name, kind, where, size")
	}
	nm, err := strconv.Unquote(ops[0])
	if err != nil {
		return fmt.Errorf("bad .stabs name: %v", err)
	}
	var sym Sym
	sym.Name = nm
	switch ops[1] {
	case "global":
		sym.Kind = SymGlobal
	case "local":
		sym.Kind = SymLocal
	case "param":
		sym.Kind = SymParam
	case "func":
		sym.Kind = SymFunc
	default:
		return fmt.Errorf("bad .stabs kind %q", ops[1])
	}
	where := ops[2]
	switch sym.Kind {
	case SymGlobal, SymFunc:
		if !isIdent(where) {
			return fmt.Errorf("bad .stabs location %q", where)
		}
		sym.Label = where
	default:
		off, ok := parseFpOff(where)
		if !ok {
			return fmt.Errorf("bad .stabs frame offset %q", where)
		}
		sym.FpOff = off
	}
	size, err := parseInt(ops[3])
	if err != nil || size < 0 {
		return fmt.Errorf("bad .stabs size %q", ops[3])
	}
	sym.Size = int32(size)
	if len(ops) >= 5 {
		fn, err := strconv.Unquote(ops[4])
		if err != nil {
			return fmt.Errorf("bad .stabs function: %v", err)
		}
		sym.Func = fn
	}
	p.emit(Item{Kind: ItemSymRec, Sym: sym})
	return nil
}

// parseFpOff parses "%fp-20" / "%fp+68" / "%fp".
func parseFpOff(s string) (int32, bool) {
	if !strings.HasPrefix(s, "%fp") {
		return 0, false
	}
	rest := s[3:]
	if rest == "" {
		return 0, true
	}
	v, err := parseInt(rest)
	if err != nil {
		return 0, false
	}
	return int32(v), true
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "+") {
		s = s[1:]
	} else if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	if v > 1<<32 {
		return 0, fmt.Errorf("integer %s out of range", s)
	}
	n := int64(v)
	if neg {
		n = -n
	}
	return n, nil
}

var regByName = func() map[string]sparc.Reg {
	m := make(map[string]sparc.Reg)
	for r := sparc.Reg(0); r < sparc.NumRegs; r++ {
		m[r.String()] = r
	}
	// Alternate names for the conventional aliases.
	m["%o6"] = sparc.SP
	m["%i6"] = sparc.FP
	m["%r0"] = sparc.G0
	return m
}()

// ParseReg parses a register name like %o0 or %fp.
func ParseReg(s string) (sparc.Reg, bool) {
	r, ok := regByName[strings.ToLower(strings.TrimSpace(s))]
	return r, ok
}
