package asm

import (
	"testing"

	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/minic"
)

// assembleBoth assembles a unit and the reparse of its formatting, then
// compares the resulting programs instruction by instruction.
func roundTrip(t *testing.T, u *Unit) {
	t.Helper()
	p1, err := Assemble(Options{AddStartup: true}, u)
	if err != nil {
		t.Fatalf("assemble original: %v", err)
	}
	text := Format(u)
	u2, err := Parse(u.Name+"+fmt", text)
	if err != nil {
		t.Fatalf("reparse formatted text: %v\n%s", err, text)
	}
	p2, err := Assemble(Options{AddStartup: true}, u2)
	if err != nil {
		t.Fatalf("assemble formatted: %v\n%s", err, text)
	}
	if len(p1.Text) != len(p2.Text) {
		t.Fatalf("text length %d != %d", len(p1.Text), len(p2.Text))
	}
	for i := range p1.Text {
		if p1.Text[i] != p2.Text[i] {
			t.Fatalf("instr %d differs: %v vs %v", i, p1.Text[i], p2.Text[i])
		}
	}
	if p1.DataSize != p2.DataSize {
		t.Fatalf("data size %d != %d", p1.DataSize, p2.DataSize)
	}
}

func TestFormatRoundTripHandwritten(t *testing.T) {
	u := MustParse("rt.s", `
main:
	save %sp, -96, %sp
	set table, %o0
	mov 0, %l0
loop:
	cmp %l0, 8
	bge done
	sll %l0, 2, %o1
	add %o0, %o1, %o1
	st %l0, [%o1]
	ld [%o1], %o2
	inc %l0
	ba loop
done:
	sethi %hi(table), %o3
	or %o3, %lo(table), %o3
	ld [%o3+4], %i0
	restore
	retl
	.stabs "main", func, main, 0
	.stabs "x", local, %fp-8, 4, "main"
	.data
table:	.space 32
msg:	.ascii "round\ttrip\n"
	.align 8
ptr:	.word table
val:	.word -17
`)
	roundTrip(t, u)
}

func TestFormatRoundTripCompiledPrograms(t *testing.T) {
	sources := []string{
		`int main() { return 42; }`,
		`
struct P { int a; int b; };
struct P ps[3];
int g;
int f(int n) {
	int i;
	for (i = 0; i < n; i = i + 1) ps[i % 3].a = i;
	return ps[0].a + g;
}
int main() { g = 2; return f(9); }`,
	}
	for _, src := range sources {
		asmSrc, err := minic.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		u, err := Parse("c.s", asmSrc)
		if err != nil {
			t.Fatal(err)
		}
		roundTrip(t, u)
	}
}

func TestFormatRoundTripExecution(t *testing.T) {
	// Stronger check: the reparsed program must *run* identically.
	src := `
int tab[16];
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 16; i = i + 1) tab[i] = i * i;
	for (i = 0; i < 16; i = i + 1) s = s + tab[i];
	print(s);
	return s % 100;
}`
	asmSrc, err := minic.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Parse("x.s", asmSrc)
	if err != nil {
		t.Fatal(err)
	}
	run := func(unit *Unit) (string, int32) {
		p, err := Assemble(Options{AddStartup: true}, unit)
		if err != nil {
			t.Fatal(err)
		}
		m := newTestMachine()
		p.Load(m)
		code, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m.Output(), code
	}
	o1, c1 := run(u)
	u2, err := Parse("x2.s", Format(u))
	if err != nil {
		t.Fatal(err)
	}
	o2, c2 := run(u2)
	if o1 != o2 || c1 != c2 {
		t.Fatalf("round-trip changed behaviour: (%q,%d) vs (%q,%d)", o1, c1, o2, c2)
	}
}

func newTestMachine() *machine.Machine {
	return machine.New(cache.DefaultConfig, machine.DefaultCosts)
}
