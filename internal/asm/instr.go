package asm

import (
	"fmt"
	"strings"

	"databreak/internal/sparc"
)

// immOperand is a parsed "second operand": a register, a literal, or a
// symbolic immediate with a hi/lo selector.
type immOperand struct {
	isReg  bool
	reg    sparc.Reg
	val    int32
	sym    string
	sel    ImmSel
	hasVal bool
}

func (p *parser) parseOperand2(s string) (immOperand, error) {
	s = strings.TrimSpace(s)
	if r, ok := ParseReg(s); ok {
		return immOperand{isReg: true, reg: r}, nil
	}
	if strings.HasPrefix(s, "%hi(") && strings.HasSuffix(s, ")") {
		inner := s[4 : len(s)-1]
		if !isIdent(inner) {
			return immOperand{}, fmt.Errorf("bad %%hi operand %q", inner)
		}
		return immOperand{sym: inner, sel: ImmHi}, nil
	}
	if strings.HasPrefix(s, "%lo(") && strings.HasSuffix(s, ")") {
		inner := s[4 : len(s)-1]
		if !isIdent(inner) {
			return immOperand{}, fmt.Errorf("bad %%lo operand %q", inner)
		}
		return immOperand{sym: inner, sel: ImmLo}, nil
	}
	v, err := parseInt(s)
	if err != nil {
		return immOperand{}, fmt.Errorf("bad operand %q", s)
	}
	return immOperand{val: int32(v), hasVal: true}, nil
}

// applyOperand2 folds an immOperand into an instruction's second operand.
func applyOperand2(in *sparc.Instr, it *Item, op immOperand) error {
	if op.isReg {
		in.Rs2 = op.reg
		in.UseImm = false
		return nil
	}
	in.UseImm = true
	if op.sym != "" {
		it.ImmSym = op.sym
		it.ImmSel = op.sel
		return nil
	}
	if op.val < -4096 || op.val > 4095 {
		return fmt.Errorf("immediate %d does not fit in 13 bits (use set)", op.val)
	}
	in.Imm = op.val
	return nil
}

// parseMem parses "[reg]", "[reg+imm]", "[reg-imm]", "[reg+reg]",
// "[reg+%lo(sym)]".
func (p *parser) parseMem(s string) (rs1 sparc.Reg, op immOperand, err error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, immOperand{}, fmt.Errorf("bad memory operand %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	// Find a top-level + or - separating base and offset (skip the leading
	// register's '%').
	sep := -1
	depth := 0
	for i := 1; i < len(inner); i++ {
		switch inner[i] {
		case '(':
			depth++
		case ')':
			depth--
		case '+', '-':
			if depth == 0 && sep < 0 {
				sep = i
			}
		}
	}
	if sep < 0 {
		r, ok := ParseReg(inner)
		if !ok {
			return 0, immOperand{}, fmt.Errorf("bad base register %q", inner)
		}
		return r, immOperand{hasVal: true}, nil
	}
	r, ok := ParseReg(inner[:sep])
	if !ok {
		return 0, immOperand{}, fmt.Errorf("bad base register %q", inner[:sep])
	}
	offStr := strings.TrimSpace(inner[sep:])
	if strings.HasPrefix(offStr, "+") {
		offStr = strings.TrimSpace(offStr[1:])
	}
	op, err = p.parseOperand2(offStr)
	if err != nil {
		return 0, immOperand{}, err
	}
	return r, op, nil
}

var aluOps = map[string]sparc.Op{
	"add": sparc.Add, "sub": sparc.Sub, "and": sparc.And, "andn": sparc.Andn,
	"or": sparc.Or, "orn": sparc.Orn, "xor": sparc.Xor, "xnor": sparc.Xnor,
	"sll": sparc.Sll, "srl": sparc.Srl, "sra": sparc.Sra,
	"smul": sparc.SMul, "sdiv": sparc.SDiv,
	"addcc": sparc.Addcc, "subcc": sparc.Subcc, "andcc": sparc.Andcc,
	"andncc": sparc.Andncc, "orcc": sparc.Orcc, "xorcc": sparc.Xorcc,
}

var branchOps = map[string]sparc.Cond{
	"ba": sparc.BA, "b": sparc.BA, "bn": sparc.BN, "be": sparc.BE, "bz": sparc.BE,
	"bne": sparc.BNE, "bnz": sparc.BNE, "bl": sparc.BL, "ble": sparc.BLE,
	"bg": sparc.BG, "bge": sparc.BGE, "blu": sparc.BLU, "bcs": sparc.BLU,
	"bgeu": sparc.BGEU, "bcc": sparc.BGEU, "bgu": sparc.BGU, "bleu": sparc.BLEU,
	"bpos": sparc.BPOS, "bneg": sparc.BNEG, "bvc": sparc.BVC, "bvs": sparc.BVS,
}

func (p *parser) emitInstr(it Item) {
	if p.pendingCount != "" {
		it.CountName = p.pendingCount
		p.pendingCount = ""
	}
	it.Kind = ItemInstr
	p.emit(it)
}

func (p *parser) parseInstr(s string) error {
	mn, rest, _ := strings.Cut(s, " ")
	mn = strings.ToLower(strings.TrimSpace(mn))
	rest = strings.TrimSpace(rest)
	ops := splitOperands(rest)

	fail := func(format string, args ...any) error {
		return fmt.Errorf("%s: "+format, append([]any{mn}, args...)...)
	}
	needOps := func(n int) error {
		if len(ops) != n {
			return fail("want %d operands, got %d", n, len(ops))
		}
		return nil
	}
	reg := func(s string) (sparc.Reg, error) {
		r, ok := ParseReg(s)
		if !ok {
			return 0, fail("bad register %q", s)
		}
		return r, nil
	}

	// Three-operand ALU.
	if op, ok := aluOps[mn]; ok {
		if err := needOps(3); err != nil {
			return err
		}
		rs1, err := reg(ops[0])
		if err != nil {
			return err
		}
		op2, err := p.parseOperand2(ops[1])
		if err != nil {
			return err
		}
		rd, err := reg(ops[2])
		if err != nil {
			return err
		}
		it := Item{Instr: sparc.Instr{Op: op, Rs1: rs1, Rd: rd}}
		if err := applyOperand2(&it.Instr, &it, op2); err != nil {
			return err
		}
		p.emitInstr(it)
		return nil
	}

	// Branches.
	if c, ok := branchOps[mn]; ok {
		if err := needOps(1); err != nil {
			return err
		}
		if !isIdent(ops[0]) {
			return fail("bad target %q", ops[0])
		}
		p.emitInstr(Item{Instr: sparc.Instr{Op: sparc.Br, Cond: c}, TargetSym: ops[0]})
		return nil
	}

	switch mn {
	case "nop":
		if len(ops) != 0 {
			return fail("takes no operands")
		}
		p.emitInstr(Item{Instr: sparc.MakeNop()})

	case "unimp":
		p.emitInstr(Item{Instr: sparc.Instr{Op: sparc.Unimp}})

	case "ld", "ldd":
		if err := needOps(2); err != nil {
			return err
		}
		rs1, op2, err := p.parseMem(ops[0])
		if err != nil {
			return err
		}
		rd, err := reg(ops[1])
		if err != nil {
			return err
		}
		op := sparc.Ld
		if mn == "ldd" {
			op = sparc.Ldd
		}
		it := Item{Instr: sparc.Instr{Op: op, Rs1: rs1, Rd: rd}}
		if err := applyOperand2(&it.Instr, &it, op2); err != nil {
			return err
		}
		p.emitInstr(it)

	case "st", "std":
		if err := needOps(2); err != nil {
			return err
		}
		rd, err := reg(ops[0])
		if err != nil {
			return err
		}
		rs1, op2, err := p.parseMem(ops[1])
		if err != nil {
			return err
		}
		op := sparc.St
		if mn == "std" {
			op = sparc.Std
		}
		it := Item{Instr: sparc.Instr{Op: op, Rs1: rs1, Rd: rd}}
		if err := applyOperand2(&it.Instr, &it, op2); err != nil {
			return err
		}
		p.emitInstr(it)

	case "sethi":
		if err := needOps(2); err != nil {
			return err
		}
		op2, err := p.parseOperand2(ops[0])
		if err != nil {
			return err
		}
		rd, err := reg(ops[1])
		if err != nil {
			return err
		}
		it := Item{Instr: sparc.Instr{Op: sparc.Sethi, Rd: rd, UseImm: true}}
		switch {
		case op2.sym != "":
			if op2.sel != ImmHi {
				return fail("sethi needs %%hi(sym) or a constant")
			}
			it.ImmSym = op2.sym
			it.ImmSel = ImmHi
		case op2.hasVal:
			if op2.val < 0 || op2.val >= 1<<22 {
				return fail("sethi constant out of 22-bit range")
			}
			it.Instr.Imm = op2.val
		default:
			return fail("sethi needs an immediate")
		}
		p.emitInstr(it)

	case "call":
		if err := needOps(1); err != nil {
			return err
		}
		if !isIdent(ops[0]) {
			return fail("bad target %q", ops[0])
		}
		p.emitInstr(Item{Instr: sparc.Instr{Op: sparc.Call}, TargetSym: ops[0]})

	case "jmpl", "jmp":
		rdIdx := 1
		if mn == "jmp" {
			if err := needOps(1); err != nil {
				return err
			}
			rdIdx = -1
		} else if err := needOps(2); err != nil {
			return err
		}
		// Operand 0 is reg or reg+imm (no brackets).
		base := ops[0]
		var rs1 sparc.Reg
		var imm int32
		if i := strings.IndexAny(base[1:], "+-"); i >= 0 {
			r, ok := ParseReg(base[:i+1])
			if !ok {
				return fail("bad register %q", base[:i+1])
			}
			v, err := parseInt(base[i+1:])
			if err != nil {
				return fail("bad offset %q", base[i+1:])
			}
			rs1, imm = r, int32(v)
		} else {
			r, ok := ParseReg(base)
			if !ok {
				return fail("bad register %q", base)
			}
			rs1 = r
		}
		rd := sparc.G0
		if rdIdx == 1 {
			r, err := reg(ops[1])
			if err != nil {
				return err
			}
			rd = r
		}
		p.emitInstr(Item{Instr: sparc.Instr{Op: sparc.Jmpl, Rs1: rs1, Imm: imm, UseImm: true, Rd: rd}})

	case "ret":
		if len(ops) != 0 {
			return fail("takes no operands")
		}
		p.emitInstr(Item{Instr: sparc.Instr{Op: sparc.Jmpl, Rs1: sparc.I7, UseImm: true, Rd: sparc.G0}})

	case "retl":
		if len(ops) != 0 {
			return fail("takes no operands")
		}
		p.emitInstr(Item{Instr: sparc.Instr{Op: sparc.Jmpl, Rs1: sparc.O7, UseImm: true, Rd: sparc.G0}})

	case "save", "restore":
		op := sparc.Save
		if mn == "restore" {
			op = sparc.Restore
		}
		if len(ops) == 0 {
			p.emitInstr(Item{Instr: sparc.Instr{Op: op, Rs1: sparc.G0, UseImm: true, Rd: sparc.G0}})
			return nil
		}
		if err := needOps(3); err != nil {
			return err
		}
		rs1, err := reg(ops[0])
		if err != nil {
			return err
		}
		op2, err := p.parseOperand2(ops[1])
		if err != nil {
			return err
		}
		rd, err := reg(ops[2])
		if err != nil {
			return err
		}
		it := Item{Instr: sparc.Instr{Op: op, Rs1: rs1, Rd: rd}}
		if err := applyOperand2(&it.Instr, &it, op2); err != nil {
			return err
		}
		p.emitInstr(it)

	case "ta":
		if err := needOps(1); err != nil {
			return err
		}
		v, err := parseInt(ops[0])
		if err != nil {
			return fail("bad trap number %q", ops[0])
		}
		p.emitInstr(Item{Instr: sparc.Instr{Op: sparc.Ta, Imm: int32(v), UseImm: true}})

	// --- Synthetic instructions ---

	case "mov":
		if err := needOps(2); err != nil {
			return err
		}
		op2, err := p.parseOperand2(ops[0])
		if err != nil {
			return err
		}
		rd, err := reg(ops[1])
		if err != nil {
			return err
		}
		it := Item{Instr: sparc.Instr{Op: sparc.Or, Rs1: sparc.G0, Rd: rd}}
		if err := applyOperand2(&it.Instr, &it, op2); err != nil {
			return err
		}
		p.emitInstr(it)

	case "cmp":
		if err := needOps(2); err != nil {
			return err
		}
		rs1, err := reg(ops[0])
		if err != nil {
			return err
		}
		op2, err := p.parseOperand2(ops[1])
		if err != nil {
			return err
		}
		it := Item{Instr: sparc.Instr{Op: sparc.Subcc, Rs1: rs1, Rd: sparc.G0}}
		if err := applyOperand2(&it.Instr, &it, op2); err != nil {
			return err
		}
		p.emitInstr(it)

	case "tst":
		if err := needOps(1); err != nil {
			return err
		}
		rs1, err := reg(ops[0])
		if err != nil {
			return err
		}
		p.emitInstr(Item{Instr: sparc.Instr{Op: sparc.Orcc, Rs1: rs1, Rs2: sparc.G0, Rd: sparc.G0}})

	case "btst":
		// btst mask, reg: andcc reg, mask, %g0
		if err := needOps(2); err != nil {
			return err
		}
		op2, err := p.parseOperand2(ops[0])
		if err != nil {
			return err
		}
		rs1, err := reg(ops[1])
		if err != nil {
			return err
		}
		it := Item{Instr: sparc.Instr{Op: sparc.Andcc, Rs1: rs1, Rd: sparc.G0}}
		if err := applyOperand2(&it.Instr, &it, op2); err != nil {
			return err
		}
		p.emitInstr(it)

	case "clr":
		if err := needOps(1); err != nil {
			return err
		}
		rd, err := reg(ops[0])
		if err != nil {
			return err
		}
		p.emitInstr(Item{Instr: sparc.Instr{Op: sparc.Or, Rs1: sparc.G0, Rs2: sparc.G0, Rd: rd}})

	case "inc", "dec":
		if len(ops) != 1 && len(ops) != 2 {
			return fail("want 1 or 2 operands")
		}
		rd, err := reg(ops[0])
		if err != nil {
			return err
		}
		amt := int32(1)
		if len(ops) == 2 {
			v, err := parseInt(ops[1])
			if err != nil {
				return fail("bad amount %q", ops[1])
			}
			amt = int32(v)
		}
		op := sparc.Add
		if mn == "dec" {
			op = sparc.Sub
		}
		p.emitInstr(Item{Instr: sparc.RI(op, rd, amt, rd)})

	case "neg":
		if err := needOps(1); err != nil {
			return err
		}
		rd, err := reg(ops[0])
		if err != nil {
			return err
		}
		p.emitInstr(Item{Instr: sparc.RR(sparc.Sub, sparc.G0, rd, rd)})

	case "not":
		if err := needOps(1); err != nil {
			return err
		}
		rd, err := reg(ops[0])
		if err != nil {
			return err
		}
		p.emitInstr(Item{Instr: sparc.RR(sparc.Xnor, rd, sparc.G0, rd)})

	case "set":
		if err := needOps(2); err != nil {
			return err
		}
		rd, err := reg(ops[1])
		if err != nil {
			return err
		}
		target := ops[0]
		if isIdent(target) && !strings.HasPrefix(target, "0x") {
			// Symbolic address: always sethi+or so code size is predictable.
			p.emitInstr(Item{
				Instr:  sparc.Instr{Op: sparc.Sethi, Rd: rd, UseImm: true},
				ImmSym: target, ImmSel: ImmHi,
			})
			p.emitInstr(Item{
				Instr:  sparc.Instr{Op: sparc.Or, Rs1: rd, Rd: rd, UseImm: true},
				ImmSym: target, ImmSel: ImmLo,
			})
			return nil
		}
		v, err := parseInt(target)
		if err != nil {
			return fail("bad value %q", target)
		}
		val := int32(v)
		if val >= -4096 && val <= 4095 {
			p.emitInstr(Item{Instr: sparc.RI(sparc.Or, sparc.G0, val, rd)})
			return nil
		}
		hi := int32(uint32(val) >> 10)
		lo := val & 0x3ff
		p.emitInstr(Item{Instr: sparc.Instr{Op: sparc.Sethi, Rd: rd, Imm: hi, UseImm: true}})
		if lo != 0 {
			p.emitInstr(Item{Instr: sparc.RI(sparc.Or, rd, lo, rd)})
		}

	default:
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	return nil
}
