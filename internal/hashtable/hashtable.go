// Package hashtable implements the hash-table address lookup from Wahbe's
// pilot study of data breakpoint implementations (ASPLOS 1992), reproduced
// here as the baseline the segmented bitmap is measured against.
//
// The table hashes 32-byte address granules to buckets holding the monitored
// regions overlapping that granule. Space is proportional to the number (and
// footprint) of monitored regions, but a lookup must walk a bucket chain:
// several dependent memory accesses per check, which is what produced the
// 209%-642% overheads the paper reports for this scheme.
package hashtable

import "fmt"

// granuleShift is log2 of the hashing granule in bytes.
const granuleShift = 5

type entry struct {
	lo, hi uint32 // region byte bounds, inclusive lo, exclusive hi
}

// Table is a hash table of monitored regions. Create with New.
type Table struct {
	buckets [][]entry
	mask    uint32
	regions int
}

// New builds a table with the given bucket count (rounded up to a power of
// two; minimum 16).
func New(nbuckets int) *Table {
	n := 16
	for n < nbuckets {
		n <<= 1
	}
	return &Table{buckets: make([][]entry, n), mask: uint32(n - 1)}
}

func (t *Table) bucketOf(addr uint32) uint32 {
	g := addr >> granuleShift
	// Multiplicative hash (Knuth).
	return (g * 2654435761) & t.mask
}

func checkRegion(addr, size uint32) error {
	if addr&3 != 0 || size == 0 || size&3 != 0 {
		return fmt.Errorf("hashtable: region [%#x,+%d) is not word aligned", addr, size)
	}
	return nil
}

// Add records the region [addr, addr+size). Overlapping an existing region
// is an error (the MRS keeps regions disjoint).
func (t *Table) Add(addr, size uint32) error {
	if err := checkRegion(addr, size); err != nil {
		return err
	}
	if t.overlaps(addr, size) {
		return fmt.Errorf("hashtable: region [%#x,+%d) overlaps an existing region", addr, size)
	}
	e := entry{lo: addr, hi: addr + size}
	seen := make(map[uint32]bool)
	for g := addr >> granuleShift; g <= (addr+size-1)>>granuleShift; g++ {
		b := t.bucketOf(g << granuleShift)
		if !seen[b] {
			seen[b] = true
			t.buckets[b] = append(t.buckets[b], e)
		}
	}
	t.regions++
	return nil
}

func (t *Table) overlaps(addr, size uint32) bool {
	lo, hi := addr, addr+size
	for g := addr >> granuleShift; g <= (addr+size-1)>>granuleShift; g++ {
		b := t.bucketOf(g << granuleShift)
		for _, e := range t.buckets[b] {
			if e.lo < hi && lo < e.hi {
				return true
			}
		}
	}
	return false
}

// Remove erases the region previously added with exactly these bounds.
func (t *Table) Remove(addr, size uint32) error {
	if err := checkRegion(addr, size); err != nil {
		return err
	}
	found := false
	for g := addr >> granuleShift; g <= (addr+size-1)>>granuleShift; g++ {
		b := t.bucketOf(g << granuleShift)
		lst := t.buckets[b]
		for i := range lst {
			if lst[i].lo == addr && lst[i].hi == addr+size {
				t.buckets[b] = append(lst[:i], lst[i+1:]...)
				found = true
				break
			}
		}
	}
	if !found {
		return fmt.Errorf("hashtable: region [%#x,+%d) was not added", addr, size)
	}
	t.regions--
	return nil
}

// Contains reports whether the word containing addr is monitored.
func (t *Table) Contains(addr uint32) bool {
	a := addr &^ 3
	b := t.bucketOf(a)
	for _, e := range t.buckets[b] {
		if e.lo <= a && a < e.hi {
			return true
		}
	}
	return false
}

// ContainsAccess reports whether a size-byte store at addr touches a
// monitored word.
func (t *Table) ContainsAccess(addr, size uint32) bool {
	first := addr &^ 3
	last := (addr + size - 1) &^ 3
	for a := first; ; a += 4 {
		if t.Contains(a) {
			return true
		}
		if a == last {
			return false
		}
	}
}

// Regions returns the number of installed regions.
func (t *Table) Regions() int { return t.regions }

// ChainLength returns the bucket chain length a lookup of addr must walk;
// it quantifies why hash lookup loses to the bitmap.
func (t *Table) ChainLength(addr uint32) int {
	return len(t.buckets[t.bucketOf(addr&^3)])
}
