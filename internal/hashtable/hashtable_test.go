package hashtable

import (
	"math/rand"
	"testing"
)

func TestBasicAddContainsRemove(t *testing.T) {
	h := New(256)
	if h.Contains(0x1000) {
		t.Fatal("empty table must not contain anything")
	}
	if err := h.Add(0x1000, 8); err != nil {
		t.Fatal(err)
	}
	if !h.Contains(0x1000) || !h.Contains(0x1004) {
		t.Fatal("added words must be found")
	}
	if h.Contains(0x1008) || h.Contains(0xffc) {
		t.Fatal("neighbors must not be found")
	}
	if err := h.Remove(0x1000, 8); err != nil {
		t.Fatal(err)
	}
	if h.Contains(0x1000) || h.Regions() != 0 {
		t.Fatal("remove must clear the region")
	}
}

func TestOverlapRejected(t *testing.T) {
	h := New(64)
	h.Add(0x2000, 16)
	if err := h.Add(0x2008, 8); err == nil {
		t.Fatal("overlapping region must be rejected")
	}
	if err := h.Add(0x1FF8, 16); err == nil {
		t.Fatal("straddling region must be rejected")
	}
}

func TestRegionSpanningGranules(t *testing.T) {
	h := New(64)
	// 32-byte granules: a 96-byte region spans several.
	if err := h.Add(0x3010, 96); err != nil {
		t.Fatal(err)
	}
	for off := uint32(0); off < 96; off += 4 {
		if !h.Contains(0x3010 + off) {
			t.Fatalf("word %#x must be found", 0x3010+off)
		}
	}
	if err := h.Remove(0x3010, 96); err != nil {
		t.Fatal(err)
	}
	for off := uint32(0); off < 96; off += 4 {
		if h.Contains(0x3010 + off) {
			t.Fatalf("word %#x must be gone", 0x3010+off)
		}
	}
}

func TestRemoveUnknownFails(t *testing.T) {
	h := New(64)
	if err := h.Remove(0x1000, 4); err == nil {
		t.Fatal("removing absent region must fail")
	}
}

func TestContainsAccess(t *testing.T) {
	h := New(64)
	h.Add(0x1004, 4)
	if !h.ContainsAccess(0x1000, 8) {
		t.Fatal("double-word store overlapping region must hit")
	}
	if h.ContainsAccess(0x1008, 8) {
		t.Fatal("store past region must miss")
	}
}

func TestOracle(t *testing.T) {
	h := New(128)
	oracle := make(map[uint32]bool)
	type region struct{ addr, size uint32 }
	var live []region
	rng := rand.New(rand.NewSource(2))
	overlaps := func(addr, size uint32) bool {
		for o := uint32(0); o < size; o += 4 {
			if oracle[addr+o] {
				return true
			}
		}
		return false
	}
	for step := 0; step < 3000; step++ {
		switch rng.Intn(4) {
		case 0:
			addr := uint32(rng.Intn(1<<16)) &^ 3
			size := (uint32(rng.Intn(20)) + 1) * 4
			err := h.Add(addr, size)
			if overlaps(addr, size) {
				if err == nil {
					t.Fatalf("step %d: overlap not rejected", step)
				}
			} else if err != nil {
				t.Fatalf("step %d: add failed: %v", step, err)
			} else {
				for o := uint32(0); o < size; o += 4 {
					oracle[addr+o] = true
				}
				live = append(live, region{addr, size})
			}
		case 1:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			r := live[i]
			if err := h.Remove(r.addr, r.size); err != nil {
				t.Fatalf("step %d: remove failed: %v", step, err)
			}
			for o := uint32(0); o < r.size; o += 4 {
				delete(oracle, r.addr+o)
			}
			live = append(live[:i], live[i+1:]...)
		default:
			addr := uint32(rng.Intn(1<<16)) &^ 3
			if got, want := h.Contains(addr), oracle[addr]; got != want {
				t.Fatalf("step %d: Contains(%#x)=%v oracle=%v", step, addr, got, want)
			}
		}
	}
}

func TestChainLengthGrowsWithRegions(t *testing.T) {
	h := New(16) // few buckets: force chains
	for i := uint32(0); i < 64; i++ {
		if err := h.Add(0x1000+i*64, 4); err != nil {
			t.Fatal(err)
		}
	}
	long := 0
	for i := uint32(0); i < 64; i++ {
		if h.ChainLength(0x1000+i*64) > 1 {
			long++
		}
	}
	if long == 0 {
		t.Fatal("with 64 regions in 16 buckets some chains must exceed length 1")
	}
}

func BenchmarkContainsMiss(b *testing.B) {
	h := New(256)
	for i := uint32(0); i < 32; i++ {
		h.Add(0x1000+i*64, 4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Contains(0x8000_0000 + uint32(i%4096)*4)
	}
}

func BenchmarkContainsHit(b *testing.B) {
	h := New(256)
	h.Add(0x1000, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Contains(0x1000 + uint32(i%1024)*4)
	}
}
