// Package monitor implements the runtime half of the monitored region
// service for simulated programs: the segmented bitmap and range summary
// structures living inside the debuggee's (simulated) address space, the
// hand-written assembly check routines that the patching tool links into the
// program, and the Go-side "debugger" operations that create and delete
// monitored regions by editing those structures directly.
//
// This mirrors the paper's architecture: "For efficiency, the monitor
// library data structures are maintained in the address space of the program
// being debugged." Address lookups executed by check code are therefore real
// loads that travel through the simulated cache, so their cost — and the
// cache effects of §3.3.1 — emerge from the machine model rather than being
// asserted.
package monitor

import "fmt"

// Layout fixes where monitor data structures live in the simulated address
// space (above machine.MonBase, far from program text, data, heap, stack).
//
// The shared zeroed bitmap segment is page zero of the address space: a
// segment-table entry of 0 is thus a valid pointer to an always-zero
// segment, which lets the table start life all-zeros without a 32 MB
// initialization pass — the same trick as lazily mapped zero pages.
const (
	// SegTableBase is the segment table: one word per segment of the 2^32
	// address space.
	SegTableBase uint32 = 0x8000_0000
	// Summary bitmap levels for range checks: one bit per 2^shift bytes.
	SummaryL9Base  uint32 = 0x8400_0000 // shift 9: 1 MB of bits
	SummaryL14Base uint32 = 0x8480_0000 // shift 14: 32 KB
	SummaryL19Base uint32 = 0x8490_0000 // shift 19: 1 KB
	// FpScratch is the word used by %fp-definition check sequences.
	FpScratch uint32 = 0x84A0_0000
	// SegArenaBase is where private bitmap segments are allocated.
	SegArenaBase uint32 = 0x8500_0000
	// HashBase is the bucket array of the pilot-study hash table (head
	// pointers); entry records are allocated after it.
	HashBase      uint32 = 0x8600_0000
	HashArenaBase uint32 = 0x8601_0000
	// HashBuckets is the bucket count (power of two).
	HashBuckets uint32 = 1024
)

// Config selects the bitmap geometry and entry encoding.
type Config struct {
	// SegWords is the number of program words per bitmap segment (power of
	// two, >= 32). The paper uses 128.
	SegWords uint32
	// Flags, when set, stores the paper's monitored/unmonitored flag in the
	// low bit of each segment-table entry (entry = segment pointer | 1 when
	// the segment holds monitored words). Segment-caching write checks need
	// the flag; the plain bitmap lookup wants clean pointers so its 12
	// instruction sequence can use the entry directly.
	Flags bool
}

// DefaultConfig is the paper's choice: 128-word segments.
var DefaultConfig = Config{SegWords: 128, Flags: false}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.SegWords < 32 || c.SegWords&(c.SegWords-1) != 0 {
		return fmt.Errorf("monitor: SegWords must be a power of two >= 32, got %d", c.SegWords)
	}
	if c.SegWords > 1<<14 {
		return fmt.Errorf("monitor: SegWords too large (%d)", c.SegWords)
	}
	return nil
}

// SegShift returns log2 of the segment size in bytes.
func (c Config) SegShift() uint32 {
	s := uint32(0)
	for b := c.SegWords * 4; b > 1; b >>= 1 {
		s++
	}
	return s
}

// SegBytesPerBitmap returns the byte size of one private segment's bitmap.
func (c Config) SegBytesPerBitmap() uint32 { return c.SegWords / 8 }
