package monitor

import (
	"fmt"
	"sync"

	"databreak/internal/machine"
)

// This file is the multi-session front end of the monitored region service:
// a Server multiplexes N independent (machine, service) sessions in one
// process, giving each a lifecycle (attach, control operations, run,
// detach) and fanning every session's monitor hits into one channel.
//
// # Lock ordering (see DESIGN.md §7)
//
//	Server.mu  >  Session.mu  >  leaf locks (hit-queue mu, bitmap.Bitmap mu)
//
// Server.mu guards only the session registry; it is never held while a
// session executes. Session.mu is THE per-machine serialization point the
// machine and service docs demand: execution slices (RunFor), region
// create/delete, PreMonitor/PostMonitor-style text patching (Do with
// machine.PatchInstr), and debugger reads all take it. Hit delivery happens
// while Session.mu is held (the trap fires inside RunFor), so the fan-in
// queue never blocks: enqueue is O(1) under its own mutex and a pump
// goroutine drains it to the Hits channel outside all session locks.

// SessionHit is one monitor hit tagged with the session that produced it.
type SessionHit struct {
	Session int
	Hit     Hit
}

// Server multiplexes monitored-region sessions. Create with NewServer; every
// method is safe for concurrent use.
type Server struct {
	mu       sync.Mutex
	sessions map[int]*Session
	nextID   int
	closed   bool

	q *hitQueue
	// hits carries the fan-in; closed by the pump after Close drains it.
	hits chan SessionHit
	// done releases a pump blocked on an unconsumed hits channel at Close.
	done chan struct{}
}

// NewServer returns a running server. Call Close when done to stop the hit
// pump and close the Hits channel.
func NewServer() *Server {
	srv := &Server{
		sessions: make(map[int]*Session),
		q:        newHitQueue(),
		hits:     make(chan SessionHit, 64),
		done:     make(chan struct{}),
	}
	go srv.pump()
	return srv
}

// Hits returns the fan-in channel carrying every session's monitor hits.
// Consuming it is optional: an unread backlog accumulates in an unbounded
// queue and never blocks any session. The channel closes after Close;
// hits still unread when Close is called may be dropped.
func (srv *Server) Hits() <-chan SessionHit { return srv.hits }

// pump moves hits from the unbounded queue to the channel. Runs outside all
// session locks, so a slow (or absent) consumer never stalls execution.
func (srv *Server) pump() {
	for {
		h, ok := srv.q.take()
		if !ok {
			close(srv.hits)
			return
		}
		select {
		case srv.hits <- h:
		case <-srv.done:
			// Closed with no consumer left: drop the backlog and shut down.
			close(srv.hits)
			return
		}
	}
}

// Attach creates a session around m: a fresh Service with the given
// geometry, hit delivery wired into the server's fan-in, and a per-machine
// mutex serializing all further access to m. The caller must not touch m
// directly afterwards — go through Session.Do.
func (srv *Server) Attach(cfg Config, m *machine.Machine) (*Session, error) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.closed {
		return nil, fmt.Errorf("monitor: server is closed")
	}
	svc, err := NewService(cfg, m)
	if err != nil {
		return nil, err
	}
	srv.nextID++
	s := &Session{id: srv.nextID, srv: srv, m: m, svc: svc}
	svc.OnHit = func(h Hit) {
		// Called under Session.mu (traps fire inside RunFor/Do); enqueue
		// only, so delivery cannot deadlock against control operations.
		srv.q.put(SessionHit{Session: s.id, Hit: h})
	}
	srv.sessions[s.id] = s
	return s, nil
}

// Session returns the live session with the given id, or nil.
func (srv *Server) Session(id int) *Session {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.sessions[id]
}

// SessionCount returns the number of live sessions.
func (srv *Server) SessionCount() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return len(srv.sessions)
}

// Close detaches every live session, stops the hit pump, and closes the
// Hits channel (after draining queued hits). Idempotent.
func (srv *Server) Close() {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		return
	}
	srv.closed = true
	live := make([]*Session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		live = append(live, s)
	}
	srv.mu.Unlock()
	// Detach outside srv.mu: teardown takes Session.mu, and the lock order
	// is Server.mu > Session.mu only for nested acquisition on the attach
	// path; holding both here is unnecessary.
	for _, s := range live {
		s.Detach()
	}
	srv.q.close()
	close(srv.done)
}

func (srv *Server) drop(id int) {
	srv.mu.Lock()
	delete(srv.sessions, id)
	srv.mu.Unlock()
}

// runSlice is how many instructions a session executes per lock acquisition.
// Control operations from other goroutines interleave at these boundaries.
// The value trades lock churn against control-op latency; it has NO effect
// on simulated counts (RunFor slicing is count-identical by construction).
const runSlice = 4096

// Session is one (machine, service) pair multiplexed by a Server. Its mutex
// is the per-machine serialization point: Run executes in runSlice-sized
// locked slices, and every control surface (Do, CreateRegion, DeleteRegion)
// takes the same mutex, so debugger edits land only at slice boundaries —
// never inside a dispatched block.
type Session struct {
	id  int
	srv *Server

	mu     sync.Mutex
	m      *machine.Machine
	svc    *Service
	closed bool
}

// ID returns the session's server-unique id (tags its SessionHits).
func (s *Session) ID() int { return s.id }

// Do runs fn with exclusive access to the session's machine and service.
// This is the sanctioned way to reach them: region create/delete, text
// patching via machine.PatchInstr, elim.Runtime pre/post-monitor flows, and
// debugger reads all belong inside fn. fn must not retain either pointer,
// call back into this Session, or block on another session's work (lock
// ordering: Session.mu is held).
func (s *Session) Do(fn func(m *machine.Machine, svc *Service) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("monitor: session %d is detached", s.id)
	}
	return fn(s.m, s.svc)
}

// CreateRegion installs a monitored region, serialized against execution.
func (s *Session) CreateRegion(addr, size uint32) error {
	return s.Do(func(_ *machine.Machine, svc *Service) error {
		return svc.CreateRegion(addr, size)
	})
}

// DeleteRegion removes a monitored region, serialized against execution.
func (s *Session) DeleteRegion(addr, size uint32) error {
	return s.Do(func(_ *machine.Machine, svc *Service) error {
		return svc.DeleteRegion(addr, size)
	})
}

// Run executes the session's program to completion (or fault), releasing the
// session lock between runSlice-instruction slices so concurrent control
// operations can interleave. Simulated counts are bit-identical to an
// uninterrupted machine.Run regardless of interleaving: debugger operations
// are cycle-free by construction, and slicing itself does not perturb the
// cost model (see machine.RunFor).
func (s *Session) Run() (int32, error) {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return 0, fmt.Errorf("monitor: session %d is detached", s.id)
		}
		code, halted, err := s.m.RunFor(runSlice)
		s.mu.Unlock()
		if err != nil {
			return 0, err
		}
		if halted {
			return code, nil
		}
	}
}

// Detach tears the session down: it unhooks the service from the machine
// and removes the session from the server. Queued hits from this session
// still drain to the Hits channel. Idempotent; operations after Detach
// return errors.
func (s *Session) Detach() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.svc.Detach()
	s.mu.Unlock()
	s.srv.drop(s.id)
}

// hitQueue is an unbounded MPSC queue: sessions enqueue under their own
// mutexes; the server's pump goroutine is the single consumer.
type hitQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []SessionHit
	closed bool
}

func newHitQueue() *hitQueue {
	q := &hitQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *hitQueue) put(h SessionHit) {
	q.mu.Lock()
	q.items = append(q.items, h)
	q.mu.Unlock()
	q.cond.Signal()
}

// take blocks until an item or close; ok=false means closed and drained.
func (q *hitQueue) take() (SessionHit, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return SessionHit{}, false
	}
	h := q.items[0]
	q.items = q.items[1:]
	return h, true
}

func (q *hitQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
