package monitor

import (
	"context"
	"fmt"
	"sync"

	"databreak/internal/machine"
)

// This file is the multi-session front end of the monitored region service:
// a Server multiplexes N independent (machine, service) sessions in one
// process, giving each a lifecycle (attach, control operations, run,
// detach) and fanning every session's monitor hits into one channel.
//
// # Lock ordering (see DESIGN.md §7)
//
//	Server.mu  >  Session.mu  >  leaf locks (hit-queue mu, bitmap.Bitmap mu)
//
// Server.mu guards only the session registry; it is never held while a
// session executes. Session.mu is THE per-machine serialization point the
// machine and service docs demand: execution slices (RunFor), region
// create/delete, PreMonitor/PostMonitor-style text patching (Do with
// machine.PatchInstr), and debugger reads all take it. Hit delivery happens
// while Session.mu is held (the trap fires inside RunFor), so the fan-in
// queue must never deadlock: enqueue is O(1) under its own mutex and a pump
// goroutine drains it to the Hits channel outside all session locks. With a
// bounded queue (Options.QueueCap) enqueue may BLOCK when the consumer lags
// — that stall is the backpressure contract: the producing session pauses
// mid-slice until the pump frees a slot, throttling execution to the
// delivery rate instead of growing an unbounded backlog. The pump never
// takes a session lock, so a blocked producer always drains.

// SessionHit is one monitor hit tagged with the session that produced it.
type SessionHit struct {
	Session int
	Hit     Hit
}

// Options tunes a Server beyond the zero-config NewServer defaults.
type Options struct {
	// QueueCap bounds the hit fan-in admission queue. 0 means unbounded
	// (NewServer's behavior): hits never block a session, an unread backlog
	// grows without limit. A positive cap applies backpressure: a session
	// delivering a hit into a full queue blocks (inside its RunFor slice)
	// until the pump drains a slot.
	QueueCap int
	// MaxSessions caps concurrently attached sessions; Attach beyond the
	// cap fails with ErrServerFull. 0 means unlimited. This is the
	// admission-control half of the mrsd shard design: placement is decided
	// upstream, the shard refuses work past its configured capacity rather
	// than degrading every resident session.
	MaxSessions int
}

// ErrServerFull is returned by Attach when Options.MaxSessions is reached.
var ErrServerFull = fmt.Errorf("monitor: server at session capacity")

// Server multiplexes monitored-region sessions. Create with NewServer or
// NewServerOpt; every method is safe for concurrent use.
type Server struct {
	mu       sync.Mutex
	sessions map[int]*Session
	nextID   int
	closed   bool
	opts     Options

	q *hitQueue
	// hits carries the fan-in; closed by the pump after Close drains it.
	hits chan SessionHit
	// done releases a pump blocked on an unconsumed hits channel at Close.
	done chan struct{}
	// pumpDone is closed when the pump goroutine exits; Close/Shutdown join
	// it so a stopped server leaves no goroutine behind.
	pumpDone chan struct{}
}

// NewServer returns a running server with an unbounded hit queue and no
// session cap. Call Close (or Shutdown) when done to stop the hit pump and
// close the Hits channel.
func NewServer() *Server { return NewServerOpt(Options{}) }

// NewServerOpt returns a running server with the given options.
func NewServerOpt(opts Options) *Server {
	srv := &Server{
		sessions: make(map[int]*Session),
		opts:     opts,
		q:        newHitQueue(opts.QueueCap),
		hits:     make(chan SessionHit, 64),
		done:     make(chan struct{}),
		pumpDone: make(chan struct{}),
	}
	go srv.pump()
	return srv
}

// Hits returns the fan-in channel carrying every session's monitor hits.
// With an unbounded queue consuming it is optional: an unread backlog
// accumulates and never blocks any session. With Options.QueueCap set, a
// full queue blocks producing sessions until the consumer catches up. The
// channel closes after Close; hits still unread when Close is called may be
// dropped (use Shutdown to drain them first).
func (srv *Server) Hits() <-chan SessionHit { return srv.hits }

// pump moves hits from the queue to the channel. Runs outside all session
// locks, so a slow (or absent) consumer never stalls execution beyond the
// configured queue bound.
func (srv *Server) pump() {
	defer close(srv.pumpDone)
	for {
		h, ok := srv.q.take()
		if !ok {
			close(srv.hits)
			return
		}
		select {
		case srv.hits <- h:
		case <-srv.done:
			// Closed with no consumer left: drop the backlog and shut down.
			close(srv.hits)
			return
		}
	}
}

// Attach creates a session around m: a fresh Service with the given
// geometry, hit delivery wired into the server's fan-in, and a per-machine
// mutex serializing all further access to m. The caller must not touch m
// directly afterwards — go through Session.Do.
func (srv *Server) Attach(cfg Config, m *machine.Machine) (*Session, error) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.closed {
		return nil, fmt.Errorf("monitor: server is closed")
	}
	if srv.opts.MaxSessions > 0 && len(srv.sessions) >= srv.opts.MaxSessions {
		return nil, ErrServerFull
	}
	svc, err := NewService(cfg, m)
	if err != nil {
		return nil, err
	}
	srv.nextID++
	s := &Session{id: srv.nextID, srv: srv, m: m, svc: svc}
	svc.OnHit = func(h Hit) {
		// Called under Session.mu (traps fire inside RunFor/Do); enqueue
		// never takes another session's lock, so delivery cannot deadlock
		// against control operations — though with a bounded queue it may
		// block here until the pump drains a slot (backpressure).
		srv.q.put(SessionHit{Session: s.id, Hit: h})
	}
	srv.sessions[s.id] = s
	return s, nil
}

// Session returns the live session with the given id, or nil.
func (srv *Server) Session(id int) *Session {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.sessions[id]
}

// SessionCount returns the number of live sessions.
func (srv *Server) SessionCount() int {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return len(srv.sessions)
}

// Close detaches every live session, stops the hit pump, and closes the
// Hits channel. Queued hits drain to a present consumer on a best-effort
// basis; with no consumer they are dropped. Idempotent (a second call waits
// for the first to finish tearing down, then returns).
func (srv *Server) Close() { srv.shutdown(nil) }

// Shutdown is the graceful form of Close: it stops admitting sessions,
// detaches every live session (in-flight Run calls return a detached error
// at their next slice boundary), then WAITS — until ctx expires — for the
// hit queue to drain to the Hits consumer before closing the channel. With
// a consumer reading Hits until it closes, no queued hit is lost. Returns
// ctx.Err() if the drain deadline passed with hits still queued (they are
// then dropped, matching Close).
func (srv *Server) Shutdown(ctx context.Context) error { return srv.shutdown(ctx) }

func (srv *Server) shutdown(ctx context.Context) error {
	srv.mu.Lock()
	if srv.closed {
		srv.mu.Unlock()
		// Second caller: wait for the first teardown to finish.
		<-srv.pumpDone
		return nil
	}
	srv.closed = true
	live := make([]*Session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		live = append(live, s)
	}
	srv.mu.Unlock()
	// Lift the queue bound first: a session blocked delivering a hit into a
	// full queue holds its Session.mu, and Detach below needs that lock.
	// Draining mode turns blocked puts into plain appends so every producer
	// makes progress to its next slice boundary and observes the detach.
	srv.q.drainMode()
	// Detach outside srv.mu: teardown takes Session.mu, and the lock order
	// is Server.mu > Session.mu only for nested acquisition on the attach
	// path; holding both here is unnecessary.
	for _, s := range live {
		s.Detach()
	}
	var err error
	if ctx != nil {
		select {
		case <-srv.q.emptied():
		case <-ctx.Done():
			err = ctx.Err()
		}
	}
	srv.q.close()
	close(srv.done)
	<-srv.pumpDone
	return err
}

func (srv *Server) drop(id int) {
	srv.mu.Lock()
	delete(srv.sessions, id)
	srv.mu.Unlock()
}

// runSlice is how many instructions a session executes per lock acquisition.
// Control operations from other goroutines interleave at these boundaries.
// The value trades lock churn against control-op latency; it has NO effect
// on simulated counts (RunFor slicing is count-identical by construction).
const runSlice = 4096

// Session is one (machine, service) pair multiplexed by a Server. Its mutex
// is the per-machine serialization point: Run executes in runSlice-sized
// locked slices, and every control surface (Do, CreateRegion, DeleteRegion)
// takes the same mutex, so debugger edits land only at slice boundaries —
// never inside a dispatched block.
type Session struct {
	id  int
	srv *Server

	mu     sync.Mutex
	m      *machine.Machine
	svc    *Service
	closed bool
}

// ID returns the session's server-unique id (tags its SessionHits).
func (s *Session) ID() int { return s.id }

// Do runs fn with exclusive access to the session's machine and service.
// This is the sanctioned way to reach them: region create/delete, text
// patching via machine.PatchInstr, elim.Runtime pre/post-monitor flows, and
// debugger reads all belong inside fn. fn must not retain either pointer,
// call back into this Session, or block on another session's work (lock
// ordering: Session.mu is held).
func (s *Session) Do(fn func(m *machine.Machine, svc *Service) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("monitor: session %d is detached", s.id)
	}
	return fn(s.m, s.svc)
}

// CreateRegion installs a monitored region, serialized against execution.
func (s *Session) CreateRegion(addr, size uint32) error {
	return s.Do(func(_ *machine.Machine, svc *Service) error {
		return svc.CreateRegion(addr, size)
	})
}

// CreateRegionKind installs a region delivering only hits of the access
// kinds in k, serialized against execution.
func (s *Session) CreateRegionKind(addr, size uint32, k Kind) error {
	return s.Do(func(_ *machine.Machine, svc *Service) error {
		return svc.CreateRegionKind(addr, size, k)
	})
}

// CreateTransitionRegion installs a transition watchpoint, serialized
// against execution.
func (s *Session) CreateTransitionRegion(addr, size uint32, pred Predicate) error {
	return s.Do(func(_ *machine.Machine, svc *Service) error {
		return svc.CreateTransitionRegion(addr, size, pred)
	})
}

// DeleteRegion removes a monitored region, serialized against execution.
func (s *Session) DeleteRegion(addr, size uint32) error {
	return s.Do(func(_ *machine.Machine, svc *Service) error {
		return svc.DeleteRegion(addr, size)
	})
}

// Run executes the session's program to completion (or fault), releasing the
// session lock between runSlice-instruction slices so concurrent control
// operations can interleave. Simulated counts are bit-identical to an
// uninterrupted machine.Run regardless of interleaving: debugger operations
// are cycle-free by construction, and slicing itself does not perturb the
// cost model (see machine.RunFor).
func (s *Session) Run() (int32, error) {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return 0, fmt.Errorf("monitor: session %d is detached", s.id)
		}
		code, halted, err := s.m.RunFor(runSlice)
		s.mu.Unlock()
		if err != nil {
			return 0, err
		}
		if halted {
			return code, nil
		}
	}
}

// Detach tears the session down: it unhooks the service from the machine
// and removes the session from the server. Queued hits from this session
// still drain to the Hits channel. Idempotent; operations after Detach
// return errors.
func (s *Session) Detach() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.svc.Detach()
	s.mu.Unlock()
	s.srv.drop(s.id)
}

// hitQueue is an MPSC queue — unbounded by default, bounded with
// backpressure when cap > 0: sessions enqueue under their own mutexes (and
// block when the bound is hit); the server's pump goroutine is the single
// consumer.
type hitQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []SessionHit
	cap      int // 0 = unbounded
	draining bool
	closed   bool
}

func newHitQueue(capacity int) *hitQueue {
	q := &hitQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// put enqueues a hit, blocking while a bounded queue is full. After close,
// hits are silently dropped (the session is being torn down).
func (q *hitQueue) put(h SessionHit) {
	q.mu.Lock()
	for q.cap > 0 && len(q.items) >= q.cap && !q.closed && !q.draining {
		q.cond.Wait()
	}
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, h)
	q.mu.Unlock()
	q.cond.Signal()
}

// take blocks until an item or close; ok=false means closed and drained.
func (q *hitQueue) take() (SessionHit, bool) {
	q.mu.Lock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		q.mu.Unlock()
		return SessionHit{}, false
	}
	h := q.items[0]
	q.items = q.items[1:]
	q.mu.Unlock()
	// Wake a producer blocked on the bound, or an emptied() waiter.
	q.cond.Broadcast()
	return h, true
}

// drainMode lifts the capacity bound, releasing producers blocked in put so
// shutdown can take their session locks.
func (q *hitQueue) drainMode() {
	q.mu.Lock()
	q.draining = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// emptied returns a channel closed once the queue has fully drained (or was
// closed). Used by Shutdown to wait for the pump to hand every queued hit
// to the consumer.
func (q *hitQueue) emptied() <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		q.mu.Lock()
		for len(q.items) > 0 && !q.closed {
			q.cond.Wait()
		}
		q.mu.Unlock()
		close(ch)
	}()
	return ch
}

func (q *hitQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
