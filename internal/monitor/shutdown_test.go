package monitor

import (
	"context"
	"sync"
	"testing"
	"time"

	"databreak/internal/cache"
	"databreak/internal/machine"
)

// TestShutdownDrainsQueuedHits: hits enqueued before Shutdown must all reach
// a consumer reading until the channel closes — the graceful path loses
// nothing.
func TestShutdownDrainsQueuedHits(t *testing.T) {
	srv := NewServer()
	watched := uint32(0x2000_0000)
	const probes = 200
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	probeProg(t, watched, probes).Load(m)
	sess, err := srv.Attach(DefaultConfig, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.CreateRegion(watched, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	// All probes hit; nothing consumed yet. Start the consumer only after
	// Shutdown begins so the drain wait is actually exercised.
	got := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range srv.Hits() {
			got++
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if got != probes {
		t.Fatalf("consumer saw %d hits after graceful shutdown, want %d", got, probes)
	}
}

// TestShutdownInterruptsRunningSessions: Shutdown called mid-run must detach
// every session (Run returns a detached error at a slice boundary) and leave
// no goroutine blocked — the mid-run teardown the stress harness needs.
func TestShutdownInterruptsRunningSessions(t *testing.T) {
	srv := NewServerOpt(Options{QueueCap: 4})
	watched := uint32(0x2000_0000)
	const nSessions = 4
	errs := make(chan error, nSessions)
	for i := 0; i < nSessions; i++ {
		m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
		// Far more probes than the queue bound: with no consumer, sessions
		// block in hit delivery (backpressure) until shutdown releases them.
		probeProg(t, watched, 500).Load(m)
		sess, err := srv.Attach(DefaultConfig, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.CreateRegion(watched, 4); err != nil {
			t.Fatal(err)
		}
		go func() {
			_, err := sess.Run()
			errs <- err
		}()
	}
	// Let the sessions wedge against the bounded queue, then tear down. The
	// drain deadline is short on purpose: with no consumer the queue cannot
	// empty, and Shutdown must give up at the deadline rather than hang.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	_ = srv.Shutdown(ctx)
	for i := 0; i < nSessions; i++ {
		select {
		case err := <-errs:
			if err == nil {
				// A session may legitimately finish before Shutdown lands.
				continue
			}
		case <-time.After(5 * time.Second):
			t.Fatal("session Run did not return after Shutdown")
		}
	}
	if srv.SessionCount() != 0 {
		t.Fatalf("%d sessions still registered after Shutdown", srv.SessionCount())
	}
}

// TestBoundedQueueBackpressure: with a bounded queue and a slow consumer,
// every hit still arrives exactly once — the bound throttles producers, it
// never drops.
func TestBoundedQueueBackpressure(t *testing.T) {
	srv := NewServerOpt(Options{QueueCap: 2})
	watched := uint32(0x2000_0000)
	const probes = 300
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	probeProg(t, watched, probes).Load(m)
	sess, err := srv.Attach(DefaultConfig, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.CreateRegion(watched, 4); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := sess.Run()
		done <- err
	}()
	got := 0
	for h := range srv.Hits() {
		if h.Hit.Addr != watched {
			t.Fatalf("hit at %#x", h.Hit.Addr)
		}
		got++
		if got == probes {
			break
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	var produced int64
	if err := sess.Do(func(_ *machine.Machine, svc *Service) error {
		produced = svc.HitCount
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if produced != probes {
		t.Fatalf("HitCount = %d, want %d", produced, probes)
	}
	srv.Close()
}

// TestMaxSessionsAdmission: Attach past the cap fails with ErrServerFull;
// detaching frees a slot.
func TestMaxSessionsAdmission(t *testing.T) {
	srv := NewServerOpt(Options{MaxSessions: 2})
	defer srv.Close()
	mk := func() *machine.Machine {
		m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
		probeProg(t, 0x2000_0000, 1).Load(m)
		return m
	}
	s1, err := srv.Attach(DefaultConfig, mk())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Attach(DefaultConfig, mk()); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Attach(DefaultConfig, mk()); err != ErrServerFull {
		t.Fatalf("third attach: err = %v, want ErrServerFull", err)
	}
	s1.Detach()
	if _, err := srv.Attach(DefaultConfig, mk()); err != nil {
		t.Fatalf("attach after detach: %v", err)
	}
}

// TestServiceNoHitLog: with NoHitLog the Hits slice stays empty while
// HitCount and OnHit still see every hit.
func TestServiceNoHitLog(t *testing.T) {
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	watched := uint32(0x2000_0000)
	const probes = 7
	probeProg(t, watched, probes).Load(m)
	svc, err := NewService(DefaultConfig, m)
	if err != nil {
		t.Fatal(err)
	}
	svc.NoHitLog = true
	delivered := 0
	svc.OnHit = func(Hit) { delivered++ }
	if err := svc.CreateRegion(watched, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(svc.Hits) != 0 {
		t.Fatalf("Hits logged %d entries under NoHitLog", len(svc.Hits))
	}
	if svc.HitCount != probes || delivered != probes {
		t.Fatalf("HitCount=%d delivered=%d, want %d", svc.HitCount, delivered, probes)
	}
}
