package monitor

import (
	"fmt"
	"strings"
)

// Register conventions shared by the monitor library and the check sequences
// emitted by internal/patch (see §2 and §3.1 of the paper):
//
//	%g4  segment table base (register-reserving and caching variants)
//	%g5  target address of the checked write (all variants)
//	%g6  global disabled flag (nonzero = no data breakpoints active)
//	%g7  check-in-progress flag
//	%g1  STACK segment cache  / scratch for BitmapInlineRegisters
//	%g2  BSS segment cache (shared with BSS-VAR) / range-check site id / scratch
//	%g3  HEAP segment cache / range-check upper bound / scratch
//	%l6,%l7  scratch reserved from the compiler for inline sequences
//
// The check routines below are the "hand coded assembly" of §3.3; they are
// assembled and linked into the debuggee by the patching tool.

// trap numbers (mirrors machine.Trap*; kept literal so the generated source
// stands alone).
const (
	trapHit4     = 6
	trapHit8     = 7
	trapRangeHit = 8
	trapRead4    = 10
	trapRead8    = 11
)

// Span thresholds for range-check level selection: the largest span whose
// summary-word walk at that level touches at most three words.
const (
	spanL9  = 64 * (1 << 9)  // 32 KB
	spanL14 = 64 * (1 << 14) // 1 MB
)

// LibrarySource generates the monitor library assembly for the given
// geometry. It contains:
//
//	__mrs_check_w, __mrs_check_d       plain segmented-bitmap lookup (called)
//	__mrs_miss_{stack,bss,heap}_{w,d}  segment-cache miss slow paths (called)
//	__mrs_licheck_w                    loop-invariant pre-header check
//	__mrs_range                        monotonic-write range check
//
// An invalid geometry returns an error (configs reach here from user-facing
// tools, so this is not a programmer-error panic).
func LibrarySource(cfg Config) (string, error) {
	if err := cfg.Validate(); err != nil {
		return "", fmt.Errorf("monitor: cannot generate library: %w", err)
	}
	segShift := cfg.SegShift()
	wmask := cfg.SegWords - 1
	var b strings.Builder
	p := func(format string, args ...any) {
		fmt.Fprintf(&b, format+"\n", args...)
	}

	p("! Monitor library (generated): segment size %d words", cfg.SegWords)
	p("\t.text")

	// Plain bitmap lookup, procedure-call flavor. Word and double variants
	// differ only in the tested bit mask and the trap number.
	lookup := func(name string, mask, trap int, maskEntry bool) {
		p("%s:", name)
		p("\tsave %%sp, -96, %%sp")
		p("\tmov 1, %%g7")
		p("\tsrl %%g5, %d, %%l0", segShift)
		p("\tsll %%l0, 2, %%l0")
		p("\tset %d, %%l1", SegTableBase)
		p("\tadd %%l1, %%l0, %%l0")
		p("\tld [%%l0], %%l1")
		if maskEntry {
			p("\tandn %%l1, 1, %%l1")
		}
		p("\tsrl %%g5, 2, %%l2")
		p("\tand %%l2, %d, %%l2", wmask)
		p("\tsrl %%l2, 5, %%l3")
		p("\tsll %%l3, 2, %%l3")
		p("\tadd %%l1, %%l3, %%l3")
		p("\tld [%%l3], %%l3")
		p("\tsrl %%l3, %%l2, %%l3")
		p("\tandcc %%l3, %d, %%g0", mask)
		p("\tbe %s_out", name)
		p("\tta %d", trap)
		p("%s_out:", name)
		p("\tmov 0, %%g7")
		p("\trestore")
		p("\tretl")
	}
	// In the plain-bitmap configuration table entries are clean pointers;
	// with Flags set the low bit must be masked (one extra instruction, the
	// price of supporting segment caching).
	lookup("__mrs_check_w", 1, trapHit4, cfg.Flags)
	lookup("__mrs_check_d", 3, trapHit8, cfg.Flags)
	// Read-monitoring variants (§5 extension): identical lookup, read trap.
	lookup("__mrs_checkrd_w", 1, trapRead4, cfg.Flags)
	lookup("__mrs_checkrd_d", 3, trapRead8, cfg.Flags)

	// Segment-cache miss slow paths: one per write type so each can update
	// its own reserved cache register.
	type cacheKind struct {
		name string
		reg  string
	}
	for _, ck := range []cacheKind{{"stack", "%g1"}, {"bss", "%g2"}, {"heap", "%g3"}} {
		for _, sz := range []struct {
			suffix string
			mask   int
			trap   int
		}{
			{"w", 1, trapHit4}, {"d", 3, trapHit8},
			{"rd_w", 1, trapRead4}, {"rd_d", 3, trapRead8},
		} {
			name := fmt.Sprintf("__mrs_miss_%s_%s", ck.name, sz.suffix)
			p("%s:", name)
			p("\tsave %%sp, -96, %%sp")
			p("\tmov 1, %%g7")
			p("\tsrl %%g5, %d, %%l0", segShift)
			p("\tsll %%l0, 2, %%l1")
			p("\tset %d, %%l2", SegTableBase)
			p("\tadd %%l2, %%l1, %%l1")
			p("\tld [%%l1], %%l2")
			p("\tandcc %%l2, 1, %%g0")
			p("\tbne %s_full", name)
			p("\tmov %%l0, %s", ck.reg) // unmonitored: cache this segment
			p("\tba %s_out", name)
			p("%s_full:", name)
			p("\tandn %%l2, 1, %%l2")
			p("\tsrl %%g5, 2, %%l3")
			p("\tand %%l3, %d, %%l3", wmask)
			p("\tsrl %%l3, 5, %%l4")
			p("\tsll %%l4, 2, %%l4")
			p("\tadd %%l2, %%l4, %%l4")
			p("\tld [%%l4], %%l4")
			p("\tsrl %%l4, %%l3, %%l4")
			p("\tandcc %%l4, %d, %%g0", sz.mask)
			p("\tbe %s_out", name)
			p("\tta %d", sz.trap)
			p("%s_out:", name)
			p("\tmov 0, %%g7")
			p("\trestore")
			p("\tretl")
		}
	}

	// Loop-invariant pre-header check: a plain lookup of %g5, but a
	// monitored word means "re-insert the eliminated checks for site %g2"
	// (trap 8), not a monitor hit — no write has happened yet.
	p("__mrs_licheck_w:")
	p("\tsave %%sp, -96, %%sp")
	p("\tmov 1, %%g7")
	p("\tsrl %%g5, %d, %%l0", segShift)
	p("\tsll %%l0, 2, %%l0")
	p("\tset %d, %%l1", SegTableBase)
	p("\tadd %%l1, %%l0, %%l0")
	p("\tld [%%l0], %%l1")
	if cfg.Flags {
		p("\tandn %%l1, 1, %%l1")
	}
	p("\tsrl %%g5, 2, %%l2")
	p("\tand %%l2, %d, %%l2", wmask)
	p("\tsrl %%l2, 5, %%l3")
	p("\tsll %%l3, 2, %%l3")
	p("\tadd %%l1, %%l3, %%l3")
	p("\tld [%%l3], %%l3")
	p("\tsrl %%l3, %%l2, %%l3")
	p("\tandcc %%l3, 1, %%g0")
	p("\tbe __mrs_licheck_w_out")
	p("\tmov %%g2, %%o0")
	p("\tta %d", trapRangeHit)
	p("__mrs_licheck_w_out:")
	p("\tmov 0, %%g7")
	p("\trestore")
	p("\tretl")

	// Pilot-study hash-table lookup (ASPLOS 1992 baseline): hash the target
	// address's 32-byte granule to a bucket of region records and walk the
	// chain. Several dependent memory accesses per check are exactly why the
	// paper replaced this structure with the segmented bitmap.
	for _, sz := range []struct {
		suffix string
		trap   int
	}{{"w", trapHit4}, {"d", trapHit8}} {
		name := "__mrs_hash_" + sz.suffix
		p("%s:", name)
		p("\tsave %%sp, -96, %%sp")
		p("\tmov 1, %%g7")
		p("\tsrl %%g5, 5, %%l0")
		p("\tset 40503, %%l1")
		p("\tsmul %%l0, %%l1, %%l0")
		p("\tand %%l0, %d, %%l0", HashBuckets-1)
		p("\tsll %%l0, 2, %%l0")
		p("\tset %d, %%l1", HashBase)
		p("\tadd %%l1, %%l0, %%l0")
		p("\tld [%%l0], %%l1")
		p("%s_loop:", name)
		p("\ttst %%l1")
		p("\tbe %s_out", name)
		p("\tld [%%l1], %%l2")
		p("\tcmp %%g5, %%l2")
		p("\tblu %s_next", name)
		p("\tld [%%l1+4], %%l2")
		p("\tcmp %%g5, %%l2")
		p("\tbgeu %s_next", name)
		p("\tta %d", sz.trap)
		p("\tba %s_out", name)
		p("%s_next:", name)
		p("\tld [%%l1+8], %%l1")
		p("\tba %s_loop", name)
		p("%s_out:", name)
		p("\tmov 0, %%g7")
		p("\trestore")
		p("\tretl")
	}

	// Range check: lower bound in %g5, upper bound in %g1, site id in %g2.
	// Picks the finest summary level whose word walk is at most three words,
	// then tests whole summary words (conservatively unmasked at the ends).
	p("__mrs_range:")
	p("\tsave %%sp, -96, %%sp")
	p("\tmov 1, %%g7")
	p("\tsub %%g1, %%g5, %%l0")
	p("\tset %d, %%l1", spanL9)
	p("\tcmp %%l0, %%l1")
	p("\tbleu __mrs_range_l9")
	p("\tset %d, %%l1", spanL14)
	p("\tcmp %%l0, %%l1")
	p("\tbleu __mrs_range_l14")
	p("\tsrl %%g5, 24, %%l2") // level 19: word index = bit>>5 = addr>>24
	p("\tsrl %%g1, 24, %%l3")
	p("\tset %d, %%l4", SummaryL19Base)
	p("\tba __mrs_range_loop")
	p("__mrs_range_l14:")
	p("\tsrl %%g5, 19, %%l2")
	p("\tsrl %%g1, 19, %%l3")
	p("\tset %d, %%l4", SummaryL14Base)
	p("\tba __mrs_range_loop")
	p("__mrs_range_l9:")
	p("\tsrl %%g5, 14, %%l2")
	p("\tsrl %%g1, 14, %%l3")
	p("\tset %d, %%l4", SummaryL9Base)
	p("__mrs_range_loop:")
	p("\tsll %%l2, 2, %%l5")
	p("\tadd %%l4, %%l5, %%l5")
	p("\tld [%%l5], %%l5")
	p("\ttst %%l5")
	p("\tbne __mrs_range_hit")
	p("\tcmp %%l2, %%l3")
	p("\tbge __mrs_range_out")
	p("\tinc %%l2")
	p("\tba __mrs_range_loop")
	p("__mrs_range_hit:")
	p("\tmov %%g2, %%o0")
	p("\tta %d", trapRangeHit)
	p("__mrs_range_out:")
	p("\tmov 0, %%g7")
	p("\trestore")
	p("\tretl")

	return b.String(), nil
}
