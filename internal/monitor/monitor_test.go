package monitor

import (
	"strings"
	"testing"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/sparc"
)

func newMachineWithService(t *testing.T, cfg Config) (*machine.Machine, *Service) {
	t.Helper()
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	s, err := NewService(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

// mustLib generates and parses the monitor library for cfg.
func mustLib(t *testing.T, cfg Config) *asm.Unit {
	t.Helper()
	src, err := LibrarySource(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return asm.MustParse("lib.s", src)
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{{SegWords: 0}, {SegWords: 100}, {SegWords: 16}, {SegWords: 1 << 15}} {
		if bad.Validate() == nil {
			t.Errorf("Config %+v must be invalid", bad)
		}
	}
	if DefaultConfig.Validate() != nil {
		t.Error("DefaultConfig must validate")
	}
	if got := DefaultConfig.SegShift(); got != 9 {
		t.Errorf("SegShift = %d, want 9 for 128 words", got)
	}
	if got := DefaultConfig.SegBytesPerBitmap(); got != 16 {
		t.Errorf("SegBytesPerBitmap = %d, want 16", got)
	}
}

func TestCreateSetsBitsInSimulatedMemory(t *testing.T) {
	m, s := newMachineWithService(t, DefaultConfig)
	addr := machine.DataBase + 0x40
	if err := s.CreateRegion(addr, 8); err != nil {
		t.Fatal(err)
	}
	// The segment table entry must point at a private segment.
	n := addr >> 9
	entry := uint32(m.ReadWord(SegTableBase + n*4))
	if entry < SegArenaBase {
		t.Fatalf("entry = %#x, want arena pointer", entry)
	}
	if !s.Contains(addr) || !s.Contains(addr+4) {
		t.Fatal("created words must be monitored")
	}
	if s.Contains(addr + 8) {
		t.Fatal("word past region must not be monitored")
	}
	if err := s.DeleteRegion(addr, 8); err != nil {
		t.Fatal(err)
	}
	if s.Contains(addr) {
		t.Fatal("deleted words must not be monitored")
	}
}

func TestFlagsEncoding(t *testing.T) {
	cfg := DefaultConfig
	cfg.Flags = true
	m, s := newMachineWithService(t, cfg)
	addr := machine.DataBase + 0x1000
	s.CreateRegion(addr, 4)
	n := addr >> 9
	entry := uint32(m.ReadWord(SegTableBase + n*4))
	if entry&1 == 0 {
		t.Fatal("flags config must set the monitored bit in the entry")
	}
	s.DeleteRegion(addr, 4)
	entry = uint32(m.ReadWord(SegTableBase + n*4))
	if entry&1 != 0 {
		t.Fatal("monitored bit must clear when the last region goes")
	}
}

func TestDisabledFlagTracksRegions(t *testing.T) {
	m, s := newMachineWithService(t, DefaultConfig)
	if m.Reg(sparc.G6) != 1 {
		t.Fatal("disabled flag must start set")
	}
	s.CreateRegion(machine.DataBase, 4)
	if m.Reg(sparc.G6) != 0 {
		t.Fatal("disabled flag must clear when a region exists")
	}
	s.DeleteRegion(machine.DataBase, 4)
	if m.Reg(sparc.G6) != 1 {
		t.Fatal("disabled flag must set when the last region goes")
	}
	s.DisabledOverride = true
	s.CreateRegion(machine.DataBase, 4)
	if m.Reg(sparc.G6) != 1 {
		t.Fatal("DisabledOverride must force the flag on")
	}
}

func TestRegionValidation(t *testing.T) {
	_, s := newMachineWithService(t, DefaultConfig)
	cases := []struct {
		addr, size uint32
		wantErr    string
	}{
		{machine.DataBase + 1, 4, "word aligned"},
		{machine.DataBase, 3, "word aligned"},
		{0x100, 4, "below the program"},
		{SegTableBase + 0x100, 4, "monitor structures"},
	}
	for _, c := range cases {
		err := s.CreateRegion(c.addr, c.size)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("CreateRegion(%#x,%d) err = %v, want %q", c.addr, c.size, err, c.wantErr)
		}
	}
	if err := s.CreateRegion(machine.DataBase, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateRegion(machine.DataBase+4, 4); err == nil {
		t.Fatal("overlapping region must be rejected")
	}
	if err := s.CreateRegion(machine.DataBase, 8); err == nil {
		t.Fatal("duplicate region must be rejected")
	}
	if err := s.DeleteRegion(machine.HeapBase, 4); err == nil {
		t.Fatal("deleting unknown region must be rejected")
	}
}

func TestSegmentMonitoredFlag(t *testing.T) {
	_, s := newMachineWithService(t, DefaultConfig)
	addr := machine.HeapBase + 0x2000
	if s.SegmentMonitored(addr) {
		t.Fatal("fresh segment must be unmonitored")
	}
	s.CreateRegion(addr, 4)
	s.CreateRegion(addr+8, 4)
	s.DeleteRegion(addr, 4)
	if !s.SegmentMonitored(addr) {
		t.Fatal("segment must stay monitored while one region remains")
	}
	s.DeleteRegion(addr+8, 4)
	if s.SegmentMonitored(addr) {
		t.Fatal("segment must return to unmonitored")
	}
}

func TestLibrarySourceAssembles(t *testing.T) {
	for _, cfg := range []Config{
		{SegWords: 128}, {SegWords: 128, Flags: true},
		{SegWords: 32}, {SegWords: 4096, Flags: true},
	} {
		src, err := LibrarySource(cfg)
		if err != nil {
			t.Fatalf("cfg %+v: LibrarySource: %v", cfg, err)
		}
		u, err := asm.Parse("lib.s", src)
		if err != nil {
			t.Fatalf("cfg %+v: library does not parse: %v", cfg, err)
		}
		// Link with a trivial main so labels resolve.
		mainU := asm.MustParse("m.s", "main:\n mov 0, %o0\n ta 0\n")
		if _, err := asm.Assemble(asm.Options{}, mainU, u); err != nil {
			t.Fatalf("cfg %+v: library does not assemble: %v", cfg, err)
		}
	}
}

// TestCheckRoutineAgainstService calls the library's __mrs_check_w directly
// on a grid of addresses and confirms it traps exactly where the Go-side
// service says a monitored word lies.
func TestCheckRoutineAgainstService(t *testing.T) {
	for _, flags := range []bool{false, true} {
		cfg := DefaultConfig
		cfg.Flags = flags
		src := `
main:
	save %sp, -96, %sp
	set probes, %l0
	mov 0, %l1
loop:
	cmp %l1, 8
	bge done
	sll %l1, 2, %o0
	add %l0, %o0, %o0
	ld [%o0], %g5
	call __mrs_check_w
	inc %l1
	ba loop
done:
	mov 0, %i0
	restore
	retl
	.data
probes:
	.word 0x20000000
	.word 0x20000004
	.word 0x20000008
	.word 0x2000000c
	.word 0x40000000
	.word 0x40000100
	.word 0xe0000000
	.word 0x20000200
`
		u := asm.MustParse("p.s", src)
		lib := mustLib(t, cfg)
		prog, err := asm.Assemble(asm.Options{AddStartup: true}, u, lib)
		if err != nil {
			t.Fatal(err)
		}
		m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
		prog.Load(m)
		s, err := NewService(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		// Monitor words 1-2 of the probe grid and one far heap word.
		if err := s.CreateRegion(0x2000_0004, 8); err != nil {
			t.Fatal(err)
		}
		if err := s.CreateRegion(0x4000_0100, 4); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("flags=%v: %v", flags, err)
		}
		var got []uint32
		for _, h := range s.Hits {
			got = append(got, h.Addr)
		}
		want := []uint32{0x2000_0004, 0x2000_0008, 0x4000_0100}
		if len(got) != len(want) {
			t.Fatalf("flags=%v: hits = %#v, want %#v", flags, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("flags=%v: hits = %#v, want %#v", flags, got, want)
			}
		}
	}
}

// TestRangeRoutine exercises __mrs_range directly: lo in %g5, hi in %g1,
// site id in %g2.
func TestRangeRoutine(t *testing.T) {
	src := `
main:
	save %sp, -96, %sp
	! probe 1: [0x20000000, 0x20000fff] - contains a monitored word
	set 0x20000000, %g5
	set 0x20000fff, %g1
	mov 11, %g2
	call __mrs_range
	! probe 2: far range with no monitored words
	set 0x60000000, %g5
	set 0x60000fff, %g1
	mov 22, %g2
	call __mrs_range
	! probe 3: large span (level 14) that covers the region
	set 0x20000000, %g5
	set 0x200fffff, %g1
	mov 33, %g2
	call __mrs_range
	! probe 4: huge span (level 19) that covers the region
	set 0x10000000, %g5
	set 0x30000000, %g1
	mov 44, %g2
	call __mrs_range
	mov 0, %i0
	restore
	retl
`
	u := asm.MustParse("p.s", src)
	lib := mustLib(t, DefaultConfig)
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, u, lib)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.Load(m)
	s, err := NewService(DefaultConfig, m)
	if err != nil {
		t.Fatal(err)
	}
	var rangeHits []int32
	m.OnRangeHit = func(id int32) { rangeHits = append(rangeHits, id) }
	if err := s.CreateRegion(0x2000_0800, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int32{11, 33, 44}
	if len(rangeHits) != len(want) {
		t.Fatalf("range hits = %v, want %v", rangeHits, want)
	}
	for i := range want {
		if rangeHits[i] != want[i] {
			t.Fatalf("range hits = %v, want %v", rangeHits, want)
		}
	}
}

// TestLICheckRoutine exercises the loop-invariant pre-header check.
func TestLICheckRoutine(t *testing.T) {
	src := `
main:
	save %sp, -96, %sp
	set 0x20000040, %g5
	mov 5, %g2
	call __mrs_licheck_w
	set 0x20000080, %g5
	mov 6, %g2
	call __mrs_licheck_w
	mov 0, %i0
	restore
	retl
`
	u := asm.MustParse("p.s", src)
	lib := mustLib(t, DefaultConfig)
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, u, lib)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.Load(m)
	s, _ := NewService(DefaultConfig, m)
	var ids []int32
	m.OnRangeHit = func(id int32) { ids = append(ids, id) }
	s.CreateRegion(0x2000_0040, 4)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 5 {
		t.Fatalf("LI check ids = %v, want [5]", ids)
	}
	if len(s.Hits) != 0 {
		t.Fatal("LI pre-header check must not report a monitor hit")
	}
}

func TestHitsRecordContext(t *testing.T) {
	m, s := newMachineWithService(t, DefaultConfig)
	u := asm.MustParse("p.s", `
main:
	save %sp, -96, %sp
	set 0x20000000, %o0
	st %g0, [%o0]
	set 0x20000000, %g5
	call __mrs_check_w
	mov 0, %i0
	restore
	retl
`)
	lib := mustLib(t, DefaultConfig)
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, u, lib)
	if err != nil {
		t.Fatal(err)
	}
	prog.Load(m)
	s.Reinstall()
	s.CreateRegion(0x2000_0000, 4)
	var observed int
	s.OnHit = func(h Hit) { observed++ }
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.Hits) != 1 || observed != 1 {
		t.Fatalf("hits = %d observed = %d", len(s.Hits), observed)
	}
	h := s.Hits[0]
	if h.Addr != 0x2000_0000 || h.Size != 4 || h.Instrs == 0 {
		t.Fatalf("hit = %+v", h)
	}
}
