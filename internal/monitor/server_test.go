package monitor

import (
	"sync"
	"testing"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/machine"
)

// probeProg builds a program that calls __mrs_check_w on addr n times.
func probeProg(t *testing.T, addr uint32, n int) *asm.Program {
	t.Helper()
	src := "main:\n\tsave %sp, -96, %sp\n"
	for i := 0; i < n; i++ {
		src += "\tset " + itoa(addr) + ", %g5\n\tcall __mrs_check_w\n"
	}
	src += "\tmov 0, %i0\n\trestore\n\tretl\n"
	u := asm.MustParse("p.s", src)
	lib := mustLib(t, DefaultConfig)
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, u, lib)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func itoa(v uint32) string {
	const hex = "0123456789abcdef"
	buf := [10]byte{'0', 'x'}
	for i := 0; i < 8; i++ {
		buf[2+i] = hex[(v>>(28-4*i))&0xf]
	}
	return string(buf[:])
}

// TestServerHitFanIn runs several sessions concurrently and checks every
// session's hits arrive on the shared channel, correctly tagged.
func TestServerHitFanIn(t *testing.T) {
	srv := NewServer()
	const nSessions = 4
	const nProbes = 5
	watched := uint32(0x2000_0000)

	type result struct {
		id   int
		err  error
		code int32
	}
	results := make(chan result, nSessions)
	var wg sync.WaitGroup
	for i := 0; i < nSessions; i++ {
		m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
		probeProg(t, watched, nProbes).Load(m)
		sess, err := srv.Attach(DefaultConfig, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.CreateRegion(watched, 4); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			code, err := s.Run()
			results <- result{id: s.ID(), err: err, code: code}
		}(sess)
	}

	perSession := make(map[int]int)
	got := 0
	for got < nSessions*nProbes {
		h := <-srv.Hits()
		if h.Hit.Addr != watched {
			t.Fatalf("hit at %#x, want %#x", h.Hit.Addr, watched)
		}
		perSession[h.Session]++
		got++
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.err != nil {
			t.Fatalf("session %d: %v", r.id, r.err)
		}
		if r.code != 0 {
			t.Fatalf("session %d: exit = %d", r.id, r.code)
		}
	}
	if len(perSession) != nSessions {
		t.Fatalf("hits from %d sessions, want %d", len(perSession), nSessions)
	}
	for id, n := range perSession {
		if n != nProbes {
			t.Fatalf("session %d delivered %d hits, want %d", id, n, nProbes)
		}
	}
	srv.Close()
	// The channel must close (pump shut down) once the server is closed.
	for range srv.Hits() {
	}
}

// TestSessionLifecycle covers attach/detach/teardown semantics.
func TestSessionLifecycle(t *testing.T) {
	srv := NewServer()
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	probeProg(t, 0x2000_0000, 1).Load(m)
	sess, err := srv.Attach(DefaultConfig, m)
	if err != nil {
		t.Fatal(err)
	}
	if srv.SessionCount() != 1 || srv.Session(sess.ID()) != sess {
		t.Fatal("session not registered")
	}
	if err := sess.Do(func(m *machine.Machine, svc *Service) error {
		return svc.CreateRegion(0x2000_0000, 4)
	}); err != nil {
		t.Fatal(err)
	}
	sess.Detach()
	sess.Detach() // idempotent
	if srv.SessionCount() != 0 || srv.Session(sess.ID()) != nil {
		t.Fatal("detached session still registered")
	}
	if err := sess.CreateRegion(0x2000_0100, 4); err == nil {
		t.Fatal("operations on a detached session must fail")
	}
	if _, err := sess.Run(); err == nil {
		t.Fatal("Run on a detached session must fail")
	}
	srv.Close()
	srv.Close() // idempotent
	if _, err := srv.Attach(DefaultConfig, m); err == nil {
		t.Fatal("attach after Close must fail")
	}
}

// TestSessionMidRunControl interleaves region create/delete with a running
// session and confirms hits appear exactly while the region is installed.
func TestSessionMidRunControl(t *testing.T) {
	srv := NewServer()
	defer srv.Close()
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	const probes = 400
	watched := uint32(0x2000_0000)
	probeProg(t, watched, probes).Load(m)
	sess, err := srv.Attach(DefaultConfig, m)
	if err != nil {
		t.Fatal(err)
	}
	// A far region keeps the service enabled while the watched one churns.
	if err := sess.CreateRegion(0x7000_0000, 4); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := sess.Run()
		done <- err
	}()
	// Churn the watched region while the program runs. Install/remove must
	// always succeed regardless of where the session is in its run.
	installed := false
	for i := 0; i < 50; i++ {
		if installed {
			if err := sess.DeleteRegion(watched, 4); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := sess.CreateRegion(watched, 4); err != nil {
				t.Fatal(err)
			}
		}
		installed = !installed
	}
	if installed {
		if err := sess.DeleteRegion(watched, 4); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Hit count depends on interleaving; the invariant is bounds.
	var hits int
	if err := sess.Do(func(_ *machine.Machine, svc *Service) error {
		hits = len(svc.Hits)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if hits > probes {
		t.Fatalf("%d hits from %d probes", hits, probes)
	}
}
