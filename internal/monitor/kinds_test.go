package monitor

import (
	"testing"

	"databreak/internal/machine"
)

// Calls storeHit/readHit directly, simulating the post-access traps the
// patched check sequences raise, to pin the Go-side kind filtering and
// transition predicate semantics without running simulated code.

func TestKindFilteringSuppressesWrongKind(t *testing.T) {
	m, s := newMachineWithService(t, DefaultConfig)
	storeAddr := machine.DataBase
	loadAddr := machine.DataBase + 16
	allAddr := machine.DataBase + 32
	if err := s.CreateRegionKind(storeAddr, 4, KindStore); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateRegionKind(loadAddr, 4, KindLoad); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateRegion(allAddr, 4); err != nil {
		t.Fatal(err)
	}
	_ = m

	// Wrong-kind traps are suppressed entirely: no count, no log.
	s.readHit(storeAddr, 4)
	s.storeHit(loadAddr, 4)
	if s.HitCount != 0 || len(s.Hits) != 0 {
		t.Fatalf("suppressed traps were delivered: count=%d hits=%+v", s.HitCount, s.Hits)
	}

	s.storeHit(storeAddr, 4)
	s.readHit(loadAddr, 4)
	s.storeHit(allAddr, 4)
	s.readHit(allAddr, 4)
	if s.HitCount != 4 || len(s.Hits) != 4 {
		t.Fatalf("delivered = %d (%d logged), want 4", s.HitCount, len(s.Hits))
	}
	if s.Hits[0].Read || s.Hits[0].Addr != storeAddr {
		t.Errorf("hit 0 = %+v, want store at %#x", s.Hits[0], storeAddr)
	}
	if !s.Hits[1].Read || s.Hits[1].Addr != loadAddr {
		t.Errorf("hit 1 = %+v, want read at %#x", s.Hits[1], loadAddr)
	}
}

func TestTransitionShadowSnapshotAtCreate(t *testing.T) {
	m, s := newMachineWithService(t, DefaultConfig)
	addr := machine.DataBase
	m.WriteWord(addr, 5)
	if err := s.CreateTransitionRegion(addr, 4, Predicate{Kind: PredChanged}); err != nil {
		t.Fatal(err)
	}
	// A store of the value already in memory at create time must not fire.
	s.storeHit(addr, 4)
	if s.HitCount != 0 {
		t.Fatalf("redundant store fired: %+v", s.Hits)
	}
	m.WriteWord(addr, 6)
	s.storeHit(addr, 4)
	if s.HitCount != 1 {
		t.Fatalf("changed store did not fire")
	}
	h := s.Hits[0]
	if h.Old != 5 || h.New != 6 {
		t.Fatalf("old/new = %d/%d, want 5/6", h.Old, h.New)
	}
}

func TestTransitionPredicates(t *testing.T) {
	cases := []struct {
		name   string
		pred   Predicate
		init   int32
		stores []int32 // successive stored values
		fires  []bool  // whether each store delivers
	}{
		{"changed", Predicate{Kind: PredChanged}, 5,
			[]int32{5, 6, 6, 5}, []bool{false, true, false, true}},
		{"nonzero", Predicate{Kind: PredNonzero}, 6,
			[]int32{3, 0, 0, 9}, []bool{false, true, false, true}},
		{"sign", Predicate{Kind: PredSign}, 1,
			[]int32{2, -1, -7, 3}, []bool{false, true, false, true}},
		{"mask", Predicate{Kind: PredMask, Arg: 0xF0}, 0x13,
			[]int32{0x14, 0x24, 0x2F, 0x3F}, []bool{false, true, false, true}},
		{"eq", Predicate{Kind: PredEQ, Arg: 7}, 3,
			[]int32{4, 7, 7, 9}, []bool{false, true, false, true}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			m, s := newMachineWithService(t, DefaultConfig)
			addr := machine.DataBase
			m.WriteWord(addr, c.init)
			if err := s.CreateTransitionRegion(addr, 4, c.pred); err != nil {
				t.Fatal(err)
			}
			delivered := int64(0)
			for i, v := range c.stores {
				m.WriteWord(addr, v)
				s.storeHit(addr, 4)
				if c.fires[i] {
					delivered++
				}
				if s.HitCount != delivered {
					t.Fatalf("after store %d (value %d): delivered=%d, want %d",
						i, v, s.HitCount, delivered)
				}
			}
			if int64(len(s.Hits)) != delivered {
				t.Fatalf("hit log %d entries, want %d", len(s.Hits), delivered)
			}
		})
	}
}

func TestTransitionRegionValidation(t *testing.T) {
	_, s := newMachineWithService(t, DefaultConfig)
	if err := s.CreateTransitionRegion(machine.DataBase, 4, Predicate{Kind: PredKind(99)}); err == nil {
		t.Error("invalid predicate kind must be rejected")
	}
	if err := s.CreateRegionKind(machine.DataBase, 4, Kind(0)); err == nil {
		t.Error("zero kind must be rejected")
	}
	if err := s.CreateRegionKind(machine.DataBase, 4, Kind(7)); err == nil {
		t.Error("out-of-range kind must be rejected")
	}
}

func TestRegionKindAccessor(t *testing.T) {
	_, s := newMachineWithService(t, DefaultConfig)
	if err := s.CreateRegionKind(machine.DataBase, 4, KindLoad); err != nil {
		t.Fatal(err)
	}
	if k := s.RegionKind(machine.DataBase, 4); k != KindLoad {
		t.Errorf("RegionKind = %v, want KindLoad", k)
	}
	if k := s.RegionKind(machine.DataBase+64, 4); k != 0 {
		t.Errorf("RegionKind of absent region = %v, want 0", k)
	}
}
