package monitor

import (
	"testing"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/machine"
)

// TestRemoveRegionSummaryMaintenance pins the summary-table contract of
// DeleteRegion: with two regions in the same 2^9/2^14/2^19 buckets, deleting
// one must keep every level's summary bit set, and deleting the last must
// clear them — verified through the simulated __mrs_range path (the code
// that actually consults the summaries) and by reading the summary words.
func TestRemoveRegionSummaryMaintenance(t *testing.T) {
	// Span per level chosen so __mrs_range picks L9, L14, L19 in turn.
	src := `
main:
	save %sp, -96, %sp
	set 0x20000000, %g5
	set 0x20000fff, %g1
	mov 9, %g2
	call __mrs_range
	set 0x20000000, %g5
	set 0x200fffff, %g1
	mov 14, %g2
	call __mrs_range
	set 0x10000000, %g5
	set 0x30000000, %g1
	mov 19, %g2
	call __mrs_range
	mov 0, %i0
	restore
	retl
`
	u := asm.MustParse("p.s", src)
	lib := mustLib(t, DefaultConfig)
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, u, lib)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.Load(m)
	s, err := NewService(DefaultConfig, m)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int32
	m.OnRangeHit = func(id int32) { ids = append(ids, id) }

	// Two regions sharing every summary bucket (same 512-byte granule).
	regA := [2]uint32{0x2000_0800, 16}
	regB := [2]uint32{0x2000_0900, 16}
	if err := s.CreateRegion(regA[0], regA[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateRegion(regB[0], regB[1]); err != nil {
		t.Fatal(err)
	}

	// summaryWord reads the simulated summary word covering addr at level li.
	summaryWord := func(li int, addr uint32) uint32 {
		b := addr >> summaryShifts[li]
		return uint32(m.ReadWord(summaryBases[li] + (b>>5)*4))
	}
	summaryBit := func(li int, addr uint32) bool {
		b := addr >> summaryShifts[li]
		return summaryWord(li, addr)&(1<<(b&31)) != 0
	}

	runProbes := func() []int32 {
		ids = nil
		m.Reset()
		prog.Load(m)
		s.Reinstall()
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return ids
	}

	wantAll := []int32{9, 14, 19}
	if got := runProbes(); !equalIDs(got, wantAll) {
		t.Fatalf("both regions: range hits = %v, want %v", got, wantAll)
	}

	// Deleting ONE region must leave every summary bit set: the other region
	// still owns words in the same buckets.
	if err := s.DeleteRegion(regA[0], regA[1]); err != nil {
		t.Fatal(err)
	}
	for li := range summaryShifts {
		if !summaryBit(li, regB[0]) {
			t.Fatalf("level 2^%d summary bit cleared with a region still in the bucket", summaryShifts[li])
		}
		if s.sumCounts[li][regB[0]>>summaryShifts[li]] == 0 {
			t.Fatalf("level 2^%d sumCounts dropped to zero early", summaryShifts[li])
		}
	}
	if got := runProbes(); !equalIDs(got, wantAll) {
		t.Fatalf("one region left: range hits = %v, want %v", got, wantAll)
	}

	// Deleting the LAST region must clear the bit at every level and empty
	// the host-side counts.
	if err := s.DeleteRegion(regB[0], regB[1]); err != nil {
		t.Fatal(err)
	}
	for li := range summaryShifts {
		if summaryBit(li, regB[0]) {
			t.Fatalf("level 2^%d summary bit still set after the last region went", summaryShifts[li])
		}
		if len(s.sumCounts[li]) != 0 {
			t.Fatalf("level 2^%d sumCounts not empty: %v", summaryShifts[li], s.sumCounts[li])
		}
	}
	if got := runProbes(); len(got) != 0 {
		t.Fatalf("no regions: range hits = %v, want none", got)
	}
}

// TestRemoveRegionSummarySpanningBuckets deletes a region whose span crosses
// an L9 bucket boundary and checks partial clearing: the bucket still backed
// by another region keeps its bit, the exclusive bucket loses it.
func TestRemoveRegionSummarySpanningBuckets(t *testing.T) {
	m, s := newMachineWithService(t, DefaultConfig)
	// regWide covers the end of L9 bucket 0x100004 and start of 0x100005
	// (bucket = addr>>9). regNarrow sits only in bucket 0x100004.
	regWide := [2]uint32{0x2000_09f8, 16}  // words in buckets 4 and 5 of DataBase
	regNarrow := [2]uint32{0x2000_0800, 8} // bucket 4 only
	if err := s.CreateRegion(regWide[0], regWide[1]); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateRegion(regNarrow[0], regNarrow[1]); err != nil {
		t.Fatal(err)
	}
	bit := func(addr uint32) bool {
		b := addr >> 9
		v := uint32(m.ReadWord(SummaryL9Base + (b>>5)*4))
		return v&(1<<(b&31)) != 0
	}
	if !bit(0x2000_0800) || !bit(0x2000_0a00) {
		t.Fatal("both buckets must start set")
	}
	if err := s.DeleteRegion(regWide[0], regWide[1]); err != nil {
		t.Fatal(err)
	}
	if !bit(0x2000_0800) {
		t.Fatal("bucket with a remaining region lost its summary bit")
	}
	if bit(0x2000_0a00) {
		t.Fatal("bucket with no remaining words kept its summary bit")
	}
}

func equalIDs(got, want []int32) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
