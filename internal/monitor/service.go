package monitor

import (
	"fmt"

	"databreak/internal/bitmap"
	"databreak/internal/machine"
	"databreak/internal/sparc"
)

// Kind is a region's access-kind mask, shared with the bitmap layer.
type Kind = bitmap.Kind

const (
	// KindStore delivers store (write) hits only.
	KindStore = bitmap.KindStore
	// KindLoad delivers load (read) hits only. Read hits reach the debugger
	// only when the program was patched with CheckReads.
	KindLoad = bitmap.KindLoad
	// KindAll delivers both — the legacy CreateRegion behavior.
	KindAll = bitmap.KindAll
)

// PredKind selects a transition predicate: a function of the stored value
// whose result change is what fires a transition watchpoint.
type PredKind uint8

const (
	// PredChanged fires when the stored value changes at all (the default).
	PredChanged PredKind = iota
	// PredNonzero fires when the value's zeroness flips.
	PredNonzero
	// PredSign fires when the sign bit flips.
	PredSign
	// PredMask fires when value&Arg changes.
	PredMask
	// PredEQ fires when (value == Arg) flips.
	PredEQ
)

func (k PredKind) String() string {
	switch k {
	case PredChanged:
		return "changed"
	case PredNonzero:
		return "nonzero"
	case PredSign:
		return "sign"
	case PredMask:
		return "mask"
	case PredEQ:
		return "eq"
	}
	return fmt.Sprintf("PredKind(%d)", uint8(k))
}

// ParsePredKind maps a predicate name to its PredKind; the empty string
// means PredChanged (the default).
func ParsePredKind(name string) (PredKind, error) {
	switch name {
	case "", "changed":
		return PredChanged, nil
	case "nonzero":
		return PredNonzero, nil
	case "sign":
		return PredSign, nil
	case "mask":
		return PredMask, nil
	case "eq":
		return PredEQ, nil
	}
	return 0, fmt.Errorf("monitor: unknown transition predicate %q", name)
}

// ParseKind maps an access-kind name ("store", "load", "all"; empty means
// "all") to its Kind mask. "transition" is not a Kind — transition regions
// are created with CreateTransitionRegion.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "", "all":
		return KindAll, nil
	case "store":
		return KindStore, nil
	case "load":
		return KindLoad, nil
	}
	return 0, fmt.Errorf("monitor: unknown region kind %q", name)
}

// Predicate is a transition watchpoint's value predicate.
type Predicate struct {
	Kind PredKind
	Arg  uint32 // PredMask: the mask; PredEQ: the compared value
}

// eval canonicalizes a word value under the predicate; a transition hit
// fires exactly when eval(old) != eval(new).
func (p Predicate) eval(v uint32) uint32 {
	switch p.Kind {
	case PredNonzero:
		if v != 0 {
			return 1
		}
		return 0
	case PredSign:
		return v >> 31
	case PredMask:
		return v & p.Arg
	case PredEQ:
		if v == p.Arg {
			return 1
		}
		return 0
	}
	return v // PredChanged
}

// Hit records one monitor hit delivered by check code.
type Hit struct {
	Addr uint32
	Size int32
	// Read marks a read-monitoring hit (§5 extension); false means a write.
	Read bool
	// PC is the text index of the trap that reported the hit.
	PC int32
	// Instrs is the debuggee instruction count at the hit.
	Instrs int64
	// Old and New carry the before/after values of the first word whose
	// predicate result changed. Meaningful only for transition-region hits
	// (both zero otherwise).
	Old uint32
	New uint32
}

// regionInfo is the Go-side record of one installed region. The simulated
// bitmap stays kind-blind — every monitored word traps on both access kinds
// when the corresponding checks are patched in, keeping the machine-level
// counts identical across kinds — and the Service filters delivery here.
type regionInfo struct {
	addr, size uint32
	kind       Kind
	pred       *Predicate // non-nil: transition region (store-triggered)
	shadow     []uint32   // last known word values, transition regions only
}

// Service is the debugger-resident half of the monitored region service for
// a simulated program. It edits the monitor data structures inside the
// machine's memory (segment table, bitmap segments, range summaries) and
// receives monitor-hit traps.
//
// The Service itself never rewrites text — it edits data pages, which the
// machine's WriteWord path keeps coherent with the simulated cache. The
// PreMonitor/PostMonitor flow that DOES patch code at run time (write-check
// re-insertion, elim.Runtime) must go through machine.PatchInstr, the one
// sanctioned text-mutation path: it re-decodes the instruction and repairs
// the block-dispatch index so the patched check executes on the very next
// dispatch of its block.
//
// A Service is confined to its Machine's serialization domain: like the
// Machine, it is not itself safe for concurrent use. Every call —
// CreateRegion, DeleteRegion, Contains, Reinstall — must hold the same
// external lock that serializes the Machine (monitor.Session provides
// exactly this; see DESIGN.md §7). Services attached to distinct Machines
// share no state and run concurrently without restriction.
type Service struct {
	cfg Config
	m   *machine.Machine

	arenaNext uint32
	segAddr   map[uint32]uint32 // segment number -> private segment address
	counts    map[uint32]uint32 // segment number -> monitored words
	sumCounts [3]map[uint32]uint32
	regions   map[[2]uint32]*regionInfo // {addr,size}
	// plainOnly is true while every region is a legacy KindAll region with
	// no predicate — the common case, where hit delivery needs no region
	// scan at all.
	plainOnly bool

	// Hits accumulates every monitor hit (also delivered to OnHit).
	Hits []Hit
	// NoHitLog suppresses the Hits accumulation (OnHit still fires). Long
	// daemon-hosted runs over hot regions produce millions of hits; callers
	// that stream them elsewhere set this so the Service holds no backlog.
	NoHitLog bool
	// HitCount counts every hit regardless of NoHitLog — the producer-side
	// total a streaming consumer can reconcile its deliveries against.
	HitCount int64
	// OnHit, when non-nil, observes each hit as it happens.
	OnHit func(h Hit)
	// DisabledOverride forces the disabled flag (%g6) on regardless of
	// region count — used to measure the paper's "Disabled" column.
	DisabledOverride bool

	hashArena uint32
}

var summaryShifts = [3]uint32{9, 14, 19}
var summaryBases = [3]uint32{SummaryL9Base, SummaryL14Base, SummaryL19Base}

// NewService attaches a monitored region service to m. It wires the
// monitor-hit trap and initializes the reserved registers (%g4 table base,
// %g6 disabled, segment caches).
func NewService(cfg Config, m *machine.Machine) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Service{
		cfg:       cfg,
		m:         m,
		arenaNext: SegArenaBase,
		hashArena: HashArenaBase,
		segAddr:   make(map[uint32]uint32),
		counts:    make(map[uint32]uint32),
		regions:   make(map[[2]uint32]*regionInfo),
		plainOnly: true,
	}
	for i := range s.sumCounts {
		s.sumCounts[i] = make(map[uint32]uint32)
	}
	m.OnMonHit = func(addr uint32, size int32) { s.storeHit(addr, size) }
	m.OnMonRead = func(addr uint32, size int32) { s.readHit(addr, size) }
	s.syncRegisters()
	return s, nil
}

// deliver records one hit that survived kind and predicate filtering.
func (s *Service) deliver(h Hit) {
	s.HitCount++
	if !s.NoHitLog {
		s.Hits = append(s.Hits, h)
	}
	if s.OnHit != nil {
		s.OnHit(h)
	}
}

// storeHit handles a store-check trap. The trap instruction sits after the
// store in the check sequence, so simulated memory already holds the new
// value; transition regions read it here and diff against their shadow
// copy, making old-value capture exact with no deferred resolution.
//
// Suppressed hits — wrong kind, or a transition whose predicate result did
// not change — are not counted, logged, or forwarded: HitCount tracks
// delivered hits only, so streaming consumers reconcile against what they
// can actually receive.
func (s *Service) storeHit(addr uint32, size int32) {
	if s.plainOnly {
		s.deliver(Hit{Addr: addr, Size: size, PC: s.m.PC(), Instrs: s.m.Instrs()})
		return
	}
	first := addr &^ 3
	last := (addr + uint32(size) - 1) &^ 3
	fire := false
	var old, nv uint32
	got := false
	for w := first; ; w += 4 {
		if info := s.regionOf(w); info != nil && info.kind&KindStore != 0 {
			if info.pred == nil {
				fire = true
			} else {
				i := (w - info.addr) / 4
				n := uint32(s.m.ReadWord(w))
				o := info.shadow[i]
				info.shadow[i] = n
				if info.pred.eval(o) != info.pred.eval(n) {
					fire = true
					if !got {
						old, nv, got = o, n, true
					}
				}
			}
		}
		if w == last {
			break
		}
	}
	if !fire {
		return
	}
	s.deliver(Hit{Addr: addr, Size: size, PC: s.m.PC(), Instrs: s.m.Instrs(),
		Old: old, New: nv})
}

// readHit handles a read-check trap (present only when the program was
// patched with CheckReads).
func (s *Service) readHit(addr uint32, size int32) {
	if s.plainOnly {
		s.deliver(Hit{Addr: addr, Size: size, Read: true, PC: s.m.PC(), Instrs: s.m.Instrs()})
		return
	}
	first := addr &^ 3
	last := (addr + uint32(size) - 1) &^ 3
	for w := first; ; w += 4 {
		if info := s.regionOf(w); info != nil && info.kind&KindLoad != 0 {
			s.deliver(Hit{Addr: addr, Size: size, Read: true, PC: s.m.PC(), Instrs: s.m.Instrs()})
			return
		}
		if w == last {
			break
		}
	}
}

// regionOf returns the installed region covering the word at w, or nil.
// Linear scan: regions are few and non-overlapping.
func (s *Service) regionOf(w uint32) *regionInfo {
	for _, info := range s.regions {
		if w >= info.addr && w < info.addr+info.size {
			return info
		}
	}
	return nil
}

// Config returns the service geometry.
func (s *Service) Config() Config { return s.cfg }

// syncRegisters refreshes the reserved registers the check code depends on.
// Called after Reset and after region changes.
func (s *Service) syncRegisters() {
	tableBase := SegTableBase
	s.m.SetReg(sparc.G4, int32(tableBase))
	disabled := int32(0)
	if len(s.regions) == 0 || s.DisabledOverride {
		disabled = 1
	}
	s.m.SetReg(sparc.G6, disabled)
}

// Reinstall must be called after machine.Reset: it re-seeds the reserved
// registers (monitor memory survives Reset only if regions are re-created,
// so typical harness flow is Reset, Load, NewService or Reinstall, Create*).
func (s *Service) Reinstall() { s.syncRegisters() }

func (s *Service) checkRegion(addr, size uint32) error {
	if addr&3 != 0 || size == 0 || size&3 != 0 {
		return fmt.Errorf("monitor: region [%#x,+%d) is not word aligned", addr, size)
	}
	if addr < machine.TextBase {
		return fmt.Errorf("monitor: region [%#x,+%d) below the program address space", addr, size)
	}
	// Reject regions inside the monitor's own reserved window. (The real
	// system instead monitors its structures to protect their integrity;
	// here the debugger owns them outright.)
	monEnd := SegArenaBase + 0x0100_0000
	if addr < monEnd && addr+size > SegTableBase {
		return fmt.Errorf("monitor: region [%#x,+%d) overlaps monitor structures", addr, size)
	}
	return nil
}

func (s *Service) segOf(addr uint32) uint32 { return addr >> s.cfg.SegShift() }

// ensureSegment gives the segment containing addr private bitmap storage
// and returns its simulated address.
func (s *Service) ensureSegment(n uint32) uint32 {
	if a, ok := s.segAddr[n]; ok {
		return a
	}
	a := s.arenaNext
	s.arenaNext += s.cfg.SegBytesPerBitmap()
	// Keep segments word-aligned with room for the flag bit.
	s.arenaNext = (s.arenaNext + 7) &^ 7
	s.segAddr[n] = a
	return a
}

func (s *Service) writeEntry(n uint32) {
	a, ok := s.segAddr[n]
	if !ok {
		a = 0 // shared zero segment at address 0
	}
	e := a
	if s.cfg.Flags && s.counts[n] > 0 {
		e |= 1
	}
	s.m.WriteWord(SegTableBase+n*4, int32(e))
}

func (s *Service) setBit(addr uint32, on bool) {
	n := s.segOf(addr)
	seg := s.ensureSegment(n)
	w := (addr >> 2) & (s.cfg.SegWords - 1)
	wordAddr := seg + (w>>5)*4
	v := uint32(s.m.ReadWord(wordAddr))
	if on {
		v |= 1 << (w & 31)
	} else {
		v &^= 1 << (w & 31)
	}
	s.m.WriteWord(wordAddr, int32(v))
}

func (s *Service) adjustSummaries(addr, size uint32, delta int) {
	for li, shift := range summaryShifts {
		lo := addr >> shift
		hi := (addr + size - 1) >> shift
		for b := lo; ; b++ {
			gLo := b << shift
			gHi := gLo + (1 << shift) - 1
			from := addr
			if gLo > from {
				from = gLo
			}
			to := addr + size - 1
			if gHi < to {
				to = gHi
			}
			words := (to-from)/4 + 1
			c := s.sumCounts[li][b]
			if delta > 0 {
				c += words
			} else {
				c -= words
			}
			wordAddr := summaryBases[li] + (b>>5)*4
			v := uint32(s.m.ReadWord(wordAddr))
			if c > 0 {
				s.sumCounts[li][b] = c
				v |= 1 << (b & 31)
			} else {
				delete(s.sumCounts[li], b)
				v &^= 1 << (b & 31)
			}
			s.m.WriteWord(wordAddr, int32(v))
			if b == hi {
				break
			}
		}
	}
}

// Contains reports whether the word containing addr is currently monitored,
// by reading the simulated bitmap the way check code would.
func (s *Service) Contains(addr uint32) bool {
	n := s.segOf(addr)
	e := uint32(s.m.ReadWord(SegTableBase + n*4))
	e &^= 1
	w := (addr >> 2) & (s.cfg.SegWords - 1)
	v := uint32(s.m.ReadWord(e + (w>>5)*4))
	return v&(1<<(w&31)) != 0
}

// CreateRegion installs the monitored region [addr, addr+size) with the
// legacy delivery kind: every check that traps on its words — store always,
// read when the program was patched with CheckReads — is delivered.
func (s *Service) CreateRegion(addr, size uint32) error {
	return s.createRegion(&regionInfo{addr: addr, size: size, kind: KindAll})
}

// CreateRegionKind installs a region delivering only hits of the access
// kinds in k. The simulated bitmap (and therefore every machine-level
// count) is identical for all kinds; filtering happens at delivery.
func (s *Service) CreateRegionKind(addr, size uint32, k Kind) error {
	if k == 0 || k&^KindAll != 0 {
		return fmt.Errorf("monitor: invalid region kind %v", k)
	}
	return s.createRegion(&regionInfo{addr: addr, size: size, kind: k})
}

// CreateTransitionRegion installs a transition watchpoint: store-triggered,
// but a hit is delivered only when the predicate's result over the stored
// word actually changes. Old/new word values ride on the delivered Hit. The
// region's initial values are snapshotted from simulated memory now.
func (s *Service) CreateTransitionRegion(addr, size uint32, pred Predicate) error {
	if pred.Kind > PredEQ {
		return fmt.Errorf("monitor: invalid transition predicate %v", pred.Kind)
	}
	info := &regionInfo{addr: addr, size: size, kind: KindStore, pred: &pred}
	return s.createRegion(info)
}

func (s *Service) createRegion(info *regionInfo) error {
	addr, size := info.addr, info.size
	if err := s.checkRegion(addr, size); err != nil {
		return err
	}
	if _, dup := s.regions[[2]uint32{addr, size}]; dup {
		return fmt.Errorf("monitor: region [%#x,+%d) already monitored", addr, size)
	}
	for o := uint32(0); o < size; o += 4 {
		if s.Contains(addr + o) {
			return fmt.Errorf("monitor: word %#x is already monitored", addr+o)
		}
	}
	if info.pred != nil {
		info.shadow = make([]uint32, size/4)
		for o := uint32(0); o < size; o += 4 {
			info.shadow[o/4] = uint32(s.m.ReadWord(addr + o))
		}
	}
	for o := uint32(0); o < size; o += 4 {
		a := addr + o
		s.setBit(a, true)
		s.counts[s.segOf(a)]++
		s.writeEntry(s.segOf(a))
	}
	s.adjustSummaries(addr, size, +1)
	s.hashInsert(addr, size)
	s.regions[[2]uint32{addr, size}] = info
	if info.kind != KindAll || info.pred != nil {
		s.plainOnly = false
	}
	s.syncRegisters()
	return nil
}

// hashBucketAddr mirrors the hash computed by __mrs_hash_* routines.
func hashBucketAddr(addr uint32) uint32 {
	g := addr >> 5
	return HashBase + ((g*40503)&(HashBuckets-1))*4
}

// hashInsert records [addr, addr+size) in the simulated hash table: one
// entry {lo, hi, next} per bucket whose granules the region overlaps.
func (s *Service) hashInsert(addr, size uint32) {
	seen := make(map[uint32]bool)
	for g := addr >> 5; g <= (addr+size-1)>>5; g++ {
		b := hashBucketAddr(g << 5)
		if seen[b] {
			continue
		}
		seen[b] = true
		e := s.hashArena
		s.hashArena += 12
		s.m.WriteWord(e, int32(addr))
		s.m.WriteWord(e+4, int32(addr+size))
		s.m.WriteWord(e+8, s.m.ReadWord(b))
		s.m.WriteWord(b, int32(e))
	}
}

// hashRemove unlinks the region's entries.
func (s *Service) hashRemove(addr, size uint32) {
	seen := make(map[uint32]bool)
	for g := addr >> 5; g <= (addr+size-1)>>5; g++ {
		b := hashBucketAddr(g << 5)
		if seen[b] {
			continue
		}
		seen[b] = true
		prev := b
		e := uint32(s.m.ReadWord(b))
		for e != 0 {
			lo := uint32(s.m.ReadWord(e))
			hi := uint32(s.m.ReadWord(e + 4))
			next := uint32(s.m.ReadWord(e + 8))
			if lo == addr && hi == addr+size {
				s.m.WriteWord(prev, int32(next))
				break
			}
			prev = e + 8
			e = next
		}
	}
}

// DeleteRegion removes a region previously created with these exact bounds.
func (s *Service) DeleteRegion(addr, size uint32) error {
	if _, ok := s.regions[[2]uint32{addr, size}]; !ok {
		return fmt.Errorf("monitor: region [%#x,+%d) is not monitored", addr, size)
	}
	for o := uint32(0); o < size; o += 4 {
		a := addr + o
		s.setBit(a, false)
		n := s.segOf(a)
		if c := s.counts[n] - 1; c == 0 {
			delete(s.counts, n)
		} else {
			s.counts[n] = c
		}
		s.writeEntry(n)
	}
	s.adjustSummaries(addr, size, -1)
	s.hashRemove(addr, size)
	delete(s.regions, [2]uint32{addr, size})
	s.plainOnly = true
	for _, info := range s.regions {
		if info.kind != KindAll || info.pred != nil {
			s.plainOnly = false
			break
		}
	}
	s.syncRegisters()
	return nil
}

// RegionKind returns the delivery kind of the region created with exactly
// these bounds, or 0 if none is installed.
func (s *Service) RegionKind(addr, size uint32) Kind {
	if info, ok := s.regions[[2]uint32{addr, size}]; ok {
		return info.kind
	}
	return 0
}

// Regions returns the number of installed regions.
func (s *Service) Regions() int { return len(s.regions) }

// Detach unhooks the service from its machine: the monitor-hit callbacks are
// cleared, so later traps (should the program keep running) no longer reach
// this Service. Installed regions stay in simulated memory; delete them
// first if the program should stop trapping. Part of the session teardown
// path (monitor.Session.Detach).
func (s *Service) Detach() {
	s.m.OnMonHit = nil
	s.m.OnMonRead = nil
	s.OnHit = nil
}

// SegmentMonitored reports whether the segment containing addr has any
// monitored words (the flag the caching slow path consults).
func (s *Service) SegmentMonitored(addr uint32) bool {
	return s.counts[s.segOf(addr)] > 0
}
