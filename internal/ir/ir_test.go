package ir

import (
	"testing"

	"databreak/internal/asm"
	"databreak/internal/cfg"
	"databreak/internal/minic"
	"databreak/internal/sparc"
)

func buildFunc(t *testing.T, csrc, fn string) (*Info, *cfg.Func, *asm.Unit) {
	t.Helper()
	asmSrc, err := minic.Compile(csrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	u, err := asm.Parse("p.s", asmSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fns, err := cfg.SplitFunctions(u)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	var syms []asm.Sym
	for _, it := range u.Items {
		if it.Kind == asm.ItemSymRec {
			syms = append(syms, it.Sym)
		}
	}
	for _, f := range fns {
		if f.Name == fn {
			return Build(f, syms), f, u
		}
	}
	t.Fatalf("function %q not found", fn)
	return nil, nil, nil
}

func slotByName(in *Info, name string) (int, bool) {
	for i, s := range in.Slots {
		if s.Sym.Name == name {
			return i, true
		}
	}
	return 0, false
}

func TestScalarLocalsBecomeSlots(t *testing.T) {
	in, _, _ := buildFunc(t, `
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 10; i = i + 1) s = s + i;
	return s;
}`, "main")
	for _, name := range []string{"i", "s"} {
		if _, ok := slotByName(in, name); !ok {
			t.Errorf("local %q must be a convertible slot (slots: %+v)", name, in.Slots)
		}
	}
	if len(in.StoreSlot) == 0 || len(in.LoadSlot) == 0 {
		t.Fatal("slot accesses must be converted")
	}
}

func TestAddressTakenLocalNotConverted(t *testing.T) {
	in, _, _ := buildFunc(t, `
int deref(int *p) { return *p; }
int main() {
	int x;
	int y;
	x = 5;
	y = deref(&x);
	return y;
}`, "main")
	if _, ok := slotByName(in, "x"); ok {
		t.Fatal("address-taken local x must not be converted")
	}
	if _, ok := slotByName(in, "y"); !ok {
		t.Fatal("plain local y must still be converted")
	}
}

func TestGlobalScalarConversionAndCallKill(t *testing.T) {
	in, f, _ := buildFunc(t, `
int g;
int bump() { g = g + 1; return g; }
int main() {
	int a;
	g = 1;
	a = g;
	bump();
	a = a + g;
	return a;
}`, "main")
	slot, ok := slotByName(in, "g")
	if !ok {
		t.Fatal("global scalar g must be convertible")
	}
	// The load of g after the call must NOT see the value stored before the
	// call (calls kill global slots): find a converted load of g whose value
	// is Unknown.
	var sawUnknownLoad bool
	for pos, s := range in.LoadSlot {
		if s != slot {
			continue
		}
		// The loaded value is whatever the destination register got.
		_ = pos
	}
	// Inspect directly: after processing, at least one value should be a
	// post-call Unknown feeding an add.
	for _, v := range in.Vals {
		if v.replacedBy >= 0 {
			continue
		}
		if v.Kind == ValOp && v.Op == sparc.Add {
			for _, a := range v.Args {
				if in.Val(a).Kind == ValUnknown && in.Val(a).Pos >= 0 {
					sawUnknownLoad = true
				}
			}
		}
	}
	_ = f
	if !sawUnknownLoad {
		t.Fatal("global slot must be killed across calls")
	}
}

func TestGlobalAddressInDataEscapes(t *testing.T) {
	// A global whose address is materialized via &g escapes.
	in, _, _ := buildFunc(t, `
int g;
int *p;
int main() {
	p = &g;
	*p = 3;
	return g;
}`, "main")
	if _, ok := slotByName(in, "g"); ok {
		t.Fatal("global g with escaping address must not be converted")
	}
}

func TestInductionVariableVisibleAsPhi(t *testing.T) {
	in, f, _ := buildFunc(t, `
int a[100];
int main() {
	int i;
	for (i = 0; i < 100; i = i + 1) a[i] = i;
	return 0;
}`, "main")
	slot, ok := slotByName(in, "i")
	if !ok {
		t.Fatal("i must be a slot")
	}
	if len(f.Loops) != 1 {
		t.Fatalf("loops = %d", len(f.Loops))
	}
	header := f.Loops[0].Header
	// Find a phi in the loop header whose variable is i's slot: it must
	// have one constant-0 arg and one arg of the form phi+1.
	var found bool
	for _, v := range in.Vals {
		if v.replacedBy >= 0 || v.Kind != ValPhi || v.Block != header {
			continue
		}
		_ = slot
		hasInit, hasStep := false, false
		for _, a := range v.Args {
			av := in.Val(a)
			if av.Kind == ValConst && av.Const == 0 {
				hasInit = true
			}
			if av.Kind == ValOp && (av.Op == sparc.Add) {
				x, y := in.Val(av.Args[0]), in.Val(av.Args[1])
				if (x.ID == in.Resolve(v.ID) && y.Kind == ValConst && y.Const == 1) ||
					(y.ID == in.Resolve(v.ID) && x.Kind == ValConst && x.Const == 1) {
					hasStep = true
				}
			}
		}
		if hasInit && hasStep {
			found = true
		}
	}
	if !found {
		t.Fatal("induction variable i must appear as phi(0, phi+1) in the header")
	}
}

func TestStoreAddressShapes(t *testing.T) {
	in, f, _ := buildFunc(t, `
int g;
int arr[10];
int main() {
	int x;
	int i;
	x = 1;
	g = 2;
	for (i = 0; i < 10; i = i + 1) arr[i] = 0;
	return x;
}`, "main")
	var fpStores, symExact, symArray int
	for p := range in.AddrOf {
		if !f.Instruction(p).Op.IsStore() {
			continue
		}
		sh := in.ShapeOf(in.AddrOf[p])
		switch {
		case sh.FPRel && sh.Known:
			fpStores++
		case sh.Sym == "g" && sh.Known && sh.Off == 0:
			symExact++
		case sh.Sym == "arr" && !sh.Known:
			symArray++
		}
	}
	if fpStores == 0 {
		t.Error("expected fp-relative store shapes")
	}
	if symExact != 1 {
		t.Errorf("global scalar store shapes = %d, want 1", symExact)
	}
	if symArray == 0 {
		t.Error("expected a symbol+unknown-offset shape for the array store")
	}
}

func TestSymFolding(t *testing.T) {
	// set label, r expands to sethi+or; the value graph must fold it back
	// into a single symbolic address.
	src := `
main:
	save %sp, -96, %sp
	set target, %o0
	st %g0, [%o0+8]
	mov 0, %i0
	restore
	retl
	.stabs "main", func, main, 0
	.data
target:	.space 64
`
	u := asm.MustParse("p.s", src)
	fns, err := cfg.SplitFunctions(u)
	if err != nil {
		t.Fatal(err)
	}
	in := Build(fns[0], nil)
	var sawShape bool
	for p, a := range in.AddrOf {
		if !fns[0].Instruction(p).Op.IsStore() {
			continue
		}
		sh := in.ShapeOf(a)
		if sh.Sym == "target" && sh.Known && sh.Off == 8 {
			sawShape = true
		}
	}
	if !sawShape {
		t.Fatal("sethi/or of a label must fold to a symbolic address")
	}
}

func TestParamFlowsThroughSave(t *testing.T) {
	in, f, _ := buildFunc(t, `
int f(int a) { return a + 1; }
int main() { return f(41); }
`, "f")
	// The store of parameter a into its slot must store a ValParam of %o0.
	var ok bool
	for p, data := range in.DataOf {
		if !f.Instruction(p).Op.IsStore() {
			continue
		}
		v := in.Val(data)
		if v.Kind == ValParam && v.Reg == sparc.O0 {
			ok = true
		}
	}
	if !ok {
		t.Fatal("parameter spill must carry the caller's o0 value through save")
	}
}
