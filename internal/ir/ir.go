// Package ir converts assembly functions into an SSA value graph for the
// write-check elimination analysis of §4.
//
// Following the paper, the converter first pattern-matches memory accesses
// whose target address expression is a symbol-table entry (%fp-20, or the
// address of a global scalar) and replaces those loads and stores with moves
// of pseudo-operands (§4.2). This substitution is what makes induction
// variables recognizable in naive debug code, where every loop counter lives
// in a stack slot. SSA construction uses Braun et al.'s sealed-block
// algorithm, so no separate dominance-frontier pass is needed.
//
// Soundness note (matching the paper's §4.6.2 "optimistic" measurements):
// slots whose address escapes (stored, passed to a call, or materialized in
// static data) are never converted; stores through unknown pointers are
// assumed not to overwrite convertible slots. Monitor-hit *detection* does
// not depend on this assumption — unknown stores keep their runtime checks —
// only the profitability of check elimination does.
package ir

import (
	"fmt"

	"databreak/internal/asm"
	"databreak/internal/cfg"
	"databreak/internal/sparc"
)

// ValKind discriminates Value.
type ValKind uint8

const (
	ValConst   ValKind = iota // integer constant
	ValSym                    // address of data symbol + offset
	ValSymHi                  // %hi(sym)
	ValFP                     // frame pointer established by the prologue
	ValParam                  // register contents at function entry
	ValUnknown                // load result, call/trap effect, fresh window
	ValPhi                    // phi node
	ValOp                     // ALU operation
)

// Value is one SSA value.
type Value struct {
	ID    int
	Kind  ValKind
	Op    sparc.Op // ValOp
	Args  []int    // operands (ValOp); per-pred operands (ValPhi)
	Const int32    // ValConst; offset for ValSym
	Sym   string   // ValSym / ValSymHi
	Reg   sparc.Reg
	Block int // defining block (phi) or block of defining instr
	Pos   int // defining instruction position; -1 for phi/entry

	// replacedBy implements trivial-phi elimination (union-find style).
	replacedBy int
}

// Slot is a convertible memory home: a scalar local/param stack slot or a
// scalar global.
type Slot struct {
	Sym   asm.Sym // the matched symbol record
	IsFP  bool    // fp-relative (local/param) vs global
	FpOff int32
	Label string
}

// Cmp records the last condition-code definition in a block (for asserts).
type Cmp struct {
	Pos      int
	Op       sparc.Op
	Lhs, Rhs int // value ids
}

// Info is the analysis result for one function.
type Info struct {
	F    *cfg.Func
	Vals []*Value

	// AddrOf maps memory-instruction position -> effective address value.
	AddrOf map[int]int
	// DataOf maps store position -> stored value.
	DataOf map[int]int
	// StoreSlot / LoadSlot map converted access positions -> slot index.
	StoreSlot map[int]int
	LoadSlot  map[int]int
	Slots     []Slot

	// CmpAt maps block id -> last condition-code definition in that block.
	CmpAt map[int]Cmp

	numVars int
	escaped map[int]bool  // canonical ids of escaped values (pass 1 only)
	defsEnd []map[int]int // per-variable block -> value at block end
}

// SlotVar returns the SSA variable id for slot index s.
func SlotVar(s int) int { return numRegVars + s }

// ValAtEnd returns the SSA value of variable v at the end of block, walking
// single-predecessor chains; ok is false when the value is not determinable
// without a phi.
func (in *Info) ValAtEnd(v, block int) (int, bool) {
	for hops := 0; hops < len(in.F.Blocks)+1; hops++ {
		if val, ok := in.defsEnd[v][block]; ok {
			return in.Resolve(val), true
		}
		preds := in.F.Blocks[block].Preds
		if len(preds) != 1 {
			return 0, false
		}
		block = preds[0]
	}
	return 0, false
}

// Resolve follows trivial-phi replacements to the canonical value.
func (in *Info) Resolve(id int) int {
	for in.Vals[id].replacedBy >= 0 {
		id = in.Vals[id].replacedBy
	}
	return id
}

// Val returns the canonical value for id.
func (in *Info) Val(id int) *Value { return in.Vals[in.Resolve(id)] }

// Shape describes an address expression form.
type Shape struct {
	// Base is FP, a symbol, or unknown.
	FPRel  bool
	Sym    string
	Known  bool // offset fully constant
	Off    int32
	IsAddr bool // FPRel or Sym != ""
}

// ShapeOf computes the address shape of a value.
func (in *Info) ShapeOf(id int) Shape {
	v := in.Val(id)
	switch v.Kind {
	case ValFP:
		return Shape{FPRel: true, Known: true, IsAddr: true}
	case ValSym:
		return Shape{Sym: v.Sym, Known: true, Off: v.Const, IsAddr: true}
	case ValConst:
		return Shape{Known: true, Off: v.Const}
	case ValOp:
		switch v.Op {
		case sparc.Add, sparc.Sub:
			a := in.ShapeOf(v.Args[0])
			b := in.ShapeOf(v.Args[1])
			sign := int32(1)
			if v.Op == sparc.Sub {
				sign = -1
			}
			if a.Known && b.Known && !(a.IsAddr && b.IsAddr) {
				out := a
				if b.IsAddr && v.Op == sparc.Add {
					out = b
					out.Off += a.Off
					return out
				}
				out.Off += sign * b.Off
				return out
			}
			// Address base with unknown offset.
			if a.IsAddr {
				return Shape{FPRel: a.FPRel, Sym: a.Sym, IsAddr: true}
			}
			if b.IsAddr && v.Op == sparc.Add {
				return Shape{FPRel: b.FPRel, Sym: b.Sym, IsAddr: true}
			}
		case sparc.Or:
			// or is used as move/add for disjoint bit patterns.
			a := in.ShapeOf(v.Args[0])
			b := in.ShapeOf(v.Args[1])
			if a.Known && !a.IsAddr && a.Off == 0 {
				return b
			}
			if b.Known && !b.IsAddr && b.Off == 0 {
				return a
			}
		}
	}
	return Shape{}
}

// builder performs SSA construction (Braun et al.).
type builder struct {
	info   *Info
	f      *cfg.Func
	u      *asm.Unit
	slots  []Slot
	slotBy map[string]int // key: "fp:off" or "g:label"

	// currentDef[var][block] = value id
	currentDef []map[int]int
	sealed     []bool
	// incompletePhis[block][var] = phi value id
	incomplete []map[int]int
	phiUsers   map[int][]int // phi id -> values using it
	phiVar     map[int]int   // phi id -> variable
	// escapes collects value ids observed escaping (pass 1).
	escapes map[int]bool
	track   bool // track escapes
	// paramCount maps callee name -> parameter count (escape precision).
	paramCount map[string]int
	// constCache / symCache intern immutable values so structurally equal
	// constants share one id (strengthens trivial-phi elimination).
	constCache map[int32]int
	symCache   map[string]int
	// forced maps instruction position -> slot, from a prior pass.
	forced map[int]int
}

const numRegVars = 32

// BuildRegistersOnly runs pass 1: SSA over registers, no slot conversion,
// collecting escape information.
func BuildRegistersOnly(f *cfg.Func, syms []asm.Sym) *Info {
	b := newBuilder(f, nil)
	b.paramCount = paramCounts(syms)
	b.track = true
	b.run()
	b.info.escaped = make(map[int]bool, len(b.escapes))
	for id := range b.escapes {
		b.info.escaped[b.info.Resolve(id)] = true
	}
	return b.info
}

// Build runs the full conversion for f: pass 1 determines which symbol
// slots are safe to convert; subsequent passes rebuild SSA with those slots
// as pseudo-variables. Because an access inside a loop reaches an unsealed
// header when first visited, its address shape is only known once trivial
// phis have been resolved; construction therefore iterates, feeding each
// pass's resolved ld/st-to-slot matches into the next, until the match set
// stops growing (it grows monotonically, so this terminates).
func Build(f *cfg.Func, syms []asm.Sym) *Info {
	pass1 := BuildRegistersOnly(f, syms)
	slots := convertibleSlots(pass1, f, syms)
	var forced map[int]int
	var info *Info
	for iter := 0; iter < 6; iter++ {
		b := newBuilder(f, slots)
		b.paramCount = paramCounts(syms)
		b.forced = forced
		b.run()
		info = b.info
		matches := resolvedMatches(info)
		if len(matches) == len(info.StoreSlot)+len(info.LoadSlot) {
			break
		}
		forced = matches
	}
	return info
}

// paramCounts maps each function name to its parameter count, from the
// compiler's param symbol records.
func paramCounts(syms []asm.Sym) map[string]int {
	counts := make(map[string]int)
	for _, s := range syms {
		if s.Kind == asm.SymFunc {
			if _, ok := counts[s.Name]; !ok {
				counts[s.Name] = 0
			}
		}
		if s.Kind == asm.SymParam {
			counts[s.Func]++
		}
	}
	return counts
}

// resolvedMatches recomputes ld/st-to-slot matches with all phis resolved.
func resolvedMatches(info *Info) map[int]int {
	out := make(map[int]int)
	slotBy := make(map[string]int)
	for i, s := range info.Slots {
		slotBy[slotKey(s)] = i
	}
	for pos, addr := range info.AddrOf {
		op := info.F.Instruction(pos).Op
		if op != sparc.Ld && op != sparc.St {
			continue
		}
		sh := info.ShapeOf(addr)
		if !sh.IsAddr || !sh.Known {
			continue
		}
		var key string
		if sh.FPRel {
			key = fmt.Sprintf("fp:%d", sh.Off)
		} else if sh.Off == 0 {
			key = "g:" + sh.Sym
		} else {
			continue
		}
		if slot, ok := slotBy[key]; ok {
			out[pos] = slot
		}
	}
	return out
}

func newBuilder(f *cfg.Func, slots []Slot) *builder {
	n := numRegVars + len(slots)
	b := &builder{
		info: &Info{
			F:         f,
			AddrOf:    make(map[int]int),
			DataOf:    make(map[int]int),
			StoreSlot: make(map[int]int),
			LoadSlot:  make(map[int]int),
			Slots:     slots,
			CmpAt:     make(map[int]Cmp),
			numVars:   n,
		},
		f:          f,
		u:          f.Unit,
		slots:      slots,
		slotBy:     make(map[string]int),
		currentDef: make([]map[int]int, n),
		sealed:     make([]bool, len(f.Blocks)),
		incomplete: make([]map[int]int, len(f.Blocks)),
		phiUsers:   make(map[int][]int),
		phiVar:     make(map[int]int),
		escapes:    make(map[int]bool),
		constCache: make(map[int32]int),
		symCache:   make(map[string]int),
	}
	for i := range b.currentDef {
		b.currentDef[i] = make(map[int]int)
	}
	for i := range b.incomplete {
		b.incomplete[i] = make(map[int]int)
	}
	for i, s := range slots {
		b.slotBy[slotKey(s)] = i
	}
	return b
}

func slotKey(s Slot) string {
	if s.IsFP {
		return fmt.Sprintf("fp:%d", s.FpOff)
	}
	return "g:" + s.Label
}

func (b *builder) newValue(v Value) int {
	v.ID = len(b.info.Vals)
	v.replacedBy = -1
	b.info.Vals = append(b.info.Vals, &v)
	return v.ID
}

func (b *builder) constVal(c int32) int {
	if id, ok := b.constCache[c]; ok {
		return id
	}
	id := b.newValue(Value{Kind: ValConst, Const: c, Pos: -1})
	b.constCache[c] = id
	return id
}

func (b *builder) symVal(kind ValKind, sym string, off int32) int {
	key := fmt.Sprintf("%d:%s:%d", kind, sym, off)
	if id, ok := b.symCache[key]; ok {
		return id
	}
	id := b.newValue(Value{Kind: kind, Sym: sym, Const: off, Pos: -1})
	b.symCache[key] = id
	return id
}

func (b *builder) unknown(block, pos int, reg sparc.Reg) int {
	return b.newValue(Value{Kind: ValUnknown, Block: block, Pos: pos, Reg: reg})
}

// writeVar sets the current definition of variable v in block.
func (b *builder) writeVar(v, block, val int) {
	b.currentDef[v][block] = val
}

// readVar returns the reaching definition of variable v at the end of block.
func (b *builder) readVar(v, block int) int {
	if v == int(sparc.G0) {
		return b.constVal(0)
	}
	if val, ok := b.currentDef[v][block]; ok {
		return b.info.Resolve(val)
	}
	return b.readVarRecursive(v, block)
}

func (b *builder) readVarRecursive(v, block int) int {
	var val int
	blk := b.f.Blocks[block]
	switch {
	case !b.sealed[block]:
		val = b.newValue(Value{Kind: ValPhi, Block: block, Pos: -1})
		b.phiVar[val] = v
		b.incomplete[block][v] = val
	case len(blk.Preds) == 0:
		// Function entry: registers hold caller-provided values; slots are
		// unknown.
		if v < numRegVars {
			if sparc.Reg(v) == sparc.G0 {
				val = b.constVal(0)
			} else {
				val = b.newValue(Value{Kind: ValParam, Reg: sparc.Reg(v), Pos: -1})
			}
		} else {
			val = b.newValue(Value{Kind: ValUnknown, Pos: -1})
		}
	case len(blk.Preds) == 1:
		val = b.readVar(v, blk.Preds[0])
	default:
		val = b.newValue(Value{Kind: ValPhi, Block: block, Pos: -1})
		b.phiVar[val] = v
		b.writeVar(v, block, val)
		val = b.addPhiOperands(v, val)
	}
	b.writeVar(v, block, val)
	return val
}

func (b *builder) addPhiOperands(v, phi int) int {
	blk := b.f.Blocks[b.info.Vals[phi].Block]
	for _, p := range blk.Preds {
		arg := b.readVar(v, p)
		b.info.Vals[phi].Args = append(b.info.Vals[phi].Args, arg)
		if b.info.Vals[arg].Kind == ValPhi {
			b.phiUsers[arg] = append(b.phiUsers[arg], phi)
		}
	}
	return b.tryRemoveTrivialPhi(phi)
}

func (b *builder) tryRemoveTrivialPhi(phi int) int {
	same := -1
	for _, a := range b.info.Vals[phi].Args {
		a = b.info.Resolve(a)
		if a == phi || a == same {
			continue
		}
		if same != -1 {
			return phi // not trivial
		}
		same = a
	}
	if same == -1 {
		// Phi of only itself: unreachable; make it unknown.
		b.info.Vals[phi].Kind = ValUnknown
		return phi
	}
	b.info.Vals[phi].replacedBy = same
	// Users of the removed phi may have become trivial themselves; recheck
	// every phi user other than the removed phi itself.
	for _, user := range b.phiUsers[phi] {
		u := b.info.Resolve(user)
		if u != phi && b.info.Vals[u].Kind == ValPhi {
			b.tryRemoveTrivialPhi(u)
		}
	}
	return same
}

func (b *builder) sealBlock(block int) {
	for v, phi := range b.incomplete[block] {
		b.addPhiOperands(v, phi)
	}
	b.incomplete[block] = nil
	b.sealed[block] = true
}

// run walks blocks in layout order, sealing each block once all of its
// predecessors have been processed.
func (b *builder) run() {
	processed := make([]bool, len(b.f.Blocks))
	allPredsDone := func(blk *cfg.Block) bool {
		for _, p := range blk.Preds {
			if !processed[p] {
				return false
			}
		}
		return true
	}
	for _, blk := range b.f.Blocks {
		if allPredsDone(blk) && !b.sealed[blk.ID] {
			b.sealBlock(blk.ID)
		}
		b.processBlock(blk)
		processed[blk.ID] = true
	}
	// Loop headers (and anything else awaiting a later predecessor) are
	// sealed once every block has been processed.
	for id := range b.f.Blocks {
		if !b.sealed[id] {
			b.sealBlock(id)
		}
	}
	b.info.defsEnd = b.currentDef
}

func (b *builder) operand2(in sparc.Instr, item *asm.Item, block int) int {
	if !in.UseImm {
		return b.readVar(int(in.Rs2), block)
	}
	if item.ImmSym != "" {
		switch item.ImmSel {
		case asm.ImmHi:
			return b.symVal(ValSymHi, item.ImmSym, 0)
		default:
			return b.symVal(ValSym, item.ImmSym, 0)
		}
	}
	return b.constVal(in.Imm)
}

// makeOp builds an ALU value with constant folding and symbol-address
// reassembly (sethi %hi + or %lo).
func (b *builder) makeOp(op sparc.Op, a1, a2 int, block, pos int, rd sparc.Reg) int {
	v1, v2 := b.info.Val(a1), b.info.Val(a2)
	switch op {
	case sparc.Or, sparc.Orcc:
		if v1.Kind == ValConst && v1.Const == 0 {
			return b.info.Resolve(a2)
		}
		if v2.Kind == ValConst && v2.Const == 0 {
			return b.info.Resolve(a1)
		}
		if v1.Kind == ValSymHi && v2.Kind == ValSym && v1.Sym == v2.Sym {
			// The assembler resolves %lo as the low 10 bits; hi|lo is the
			// full address.
			return b.symVal(ValSym, v1.Sym, 0)
		}
		if v1.Kind == ValConst && v2.Kind == ValConst {
			return b.constVal(v1.Const | v2.Const)
		}
	case sparc.Add, sparc.Addcc:
		if v1.Kind == ValConst && v1.Const == 0 {
			return b.info.Resolve(a2)
		}
		if v2.Kind == ValConst && v2.Const == 0 {
			return b.info.Resolve(a1)
		}
		if v1.Kind == ValConst && v2.Kind == ValConst {
			return b.constVal(v1.Const + v2.Const)
		}
		if v1.Kind == ValSym && v2.Kind == ValConst {
			return b.symVal(ValSym, v1.Sym, v1.Const+v2.Const)
		}
		if v2.Kind == ValSym && v1.Kind == ValConst {
			return b.symVal(ValSym, v2.Sym, v2.Const+v1.Const)
		}
	case sparc.Sub, sparc.Subcc:
		if v2.Kind == ValConst && v2.Const == 0 {
			return b.info.Resolve(a1)
		}
		if v1.Kind == ValConst && v2.Kind == ValConst {
			return b.constVal(v1.Const - v2.Const)
		}
		if v1.Kind == ValSym && v2.Kind == ValConst {
			return b.newValue(Value{Kind: ValSym, Sym: v1.Sym, Const: v1.Const - v2.Const, Block: block, Pos: pos})
		}
	case sparc.Sll:
		if v1.Kind == ValConst && v2.Kind == ValConst {
			return b.constVal(v1.Const << (uint32(v2.Const) & 31))
		}
	case sparc.SMul:
		if v1.Kind == ValConst && v2.Kind == ValConst {
			return b.constVal(v1.Const * v2.Const)
		}
	}
	return b.newValue(Value{Kind: ValOp, Op: op, Args: []int{b.info.Resolve(a1), b.info.Resolve(a2)}, Block: block, Pos: pos, Reg: rd})
}

func (b *builder) processBlock(blk *cfg.Block) {
	id := blk.ID
	for p := blk.Start; p < blk.End; p++ {
		itemIdx := b.f.Instrs[p]
		item := &b.u.Items[itemIdx]
		in := item.Instr
		switch {
		case in.Op == sparc.Sethi:
			var val int
			if item.ImmSym != "" {
				val = b.symVal(ValSymHi, item.ImmSym, 0)
			} else {
				val = b.constVal(in.Imm << 10)
			}
			b.writeVar(int(in.Rd), id, val)

		case in.Op.IsALU():
			a1 := b.readVar(int(in.Rs1), id)
			a2 := b.operand2(in, item, id)
			val := b.makeOp(in.Op, a1, a2, id, p, in.Rd)
			if in.Rd != sparc.G0 {
				b.writeVar(int(in.Rd), id, val)
			}
			if in.Op.SetsCC() {
				b.info.CmpAt[id] = Cmp{Pos: p, Op: in.Op, Lhs: b.info.Resolve(a1), Rhs: b.info.Resolve(a2)}
			}

		case in.Op == sparc.Ld || in.Op == sparc.Ldd:
			a1 := b.readVar(int(in.Rs1), id)
			a2 := b.operand2(in, item, id)
			addr := b.makeOp(sparc.Add, a1, a2, id, p, 0)
			b.info.AddrOf[p] = addr
			var val int
			if slot, ok := b.matchSlot(p, addr); ok && in.Op == sparc.Ld {
				val = b.readVar(numRegVars+slot, id)
				b.info.LoadSlot[p] = slot
			} else {
				val = b.unknown(id, p, in.Rd)
			}
			b.writeVar(int(in.Rd), id, val)
			if in.Op == sparc.Ldd {
				b.writeVar(int(in.Rd)+1, id, b.unknown(id, p, in.Rd+1))
			}

		case in.Op == sparc.St || in.Op == sparc.Std:
			a1 := b.readVar(int(in.Rs1), id)
			a2 := b.operand2(in, item, id)
			addr := b.makeOp(sparc.Add, a1, a2, id, p, 0)
			data := b.readVar(int(in.Rd), id)
			b.info.AddrOf[p] = addr
			b.info.DataOf[p] = data
			b.escape(data)
			if slot, ok := b.matchSlot(p, addr); ok && in.Op == sparc.St {
				b.writeVar(numRegVars+slot, id, data)
				b.info.StoreSlot[p] = slot
			}

		case in.Op == sparc.Save:
			// Compute in the old window, then shift: %i0-%i5 receive the
			// caller's %o0-%o5; %fp becomes the canonical frame pointer.
			var inVals [6]int
			for k := 0; k < 6; k++ {
				inVals[k] = b.readVar(int(sparc.O0)+k, id)
			}
			o7 := b.readVar(int(sparc.O7), id)
			for k := 0; k < 6; k++ {
				b.writeVar(int(sparc.I0)+k, id, inVals[k])
			}
			b.writeVar(int(sparc.I7), id, o7)
			b.writeVar(int(sparc.FP), id, b.newValue(Value{Kind: ValFP, Block: id, Pos: p}))
			b.writeVar(int(sparc.SP), id, b.unknown(id, p, sparc.SP))
			for k := 0; k < 8; k++ {
				b.writeVar(int(sparc.L0)+k, id, b.unknown(id, p, sparc.Reg(int(sparc.L0)+k)))
			}
			for k := 0; k < 6; k++ {
				b.writeVar(int(sparc.O0)+k, id, b.unknown(id, p, sparc.Reg(int(sparc.O0)+k)))
			}
			b.writeVar(int(sparc.O7), id, b.unknown(id, p, sparc.O7))

		case in.Op == sparc.Restore:
			for r := 8; r < 32; r++ {
				b.writeVar(r, id, b.unknown(id, p, sparc.Reg(r)))
			}

		case in.Op == sparc.Call:
			// Outgoing arguments escape; %o registers are clobbered on
			// return; global scalars may be rewritten by the callee. The
			// callee's parameter count (from its symbol records) bounds
			// which registers carry arguments — without it, stale scratch
			// values would look like escaping pointers.
			nargs := 6
			if n, ok := b.paramCount[item.TargetSym]; ok {
				nargs = n
			}
			for k := 0; k < nargs; k++ {
				b.escape(b.readVar(int(sparc.O0)+k, id))
			}
			for k := 0; k < 8; k++ {
				b.writeVar(int(sparc.O0)+k, id, b.unknown(id, p, sparc.Reg(int(sparc.O0)+k)))
			}
			for si, s := range b.slots {
				if !s.IsFP {
					b.writeVar(numRegVars+si, id, b.unknown(id, p, 0))
				}
			}

		case in.Op == sparc.Ta:
			// Traps read %o0 (and %o1 for string prints); the allocator
			// returns through %o0.
			b.escape(b.readVar(int(sparc.O0), id))
			if in.Imm == 3 {
				b.escape(b.readVar(int(sparc.O1), id))
			}
			b.writeVar(int(sparc.O0), id, b.unknown(id, p, sparc.O0))

		case in.Op == sparc.Jmpl:
			b.escape(b.readVar(int(sparc.I0), id))
			b.escape(b.readVar(int(sparc.O0), id))
			if in.Rd != sparc.G0 {
				b.writeVar(int(in.Rd), id, b.unknown(id, p, in.Rd))
			}
		}
	}
}

func (b *builder) escape(val int) {
	if b.track {
		b.escapes[b.info.Resolve(val)] = true
	}
}

// matchSlot reports whether the access at pos with address value addr is
// exactly the home of a convertible slot.
func (b *builder) matchSlot(pos, addr int) (int, bool) {
	if len(b.slots) == 0 {
		return 0, false
	}
	if slot, ok := b.forced[pos]; ok {
		return slot, true
	}
	sh := b.info.ShapeOf(addr)
	if !sh.IsAddr || !sh.Known {
		return 0, false
	}
	var key string
	if sh.FPRel {
		key = fmt.Sprintf("fp:%d", sh.Off)
	} else if sh.Off == 0 {
		key = "g:" + sh.Sym
	} else {
		return 0, false
	}
	slot, ok := b.slotBy[key]
	return slot, ok
}

// convertibleSlots selects the scalar symbols safe to convert to
// pseudo-variables: 4-byte locals/params and globals whose address never
// escapes.
func convertibleSlots(pass1 *Info, f *cfg.Func, syms []asm.Sym) []Slot {
	// Addresses escaping via values.
	fpOffEscaped := make(map[int32]bool)
	globalEscaped := make(map[string]bool)
	for id := range pass1.Vals {
		if pass1.Vals[id].replacedBy >= 0 {
			continue
		}
		if !pass1EscapedVal(pass1, id) {
			continue
		}
		sh := pass1.ShapeOf(id)
		if !sh.IsAddr {
			continue
		}
		if sh.FPRel {
			if sh.Known {
				fpOffEscaped[sh.Off] = true
			} else {
				// A frame address with unknown offset escaped: give up on
				// all frame slots in this function.
				fpOffEscaped[escapeAll] = true
			}
		} else if sh.Sym != "" {
			globalEscaped[sh.Sym] = true
		}
	}
	// Globals whose address is materialized in static data escape too.
	for _, it := range f.Unit.Items {
		if it.Kind == asm.ItemWord && it.WordSym != "" {
			globalEscaped[it.WordSym] = true
		}
	}

	var slots []Slot
	for _, s := range syms {
		switch s.Kind {
		case asm.SymLocal, asm.SymParam:
			if s.Func != f.Name || s.Size != 4 {
				continue
			}
			if fpOffEscaped[s.FpOff] || fpOffEscaped[escapeAll] {
				continue
			}
			slots = append(slots, Slot{Sym: s, IsFP: true, FpOff: s.FpOff})
		case asm.SymGlobal:
			if s.Size != 4 || globalEscaped[s.Label] {
				continue
			}
			slots = append(slots, Slot{Sym: s, Label: s.Label})
		}
	}
	return slots
}

const escapeAll = int32(-1 << 30)

func pass1EscapedVal(info *Info, id int) bool {
	return info.escaped[id]
}
