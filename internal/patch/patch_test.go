package patch

import (
	"testing"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/monitor"
	"databreak/internal/sparc"
)

// buildAndRun patches src with the strategy, assembles, attaches a monitor
// service, creates the given regions, runs, and returns machine + service +
// program.
func buildAndRun(t *testing.T, src string, strat Strategy, regions [][2]uint32) (*machine.Machine, *monitor.Service, *asm.Program) {
	t.Helper()
	u, err := asm.Parse("prog.s", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Apply(Options{Strategy: strat}, u)
	if err != nil {
		t.Fatalf("patch: %v", err)
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.Load(m)
	cfg := monitor.DefaultConfig
	if strat == Cache || strat == CacheInline {
		cfg.Flags = true
	}
	svc, err := monitor.NewService(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regions {
		if err := svc.CreateRegion(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run (%v): %v", strat, err)
	}
	return m, svc, prog
}

// progGlobalStores writes 0..9 into a global array, then writes one word
// into a second global.
const progGlobalStores = `
main:
	save %sp, -96, %sp
	mov 0, %l0
	set arr, %l1
loop:
	cmp %l0, 10
	bge done
	sll %l0, 2, %o0
	add %l1, %o0, %o0
	st %l0, [%o0]
	inc %l0
	ba loop
done:
	set target, %o1
	mov 77, %o2
	st %o2, [%o1]
	mov 0, %i0
	restore
	retl
	.data
arr:	.space 40
target:	.word 0
`

var allCheckStrategies = []Strategy{
	Bitmap, BitmapInline, BitmapInlineRegisters, Cache, CacheInline,
}

func targetAddr(t *testing.T, prog *asm.Program) uint32 {
	t.Helper()
	a, ok := prog.DataLabels["target"]
	if !ok {
		t.Fatal("no target label")
	}
	return a
}

func TestEveryStrategyDetectsHit(t *testing.T) {
	for _, strat := range allCheckStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			// target = DataBase + 40.
			m, svc, prog := buildAndRun(t, progGlobalStores, strat,
				[][2]uint32{{machine.DataBase + 40, 4}})
			want := targetAddr(t, prog)
			if len(svc.Hits) != 1 {
				t.Fatalf("hits = %d, want 1 (%v)", len(svc.Hits), svc.Hits)
			}
			if svc.Hits[0].Addr != want || svc.Hits[0].Size != 4 {
				t.Fatalf("hit = %+v, want addr %#x", svc.Hits[0], want)
			}
			if m.ReadWord(want) != 77 {
				t.Fatal("store must still have executed")
			}
		})
	}
}

func TestEveryStrategyNoFalseHits(t *testing.T) {
	for _, strat := range allCheckStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			// Monitor an address the program never writes.
			_, svc, _ := buildAndRun(t, progGlobalStores, strat,
				[][2]uint32{{machine.HeapBase + 0x1000, 4}})
			if len(svc.Hits) != 0 {
				t.Fatalf("unexpected hits: %+v", svc.Hits)
			}
		})
	}
}

func TestHitInsideMonitoredArray(t *testing.T) {
	for _, strat := range allCheckStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			// Monitor arr[4..5]: exactly two of the ten loop stores hit.
			_, svc, _ := buildAndRun(t, progGlobalStores, strat,
				[][2]uint32{{machine.DataBase + 16, 8}})
			if len(svc.Hits) != 2 {
				t.Fatalf("hits = %d, want 2: %+v", len(svc.Hits), svc.Hits)
			}
		})
	}
}

func TestStackWriteDetection(t *testing.T) {
	src := `
main:
	save %sp, -96, %sp
	mov 5, %o0
	st %o0, [%fp-16]
	mov 0, %i0
	restore
	retl
`
	for _, strat := range allCheckStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			// First run unmonitored to learn the frame address, then
			// monitor the slot and re-run.
			u := asm.MustParse("p.s", src)
			res, err := Apply(Options{Strategy: strat}, u)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
			if err != nil {
				t.Fatal(err)
			}
			m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
			prog.Load(m)
			cfg := monitor.DefaultConfig
			cfg.Flags = strat == Cache || strat == CacheInline
			svc, err := monitor.NewService(cfg, m)
			if err != nil {
				t.Fatal(err)
			}
			// Frame: sp starts at StackTop; main's fp = StackTop.
			slot := machine.StackTop - 16
			if err := svc.CreateRegion(slot, 4); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if len(svc.Hits) != 1 || svc.Hits[0].Addr != slot {
				t.Fatalf("hits = %+v, want one at %#x", svc.Hits, slot)
			}
		})
	}
}

func TestDoubleWordChecks(t *testing.T) {
	src := `
main:
	save %sp, -104, %sp
	mov 1, %o0
	mov 2, %o1
	std %o0, [%fp-32]
	mov 0, %i0
	restore
	retl
`
	for _, strat := range allCheckStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			u := asm.MustParse("p.s", src)
			res, err := Apply(Options{Strategy: strat}, u)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
			if err != nil {
				t.Fatal(err)
			}
			m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
			prog.Load(m)
			cfg := monitor.DefaultConfig
			cfg.Flags = strat == Cache || strat == CacheInline
			svc, _ := monitor.NewService(cfg, m)
			// Monitor only the SECOND word of the std.
			slot := machine.StackTop - 28
			if err := svc.CreateRegion(slot, 4); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if len(svc.Hits) != 1 || svc.Hits[0].Size != 8 {
				t.Fatalf("hits = %+v, want one 8-byte hit", svc.Hits)
			}
		})
	}
}

func TestDisabledFlagSkipsChecks(t *testing.T) {
	// With no regions, the disabled flag is set and checks must be skipped:
	// the "checks" counter counts preludes, but no monitor traps can fire
	// and cache counters must stay zero.
	u := asm.MustParse("p.s", progGlobalStores)
	res, err := Apply(Options{Strategy: Cache}, u)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.Load(m)
	cfg := monitor.DefaultConfig
	cfg.Flags = true
	svc, _ := monitor.NewService(cfg, m)
	_ = svc
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := prog.Counter(m, CounterWrites); got != 11 {
		t.Fatalf("writes counter = %d, want 11", got)
	}
	if got := prog.Counter(m, CacheTotalCounter(WriteBSS)); got != 0 {
		t.Fatalf("cache body ran %d times while disabled", got)
	}
}

func TestCountersTrackWritesAndChecks(t *testing.T) {
	m, _, prog := buildAndRun(t, progGlobalStores, Bitmap,
		[][2]uint32{{machine.DataBase + 40, 4}})
	if got := prog.Counter(m, CounterWrites); got != 11 {
		t.Fatalf("writes = %d, want 11", got)
	}
	if got := prog.Counter(m, CounterChecks); got != 11 {
		t.Fatalf("checks = %d, want 11", got)
	}
}

func TestSegmentCacheLocality(t *testing.T) {
	// Ten successive stores to one array share a segment: with segment
	// caching almost all checks must hit the cache (at most one miss per
	// segment transition). The loop's computed-pointer stores classify as
	// HEAP (the base register's def crosses a block boundary).
	m, _, prog := buildAndRun(t, progGlobalStores, Cache,
		[][2]uint32{{machine.HeapBase, 4}}) // far-away region
	var total, miss uint64
	for _, wt := range []WriteType{WriteStack, WriteBSS, WriteHeap, WriteBSSVar} {
		total += prog.Counter(m, CacheTotalCounter(wt))
		miss += prog.Counter(m, CacheMissCounter(wt))
	}
	if total < 11 {
		t.Fatalf("cache total = %d, want >= 11", total)
	}
	if miss > 3 {
		t.Fatalf("cache misses = %d, want <= 3 (hits=%d)", miss, total-miss)
	}
}

func TestOverheadOrdering(t *testing.T) {
	// Baseline < any checked variant; reserved registers beats plain
	// inline; the segment cache beats plain bitmap on this loopy program.
	cycles := map[Strategy]int64{}
	for _, strat := range append([]Strategy{None}, allCheckStrategies...) {
		m, _, _ := buildAndRun(t, progGlobalStores, strat,
			[][2]uint32{{machine.HeapBase, 4}})
		cycles[strat] = m.Cycles()
	}
	if cycles[None] >= cycles[Bitmap] {
		t.Fatalf("baseline %d must be cheaper than Bitmap %d", cycles[None], cycles[Bitmap])
	}
	if cycles[BitmapInlineRegisters] >= cycles[BitmapInline] {
		t.Fatalf("registers %d must beat window-pushing inline %d",
			cycles[BitmapInlineRegisters], cycles[BitmapInline])
	}
	if cycles[Cache] >= cycles[Bitmap] {
		t.Fatalf("cache %d must beat call-based bitmap %d", cycles[Cache], cycles[Bitmap])
	}
}

func TestNopsStrategy(t *testing.T) {
	u := asm.MustParse("p.s", progGlobalStores)
	res, err := Apply(Options{Strategy: Nops, Nops: 4}, u)
	if err != nil {
		t.Fatal(err)
	}
	var nops, stores int
	for _, it := range res.Units[0].Items {
		if it.Kind != asm.ItemInstr {
			continue
		}
		if it.Instr.Op.IsStore() {
			stores++
		}
		if it.Instr == (asm.MustParse("x", "nop").Items[0].Instr) {
			nops++
		}
	}
	if stores != 2 || nops != 8 {
		t.Fatalf("stores=%d nops=%d, want 2 and 8", stores, nops)
	}
}

func TestReservedRegisterRejected(t *testing.T) {
	u := asm.MustParse("p.s", `
main:
	st %g5, [%fp-8]
	mov 0, %o0
	ta 0
`)
	if _, err := Apply(Options{Strategy: Bitmap}, u); err == nil {
		t.Fatal("store using a reserved register must be rejected")
	}
}

func TestWriteTypeClassification(t *testing.T) {
	src := `
main:
	save %sp, -96, %sp
	st %g0, [%fp-8]       ! STACK
	st %g0, [%sp+64]      ! STACK
	set g, %o0
	st %g0, [%o0]         ! BSS
	mov 16, %o0
	ta 4
	st %g0, [%o0]         ! HEAP (pointer from alloc result; o0 defined by trap -> unknown -> heap)
	set g, %o1
	sll %l0, 2, %o2
	add %o1, %o2, %o3
	st %g0, [%o3]         ! BSSVAR (computed from a set base)
	mov 0, %i0
	restore
	retl
	.data
g:	.space 64
`
	u := asm.MustParse("p.s", src)
	res, err := Apply(Options{Strategy: Cache}, u)
	if err != nil {
		t.Fatal(err)
	}
	want := map[WriteType]int{WriteStack: 2, WriteBSS: 1, WriteHeap: 1, WriteBSSVar: 1}
	for wt, n := range want {
		if res.TypeCounts[wt] != n {
			t.Errorf("%v count = %d, want %d (all: %v)", wt, res.TypeCounts[wt], n, res.TypeCounts)
		}
	}
	if res.StaticWrites != 5 {
		t.Errorf("static writes = %d, want 5", res.StaticWrites)
	}
}

func TestCheckInProgressFlagCleared(t *testing.T) {
	// After a run with call-based checks, %g7 must be clear again.
	m, _, _ := buildAndRun(t, progGlobalStores, Bitmap,
		[][2]uint32{{machine.DataBase + 40, 4}})
	if m.Reg(7) != 0 { // %g7
		t.Fatal("check-in-progress flag left set")
	}
}

const progReads = `
main:
	save %sp, -96, %sp
	set cells, %l0
	mov 5, %o0
	st %o0, [%l0]       ! write cells[0]
	ld [%l0], %o1       ! read cells[0]
	ld [%l0+4], %o2     ! read cells[1]
	add %o1, %o2, %i0
	restore
	retl
	.data
cells:	.word 0
	.word 37
`

func TestReadCheckingDetectsReads(t *testing.T) {
	for _, strat := range allCheckStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			u := asm.MustParse("p.s", progReads)
			res, err := Apply(Options{Strategy: strat, CheckReads: true}, u)
			if err != nil {
				t.Fatal(err)
			}
			if res.StaticReads != 2 {
				t.Fatalf("static reads = %d, want 2", res.StaticReads)
			}
			prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
			if err != nil {
				t.Fatal(err)
			}
			m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
			prog.Load(m)
			cfg := monitor.DefaultConfig
			cfg.Flags = strat == Cache || strat == CacheInline
			svc, err := monitor.NewService(cfg, m)
			if err != nil {
				t.Fatal(err)
			}
			// Monitor cells[0]: one write hit and one read hit expected;
			// the read of cells[1] must not hit.
			if err := svc.CreateRegion(machine.DataBase, 4); err != nil {
				t.Fatal(err)
			}
			code, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if code != 42 {
				t.Fatalf("exit = %d, want 42", code)
			}
			var reads, writes int
			for _, h := range svc.Hits {
				if h.Addr != machine.DataBase {
					t.Fatalf("hit at wrong address %#x", h.Addr)
				}
				if h.Read {
					reads++
				} else {
					writes++
				}
			}
			if reads != 1 || writes != 1 {
				t.Fatalf("reads=%d writes=%d, want 1 and 1 (%+v)", reads, writes, svc.Hits)
			}
			if got := prog.Counter(m, CounterReads); got != 2 {
				t.Fatalf("reads counter = %d, want 2", got)
			}
		})
	}
}

func TestReadCheckingCostsMoreThanWriteOnly(t *testing.T) {
	// §5: reads outnumber writes 2-3x, so read+write monitoring must cost
	// measurably more than write-only.
	run := func(reads bool) int64 {
		u := asm.MustParse("p.s", progReads)
		res, err := Apply(Options{Strategy: BitmapInlineRegisters, CheckReads: reads}, u)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
		if err != nil {
			t.Fatal(err)
		}
		m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
		prog.Load(m)
		svc, _ := monitor.NewService(monitor.DefaultConfig, m)
		if err := svc.CreateRegion(machine.HeapBase, 4); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Cycles()
	}
	writeOnly := run(false)
	both := run(true)
	if both <= writeOnly {
		t.Fatalf("read+write (%d cycles) must exceed write-only (%d)", both, writeOnly)
	}
}

// progClobberRead chases a pointer: the first load overwrites its own
// address register with the loaded value ("ld [%o1], %o1"), so its check
// cannot recompute the effective address after the load executes.
const progClobberRead = `
main:
	save %sp, -96, %sp
	set ptr, %o1
	ld [%o1], %o1       ! read ptr; rd clobbers rs1
	ld [%o1], %i0       ! read cells (non-clobbering)
	restore
	retl
	.data
cells:	.word 42
ptr:	.word cells
`

// A load whose destination is one of its own address registers must be
// checked before it executes; checked after, the recomputed address is the
// loaded value, so monitored reads are silently missed (and unrelated
// addresses can false-hit). Regression test for exactly that bug.
func TestReadCheckClobberedAddressRegister(t *testing.T) {
	for _, strat := range allCheckStrategies {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			u := asm.MustParse("p.s", progClobberRead)
			res, err := Apply(Options{Strategy: strat, CheckReads: true}, u)
			if err != nil {
				t.Fatal(err)
			}
			if res.StaticReads != 2 {
				t.Fatalf("static reads = %d, want 2", res.StaticReads)
			}
			prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
			if err != nil {
				t.Fatal(err)
			}
			m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
			prog.Load(m)
			cfg := monitor.DefaultConfig
			cfg.Flags = strat == Cache || strat == CacheInline
			svc, err := monitor.NewService(cfg, m)
			if err != nil {
				t.Fatal(err)
			}
			// Monitor both words; each load must report its true address.
			ptrAddr, ok := prog.DataLabels["ptr"]
			if !ok {
				t.Fatal("no ptr label")
			}
			cellsAddr, ok := prog.DataLabels["cells"]
			if !ok {
				t.Fatal("no cells label")
			}
			if err := svc.CreateRegion(ptrAddr, 4); err != nil {
				t.Fatal(err)
			}
			if err := svc.CreateRegion(cellsAddr, 4); err != nil {
				t.Fatal(err)
			}
			code, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if code != 42 {
				t.Fatalf("exit = %d, want 42", code)
			}
			hits := map[uint32]int{}
			for _, h := range svc.Hits {
				if !h.Read {
					t.Fatalf("unexpected write hit at %#x", h.Addr)
				}
				hits[h.Addr]++
			}
			if hits[ptrAddr] != 1 || hits[cellsAddr] != 1 || len(hits) != 2 {
				t.Fatalf("read hits = %v, want one at ptr %#x and one at cells %#x",
					hits, ptrAddr, cellsAddr)
			}
		})
	}
}

func TestLoadClobbersAddress(t *testing.T) {
	ld := func(rs1, rs2, rd sparc.Reg, imm bool) sparc.Instr {
		return sparc.Instr{Op: sparc.Ld, Rs1: rs1, Rs2: rs2, Rd: rd, UseImm: imm}
	}
	cases := []struct {
		in   sparc.Instr
		want bool
	}{
		{ld(sparc.O1, 0, sparc.O1, true), true},            // ld [%o1], %o1
		{ld(sparc.O1, 0, sparc.O2, true), false},           // ld [%o1], %o2
		{ld(sparc.O1, sparc.O3, sparc.O3, false), true},    // ld [%o1+%o3], %o3
		{ld(sparc.O1, sparc.O3, sparc.O4, false), false},   // ld [%o1+%o3], %o4
		{ld(sparc.O1, 0, sparc.G0, true), false},           // ld [%o1], %g0
		{sparc.Instr{Op: sparc.Ldd, Rs1: sparc.O3, Rd: sparc.O2, UseImm: true}, true},  // ldd writes %o2,%o3
		{sparc.Instr{Op: sparc.Ldd, Rs1: sparc.O1, Rd: sparc.O4, UseImm: true}, false}, // ldd writes %o4,%o5
		{sparc.Instr{Op: sparc.St, Rs1: sparc.O1, Rd: sparc.O1, UseImm: true}, false},  // stores never clobber
	}
	for _, c := range cases {
		if got := LoadClobbersAddress(c.in); got != c.want {
			t.Errorf("LoadClobbersAddress(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
