// Package patch implements the write-check insertion half of the paper's
// analysis tool: it rewrites assembled units, appending a check sequence
// after every write instruction (§2: checks go after the write so that a
// wild jump directly to a store is still detected).
//
// The five check implementations of Table 1 are provided, plus a
// nop-insertion strategy used for the cache-alignment regression of §3.3.1:
//
//	Bitmap                  procedure-call segmented bitmap lookup
//	BitmapInline            the same lookup expanded inline (pushes a window)
//	BitmapInlineRegisters   inline lookup in reserved global registers
//	Cache                   4-instruction inline segment-cache check,
//	                        procedure call on a cache miss
//	CacheInline             segment-cache check with the miss path inline
//	Nops                    N nops before each write (alignment probe)
//
// Event counters (free of cycle cost) are attached so the harness can
// recover dynamic write and check counts.
//
// Patching here is static: it rewrites assembly units before they are
// assembled and loaded, so it needs no coordination with the machine's
// block-dispatch index. Anything that rewrites text AFTER machine.LoadText
// (dynamic check insertion/deletion, elim.Runtime) must instead go through
// machine.PatchInstr, which keeps the simulated I-cache and the block index
// coherent with the new text.
package patch

import (
	"fmt"
	"strings"

	"databreak/internal/asm"
	"databreak/internal/monitor"
	"databreak/internal/sparc"
)

// Strategy selects a write-check implementation.
type Strategy int

const (
	// None performs no patching (baseline timing runs).
	None Strategy = iota
	// Bitmap checks every write via a call to the monitor library.
	Bitmap
	// BitmapInline expands the bitmap lookup at every write.
	BitmapInline
	// BitmapInlineRegisters expands the lookup using reserved registers
	// (%g1-%g4), avoiding the register-window push and the table-base
	// materialization. This is the paper's recommended implementation.
	BitmapInlineRegisters
	// Cache checks a per-write-type segment cache inline and calls the
	// monitor library on a cache miss.
	Cache
	// CacheInline expands the cache-miss path inline as well.
	CacheInline
	// Nops inserts Options.Nops nop instructions before each write.
	Nops
	// HashCall checks every write via the pilot study's hash-table lookup
	// (the 209%-642% baseline the segmented bitmap replaced).
	HashCall
)

var strategyNames = map[Strategy]string{
	None: "None", Bitmap: "Bitmap", BitmapInline: "BitmapInline",
	BitmapInlineRegisters: "BitmapInlineRegisters", Cache: "Cache",
	CacheInline: "CacheInline", Nops: "Nops", HashCall: "HashCall",
}

func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// WriteType classifies writes for segment caching (§3.1). BSSVar is the
// Fortran computed-base idiom; it shares the BSS cache register but is
// counted separately.
type WriteType int

const (
	WriteStack WriteType = iota
	WriteBSS
	WriteHeap
	WriteBSSVar
)

func (t WriteType) String() string {
	switch t {
	case WriteStack:
		return "stack"
	case WriteBSS:
		return "bss"
	case WriteHeap:
		return "heap"
	case WriteBSSVar:
		return "bssvar"
	}
	return "?"
}

// cacheReg returns the reserved global holding this type's segment cache.
func (t WriteType) cacheReg() string {
	switch t {
	case WriteStack:
		return "%g1"
	case WriteHeap:
		return "%g3"
	default: // BSS and BSSVar share %g2
		return "%g2"
	}
}

// missRoutine returns the library slow path for this type, access size, and
// access kind.
func (t WriteType) missRoutine(double, read bool) string {
	kind := "bss"
	switch t {
	case WriteStack:
		kind = "stack"
	case WriteHeap:
		kind = "heap"
	}
	name := "__mrs_miss_" + kind + "_"
	if read {
		name += "rd_"
	}
	if double {
		return name + "d"
	}
	return name + "w"
}

// Counter names attached to patched code.
const (
	CounterWrites = "writes" // dynamic count of write instructions
	CounterChecks = "checks" // dynamic count of executed check preludes
	CounterReads  = "reads"  // dynamic count of load instructions (CheckReads)
)

// CacheTotalCounter and CacheMissCounter name the per-write-type segment
// cache statistics used for Figure 3.
func CacheTotalCounter(t WriteType) string { return "cache_total_" + t.String() }
func CacheMissCounter(t WriteType) string  { return "cache_miss_" + t.String() }

// Options configures Apply.
type Options struct {
	Strategy Strategy
	Monitor  monitor.Config
	// Nops is the number of nops per write for the Nops strategy.
	Nops int
	// SkipDisabledBranch omits the disabled-flag fast path (used by unit
	// tests that want the check body to run unconditionally).
	SkipDisabledBranch bool
	// CheckReads also instruments load instructions (the paper's §5
	// extension for access anomaly detection: "the dynamic count of read
	// instructions is typically two to three times that of write
	// instructions").
	CheckReads bool
}

// Result is the outcome of patching.
type Result struct {
	// Units holds the rewritten program units followed by the monitor
	// library; assemble them in this order.
	Units []*asm.Unit
	// StaticWrites is the number of write instructions patched.
	StaticWrites int
	// StaticReads is the number of load instructions patched (CheckReads).
	StaticReads int
	// TypeCounts tallies static writes per write type.
	TypeCounts map[WriteType]int
}

// reservedRegs are the registers the MRS claims; program code must not use
// them (the mini-C compiler honors this).
var reservedRegs = map[sparc.Reg]bool{
	sparc.G1: true, sparc.G2: true, sparc.G3: true, sparc.G4: true,
	sparc.G5: true, sparc.G6: true, sparc.G7: true,
	sparc.L6: true, sparc.L7: true,
}

type patcher struct {
	opts     Options
	segShift uint32
	wmask    uint32
	nextID   int
	out      []asm.Item
	res      *Result
	// err records the first failure while emitting generated source; a
	// malformed check sequence is reported as an error from Apply, not a
	// panic (the geometry that shapes the sequence is user input).
	err error
}

// Apply rewrites the given program units with the selected strategy and
// returns them together with a matching monitor library unit.
func Apply(opts Options, units ...*asm.Unit) (*Result, error) {
	if opts.Monitor.SegWords == 0 {
		opts.Monitor = monitor.DefaultConfig
	}
	if err := opts.Monitor.Validate(); err != nil {
		return nil, err
	}
	// Segment caching requires the monitored flag in table entries.
	if opts.Strategy == Cache || opts.Strategy == CacheInline {
		opts.Monitor.Flags = true
	}
	p := &patcher{
		opts:     opts,
		segShift: opts.Monitor.SegShift(),
		wmask:    opts.Monitor.SegWords - 1,
		res:      &Result{TypeCounts: make(map[WriteType]int)},
	}
	for _, u := range units {
		nu, err := p.patchUnit(u)
		if err != nil {
			return nil, err
		}
		p.res.Units = append(p.res.Units, nu)
	}
	if opts.Strategy != None && opts.Strategy != Nops {
		libSrc, err := monitor.LibrarySource(opts.Monitor)
		if err != nil {
			return nil, err
		}
		lib, err := asm.Parse("__mrslib", libSrc)
		if err != nil {
			return nil, fmt.Errorf("patch: generated monitor library does not parse: %w", err)
		}
		p.res.Units = append(p.res.Units, lib)
	}
	return p.res, nil
}

func (p *patcher) patchUnit(u *asm.Unit) (*asm.Unit, error) {
	nu := &asm.Unit{Name: u.Name + "+mrs"}
	p.out = nu.Items
	for i := range u.Items {
		it := u.Items[i]
		if it.Kind == asm.ItemInstr && it.Instr.Op.IsLoad() && p.opts.CheckReads &&
			p.opts.Strategy != None && p.opts.Strategy != Nops {
			if err := checkReserved(&it); err != nil {
				return nil, fmt.Errorf("%s:%d: %w", u.Name, it.Line, err)
			}
			p.res.StaticReads++
			wt := classifyWrite(u.Items, i)
			it.CountName = CounterReads
			if LoadClobbersAddress(it.Instr) {
				p.emitCheck(&it, wt)
				p.emit(it)
			} else {
				p.emit(it)
				p.emitCheck(&it, wt)
			}
			continue
		}
		if it.Kind != asm.ItemInstr || !it.Instr.Op.IsStore() {
			p.emit(it)
			continue
		}
		if err := checkReserved(&it); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", u.Name, it.Line, err)
		}
		p.res.StaticWrites++
		wt := classifyWrite(u.Items, i)
		p.res.TypeCounts[wt]++

		if p.opts.Strategy == Nops {
			for n := 0; n < p.opts.Nops; n++ {
				p.emit(instrItem(sparc.MakeNop(), it.Section))
			}
		}
		// Count the write itself (cost free).
		it.CountName = CounterWrites
		p.emit(it)
		if p.opts.Strategy != None && p.opts.Strategy != Nops {
			p.emitCheck(&it, wt)
		}
	}
	nu.Items = p.out
	if p.err != nil {
		return nil, p.err
	}
	return nu, nil
}

func (p *patcher) emit(it asm.Item) { p.out = append(p.out, it) }

func (p *patcher) emitSrc(section, src string) {
	u, err := asm.Parse("__gen", src)
	if err != nil {
		if p.err == nil {
			p.err = fmt.Errorf("patch: generated check sequence does not parse: %w", err)
		}
		return
	}
	for _, it := range u.Items {
		it.Section = section
		p.out = append(p.out, it)
	}
}

func instrItem(in sparc.Instr, section string) asm.Item {
	return asm.Item{Kind: asm.ItemInstr, Instr: in, Section: section}
}

func checkReserved(it *asm.Item) error {
	regs := []sparc.Reg{it.Instr.Rd, it.Instr.Rs1}
	if !it.Instr.UseImm {
		regs = append(regs, it.Instr.Rs2)
	}
	for _, r := range regs {
		if reservedRegs[r] {
			return fmt.Errorf("write instruction uses MRS-reserved register %s", r)
		}
	}
	return nil
}

// classifyWrite assigns a write type by inspecting the store's base address
// expression, scanning backwards within the basic block for the most recent
// definition of the base register (§3.1's write types).
func classifyWrite(items []asm.Item, idx int) WriteType {
	st := items[idx].Instr
	if st.Rs1 == sparc.FP || st.Rs1 == sparc.SP {
		return WriteStack
	}
	// Walk backwards to the defining instruction of the base register,
	// stopping at labels and control transfers (block boundaries).
	base := st.Rs1
	for j := idx - 1; j >= 0 && idx-j < 32; j-- {
		it := &items[j]
		if it.Kind == asm.ItemLabel {
			break
		}
		if it.Kind != asm.ItemInstr {
			continue
		}
		in := it.Instr
		if in.Op == sparc.Br || in.Op == sparc.Call || in.Op == sparc.Jmpl || in.Op == sparc.Ta {
			// Control transfers end the block; traps may redefine %o
			// registers (the allocator returns through %o0).
			break
		}
		if in.Rd != base || in.Op == sparc.St || in.Op == sparc.Std {
			continue
		}
		switch in.Op {
		case sparc.Sethi:
			return WriteBSS // set of a data address (first half)
		case sparc.Or:
			if in.Rs1 == base && in.UseImm && it.ImmSym != "" {
				return WriteBSS // second half of a set
			}
			if in.Rs1 == sparc.G0 && in.UseImm {
				return WriteBSS // small constant address
			}
			return WriteHeap
		case sparc.Ld, sparc.Ldd:
			return WriteHeap // pointer loaded from memory
		case sparc.Add, sparc.Sub:
			// Computed from another register: the Fortran BSS-base idiom if
			// that register was itself set to a data address.
			if !in.UseImm || in.Rs1 != base {
				return bssVarOrHeap(items, j, in.Rs1)
			}
			// add base, imm, base: keep tracing the same register.
			continue
		default:
			return WriteHeap
		}
	}
	return WriteHeap
}

// bssVarOrHeap resolves "st via reg computed from base+offset" to BSSVar
// when base traces to a data-address set, Heap otherwise.
func bssVarOrHeap(items []asm.Item, idx int, base sparc.Reg) WriteType {
	for j := idx - 1; j >= 0 && idx-j < 32; j-- {
		it := &items[j]
		if it.Kind == asm.ItemLabel {
			break
		}
		if it.Kind != asm.ItemInstr {
			continue
		}
		in := it.Instr
		if in.Op == sparc.Br || in.Op == sparc.Call || in.Op == sparc.Jmpl {
			break
		}
		if in.Rd != base || in.Op.IsStore() {
			continue
		}
		switch in.Op {
		case sparc.Sethi:
			return WriteBSSVar
		case sparc.Or:
			if in.Rs1 == base && in.UseImm && it.ImmSym != "" {
				return WriteBSSVar
			}
			return WriteHeap
		default:
			return WriteHeap
		}
	}
	return WriteHeap
}

// emitCheck appends the check sequence for the store in it.
func (p *patcher) emitCheck(it *asm.Item, wt WriteType) {
	id := p.nextID
	p.nextID++
	p.emitSrc(it.Section, CheckText(p.opts, it.Instr, wt, id))
}

// LoadClobbersAddress reports whether the load's destination register
// overwrites one of its own address registers (e.g. "ld [%o1], %o1"). The
// check sequence recomputes the effective address from the instruction's
// operands, so for such loads it must run before the load: placed after,
// it would check a garbage address — missing monitored reads and trapping
// on unrelated addresses. Stores never have this problem (they read their
// operands and write only memory), which is why the paper can place every
// write check after the write.
func LoadClobbersAddress(in sparc.Instr) bool {
	if !in.Op.IsLoad() {
		return false
	}
	rds := [2]sparc.Reg{in.Rd, in.Rd}
	if in.Op == sparc.Ldd {
		rds[1] = in.Rd + 1
	}
	for _, rd := range rds {
		if rd == sparc.G0 {
			continue
		}
		if rd == in.Rs1 || (!in.UseImm && rd == in.Rs2) {
			return true
		}
	}
	return false
}

// CheckText renders the check sequence for store st under the given options
// as assembly text. id must be unique per emitted check (it names internal
// labels). The elimination rewriter (internal/elim) reuses this for the
// checks it keeps and for dynamically re-inserted patch-block checks.
func CheckText(opts Options, st sparc.Instr, wt WriteType, id int) string {
	segShift := opts.Monitor.SegShift()
	wmask := opts.Monitor.SegWords - 1
	double := st.Op == sparc.Std || st.Op == sparc.Ldd
	read := st.Op.IsLoad()

	var b strings.Builder
	pr := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	skip := fmt.Sprintf("__ck%d_skip", id)

	// Disabled-flag fast path (§2): branch around the check body.
	if !opts.SkipDisabledBranch {
		pr("\t.count %q", CounterChecks)
		pr("\ttst %%g6")
		pr("\tbne %s", skip)
	}
	// Target address into %g5.
	if st.UseImm {
		pr("\tadd %s, %d, %%g5", st.Rs1, st.Imm)
	} else {
		pr("\tadd %s, %s, %%g5", st.Rs1, st.Rs2)
	}

	mask, trap := 1, 6
	if double {
		mask, trap = 3, 7
	}
	if read {
		trap += 4 // TrapMonRead4 / TrapMonRead8
	}

	routine := func(base string) string {
		name := base
		if read {
			name += "rd"
		}
		if double {
			return name + "_d"
		}
		return name + "_w"
	}
	switch opts.Strategy {
	case Bitmap:
		pr("\tcall %s", routine("__mrs_check"))

	case HashCall:
		// The hash routines report write hits only; read checking routes
		// through the bitmap routines (reads are not part of the pilot
		// study's comparison).
		if read {
			pr("\tcall %s", routine("__mrs_check"))
		} else if double {
			pr("\tcall __mrs_hash_d")
		} else {
			pr("\tcall __mrs_hash_w")
		}

	case BitmapInline:
		// Full lookup inline; needs temporaries, so push a window.
		pr("\tsave %%sp, -96, %%sp")
		pr("\tsrl %%g5, %d, %%l0", segShift)
		pr("\tsll %%l0, 2, %%l0")
		pr("\tset %d, %%l1", monitor.SegTableBase)
		pr("\tadd %%l1, %%l0, %%l0")
		pr("\tld [%%l0], %%l1")
		if opts.Monitor.Flags {
			pr("\tandn %%l1, 1, %%l1")
		}
		pr("\tsrl %%g5, 2, %%l2")
		pr("\tand %%l2, %d, %%l2", wmask)
		pr("\tsrl %%l2, 5, %%l3")
		pr("\tsll %%l3, 2, %%l3")
		pr("\tadd %%l1, %%l3, %%l3")
		pr("\tld [%%l3], %%l3")
		pr("\tsrl %%l3, %%l2, %%l3")
		pr("\tandcc %%l3, %d, %%g0", mask)
		pr("\tbe __ck%d_out", id)
		pr("\tta %d", trap)
		pr("__ck%d_out:", id)
		pr("\trestore")

	case BitmapInlineRegisters:
		// 12 register instructions and 2 loads, exactly as §3.3.3 costs it.
		pr("\tsrl %%g5, %d, %%g1", segShift)
		pr("\tsll %%g1, 2, %%g1")
		pr("\tadd %%g4, %%g1, %%g1")
		pr("\tld [%%g1], %%g1")
		if opts.Monitor.Flags {
			pr("\tandn %%g1, 1, %%g1")
		}
		pr("\tsrl %%g5, 2, %%g2")
		pr("\tand %%g2, %d, %%g2", wmask)
		pr("\tsrl %%g2, 5, %%g3")
		pr("\tsll %%g3, 2, %%g3")
		pr("\tadd %%g1, %%g3, %%g3")
		pr("\tld [%%g3], %%g3")
		pr("\tsrl %%g3, %%g2, %%g3")
		pr("\tandcc %%g3, %d, %%g0", mask)
		pr("\tbe %s", skip)
		pr("\tta %d", trap)

	case Cache:
		// The four always-inlined cache-check instructions; slow path by
		// call (§3.2).
		pr("\t.count %q", CacheTotalCounter(wt))
		pr("\tsrl %%g5, %d, %%l6", segShift)
		pr("\tcmp %%l6, %s", wt.cacheReg())
		pr("\tbe %s", skip)
		pr("\t.count %q", CacheMissCounter(wt))
		pr("\tcall %s", wt.missRoutine(double, read))

	case CacheInline:
		pr("\t.count %q", CacheTotalCounter(wt))
		pr("\tsrl %%g5, %d, %%l6", segShift)
		pr("\tcmp %%l6, %s", wt.cacheReg())
		pr("\tbe %s", skip)
		pr("\t.count %q", CacheMissCounter(wt))
		pr("\tsave %%sp, -96, %%sp")
		pr("\tsrl %%g5, %d, %%l0", segShift)
		pr("\tsll %%l0, 2, %%l1")
		pr("\tset %d, %%l2", monitor.SegTableBase)
		pr("\tadd %%l2, %%l1, %%l1")
		pr("\tld [%%l1], %%l2")
		pr("\tandcc %%l2, 1, %%g0")
		pr("\tbne __ck%d_full", id)
		pr("\tmov %%l0, %s", wt.cacheReg())
		pr("\tba __ck%d_out", id)
		pr("__ck%d_full:", id)
		pr("\tandn %%l2, 1, %%l2")
		pr("\tsrl %%g5, 2, %%l3")
		pr("\tand %%l3, %d, %%l3", wmask)
		pr("\tsrl %%l3, 5, %%l4")
		pr("\tsll %%l4, 2, %%l4")
		pr("\tadd %%l2, %%l4, %%l4")
		pr("\tld [%%l4], %%l4")
		pr("\tsrl %%l4, %%l3, %%l4")
		pr("\tandcc %%l4, %d, %%g0", mask)
		pr("\tbe __ck%d_out", id)
		pr("\tta %d", trap)
		pr("__ck%d_out:", id)
		pr("\trestore")
	}

	pr("%s:", skip)
	return b.String()
}
