package sparc

import (
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := map[Reg]string{
		G0: "%g0", G7: "%g7", O0: "%o0", SP: "%sp", O7: "%o7",
		L0: "%l0", L7: "%l7", I0: "%i0", FP: "%fp", I7: "%i7",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
}

func TestRegIsGlobal(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		want := r <= G7
		if got := r.IsGlobal(); got != want {
			t.Errorf("%s.IsGlobal() = %v, want %v", r, got, want)
		}
	}
}

func TestOpClassification(t *testing.T) {
	if !St.IsStore() || !Std.IsStore() {
		t.Error("St/Std must be stores")
	}
	if Ld.IsStore() || Add.IsStore() {
		t.Error("Ld/Add must not be stores")
	}
	if !Ld.IsLoad() || !Ldd.IsLoad() {
		t.Error("Ld/Ldd must be loads")
	}
	if !Subcc.SetsCC() || Add.SetsCC() {
		t.Error("SetsCC wrong for Subcc/Add")
	}
	if !Add.IsALU() || !Subcc.IsALU() || St.IsALU() || Br.IsALU() {
		t.Error("IsALU misclassifies")
	}
}

func TestCondNegateInvolution(t *testing.T) {
	for c := Cond(0); c < numConds; c++ {
		if c.Negate().Negate() != c {
			t.Errorf("%s: Negate is not an involution", c)
		}
	}
}

func TestCondNegateComplement(t *testing.T) {
	// For every cc state, exactly one of c and !c holds.
	f := func(n, z, v, carry bool) bool {
		cc := CC{N: n, Z: z, V: v, C: carry}
		for c := Cond(0); c < numConds; c++ {
			if c.Eval(cc) == c.Negate().Eval(cc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCondEvalSignedOrder(t *testing.T) {
	// Signed comparison conditions must agree with Go's comparison when the
	// cc was produced by a - b (no overflow cases here by construction).
	check := func(a, b int32) {
		r := a - b
		cc := CC{
			N: r < 0,
			Z: r == 0,
			V: (a >= 0 && b < 0 && r < 0) || (a < 0 && b >= 0 && r >= 0),
			C: uint32(a) < uint32(b),
		}
		tests := []struct {
			c    Cond
			want bool
		}{
			{BE, a == b}, {BNE, a != b}, {BL, a < b}, {BLE, a <= b},
			{BG, a > b}, {BGE, a >= b},
			{BLU, uint32(a) < uint32(b)}, {BGEU, uint32(a) >= uint32(b)},
			{BGU, uint32(a) > uint32(b)}, {BLEU, uint32(a) <= uint32(b)},
		}
		for _, tt := range tests {
			if got := tt.c.Eval(cc); got != tt.want {
				t.Errorf("a=%d b=%d cond=%s: got %v want %v", a, b, tt.c, got, tt.want)
			}
		}
	}
	vals := []int32{-1 << 30, -1000, -1, 0, 1, 2, 1000, 1 << 30}
	for _, a := range vals {
		for _, b := range vals {
			check(a, b)
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{MakeNop(), "nop"},
		{RI(Add, O0, 4, O1), "add %o0, 4, %o1"},
		{RR(Sub, L1, L2, L3), "sub %l1, %l2, %l3"},
		{LoadRI(FP, -20, O0), "ld [%fp-20], %o0"},
		{StoreRI(O0, FP, -20), "st %o0, [%fp-20]"},
		{Branch(BNE, 7), "bne .+7"},
		{Instr{Op: Ta, Imm: 3, UseImm: true}, "ta 3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestBuilders(t *testing.T) {
	in := RI(Add, O0, 4, O1)
	if in.Op != Add || in.Rs1 != O0 || in.Imm != 4 || !in.UseImm || in.Rd != O1 {
		t.Errorf("RI built %+v", in)
	}
	in = StoreRI(O2, SP, 8)
	if !in.Op.IsStore() || in.Rd != O2 || in.Rs1 != SP || in.Imm != 8 {
		t.Errorf("StoreRI built %+v", in)
	}
}
