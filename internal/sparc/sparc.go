// Package sparc defines the SPARC-subset instruction set used by the
// simulator, assembler, and patching tool.
//
// The subset models the parts of SPARC v8 that matter for reproducing
// "Practical Data Breakpoints" (PLDI 1993): integer ALU ops with and without
// condition-code updates, word loads and stores, register windows
// (save/restore), direct and indirect control transfer, sethi-based constant
// synthesis, and software traps. Branch delay slots are intentionally not
// modelled (see DESIGN.md §5).
package sparc

import "fmt"

// Reg names one of the 32 visible integer registers. Register windows mean
// that O/L/I registers are renamed on save/restore; G registers are global.
type Reg uint8

// Register numbering follows SPARC: %g0-%g7, %o0-%o7, %l0-%l7, %i0-%i7.
const (
	G0 Reg = iota
	G1
	G2
	G3
	G4
	G5
	G6
	G7
	O0
	O1
	O2
	O3
	O4
	O5
	O6 // %sp
	O7 // call return address
	L0
	L1
	L2
	L3
	L4
	L5
	L6
	L7
	I0
	I1
	I2
	I3
	I4
	I5
	I6 // %fp
	I7 // callee view of caller's return address
)

// Conventional aliases.
const (
	SP = O6 // stack pointer
	FP = I6 // frame pointer
)

// NumRegs is the number of architecturally visible registers.
const NumRegs = 32

var regNames = [NumRegs]string{
	"%g0", "%g1", "%g2", "%g3", "%g4", "%g5", "%g6", "%g7",
	"%o0", "%o1", "%o2", "%o3", "%o4", "%o5", "%sp", "%o7",
	"%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7",
	"%i0", "%i1", "%i2", "%i3", "%i4", "%i5", "%fp", "%i7",
}

func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("%%r?%d", uint8(r))
}

// IsGlobal reports whether r is one of the global registers %g0-%g7, which
// are not subject to register-window renaming. The monitored region service
// reserves globals precisely because they survive save/restore.
func (r Reg) IsGlobal() bool { return r <= G7 }

// Op is an operation code.
type Op uint8

const (
	Nop Op = iota

	// Memory. Ld: rd = mem[ea]; St: mem[ea] = rd (rd is the source).
	// Ldd/Std move two consecutive words through rd and rd+1 (rd even).
	Ld
	St
	Ldd
	Std

	// ALU: rd = rs1 op (rs2 or imm).
	Add
	Sub
	And
	Andn
	Or
	Orn
	Xor
	Xnor
	Sll
	Srl
	Sra
	SMul
	SDiv

	// ALU with condition-code update.
	Addcc
	Subcc
	Andcc
	Andncc
	Orcc
	Xorcc

	// Sethi: rd = imm << 10 (imm is the high 22 bits).
	Sethi

	// Control transfer. Br uses Cond and Target (text word index).
	// Call writes the address of the call into %o7 and jumps to Target.
	// Jmpl: rd = current pc address; pc = rs1 + (rs2 or imm).
	Br
	Call
	Jmpl

	// Register windows. Save: compute rs1 + operand2 in the OLD window,
	// shift the window, write the result to rd in the NEW window.
	// Restore: compute in the old window, unshift, write in the new.
	Save
	Restore

	// Ta: software trap; Imm selects the service (see machine.Trap*).
	Ta

	// Unimp: executing it is an error (used to fence patch areas).
	Unimp

	numOps
)

var opNames = [numOps]string{
	Nop: "nop", Ld: "ld", St: "st", Ldd: "ldd", Std: "std",
	Add: "add", Sub: "sub", And: "and", Andn: "andn", Or: "or", Orn: "orn",
	Xor: "xor", Xnor: "xnor", Sll: "sll", Srl: "srl", Sra: "sra",
	SMul: "smul", SDiv: "sdiv",
	Addcc: "addcc", Subcc: "subcc", Andcc: "andcc", Andncc: "andncc",
	Orcc: "orcc", Xorcc: "xorcc",
	Sethi: "sethi", Br: "b", Call: "call", Jmpl: "jmpl",
	Save: "save", Restore: "restore", Ta: "ta", Unimp: "unimp",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// IsStore reports whether o writes memory. These are the instructions the
// patching tool must check (the paper's "write instructions").
func (o Op) IsStore() bool { return o == St || o == Std }

// IsLoad reports whether o reads memory.
func (o Op) IsLoad() bool { return o == Ld || o == Ldd }

// SetsCC reports whether o updates the integer condition codes.
func (o Op) SetsCC() bool {
	switch o {
	case Addcc, Subcc, Andcc, Andncc, Orcc, Xorcc:
		return true
	}
	return false
}

// IsALU reports whether o is a register-to-register arithmetic/logic op.
func (o Op) IsALU() bool {
	switch o {
	case Add, Sub, And, Andn, Or, Orn, Xor, Xnor, Sll, Srl, Sra, SMul, SDiv,
		Addcc, Subcc, Andcc, Andncc, Orcc, Xorcc:
		return true
	}
	return false
}

// Cond is a branch condition, tested against the integer condition codes.
type Cond uint8

const (
	BA   Cond = iota // always
	BN               // never
	BE               // Z
	BNE              // !Z
	BL               // N xor V
	BLE              // Z or (N xor V)
	BG               // !(Z or (N xor V))
	BGE              // !(N xor V)
	BLU              // C (unsigned <)
	BGEU             // !C
	BGU              // !(C or Z)
	BLEU             // C or Z
	BPOS             // !N
	BNEG             // N
	BVC              // !V
	BVS              // V

	numConds
)

var condNames = [numConds]string{
	BA: "ba", BN: "bn", BE: "be", BNE: "bne", BL: "bl", BLE: "ble",
	BG: "bg", BGE: "bge", BLU: "blu", BGEU: "bgeu", BGU: "bgu", BLEU: "bleu",
	BPOS: "bpos", BNEG: "bneg", BVC: "bvc", BVS: "bvs",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("b?%d", uint8(c))
}

// Negate returns the condition that is true exactly when c is false.
func (c Cond) Negate() Cond {
	switch c {
	case BA:
		return BN
	case BN:
		return BA
	case BE:
		return BNE
	case BNE:
		return BE
	case BL:
		return BGE
	case BGE:
		return BL
	case BLE:
		return BG
	case BG:
		return BLE
	case BLU:
		return BGEU
	case BGEU:
		return BLU
	case BGU:
		return BLEU
	case BLEU:
		return BGU
	case BPOS:
		return BNEG
	case BNEG:
		return BPOS
	case BVC:
		return BVS
	case BVS:
		return BVC
	}
	return BN
}

// CC holds the integer condition codes.
type CC struct {
	N, Z, V, C bool
}

// Eval reports whether condition c holds under cc.
func (c Cond) Eval(cc CC) bool {
	switch c {
	case BA:
		return true
	case BN:
		return false
	case BE:
		return cc.Z
	case BNE:
		return !cc.Z
	case BL:
		return cc.N != cc.V
	case BGE:
		return cc.N == cc.V
	case BLE:
		return cc.Z || (cc.N != cc.V)
	case BG:
		return !cc.Z && (cc.N == cc.V)
	case BLU:
		return cc.C
	case BGEU:
		return !cc.C
	case BGU:
		return !cc.C && !cc.Z
	case BLEU:
		return cc.C || cc.Z
	case BPOS:
		return !cc.N
	case BNEG:
		return cc.N
	case BVC:
		return !cc.V
	case BVS:
		return cc.V
	}
	return false
}

// Instr is one decoded instruction. The assembler resolves symbolic
// operands, so Target is always a text word index and Imm a literal value.
type Instr struct {
	Op     Op
	Rd     Reg   // destination (source operand for St/Std)
	Rs1    Reg   // first source
	Rs2    Reg   // second source (when !UseImm)
	Imm    int32 // immediate second source (when UseImm); trap number for Ta
	UseImm bool
	Cond   Cond  // branch condition (Br only)
	Target int32 // branch/call destination as a text word index

	// Count, when nonzero, names an event counter (index Count-1) that the
	// machine increments each time this instruction executes. Counters cost
	// no cycles and occupy no code space, so they cannot perturb the very
	// cache-alignment effects the harness measures; the patching tool uses
	// them to gather the dynamic check counts reported in Tables 1 and 2.
	Count int32
}

// MakeNop returns a canonical no-op instruction.
func MakeNop() Instr { return Instr{Op: Nop} }

// RI builds a register-immediate ALU instruction rd = rs1 op imm.
func RI(op Op, rs1 Reg, imm int32, rd Reg) Instr {
	return Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm, UseImm: true}
}

// RR builds a register-register ALU instruction rd = rs1 op rs2.
func RR(op Op, rs1, rs2, rd Reg) Instr {
	return Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}
}

// LoadRI builds ld [rs1+imm], rd.
func LoadRI(rs1 Reg, imm int32, rd Reg) Instr {
	return Instr{Op: Ld, Rd: rd, Rs1: rs1, Imm: imm, UseImm: true}
}

// StoreRI builds st rd, [rs1+imm].
func StoreRI(rd, rs1 Reg, imm int32) Instr {
	return Instr{Op: St, Rd: rd, Rs1: rs1, Imm: imm, UseImm: true}
}

// Branch builds a conditional branch to the given text index.
func Branch(c Cond, target int32) Instr {
	return Instr{Op: Br, Cond: c, Target: target}
}

// String renders i in assembler syntax (with numeric branch targets).
func (i Instr) String() string {
	op2 := func() string {
		if i.UseImm {
			return fmt.Sprintf("%d", i.Imm)
		}
		return i.Rs2.String()
	}
	ea := func() string {
		if i.UseImm {
			if i.Imm == 0 {
				return fmt.Sprintf("[%s]", i.Rs1)
			}
			return fmt.Sprintf("[%s%+d]", i.Rs1, i.Imm)
		}
		return fmt.Sprintf("[%s+%s]", i.Rs1, i.Rs2)
	}
	switch i.Op {
	case Nop:
		return "nop"
	case Ld, Ldd:
		return fmt.Sprintf("%s %s, %s", i.Op, ea(), i.Rd)
	case St, Std:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, ea())
	case Sethi:
		return fmt.Sprintf("sethi %d, %s", i.Imm, i.Rd)
	case Br:
		return fmt.Sprintf("%s .%+d", i.Cond, i.Target)
	case Call:
		return fmt.Sprintf("call .%d", i.Target)
	case Jmpl:
		return fmt.Sprintf("jmpl %s%+d, %s", i.Rs1, i.Imm, i.Rd)
	case Ta:
		return fmt.Sprintf("ta %d", i.Imm)
	case Unimp:
		return "unimp"
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rs1, op2(), i.Rd)
	}
}
