// Package core provides the monitored region service (MRS) of "Practical
// Data Breakpoints" (PLDI 1993) as a reusable Go library.
//
// A monitored region service detects writes to contiguous, word-aligned,
// non-overlapping regions of a 32-bit address space. A host program — an
// interpreter, a virtual machine, a simulator, or the instruction-patching
// pipeline in this repository — calls CheckWrite on every store it executes;
// the service invokes the registered notification callback on each monitor
// hit. The interface follows §2 of the paper:
//
//	CreateMonitoredRegion(region)
//	DeleteMonitoredRegion(region)
//	NotificationCallBack(targetAddress, size)
//
// plus the PreMonitor/PostMonitor pair from §4.2 that drives dynamic
// insertion and deletion of eliminated write checks through a client
// supplied Patcher.
//
// Address lookup is pluggable: the segmented bitmap (the paper's choice) or
// the hash table from the pilot study. A hierarchical range index answers
// the loop pre-header range checks of §4.3.
package core

import (
	"fmt"

	"databreak/internal/bitmap"
	"databreak/internal/hashtable"
	"databreak/internal/rangecheck"
)

// Region is a contiguous monitored region: word aligned, non-overlapping.
type Region struct {
	Addr uint32
	Size uint32 // bytes, word multiple
}

// End returns the exclusive upper bound of the region.
func (r Region) End() uint32 { return r.Addr + r.Size }

func (r Region) String() string {
	return fmt.Sprintf("[%#x,+%d)", r.Addr, r.Size)
}

// HitFunc is the notification callback: addr is the store's target address,
// size the store width in bytes.
type HitFunc func(addr uint32, size uint32)

// Kind is a region's access-kind mask: which access kinds trigger a hit.
// It aliases the bitmap package's kind so the two layers share constants.
type Kind = bitmap.Kind

const (
	// KindStore triggers on stores — the paper's only kind.
	KindStore = bitmap.KindStore
	// KindLoad triggers on loads (read watchpoints).
	KindLoad = bitmap.KindLoad
	// KindAll triggers on both.
	KindAll = bitmap.KindAll
)

// Lookup abstracts the address-lookup data structure.
type Lookup interface {
	// Add marks the region as monitored; it fails on overlap or misalignment.
	Add(addr, size uint32) error
	// Remove unmarks a region previously added with exactly these bounds.
	Remove(addr, size uint32) error
	// Contains reports whether the word containing addr is monitored.
	Contains(addr uint32) bool
	// ContainsAccess reports whether a size-byte store at addr hits.
	ContainsAccess(addr, size uint32) bool
}

// KindLookup is the optional kind-aware extension of Lookup. A lookup that
// implements it tracks per-kind coverage itself (the segmented bitmap's kind
// planes); for one that does not, the service falls back to its region table
// to filter hits by kind.
type KindLookup interface {
	Lookup
	// AddKind is Add with an explicit access-kind mask.
	AddKind(addr, size uint32, k Kind) error
	// RemoveKind is Remove for a region added with kind k.
	RemoveKind(addr, size uint32, k Kind) error
	// ContainsAccessKind reports whether a size-byte access of kind k at
	// addr touches a word monitored for that kind.
	ContainsAccessKind(addr, size uint32, k Kind) bool
}

var (
	_ Lookup     = (*hashtable.Table)(nil)
	_ KindLookup = (*bitmap.Bitmap)(nil)
)

// Patcher re-inserts and removes eliminated write checks at run time
// (Kessler-style code patching). The instruction-level pipeline registers an
// implementation; pure-Go hosts may ignore it.
type Patcher interface {
	// InsertChecks re-arms the eliminated write checks for symbol sym.
	InsertChecks(sym string)
	// RemoveChecks disarms them again.
	RemoveChecks(sym string)
}

// Stats counts service activity.
type Stats struct {
	Checks      uint64 // CheckWrite calls
	Hits        uint64 // monitor hits delivered
	ReadChecks  uint64 // CheckRead calls
	ReadHits    uint64 // read-watchpoint hits delivered
	RangeChecks uint64 // CheckRange calls
	RangeHits   uint64 // conservative range intersections reported
}

// Option configures New.
type Option func(*Service)

// WithLookup selects the address-lookup structure (default: segmented
// bitmap with the paper's 128-word segments).
func WithLookup(l Lookup) Option { return func(s *Service) { s.lookup = l } }

// WithCallback sets the notification callback.
func WithCallback(f HitFunc) Option { return func(s *Service) { s.callback = f } }

// WithPatcher registers the dynamic check patcher used by PreMonitor and
// PostMonitor.
func WithPatcher(p Patcher) Option { return func(s *Service) { s.patcher = p } }

// Service is a monitored region service. Create with New. Service is not
// safe for concurrent use; the debuggee it monitors is single-threaded, as
// in the paper.
type Service struct {
	lookup   Lookup
	ranges   *rangecheck.Index
	callback HitFunc
	patcher  Patcher
	regions  map[Region]Kind
	storable int // regions whose kind includes KindStore
	loadable int // regions whose kind includes KindLoad
	symbols  map[string]Region // PreMonitor'd symbol -> its region
	stats    Stats
}

// New builds a service. With no options it uses a segmented bitmap over the
// full 32-bit address space and a callback that does nothing.
func New(opts ...Option) *Service {
	s := &Service{
		ranges:  rangecheck.New(),
		regions: make(map[Region]Kind),
		symbols: make(map[string]Region),
	}
	for _, o := range opts {
		o(s)
	}
	if s.lookup == nil {
		s.lookup = bitmap.New(bitmap.DefaultConfig)
	}
	if s.callback == nil {
		s.callback = func(uint32, uint32) {}
	}
	return s
}

// SetCallback replaces the notification callback.
func (s *Service) SetCallback(f HitFunc) {
	if f == nil {
		f = func(uint32, uint32) {}
	}
	s.callback = f
}

// CreateMonitoredRegion installs r with the paper's store kind. The region
// must be word aligned and disjoint from every installed region.
func (s *Service) CreateMonitoredRegion(r Region) error {
	return s.CreateMonitoredRegionKind(r, KindStore)
}

// CreateMonitoredRegionKind installs r triggering on the access kinds in k.
func (s *Service) CreateMonitoredRegionKind(r Region, k Kind) error {
	if k == 0 || k&^KindAll != 0 {
		return fmt.Errorf("core: invalid region kind %v", k)
	}
	if _, dup := s.regions[r]; dup {
		return fmt.Errorf("core: region %v already monitored", r)
	}
	if kl, ok := s.lookup.(KindLookup); ok {
		if err := kl.AddKind(r.Addr, r.Size, k); err != nil {
			return err
		}
	} else if err := s.lookup.Add(r.Addr, r.Size); err != nil {
		return err
	}
	if err := s.ranges.Add(r.Addr, r.Size); err != nil {
		// Keep lookup and range index in sync even on failure.
		_ = s.removeFromLookup(r, k)
		return err
	}
	s.regions[r] = k
	if k&KindStore != 0 {
		s.storable++
	}
	if k&KindLoad != 0 {
		s.loadable++
	}
	return nil
}

func (s *Service) removeFromLookup(r Region, k Kind) error {
	if kl, ok := s.lookup.(KindLookup); ok {
		return kl.RemoveKind(r.Addr, r.Size, k)
	}
	return s.lookup.Remove(r.Addr, r.Size)
}

// DeleteMonitoredRegion removes a region previously created with exactly
// these bounds (any kind).
func (s *Service) DeleteMonitoredRegion(r Region) error {
	k, ok := s.regions[r]
	if !ok {
		return fmt.Errorf("core: region %v is not monitored", r)
	}
	if err := s.removeFromLookup(r, k); err != nil {
		return err
	}
	if err := s.ranges.Remove(r.Addr, r.Size); err != nil {
		return err
	}
	delete(s.regions, r)
	if k&KindStore != 0 {
		s.storable--
	}
	if k&KindLoad != 0 {
		s.loadable--
	}
	return nil
}

// RegionKind returns the kind of an installed region, or 0 if r is not
// monitored.
func (s *Service) RegionKind(r Region) Kind { return s.regions[r] }

// regionsHit reports whether any installed region with a kind bit in k
// covers a word of the size-byte access at addr. This is the kind filter for
// lookups without per-kind coverage (the hash table); region counts are
// small, so a linear scan on the hit path is fine.
func (s *Service) regionsHit(addr, size uint32, k Kind) bool {
	first := addr &^ 3
	last := (addr + size - 1) &^ 3
	for r, rk := range s.regions {
		if rk&k != 0 && first < r.End() && last >= r.Addr {
			return true
		}
	}
	return false
}

// Disabled reports whether no regions are installed — the paper's global
// disabled flag, which write checks branch on to skip all work.
func (s *Service) Disabled() bool { return len(s.regions) == 0 }

// Regions returns the number of installed regions.
func (s *Service) Regions() int { return len(s.regions) }

// CheckWrite is the write check: the host calls it after every store of
// size bytes at addr. On a monitor hit the notification callback runs.
func (s *Service) CheckWrite(addr, size uint32) {
	s.stats.Checks++
	if s.storable == 0 {
		return
	}
	if kl, ok := s.lookup.(KindLookup); ok {
		if kl.ContainsAccessKind(addr, size, KindStore) {
			s.stats.Hits++
			s.callback(addr, size)
		}
		return
	}
	if s.lookup.ContainsAccess(addr, size) && s.regionsHit(addr, size, KindStore) {
		s.stats.Hits++
		s.callback(addr, size)
	}
}

// CheckRead is the load check: the host calls it on every load of size
// bytes at addr when read watchpoints are armed. On a hit the notification
// callback runs.
func (s *Service) CheckRead(addr, size uint32) {
	s.stats.ReadChecks++
	if s.loadable == 0 {
		return
	}
	if kl, ok := s.lookup.(KindLookup); ok {
		if kl.ContainsAccessKind(addr, size, KindLoad) {
			s.stats.ReadHits++
			s.callback(addr, size)
		}
		return
	}
	if s.lookup.ContainsAccess(addr, size) && s.regionsHit(addr, size, KindLoad) {
		s.stats.ReadHits++
		s.callback(addr, size)
	}
}

// CheckRange is the loop pre-header range check of §4.3: it conservatively
// reports whether the inclusive interval [lo, hi] may intersect a monitored
// region. A true result never misses a real intersection.
func (s *Service) CheckRange(lo, hi uint32) bool {
	s.stats.RangeChecks++
	if len(s.regions) == 0 {
		return false
	}
	if s.ranges.Intersects(lo, hi) {
		s.stats.RangeHits++
		return true
	}
	return false
}

// PreMonitor arms the eliminated write checks associated with symbol sym
// and then installs its region (§4.2: patch first, then create, so no hit
// is missed).
func (s *Service) PreMonitor(sym string, r Region) error {
	if _, dup := s.symbols[sym]; dup {
		return fmt.Errorf("core: symbol %q already monitored", sym)
	}
	if s.patcher != nil {
		s.patcher.InsertChecks(sym)
	}
	if err := s.CreateMonitoredRegion(r); err != nil {
		if s.patcher != nil {
			s.patcher.RemoveChecks(sym)
		}
		return err
	}
	s.symbols[sym] = r
	return nil
}

// PostMonitor removes the region installed for sym and disarms its checks.
func (s *Service) PostMonitor(sym string) error {
	r, ok := s.symbols[sym]
	if !ok {
		return fmt.Errorf("core: symbol %q is not monitored", sym)
	}
	if err := s.DeleteMonitoredRegion(r); err != nil {
		return err
	}
	if s.patcher != nil {
		s.patcher.RemoveChecks(sym)
	}
	delete(s.symbols, sym)
	return nil
}

// Stats returns a copy of the activity counters.
func (s *Service) Stats() Stats { return s.stats }
