// Package core provides the monitored region service (MRS) of "Practical
// Data Breakpoints" (PLDI 1993) as a reusable Go library.
//
// A monitored region service detects writes to contiguous, word-aligned,
// non-overlapping regions of a 32-bit address space. A host program — an
// interpreter, a virtual machine, a simulator, or the instruction-patching
// pipeline in this repository — calls CheckWrite on every store it executes;
// the service invokes the registered notification callback on each monitor
// hit. The interface follows §2 of the paper:
//
//	CreateMonitoredRegion(region)
//	DeleteMonitoredRegion(region)
//	NotificationCallBack(targetAddress, size)
//
// plus the PreMonitor/PostMonitor pair from §4.2 that drives dynamic
// insertion and deletion of eliminated write checks through a client
// supplied Patcher.
//
// Address lookup is pluggable: the segmented bitmap (the paper's choice) or
// the hash table from the pilot study. A hierarchical range index answers
// the loop pre-header range checks of §4.3.
package core

import (
	"fmt"

	"databreak/internal/bitmap"
	"databreak/internal/hashtable"
	"databreak/internal/rangecheck"
)

// Region is a contiguous monitored region: word aligned, non-overlapping.
type Region struct {
	Addr uint32
	Size uint32 // bytes, word multiple
}

// End returns the exclusive upper bound of the region.
func (r Region) End() uint32 { return r.Addr + r.Size }

func (r Region) String() string {
	return fmt.Sprintf("[%#x,+%d)", r.Addr, r.Size)
}

// HitFunc is the notification callback: addr is the store's target address,
// size the store width in bytes.
type HitFunc func(addr uint32, size uint32)

// Lookup abstracts the address-lookup data structure.
type Lookup interface {
	// Add marks the region as monitored; it fails on overlap or misalignment.
	Add(addr, size uint32) error
	// Remove unmarks a region previously added with exactly these bounds.
	Remove(addr, size uint32) error
	// Contains reports whether the word containing addr is monitored.
	Contains(addr uint32) bool
	// ContainsAccess reports whether a size-byte store at addr hits.
	ContainsAccess(addr, size uint32) bool
}

var (
	_ Lookup = (*bitmap.Bitmap)(nil)
	_ Lookup = (*hashtable.Table)(nil)
)

// Patcher re-inserts and removes eliminated write checks at run time
// (Kessler-style code patching). The instruction-level pipeline registers an
// implementation; pure-Go hosts may ignore it.
type Patcher interface {
	// InsertChecks re-arms the eliminated write checks for symbol sym.
	InsertChecks(sym string)
	// RemoveChecks disarms them again.
	RemoveChecks(sym string)
}

// Stats counts service activity.
type Stats struct {
	Checks      uint64 // CheckWrite calls
	Hits        uint64 // monitor hits delivered
	RangeChecks uint64 // CheckRange calls
	RangeHits   uint64 // conservative range intersections reported
}

// Option configures New.
type Option func(*Service)

// WithLookup selects the address-lookup structure (default: segmented
// bitmap with the paper's 128-word segments).
func WithLookup(l Lookup) Option { return func(s *Service) { s.lookup = l } }

// WithCallback sets the notification callback.
func WithCallback(f HitFunc) Option { return func(s *Service) { s.callback = f } }

// WithPatcher registers the dynamic check patcher used by PreMonitor and
// PostMonitor.
func WithPatcher(p Patcher) Option { return func(s *Service) { s.patcher = p } }

// Service is a monitored region service. Create with New. Service is not
// safe for concurrent use; the debuggee it monitors is single-threaded, as
// in the paper.
type Service struct {
	lookup   Lookup
	ranges   *rangecheck.Index
	callback HitFunc
	patcher  Patcher
	regions  map[Region]struct{}
	symbols  map[string]Region // PreMonitor'd symbol -> its region
	stats    Stats
}

// New builds a service. With no options it uses a segmented bitmap over the
// full 32-bit address space and a callback that does nothing.
func New(opts ...Option) *Service {
	s := &Service{
		ranges:  rangecheck.New(),
		regions: make(map[Region]struct{}),
		symbols: make(map[string]Region),
	}
	for _, o := range opts {
		o(s)
	}
	if s.lookup == nil {
		s.lookup = bitmap.New(bitmap.DefaultConfig)
	}
	if s.callback == nil {
		s.callback = func(uint32, uint32) {}
	}
	return s
}

// SetCallback replaces the notification callback.
func (s *Service) SetCallback(f HitFunc) {
	if f == nil {
		f = func(uint32, uint32) {}
	}
	s.callback = f
}

// CreateMonitoredRegion installs r. The region must be word aligned and
// disjoint from every installed region.
func (s *Service) CreateMonitoredRegion(r Region) error {
	if _, dup := s.regions[r]; dup {
		return fmt.Errorf("core: region %v already monitored", r)
	}
	if err := s.lookup.Add(r.Addr, r.Size); err != nil {
		return err
	}
	if err := s.ranges.Add(r.Addr, r.Size); err != nil {
		// Keep lookup and range index in sync even on failure.
		_ = s.lookup.Remove(r.Addr, r.Size)
		return err
	}
	s.regions[r] = struct{}{}
	return nil
}

// DeleteMonitoredRegion removes a region previously created with exactly
// these bounds.
func (s *Service) DeleteMonitoredRegion(r Region) error {
	if _, ok := s.regions[r]; !ok {
		return fmt.Errorf("core: region %v is not monitored", r)
	}
	if err := s.lookup.Remove(r.Addr, r.Size); err != nil {
		return err
	}
	if err := s.ranges.Remove(r.Addr, r.Size); err != nil {
		return err
	}
	delete(s.regions, r)
	return nil
}

// Disabled reports whether no regions are installed — the paper's global
// disabled flag, which write checks branch on to skip all work.
func (s *Service) Disabled() bool { return len(s.regions) == 0 }

// Regions returns the number of installed regions.
func (s *Service) Regions() int { return len(s.regions) }

// CheckWrite is the write check: the host calls it after every store of
// size bytes at addr. On a monitor hit the notification callback runs.
func (s *Service) CheckWrite(addr, size uint32) {
	s.stats.Checks++
	if len(s.regions) == 0 {
		return
	}
	if s.lookup.ContainsAccess(addr, size) {
		s.stats.Hits++
		s.callback(addr, size)
	}
}

// CheckRange is the loop pre-header range check of §4.3: it conservatively
// reports whether the inclusive interval [lo, hi] may intersect a monitored
// region. A true result never misses a real intersection.
func (s *Service) CheckRange(lo, hi uint32) bool {
	s.stats.RangeChecks++
	if len(s.regions) == 0 {
		return false
	}
	if s.ranges.Intersects(lo, hi) {
		s.stats.RangeHits++
		return true
	}
	return false
}

// PreMonitor arms the eliminated write checks associated with symbol sym
// and then installs its region (§4.2: patch first, then create, so no hit
// is missed).
func (s *Service) PreMonitor(sym string, r Region) error {
	if _, dup := s.symbols[sym]; dup {
		return fmt.Errorf("core: symbol %q already monitored", sym)
	}
	if s.patcher != nil {
		s.patcher.InsertChecks(sym)
	}
	if err := s.CreateMonitoredRegion(r); err != nil {
		if s.patcher != nil {
			s.patcher.RemoveChecks(sym)
		}
		return err
	}
	s.symbols[sym] = r
	return nil
}

// PostMonitor removes the region installed for sym and disarms its checks.
func (s *Service) PostMonitor(sym string) error {
	r, ok := s.symbols[sym]
	if !ok {
		return fmt.Errorf("core: symbol %q is not monitored", sym)
	}
	if err := s.DeleteMonitoredRegion(r); err != nil {
		return err
	}
	if s.patcher != nil {
		s.patcher.RemoveChecks(sym)
	}
	delete(s.symbols, sym)
	return nil
}

// Stats returns a copy of the activity counters.
func (s *Service) Stats() Stats { return s.stats }
