package core

import (
	"testing"

	"databreak/internal/hashtable"
)

func TestCreateCheckDelete(t *testing.T) {
	var hits []uint32
	s := New(WithCallback(func(addr, size uint32) { hits = append(hits, addr) }))
	if !s.Disabled() {
		t.Fatal("fresh service must be disabled")
	}
	r := Region{Addr: 0x1000, Size: 8}
	if err := s.CreateMonitoredRegion(r); err != nil {
		t.Fatal(err)
	}
	if s.Disabled() || s.Regions() != 1 {
		t.Fatal("service must be enabled with one region")
	}
	s.CheckWrite(0x1004, 4) // hit
	s.CheckWrite(0x1008, 4) // miss
	s.CheckWrite(0x0ffc, 8) // double word straddling into region: hit
	if len(hits) != 2 || hits[0] != 0x1004 || hits[1] != 0x0ffc {
		t.Fatalf("hits = %#v", hits)
	}
	if err := s.DeleteMonitoredRegion(r); err != nil {
		t.Fatal(err)
	}
	s.CheckWrite(0x1004, 4)
	if len(hits) != 2 {
		t.Fatal("deleted region must not hit")
	}
	st := s.Stats()
	if st.Checks != 4 || st.Hits != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDuplicateAndUnknownRegions(t *testing.T) {
	s := New()
	r := Region{Addr: 0x2000, Size: 4}
	if err := s.CreateMonitoredRegion(r); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateMonitoredRegion(r); err == nil {
		t.Fatal("duplicate create must fail")
	}
	if err := s.CreateMonitoredRegion(Region{Addr: 0x2000, Size: 8}); err == nil {
		t.Fatal("overlapping create must fail")
	}
	if err := s.DeleteMonitoredRegion(Region{Addr: 0x3000, Size: 4}); err == nil {
		t.Fatal("deleting unknown region must fail")
	}
}

func TestCheckRange(t *testing.T) {
	s := New()
	if s.CheckRange(0, 0xFFFF_FFFF) {
		t.Fatal("disabled service must report no range hits")
	}
	s.CreateMonitoredRegion(Region{Addr: 0x8000, Size: 16})
	if !s.CheckRange(0x8000, 0x800F) {
		t.Fatal("exact range must intersect")
	}
	if s.CheckRange(0x4000_0000, 0x4000_1000) {
		t.Fatal("far range must not intersect")
	}
	st := s.Stats()
	if st.RangeChecks != 3 || st.RangeHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

type fakePatcher struct {
	inserted []string
	removed  []string
}

func (p *fakePatcher) InsertChecks(sym string) { p.inserted = append(p.inserted, sym) }
func (p *fakePatcher) RemoveChecks(sym string) { p.removed = append(p.removed, sym) }

func TestPreMonitorPatchesBeforeCreate(t *testing.T) {
	p := &fakePatcher{}
	var sawRegion bool
	s := New(WithPatcher(p))
	s.SetCallback(func(addr, size uint32) { sawRegion = true })

	r := Region{Addr: 0x5000, Size: 4}
	if err := s.PreMonitor("x", r); err != nil {
		t.Fatal(err)
	}
	if len(p.inserted) != 1 || p.inserted[0] != "x" {
		t.Fatalf("patcher inserted = %v", p.inserted)
	}
	s.CheckWrite(0x5000, 4)
	if !sawRegion {
		t.Fatal("region from PreMonitor must be live")
	}
	if err := s.PreMonitor("x", r); err == nil {
		t.Fatal("double PreMonitor of one symbol must fail")
	}
	if err := s.PostMonitor("x"); err != nil {
		t.Fatal(err)
	}
	if len(p.removed) != 1 {
		t.Fatalf("patcher removed = %v", p.removed)
	}
	if err := s.PostMonitor("x"); err == nil {
		t.Fatal("PostMonitor of unmonitored symbol must fail")
	}
}

func TestPreMonitorRollsBackOnBadRegion(t *testing.T) {
	p := &fakePatcher{}
	s := New(WithPatcher(p))
	s.CreateMonitoredRegion(Region{Addr: 0x1000, Size: 8})
	// Overlapping region: PreMonitor must fail and disarm the patches.
	if err := s.PreMonitor("y", Region{Addr: 0x1004, Size: 8}); err == nil {
		t.Fatal("overlapping PreMonitor must fail")
	}
	if len(p.inserted) != 1 || len(p.removed) != 1 {
		t.Fatalf("patcher must be rolled back: %+v", p)
	}
}

func TestHashTableLookupBackend(t *testing.T) {
	var hits int
	s := New(
		WithLookup(hashtable.New(64)),
		WithCallback(func(addr, size uint32) { hits++ }),
	)
	s.CreateMonitoredRegion(Region{Addr: 0x1000, Size: 4})
	s.CheckWrite(0x1000, 4)
	s.CheckWrite(0x2000, 4)
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}

func TestRegionString(t *testing.T) {
	r := Region{Addr: 0x1000, Size: 8}
	if got := r.String(); got != "[0x1000,+8)" {
		t.Fatalf("String = %q", got)
	}
	if r.End() != 0x1008 {
		t.Fatalf("End = %#x", r.End())
	}
}

func TestNilCallbackSafe(t *testing.T) {
	s := New()
	s.SetCallback(nil)
	s.CreateMonitoredRegion(Region{Addr: 0x1000, Size: 4})
	s.CheckWrite(0x1000, 4) // must not panic
}

func BenchmarkCheckWriteDisabled(b *testing.B) {
	s := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CheckWrite(0x1000, 4)
	}
}

func BenchmarkCheckWriteMiss(b *testing.B) {
	s := New()
	s.CreateMonitoredRegion(Region{Addr: 0x9000_0000, Size: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CheckWrite(uint32(i%65536)*4, 4)
	}
}
