package core_test

import (
	"fmt"

	"databreak/internal/core"
)

// Example demonstrates the monitored region service interface of §2: create
// a region, check writes, receive notifications, delete the region.
func Example() {
	svc := core.New(core.WithCallback(func(addr, size uint32) {
		fmt.Printf("hit: %d bytes at %#x\n", size, addr)
	}))
	_ = svc.CreateMonitoredRegion(core.Region{Addr: 0x1000, Size: 8})

	svc.CheckWrite(0x0ffc, 4) // miss
	svc.CheckWrite(0x1004, 4) // hit
	svc.CheckWrite(0x0ffc, 8) // double word straddling in: hit

	fmt.Println("range check:", svc.CheckRange(0x0f00, 0x10ff))
	_ = svc.DeleteMonitoredRegion(core.Region{Addr: 0x1000, Size: 8})
	fmt.Println("disabled:", svc.Disabled())
	// Output:
	// hit: 4 bytes at 0x1004
	// hit: 8 bytes at 0xffc
	// range check: true
	// disabled: true
}

// ExampleService_PreMonitor shows the §4.2 dynamic-insertion pairing: the
// patcher is asked to re-arm a symbol's eliminated checks before its region
// is created, so no hit can be missed.
func ExampleService_PreMonitor() {
	patcher := &loggingPatcher{}
	svc := core.New(core.WithPatcher(patcher))
	_ = svc.PreMonitor("x", core.Region{Addr: 0x2000, Size: 4})
	_ = svc.PostMonitor("x")
	// Output:
	// insert checks for x
	// remove checks for x
}

type loggingPatcher struct{}

func (loggingPatcher) InsertChecks(sym string) { fmt.Println("insert checks for", sym) }
func (loggingPatcher) RemoveChecks(sym string) { fmt.Println("remove checks for", sym) }
