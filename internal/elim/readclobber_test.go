package elim

import (
	"testing"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/minic"
	"databreak/internal/monitor"
)

// A global read through "set flag, %oN; ld [%oN], %oN" — the destination
// clobbers the address register, so the kept read check must run before the
// load (regression test for the post-load check recomputing a garbage
// address and missing the monitored read).
func TestCheckReadsClobberingLoad(t *testing.T) {
	csrc := `
int flag = 5;
int other;
int main() {
	int i;
	int s;
	s = 0;
	for (i = 0; i < 3; i = i + 1) {
		other = s;
		s = s + flag;
	}
	return s;
}
`
	asmSrc, err := minic.Compile(csrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	u, err := asm.Parse("p.s", asmSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, mode := range []Mode{SymOnly, Full} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			res, err := Apply(Options{Mode: mode, CheckReads: true}, u)
			if err != nil {
				t.Fatalf("elim: %v", err)
			}
			prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
			prog.Load(m)
			svc, err := monitor.NewService(monitor.DefaultConfig, m)
			if err != nil {
				t.Fatal(err)
			}
			rt := NewRuntime(m, prog, res)
			if err := rt.PreMonitorSymbol(svc, "flag"); err != nil {
				t.Fatal(err)
			}
			code, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if code != 15 {
				t.Fatalf("exit = %d, want 15", code)
			}
			addr, ok := prog.DataLabels["flag"]
			if !ok {
				t.Fatal("no flag label")
			}
			reads := 0
			for _, h := range svc.Hits {
				if !h.Read {
					continue
				}
				if h.Addr != addr {
					t.Fatalf("read hit at %#x, want %#x", h.Addr, addr)
				}
				reads++
			}
			if reads != 3 {
				t.Fatalf("read hits = %d, want 3 (hits: %+v)", reads, svc.Hits)
			}
		})
	}
}

const loopReadProg = `
int a[200];
int total;
int main() {
	int i;
	int n;
	int s;
	n = 200;
	s = 0;
	for (i = 0; i < n; i = i + 1) a[i] = i;
	for (i = 0; i < n; i = i + 1) s = s + a[i];
	total = s;
	return 0;
}
`

// buildReads is build() with read checking enabled.
func buildReads(t *testing.T, mode Mode, csrc string) *world {
	t.Helper()
	asmSrc, err := minic.Compile(csrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	u, err := asm.Parse("p.s", asmSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Apply(Options{Mode: mode, CheckReads: true}, u)
	if err != nil {
		t.Fatalf("elim: %v", err)
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.Load(m)
	svc, err := monitor.NewService(monitor.DefaultConfig, m)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(m, prog, res)
	return &world{prog: prog, m: m, svc: svc, rt: rt, res: res}
}

// Eliminated load checks must re-insert exactly like store checks: a
// load-kind region inside the read loop's range arms the site, the
// re-inserted check delivers the read hit, and the store loop's traps on
// the same word are suppressed by the region's kind.
func TestRangeHitReinsertsReadChecks(t *testing.T) {
	w := buildReads(t, Full, loopReadProg)
	sym, ok := w.prog.LookupSym("a", "")
	if !ok {
		t.Fatal("no symbol a")
	}
	target := sym.Addr + 100*4
	if err := w.svc.CreateRegionKind(target, 4, monitor.KindLoad); err != nil {
		t.Fatal(err)
	}
	if _, err := w.m.Run(); err != nil {
		t.Fatal(err)
	}
	if w.rt.ArmEvents == 0 {
		t.Fatal("pre-header range check must fire and arm the sites")
	}
	reads := 0
	for _, h := range w.svc.Hits {
		if !h.Read {
			t.Fatalf("store hit delivered through a load-kind region: %+v", h)
		}
		if h.Addr != target {
			t.Fatalf("read hit at %#x, want %#x", h.Addr, target)
		}
		reads++
	}
	if reads != 1 {
		t.Fatalf("read hits = %d, want 1 (hits: %+v)", reads, w.svc.Hits)
	}
	if w.m.ExitCode() != 0 {
		t.Fatalf("exit = %d, want 0", w.m.ExitCode())
	}
}
