// Package elim implements the write-check elimination of §4: symbol-table
// elimination of known writes, loop-invariant check motion, and monotonic
// write range checks, together with the run-time machinery that dynamically
// re-inserts eliminated checks (Kessler-style code patches) when a
// pre-header check or a PreMonitor operation demands it.
//
// The rewriter keeps a standard write check (the reserved-register inline
// bitmap lookup, the paper's best variant) on every store it cannot prove
// safe, and pays the optimization's costs faithfully: every definition of
// %fp executes a shadow-stack verification, and every indirect jump executes
// a target-legitimacy check, as §4.2 requires for the static control-flow
// assumptions to remain sound.
package elim

import (
	"fmt"
	"slices"
	"strings"

	"databreak/internal/asm"
	"databreak/internal/bounds"
	"databreak/internal/cfg"
	"databreak/internal/ir"
	"databreak/internal/monitor"
	"databreak/internal/patch"
	"databreak/internal/sparc"
	"databreak/internal/symtab"
)

// Mode selects how much elimination runs.
type Mode int

const (
	// SymOnly applies only symbol-table elimination (the paper's "Sym"
	// column).
	SymOnly Mode = iota
	// Full adds loop-invariant check motion and monotonic range checks
	// (the paper's "Full" column).
	Full
)

func (m Mode) String() string {
	if m == SymOnly {
		return "Sym"
	}
	return "Full"
}

// SiteKind classifies an eliminated check site.
type SiteKind int

const (
	SiteSym SiteKind = iota
	SiteLI
	SiteRange
)

func (k SiteKind) String() string {
	switch k {
	case SiteSym:
		return "symbol"
	case SiteLI:
		return "loop-invariant"
	case SiteRange:
		return "range"
	}
	return "?"
}

// Site is one eliminated write check, re-insertable at run time.
type Site struct {
	ID     int
	Kind   SiteKind
	Symbol string // SiteSym: the variable whose PreMonitor arms this site
	Func   string
}

// Counter names (beyond patch.CounterWrites / patch.CounterChecks).
const (
	CounterElimSym   = "elim_sym"
	CounterElimLI    = "elim_li"
	CounterElimRange = "elim_range"
	CounterGenLI     = "gen_li"
	CounterGenRange  = "gen_range"
	CounterFpChecks  = "fp_checks"
	CounterJmpChecks = "jmp_checks"
)

// Options configures Apply.
type Options struct {
	Mode    Mode
	Monitor monitor.Config
	// CheckReads also instruments load instructions (read watchpoints);
	// loads run through the same elimination lattice as stores — symbol
	// match, loop-invariant motion, range checks — so redundant load checks
	// are eliminated by the analyses that eliminate store checks.
	CheckReads bool
}

// Result is the rewritten program plus the site registry.
type Result struct {
	Units       []*asm.Unit
	Sites       []Site
	SymbolSites map[string][]int // symbol name -> site ids
	LoopSites   map[int32][]int  // pre-header check id -> site ids

	// Static counts for reporting.
	StaticSym, StaticLI, StaticRange, StaticChecked int
}

func siteLabel(id int) string      { return fmt.Sprintf("__site_%d", id) }
func siteRetLabel(id int) string   { return fmt.Sprintf("__site_%d_ret", id) }
func sitePatchLabel(id int) string { return fmt.Sprintf("__patch_%d", id) }

type rewriter struct {
	opts  Options
	res   *Result
	id    int
	patch []asm.Item // accumulated patch blocks
	// err records the first failure parsing generated source; reported as
	// an error from Apply rather than a panic, since the monitor geometry
	// shaping the generated code is user input.
	err error
}

// parseGen parses generated assembly, recording (not panicking on) failure.
func (rw *rewriter) parseGen(src string) *asm.Unit {
	u, err := asm.Parse("__gen", src)
	if err != nil {
		if rw.err == nil {
			rw.err = fmt.Errorf("elim: generated check sequence does not parse: %w", err)
		}
		return &asm.Unit{Name: "__gen"}
	}
	return u
}

// Apply analyzes and rewrites the program units, returning them with the
// patch area and monitor library appended.
func Apply(opts Options, units ...*asm.Unit) (*Result, error) {
	if opts.Monitor.SegWords == 0 {
		opts.Monitor = monitor.DefaultConfig
	}
	if err := opts.Monitor.Validate(); err != nil {
		return nil, err
	}
	rw := &rewriter{
		opts: opts,
		res: &Result{
			SymbolSites: make(map[string][]int),
			LoopSites:   make(map[int32][]int),
		},
	}
	for _, u := range units {
		nu, err := rw.rewriteUnit(u)
		if err != nil {
			return nil, err
		}
		rw.res.Units = append(rw.res.Units, nu)
	}
	if len(rw.patch) > 0 {
		pu := &asm.Unit{Name: "__mrs_patch_area"}
		pu.Items = append(pu.Items,
			asm.Item{Kind: asm.ItemInstr, Instr: sparc.Instr{Op: sparc.Unimp}, Section: "text"})
		pu.Items = append(pu.Items, rw.patch...)
		rw.res.Units = append(rw.res.Units, pu)
	}
	libSrc, err := monitor.LibrarySource(opts.Monitor)
	if err != nil {
		return nil, err
	}
	lib, err := asm.Parse("__mrslib", libSrc)
	if err != nil {
		return nil, fmt.Errorf("elim: generated monitor library does not parse: %w", err)
	}
	rw.res.Units = append(rw.res.Units, lib)
	if rw.err != nil {
		return nil, rw.err
	}
	return rw.res, nil
}

// decision describes what happens to one store item.
type decision struct {
	kind    SiteKind
	checked bool
	site    *Site
	// pre-header code for loop sites, inserted before the loop header.
	preheader  string
	headerItem int // item index of the loop header's first label
}

func (rw *rewriter) rewriteUnit(u *asm.Unit) (*asm.Unit, error) {
	var syms []asm.Sym
	for _, it := range u.Items {
		if it.Kind == asm.ItemSymRec {
			syms = append(syms, it.Sym)
		}
	}
	fns, err := cfg.SplitFunctions(u)
	if err != nil {
		return nil, err
	}

	// Per item-index plans.
	storePlan := make(map[int]*decision)
	preheaders := make(map[int][]string) // insertion item idx -> sequences

	for _, f := range fns {
		info := ir.Build(f, syms)
		matches := symtab.MatchStores(info, syms)
		var loopInfos map[*cfg.Loop]*bounds.LoopInfo
		if rw.opts.Mode == Full {
			loopInfos = make(map[*cfg.Loop]*bounds.LoopInfo)
			for _, l := range f.Loops {
				loopInfos[l] = bounds.AnalyzeLoop(info, l)
			}
		}
		// Site IDs, patch-area blocks, and the SymbolSites registry are all
		// allocated in visit order, so walk the accesses in program order —
		// ranging over the AddrOf map directly would make the generated text
		// layout (and the artifact cache's size accounting) vary run to run.
		positions := make([]int, 0, len(info.AddrOf))
		for pos := range info.AddrOf {
			positions = append(positions, pos)
		}
		slices.Sort(positions)
		for _, pos := range positions {
			op := f.Instruction(pos).Op
			if !op.IsStore() && !(rw.opts.CheckReads && op.IsLoad()) {
				continue
			}
			item := f.InstrItem(pos)
			if m, ok := matches[pos]; ok {
				s := rw.newSite(SiteSym, f.Name)
				s.Symbol = m.Sym.Name
				rw.res.SymbolSites[m.Sym.Name] = append(rw.res.SymbolSites[m.Sym.Name], s.ID)
				storePlan[item] = &decision{kind: SiteSym, site: s}
				rw.res.StaticSym++
				continue
			}
			if rw.opts.Mode == Full {
				if d := rw.tryLoopElim(u, f, info, loopInfos, pos); d != nil {
					storePlan[item] = d
					preheaders[d.headerItem] = append(preheaders[d.headerItem], d.preheader)
					continue
				}
			}
			storePlan[item] = &decision{checked: true}
			rw.res.StaticChecked++
		}
	}

	// Emit the rewritten unit.
	nu := &asm.Unit{Name: u.Name + "+elim"}
	emitSrc := func(section, src string) {
		gu := rw.parseGen(src)
		for _, it := range gu.Items {
			it.Section = section
			nu.Items = append(nu.Items, it)
		}
	}
	for i := range u.Items {
		it := u.Items[i]
		for _, ph := range preheaders[i] {
			emitSrc(it.Section, ph)
		}
		if it.Kind != asm.ItemInstr {
			nu.Items = append(nu.Items, it)
			continue
		}
		in := it.Instr
		switch {
		case in.Op.IsStore() || (rw.opts.CheckReads && in.Op.IsLoad()):
			d := storePlan[i]
			if d == nil {
				// An access outside any function (no func record): check it.
				d = &decision{checked: true}
			}
			if d.checked {
				if in.Op.IsLoad() {
					it.CountName = patch.CounterReads
				} else {
					it.CountName = patch.CounterWrites
				}
				check := patch.CheckText(patch.Options{
					Strategy: patch.BitmapInlineRegisters,
					Monitor:  rw.opts.Monitor,
				}, in, patch.WriteHeap, rw.nextID())
				// A load that clobbers its own address register must be
				// checked before it executes (see patch.LoadClobbersAddress).
				if patch.LoadClobbersAddress(in) {
					emitSrc(it.Section, check)
					nu.Items = append(nu.Items, it)
				} else {
					nu.Items = append(nu.Items, it)
					emitSrc(it.Section, check)
				}
			} else {
				rw.emitSite(nu, emitSrc, it, d)
			}
		case in.Op == sparc.Save, in.Op == sparc.Restore:
			nu.Items = append(nu.Items, it)
			emitSrc(it.Section, rw.fpCheckText(in.Op == sparc.Save))
		case in.Op == sparc.Jmpl:
			emitSrc(it.Section, rw.jmpCheckText(in))
			nu.Items = append(nu.Items, it)
		default:
			nu.Items = append(nu.Items, it)
		}
	}
	return nu, nil
}

func (rw *rewriter) nextID() int {
	rw.id++
	return rw.id
}

func (rw *rewriter) newSite(kind SiteKind, fn string) *Site {
	s := Site{ID: rw.nextID(), Kind: kind, Func: fn}
	rw.res.Sites = append(rw.res.Sites, s)
	return &rw.res.Sites[len(rw.res.Sites)-1]
}

// emitSite emits an eliminated store: a labelled bare store plus a patch
// block holding the re-insertable checked version.
func (rw *rewriter) emitSite(nu *asm.Unit, emitSrc func(string, string), it asm.Item, d *decision) {
	id := d.site.ID
	counter := CounterElimSym
	switch d.kind {
	case SiteLI:
		counter = CounterElimLI
	case SiteRange:
		counter = CounterElimRange
	}
	nu.Items = append(nu.Items, asm.Item{Kind: asm.ItemLabel, Label: siteLabel(id), Section: it.Section})
	it.CountName = counter
	nu.Items = append(nu.Items, it)
	nu.Items = append(nu.Items, asm.Item{Kind: asm.ItemLabel, Label: siteRetLabel(id), Section: it.Section})

	// Patch block: the displaced store, its check, and the return branch. A
	// clobbering load's check goes first (see patch.LoadClobbersAddress).
	rw.patch = append(rw.patch, asm.Item{Kind: asm.ItemLabel, Label: sitePatchLabel(id), Section: "text"})
	st := it
	st.CountName = counter
	gu := rw.parseGen(patch.CheckText(patch.Options{
		Strategy: patch.BitmapInlineRegisters,
		Monitor:  rw.opts.Monitor,
	}, it.Instr, patch.WriteHeap, rw.nextID()))
	before := patch.LoadClobbersAddress(it.Instr)
	if !before {
		rw.patch = append(rw.patch, st)
	}
	for _, pit := range gu.Items {
		pit.Section = "text"
		rw.patch = append(rw.patch, pit)
	}
	if before {
		rw.patch = append(rw.patch, st)
	}
	rw.patch = append(rw.patch, asm.Item{
		Kind:      asm.ItemInstr,
		Instr:     sparc.Instr{Op: sparc.Br, Cond: sparc.BA},
		TargetSym: siteRetLabel(id),
		Section:   "text",
	})
}

// tryLoopElim attempts loop-invariant or range elimination for the store at
// pos, trying its innermost enclosing loop first, then outer ones.
func (rw *rewriter) tryLoopElim(u *asm.Unit, f *cfg.Func, info *ir.Info,
	loopInfos map[*cfg.Loop]*bounds.LoopInfo, pos int) *decision {

	block := f.BlockOf[pos]
	for _, l := range f.Loops { // inner loops first
		if !l.Blocks[block] {
			continue
		}
		if !f.EntryEdgesFallthrough(l) {
			continue
		}
		li := loopInfos[l]
		addr := info.AddrOf[pos]

		op := f.Instruction(pos).Op
		double := op == sparc.Std || op == sparc.Ldd
		extra := int32(0)
		if double {
			extra = 4
		}

		// Loop-invariant target address: one standard check in the
		// pre-header (§4.3 loop invariant check motion).
		if li.Invariant(addr) {
			if e, ok := li.ExprFor(addr); ok && e.Depth() <= 6 {
				s := rw.newSite(SiteLI, f.Name)
				ph, err := rw.liPreheaderText(e, s.ID)
				if err == nil {
					rw.res.LoopSites[int32(s.ID)] = append(rw.res.LoopSites[int32(s.ID)], s.ID)
					rw.res.StaticLI++
					return &decision{
						kind: SiteLI, site: s,
						preheader:  ph,
						headerItem: rw.headerInsertItem(u, f, l),
					}
				}
			}
		}

		// Monotonic target address: a range check in the pre-header.
		b := li.BoundsOf(addr, block)
		if b.L.Kind != bounds.Bot && b.U.Kind != bounds.Bot &&
			b.L.Expr.Depth() <= 6 && b.U.Expr.Depth() <= 6 {
			s := rw.newSite(SiteRange, f.Name)
			ph, err := rw.rangePreheaderText(b.L.Expr, b.U.Expr, extra, s.ID)
			if err == nil {
				rw.res.LoopSites[int32(s.ID)] = append(rw.res.LoopSites[int32(s.ID)], s.ID)
				rw.res.StaticRange++
				return &decision{
					kind: SiteRange, site: s,
					preheader:  ph,
					headerItem: rw.headerInsertItem(u, f, l),
				}
			}
		}
	}
	return nil
}

// headerInsertItem returns the item index before which pre-header code must
// be inserted: the first label of the loop header's label group, so that
// back-edge branches (which target the label) skip the pre-header while
// fallthrough entry executes it.
func (rw *rewriter) headerInsertItem(u *asm.Unit, f *cfg.Func, l *cfg.Loop) int {
	firstInstr := f.InstrItem(f.Blocks[l.Header].Start)
	i := firstInstr
	for i > 0 && u.Items[i-1].Kind == asm.ItemLabel {
		i--
	}
	return i
}

// liPreheaderText emits the loop-invariant pre-header check: compute the
// address, call __mrs_licheck_w with the site id in %g2.
func (rw *rewriter) liPreheaderText(e *bounds.Expr, siteID int) (string, error) {
	var b strings.Builder
	skip := fmt.Sprintf("__ph%d_skip", siteID)
	fmt.Fprintf(&b, "\ttst %%g6\n\tbne %s\n", skip)
	if err := genExpr(&b, e, "%g5", []string{"%g3", "%g2"}); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\tset %d, %%g2\n", siteID)
	fmt.Fprintf(&b, "\t.count %q\n", CounterGenLI)
	fmt.Fprintf(&b, "\tcall __mrs_licheck_w\n")
	fmt.Fprintf(&b, "%s:\n", skip)
	return b.String(), nil
}

// rangePreheaderText emits the monotonic range check: low bound in %g5,
// high bound (inclusive, extended by extra bytes for double-word stores) in
// %g1, site id in %g2.
func (rw *rewriter) rangePreheaderText(lo, hi *bounds.Expr, extra int32, siteID int) (string, error) {
	var b strings.Builder
	skip := fmt.Sprintf("__ph%d_skip", siteID)
	fmt.Fprintf(&b, "\ttst %%g6\n\tbne %s\n", skip)
	if err := genExpr(&b, lo, "%g5", []string{"%g3", "%g2"}); err != nil {
		return "", err
	}
	if err := genExpr(&b, hi, "%g1", []string{"%g3", "%g2"}); err != nil {
		return "", err
	}
	if extra != 0 {
		fmt.Fprintf(&b, "\tadd %%g1, %d, %%g1\n", extra)
	}
	// The store covers word(s) starting at the bound: extend to the last
	// byte touched.
	fmt.Fprintf(&b, "\tadd %%g1, 3, %%g1\n")
	fmt.Fprintf(&b, "\tset %d, %%g2\n", siteID)
	fmt.Fprintf(&b, "\t.count %q\n", CounterGenRange)
	fmt.Fprintf(&b, "\tcall __mrs_range\n")
	fmt.Fprintf(&b, "%s:\n", skip)
	return b.String(), nil
}

// genExpr emits code computing e into dest, using scratch registers for
// nested non-constant operands. It fails (conservatively) if the expression
// needs more registers than available.
func genExpr(b *strings.Builder, e *bounds.Expr, dest string, scratch []string) error {
	switch e.Kind {
	case bounds.EConst:
		fmt.Fprintf(b, "\tset %d, %s\n", e.Const, dest)
	case bounds.ESym:
		fmt.Fprintf(b, "\tset %s, %s\n", e.Sym, dest)
		if e.Const != 0 {
			if e.Const >= -4096 && e.Const <= 4095 {
				fmt.Fprintf(b, "\tadd %s, %d, %s\n", dest, e.Const, dest)
			} else if len(scratch) == 0 {
				return fmt.Errorf("elim: out of scratch registers")
			} else {
				fmt.Fprintf(b, "\tset %d, %s\n", e.Const, scratch[0])
				fmt.Fprintf(b, "\tadd %s, %s, %s\n", dest, scratch[0], dest)
			}
		}
	case bounds.EFP:
		fmt.Fprintf(b, "\tmov %%fp, %s\n", dest)
	case bounds.ESlot:
		if e.Slot.IsFP {
			if e.Slot.FpOff >= -4096 && e.Slot.FpOff <= 4095 {
				fmt.Fprintf(b, "\tld [%%fp%+d], %s\n", e.Slot.FpOff, dest)
			} else if len(scratch) == 0 {
				return fmt.Errorf("elim: out of scratch registers")
			} else {
				fmt.Fprintf(b, "\tset %d, %s\n", e.Slot.FpOff, scratch[0])
				fmt.Fprintf(b, "\tld [%%fp+%s], %s\n", scratch[0], dest)
			}
		} else {
			fmt.Fprintf(b, "\tset %s, %s\n", e.Slot.Label, dest)
			fmt.Fprintf(b, "\tld [%s], %s\n", dest, dest)
		}
	case bounds.EOp:
		opName := map[sparc.Op]string{
			sparc.Add: "add", sparc.Sub: "sub", sparc.Sll: "sll", sparc.SMul: "smul",
		}[e.Op]
		if opName == "" {
			return fmt.Errorf("elim: unsupported bound op %v", e.Op)
		}
		if err := genExpr(b, e.Args[0], dest, scratch); err != nil {
			return err
		}
		rhs := e.Args[1]
		if rhs.Kind == bounds.EConst && rhs.Const >= -4096 && rhs.Const <= 4095 &&
			(e.Op != sparc.Sll || (rhs.Const >= 0 && rhs.Const <= 31)) {
			fmt.Fprintf(b, "\t%s %s, %d, %s\n", opName, dest, rhs.Const, dest)
			return nil
		}
		if len(scratch) == 0 {
			return fmt.Errorf("elim: out of scratch registers")
		}
		if err := genExpr(b, rhs, scratch[0], scratch[1:]); err != nil {
			return err
		}
		fmt.Fprintf(b, "\t%s %s, %s, %s\n", opName, dest, scratch[0], dest)
	}
	return nil
}

// fpCheckText emits the %fp-definition check of §4.2, realized as a shadow
// stack of frame pointers: each save pushes the new %fp; each restore pops
// and verifies the stack pointer it restored. Cost: two sets, two memory
// accesses, and a compare-and-branch — "as expensive as checking two or
// three write instructions", as the paper prices it.
func (rw *rewriter) fpCheckText(isSave bool) string {
	id := rw.nextID()
	var b strings.Builder
	fmt.Fprintf(&b, "\t.count %q\n", CounterFpChecks)
	fmt.Fprintf(&b, "\tset %d, %%l6\n", monitor.FpScratch)
	fmt.Fprintf(&b, "\tld [%%l6], %%l7\n")
	if isSave {
		fmt.Fprintf(&b, "\tst %%fp, [%%l7]\n")
		fmt.Fprintf(&b, "\tadd %%l7, 4, %%l7\n")
		fmt.Fprintf(&b, "\tst %%l7, [%%l6]\n")
	} else {
		fmt.Fprintf(&b, "\tsub %%l7, 4, %%l7\n")
		fmt.Fprintf(&b, "\tst %%l7, [%%l6]\n")
		fmt.Fprintf(&b, "\tld [%%l7], %%l6\n")
		fmt.Fprintf(&b, "\tcmp %%l6, %%sp\n")
		fmt.Fprintf(&b, "\tbe __fp%d_ok\n", id)
		fmt.Fprintf(&b, "\tmov 1, %%o0\n")
		fmt.Fprintf(&b, "\tta 9\n")
		fmt.Fprintf(&b, "__fp%d_ok:\n", id)
	}
	return b.String()
}

// jmpCheckText emits the indirect-jump legitimacy check of §4.2: the target
// must be word aligned and inside the text segment envelope.
func (rw *rewriter) jmpCheckText(in sparc.Instr) string {
	id := rw.nextID()
	var b strings.Builder
	fmt.Fprintf(&b, "\t.count %q\n", CounterJmpChecks)
	if in.UseImm {
		fmt.Fprintf(&b, "\tadd %s, %d, %%l7\n", in.Rs1, in.Imm)
	} else {
		fmt.Fprintf(&b, "\tadd %s, %s, %%l7\n", in.Rs1, in.Rs2)
	}
	fmt.Fprintf(&b, "\tbtst 3, %%l7\n")
	fmt.Fprintf(&b, "\tbne __jc%d_bad\n", id)
	fmt.Fprintf(&b, "\tset %d, %%l6\n", 0x0001_0000) // machine.TextBase
	fmt.Fprintf(&b, "\tcmp %%l7, %%l6\n")
	fmt.Fprintf(&b, "\tbgeu __jc%d_ok\n", id)
	fmt.Fprintf(&b, "__jc%d_bad:\n", id)
	fmt.Fprintf(&b, "\tmov 2, %%o0\n")
	fmt.Fprintf(&b, "\tta 9\n")
	fmt.Fprintf(&b, "__jc%d_ok:\n", id)
	return b.String()
}
