package elim

import (
	"fmt"

	"databreak/internal/asm"
	"databreak/internal/machine"
	"databreak/internal/monitor"
	"databreak/internal/sparc"
)

// Runtime manages dynamic insertion and deletion of eliminated write checks
// for a loaded program (§4's write check patches): it arms a site by
// replacing its store with a branch to the site's patch block, and disarms
// it by restoring the original instruction.
type Runtime struct {
	m    *machine.Machine
	prog *asm.Program
	res  *Result

	original map[int]sparc.Instr // armed site id -> displaced store
	armedSym map[string]bool

	// ArmEvents counts dynamic re-insertion events (range/LI hits).
	ArmEvents int
}

// NewRuntime wires the re-insertion machinery: range-check hits arm their
// loop's eliminated sites, and the shadow %fp stack is initialized.
func NewRuntime(m *machine.Machine, prog *asm.Program, res *Result) *Runtime {
	r := &Runtime{
		m:        m,
		prog:     prog,
		res:      res,
		original: make(map[int]sparc.Instr),
		armedSym: make(map[string]bool),
	}
	m.OnRangeHit = func(id int32) {
		r.ArmEvents++
		for _, site := range res.LoopSites[id] {
			r.armSite(site)
		}
	}
	r.InitShadowStack()
	return r
}

// InitShadowStack (re)initializes the %fp shadow stack pointer; call after
// machine.Reset.
func (r *Runtime) InitShadowStack() {
	base := monitor.FpScratch
	r.m.WriteWord(base, int32(base+8))
}

func (r *Runtime) siteIndexes(id int) (site, patchBlock int32, err error) {
	s, ok := r.prog.TextLabels[siteLabel(id)]
	if !ok {
		return 0, 0, fmt.Errorf("elim: site %d has no label", id)
	}
	p, ok := r.prog.TextLabels[sitePatchLabel(id)]
	if !ok {
		return 0, 0, fmt.Errorf("elim: site %d has no patch block", id)
	}
	return s, p, nil
}

// armSite and disarmSite patch live text from inside OnRangeHit, i.e. at a
// trap boundary mid-run. They rely on machine.PatchInstr being the one
// sanctioned text-mutation path: it invalidates both the simulated I-cache
// line and the block-dispatch index, so the re-inserted (or restored) check
// is picked up on the very next dispatch of its block.
func (r *Runtime) armSite(id int) {
	if _, armed := r.original[id]; armed {
		return
	}
	sIdx, pIdx, err := r.siteIndexes(id)
	if err != nil {
		return
	}
	orig, ok := r.m.InstrAt(sIdx)
	if !ok {
		return
	}
	if r.m.PatchInstr(sIdx, sparc.Branch(sparc.BA, pIdx)) != nil {
		return
	}
	r.original[id] = orig
}

func (r *Runtime) disarmSite(id int) {
	orig, armed := r.original[id]
	if !armed {
		return
	}
	sIdx, _, err := r.siteIndexes(id)
	if err != nil {
		return
	}
	if r.m.PatchInstr(sIdx, orig) != nil {
		return
	}
	delete(r.original, id)
}

// ArmSymbol re-inserts the checks for every known write to the named
// variable; the debugger calls this from PreMonitor before creating the
// variable's monitored region.
func (r *Runtime) ArmSymbol(name string) error {
	sites, ok := r.res.SymbolSites[name]
	if !ok {
		return fmt.Errorf("elim: no eliminated sites for symbol %q", name)
	}
	if r.armedSym[name] {
		return fmt.Errorf("elim: symbol %q already armed", name)
	}
	for _, id := range sites {
		r.armSite(id)
	}
	r.armedSym[name] = true
	return nil
}

// DisarmSymbol reverses ArmSymbol (PostMonitor).
func (r *Runtime) DisarmSymbol(name string) error {
	if !r.armedSym[name] {
		return fmt.Errorf("elim: symbol %q is not armed", name)
	}
	for _, id := range r.res.SymbolSites[name] {
		r.disarmSite(id)
	}
	delete(r.armedSym, name)
	return nil
}

// DisarmLoops restores all loop-eliminated sites (the MRS does this when
// monitored regions are deleted; the next pre-header execution re-arms as
// needed).
func (r *Runtime) DisarmLoops() {
	for _, sites := range r.res.LoopSites {
		for _, id := range sites {
			r.disarmSite(id)
		}
	}
}

// ArmedSites returns the number of currently armed sites.
func (r *Runtime) ArmedSites() int { return len(r.original) }

// PreMonitorSymbol arms a symbol's sites and then creates its monitored
// region via svc (the ordering of §4.2: patch, then create, so no hit is
// missed). Only global symbols are supported here since stack frames are
// dynamic.
func (r *Runtime) PreMonitorSymbol(svc *monitor.Service, name string) error {
	sym, ok := r.prog.LookupSym(name, "")
	if !ok || sym.Kind != asm.SymGlobal {
		return fmt.Errorf("elim: %q is not a global symbol", name)
	}
	if _, ok := r.res.SymbolSites[name]; ok {
		if err := r.ArmSymbol(name); err != nil {
			return err
		}
	}
	size := uint32(sym.Size)
	if size == 0 {
		size = 4
	}
	return svc.CreateRegion(sym.Addr, size)
}

// PostMonitorSymbol deletes the symbol's region and disarms its sites.
func (r *Runtime) PostMonitorSymbol(svc *monitor.Service, name string) error {
	sym, ok := r.prog.LookupSym(name, "")
	if !ok || sym.Kind != asm.SymGlobal {
		return fmt.Errorf("elim: %q is not a global symbol", name)
	}
	size := uint32(sym.Size)
	if size == 0 {
		size = 4
	}
	if err := svc.DeleteRegion(sym.Addr, size); err != nil {
		return err
	}
	if r.armedSym[name] {
		return r.DisarmSymbol(name)
	}
	return nil
}
