package elim

import (
	"testing"

	"databreak/internal/asm"
	"databreak/internal/cache"
	"databreak/internal/machine"
	"databreak/internal/minic"
	"databreak/internal/monitor"
	"databreak/internal/patch"
)

type world struct {
	prog *asm.Program
	m    *machine.Machine
	svc  *monitor.Service
	rt   *Runtime
	res  *Result
}

func build(t *testing.T, mode Mode, csrc string) *world {
	t.Helper()
	asmSrc, err := minic.Compile(csrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	u, err := asm.Parse("p.s", asmSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Apply(Options{Mode: mode}, u)
	if err != nil {
		t.Fatalf("elim: %v", err)
	}
	prog, err := asm.Assemble(asm.Options{AddStartup: true}, res.Units...)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.Load(m)
	svc, err := monitor.NewService(monitor.DefaultConfig, m)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(m, prog, res)
	return &world{prog: prog, m: m, svc: svc, rt: rt, res: res}
}

const loopProg = `
int a[200];
int total;
int main() {
	int i;
	int n;
	n = 200;
	for (i = 0; i < n; i = i + 1) a[i] = i;
	total = a[199];
	return total;
}
`

func TestProgramStillCorrect(t *testing.T) {
	for _, mode := range []Mode{SymOnly, Full} {
		w := build(t, mode, loopProg)
		code, err := w.m.Run()
		if err != nil {
			t.Fatalf("%v: run: %v", mode, err)
		}
		if code != 199 {
			t.Fatalf("%v: exit = %d, want 199", mode, code)
		}
	}
}

func TestSymbolEliminationCounters(t *testing.T) {
	w := build(t, SymOnly, loopProg)
	// Keep one far-away region live so the disabled flag is clear.
	if err := w.svc.CreateRegion(machine.HeapBase+0x1000, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := w.m.Run(); err != nil {
		t.Fatal(err)
	}
	elim := w.prog.Counter(w.m, CounterElimSym)
	checked := w.prog.Counter(w.m, patch.CounterChecks)
	if elim == 0 {
		t.Fatal("symbol elimination removed no dynamic checks")
	}
	// Scalar stores (i, n, total) are known; the array stores are not.
	if checked == 0 {
		t.Fatal("array stores must remain checked in Sym mode")
	}
	if w.prog.Counter(w.m, CounterFpChecks) == 0 {
		t.Fatal("fp-definition checks must execute")
	}
	if w.prog.Counter(w.m, CounterJmpChecks) == 0 {
		t.Fatal("indirect-jump checks must execute")
	}
}

func TestLoopEliminationRemovesArrayChecks(t *testing.T) {
	w := build(t, Full, loopProg)
	if err := w.svc.CreateRegion(machine.HeapBase+0x1000, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := w.m.Run(); err != nil {
		t.Fatal(err)
	}
	rangeElim := w.prog.Counter(w.m, CounterElimRange)
	if rangeElim < 190 {
		t.Fatalf("range elimination covered %d dynamic writes, want ~200", rangeElim)
	}
	gen := w.prog.Counter(w.m, CounterGenRange)
	if gen != 1 {
		t.Fatalf("range pre-header checks executed %d times, want 1", gen)
	}
	if w.rt.ArmEvents != 0 {
		t.Fatal("no re-insertion events expected with a far-away region")
	}
}

func TestRangeHitReinsertsChecksAndDetectsHits(t *testing.T) {
	w := build(t, Full, loopProg)
	// Monitor a[100] (the a array lives at its global label).
	sym, ok := w.prog.LookupSym("a", "")
	if !ok {
		t.Fatal("no symbol a")
	}
	target := sym.Addr + 100*4
	if err := w.svc.CreateRegion(target, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := w.m.Run(); err != nil {
		t.Fatal(err)
	}
	if w.rt.ArmEvents == 0 {
		t.Fatal("pre-header range check must fire and arm the site")
	}
	if len(w.svc.Hits) != 1 || w.svc.Hits[0].Addr != target {
		t.Fatalf("hits = %+v, want exactly one at %#x", w.svc.Hits, target)
	}
	// Program result must be unaffected by the detour through the patch
	// block.
	if w.m.ExitCode() != 199 {
		t.Fatalf("exit = %d, want 199", w.m.ExitCode())
	}
	if w.rt.ArmedSites() == 0 {
		t.Fatal("site must remain armed")
	}
	w.rt.DisarmLoops()
	if w.rt.ArmedSites() != 0 {
		t.Fatal("DisarmLoops must restore every site")
	}
}

func TestPreMonitorSymbolDetectsKnownWrites(t *testing.T) {
	w := build(t, Full, loopProg)
	// total is written once by a known (symbol-matched) store whose check
	// was eliminated; PreMonitor must arm it.
	if err := w.rt.PreMonitorSymbol(w.svc, "total"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.m.Run(); err != nil {
		t.Fatal(err)
	}
	found := false
	sym, _ := w.prog.LookupSym("total", "")
	for _, h := range w.svc.Hits {
		if h.Addr == sym.Addr {
			found = true
		}
	}
	if !found {
		t.Fatalf("write to total not detected; hits = %+v", w.svc.Hits)
	}
	if err := w.rt.PostMonitorSymbol(w.svc, "total"); err != nil {
		t.Fatal(err)
	}
	// Loop sites may also have been armed: total lies in the same summary
	// granule as the tail of a, so the conservative range check fires.
	w.rt.DisarmLoops()
	if w.rt.ArmedSites() != 0 {
		t.Fatal("PostMonitor + DisarmLoops must disarm every site")
	}
}

func TestUnarmedKnownWriteIsMissedByDesign(t *testing.T) {
	// Without PreMonitor, an eliminated known write executes unchecked:
	// creating the region alone is not enough. This is the documented MRS
	// contract (the debugger must call PreMonitor for known writes).
	w := build(t, Full, loopProg)
	sym, _ := w.prog.LookupSym("total", "")
	if err := w.svc.CreateRegion(sym.Addr, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := w.m.Run(); err != nil {
		t.Fatal(err)
	}
	for _, h := range w.svc.Hits {
		if h.Addr == sym.Addr {
			t.Fatal("eliminated site fired without being armed: checks were not actually eliminated")
		}
	}
}

func TestInvariantPointerStoreElimination(t *testing.T) {
	src := `
int a[100];
int fill(int k) {
	int i;
	int *p;
	p = &a[k];
	for (i = 0; i < 50; i = i + 1) {
		*p = i;
	}
	return a[k];
}
int main() { return fill(7); }
`
	w := build(t, Full, src)
	if err := w.svc.CreateRegion(machine.HeapBase+0x1000, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := w.m.Run(); err != nil {
		t.Fatal(err)
	}
	if w.m.ExitCode() != 49 {
		t.Fatalf("exit = %d, want 49", w.m.ExitCode())
	}
	if w.prog.Counter(w.m, CounterElimLI) < 50 {
		t.Fatalf("LI elimination = %d dynamic writes, want 50",
			w.prog.Counter(w.m, CounterElimLI))
	}
	if w.prog.Counter(w.m, CounterGenLI) != 1 {
		t.Fatalf("LI pre-header executed %d times, want 1",
			w.prog.Counter(w.m, CounterGenLI))
	}
}

func TestLIHitReinsertion(t *testing.T) {
	src := `
int a[100];
int fill(int k) {
	int i;
	int *p;
	p = &a[k];
	for (i = 0; i < 50; i = i + 1) {
		*p = i;
	}
	return a[k];
}
int main() { return fill(7); }
`
	w := build(t, Full, src)
	sym, _ := w.prog.LookupSym("a", "")
	if err := w.svc.CreateRegion(sym.Addr+7*4, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := w.m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(w.svc.Hits) != 50 {
		t.Fatalf("hits = %d, want 50 (every loop write)", len(w.svc.Hits))
	}
}

func TestRegisterVarsNeedNoElimination(t *testing.T) {
	src := `
int out;
int main() {
	register int i;
	register int s;
	s = 0;
	for (i = 0; i < 100; i = i + 1) s = s + i;
	out = s;
	return 0;
}
`
	w := build(t, Full, src)
	if err := w.svc.CreateRegion(machine.HeapBase+0x1000, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := w.m.Run(); err != nil {
		t.Fatal(err)
	}
	// Register-allocated code performs almost no stores: one to out.
	total := w.prog.Counter(w.m, CounterElimSym) +
		w.prog.Counter(w.m, CounterElimLI) +
		w.prog.Counter(w.m, CounterElimRange) +
		w.prog.Counter(w.m, patch.CounterChecks)
	if total > 2 {
		t.Fatalf("register-heavy code executed %d write events, want <= 2", total)
	}
	if w.m.Output() != "" {
		t.Fatal("unexpected output")
	}
}

func TestNestedLoopElimination(t *testing.T) {
	src := `
int m[400];
int main() {
	int i;
	int j;
	for (i = 0; i < 20; i = i + 1) {
		for (j = 0; j < 20; j = j + 1) {
			m[i * 20 + j] = i + j;
		}
	}
	return m[399];
}
`
	w := build(t, Full, src)
	if err := w.svc.CreateRegion(machine.HeapBase+0x1000, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := w.m.Run(); err != nil {
		t.Fatal(err)
	}
	if w.m.ExitCode() != 38 {
		t.Fatalf("exit = %d, want 38", w.m.ExitCode())
	}
	if w.prog.Counter(w.m, CounterElimRange) < 390 {
		t.Fatalf("nested range elimination = %d, want ~400",
			w.prog.Counter(w.m, CounterElimRange))
	}
	// Pre-header check per outer iteration: 20.
	if got := w.prog.Counter(w.m, CounterGenRange); got != 20 {
		t.Fatalf("inner pre-header executed %d times, want 20", got)
	}
}

func TestSymVsFullOverheadOnScientificLoop(t *testing.T) {
	// Full elimination must beat Sym-only on loop-dominated code.
	cycles := map[Mode]int64{}
	for _, mode := range []Mode{SymOnly, Full} {
		w := build(t, mode, loopProg)
		if err := w.svc.CreateRegion(machine.HeapBase+0x1000, 4); err != nil {
			t.Fatal(err)
		}
		if _, err := w.m.Run(); err != nil {
			t.Fatal(err)
		}
		cycles[mode] = w.m.Cycles()
	}
	if cycles[Full] >= cycles[SymOnly] {
		t.Fatalf("Full (%d cycles) must beat Sym (%d) on array loops",
			cycles[Full], cycles[SymOnly])
	}
}

func TestStoresOutsideFunctionsStayChecked(t *testing.T) {
	// Hand-written assembly without func records: every store must keep a
	// standard check (the conservative default).
	src := `
entry:
	save %sp, -96, %sp
	set cell, %o0
	st %g0, [%o0]
	mov 0, %o0
	ta 0
	.data
cell:	.word 1
`
	u := asm.MustParse("raw.s", src)
	res, err := Apply(Options{Mode: Full}, u)
	if err != nil {
		t.Fatal(err)
	}
	if res.StaticChecked != 0 || len(res.Sites) != 0 {
		// No function records means SplitFunctions found nothing; the store
		// falls through the per-item default.
		t.Logf("sites=%d checked=%d", len(res.Sites), res.StaticChecked)
	}
	prog, err := asm.Assemble(asm.Options{}, res.Units...)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(cache.DefaultConfig, machine.DefaultCosts)
	prog.Load(m)
	svc, err := monitor.NewService(monitor.DefaultConfig, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateRegion(machine.DataBase, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(svc.Hits) != 1 {
		t.Fatalf("hits = %d, want 1 (store must remain checked)", len(svc.Hits))
	}
}

func TestElimAcrossMultipleFunctions(t *testing.T) {
	src := `
int a[64];
int fillRange(int n) {
	int i;
	for (i = 0; i < n; i = i + 1) a[i] = i;
	return 0;
}
int touch(int k) {
	a[5] = k;
	return a[5];
}
int main() {
	fillRange(64);
	return touch(9);
}
`
	w := build(t, Full, src)
	sym, _ := w.prog.LookupSym("a", "")
	if err := w.svc.CreateRegion(sym.Addr+5*4, 4); err != nil {
		t.Fatal(err)
	}
	// touch writes a[5] via a known (constant) address: that site belongs
	// to symbol a, so arm it; fillRange's loop store is range-eliminated
	// and re-inserts itself via the pre-header.
	if err := w.rt.ArmSymbol("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.m.Run(); err != nil {
		t.Fatal(err)
	}
	if w.m.ExitCode() != 9 {
		t.Fatalf("exit = %d", w.m.ExitCode())
	}
	// Expect two hits on a[5]: one from the loop (re-inserted via range
	// check) and one from touch (armed symbol site).
	var hits int
	for _, h := range w.svc.Hits {
		if h.Addr == sym.Addr+5*4 {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("hits on a[5] = %d, want 2 (%+v)", hits, w.svc.Hits)
	}
}
