// Package bounds implements the bound-propagation analysis of §4.3: for
// each loop it classifies SSA values as constant, loop invariant, or
// monotonic, derives symbolic lower/upper bounds through the lattice
//
//	L_C > L_LI > L_M > L_A > ⊥
//
// of Figure 4, and refines monotonic variables with assert information taken
// from the conditional branches that control the loop (§4.3.1). The result
// drives loop-invariant check motion and monotonic-write range checks in
// internal/elim.
package bounds

import (
	"databreak/internal/cfg"
	"databreak/internal/ir"
	"databreak/internal/sparc"
)

// Kind is a bound's lattice level; larger is more useful.
type Kind uint8

const (
	Bot Kind = iota // no known bound
	KA              // derived from asserts over monotonic variables
	KM              // derived from monotonic variables
	KLI             // derived from loop invariants (and constants)
	KC              // derived from constants only
)

func (k Kind) String() string {
	switch k {
	case KC:
		return "L_C"
	case KLI:
		return "L_LI"
	case KM:
		return "L_M"
	case KA:
		return "L_A"
	}
	return "⊥"
}

// ExprKind discriminates bound expressions.
type ExprKind uint8

const (
	EConst ExprKind = iota
	ESym            // address of a data symbol + offset
	EFP             // current frame pointer
	ESlot           // reload a scalar symbol slot (stack or global)
	EOp             // arithmetic over sub-expressions
)

// Expr is a symbolic bound expression that pre-header code can evaluate:
// its leaves are constants, symbol addresses, %fp, and reloadable scalar
// slots (§4.4: the optimizer "walks the expression DAG ... until it reaches
// loop invariant or constant operands").
type Expr struct {
	Kind  ExprKind
	Const int32
	Sym   string
	Slot  ir.Slot
	Op    sparc.Op // EOp: Add, Sub, Sll, SMul
	Args  []*Expr
}

// Depth returns the expression tree height (codegen rejects deep trees).
func (e *Expr) Depth() int {
	d := 0
	for _, a := range e.Args {
		if ad := a.Depth(); ad > d {
			d = ad
		}
	}
	return d + 1
}

// Bound is one side of a value's range.
type Bound struct {
	Kind Kind
	Expr *Expr
}

// Bounds pairs the lower and upper bound of a value.
type Bounds struct {
	L, U Bound
}

// Mono describes a monotonic variable (a loop-header phi).
type Mono struct {
	Phi  int   // canonical phi value id
	Init int   // value id flowing in from outside the loop
	Step int32 // per-iteration delta (sign gives direction)
}

// Assert is a branch-derived fact that holds on an edge into tgt: the value
// Val is bounded by Limit (inclusive) from above (Upper) or below.
type Assert struct {
	Val    int // canonical value id
	Limit  int // canonical invariant value id
	Adjust int32
	Upper  bool
	Target int // block the fact holds in (and in blocks it dominates)
}

// LoopInfo is the analysis result for one loop.
type LoopInfo struct {
	In      *ir.Info
	Loop    *cfg.Loop
	Mono    map[int]Mono
	Asserts []Assert

	inv    map[int]int8 // memo: 0 unknown, 1 yes, -1 no, 2 in-progress
	bnds   map[int]*Bounds
	exprs  map[int]*Expr
	stored map[int]bool // slots stored inside the loop
	calls  bool         // loop contains a call (kills global slots)
}

// AnalyzeLoop computes monotonic variables, asserts, and prepares bound
// queries for stores in the loop.
func AnalyzeLoop(in *ir.Info, l *cfg.Loop) *LoopInfo {
	li := &LoopInfo{
		In:     in,
		Loop:   l,
		Mono:   make(map[int]Mono),
		inv:    make(map[int]int8),
		bnds:   make(map[int]*Bounds),
		exprs:  make(map[int]*Expr),
		stored: make(map[int]bool),
	}
	li.scanLoopBody()
	li.findMonotonic()
	li.findAsserts()
	return li
}

func (li *LoopInfo) scanLoopBody() {
	f := li.In.F
	for b := range li.Loop.Blocks {
		blk := f.Blocks[b]
		for p := blk.Start; p < blk.End; p++ {
			in := f.Instruction(p)
			if slot, ok := li.In.StoreSlot[p]; ok {
				li.stored[slot] = true
			}
			if in.Op == sparc.Call || in.Op == sparc.Ta {
				li.calls = true
			}
		}
	}
}

// Invariant reports whether value id is loop invariant (§4.3: defined
// outside the loop, constant, or computed purely from invariants).
func (li *LoopInfo) Invariant(id int) bool {
	id = li.In.Resolve(id)
	switch li.inv[id] {
	case 1:
		return true
	case -1, 2:
		return false
	}
	li.inv[id] = 2 // cycle guard: recursive dependency means a loop phi
	v := li.In.Vals[id]
	res := false
	switch v.Kind {
	case ir.ValConst, ir.ValSym, ir.ValSymHi, ir.ValFP, ir.ValParam:
		res = true
	case ir.ValUnknown:
		res = v.Pos == -1 || !li.Loop.Blocks[v.Block]
	case ir.ValPhi:
		res = !li.Loop.Blocks[v.Block]
	case ir.ValOp:
		if !li.Loop.Blocks[v.Block] {
			res = true
		} else {
			res = true
			for _, a := range v.Args {
				if !li.Invariant(a) {
					res = false
					break
				}
			}
		}
	}
	if res {
		li.inv[id] = 1
	} else {
		li.inv[id] = -1
	}
	return res
}

// findMonotonic detects loop-header phis of the form phi = φ(init, phi+c).
func (li *LoopInfo) findMonotonic() {
	f := li.In.F
	header := f.Blocks[li.Loop.Header]
	seen := make(map[int]bool)
	for _, v := range li.In.Vals {
		if v.Kind != ir.ValPhi || li.In.Resolve(v.ID) != v.ID || v.Block != li.Loop.Header {
			continue
		}
		if seen[v.ID] || len(v.Args) != len(header.Preds) {
			continue
		}
		seen[v.ID] = true
		init := -1
		step := int32(0)
		ok := true
		for i, pred := range header.Preds {
			arg := li.In.Resolve(v.Args[i])
			if li.Loop.Blocks[pred] {
				// Back edge: must be phi + constant (chasing add/sub chains).
				d, chased := li.chaseStep(arg, v.ID, 0, 8)
				if !chased || d == 0 || (step != 0 && (d > 0) != (step > 0)) {
					ok = false
					break
				}
				step = d
			} else {
				if init != -1 && init != arg {
					ok = false
					break
				}
				init = arg
			}
		}
		if ok && init >= 0 && step != 0 && li.Invariant(init) {
			li.Mono[v.ID] = Mono{Phi: v.ID, Init: init, Step: step}
		}
	}
}

// chaseStep resolves arg = phi + delta through chains of constant add/sub.
func (li *LoopInfo) chaseStep(arg, phi int, acc int32, fuel int) (int32, bool) {
	if fuel == 0 {
		return 0, false
	}
	arg = li.In.Resolve(arg)
	if arg == phi {
		return acc, true
	}
	v := li.In.Vals[arg]
	if v.Kind != ir.ValOp {
		return 0, false
	}
	switch v.Op {
	case sparc.Add, sparc.Addcc:
		a, b := li.In.Val(v.Args[0]), li.In.Val(v.Args[1])
		if b.Kind == ir.ValConst {
			return li.chaseStep(a.ID, phi, acc+b.Const, fuel-1)
		}
		if a.Kind == ir.ValConst {
			return li.chaseStep(b.ID, phi, acc+a.Const, fuel-1)
		}
	case sparc.Sub, sparc.Subcc:
		a, b := li.In.Val(v.Args[0]), li.In.Val(v.Args[1])
		if b.Kind == ir.ValConst {
			return li.chaseStep(a.ID, phi, acc-b.Const, fuel-1)
		}
	}
	return 0, false
}

// findAsserts converts the loop's conditional branches into assert facts
// (§4.3.1): on the edge where `cmp x, limit; b<rel>` holds, x is bounded.
func (li *LoopInfo) findAsserts() {
	f := li.In.F
	for b := range li.Loop.Blocks {
		blk := f.Blocks[b]
		last := blk.End - 1
		in := f.Instruction(last)
		if in.Op != sparc.Br || in.Cond == sparc.BA || in.Cond == sparc.BN {
			continue
		}
		cmp, ok := li.In.CmpAt[b]
		if !ok || (cmp.Op != sparc.Subcc) {
			continue
		}
		// cfg.Build orders a conditional block's successors as
		// [taken, fallthrough].
		if len(blk.Succs) != 2 {
			continue
		}
		taken, fall := blk.Succs[0], blk.Succs[1]
		if taken == fall {
			continue
		}
		li.assertsForEdge(cmp, in.Cond, taken)
		li.assertsForEdge(cmp, in.Cond.Negate(), fall)
	}
}

func (li *LoopInfo) assertsForEdge(cmp ir.Cmp, cond sparc.Cond, target int) {
	lhs, rhs := li.In.Resolve(cmp.Lhs), li.In.Resolve(cmp.Rhs)
	add := func(val, limit int, adjust int32, upper bool) {
		// Only record useful asserts: the bounded side varies, the limit is
		// invariant.
		if !li.Invariant(limit) || li.Invariant(val) {
			return
		}
		li.Asserts = append(li.Asserts, Assert{Val: val, Limit: limit, Adjust: adjust, Upper: upper, Target: target})
	}
	switch cond {
	case sparc.BL: // lhs < rhs
		add(lhs, rhs, -1, true)
		add(rhs, lhs, 1, false)
	case sparc.BLE:
		add(lhs, rhs, 0, true)
		add(rhs, lhs, 0, false)
	case sparc.BG:
		add(lhs, rhs, 1, false)
		add(rhs, lhs, -1, true)
	case sparc.BGE:
		add(lhs, rhs, 0, false)
		add(rhs, lhs, 0, true)
	case sparc.BE:
		add(lhs, rhs, 0, true)
		add(lhs, rhs, 0, false)
	}
}

// ExprFor builds a materializable pre-header expression for an invariant
// value: constants, symbol addresses, %fp, and values reloadable from a
// scalar slot whose content is unchanged inside the loop.
func (li *LoopInfo) ExprFor(id int) (*Expr, bool) {
	id = li.In.Resolve(id)
	if e, ok := li.exprs[id]; ok {
		return e, e != nil
	}
	e := li.exprFor(id)
	li.exprs[id] = e
	return e, e != nil
}

func (li *LoopInfo) exprFor(id int) *Expr {
	v := li.In.Vals[id]
	switch v.Kind {
	case ir.ValConst:
		return &Expr{Kind: EConst, Const: v.Const}
	case ir.ValSym:
		return &Expr{Kind: ESym, Sym: v.Sym, Const: v.Const}
	case ir.ValFP:
		return &Expr{Kind: EFP}
	case ir.ValOp:
		if !li.Invariant(id) {
			return nil
		}
		switch v.Op {
		case sparc.Add, sparc.Sub, sparc.Sll, sparc.SMul:
			a := li.exprFor(li.In.Resolve(v.Args[0]))
			b := li.exprFor(li.In.Resolve(v.Args[1]))
			if a == nil || b == nil {
				return nil
			}
			op := v.Op
			return &Expr{Kind: EOp, Op: op, Args: []*Expr{a, b}}
		}
		return li.slotExpr(id)
	default:
		return li.slotExpr(id)
	}
}

// slotExpr finds a scalar slot whose value at loop entry is exactly id and
// that is not modified inside the loop, so a pre-header reload recovers it.
func (li *LoopInfo) slotExpr(id int) *Expr {
	f := li.In.F
	header := f.Blocks[li.Loop.Header]
	entry := -1
	for _, p := range header.Preds {
		if !li.Loop.Blocks[p] {
			if entry != -1 {
				return nil // multiple entries: ambiguous
			}
			entry = p
		}
	}
	if entry == -1 {
		return nil
	}
	for s := range li.In.Slots {
		if li.stored[s] {
			continue
		}
		if !li.In.Slots[s].IsFP && li.calls {
			continue // a call inside the loop may rewrite a global
		}
		if val, ok := li.In.ValAtEnd(ir.SlotVar(s), entry); ok && val == id {
			return &Expr{Kind: ESlot, Slot: li.In.Slots[s]}
		}
	}
	return nil
}

func addExpr(a *Expr, c int32) *Expr {
	if c == 0 {
		return a
	}
	return &Expr{Kind: EOp, Op: sparc.Add, Args: []*Expr{a, {Kind: EConst, Const: c}}}
}

func minKind(a, b Kind) Kind {
	if a < b {
		return a
	}
	return b
}

// BoundsOf computes the symbolic bounds of value id for uses in block
// useBlock (asserts only apply where their edge dominates the use). This is
// the recursive form of Figure 4's fixed-point: the value graph is acyclic
// apart from loop phis, which are classified as monotonic or ⊥ up front.
func (li *LoopInfo) BoundsOf(id, useBlock int) Bounds {
	id = li.In.Resolve(id)
	key := id // memoized per value; assert applicability rechecked below
	_ = key
	return li.boundsOf(id, useBlock, 12)
}

func (li *LoopInfo) boundsOf(id, useBlock, fuel int) Bounds {
	if fuel == 0 {
		return Bounds{}
	}
	id = li.In.Resolve(id)
	v := li.In.Vals[id]

	// Constants.
	if v.Kind == ir.ValConst {
		e := &Expr{Kind: EConst, Const: v.Const}
		return Bounds{L: Bound{KC, e}, U: Bound{KC, e}}
	}
	// Loop invariants (including symbol addresses).
	if li.Invariant(id) {
		if e, ok := li.ExprFor(id); ok {
			return Bounds{L: Bound{KLI, e}, U: Bound{KLI, e}}
		}
		return Bounds{}
	}
	// Monotonic variables: the init value bounds one side (L_M); an assert
	// bounds the other (L_A).
	if m, ok := li.Mono[id]; ok {
		var b Bounds
		if initE, ok := li.ExprFor(m.Init); ok {
			if m.Step > 0 {
				b.L = Bound{KM, initE}
			} else {
				b.U = Bound{KM, initE}
			}
		}
		if lim, adj, ok := li.assertFor(id, useBlock, m.Step > 0); ok {
			if limE, eok := li.ExprFor(lim); eok {
				if m.Step > 0 {
					b.U = Bound{KA, addExpr(limE, adj)}
				} else {
					b.L = Bound{KA, addExpr(limE, adj)}
				}
			}
		}
		return b
	}

	if v.Kind != ir.ValOp {
		return Bounds{}
	}
	switch v.Op {
	case sparc.Add, sparc.Addcc:
		a := li.boundsOf(v.Args[0], useBlock, fuel-1)
		b := li.boundsOf(v.Args[1], useBlock, fuel-1)
		return Bounds{
			L: combine(a.L, b.L, sparc.Add),
			U: combine(a.U, b.U, sparc.Add),
		}
	case sparc.Sub, sparc.Subcc:
		a := li.boundsOf(v.Args[0], useBlock, fuel-1)
		b := li.boundsOf(v.Args[1], useBlock, fuel-1)
		return Bounds{
			L: combine(a.L, b.U, sparc.Sub),
			U: combine(a.U, b.L, sparc.Sub),
		}
	case sparc.Sll:
		// Shifting left multiplies by a power of two (§4.5.1's overflow
		// caveat applies; this reproduction is optimistic like the paper's
		// measurements).
		sh := li.In.Val(v.Args[1])
		if sh.Kind != ir.ValConst || sh.Const < 0 || sh.Const > 30 {
			return Bounds{}
		}
		a := li.boundsOf(v.Args[0], useBlock, fuel-1)
		shift := func(b Bound) Bound {
			if b.Kind == Bot {
				return b
			}
			return Bound{b.Kind, &Expr{Kind: EOp, Op: sparc.Sll, Args: []*Expr{b.Expr, {Kind: EConst, Const: sh.Const}}}}
		}
		return Bounds{L: shift(a.L), U: shift(a.U)}
	case sparc.SMul:
		c := li.In.Val(v.Args[1])
		x := v.Args[0]
		if c.Kind != ir.ValConst {
			c = li.In.Val(v.Args[0])
			x = v.Args[1]
		}
		if c.Kind != ir.ValConst || c.Const <= 0 {
			return Bounds{}
		}
		a := li.boundsOf(x, useBlock, fuel-1)
		mul := func(b Bound) Bound {
			if b.Kind == Bot {
				return b
			}
			return Bound{b.Kind, &Expr{Kind: EOp, Op: sparc.SMul, Args: []*Expr{b.Expr, {Kind: EConst, Const: c.Const}}}}
		}
		return Bounds{L: mul(a.L), U: mul(a.U)}
	}
	return Bounds{}
}

// combine applies the "simple conjunction rule" of §4.3.2: the result kind
// is the less useful of the operand kinds.
func combine(a, b Bound, op sparc.Op) Bound {
	if a.Kind == Bot || b.Kind == Bot {
		return Bound{}
	}
	k := minKind(a.Kind, b.Kind)
	// Constant folding keeps pre-header code short.
	if a.Expr.Kind == EConst && b.Expr.Kind == EConst {
		if op == sparc.Add {
			return Bound{k, &Expr{Kind: EConst, Const: a.Expr.Const + b.Expr.Const}}
		}
		return Bound{k, &Expr{Kind: EConst, Const: a.Expr.Const - b.Expr.Const}}
	}
	if b.Expr.Kind == EConst && op == sparc.Add {
		return Bound{k, addExpr(a.Expr, b.Expr.Const)}
	}
	if b.Expr.Kind == EConst && op == sparc.Sub {
		return Bound{k, addExpr(a.Expr, -b.Expr.Const)}
	}
	return Bound{k, &Expr{Kind: EOp, Op: op, Args: []*Expr{a.Expr, b.Expr}}}
}

// assertFor finds an assert bounding val from the needed side whose edge
// target dominates useBlock.
func (li *LoopInfo) assertFor(val, useBlock int, wantUpper bool) (limit int, adjust int32, ok bool) {
	for _, a := range li.Asserts {
		if a.Val != val || a.Upper != wantUpper {
			continue
		}
		if li.In.F.Dominates(a.Target, useBlock) {
			return a.Limit, a.Adjust, true
		}
	}
	return 0, 0, false
}
